// Package ace implements the paper's ACE (architecturally correct
// execution) analysis: it classifies every committed instruction's bits as
// ACE or un-ACE, integrates instruction-queue residency intervals into
// architectural vulnerability factors (AVFs), and decomposes the DUE AVF of
// a parity-protected queue into its true and false components.
//
// The analysis is the post-processing half of the paper's methodology [18]:
// the pipeline records *when* each instruction's bits occupied the IQ; this
// package decides, with full future knowledge, *whether* those bits could
// have affected the program's outcome. Dynamically dead instructions are
// discovered from the committed stream itself (first-level and transitive,
// tracked via registers and via memory, plus registers that die because the
// procedure that wrote them returned), exactly the populations the paper's
// π-bit mechanisms are designed to cover.
package ace

import (
	"fmt"

	"softerror/internal/isa"
)

// Category classifies a dynamic instruction for vulnerability purposes.
// The un-ACE categories correspond one-to-one with the paper's false-DUE
// sources and with the tracking mechanism needed to cover each (§4.3).
type Category uint8

const (
	// CatACE marks instructions required for architecturally correct
	// execution: a strike on their IQ bits (while awaiting issue) changes
	// the program outcome.
	CatACE Category = iota
	// CatWrongPath marks instructions fetched past a mispredicted branch;
	// covered by carrying the π bit to the commit point.
	CatWrongPath
	// CatPredFalse marks instructions whose qualifying predicate was
	// false; covered at the commit point like wrong-path instructions.
	CatPredFalse
	// CatNeutral marks no-ops, prefetches and branch hints; non-opcode
	// bits are un-ACE and covered by the anti-π bit.
	CatNeutral
	// CatFDDReg marks first-level dynamically dead register writes: the
	// destination is overwritten before any read. Covered by the PET
	// buffer (within its window) or a π bit per register.
	CatFDDReg
	// CatFDDRet marks register writes that die because their procedure
	// returned before the overwrite; a π bit per register covers them.
	CatFDDRet
	// CatTDDReg marks transitively dead register writes: read only by
	// dead register-tracked consumers. Covered by carrying π bits to the
	// store buffer.
	CatTDDReg
	// CatFDDMem marks stores whose value is overwritten in memory before
	// any load reads it; covered only by π bits on caches and memory.
	CatFDDMem
	// CatTDDMem marks instructions whose value reaches memory only
	// through dead stores; covered only by π bits on caches and memory.
	CatTDDMem

	// NumCategories is the number of categories.
	NumCategories = iota
)

var categoryNames = [NumCategories]string{
	"ace", "wrong-path", "pred-false", "neutral",
	"fdd-reg", "fdd-ret", "tdd-reg", "fdd-mem", "tdd-mem",
}

// String returns the category's short name.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// UnACE reports whether the category is un-ACE (a false-DUE source).
func (c Category) UnACE() bool { return c != CatACE && int(c) < NumCategories }

// Dead reports whether the category is a dynamically-dead classification.
func (c Category) Dead() bool {
	switch c {
	case CatFDDReg, CatFDDRet, CatTDDReg, CatFDDMem, CatTDDMem:
		return true
	}
	return false
}

// TrackLevel identifies the cheapest π-bit mechanism (paper §4.3, Figure 2)
// that covers false errors on this category. Cumulative deployment through
// a level covers every category at or below it.
type TrackLevel uint8

const (
	// TrackNever: CatACE — a detected error is a true error.
	TrackNever TrackLevel = iota
	// TrackCommit: π bit carried to the commit point (wrong-path and
	// predicated-false instructions).
	TrackCommit
	// TrackAntiPi: the anti-π bit on neutral instruction types.
	TrackAntiPi
	// TrackPET: post-commit error tracking buffer (a window-limited subset
	// of FDD-reg instructions).
	TrackPET
	// TrackRegFile: π bit per register (all FDD via registers, including
	// return-dead).
	TrackRegFile
	// TrackStoreBuffer: π bits through the pipeline to the store commit
	// point (TDD via registers).
	TrackStoreBuffer
	// TrackMemory: π bits on caches and memory, signalling only at I/O
	// (FDD and TDD via memory).
	TrackMemory
)

var trackNames = [...]string{
	"never", "pi-commit", "anti-pi", "pet", "pi-regfile", "pi-storebuf", "pi-memory",
}

// String names the tracking level.
func (l TrackLevel) String() string {
	if int(l) < len(trackNames) {
		return trackNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// BitACE is the ground truth for a single-bit strike: whether corrupting
// the given field of an instruction with the given category changes the
// program's outcome. Dead instructions keep ACE destination-specifier bits
// (a strike there redirects the dead write onto a live register — hasDest
// distinguishes dead stores, which have none); neutral instructions keep
// ACE opcode bits (a strike there turns a no-op into a real operation).
func BitACE(cat Category, field isa.Field, hasDest bool) bool {
	switch cat {
	case CatACE:
		return true
	case CatNeutral:
		return field == isa.FieldOpcode
	case CatFDDReg, CatFDDRet, CatTDDReg, CatFDDMem, CatTDDMem:
		return hasDest && field == isa.FieldDest
	default: // wrong-path, pred-false
		return false
	}
}

// Track returns the mechanism level required to cover false errors on this
// category. Note CatFDDReg reports TrackRegFile: the PET buffer covers only
// the window-limited subset, which the AVF report accounts separately.
func (c Category) Track() TrackLevel {
	switch c {
	case CatWrongPath, CatPredFalse:
		return TrackCommit
	case CatNeutral:
		return TrackAntiPi
	case CatFDDReg, CatFDDRet:
		return TrackRegFile
	case CatTDDReg:
		return TrackStoreBuffer
	case CatFDDMem, CatTDDMem:
		return TrackMemory
	default:
		return TrackNever
	}
}
