package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"softerror/internal/checkpoint"
	"softerror/internal/rng"
	"softerror/internal/sweep"
)

// Config tunes the coordinator. Zero values take the documented defaults.
type Config struct {
	// LeaseCells bounds the cells per lease (default 4): small enough that
	// a lost lease re-runs little work, large enough that cells of one
	// benchmark still batch over a shared decode on the worker.
	LeaseCells int
	// LeaseTimeout is the per-attempt deadline for one lease delivery
	// (default 2m). A hung worker holds a lease for at most this long
	// before the lease expires and is retried or reassigned.
	LeaseTimeout time.Duration
	// Retries is the number of re-deliveries attempted on the SAME worker
	// before it is suspected unhealthy and the lease is reassigned
	// (default 2, so 3 attempts per worker).
	Retries int
	// BackoffBase seeds the jittered exponential backoff between attempts
	// (default 100ms, doubling per attempt, capped at BackoffMax).
	BackoffBase time.Duration
	// BackoffMax caps one backoff sleep (default 5s).
	BackoffMax time.Duration
	// HeartbeatEvery is the worker health-probe period (default 5s).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout bounds one health probe (default 2s).
	HeartbeatTimeout time.Duration
	// Client is the HTTP client for leases and probes (default: a plain
	// client; deadlines come from per-request contexts).
	Client *http.Client
	// Seed drives the backoff jitter stream (default 1). Jitter spreads
	// retry storms in time; it never affects result bytes.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.LeaseCells <= 0 {
		c.LeaseCells = 4
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2 * time.Minute
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 5 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// WorkerStatus is one worker's health and lease accounting, as served under
// /metrics on a coordinator.
type WorkerStatus struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Leases   int64  `json:"leases_done"`
	Retries  int64  `json:"lease_retries"`
	Steals   int64  `json:"lease_steals"`
	Failures int64  `json:"lease_failures"`
}

// Snapshot is the fleet-wide metrics aggregate.
type Snapshot struct {
	Workers          []WorkerStatus `json:"workers"`
	LeasesDispatched int64          `json:"leases_dispatched"`
	LeaseRetries     int64          `json:"lease_retries"`
	LeaseSteals      int64          `json:"lease_steals"`
	LeaseFailures    int64          `json:"lease_failures"`
	LocalFallbacks   int64          `json:"local_fallbacks"`
}

// worker is the coordinator's view of one registered daemon.
type worker struct {
	addr     string
	healthy  bool
	leases   int64
	retries  int64
	steals   int64
	failures int64
}

// Coordinator partitions sweep grids into cell-range leases and drives them
// across registered workers. Safe for concurrent use; one coordinator can
// run many grids at once (each Run owns its own dispatch state).
type Coordinator struct {
	cfg    Config
	client *http.Client

	mu       sync.Mutex
	workers  map[string]*worker
	jitter   *rng.Stream
	leaseSeq int

	dispatched atomic.Int64
	retriesCt  atomic.Int64
	steals     atomic.Int64
	failures   atomic.Int64
	fallbacks  atomic.Int64

	hbStop chan struct{}
	hbOnce sync.Once
}

// NewCoordinator builds a coordinator and starts its heartbeat monitor.
// Close it to stop the monitor.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		client:  cfg.Client,
		workers: make(map[string]*worker),
		jitter:  rng.New(cfg.Seed, 0x1ea5e),
		hbStop:  make(chan struct{}),
	}
	go c.heartbeatLoop()
	return c
}

// Close stops the heartbeat monitor. In-flight Runs are unaffected (their
// health view simply stops refreshing).
func (c *Coordinator) Close() { c.hbOnce.Do(func() { close(c.hbStop) }) }

// Register admits a worker by host:port address. Registration is
// idempotent; a re-registered worker is (re)marked healthy, so a restarted
// daemon re-joining announces its own recovery.
func (c *Coordinator) Register(addr string) error {
	if err := (RegisterRequest{Addr: addr}).Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[addr]; ok {
		w.healthy = true
		return nil
	}
	c.workers[addr] = &worker{addr: addr, healthy: true}
	return nil
}

// NumWorkers returns the registered worker count.
func (c *Coordinator) NumWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Snapshot aggregates fleet-wide metrics: per-worker health and lease
// accounting plus the coordinator's totals.
func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	snap := Snapshot{
		LeasesDispatched: c.dispatched.Load(),
		LeaseRetries:     c.retriesCt.Load(),
		LeaseSteals:      c.steals.Load(),
		LeaseFailures:    c.failures.Load(),
		LocalFallbacks:   c.fallbacks.Load(),
	}
	for _, w := range c.workers {
		snap.Workers = append(snap.Workers, WorkerStatus{
			Addr:     w.addr,
			Healthy:  w.healthy,
			Leases:   w.leases,
			Retries:  w.retries,
			Steals:   w.steals,
			Failures: w.failures,
		})
	}
	c.mu.Unlock()
	sort.Slice(snap.Workers, func(i, j int) bool { return snap.Workers[i].Addr < snap.Workers[j].Addr })
	return snap
}

// healthyAddrs returns the currently-healthy workers, sorted for
// deterministic partitioning.
func (c *Coordinator) healthyAddrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, w := range c.workers {
		if w.healthy {
			out = append(out, w.addr)
		}
	}
	sort.Strings(out)
	return out
}

func (c *Coordinator) setHealth(addr string, healthy bool) {
	c.mu.Lock()
	if w, ok := c.workers[addr]; ok {
		w.healthy = healthy
	}
	c.mu.Unlock()
}

func (c *Coordinator) bump(addr string, f func(w *worker)) {
	c.mu.Lock()
	if w, ok := c.workers[addr]; ok {
		f(w)
	}
	c.mu.Unlock()
}

// heartbeatLoop probes every registered worker's /healthz on the configured
// period, marking them healthy or unhealthy. A worker that failed a lease
// (marked unhealthy there) and then recovers is re-admitted by its next
// heartbeat; a worker draining or dead fails the probe and drops out of the
// next wave's partition.
func (c *Coordinator) heartbeatLoop() {
	t := time.NewTicker(c.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
			c.mu.Lock()
			addrs := make([]string, 0, len(c.workers))
			for a := range c.workers {
				addrs = append(addrs, a)
			}
			c.mu.Unlock()
			for _, addr := range addrs {
				c.setHealth(addr, c.probe(addr))
			}
		}
	}
}

// probe health-checks one worker.
func (c *Coordinator) probe(addr string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// fatalError marks failures no retry or reassignment can heal: admission
// rejections (the lease itself is malformed) and protocol violations
// (wrong cell coverage). The dispatch loop fails the run loudly instead of
// burning the fleet on them.
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

func fatalf(format string, args ...any) error {
	return fatalError{err: fmt.Errorf(format, args...)}
}

func isFatal(err error) bool {
	var f fatalError
	return errors.As(err, &f)
}

// lease is one dispatchable unit: a set of cells of the current grid,
// preferred by its ring-routed owner but stealable by any idle worker.
type lease struct {
	id     string
	owner  string
	cells  []int
	ranges []Range
	tried  map[string]bool
}

// leaseQueue is the wave's work pool. take prefers a worker's own leases
// (cache affinity) and falls back to stealing any lease the worker has not
// yet failed; leases left untaken when every loop exits stay pending for
// the next wave.
type leaseQueue struct {
	mu     sync.Mutex
	closed bool
	leases []*lease
}

func (q *leaseQueue) take(addr string) (*lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, false
	}
	pick := -1
	for k, l := range q.leases {
		if l.tried[addr] {
			continue
		}
		if l.owner == addr {
			pick = k
			break
		}
		if pick < 0 {
			pick = k
		}
	}
	if pick < 0 {
		return nil, false
	}
	l := q.leases[pick]
	q.leases = append(q.leases[:pick], q.leases[pick+1:]...)
	return l, l.owner != addr
}

func (q *leaseQueue) requeue(l *lease) {
	q.mu.Lock()
	if !q.closed {
		q.leases = append(q.leases, l)
	}
	q.mu.Unlock()
}

func (q *leaseQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
}

// partition routes each pending cell to a healthy worker by consistent
// hashing of the cell's content address, then chunks each worker's cells
// into leases of at most LeaseCells.
func (c *Coordinator) partition(g *sweep.Grid, pending []int, healthy []string) []*lease {
	r := newRing(healthy)
	byWorker := make(map[string][]int, len(healthy))
	for _, i := range pending {
		addr := r.route(g.CellFingerprint(i))
		byWorker[addr] = append(byWorker[addr], i)
	}
	var leases []*lease
	for _, addr := range healthy {
		cells := byWorker[addr]
		for lo := 0; lo < len(cells); lo += c.cfg.LeaseCells {
			hi := lo + c.cfg.LeaseCells
			if hi > len(cells) {
				hi = len(cells)
			}
			chunk := cells[lo:hi]
			c.mu.Lock()
			c.leaseSeq++
			id := fmt.Sprintf("lease-%06d", c.leaseSeq)
			c.mu.Unlock()
			leases = append(leases, &lease{
				id:     id,
				owner:  addr,
				cells:  chunk,
				ranges: rangesOf(chunk),
				tried:  make(map[string]bool),
			})
		}
	}
	return leases
}

// backoff sleeps the jittered exponential delay for the given attempt
// (1-based), honouring ctx.
func (c *Coordinator) backoff(ctx context.Context, attempt int) {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	c.mu.Lock()
	j := time.Duration(c.jitter.Int63n(int64(d)))
	c.mu.Unlock()
	d = d/2 + j // uniform in [d/2, 3d/2)
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

// execute delivers one lease to one worker, retrying with backoff up to the
// per-worker attempt budget. It returns the rows in l.cells order, or a
// retryable error (the worker is suspect) or a fatal one (the run must
// stop).
func (c *Coordinator) execute(ctx context.Context, addr string, sp GridSpec, l *lease) ([]sweep.Row, error) {
	attempts := c.cfg.Retries + 1
	var lastErr error
	for a := 1; a <= attempts; a++ {
		if a > 1 {
			c.retriesCt.Add(1)
			c.bump(addr, func(w *worker) { w.retries++ })
			c.backoff(ctx, a-1)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rows, err := c.deliver(ctx, addr, sp, l, a)
		if err == nil {
			return rows, nil
		}
		if ctx.Err() != nil || isFatal(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// deliver is one delivery attempt of one lease.
func (c *Coordinator) deliver(ctx context.Context, addr string, sp GridSpec, l *lease, attempt int) ([]sweep.Row, error) {
	body, err := json.Marshal(LeaseRequest{Lease: l.id, Attempt: attempt, Grid: sp, Ranges: l.ranges})
	if err != nil {
		return nil, fatalf("fleet: marshal lease %s: %v", l.id, err)
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.LeaseTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, "http://"+addr+"/v1/lease", bytes.NewReader(body))
	if err != nil {
		return nil, fatalf("fleet: build lease request for %s: %v", addr, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: lease %s to %s (attempt %d): %w", l.id, addr, attempt, err)
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK && rerr == nil:
		var lr LeaseResponse
		if err := json.Unmarshal(data, &lr); err != nil {
			return nil, fmt.Errorf("fleet: lease %s to %s: bad response body: %v", l.id, addr, err)
		}
		rows, err := lr.rowsFor(l.cells)
		if err != nil {
			// Wrong coverage is a protocol violation: serving around it
			// would risk wrong bytes, so fail the run loudly.
			return nil, fatalError{err: err}
		}
		return rows, nil
	case resp.StatusCode == http.StatusBadRequest:
		// The worker rejected the lease at admission: re-sending the same
		// bytes cannot heal it.
		return nil, fatalf("fleet: worker %s rejected lease %s: %.200s", addr, l.id, data)
	default:
		return nil, fmt.Errorf("fleet: lease %s to %s (attempt %d): HTTP %d: %.200s",
			l.id, addr, attempt, resp.StatusCode, data)
	}
}

// Run executes the grid across the fleet and returns one row per cell, in
// axis order — byte-equivalent to g.RunContext run locally. Cells recorded
// in ck are restored, newly completed cells are written back as their
// leases land, so a coordinator drained mid-grid checkpoint-interrupts
// cleanly and a resubmitted grid resumes. With zero healthy workers (none
// registered, or all lost) the grid degrades to local execution. On error
// the checkpoint is flushed and nil rows are returned: completed cells
// live in ck, never in a partially-valid slice.
func (c *Coordinator) Run(ctx context.Context, g *sweep.Grid, ck *checkpoint.File[sweep.Row], progress func(done, total int)) ([]sweep.Row, error) {
	total := g.Size()
	if total < 1 {
		return nil, fmt.Errorf("fleet: empty grid")
	}
	if ck != nil && ck.Total() != total {
		return nil, fmt.Errorf("fleet: checkpoint has %d cells, grid has %d", ck.Total(), total)
	}
	rows := make([]sweep.Row, total)
	var pending []int
	done := 0
	for i := 0; i < total; i++ {
		if v, ok := ck.Get(i); ok {
			rows[i] = v
			done++
		} else {
			pending = append(pending, i)
		}
	}
	var mu sync.Mutex
	if progress != nil && done > 0 {
		progress(done, total)
	}
	sp := SpecOf(g)

	stalls := 0
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			ck.Save()
			return nil, fmt.Errorf("fleet: %w", err)
		}
		healthy := c.healthyAddrs()
		if len(healthy) == 0 || stalls >= 2 {
			// Graceful degradation: no fleet (or a fleet that keeps failing
			// leases while answering heartbeats) must never strand a grid.
			c.fallbacks.Add(1)
			base := done
			sub, err := g.RunIndices(ctx, pending, ck, func(d, _ int) {
				if progress != nil {
					mu.Lock()
					progress(base+d, total)
					mu.Unlock()
				}
			})
			if err != nil {
				ck.Save()
				return nil, fmt.Errorf("fleet: local fallback: %w", err)
			}
			for k, i := range pending {
				rows[i] = sub[k]
			}
			return rows, ck.Save()
		}

		completed, err := c.dispatch(ctx, g, sp, pending, healthy, func(cells []int, got []sweep.Row) error {
			mu.Lock()
			defer mu.Unlock()
			for k, i := range cells {
				rows[i] = got[k]
				if err := ck.Put(i, got[k]); err != nil {
					return err
				}
				done++
				if progress != nil {
					progress(done, total)
				}
			}
			return nil
		})
		if err != nil {
			ck.Save()
			return nil, err
		}
		if len(completed) == 0 {
			stalls++
		} else {
			stalls = 0
		}
		remaining := pending[:0]
		for _, i := range pending {
			if !completed[i] {
				remaining = append(remaining, i)
			}
		}
		pending = remaining
	}
	return rows, ck.Save()
}

// dispatch runs one wave: partition pending cells over the healthy workers,
// then drive per-worker loops that execute their own leases first and steal
// others when idle. A worker that exhausts a lease's attempt budget is
// marked unhealthy and sits out the rest of the wave; its leases are stolen
// or carried into the next wave. apply lands one lease's rows (called
// serially under the run's lock).
func (c *Coordinator) dispatch(ctx context.Context, g *sweep.Grid, sp GridSpec, pending []int, healthy []string, apply func(cells []int, rows []sweep.Row) error) (map[int]bool, error) {
	leases := c.partition(g, pending, healthy)
	q := &leaseQueue{leases: leases}
	completed := make(map[int]bool, len(pending))
	var cmu sync.Mutex
	var firstErr error
	fail := func(err error) {
		cmu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		cmu.Unlock()
		q.close()
	}

	var wg sync.WaitGroup
	for _, addr := range healthy {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			for {
				l, stolen := q.take(addr)
				if l == nil {
					return
				}
				if stolen {
					c.steals.Add(1)
					c.bump(addr, func(w *worker) { w.steals++ })
				}
				rows, err := c.execute(ctx, addr, sp, l)
				if err == nil {
					if aerr := apply(l.cells, rows); aerr != nil {
						fail(aerr)
						return
					}
					cmu.Lock()
					for _, i := range l.cells {
						completed[i] = true
					}
					cmu.Unlock()
					c.dispatched.Add(1)
					c.bump(addr, func(w *worker) { w.leases++ })
					continue
				}
				if ctx.Err() != nil {
					fail(fmt.Errorf("fleet: %w", ctx.Err()))
					return
				}
				if isFatal(err) {
					fail(err)
					return
				}
				// The worker burnt the lease's attempt budget: suspect it,
				// hand the lease to the rest of the wave, sit this one out
				// until a heartbeat re-admits it.
				c.failures.Add(1)
				c.bump(addr, func(w *worker) { w.failures++ })
				c.setHealth(addr, false)
				l.tried[addr] = true
				q.requeue(l)
				return
			}
		}(addr)
	}
	wg.Wait()
	return completed, firstErr
}
