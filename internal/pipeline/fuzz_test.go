package pipeline_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"softerror/internal/cache"
	"softerror/internal/invariant"
	"softerror/internal/pipeline"
	"softerror/internal/rng"
	"softerror/internal/workload"
)

// Random workload and machine draws come from internal/invariant, the
// shared audit layer, so these tests, the invariant checks, and cmd/seraudit
// all explore the same configuration space and a seed reported by any one
// of them reproduces in the others.

// TestRandomisedConfigurations drives the pipeline across random workload ×
// machine configurations and checks the structural invariants every run
// must satisfy: forward progress, unique issue per sequence number,
// occupancy within capacity, commit log in program order.
func TestRandomisedConfigurations(t *testing.T) {
	s := rng.New(0xF00D, 99)
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		params := invariant.RandomWorkload(s)
		cfg := invariant.RandomPipelineConfig(s)
		if err := params.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid params: %v", trial, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid config: %v", trial, err)
		}
		gen := workload.MustNew(params)
		mem := cache.MustNewDefault()
		workload.WarmCaches(mem)
		p := pipeline.MustNew(cfg, gen, mem)
		tr := p.Run(4000, true)

		if tr.Commits < 4000 {
			t.Fatalf("trial %d: no progress (%d commits)", trial, tr.Commits)
		}
		issued := map[uint64]bool{}
		var occ uint64
		for _, r := range tr.Residencies {
			if r.Evict < r.Enq {
				t.Fatalf("trial %d: inverted residency %+v", trial, r)
			}
			occ += r.Occupancy()
			if r.Issued {
				if issued[r.Inst.Seq] {
					t.Fatalf("trial %d: seq %d issued twice", trial, r.Inst.Seq)
				}
				issued[r.Inst.Seq] = true
			}
		}
		if max := tr.Cycles * uint64(cfg.IQSize); occ > max {
			t.Fatalf("trial %d: occupancy %d > capacity %d", trial, occ, max)
		}
		for i := 1; i < len(tr.CommitLog); i++ {
			if tr.CommitLog[i].Seq <= tr.CommitLog[i-1].Seq {
				t.Fatalf("trial %d: commit log out of order at %d (ooo=%v)",
					trial, i, cfg.OutOfOrder)
			}
		}
		var sbOcc uint64
		for _, r := range tr.StoreBuffer {
			sbOcc += r.Occupancy()
		}
		if max := tr.Cycles * uint64(cfg.StoreBufferSize); sbOcc > max {
			t.Fatalf("trial %d: store-buffer occupancy exceeds capacity", trial)
		}
	}
}

// TestRandomisedKernels drives random hand-written programs (drawn from the
// kernel grammar) through the pipeline: parse, replay, run, no panics, and
// commits keep flowing.
func TestRandomisedKernels(t *testing.T) {
	s := rng.New(0xBEEF, 7)
	ops := []string{
		"alu r%d r%d -", "alu r%d r%d r%d", "cmp p%d r%d r%d",
		"load r%d r%d 0x%x", "store r%d r%d 0x%x", "prefetch r%d 0x%x",
		"nop", "hint", "br r%d taken",
	}
	for trial := 0; trial < 20; trial++ {
		var lines []string
		n := 4 + s.Intn(30)
		for i := 0; i < n; i++ {
			switch pat := ops[s.Intn(len(ops))]; pat {
			case "nop", "hint":
				lines = append(lines, pat)
			case "alu r%d r%d -":
				lines = append(lines, sprintf(pat, 1+s.Intn(120), 1+s.Intn(120)))
			case "alu r%d r%d r%d", "cmp p%d r%d r%d", "store r%d r%d 0x%x":
				lines = append(lines, sprintf(pat, 1+s.Intn(60), 1+s.Intn(120), 1+s.Intn(120)))
			case "load r%d r%d 0x%x":
				lines = append(lines, sprintf(pat, 1+s.Intn(120), 1+s.Intn(120), 0x1000+8*s.Intn(512)))
			case "prefetch r%d 0x%x":
				lines = append(lines, sprintf(pat, 1+s.Intn(120), 0x1000+8*s.Intn(512)))
			case "br r%d taken":
				lines = append(lines, sprintf(pat, 1+s.Intn(120)))
			}
		}
		prog := join(lines)
		body, err := workload.ParseProgram(prog)
		if err != nil {
			t.Fatalf("trial %d: generated invalid program: %v\n%s", trial, err, prog)
		}
		src, err := workload.NewReplay(body, s.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		mem := cache.MustNewDefault()
		workload.WarmCaches(mem)
		tr := pipeline.MustNew(pipeline.DefaultConfig(), src, mem).Run(2000, true)
		if tr.Commits < 2000 {
			t.Fatalf("trial %d: kernel stalled", trial)
		}
	}
}

// runTraced runs one pipeline built from (params, cfg) on a freshly warmed
// default hierarchy and returns the recorded trace.
func runTraced(t *testing.T, cfg pipeline.Config, params workload.Params, commits uint64) *pipeline.Trace {
	t.Helper()
	gen := workload.MustNew(params)
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	return pipeline.MustNew(cfg, gen, mem).Run(commits, true)
}

// TestCycleSkipDifferential cross-validates the event-horizon fast path
// against the reference single-step interpreter: for random workload ×
// machine configurations spanning in-order/out-of-order, every trigger
// combination and tiny queues, both must produce *identical* traces —
// every cycle count, residency interval and committed instruction.
func TestCycleSkipDifferential(t *testing.T) {
	s := rng.New(0x5C1F, 17)
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		params := invariant.RandomWorkload(s)
		cfg := invariant.RandomPipelineConfig(s)
		// Narrow queues on a third of trials: capacity-limited regimes are
		// where a wrong horizon would first show as a shifted eviction.
		if trial%3 == 0 {
			cfg.IQSize = 8
			cfg.StoreBufferSize = 2
		}
		ref, fast := cfg, cfg
		ref.SingleStep = true
		fast.SingleStep = false
		want := runTraced(t, ref, params, 4000)
		got := runTraced(t, fast, params, 4000)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: fast-forward trace diverges from single-step "+
				"(cycles %d vs %d, commits %d vs %d, squashes %d vs %d, cfg=%+v)",
				trial, want.Cycles, got.Cycles, want.Commits, got.Commits,
				want.Squashes, got.Squashes, cfg)
		}
	}
}

// TestCycleSkipDifferentialWorstStaller pins the corpus entry that stalls
// the hardest of any configuration the randomised differential has visited:
// near-universal L0 misses with a deep miss tail, squash-on-L0 plus
// throttle-on-L0, a shallow front end and a tiny store buffer. Most cycles
// here are quiescent waits, so the fast path fast-forwards through the
// bulk of the run — exactly where a horizon bug would surface.
func TestCycleSkipDifferentialWorstStaller(t *testing.T) {
	params := workload.Default()
	params.LoadFrac = 0.25
	params.StoreFrac = 0.1
	params.MissBurstiness = 1
	params.L0Frac = 0.1
	params.L1Frac = 0.2
	params.L2Frac = 0.2
	params.MemFrac = 0.5
	params.FetchBubbleProb = 0.4
	params.FetchBubbleMean = 6
	params.LoadUseDistance = 1

	cfg := pipeline.DefaultConfig()
	cfg.SquashTrigger = pipeline.TriggerL0Miss
	cfg.ThrottleTrigger = pipeline.TriggerL0Miss
	cfg.IQSize = 8
	cfg.StoreBufferSize = 2
	cfg.FetchWidth = 1
	cfg.IssueWidth = 1

	ref, fast := cfg, cfg
	ref.SingleStep = true
	fast.SingleStep = false
	want := runTraced(t, ref, params, 4000)
	got := runTraced(t, fast, params, 4000)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("worst-staller trace diverges (cycles %d vs %d, commits %d vs %d)",
			want.Cycles, got.Cycles, want.Commits, got.Commits)
	}
	// The entry earns its keep only if stalls dominate: the fast path must
	// actually be skipping here, not single-stepping a busy machine.
	if frac := float64(want.FetchStallCycles) / float64(want.Cycles); frac < 0.5 {
		t.Fatalf("corpus entry no longer stall-dominated: %.2f of cycles stalled", frac)
	}
}

func sprintf(format string, args ...int) string {
	vals := make([]interface{}, len(args))
	for i, a := range args {
		vals[i] = a
	}
	return fmt.Sprintf(format, vals...)
}

func join(lines []string) string { return strings.Join(lines, "\n") }
