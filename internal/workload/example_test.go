package workload_test

import (
	"fmt"

	"softerror/internal/workload"
)

// The kernel mini-language: write an exact instruction sequence, parse it,
// and replay it as an infinite stream for the pipeline.
func ExampleParseProgram() {
	body, err := workload.ParseProgram(`
		load r5 r1 0x1000
		alu r6 r5 r2       # consume the load
		store r6 r3 0x2000
		nop
		br r6 taken
	`)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	fmt.Println("instructions:", len(body))
	fmt.Println("first:", body[0].Class, body[0].Dest)
	// Round trip through the text form.
	again, _ := workload.ParseProgram(workload.FormatProgram(body))
	fmt.Println("round trips:", len(again) == len(body))
	// Output:
	// instructions: 5
	// first: load r5
	// round trips: true
}

// Synthetic workloads are deterministic: the same profile always yields
// the same dynamic stream.
func ExampleGenerator() {
	a := workload.MustNew(workload.Default())
	b := workload.MustNew(workload.Default())
	same := true
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			same = false
		}
	}
	fmt.Println("bit-identical streams:", same)
	// Output:
	// bit-identical streams: true
}
