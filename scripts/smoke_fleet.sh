#!/bin/sh
# Smoke test for seratd fleet mode with a real mid-sweep worker kill:
#
#   1. boot two worker daemons and a coordinator (one worker pre-registered
#      via -workers, the other joining itself via -join);
#   2. run a baseline sweep on a lone worker and keep its CSV bytes;
#   3. submit the same grid to the coordinator, kill -9 one worker while
#      the sweep is in flight, and require the job to finish anyway;
#   4. require the fleet CSV to be byte-identical to the lone-worker CSV;
#   5. SIGINT the coordinator and require a clean drain.
#
# Exercises the real binaries, real TCP, a real process death and the
# retry/steal path that the in-process suites drive only through injected
# chaos.
set -eu

workdir=$(mktemp -d)
trap 'kill "$w1pid" "$w2pid" "$copid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
w1pid=; w2pid=; copid=

go build -o "$workdir/seratd" ./cmd/seratd
go build -o "$workdir/httpget" ./scripts/httpget

boot() { # boot NAME EXTRA-FLAGS... — start a daemon, wait for its portfile
	name=$1; shift
	"$workdir/seratd" -addr 127.0.0.1:0 -portfile "$workdir/$name.port" \
		"$@" >"$workdir/$name.log" 2>&1 &
	bootpid=$!
	for i in $(seq 1 100); do
		[ -s "$workdir/$name.port" ] && break
		kill -0 "$bootpid" 2>/dev/null || { cat "$workdir/$name.log"; echo "$name died at boot" >&2; exit 1; }
		sleep 0.1
	done
	[ -s "$workdir/$name.port" ] || { echo "$name never wrote -portfile" >&2; exit 1; }
}

fetch() { # fetch ADDR PATH [POST-BODY]
	"$workdir/httpget" "http://$1$2" "${3:-}"
}

boot w1; w1pid=$bootpid; w1=$(cat "$workdir/w1.port")
boot co -coordinator -workers "$w1"; copid=$bootpid; co=$(cat "$workdir/co.port")
boot w2 -join "$co"; w2pid=$bootpid; w2=$(cat "$workdir/w2.port")
grep -q 'joined fleet' "$workdir/w2.log"

grid='{"benches":["gzip-graphic","mcf"],"policies":["baseline","squash-l1"],"iqsizes":[16,64],"commits":2000000}'

# Baseline: the same grid on the lone first worker, straight to CSV.
id=$(fetch "$w1" /v1/sweep "$grid" | sed 's/.*"id":"\([^"]*\)".*/\1/')
fetch "$w1" "/v1/jobs/$id/events" >/dev/null # blocks until terminal
fetch "$w1" "/v1/jobs/$id/csv" >"$workdir/local.csv"
grep -q 'policy' "$workdir/local.csv"

# Fleet run: submit to the coordinator, then kill one worker mid-sweep.
id=$(fetch "$co" /v1/sweep "$grid" | sed 's/.*"id":"\([^"]*\)".*/\1/')
sleep 0.3
fetch "$co" "/v1/jobs/$id" >"$workdir/at-kill"
grep -q '"state":"done"' "$workdir/at-kill" && { echo "sweep finished before the kill — grow the grid" >&2; exit 1; }
kill -9 "$w2pid"
echo "killed worker w2 ($w2) mid-sweep"
fetch "$co" "/v1/jobs/$id/events" >"$workdir/events"
grep -q '"state":"done"' "$workdir/events" || { cat "$workdir/events" "$workdir/co.log"; echo "fleet job did not finish" >&2; exit 1; }
fetch "$co" "/v1/jobs/$id/csv" >"$workdir/fleet.csv"

cmp "$workdir/local.csv" "$workdir/fleet.csv" || { echo "fleet CSV differs from lone-worker CSV" >&2; exit 1; }

# The coordinator's metrics must aggregate the fleet view.
fetch "$co" /metrics | grep -q '"fleet"'

# SIGINT the coordinator: clean drain, exit 0.
kill -INT "$copid"
i=0
while kill -0 "$copid" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 300 ] && { cat "$workdir/co.log"; echo "coordinator did not exit after SIGINT" >&2; exit 1; }
	sleep 0.1
done
wait "$copid" || { cat "$workdir/co.log"; echo "coordinator exited non-zero" >&2; exit 1; }
grep -q 'drained' "$workdir/co.log"

kill -INT "$w1pid" 2>/dev/null || true
echo "seratd fleet smoke: OK"
