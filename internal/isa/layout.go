package isa

import "fmt"

// Field identifies a bit-field of an instruction-queue entry. Per-field
// granularity matters for ACE analysis: the paper notes that a strike on a
// dynamically dead instruction is benign except in the destination-register
// specifier bits, and a strike on a neutral instruction (nop/prefetch/hint)
// is benign except in the opcode bits.
type Field uint8

const (
	// FieldOpcode holds the major opcode and completers.
	FieldOpcode Field = iota
	// FieldDest holds the destination-register specifier.
	FieldDest
	// FieldSrc1 holds the first source-register specifier.
	FieldSrc1
	// FieldSrc2 holds the second source-register specifier.
	FieldSrc2
	// FieldPred holds the qualifying-predicate specifier.
	FieldPred
	// FieldImm holds immediate/displacement bits.
	FieldImm

	// NumFields is the number of distinct payload fields.
	NumFields = iota
)

var fieldNames = [NumFields]string{"opcode", "dest", "src1", "src2", "pred", "imm"}

// String returns the field's name.
func (f Field) String() string {
	if int(f) < len(fieldNames) {
		return fieldNames[f]
	}
	return fmt.Sprintf("field(%d)", uint8(f))
}

// FieldBits gives the width in bits of each payload field. The widths mirror
// an IA-64 syllable: 41 bits total, with 7-bit register specifiers (128
// registers) and a 6-bit predicate specifier (64 predicates).
var FieldBits = [NumFields]int{
	FieldOpcode: 10,
	FieldDest:   7,
	FieldSrc1:   7,
	FieldSrc2:   7,
	FieldPred:   6,
	FieldImm:    4,
}

// EntryPayloadBits is the number of payload bits in one instruction-queue
// entry — the bits whose ACE-ness varies with the instruction occupying the
// entry. Control bits (valid, parity, π, anti-π) are accounted separately.
var EntryPayloadBits = func() int {
	n := 0
	for _, b := range FieldBits {
		n += b
	}
	return n
}()

// FieldOffset returns the bit offset of field f within the payload, with
// fields packed in declaration order. Offsets are stable across a run and
// are used by the fault injector to map a struck bit index to a field.
func FieldOffset(f Field) int {
	off := 0
	for i := Field(0); i < f; i++ {
		off += FieldBits[i]
	}
	return off
}

// FieldOfBit maps a payload bit index in [0, EntryPayloadBits) to the field
// containing it. It panics on out-of-range indices.
func FieldOfBit(bit int) Field {
	if bit < 0 || bit >= EntryPayloadBits {
		panic(fmt.Sprintf("isa: payload bit %d out of range [0,%d)", bit, EntryPayloadBits))
	}
	for f := Field(0); f < NumFields; f++ {
		if bit < FieldBits[f] {
			return f
		}
		bit -= FieldBits[f]
	}
	panic("unreachable")
}
