// Package scrub quantifies the §2 assumption the paper's single-bit fault
// model rests on: "the probability of multi-bit faults is orders of
// magnitude lower than that of single bit faults … careful design, such as
// interleaving … or scrubbing a structure periodically, can make multi-bit
// faults in the domain of a single parity- or ECC-protected block extremely
// unlikely" (and its reference [16], Mukherjee et al., "Cache Scrubbing in
// Microprocessors: Myth or Necessity?", PRDC 2004).
//
// For an ECC-protected structure, a word is defeated when a second,
// independent strike lands in an already-struck word before a scrub (or an
// access) repairs the first. With strikes arriving as a Poisson process at
// rate λ per bit, the expected number of double-strike words per scrub
// interval T across W words of b bits is well approximated for λbT ≪ 1 by
//
//	E[defeats per interval] ≈ W · (λbT)² / 2
//
// giving a defeat rate of W·λ²b²T/2 — linear in the scrub interval, which
// is exactly why scrubbing works. Both the analytic rate and a Monte-Carlo
// cross-check are provided.
package scrub

import (
	"fmt"
	"math"

	"softerror/internal/rng"
	"softerror/internal/serate"
)

// Model describes one ECC-protected structure under periodic scrubbing.
type Model struct {
	// Words is the number of independently protected words; BitsPerWord
	// the protection domain size.
	Words       int
	BitsPerWord int
	// RawFITPerBit is the per-bit raw strike rate.
	RawFITPerBit float64
	// ScrubIntervalHours is the time between scrubs of a given word.
	ScrubIntervalHours float64
}

// Validate reports a descriptive error for nonsensical parameters.
func (m *Model) Validate() error {
	if m.Words <= 0 || m.BitsPerWord <= 0 {
		return fmt.Errorf("scrub: non-positive geometry")
	}
	if m.RawFITPerBit <= 0 {
		return fmt.Errorf("scrub: non-positive raw rate")
	}
	if m.ScrubIntervalHours <= 0 {
		return fmt.Errorf("scrub: non-positive scrub interval")
	}
	return nil
}

// DoubleStrikeFIT returns the analytic rate (in FIT) at which double
// strikes defeat the structure's single-bit correction.
func (m *Model) DoubleStrikeFIT() (serate.FIT, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	lambdaWord := m.RawFITPerBit * float64(m.BitsPerWord) / serate.HoursPerBillion // strikes/hour/word
	x := lambdaWord * m.ScrubIntervalHours
	// Exact per-interval defeat probability for a Poisson count N:
	// P(N >= 2) = 1 - e^-x (1 + x), computed via expm1 to survive the
	// catastrophic cancellation at realistic x ~ 1e-9.
	p := -math.Expm1(-x) - x*math.Exp(-x)
	ratePerHour := float64(m.Words) * p / m.ScrubIntervalHours
	return serate.FIT(ratePerHour * serate.HoursPerBillion), nil
}

// Approximate returns the small-x closed form W·λ²b²T/2 in FIT, the
// rule-of-thumb designers use; it agrees with DoubleStrikeFIT when
// strikes per word per interval are rare.
func (m *Model) Approximate() (serate.FIT, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	lambdaWord := m.RawFITPerBit * float64(m.BitsPerWord) / serate.HoursPerBillion
	ratePerHour := float64(m.Words) * lambdaWord * lambdaWord * m.ScrubIntervalHours / 2
	return serate.FIT(ratePerHour * serate.HoursPerBillion), nil
}

// Simulate Monte-Carlo-checks the analytic rate: it draws per-word strike
// counts over `intervals` scrub periods and counts words collecting two or
// more strikes within one period. It returns the measured defeat rate in
// FIT. Deterministic for a given seed.
func (m *Model) Simulate(intervals int, seed uint64) (serate.FIT, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if intervals <= 0 {
		return 0, fmt.Errorf("scrub: non-positive interval count")
	}
	s := rng.New(seed, 0x5c2b)
	lambdaWord := m.RawFITPerBit * float64(m.BitsPerWord) / serate.HoursPerBillion
	x := lambdaWord * m.ScrubIntervalHours // mean strikes per word-interval
	defeats := 0
	for i := 0; i < intervals; i++ {
		for w := 0; w < m.Words; w++ {
			if poisson(s, x) >= 2 {
				defeats++
			}
		}
	}
	hours := float64(intervals) * m.ScrubIntervalHours
	return serate.FIT(float64(defeats) / hours * serate.HoursPerBillion), nil
}

// poisson draws a Poisson(x) sample (Knuth's method; x is small here).
func poisson(s *rng.Stream, x float64) int {
	l := math.Exp(-x)
	k, p := 0, 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
