package pipeline

import (
	"sort"
	"testing"

	"softerror/internal/cache"
	"softerror/internal/isa"
	"softerror/internal/workload"
)

// scriptSource feeds a fixed instruction list, then no-ops forever. It
// stamps sequence numbers in fetch order, like the real generator.
type scriptSource struct {
	insts []isa.Inst
	idx   int
	seq   uint64
}

func blankInst(class isa.Class) isa.Inst {
	return isa.Inst{
		Class: class,
		Dest:  isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		PredGuard: isa.RegNone,
	}
}

func (s *scriptSource) stamp(in isa.Inst) isa.Inst {
	in.Seq = s.seq
	in.PC = 0x1000 + 4*s.seq
	s.seq++
	return in
}

func (s *scriptSource) Next() isa.Inst {
	if s.idx < len(s.insts) {
		in := s.insts[s.idx]
		s.idx++
		return s.stamp(in)
	}
	return s.stamp(blankInst(isa.ClassNop))
}

func (s *scriptSource) NextWrong() isa.Inst {
	in := blankInst(isa.ClassALU)
	in.WrongPath = true
	return s.stamp(in)
}

func newMem(t testing.TB) *cache.Hierarchy {
	t.Helper()
	return cache.MustNewDefault()
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.IQSize = 0 },
		func(c *Config) { c.FrontEndDepth = 0 },
		func(c *Config) { c.BranchResolveLatency = 0 },
		func(c *Config) { c.ALULatency = 0 },
		func(c *Config) { c.FPLatency = 0 },
		func(c *Config) { c.ReplayWindow = -1 },
		func(c *Config) { c.SquashTrigger = 99 },
		func(c *Config) { c.ThrottleTrigger = 99 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTriggerString(t *testing.T) {
	if TriggerNone.String() != "none" || TriggerL0Miss.String() != "l0-miss" || TriggerL1Miss.String() != "l1-miss" {
		t.Error("trigger names wrong")
	}
	if Trigger(9).String() == "" {
		t.Error("unknown trigger should render")
	}
}

func TestNewRejects(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := New(cfg, nil, newMem(t)); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(cfg, &scriptSource{}, nil); err == nil {
		t.Error("nil memory accepted")
	}
	cfg.IQSize = 0
	if _, err := New(cfg, &scriptSource{}, newMem(t)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestIndependentALUThroughput(t *testing.T) {
	// Independent single-cycle ALU work: IPC should approach the machine
	// width (fetch = issue = 6).
	var insts []isa.Inst
	for i := 0; i < 1200; i++ {
		in := blankInst(isa.ClassALU)
		in.Dest = isa.IntReg(1 + i%30)
		insts = append(insts, in)
	}
	p := MustNew(DefaultConfig(), &scriptSource{insts: insts}, newMem(t))
	tr := p.Run(1200, true)
	if ipc := tr.IPC(); ipc < 5.0 {
		t.Fatalf("independent-ALU IPC = %.2f, want > 5", ipc)
	}
}

func TestDependentChainSerialises(t *testing.T) {
	// Every instruction reads the previous result: IPC must collapse to
	// about 1 (ALULatency=1 plus issue overheads).
	var insts []isa.Inst
	for i := 0; i < 600; i++ {
		in := blankInst(isa.ClassALU)
		in.Dest = isa.IntReg(1)
		in.Src1 = isa.IntReg(1)
		insts = append(insts, in)
	}
	p := MustNew(DefaultConfig(), &scriptSource{insts: insts}, newMem(t))
	tr := p.Run(600, true)
	if ipc := tr.IPC(); ipc > 1.2 {
		t.Fatalf("dependent-chain IPC = %.2f, want ~1", ipc)
	}
}

func TestLoadMissStallsDependent(t *testing.T) {
	// A cold load (memory latency 200) followed by its consumer: the run
	// must take at least the memory latency.
	load := blankInst(isa.ClassLoad)
	load.Dest = isa.IntReg(5)
	load.Src1 = isa.IntReg(1)
	load.Addr = 0x5000_0000
	load.MemSize = 8
	use := blankInst(isa.ClassALU)
	use.Dest = isa.IntReg(6)
	use.Src1 = isa.IntReg(5)
	p := MustNew(DefaultConfig(), &scriptSource{insts: []isa.Inst{load, use}}, newMem(t))
	tr := p.Run(2, true)
	if tr.Cycles < 200 {
		t.Fatalf("run took %d cycles, want >= 200 (memory latency)", tr.Cycles)
	}
	if tr.LoadsByLevel[cache.LevelMemory] != 1 {
		t.Fatalf("LoadsByLevel = %v, want one memory access", tr.LoadsByLevel)
	}
}

func TestPredFalseSkipsExecution(t *testing.T) {
	// A predicated-false load must not access memory and must not write
	// its destination, but must still commit.
	load := blankInst(isa.ClassLoad)
	load.Dest = isa.IntReg(5)
	load.Src1 = isa.IntReg(1)
	load.Addr = 0x5000_0000
	load.PredGuard = isa.PredReg(1)
	load.PredFalse = true
	use := blankInst(isa.ClassALU)
	use.Dest = isa.IntReg(6)
	use.Src1 = isa.IntReg(5)
	p := MustNew(DefaultConfig(), &scriptSource{insts: []isa.Inst{load, use}}, newMem(t))
	tr := p.Run(2, true)
	if tr.Cycles > 100 {
		t.Fatalf("pred-false load stalled the pipe: %d cycles", tr.Cycles)
	}
	var total uint64
	for _, n := range tr.LoadsByLevel {
		total += n
	}
	if total != 0 {
		t.Fatalf("pred-false load accessed memory: %v", tr.LoadsByLevel)
	}
}

func TestSquashOnMissRefetches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SquashTrigger = TriggerL1Miss
	// Load misses everything; a dependent blocks issue; 40 trailing
	// instructions pool in the IQ and get squashed, then refetched.
	load := blankInst(isa.ClassLoad)
	load.Dest = isa.IntReg(5)
	load.Src1 = isa.IntReg(1)
	load.Addr = 0x5000_0000
	use := blankInst(isa.ClassALU)
	use.Dest = isa.IntReg(6)
	use.Src1 = isa.IntReg(5)
	insts := []isa.Inst{load, use}
	for i := 0; i < 40; i++ {
		in := blankInst(isa.ClassALU)
		in.Dest = isa.IntReg(10 + i%20)
		insts = append(insts, in)
	}
	const n = uint64(2 + 40)
	p := MustNew(cfg, &scriptSource{insts: insts}, newMem(t))
	tr := p.Run(n, true)

	if tr.Squashes == 0 {
		t.Fatal("no squash fired on an L1 miss with SquashTrigger set")
	}
	if tr.Refetches == 0 {
		t.Fatal("squash produced no refetches")
	}
	// Run stops at the first cycle reaching the target; up to IssueWidth-1
	// extra commits can land in that final cycle.
	if tr.Commits < n || tr.Commits >= n+uint64(cfg.IssueWidth) {
		t.Fatalf("Commits = %d, want in [%d, %d)", tr.Commits, n, n+uint64(cfg.IssueWidth))
	}
	if tr.FetchStallCycles == 0 {
		t.Fatal("squash did not stall fetch")
	}
	// Each Seq must commit (issue) exactly once despite refetch.
	issued := map[uint64]int{}
	for _, r := range tr.Residencies {
		if r.Issued {
			issued[r.Inst.Seq]++
		}
	}
	for seq, k := range issued {
		if k != 1 {
			t.Fatalf("seq %d issued %d times", seq, k)
		}
	}
	// Squashed copies must exist and be unissued.
	squashed := 0
	for _, r := range tr.Residencies {
		if r.Squashed {
			squashed++
			if r.Issued {
				t.Fatalf("squashed residency marked issued: %+v", r)
			}
		}
	}
	if squashed == 0 {
		t.Fatal("no squashed residencies recorded")
	}
}

func TestSquashRestartUnderflowClamped(t *testing.T) {
	// A squash whose miss returns within the refetch-overlap window used to
	// compute restart = missReturn - RefetchOverlap on uint64, wrapping to
	// ~2^64 and stalling fetch for the rest of the run. The subtraction must
	// saturate at zero (then clamp up to now).
	cfg := DefaultConfig()
	cfg.SquashTrigger = TriggerL1Miss
	cfg.RefetchOverlap = 8
	p := MustNew(cfg, &scriptSource{}, newMem(t))
	p.doSquash(3, squashEvent{at: 3, loadSeq: 0, missReturn: 5})
	if p.stallUntil != 3 {
		t.Fatalf("stallUntil = %d, want 3 (restart clamped, not wrapped)", p.stallUntil)
	}
	// The pipeline must still make progress afterwards: with the wrapped
	// stall this run would never fetch again.
	tr := p.Run(100, false)
	if tr.Commits < 100 {
		t.Fatalf("pipeline stalled after early-returning squash: %d commits", tr.Commits)
	}
}

func TestNoSquashWithoutTrigger(t *testing.T) {
	load := blankInst(isa.ClassLoad)
	load.Dest = isa.IntReg(5)
	load.Src1 = isa.IntReg(1)
	load.Addr = 0x5000_0000
	p := MustNew(DefaultConfig(), &scriptSource{insts: []isa.Inst{load}}, newMem(t))
	tr := p.Run(50, true)
	if tr.Squashes != 0 || tr.Refetches != 0 {
		t.Fatalf("squash fired with TriggerNone: %+v", tr)
	}
}

func TestThrottleStallsWithoutSquashing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThrottleTrigger = TriggerL1Miss
	load := blankInst(isa.ClassLoad)
	load.Dest = isa.IntReg(5)
	load.Src1 = isa.IntReg(1)
	load.Addr = 0x5000_0000
	use := blankInst(isa.ClassALU)
	use.Dest = isa.IntReg(6)
	use.Src1 = isa.IntReg(5)
	p := MustNew(cfg, &scriptSource{insts: []isa.Inst{load, use}}, newMem(t))
	tr := p.Run(30, true)
	if tr.ThrottleEvents == 0 {
		t.Fatal("no throttle event on L1 miss")
	}
	if tr.FetchStallCycles == 0 {
		t.Fatal("throttle did not stall fetch")
	}
	if tr.Squashes != 0 || tr.Refetches != 0 {
		t.Fatal("throttle must not squash")
	}
}

func TestWrongPathFlushedNeverCommits(t *testing.T) {
	br := blankInst(isa.ClassBranch)
	br.Src1 = isa.IntReg(1)
	br.Taken = true
	br.Mispred = true
	var insts []isa.Inst
	insts = append(insts, br)
	for i := 0; i < 50; i++ {
		in := blankInst(isa.ClassALU)
		in.Dest = isa.IntReg(2 + i%10)
		insts = append(insts, in)
	}
	p := MustNew(DefaultConfig(), &scriptSource{insts: insts}, newMem(t))
	tr := p.Run(51, true)

	if tr.WrongFlushes == 0 {
		t.Fatal("mispredicted branch produced no wrong-path flushes")
	}
	for _, in := range tr.CommitLog {
		if in.WrongPath {
			t.Fatalf("wrong-path instruction committed: %v", in)
		}
	}
	// Wrong-path residencies must exist (they occupied the IQ).
	sawWrong := false
	for _, r := range tr.Residencies {
		if r.Inst.WrongPath {
			sawWrong = true
			break
		}
	}
	if !sawWrong {
		t.Fatal("no wrong-path residencies recorded")
	}
}

func TestResidencyInvariants(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	cfg := DefaultConfig()
	cfg.SquashTrigger = TriggerL1Miss
	p := MustNew(cfg, gen, newMem(t))
	tr := p.Run(20000, true)

	var occupied uint64
	for _, r := range tr.Residencies {
		if r.Evict < r.Enq {
			t.Fatalf("residency evict < enq: %+v", r)
		}
		if r.Issued && (r.Issue < r.Enq || r.Issue > r.Evict) {
			t.Fatalf("issue outside residency: %+v", r)
		}
		if r.Squashed && r.Issued {
			t.Fatalf("squashed residency marked issued: %+v", r)
		}
		occupied += r.Occupancy()
	}
	if max := tr.Cycles * uint64(tr.IQSize); occupied > max {
		t.Fatalf("occupancy %d exceeds capacity %d", occupied, max)
	}
	// Commit log sequence numbers strictly increase (in-order commit).
	for i := 1; i < len(tr.CommitLog); i++ {
		if tr.CommitLog[i].Seq <= tr.CommitLog[i-1].Seq {
			t.Fatalf("commit log out of order at %d: %d then %d",
				i, tr.CommitLog[i-1].Seq, tr.CommitLog[i].Seq)
		}
	}
	if uint64(len(tr.CommitLog)) != tr.Commits {
		t.Fatalf("commit log length %d != commits %d", len(tr.CommitLog), tr.Commits)
	}
}

func TestGeneratorRunDeterministic(t *testing.T) {
	run := func() *Trace {
		gen := workload.MustNew(workload.Default())
		cfg := DefaultConfig()
		cfg.SquashTrigger = TriggerL1Miss
		p := MustNew(cfg, gen, cache.MustNewDefault())
		return p.Run(10000, true)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Commits != b.Commits ||
		len(a.Residencies) != len(b.Residencies) ||
		a.Squashes != b.Squashes || a.WrongFlushes != b.WrongFlushes {
		t.Fatalf("non-deterministic runs:\n a={cyc %d com %d res %d sq %d}\n b={cyc %d com %d res %d sq %d}",
			a.Cycles, a.Commits, len(a.Residencies), a.Squashes,
			b.Cycles, b.Commits, len(b.Residencies), b.Squashes)
	}
}

func TestRealisticIPCRange(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	p := MustNew(DefaultConfig(), gen, newMem(t))
	tr := p.Run(30000, true)
	ipc := tr.IPC()
	if ipc < 0.3 || ipc > 4.0 {
		t.Fatalf("baseline IPC = %.2f, outside plausible [0.3, 4.0]", ipc)
	}
}

func TestSquashReducesOccupancyModestIPCCost(t *testing.T) {
	// The Table-1 shape at module level: with a memory-bound workload,
	// squash-on-L1-miss must cut valid IQ occupancy while costing little
	// IPC.
	params := workload.Default()
	params.L0Frac, params.L1Frac, params.L2Frac, params.MemFrac = 0.979, 0.012, 0.008, 0.001

	run := func(trigger Trigger) *Trace {
		gen := workload.MustNew(params)
		cfg := DefaultConfig()
		cfg.SquashTrigger = trigger
		mem := cache.MustNewDefault()
		workload.WarmCaches(mem)
		p := MustNew(cfg, gen, mem)
		return p.Run(30000, true)
	}
	base := run(TriggerNone)
	squash := run(TriggerL1Miss)

	occFrac := func(tr *Trace) float64 {
		var occ uint64
		for _, r := range tr.Residencies {
			if !r.Squashed {
				occ += r.Occupancy()
			}
		}
		return float64(occ) / float64(tr.Cycles*uint64(tr.IQSize))
	}
	baseOcc, squashOcc := occFrac(base), occFrac(squash)
	if squashOcc >= baseOcc {
		t.Fatalf("squash did not reduce unsquashed occupancy: base %.3f squash %.3f", baseOcc, squashOcc)
	}
	ipcLoss := 1 - squash.IPC()/base.IPC()
	if ipcLoss > 0.15 {
		t.Fatalf("squash-on-L1 IPC loss %.1f%%, want modest (<15%%)", ipcLoss*100)
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := &Trace{Cycles: 100, Commits: 150}
	if tr.IPC() != 1.5 {
		t.Fatalf("IPC = %v", tr.IPC())
	}
	empty := &Trace{}
	if empty.IPC() != 0 {
		t.Fatal("empty IPC should be 0")
	}
	tr.LoadsByLevel = [4]uint64{80, 10, 5, 5}
	if got := tr.LoadMissRate(cache.LevelL0); got != 0.20 {
		t.Fatalf("L0 miss rate = %v, want 0.20", got)
	}
	if got := tr.LoadMissRate(cache.LevelL1); got != 0.10 {
		t.Fatalf("L1 miss rate = %v, want 0.10", got)
	}
	if (&Trace{}).LoadMissRate(0) != 0 {
		t.Fatal("empty miss rate should be 0")
	}
	r := Residency{Enq: 10, Evict: 25}
	if r.Occupancy() != 15 {
		t.Fatalf("occupancy = %d", r.Occupancy())
	}
	bad := Residency{Enq: 10, Evict: 5}
	if bad.Occupancy() != 0 {
		t.Fatal("inverted residency should report 0 occupancy")
	}
}

func BenchmarkPipelineBaseline(b *testing.B) {
	gen := workload.MustNew(workload.Default())
	p := MustNew(DefaultConfig(), gen, cache.MustNewDefault())
	b.ResetTimer()
	p.Run(uint64(b.N), false)
}

func BenchmarkPipelineSquashL1(b *testing.B) {
	gen := workload.MustNew(workload.Default())
	cfg := DefaultConfig()
	cfg.SquashTrigger = TriggerL1Miss
	p := MustNew(cfg, gen, cache.MustNewDefault())
	b.ResetTimer()
	p.Run(uint64(b.N), false)
}

func TestOutOfOrderIssueRaisesIPC(t *testing.T) {
	// A stalled load dependence chain interleaved with independent work:
	// out-of-order issue must beat in-order on the same stream.
	params := workload.Default()
	params.L0Frac, params.L1Frac, params.L2Frac, params.MemFrac = 0.96, 0.02, 0.015, 0.005
	params.LoadUseDistance = 2 // tight load-use so in-order stalls hard
	run := func(ooo bool) float64 {
		gen := workload.MustNew(params)
		cfg := DefaultConfig()
		cfg.OutOfOrder = ooo
		mem := cache.MustNewDefault()
		workload.WarmCaches(mem)
		return MustNew(cfg, gen, mem).Run(20000, true).IPC()
	}
	inOrder, outOfOrder := run(false), run(true)
	if outOfOrder <= inOrder {
		t.Fatalf("OoO IPC %.3f should beat in-order %.3f on a stall-heavy stream",
			outOfOrder, inOrder)
	}
}

func TestOutOfOrderSquashStillWorks(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	cfg := DefaultConfig()
	cfg.OutOfOrder = true
	cfg.SquashTrigger = TriggerL1Miss
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	tr := MustNew(cfg, gen, mem).Run(20000, true)
	if tr.Squashes == 0 {
		t.Fatal("no squashes fired in OoO mode")
	}
	// Per-Seq single issue still holds.
	issued := map[uint64]int{}
	for _, r := range tr.Residencies {
		if r.Issued {
			issued[r.Inst.Seq]++
			if issued[r.Inst.Seq] > 1 {
				t.Fatalf("seq %d issued twice in OoO mode", r.Inst.Seq)
			}
		}
	}
}

func TestOutOfOrderCommitLogRestoredToProgramOrder(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	cfg := DefaultConfig()
	cfg.OutOfOrder = true
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	tr := MustNew(cfg, gen, mem).Run(20000, true)
	for i := 1; i < len(tr.CommitLog); i++ {
		if tr.CommitLog[i].Seq <= tr.CommitLog[i-1].Seq {
			t.Fatalf("OoO commit log not in program order at %d", i)
		}
	}
	if len(tr.CommitCycles) != len(tr.CommitLog) {
		t.Fatal("commit cycles out of sync")
	}
}

func TestOutOfOrderRetireInOrderWithinCapacity(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	cfg := DefaultConfig()
	cfg.OutOfOrder = true
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	tr := MustNew(cfg, gen, mem).Run(20000, true)
	if len(tr.ROB) == 0 {
		t.Fatal("OoO run recorded no ROB residencies")
	}
	// Retire (the ROB read point) must follow program order: sorted by
	// Seq, the read cycles of read entries never decrease. Unread entries
	// are squash/flush victims and carry no retire point.
	byseq := append([]Residency(nil), tr.ROB...)
	sort.Slice(byseq, func(i, j int) bool { return byseq[i].Inst.Seq < byseq[j].Inst.Seq })
	var last uint64
	for _, r := range byseq {
		if !r.Issued {
			continue
		}
		if r.Issue < last {
			t.Fatalf("seq %d retired at %d, before its elder at %d", r.Inst.Seq, r.Issue, last)
		}
		last = r.Issue
	}
	// Concurrent occupancy never exceeds the configured capacity. Closed
	// intervals are [Enq, Evict); sweep the endpoints.
	checkCap := func(name string, res []Residency, capacity int) {
		type ev struct {
			cyc   uint64
			delta int
		}
		evs := make([]ev, 0, 2*len(res))
		for _, r := range res {
			evs = append(evs, ev{r.Enq, 1}, ev{r.Evict, -1})
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].cyc != evs[j].cyc {
				return evs[i].cyc < evs[j].cyc
			}
			return evs[i].delta < evs[j].delta // evictions free slots first
		})
		occ, peak := 0, 0
		for _, e := range evs {
			occ += e.delta
			if occ > peak {
				peak = occ
			}
		}
		if peak > capacity {
			t.Fatalf("%s peak occupancy %d exceeds capacity %d", name, peak, capacity)
		}
	}
	checkCap("ROB", tr.ROB, tr.ROBCap)
	checkCap("LSQ", tr.LSQ, tr.LSQCap)
}

func TestOutOfOrderStoreToLoadForwarding(t *testing.T) {
	params := workload.Default()
	params.StoreFrac = 0.2 // plenty of queued stores for loads to hit
	gen := workload.MustNew(params)
	cfg := DefaultConfig()
	cfg.OutOfOrder = true
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	tr := MustNew(cfg, gen, mem).Run(20000, true)
	if tr.ForwardedLoads == 0 {
		t.Fatal("no store-to-load forwarding in an OoO run with 30% stores")
	}
	if len(tr.LSQ) == 0 {
		t.Fatal("no LSQ residencies recorded")
	}
}

func TestFetchBubbleChargedOnceNotOnRefetch(t *testing.T) {
	// A front-end delivery gap (I-cache miss) is charged when the
	// instruction is first fetched; a squash refetch hits a warm I-cache
	// and must not pay it again. Compare two identical squash-heavy runs,
	// one whose instructions carry bubbles and one without: the bubbled
	// run pays each gap exactly once, so the cycle difference is bounded
	// by the total bubble cycles (not doubled by refetches).
	mkInsts := func(bubble uint8) []isa.Inst {
		load := blankInst(isa.ClassLoad)
		load.Dest = isa.IntReg(5)
		load.Src1 = isa.IntReg(1)
		load.Addr = 0x5000_0000
		use := blankInst(isa.ClassALU)
		use.Dest = isa.IntReg(6)
		use.Src1 = isa.IntReg(5)
		insts := []isa.Inst{load, use}
		totalBubbles := uint64(0)
		for i := 0; i < 30; i++ {
			in := blankInst(isa.ClassALU)
			in.Dest = isa.IntReg(10 + i%20)
			if i%5 == 0 {
				in.FetchBubble = bubble
				totalBubbles += uint64(bubble)
			}
			insts = append(insts, in)
		}
		return insts
	}
	run := func(bubble uint8) *Trace {
		cfg := DefaultConfig()
		cfg.SquashTrigger = TriggerL1Miss
		p := MustNew(cfg, &scriptSource{insts: mkInsts(bubble)}, newMem(t))
		return p.Run(32, true)
	}
	plain := run(0)
	bubbled := run(4)
	if bubbled.Refetches == 0 || plain.Refetches == 0 {
		t.Fatal("squash refetches expected in both runs")
	}
	// Six bubbles of 4 cycles each were stamped; if refetch re-paid them
	// the delta would exceed ~48 cycles. Allow scheduling slack.
	delta := int64(bubbled.Cycles) - int64(plain.Cycles)
	if delta < 0 {
		t.Fatalf("bubbles made the run faster? %d vs %d", bubbled.Cycles, plain.Cycles)
	}
	if delta > 40 {
		t.Fatalf("cycle delta %d suggests bubbles were re-paid on refetch", delta)
	}
}
