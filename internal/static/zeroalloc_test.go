//go:build !race

// Race instrumentation allocates on its own; the allocation budgets here
// only hold in plain builds.

package static

import (
	"testing"

	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// TestWarmQueryAllocFree pins the analyzer's serving property: once a
// (program, cut) view exists, Query is pure arithmetic over prebuilt
// prefix arrays — the path /v1/bound hits on every repeat configuration
// must not allocate.
func TestWarmQueryAllocFree(t *testing.T) {
	sh, err := workload.NewShared(workload.Default())
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	a.Load(sh.BodyPrefix(2000+BodySlack), 2000)

	base := pipeline.DefaultConfig()
	ooo := base
	ooo.OutOfOrder = true
	var sink Bounds
	run := func() {
		sink = a.Query(base)
		sink = a.Query(ooo)
	}
	run() // warm: builds both cut views

	if avg := testing.AllocsPerRun(10, run); avg > 0 {
		t.Fatalf("warm Query allocates %.1f times, want 0", avg)
	}
	_ = sink
}
