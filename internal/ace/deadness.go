package ace

import (
	"slices"
	"sort"

	"softerror/internal/isa"
)

// Deadness is the result of dynamic dead-code discovery over a committed
// instruction stream. It classifies every committed instruction into a
// Category and records, for first-level dead instructions, the commit
// distance from definition to overwrite — the quantity that determines
// whether a PET buffer of a given size can prove the instruction dead.
type Deadness struct {
	// seqs and cats are the per-instruction classification as parallel
	// slices sorted by dynamic sequence number (unique per committed
	// instruction); sequence numbers not present (e.g. wrong-path) are
	// not stored. Two packed slices replace the former seq→category map:
	// half the memory and a branch-free binary-search lookup.
	seqs []uint64
	cats []Category

	// Counts tallies committed instructions per category.
	Counts [NumCategories]uint64

	// FDDRegDist holds, for each CatFDDReg instruction, the number of
	// commits between it and the overwriting instruction. FDDRetDist and
	// FDDMemDist hold the same for return-dead writes and dead stores.
	FDDRegDist []int
	FDDRetDist []int
	FDDMemDist []int
}

// maxTrackedDepth bounds the call-depth bookkeeping for return-dead
// detection; deeper nesting is clamped (a safe, conservative choice).
const maxTrackedDepth = 64

// perDef records def-use facts for one register definition (one committed
// instruction with a destination).
type perDef struct {
	overwrite int32 // log index of the overwriting def; -1 if none by end
	retDead   bool  // a return below the def's depth happened before overwrite
	consumers []int32
}

// AnalyzeDeadness discovers dynamically dead instructions in a committed
// instruction log (program order). The classification follows §4.1 of the
// paper:
//
//   - a register write overwritten before any read is first-level dead
//     (FDD), attributed to a procedure return when one intervened;
//   - a register write whose every reader is itself dead is transitively
//     dead (TDD);
//   - a store whose memory value is overwritten before any load is dead,
//     tracked via memory; instructions feeding only dead stores are TDD
//     tracked via memory;
//   - values never overwritten by the end of the log are conservatively
//     live, as are stores never overwritten (matching the PET buffer's
//     "absence of an overwriting instruction" rule).
//
// Reads by neutral instructions (no-ops, prefetches, hints) and by
// predicated-false instructions do not make a value live: those readers
// cannot affect the program's outcome.
func AnalyzeDeadness(log []isa.Inst) *Deadness {
	d := &Deadness{}
	if len(log) == 0 {
		return d
	}
	d.seqs = make([]uint64, 0, len(log))
	d.cats = make([]Category, 0, len(log))

	defs := make([]perDef, len(log))
	cats := make([]Category, len(log))

	// regDef[r] is the log index of the live definition of register r, or
	// -1. Memory tracking is per 8-byte-aligned address.
	var regDef [isa.NumRegs]int32
	for i := range regDef {
		regDef[i] = -1
	}
	// Memory def-use, per 8-byte-aligned address: each store's consumers
	// are the loads reading its address before the next store; the next
	// store is its overwriter. The consumer/overwrite slots of defs are
	// reused (stores have no register destination).
	storeAt := make(map[uint64]int32) // addr -> pending store log index

	// lastBelow[d] is the most recent log index at which the call depth
	// was strictly below d; used to detect return-dead overwrites.
	var lastBelow [maxTrackedDepth + 2]int32
	for i := range lastBelow {
		lastBelow[i] = -1
	}
	prevDepth := int(log[0].CallDepth)

	use := func(r isa.Reg, consumer int32) {
		if r == isa.RegNone {
			return
		}
		if di := regDef[r]; di >= 0 {
			defs[di].consumers = append(defs[di].consumers, consumer)
		}
	}

	for i := range log {
		in := &log[i]
		idx := int32(i)

		// Maintain return timestamps.
		depth := int(in.CallDepth)
		if depth > maxTrackedDepth {
			depth = maxTrackedDepth
		}
		if depth < prevDepth {
			for dd := depth + 1; dd <= prevDepth && dd < len(lastBelow); dd++ {
				lastBelow[dd] = idx
			}
		}
		prevDepth = depth

		// Uses. Predicated-false instructions read only their guard;
		// neutral instructions read nothing that matters.
		if !in.Class.Neutral() {
			use(in.PredGuard, idx)
			if !in.PredFalse {
				use(in.Src1, idx)
				use(in.Src2, idx)
			}
		}

		// Memory effects.
		switch {
		case in.Class == isa.ClassLoad && !in.PredFalse:
			if si, ok := storeAt[in.Addr]; ok {
				defs[si].consumers = append(defs[si].consumers, idx)
			}
		case in.Class == isa.ClassStore && !in.PredFalse:
			if prev, ok := storeAt[in.Addr]; ok {
				defs[prev].overwrite = idx
			}
			storeAt[in.Addr] = idx
			defs[i].overwrite = -1
		}

		// Defs: close the previous definition of Dest.
		if in.HasDest() {
			r := in.Dest
			if prev := regDef[r]; prev >= 0 {
				defs[prev].overwrite = idx
				defDepth := int(log[prev].CallDepth)
				if defDepth > maxTrackedDepth {
					defDepth = maxTrackedDepth
				}
				defs[prev].retDead = lastBelow[defDepth] > prev
			}
			regDef[r] = idx
			defs[i].overwrite = -1
		}
	}

	// Reverse pass: consumers are later in the log, so their categories
	// are known when the producer is classified.
	for i := len(log) - 1; i >= 0; i-- {
		in := &log[i]
		cats[i] = classifyOne(in, i, defs, cats)
	}

	sorted := true
	for i := range log {
		in := &log[i]
		c := cats[i]
		if i > 0 && in.Seq < d.seqs[len(d.seqs)-1] {
			sorted = false
		}
		d.seqs = append(d.seqs, in.Seq)
		d.cats = append(d.cats, c)
		d.Counts[c]++
		switch c {
		case CatFDDReg:
			d.FDDRegDist = append(d.FDDRegDist, int(defs[i].overwrite)-i)
		case CatFDDRet:
			d.FDDRetDist = append(d.FDDRetDist, int(defs[i].overwrite)-i)
		case CatFDDMem:
			d.FDDMemDist = append(d.FDDMemDist, int(defs[i].overwrite)-i)
		}
	}
	if !sorted {
		// A program-order commit log has ascending sequence numbers, so
		// this is a defensive path for hand-built logs only.
		order := make([]int, len(d.seqs))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return d.seqs[order[a]] < d.seqs[order[b]] })
		seqs := make([]uint64, len(d.seqs))
		cs := make([]Category, len(d.cats))
		for i, j := range order {
			seqs[i] = d.seqs[j]
			cs[i] = d.cats[j]
		}
		d.seqs, d.cats = seqs, cs
	}
	return d
}

// classifyOne assigns the category for one committed instruction given the
// (already classified) categories of every later instruction.
func classifyOne(in *isa.Inst, i int, defs []perDef, cats []Category) Category {
	switch {
	case in.WrongPath:
		return CatWrongPath
	case in.PredFalse:
		return CatPredFalse
	case in.Class.Neutral():
		return CatNeutral
	case in.Class == isa.ClassStore:
		def := &defs[i]
		if def.overwrite < 0 {
			return CatACE // never overwritten: conservatively live
		}
		if len(def.consumers) == 0 {
			return CatFDDMem // overwritten before any load
		}
		for _, ci := range def.consumers {
			if !cats[ci].Dead() {
				return CatACE // a live load consumed the value
			}
		}
		return CatTDDMem // read only by dead loads
	case in.HasDest():
		def := &defs[i]
		if def.overwrite < 0 {
			return CatACE // live-out: conservatively live
		}
		if len(def.consumers) == 0 {
			if def.retDead {
				return CatFDDRet
			}
			return CatFDDReg
		}
		memTracked := false
		for _, ci := range def.consumers {
			cc := cats[ci]
			if !cc.Dead() {
				return CatACE // at least one live reader
			}
			if cc == CatFDDMem || cc == CatTDDMem {
				memTracked = true
			}
		}
		if memTracked {
			return CatTDDMem
		}
		return CatTDDReg
	default:
		// Branches, calls, returns, I/O, destination-less instructions.
		return CatACE
	}
}

// Of returns the category recorded for the given dynamic instruction.
// Wrong-path instructions (never committed) classify as CatWrongPath;
// committed instructions missing from the log (e.g. past its end) are
// conservatively CatACE.
func (d *Deadness) Of(in *isa.Inst) Category {
	if in.WrongPath {
		return CatWrongPath
	}
	return d.OfSeq(in.Seq)
}

// OfSeq returns the category recorded for the given committed sequence
// number; sequence numbers not in the analysed log are conservatively
// CatACE. Wrong-path instructions have no committed entry — callers
// holding an Inst should use Of, which classifies them first.
func (d *Deadness) OfSeq(seq uint64) Category {
	if i, ok := slices.BinarySearch(d.seqs, seq); ok {
		return d.cats[i]
	}
	return CatACE
}

// Compact releases the per-instruction classification, keeping only the
// aggregate counts and FDD distance populations. After Compact, Of and
// OfSeq answer conservatively (CatACE) for committed instructions. Use it
// when memoising many analyses whose per-instruction detail is no longer
// needed.
func (d *Deadness) Compact() { d.seqs, d.cats = nil, nil }

// Committed returns the number of classified committed instructions.
func (d *Deadness) Committed() uint64 {
	var n uint64
	for _, c := range d.Counts {
		n += c
	}
	return n
}

// DeadFraction returns the fraction of committed instructions that are
// dynamically dead (any dead category); the paper reports ~20% across its
// binaries.
func (d *Deadness) DeadFraction() float64 {
	total := d.Committed()
	if total == 0 {
		return 0
	}
	dead := d.Counts[CatFDDReg] + d.Counts[CatFDDRet] + d.Counts[CatTDDReg] +
		d.Counts[CatFDDMem] + d.Counts[CatTDDMem]
	return float64(dead) / float64(total)
}

// PETCoverage returns the fraction of a dead population (given as def-to-
// overwrite distances) provable by a PET buffer with the given number of
// entries: exactly those whose overwrite lands within the buffer window.
func PETCoverage(distances []int, entries int) float64 {
	if len(distances) == 0 {
		return 0
	}
	covered := 0
	for _, dist := range distances {
		if dist <= entries {
			covered++
		}
	}
	return float64(covered) / float64(len(distances))
}
