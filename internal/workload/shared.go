package workload

import (
	"errors"
	"fmt"

	"softerror/internal/isa"
	"softerror/internal/rng"
)

// ErrUnshareable marks a workload whose instruction stream cannot be
// decoded once and shared across machine configurations. PC-indexed branch
// predictors (gshare, bimodal) are the one case: wrong-path fetches shift
// every later correct-path PC by 4 bytes each, so the predictor — and with
// it the realised mispredict sequence — would observe configuration-
// dependent PCs. Callers fall back to per-configuration generators.
var ErrUnshareable = errors.New(
	"workload: PC-indexed branch predictor makes the stream configuration-dependent")

// Shared is one workload's instruction stream decoded once, for concurrent
// replay into any number of machine configurations. It memoises two
// sequences:
//
//   - the correct-path body, generated with no wrong-path interleaving at
//     all, so Body(n) has Seq == n and the PC of a pure correct-path fetch;
//   - the wrong-path draw sequence, whose j-th element is the content of
//     the j-th wrong-path instruction any configuration would fetch.
//
// Every per-configuration stream is a relabeling of these: a machine that
// has fetched w wrong-path instructions before correct-path position n
// fetches Body(n) with Seq n+w and PC Body(n).PC + 4w, and its next
// wrong-path instruction is Wrong(w) with Seq n+w, PC Body(n).PC + 4w and
// the call depth of Body(n-1). The relabeling is exact because the
// generator's streams partition cleanly: the mix/branch/pred/addr/bp
// streams advance only on correct-path synthesis, the wrong stream only on
// wrong-path synthesis, and the Seq/PC counters shift uniformly. The
// stream-sharing seraudit checks pin this equivalence against independent
// generators.
//
// A Shared is not safe for concurrent use: each batch builds (or borrows)
// its own.
type Shared struct {
	gen      *Generator
	wrongSrc *rng.Stream
	body     []isa.Inst
	wrong    []isa.Inst
}

// NewShared decodes the workload lazily for shared replay. It fails with
// ErrUnshareable for PC-indexed branch predictors.
func NewShared(p Params) (*Shared, error) {
	switch p.BranchPredictor {
	case "gshare", "bimodal":
		return nil, fmt.Errorf("%w (%s)", ErrUnshareable, p.BranchPredictor)
	}
	gen, err := New(p)
	if err != nil {
		return nil, err
	}
	return &Shared{
		gen:      gen,
		wrongSrc: rng.New(p.Seed, 0x5e7e).Derive("wrong"),
	}, nil
}

// Body returns the n-th correct-path instruction of the un-interleaved
// stream (Seq n, pure correct-path PC), extending the memo as needed. The
// returned pointer is valid until the next Body call extends the memo.
func (s *Shared) Body(n int) *isa.Inst {
	for len(s.body) <= n {
		s.body = append(s.body, s.gen.Next())
	}
	return &s.body[n]
}

// BodyPrefix returns the first m correct-path instructions as a slice —
// the commit log every variant's deadness analysis classifies (deadness is
// Seq-value-independent, so the un-relabeled body stands in for any
// variant's log). The slice aliases the memo: valid until a Body call
// extends it.
func (s *Shared) BodyPrefix(m int) []isa.Inst {
	if m > 0 {
		s.Body(m - 1)
	}
	return s.body[:m]
}

// Reserve pre-sizes the memos for a run expected to touch about body
// correct-path and wrong wrong-path instructions, so the memo arrays grow
// once up front instead of doubling repeatedly mid-run. It only reserves
// capacity — no instructions are generated — and under-estimates are
// harmless: the memos keep growing on demand.
func (s *Shared) Reserve(body, wrong int) {
	if cap(s.body) < body {
		grown := make([]isa.Inst, len(s.body), body)
		copy(grown, s.body)
		s.body = grown
	}
	if cap(s.wrong) < wrong {
		grown := make([]isa.Inst, len(s.wrong), wrong)
		copy(grown, s.wrong)
		s.wrong = grown
	}
}

// Wrong returns the content of the j-th wrong-path instruction draw: Seq,
// PC and CallDepth are zero, for the replaying configuration to assign.
// The returned pointer is valid until the next Wrong call extends the memo.
func (s *Shared) Wrong(j int) *isa.Inst {
	for len(s.wrong) <= j {
		s.wrong = append(s.wrong, wrongInst(s.wrongSrc))
	}
	return &s.wrong[j]
}
