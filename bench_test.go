// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its artefact's
// rows (printed once per `go test -bench` invocation) and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Absolute numbers come from the
// synthetic workload substrate; EXPERIMENTS.md records the paper-vs-
// measured comparison for every artefact.
package softerror

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"softerror/internal/core"
	"softerror/internal/fault"
	"softerror/internal/pipeline"
	"softerror/internal/report"
	"softerror/internal/spec"
	"softerror/internal/workload"
)

// benchCommits keeps full-roster sweeps tractable inside a benchmark
// iteration while leaving the AVF integrals stable.
const benchCommits = 60_000

var printOnce sync.Map

// printTable prints a table once per benchmark name across iterations.
func printTable(name string, t *report.Table) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Println()
		fmt.Print(t.String())
	}
}

func newBenchSuite() *core.Suite { return core.NewSuite(spec.All(), benchCommits) }

// BenchmarkSuitePrewarm measures the parallel evaluation engine directly:
// one full Table-1 fan-out (26 benchmarks x 3 policies) serially and on the
// GOMAXPROCS worker pool, reporting the wall-clock ratio as a `speedup`
// custom metric so BENCH_*.json tracks the win across PRs. Both passes
// produce identical memo contents — determinism is pinned separately by
// TestParallelDeterminism*.
func BenchmarkSuitePrewarm(b *testing.B) {
	pols := []core.Policy{core.PolicyBaseline, core.PolicySquashL1, core.PolicySquashL0}
	prewarm := func(workers int) time.Duration {
		s := core.NewSuite(spec.All(), 20_000)
		s.Workers = workers
		start := time.Now()
		if err := s.Prewarm(pols...); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		serial += prewarm(1)
		parallel += prewarm(0) // GOMAXPROCS workers
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkPipelineHotLoop measures the cycle loop itself on the paper's
// most squash-heavy point (mcf under squash-on-L1-miss), across the three
// execution modes: the reference single-step interpreter with a recorded
// trace (the pre-optimisation hot loop), event-horizon fast-forwarding with
// a recorded trace, and fast-forwarding with residencies streamed to no
// sink at all. All three produce identical results (pinned by
// TestCycleSkipDifferential and the ace stream tests); only the cost
// differs. Reports simulated Mcycles/s alongside allocs/op.
func BenchmarkPipelineHotLoop(b *testing.B) {
	bench, ok := spec.ByName("mcf")
	if !ok {
		b.Fatal("mcf missing from roster")
	}
	cfg := pipeline.DefaultConfig()
	cfg.SquashTrigger = pipeline.TriggerL1Miss
	const commits = 100_000
	run := func(b *testing.B, cfg pipeline.Config, record bool) {
		b.ReportAllocs()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			p := pipeline.MustNew(cfg, workload.MustNew(bench.Params), workload.WarmedDefault())
			if record {
				cycles += p.Run(commits, true).Cycles
			} else {
				st, err := p.RunStream(context.Background(), commits, nil)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			}
		}
		b.ReportMetric(float64(cycles)/1e6/b.Elapsed().Seconds(), "Mcycles/s")
	}
	single := cfg
	single.SingleStep = true
	ooo := cfg
	ooo.OutOfOrder = true
	b.Run("singlestep-materialized", func(b *testing.B) { run(b, single, true) })
	b.Run("fastforward-materialized", func(b *testing.B) { run(b, cfg, true) })
	b.Run("fastforward-stream", func(b *testing.B) { run(b, cfg, false) })
	// The out-of-order family on the same streaming path: ROB, LSQ and TAGE
	// machinery active, residencies folded into the collectors' integrals.
	b.Run("ooo", func(b *testing.B) { run(b, ooo, false) })
}

// BenchmarkBatchedSweep measures the batched evaluation path on the
// paper's squash-heaviest point: one sweep column (mcf under squash-on-L1,
// eight IQ/store-buffer variants) evaluated per-cell — one full simulation
// per configuration, the pre-batching sweep loop — and batched — one
// decode of the instruction stream feeding all eight compact lanes
// (core.RunBatchContext). Both paths produce byte-identical Results (the
// batched-independent seraudit check pins this); only the cost differs.
// Reports simulated Mcycles/s summed across the column and the wall-clock
// speedup.
func BenchmarkBatchedSweep(b *testing.B) {
	bench, ok := spec.ByName("mcf")
	if !ok {
		b.Fatal("mcf missing from roster")
	}
	specs := batchedSweepColumn()
	const commits = 60_000

	var perCell, batched time.Duration
	run := func(b *testing.B, f func() uint64) {
		b.ReportAllocs()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			cycles += f()
		}
		b.ReportMetric(float64(cycles)/1e6/b.Elapsed().Seconds(), "Mcycles/s")
	}
	b.Run("per-cell", func(b *testing.B) {
		run(b, func() uint64 {
			start := time.Now()
			var cycles uint64
			for _, sp := range specs {
				res, err := core.RunContext(context.Background(), core.Config{
					Workload: bench.Params, Pipeline: sp.Pipeline, Commits: commits,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			perCell += time.Since(start)
			return cycles
		})
	})
	b.Run("batched", func(b *testing.B) {
		run(b, func() uint64 {
			start := time.Now()
			results, err := core.RunBatchContext(context.Background(), bench.Params, commits, specs)
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for _, res := range results {
				cycles += res.Cycles
			}
			batched += time.Since(start)
			return cycles
		})
	})
	// The same batched column with the out-of-order family in every lane:
	// one decode still drives all eight lanes, each additionally carrying a
	// ROB, an LSQ and the TAGE predictor.
	oooSpecs := batchedSweepColumn()
	for i := range oooSpecs {
		oooSpecs[i].Pipeline.OutOfOrder = true
	}
	b.Run("ooo", func(b *testing.B) {
		run(b, func() uint64 {
			results, err := core.RunBatchContext(context.Background(), bench.Params, commits, oooSpecs)
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for _, res := range results {
				cycles += res.Cycles
			}
			return cycles
		})
	})
	if perCell > 0 && batched > 0 {
		fmt.Printf("\nBatchedSweep: %d-config column, per-cell %v vs batched %v: %.2fx\n",
			len(specs), perCell, batched, perCell.Seconds()/batched.Seconds())
	}
}

// batchedSweepColumn is the shared-workload column BenchmarkBatchedSweep
// evaluates: squash-on-L1 with the IQ and store-buffer depths swept.
func batchedSweepColumn() []core.BatchSpec {
	var specs []core.BatchSpec
	for _, iq := range []int{16, 32, 64, 128} {
		for _, sb := range []int{4, 8, 16, 32} {
			cfg := pipeline.DefaultConfig()
			cfg.SquashTrigger = pipeline.TriggerL1Miss
			cfg.IQSize = iq
			cfg.StoreBufferSize = sb
			specs = append(specs, core.BatchSpec{Pipeline: cfg})
		}
	}
	return specs
}

// BenchmarkPrewarmCellAllocs measures the allocation footprint of one
// evaluation cell — the unit Suite.Prewarm fans out 26×3 of — on the
// streaming path the suite now uses versus materialising the trace first.
// -benchmem's B/op column is the headline: streaming folds residencies into
// the AVF integrals as their intervals close instead of buffering them.
func BenchmarkPrewarmCellAllocs(b *testing.B) {
	bench, ok := spec.ByName("mcf")
	if !ok {
		b.Fatal("mcf missing from roster")
	}
	cfg := pipeline.DefaultConfig()
	cfg.SquashTrigger = pipeline.TriggerL1Miss
	for _, mode := range []struct {
		name string
		keep bool
	}{{"materialized-trace", true}, {"streaming", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(core.Config{
					Workload: bench.Params, Pipeline: cfg,
					Commits: benchCommits, KeepTrace: mode.keep,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1Squashing regenerates Table 1: IPC, SDC AVF, DUE AVF and
// the IPC/AVF merit columns for the baseline and both squash triggers.
func BenchmarkTable1Squashing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		t := report.New("Table 1 (regenerated)",
			"design point", "IPC", "SDC AVF", "DUE AVF", "IPC/SDC", "IPC/DUE")
		for _, r := range rows {
			t.AddRow(r.Policy.String(), report.F2(r.IPC), report.Pct(r.SDCAVF),
				report.Pct(r.DUEAVF), report.F2(r.MeritSDC), report.F2(r.MeritDUE))
		}
		printTable("table1", t)
		base, l1 := rows[0], rows[1]
		b.ReportMetric(1-l1.SDCAVF/base.SDCAVF, "sdc-avf-reduction")
		b.ReportMetric(1-l1.IPC/base.IPC, "ipc-loss")
		b.ReportMetric(l1.MeritSDC/base.MeritSDC-1, "mitf-gain")
	}
}

// BenchmarkTable2Roster regenerates the benchmark roster of Table 2.
func BenchmarkTable2Roster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benches := spec.All()
		t := report.New("Table 2 (regenerated)", "benchmark", "suite", "skipped (M)")
		for _, bench := range benches {
			kind := "INT"
			if bench.FP {
				kind = "FP"
			}
			t.AddRow(bench.Name, kind, fmt.Sprintf("%d", bench.SkippedM))
		}
		printTable("table2", t)
		b.ReportMetric(float64(len(benches)), "benchmarks")
	}
}

// BenchmarkFigure1Outcomes regenerates Figure 1's fault-outcome taxonomy
// with an injection campaign on a representative benchmark.
func BenchmarkFigure1Outcomes(b *testing.B) {
	bench, _ := spec.ByName("twolf")
	for i := 0; i < b.N; i++ {
		rows, err := core.Outcomes(bench, benchCommits, 40_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		t := report.New("Figure 1 outcome taxonomy (regenerated, "+bench.Name+")",
			"configuration", "benign", "SDC", "false DUE", "true DUE", "suppressed")
		for _, r := range rows {
			benign := r.Counts[fault.OutcomeIdle] + r.Counts[fault.OutcomeNeverRead] +
				r.Counts[fault.OutcomeBenignUnACE]
			frac := func(n uint64) string {
				return report.Pct(float64(n) / float64(r.Strikes))
			}
			t.AddRow(r.Label, frac(benign), frac(r.Counts[fault.OutcomeSDC]),
				frac(r.Counts[fault.OutcomeFalseDUE]), frac(r.Counts[fault.OutcomeTrueDUE]),
				frac(r.Counts[fault.OutcomeSuppressed]))
		}
		printTable("figure1", t)
		var missed uint64
		for _, r := range rows {
			missed += r.Counts[fault.OutcomeMissedError]
		}
		b.ReportMetric(float64(missed), "missed-errors")
	}
}

// BenchmarkFigure2FalseDUE regenerates Figure 2: false-DUE coverage by the
// cumulative tracking mechanisms, with INT/FP/overall means.
func BenchmarkFigure2FalseDUE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Figure2(512)
		if err != nil {
			b.Fatal(err)
		}
		t := report.New("Figure 2 (regenerated): false DUE AVF remaining",
			"benchmark", "base", "pi-commit", "anti-pi", "pet-512", "pi-regfile", "pi-storebuf", "pi-memory")
		add := func(r core.Figure2Row) {
			cells := []string{r.Bench, report.Pct(r.BaseFalseDUE)}
			for _, rem := range r.Remaining {
				cells = append(cells, report.Pct(rem))
			}
			t.AddRow(cells...)
		}
		fp, intg := true, false
		mi, mf, ma := core.Figure2Mean(rows, &intg), core.Figure2Mean(rows, &fp), core.Figure2Mean(rows, nil)
		mi.Bench, mf.Bench, ma.Bench = "mean-INT", "mean-FP", "mean-ALL"
		for _, r := range append(rows, mi, mf, ma) {
			add(r)
		}
		printTable("figure2", t)
		b.ReportMetric(ma.CoveredFrac(0), "commit-coverage")
		b.ReportMetric(ma.CoveredFrac(1)-ma.CoveredFrac(0), "antipi-coverage")
		b.ReportMetric(ma.CoveredFrac(5), "total-coverage")
	}
}

// BenchmarkFigure3PETSweep regenerates Figure 3: FDD coverage versus
// PET-buffer size for the three dead populations.
func BenchmarkFigure3PETSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Figure3(nil)
		if err != nil {
			b.Fatal(err)
		}
		t := report.New("Figure 3 (regenerated): FDD coverage vs PET size",
			"entries", "FDD-reg", "+returns", "+memory")
		var at512 core.Figure3Row
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d", r.Entries), report.Pct(r.FDDReg),
				report.Pct(r.WithReturns), report.Pct(r.WithMemory))
			if r.Entries == 512 {
				at512 = r
			}
		}
		printTable("figure3", t)
		b.ReportMetric(at512.FDDReg, "pet512-fddreg-coverage")
	}
}

// BenchmarkFigure4Combined regenerates Figure 4: per-benchmark relative SDC
// and DUE AVFs under squash-L1 plus π-to-store tracking.
func BenchmarkFigure4Combined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		t := report.New("Figure 4 (regenerated): relative AVFs under combined techniques",
			"benchmark", "rel SDC", "rel DUE", "rel IPC")
		var sdc, due, ipc []float64
		for _, r := range rows {
			t.AddRow(r.Bench, report.F3(r.RelSDC), report.F3(r.RelDUE), report.F3(r.RelIPC))
			sdc = append(sdc, r.RelSDC)
			due = append(due, r.RelDUE)
			ipc = append(ipc, r.RelIPC)
		}
		t.AddRow("geomean", report.F3(core.GeoMean(sdc)), report.F3(core.GeoMean(due)),
			report.F3(core.GeoMean(ipc)))
		printTable("figure4", t)
		b.ReportMetric(1-core.GeoMean(sdc), "sdc-reduction")
		b.ReportMetric(1-core.GeoMean(due), "due-reduction")
		b.ReportMetric(1-core.GeoMean(ipc), "ipc-loss")
	}
}

// BenchmarkSection41Breakdown regenerates the §4.1 occupancy decomposition
// (paper: 29% ACE, 30% idle, 8% Ex-ACE, 33% valid un-ACE).
func BenchmarkSection41Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Breakdown()
		if err != nil {
			b.Fatal(err)
		}
		t := report.New("Section 4.1 occupancy breakdown (regenerated)",
			"benchmark", "idle", "never-read", "Ex-ACE", "un-ACE", "ACE")
		var idle, ex, un, ac float64
		for _, r := range rows {
			t.AddRow(r.Bench, report.Pct(r.Idle), report.Pct(r.NeverRead),
				report.Pct(r.ExACE), report.Pct(r.UnACE), report.Pct(r.ACE))
			idle += r.Idle
			ex += r.ExACE
			un += r.UnACE
			ac += r.ACE
		}
		n := float64(len(rows))
		printTable("breakdown", t)
		b.ReportMetric(ac/n, "ace-fraction")
		b.ReportMetric(idle/n, "idle-fraction")
		b.ReportMetric(ex/n, "exace-fraction")
		b.ReportMetric(un/n, "unace-fraction")
	}
}

// BenchmarkAblationThrottle compares fetch throttling against squashing —
// the action the paper studied and dropped for adding nothing (§3.1).
func BenchmarkAblationThrottle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.ThrottleAblation()
		if err != nil {
			b.Fatal(err)
		}
		t := report.New("Ablation (regenerated): squash vs fetch throttle",
			"design point", "IPC", "SDC AVF", "IPC/SDC")
		for _, r := range rows {
			t.AddRow(r.Policy.String(), report.F2(r.IPC), report.Pct(r.SDCAVF), report.F2(r.MeritSDC))
		}
		printTable("ablation-throttle", t)
	}
}

// BenchmarkAblationRefetchOverlap sweeps the refetch-overlap design knob
// (DESIGN.md decision 3): how much of the front-end refill hides under the
// miss shadow decides the IPC cost of squashing.
func BenchmarkAblationRefetchOverlap(b *testing.B) {
	bench, _ := spec.ByName("mcf")
	for i := 0; i < b.N; i++ {
		t := report.New("Ablation (regenerated): refetch overlap (mcf, squash-L1)",
			"overlap (cycles)", "IPC", "SDC AVF", "IPC/SDC")
		for _, overlap := range []int{0, 2, 4, 6, 8} {
			cfg := pipeline.DefaultConfig()
			cfg.SquashTrigger = pipeline.TriggerL1Miss
			cfg.RefetchOverlap = overlap
			res, err := core.Run(core.Config{Workload: bench.Params, Pipeline: cfg, Commits: benchCommits})
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(fmt.Sprintf("%d", overlap), report.F2(res.IPC),
				report.Pct(res.Report.SDCAVF()),
				report.F2(res.IPC/res.Report.SDCAVF()))
		}
		printTable("ablation-overlap", t)
	}
}

// BenchmarkAblationIQSize sweeps the instruction-queue size: exposure
// scales with the structure, a secondary observation behind the paper's
// motivation that error rates grow with device counts.
func BenchmarkAblationIQSize(b *testing.B) {
	bench, _ := spec.ByName("gzip-graphic")
	for i := 0; i < b.N; i++ {
		t := report.New("Ablation (regenerated): IQ size (gzip-graphic, baseline)",
			"IQ entries", "IPC", "SDC AVF", "idle")
		for _, size := range []int{16, 32, 64, 128} {
			cfg := pipeline.DefaultConfig()
			cfg.IQSize = size
			res, err := core.Run(core.Config{Workload: bench.Params, Pipeline: cfg, Commits: benchCommits})
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(fmt.Sprintf("%d", size), report.F2(res.IPC),
				report.Pct(res.Report.SDCAVF()), report.Pct(res.Report.IdleFraction()))
		}
		printTable("ablation-iqsize", t)
	}
}

// BenchmarkAblationOutOfOrder contrasts the paper's in-order machine with
// an out-of-order issue variant (§3.1: the squashing trade-off is
// "similar, though not as pronounced, for out-of-order machines" — less
// state pools behind misses, so squashing has less exposure to remove).
func BenchmarkAblationOutOfOrder(b *testing.B) {
	bench, _ := spec.ByName("mcf")
	for i := 0; i < b.N; i++ {
		t := report.New("Ablation (regenerated): in-order vs out-of-order (mcf)",
			"machine", "policy", "IPC", "SDC AVF", "IPC/SDC")
		for _, ooo := range []bool{false, true} {
			for _, trig := range []pipeline.Trigger{pipeline.TriggerNone, pipeline.TriggerL1Miss} {
				cfg := pipeline.DefaultConfig()
				cfg.OutOfOrder = ooo
				cfg.SquashTrigger = trig
				res, err := core.Run(core.Config{Workload: bench.Params, Pipeline: cfg, Commits: benchCommits})
				if err != nil {
					b.Fatal(err)
				}
				machine := "in-order"
				if ooo {
					machine = "out-of-order"
				}
				t.AddRow(machine, trig.String(), report.F2(res.IPC),
					report.Pct(res.Report.SDCAVF()),
					report.F2(res.IPC/res.Report.SDCAVF()))
			}
		}
		printTable("ablation-ooo", t)
	}
}
