package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ringVnodes is how many virtual points each worker owns on the hash
// circle. More vnodes smooth the keyspace split; 64 keeps the per-worker
// share within a few percent of even for small fleets while the ring stays
// tiny to build.
const ringVnodes = 64

// ring is a consistent-hash circle over worker addresses. Routing a cell's
// content address through the ring gives cache affinity twice over: the
// same cell lands on the same worker across sweeps (so the worker's
// fingerprint-keyed LRU shards the content-addressed space), and losing one
// worker reroutes only that worker's arc instead of reshuffling every
// assignment.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	addr string
}

// hash64 maps a key to a point on the circle: the first 8 bytes of its
// SHA-256, matching the fingerprint scheme's collision stance.
func hash64(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the circle over the given worker addresses.
func newRing(addrs []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(addrs)*ringVnodes)}
	for _, a := range addrs {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", a, v)),
				addr: a,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// route returns the worker owning key: the first point clockwise from the
// key's hash, wrapping at the top of the circle.
func (r *ring) route(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}
