package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile wires the standard -cpuprofile/-memprofile knobs into a command's
// flag set, so hot-loop regressions can be diagnosed on the real drivers
// (not just the micro-benchmarks) with `go tool pprof`.
type Profile struct {
	cpu *string
	mem *string
	f   *os.File
}

// NewProfile registers -cpuprofile and -memprofile on fs.
func NewProfile(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	p.cpu = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.mem = fs.String("memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given. Call it after flag
// parsing, paired with a deferred Stop.
func (p *Profile) Start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.f = f
	return nil
}

// Stop flushes the CPU profile and, when -memprofile was given, writes a
// post-GC heap profile. It is a no-op when profiling was never requested,
// so commands can defer it unconditionally. Write failures go to stderr:
// by the time a deferred Stop runs, the command's result is already decided
// and a lost profile must not change the exit code.
func (p *Profile) Stop() {
	if p.f != nil {
		pprof.StopCPUProfile()
		if err := p.f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
		}
		p.f = nil
	}
	if *p.mem == "" {
		return
	}
	f, err := os.Create(*p.mem)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		return
	}
	runtime.GC() // materialise up-to-date heap statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
	}
}
