//go:build !race

// Race instrumentation allocates on its own; the allocation budgets here
// only hold in plain builds.

package ace

import (
	"testing"

	"softerror/internal/isa"
	"softerror/internal/pipeline"
)

// sliceSource is a canned BatchSource over pre-built streams.
type sliceSource struct{ body, wrong []isa.Inst }

func (s *sliceSource) Body(n int) *isa.Inst  { return &s.body[n] }
func (s *sliceSource) Wrong(j int) *isa.Inst { return &s.wrong[j] }

// TestBatchCollectorEventPathZeroAlloc pins the arena property on the
// collector: once a BatchCollector has been through one Reset/feed cycle,
// further cycles — Reset included — allocate nothing. Every event record
// lands in storage retained across Reset, so a sweep reusing pooled
// collectors pays the collector's allocations once per pool slot, not once
// per grid cell.
func TestBatchCollectorEventPathZeroAlloc(t *testing.T) {
	const commits = 2000
	src := &sliceSource{body: make([]isa.Inst, commits+16)}
	for i := range src.body {
		src.body[i] = isa.Inst{Seq: uint64(i), Dest: isa.Reg(1 + i%8), Class: isa.ClassALU}
	}
	group := NewBatchGroup(src)
	cfg := StructureConfig(pipeline.DefaultConfig(), commits)
	cfg.FrontEnd = true
	cfg.StoreBuffer = true

	coll, err := NewBatchCollector(cfg, group)
	if err != nil {
		t.Fatal(err)
	}
	feed := func() {
		if err := coll.Reset(cfg, group); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < commits; n++ {
			ref := pipeline.BatchRef(n) // correct-path ref for body cursor n
			seq := uint64(n)
			enq := 2 * seq
			coll.BatchCommit(ref, seq, enq, enq+1)
			coll.BatchResidency(ref, seq, enq, enq+1, enq+3, true, false)
			coll.BatchFrontEnd(ref, seq, enq, enq+1, true)
			coll.BatchStoreBuffer(ref, seq, enq, enq+4)
		}
	}
	feed() // warm the record arrays and pending lists to their high-water marks

	if avg := testing.AllocsPerRun(10, feed); avg != 0 {
		t.Fatalf("warm collector event cycle allocates %.1f times per run, want 0", avg)
	}
}
