// Package cache implements the set-associative data-cache hierarchy of the
// modelled Itanium®2-like processor: an 8KB L0 (2-cycle hits), a 256KB L1
// (10-cycle hits), a 10MB L2 (25-cycle hits) and main memory behind them.
//
// The hierarchy's only job in this study is to decide, per access, which
// level services it — that classification is the paper's squash *trigger*
// ("L0 load miss" / "L1 load miss") — and what latency the consumer sees,
// which sets how long instructions pool in the instruction queue. Caches
// carry a protection attribute (none/parity/ECC) so the soft-error-rate
// composition can attribute SDC vs DUE contributions, and an optional
// per-line π bit used by the paper's mechanism (4), π bits on caches and
// memory.
package cache

import "fmt"

// Protection describes a structure's error detection/correction capability.
type Protection uint8

const (
	// ProtNone means faults go undetected (SDC-contributing).
	ProtNone Protection = iota
	// ProtParity detects single-bit faults but cannot correct them
	// (DUE-contributing).
	ProtParity
	// ProtECC corrects single-bit faults (no error contribution under the
	// paper's single-bit fault model).
	ProtECC
)

// String returns the conventional shorthand for the protection level.
func (p Protection) String() string {
	switch p {
	case ProtNone:
		return "none"
	case ProtParity:
		return "parity"
	case ProtECC:
		return "ecc"
	default:
		return fmt.Sprintf("protection(%d)", uint8(p))
	}
}

// Config sizes one cache level.
type Config struct {
	Name       string
	Size       int // total capacity in bytes
	LineSize   int // bytes per line; must be a power of two
	Assoc      int // ways per set
	HitLatency int // cycles to service a hit at this level
	Protection Protection
	PiBits     bool // allocate a π bit per line (paper §4.3.3 option 4)
}

func (c *Config) validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineSize)
	}
	if c.Size%(c.LineSize*c.Assoc) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by line*assoc", c.Name, c.Size)
	}
	sets := c.Size / (c.LineSize * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache %q: negative hit latency", c.Name)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	pi    bool
	lru   uint64 // last-touch stamp; larger = more recent
}

// Stats accumulates per-level access counts.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Eviction describes a line displaced from a cache, delivered to the
// hierarchy's OnEvict hook. The π-bit machinery uses it to detect π state
// going out of scope (paper §4.2: "when the π bit goes out of scope, an
// implementation should flag an error").
type Eviction struct {
	Level    int
	LineAddr uint64
	Dirty    bool
	Pi       bool
}

// Cache is one set-associative level. It is not safe for concurrent use.
type Cache struct {
	cfg        Config
	sets       [][]line
	setMask    uint64
	offsetBits uint
	clock      uint64
	stats      Stats
}

// NewCache builds a cache from cfg.
func NewCache(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	offsetBits := uint(0)
	for 1<<offsetBits < cfg.LineSize {
		offsetBits++
	}
	return &Cache{
		cfg:        cfg,
		sets:       sets,
		setMask:    uint64(nsets - 1),
		offsetBits: offsetBits,
	}, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Clone returns a deep copy of the cache: lines, replacement state and
// counters. Clones evolve independently; a clone of a warmed cache behaves
// bit-identically to a cache warmed by replaying the same accesses.
func (c *Cache) Clone() *Cache {
	nsets := len(c.sets)
	sets := make([][]line, nsets)
	backing := make([]line, nsets*c.cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*c.cfg.Assoc : (i+1)*c.cfg.Assoc]
		copy(sets[i], c.sets[i])
	}
	return &Cache{
		cfg:        c.cfg,
		sets:       sets,
		setMask:    c.setMask,
		offsetBits: c.offsetBits,
		clock:      c.clock,
		stats:      c.stats,
	}
}

// CloneInto is Clone writing into dst's backing storage when dst has the
// same configuration, so a pooled cache can be re-stamped from a warm
// template without reallocating its line arrays. Any dst (nil, or a cache
// of different geometry) falls back to a fresh Clone. The returned cache is
// bit-identical to Clone's result either way.
func (c *Cache) CloneInto(dst *Cache) *Cache {
	if dst == nil || dst.cfg != c.cfg || len(dst.sets) != len(c.sets) {
		return c.Clone()
	}
	for i := range c.sets {
		copy(dst.sets[i], c.sets[i])
	}
	dst.setMask = c.setMask
	dst.offsetBits = c.offsetBits
	dst.clock = c.clock
	dst.stats = c.stats
	return dst
}

// Stats returns a snapshot of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr truncates addr to its line address in this cache.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.offsetBits << c.offsetBits }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	la := addr >> c.offsetBits
	return la & c.setMask, la >> 0 // full line address as tag for simplicity
}

// Lookup probes without modifying replacement state or counters. It returns
// the line if present.
func (c *Cache) Lookup(addr uint64) (found bool, dirty bool, pi bool) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return true, ln.dirty, ln.pi
		}
	}
	return false, false, false
}

// Access probes for addr, updating LRU and counters. On a hit it returns
// hit=true. It does not allocate; use Fill after resolving a miss.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	c.stats.Accesses++
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.lru = c.clock
			if write {
				ln.dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Fill allocates a line for addr, evicting the LRU way if needed. The
// eviction (if any) is returned so the hierarchy can cascade writebacks and
// π-scope exits. write marks the new line dirty.
func (c *Cache) Fill(addr uint64, write bool) (ev Eviction, evicted bool) {
	c.clock++
	set, tag := c.index(addr)
	victim := -1
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag { // already present (double fill): refresh
			ln.lru = c.clock
			if write {
				ln.dirty = true
			}
			return Eviction{}, false
		}
		if !ln.valid {
			victim = i
		}
	}
	if victim < 0 {
		oldest := uint64(1<<64 - 1)
		for i := range c.sets[set] {
			if c.sets[set][i].lru < oldest {
				oldest = c.sets[set][i].lru
				victim = i
			}
		}
		old := &c.sets[set][victim]
		ev = Eviction{
			LineAddr: old.tag << c.offsetBits,
			Dirty:    old.dirty,
			Pi:       old.pi,
		}
		evicted = true
		c.stats.Evictions++
		if old.dirty {
			c.stats.Writebacks++
		}
	}
	c.sets[set][victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return ev, evicted
}

// SetPi sets or clears the π bit on the line holding addr, if present and
// if this cache was configured with π bits. It reports whether the line was
// found.
func (c *Cache) SetPi(addr uint64, v bool) bool {
	if !c.cfg.PiBits {
		return false
	}
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.pi = v
			return true
		}
	}
	return false
}

// Pi reads the π bit of the line holding addr; ok is false if the line is
// absent or the cache has no π bits.
func (c *Cache) Pi(addr uint64) (pi, ok bool) {
	if !c.cfg.PiBits {
		return false, false
	}
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return ln.pi, true
		}
	}
	return false, false
}

// Flush invalidates every line, returning the count that were dirty.
func (c *Cache) Flush() int {
	dirty := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].dirty {
				dirty++
			}
			c.sets[s][i] = line{}
		}
	}
	return dirty
}
