package workload

import (
	"softerror/internal/bpred"
	"softerror/internal/isa"
	"softerror/internal/rng"
)

// Register-range plan. The generator partitions the architectural integer
// file so that value lifetimes are controllable:
//
//	r1  .. r31  global result pool (long-lived, frequently read)
//	r32 .. r63  stacked procedure locals, 8 per call-depth band
//	r64 .. r71  TDD pool: values read only by designated dead consumers
//	r72 .. r127 scratch pool: FDD destinations, never read; picks are
//	            random so that overwrite distances spread over a wide
//	            range, giving the PET buffer a partial-coverage curve
//	            (Figure 3) rather than a step
//
// The FP file is split analogously. Deadness is *emergent*: the generator
// merely arranges def-use patterns; the ACE analyser rediscovers dead code
// from the committed stream exactly as the paper's methodology does.
const (
	globalLo, globalHi   = 1, 31
	stackedLo            = 32
	stackedBandSize      = 8
	stackedBands         = 4 // call depths 0..3 wrap around
	tddLo, tddHi         = 64, 71
	scratchLo, scratchHi = 72, 127

	fpGlobalLo, fpGlobalHi = 1, 63

	maxCallDepth = 32
)

// Stats records what the generator emitted, for calibration tests and
// reports. Counts are of correct-path instructions only.
type Stats struct {
	Total      uint64
	ByClass    [16]uint64
	Predicated uint64
	PredFalse  uint64
	Calls      uint64
	Returns    uint64
	// Intent counters: instructions the generator *constructed* to be dead.
	// The ACE analysis independently rediscovers deadness; tests compare.
	IntentFDDReg uint64
	IntentTDDReg uint64
	IntentFDDMem uint64
	IntentTDDMem uint64
	IntentLocal  uint64 // procedure-local writes eligible to die at return
	WrongPath    uint64 // wrong-path instructions handed to the pipeline
}

// Generator synthesises the dynamic instruction stream. It is forward-only:
// squash/refetch replay is the pipeline's responsibility. Correct-path and
// wrong-path instructions share one sequence-number space so that fetch
// order is total.
type Generator struct {
	p Params

	mix    *rng.Stream
	branch *rng.Stream
	pred   *rng.Stream
	addrs  *rng.Stream
	wrong  *rng.Stream

	addr addrStream
	bp   bpred.Model

	seq uint64
	pc  uint64

	// Basic-block state.
	blockLeft     int
	pendingBubble uint8

	// Procedure state.
	depth     int
	frames    []frame
	calleeLen []int // remaining instructions per active frame

	// Pending multi-instruction idioms (TDD chains, call/return pairs).
	pending []isa.Inst

	// Register pools.
	intWrite  rrCounter // global int results
	fpWrite   rrCounter
	tddWrite  rrCounter
	predWrite rrCounter

	recentInt  recentRing
	recentFP   recentRing
	recentPred recentRing

	// loadMature delays load results from entering the source pool,
	// modelling compiler load hoisting (Params.LoadUseDistance).
	loadMature []maturing

	stats Stats
}

// maturing is a load result that becomes a legal source at a future
// instruction count.
type maturing struct {
	reg isa.Reg
	at  uint64
}

type frame struct {
	band     int       // stacked band index
	written  []isa.Reg // locals written in this invocation
	readable []isa.Reg // locals that may be used as sources
	nextSlot int
}

// rrCounter allocates registers round-robin from [lo, hi].
type rrCounter struct {
	lo, hi, next int
}

func (c *rrCounter) take() int {
	if c.next < c.lo || c.next > c.hi {
		c.next = c.lo
	}
	v := c.next
	c.next++
	if c.next > c.hi {
		c.next = c.lo
	}
	return v
}

// recentRing remembers recently written registers for source selection,
// biasing picks toward recent writes to create realistic dependence
// distances.
type recentRing struct {
	buf  []isa.Reg
	head int
	size int
}

func newRecentRing(capacity int) recentRing {
	return recentRing{buf: make([]isa.Reg, capacity)}
}

func (r *recentRing) push(reg isa.Reg) {
	r.buf[r.head] = reg
	r.head = (r.head + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
}

// pick returns a recently written register, geometrically biased toward the
// most recent with mean look-back meanDist. Returns RegNone if empty.
func (r *recentRing) pick(s *rng.Stream, meanDist int) isa.Reg {
	if r.size == 0 {
		return isa.RegNone
	}
	back := s.Geometric(1.0/float64(meanDist)) % r.size
	idx := (r.head - 1 - back + 2*len(r.buf)) % len(r.buf)
	return r.buf[idx]
}

// New constructs a Generator. Params must validate.
func New(p Params) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(p.Seed, 0x5e7e)
	g := &Generator{
		p:      p,
		mix:    root.Derive("mix"),
		branch: root.Derive("branch"),
		pred:   root.Derive("pred"),
		addrs:  root.Derive("addr"),
		wrong:  root.Derive("wrong"),

		intWrite:  rrCounter{lo: globalLo, hi: globalHi},
		fpWrite:   rrCounter{lo: fpGlobalLo, hi: fpGlobalHi},
		tddWrite:  rrCounter{lo: tddLo, hi: tddHi},
		predWrite: rrCounter{lo: 1, hi: isa.NumPredRegs - 1},

		recentInt:  newRecentRing(32),
		recentFP:   newRecentRing(32),
		recentPred: newRecentRing(8),

		pc: 0x4000_0000,
	}
	g.addr = newAddrStream(&p, g.addrs)
	switch p.BranchPredictor {
	case "gshare":
		g.bp = bpred.NewGshare(14, 10)
	case "bimodal":
		g.bp = bpred.NewBimodal(14)
	default:
		g.bp = bpred.NewStatistical(p.MispredictRate, root.Derive("bp"))
	}
	g.blockLeft = g.blockLen()
	// Prime the value pools so early instructions have sources.
	for i := 0; i < 8; i++ {
		g.recentInt.push(isa.IntReg(globalLo + i))
		g.recentFP.push(isa.FPReg(fpGlobalLo + i))
	}
	return g, nil
}

// MustNew is New for callers with statically valid Params (tests, examples).
func MustNew(p Params) *Generator {
	g, err := New(p)
	if err != nil {
		panic(err)
	}
	return g
}

// Stats returns a snapshot of the generator's emission statistics.
func (g *Generator) Stats() Stats { return g.stats }

func (g *Generator) blockLen() int {
	n := 1 + g.branch.Geometric(1.0/float64(g.p.MeanBlockLen))
	return n
}

func (g *Generator) nextSeq() uint64 {
	s := g.seq
	g.seq++
	return s
}

func (g *Generator) nextPC() uint64 {
	pc := g.pc
	g.pc += 4
	return pc
}

// Next returns the next correct-path instruction. The stream is infinite.
func (g *Generator) Next() isa.Inst {
	var in isa.Inst
	switch {
	case len(g.pending) > 0:
		in = g.pending[0]
		g.pending = g.pending[1:]
		in.Seq = g.nextSeq()
		in.PC = g.nextPC()
	default:
		in = g.synthesise()
	}
	in.CallDepth = uint8(g.depth)
	if g.pendingBubble > 0 {
		in.FetchBubble = g.pendingBubble
		g.pendingBubble = 0
	}
	g.stats.Total++
	g.stats.ByClass[in.Class]++
	for len(g.loadMature) > 0 && g.loadMature[0].at <= g.stats.Total {
		g.recentInt.push(g.loadMature[0].reg)
		g.loadMature = g.loadMature[1:]
	}
	if in.PredGuard != isa.RegNone {
		g.stats.Predicated++
		if in.PredFalse {
			g.stats.PredFalse++
		}
	}
	return in
}

// synthesise draws one new instruction (or schedules an idiom and returns
// its first instruction).
func (g *Generator) synthesise() isa.Inst {
	// Procedure bookkeeping: retire the innermost frame when exhausted.
	if g.depth > 0 {
		top := len(g.calleeLen) - 1
		if g.calleeLen[top] <= 0 {
			return g.emitReturn()
		}
		g.calleeLen[top]--
	}

	// End of basic block: emit a control-flow instruction.
	if g.blockLeft <= 0 {
		g.blockLeft = g.blockLen()
		if g.depth < maxCallDepth && g.mix.Bool(g.callProb()) {
			return g.emitCall()
		}
		return g.emitBranch()
	}
	g.blockLeft--

	return g.emitBody()
}

// callProb converts CallFrac (per-instruction) into a per-block-end
// probability so the dynamic call fraction lands near CallFrac.
func (g *Generator) callProb() float64 {
	perBlock := g.p.CallFrac * float64(g.p.MeanBlockLen+1)
	if perBlock > 1 {
		return 1
	}
	return perBlock
}

func (g *Generator) emitBody() isa.Inst {
	p := &g.p
	weights := []float64{
		p.LoadFrac,         // 0 load
		p.StoreFrac,        // 1 store
		p.FPFrac,           // 2 fp
		p.NopFrac,          // 3 nop
		p.PrefetchFrac,     // 4 prefetch
		p.HintFrac,         // 5 hint
		p.FDDRegFrac,       // 6 fdd-reg
		p.TDDRegFrac,       // 7 tdd-reg chain
		p.FDDMemFrac,       // 8 dead store (+tdd-mem producer)
		p.IOFrac,           // 9 uncached I/O write
		remainderWeight(p), // 10 live alu
	}
	switch g.mix.Pick(weights) {
	case 0:
		return g.emitLoad()
	case 1:
		return g.emitStore()
	case 2:
		return g.emitFP()
	case 3:
		return g.plain(isa.ClassNop)
	case 4:
		return g.emitPrefetch()
	case 5:
		return g.plain(isa.ClassHint)
	case 6:
		return g.emitFDDReg()
	case 7:
		return g.emitTDDChain()
	case 8:
		return g.emitDeadStore()
	case 9:
		return g.emitIO()
	default:
		return g.emitALU()
	}
}

// emitIO writes a live value to an uncached device address: the program's
// observable output, and the signalling endpoint for fully-deferred π
// tracking.
func (g *Generator) emitIO() isa.Inst {
	return isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassIO,
		Dest: isa.RegNone, Src1: g.srcReg(), Src2: isa.RegNone,
		PredGuard: isa.RegNone, Addr: ioBase + uint64(g.mix.Intn(ioSize))&^7,
		MemSize: 8,
	}
}

func remainderWeight(p *Params) float64 {
	used := p.LoadFrac + p.StoreFrac + p.FPFrac + p.IOFrac + p.NopFrac +
		p.PrefetchFrac + p.HintFrac + p.FDDRegFrac + p.TDDRegFrac + p.FDDMemFrac
	rem := 1 - used
	if rem < 0 {
		return 0
	}
	return rem
}

// plain emits a bare instruction of class c with no operands.
func (g *Generator) plain(c isa.Class) isa.Inst {
	return isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: c,
		Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		PredGuard: isa.RegNone,
	}
}

// destReg allocates a destination register for a live value and records it
// as readable. Inside a procedure, a share of writes target frame locals.
func (g *Generator) destReg() isa.Reg {
	if g.depth > 0 && g.mix.Bool(0.5) {
		return g.localDest()
	}
	r := isa.IntReg(g.intWrite.take())
	g.recentInt.push(r)
	return r
}

// localDest writes a procedure-local register; with probability
// DeadLocalFrac the local is never offered as a source, so it dies when a
// later invocation of the same band overwrites it (dead via return).
func (g *Generator) localDest() isa.Reg {
	f := &g.frames[len(g.frames)-1]
	slot := stackedLo + f.band*stackedBandSize + f.nextSlot%stackedBandSize
	f.nextSlot++
	r := isa.IntReg(slot)
	f.written = append(f.written, r)
	g.stats.IntentLocal++
	if !g.mix.Bool(g.p.DeadLocalFrac) {
		f.readable = append(f.readable, r)
		g.recentInt.push(r)
	}
	return r
}

// srcReg picks a source register for integer data.
func (g *Generator) srcReg() isa.Reg {
	// Prefer current-frame locals occasionally to keep them live.
	if g.depth > 0 {
		f := &g.frames[len(g.frames)-1]
		if len(f.readable) > 0 && g.mix.Bool(0.3) {
			return f.readable[g.mix.Intn(len(f.readable))]
		}
	}
	if r := g.recentInt.pick(g.mix, g.p.DepDistance); r != isa.RegNone {
		return r
	}
	return isa.IntReg(globalLo)
}

func (g *Generator) srcFP() isa.Reg {
	if r := g.recentFP.pick(g.mix, g.p.DepDistance); r != isa.RegNone {
		return r
	}
	return isa.FPReg(fpGlobalLo)
}

// guard optionally predicates the instruction, resolving the predicate
// dynamically.
func (g *Generator) guard(in *isa.Inst) {
	if !g.pred.Bool(g.p.PredicatedFrac) {
		return
	}
	pg := g.recentPred.pick(g.pred, 2)
	if pg == isa.RegNone {
		return
	}
	in.PredGuard = pg
	in.PredFalse = g.pred.Bool(g.p.PredFalseProb)
}

func (g *Generator) emitALU() isa.Inst {
	in := isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassALU,
		Src1: g.srcReg(), Src2: g.srcReg(), PredGuard: isa.RegNone,
	}
	// A slice of ALU work is compares producing predicates.
	if g.mix.Bool(0.18) {
		pr := isa.PredReg(g.predWrite.take())
		in.Dest = pr
		g.recentPred.push(pr)
	} else {
		in.Dest = g.destReg()
	}
	g.guard(&in)
	if in.PredFalse && in.Dest.IsPred() {
		// A false-guarded compare writes nothing; drop it from the
		// predicate pool implicitly (it was pushed only on allocation).
	}
	return in
}

func (g *Generator) emitFP() isa.Inst {
	in := isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassFPU,
		Src1: g.srcFP(), Src2: g.srcFP(), PredGuard: isa.RegNone,
	}
	r := isa.FPReg(g.fpWrite.take())
	in.Dest = r
	g.recentFP.push(r)
	g.guard(&in)
	return in
}

func (g *Generator) emitLoad() isa.Inst {
	in := isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassLoad,
		Src1: g.srcReg(), Src2: isa.RegNone, PredGuard: isa.RegNone,
		Addr: g.addr.data(), MemSize: 8,
	}
	if g.p.LoadUseDistance > 0 {
		// Hoisted load: the result joins the source pool only after the
		// scheduled load-use distance, so short misses are hidden.
		r := isa.IntReg(g.intWrite.take())
		in.Dest = r
		g.loadMature = append(g.loadMature, maturing{
			reg: r,
			at:  g.stats.Total + uint64(g.p.LoadUseDistance),
		})
	} else {
		in.Dest = g.destReg()
	}
	g.guard(&in)
	return in
}

func (g *Generator) emitStore() isa.Inst {
	in := isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassStore,
		Dest: isa.RegNone, Src1: g.srcReg(), Src2: g.srcReg(),
		PredGuard: isa.RegNone, Addr: g.addr.data(), MemSize: 8,
	}
	g.guard(&in)
	return in
}

func (g *Generator) emitPrefetch() isa.Inst {
	return isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassPrefetch,
		Dest: isa.RegNone, Src1: g.srcReg(), Src2: isa.RegNone,
		PredGuard: isa.RegNone, Addr: g.addr.data(), MemSize: 64,
	}
}

// emitFDDReg writes a scratch register that no instruction ever reads; it
// becomes first-level dynamically dead when the scratch slot is recycled.
func (g *Generator) emitFDDReg() isa.Inst {
	g.stats.IntentFDDReg++
	return isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassALU,
		Dest: g.scratchReg(),
		Src1: g.srcReg(), Src2: g.srcReg(), PredGuard: isa.RegNone,
	}
}

// scratchReg picks a random never-read register. Picks are two-tier —
// a small hot subset recycles quickly, the large cold remainder slowly —
// so FDD def-to-overwrite distances spread from tens to thousands of
// commits, giving the PET buffer the partial-coverage curve of Figure 3.
func (g *Generator) scratchReg() isa.Reg {
	const hotRegs = 6
	if g.mix.Bool(0.3) {
		return isa.IntReg(scratchLo + g.mix.Intn(hotRegs))
	}
	return isa.IntReg(scratchLo + hotRegs + g.mix.Intn(scratchHi-scratchLo+1-hotRegs))
}

// emitTDDChain produces a value in the TDD pool and schedules a consumer
// that is itself first-level dead, making the producer transitively dead.
// Occasionally the chain is two deep.
func (g *Generator) emitTDDChain() isa.Inst {
	tddReg := isa.IntReg(g.tddWrite.take())
	producer := isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassALU,
		Dest: tddReg, Src1: g.srcReg(), Src2: g.srcReg(),
		PredGuard: isa.RegNone,
	}
	g.stats.IntentTDDReg++
	if g.mix.Bool(0.25) {
		// Two-level chain: producer -> mid (TDD) -> terminal (FDD).
		mid := isa.IntReg(g.tddWrite.take())
		g.pending = append(g.pending,
			isa.Inst{Class: isa.ClassALU, Dest: mid, Src1: tddReg,
				Src2: isa.RegNone, PredGuard: isa.RegNone},
			isa.Inst{Class: isa.ClassALU,
				Dest: g.scratchReg(),
				Src1: mid, Src2: isa.RegNone, PredGuard: isa.RegNone},
		)
		g.stats.IntentTDDReg++
		g.stats.IntentFDDReg++
	} else {
		g.pending = append(g.pending,
			isa.Inst{Class: isa.ClassALU,
				Dest: g.scratchReg(),
				Src1: tddReg, Src2: isa.RegNone, PredGuard: isa.RegNone},
		)
		g.stats.IntentFDDReg++
	}
	return producer
}

// emitDeadStore stores to a write-only address ring: the value is
// overwritten before any load, making the store FDD-via-memory and its
// value producer TDD-via-memory.
func (g *Generator) emitDeadStore() isa.Inst {
	valueReg := isa.IntReg(g.tddWrite.take())
	producer := isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassALU,
		Dest: valueReg, Src1: g.srcReg(), Src2: isa.RegNone,
		PredGuard: isa.RegNone,
	}
	g.stats.IntentTDDMem++
	g.stats.IntentFDDMem++
	g.pending = append(g.pending, isa.Inst{
		Class: isa.ClassStore, Dest: isa.RegNone,
		Src1: valueReg, Src2: isa.RegNone, PredGuard: isa.RegNone,
		Addr: g.addr.deadStore(), MemSize: 8,
	})
	return producer
}

// rollBubble schedules a front-end delivery gap ahead of the next block
// with probability FetchBubbleProb.
func (g *Generator) rollBubble() {
	if g.p.FetchBubbleProb <= 0 || !g.branch.Bool(g.p.FetchBubbleProb) {
		return
	}
	n := 1 + g.branch.Geometric(1.0/float64(g.p.FetchBubbleMean))
	if n > 255 {
		n = 255
	}
	g.pendingBubble = uint8(n)
}

func (g *Generator) emitBranch() isa.Inst {
	g.rollBubble()
	taken := g.branch.Bool(g.p.TakenProb)
	in := isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassBranch,
		Dest: isa.RegNone, Src2: isa.RegNone,
		PredGuard: isa.RegNone, Taken: taken,
	}
	// Branches consume a predicate when one is live, else an int reg.
	if p := g.recentPred.pick(g.branch, 2); p != isa.RegNone {
		in.Src1 = p
	} else {
		in.Src1 = g.srcReg()
	}
	in.Mispred = g.bp.Mispredict(in.PC, taken)
	if taken {
		g.pc += uint64(4 * (1 + g.branch.Intn(64)))
	}
	return in
}

func (g *Generator) emitCall() isa.Inst {
	g.rollBubble()
	g.stats.Calls++
	in := isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassCall,
		Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		PredGuard: isa.RegNone, Taken: true,
	}
	in.Mispred = g.branch.Bool(g.p.MispredictRate * 0.3)
	g.depth++
	g.frames = append(g.frames, frame{band: (g.depth - 1) % stackedBands})
	bodyLen := 1 + g.branch.Geometric(1.0/float64(g.p.MeanCalleeLen))
	g.calleeLen = append(g.calleeLen, bodyLen)
	return in
}

func (g *Generator) emitReturn() isa.Inst {
	g.rollBubble()
	g.stats.Returns++
	in := isa.Inst{
		Seq: g.nextSeq(), PC: g.nextPC(), Class: isa.ClassReturn,
		Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		PredGuard: isa.RegNone, Taken: true,
	}
	in.Mispred = g.branch.Bool(g.p.MispredictRate * 0.3)
	g.depth--
	g.frames = g.frames[:len(g.frames)-1]
	g.calleeLen = g.calleeLen[:len(g.calleeLen)-1]
	return in
}

// NextWrong returns a wrong-path instruction: plausible in shape but with
// speculative register and address operands. The paper fetches
// mis-speculated instructions without correct memory addresses; we do the
// same. Wrong-path instructions never commit.
func (g *Generator) NextWrong() isa.Inst {
	g.stats.WrongPath++
	in := wrongInst(g.wrong)
	in.Seq = g.nextSeq()
	in.PC = g.nextPC()
	in.CallDepth = uint8(g.depth)
	return in
}

// wrongInst synthesises the content of one wrong-path instruction from the
// wrong-path stream alone; Seq, PC and CallDepth are the caller's to
// assign. Keeping the draw a pure function of the stream is what lets the
// batch evaluator memoise the wrong-path sequence once and replay prefixes
// of it into any number of machine configurations.
func wrongInst(s *rng.Stream) isa.Inst {
	in := isa.Inst{
		Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		PredGuard: isa.RegNone, WrongPath: true,
	}
	switch s.Pick([]float64{0.5, 0.15, 0.1, 0.2, 0.05}) {
	case 0:
		in.Class = isa.ClassALU
		in.Dest = isa.IntReg(globalLo + s.Intn(globalHi-globalLo+1))
		in.Src1 = isa.IntReg(globalLo + s.Intn(globalHi-globalLo+1))
		in.Src2 = isa.IntReg(globalLo + s.Intn(globalHi-globalLo+1))
	case 1:
		in.Class = isa.ClassLoad
		in.Dest = isa.IntReg(globalLo + s.Intn(globalHi-globalLo+1))
		in.Src1 = isa.IntReg(globalLo + s.Intn(globalHi-globalLo+1))
		in.Addr = align(wrongBase + uint64(s.Intn(wrongSize)))
		in.MemSize = 8
	case 2:
		in.Class = isa.ClassFPU
		in.Dest = isa.FPReg(fpGlobalLo + s.Intn(fpGlobalHi-fpGlobalLo+1))
		in.Src1 = isa.FPReg(fpGlobalLo + s.Intn(fpGlobalHi-fpGlobalLo+1))
	case 3:
		in.Class = isa.ClassNop
	default:
		in.Class = isa.ClassBranch
		in.Src1 = isa.IntReg(globalLo + s.Intn(globalHi-globalLo+1))
	}
	return in
}
