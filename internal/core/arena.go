package core

import (
	"sync"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// This file is the arena layer of the batched evaluation path. Profiling
// the batched sweep showed the steady state dominated by four rebuild
// costs per wave: warm hierarchy clones (~40% of bytes), collector record
// arrays (~26%), the workload's decode memos (~20%) and the deadness
// analyses (~4%). An Arena keeps all four alive between waves — pooled
// warm hierarchies re-stamped via cache.CloneInto, collectors re-armed via
// ace.BatchCollector.Reset, decoded workload.Shared streams (with their
// ace.BatchGroup deadness memos) cached by Params — plus the pipeline's
// lane/slab arena. Reuse is invisible in the results: every reused object
// is either re-stamped bit-identically, fully reset, or a deterministic
// memo whose content depends only on the workload parameters. The
// arena-reuse seraudit check pins fresh-arena ≡ reused-arena byte
// identity; batched-independent and the -j/fleet identities pin the rest.

const (
	// arenaStreamCap bounds the decoded-workload cache per arena. A sweep
	// leader walks one benchmark per batch, so a tiny MRU list already
	// serves checkpoint resumes and repeated grid chunks while keeping a
	// long-lived daemon's arena memory proportional to a handful of memos.
	arenaStreamCap = 4
	// arenaMemCap and arenaCollCap bound the pooled warm hierarchies and
	// collectors; both match the widest batch (sweep groups cap at 8
	// lanes, benchmarks' spec columns at 16).
	arenaMemCap  = 16
	arenaCollCap = 16
	// arenaPoolCap bounds an ArenaPool's free list; checked-out arenas are
	// unbounded (one per concurrent batch leader), the cap only limits how
	// many idle arenas a pool keeps warm.
	arenaPoolCap = 32
)

// streamEntry is one decoded workload kept alive across batch waves: the
// shared stream memo plus its analysis group, whose deadness memos are
// thereby shared across every batch group of a grid that runs this
// workload — not just within one group.
type streamEntry struct {
	params workload.Params
	sh     *workload.Shared
	group  *ace.BatchGroup
}

// Arena owns one worker goroutine's reusable evaluation state. The zero
// value is ready to use. An Arena is not safe for concurrent use: check
// one out per goroutine (ArenaPool) or own one per worker.
type Arena struct {
	pipe    pipeline.BatchArena
	streams []*streamEntry // MRU-ordered decoded workloads
	mems    []*cache.Hierarchy
	colls   []*ace.BatchCollector
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// stream returns the decoded shared stream and analysis group for w,
// reusing the cached entry when this arena has evaluated w before. The
// memo content is deterministic in w (generation is seeded by the
// workload parameters), so a reused entry is byte-for-byte the stream a
// fresh decode would produce — just already materialised.
func (a *Arena) stream(w workload.Params) (*workload.Shared, *ace.BatchGroup, error) {
	for i, e := range a.streams {
		if e.params == w {
			copy(a.streams[1:i+1], a.streams[:i])
			a.streams[0] = e
			return e.sh, e.group, nil
		}
	}
	sh, err := workload.NewShared(w)
	if err != nil {
		return nil, nil, err
	}
	e := &streamEntry{params: w, sh: sh, group: ace.NewBatchGroup(sh)}
	if len(a.streams) < arenaStreamCap {
		a.streams = append(a.streams, nil)
	}
	copy(a.streams[1:], a.streams)
	a.streams[0] = e
	return sh, e.group, nil
}

// warmHierarchy returns a warmed default hierarchy, re-stamping a pooled
// one when available (bit-identical to a fresh workload.WarmedDefault).
func (a *Arena) warmHierarchy() *cache.Hierarchy {
	var dst *cache.Hierarchy
	if n := len(a.mems); n > 0 {
		dst, a.mems = a.mems[n-1], a.mems[:n-1]
	}
	return workload.WarmedInto(dst)
}

// putHierarchy returns a finished lane's hierarchy to the pool.
func (a *Arena) putHierarchy(h *cache.Hierarchy) {
	if h != nil && len(a.mems) < arenaMemCap {
		a.mems = append(a.mems, h)
	}
}

// collector returns a collector armed for cfg over group, re-using a
// pooled one's storage when available.
func (a *Arena) collector(cfg ace.CollectorConfig, group *ace.BatchGroup) (*ace.BatchCollector, error) {
	if n := len(a.colls); n > 0 {
		c := a.colls[n-1]
		a.colls = a.colls[:n-1]
		if err := c.Reset(cfg, group); err != nil {
			return nil, err
		}
		return c, nil
	}
	return ace.NewBatchCollector(cfg, group)
}

// putCollector returns a finished collector to the pool. Must only be
// called after Finish: the reports Finish returned are detached copies,
// so the next Reset cannot reach previously returned results.
func (a *Arena) putCollector(c *ace.BatchCollector) {
	if c != nil && len(a.colls) < arenaCollCap {
		a.colls = append(a.colls, c)
	}
}

// ArenaPool hands arenas to worker goroutines: Get returns a warm arena
// (or a fresh one when none is idle), Put parks it for the next worker.
// Sharing one pool across a grid — or across a daemon's jobs and fleet
// leases — is what carries decoded streams and warm buffers from one
// batch wave to the next. The zero value is ready to use.
type ArenaPool struct {
	mu   sync.Mutex
	free []*Arena
}

// NewArenaPool returns an empty pool.
func NewArenaPool() *ArenaPool { return &ArenaPool{} }

// Get checks an arena out of the pool, allocating one when empty.
func (p *ArenaPool) Get() *Arena {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free = p.free[:n-1]
		return a
	}
	return NewArena()
}

// Put returns an arena to the pool. The caller must be done with it: an
// arena serves one goroutine at a time.
func (p *ArenaPool) Put(a *Arena) {
	if a == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < arenaPoolCap {
		p.free = append(p.free, a)
	}
}

// defaultArenas backs RunBatchContext, so every batched caller — suites,
// benchmarks, ad-hoc drivers — reuses evaluation state across calls even
// without plumbing a pool of its own.
var defaultArenas = NewArenaPool()
