package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"softerror/internal/checkpoint"
	"softerror/internal/sweep"
)

func jsonDecode(r *http.Request, v any) error { return json.NewDecoder(r.Body).Decode(v) }

func jsonEncode(w http.ResponseWriter, v any) { json.NewEncoder(w).Encode(v) }

// testGrid builds a small real grid through the wire spec, exactly as a
// worker would.
func testGrid(t *testing.T, sp GridSpec) *sweep.Grid {
	t.Helper()
	g, err := sp.Build()
	if err != nil {
		t.Fatalf("Build(%+v): %v", sp, err)
	}
	return g
}

func TestSpecRoundTrip(t *testing.T) {
	sp := GridSpec{
		Benches:    []string{"gzip-graphic", "mcf"},
		Policies:   []string{"baseline", "squash-l1"},
		IQSizes:    []int{16, 64},
		OutOfOrder: []bool{false, true},
		Commits:    5000,
	}
	g := testGrid(t, sp)
	back := testGrid(t, SpecOf(g))
	if got, want := back.Fingerprint(), g.Fingerprint(); got != want {
		t.Fatalf("SpecOf∘Build drifts the fingerprint: %s vs %s", got, want)
	}
	if !reflect.DeepEqual(SpecOf(back), SpecOf(g)) {
		t.Fatalf("SpecOf not stable across a round trip: %+v vs %+v", SpecOf(back), SpecOf(g))
	}
}

func TestGridSpecBuildRejects(t *testing.T) {
	cases := []GridSpec{
		{},
		{Benches: []string{"mcf"}},
		{Benches: []string{"nope"}, Policies: []string{"baseline"}},
		{Benches: []string{"mcf"}, Policies: []string{"nope"}},
		{Benches: []string{"mcf"}, Policies: []string{"baseline"}, IQSizes: []int{0}},
	}
	for _, sp := range cases {
		if _, err := sp.Build(); !errors.Is(err, ErrBadGrid) {
			t.Errorf("Build(%+v) = %v, want ErrBadGrid", sp, err)
		}
	}
}

func TestLeaseValidateTyped(t *testing.T) {
	const size = 10
	cases := []struct {
		ranges []Range
		want   error
	}{
		{nil, ErrEmptyLease},
		{[]Range{}, ErrEmptyLease},
		{[]Range{{2, 2}}, ErrEmptyLease},
		{[]Range{{3, 1}}, ErrInvertedRange},
		{[]Range{{-1, 2}}, ErrInvertedRange},
		{[]Range{{8, 11}}, ErrRangeBounds},
		{[]Range{{0, 3}, {2, 5}}, ErrRangeOverlap},
		{[]Range{{4, 6}, {0, 2}}, ErrRangeOverlap},
		{[]Range{{0, 3}, {5, 10}}, nil},
	}
	for _, c := range cases {
		err := LeaseRequest{Lease: "t", Ranges: c.ranges}.Validate(size)
		if c.want == nil {
			if err != nil {
				t.Errorf("Validate(%v) = %v, want nil", c.ranges, err)
			}
		} else if !errors.Is(err, c.want) {
			t.Errorf("Validate(%v) = %v, want %v", c.ranges, err, c.want)
		}
	}
}

func TestRegisterValidateTyped(t *testing.T) {
	for _, bad := range []string{
		"", "localhost", "localhost:0", "localhost:70000", "localhost:abc",
		"http://localhost:8081", "host:80/path", "host name:80", ":8080",
		"#:1", "127.0.0.1:8081?x=1", "user@host:80", "host\n:80",
	} {
		if err := (RegisterRequest{Addr: bad}).Validate(); !errors.Is(err, ErrBadAddr) {
			t.Errorf("Validate(%q) = %v, want ErrBadAddr", bad, err)
		}
	}
	for _, good := range []string{"127.0.0.1:8081", "[::1]:9", "worker-3.fleet.internal:443"} {
		if err := (RegisterRequest{Addr: good}).Validate(); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", good, err)
		}
	}
}

func TestRangesOfCompression(t *testing.T) {
	cases := []struct {
		cells []int
		want  []Range
	}{
		{nil, nil},
		{[]int{3}, []Range{{3, 4}}},
		{[]int{0, 1, 2}, []Range{{0, 3}}},
		{[]int{0, 2, 3, 7}, []Range{{0, 1}, {2, 4}, {7, 8}}},
	}
	for _, c := range cases {
		if got := rangesOf(c.cells); !reflect.DeepEqual(got, c.want) {
			t.Errorf("rangesOf(%v) = %v, want %v", c.cells, got, c.want)
		}
	}
}

func TestRingAffinity(t *testing.T) {
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("cell-%d", i)
	}
	full := newRing([]string{"a:1", "b:1", "c:1"})
	shrunk := newRing([]string{"a:1", "b:1"})
	moved := 0
	counts := map[string]int{}
	for _, k := range keys {
		was := full.route(k)
		counts[was]++
		now := shrunk.route(k)
		if was != "c:1" && now != was {
			t.Fatalf("key %q moved %s -> %s though its worker survived", k, was, now)
		}
		if was == "c:1" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key ever routed to the removed worker — the ring is not spreading keys")
	}
	for w, n := range counts {
		if n == 0 {
			t.Fatalf("worker %s owns no keys of %d", w, len(keys))
		}
	}
}

// crashPlan is a per-worker explicit ChaosFunc: one named worker fails
// every lease delivery.
func crashPlan(dead string) ChaosFunc {
	return func(worker string, r *http.Request) Fault {
		if worker == dead && r.URL.Path == "/v1/lease" {
			return Fault{Kind: FaultCrash}
		}
		return Fault{}
	}
}

func fastConfig() Config {
	return Config{
		LeaseCells:       2,
		LeaseTimeout:     5 * time.Second,
		Retries:          1,
		BackoffBase:      time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		HeartbeatEvery:   20 * time.Millisecond,
		HeartbeatTimeout: 200 * time.Millisecond,
		Seed:             7,
	}
}

func smallSpec() GridSpec {
	return GridSpec{
		Benches:  []string{"mcf"},
		Policies: []string{"baseline"},
		IQSizes:  []int{16, 32, 64},
		Commits:  400,
	}
}

func localCSV(t *testing.T, sp GridSpec) []byte {
	t.Helper()
	rows, err := testGrid(t, sp).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCoordinatorLocalFallbackNoWorkers(t *testing.T) {
	co := NewCoordinator(fastConfig())
	defer co.Close()
	sp := smallSpec()
	rows, err := co.Run(context.Background(), testGrid(t, sp), nil, nil)
	if err != nil {
		t.Fatalf("Run with zero workers: %v", err)
	}
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), localCSV(t, sp)) {
		t.Fatal("zero-worker fleet run differs from a local run")
	}
	if snap := co.Snapshot(); snap.LocalFallbacks != 1 {
		t.Fatalf("LocalFallbacks = %d, want 1", snap.LocalFallbacks)
	}
}

func TestCoordinatorSurvivesDeadWorker(t *testing.T) {
	// Worker "w0" crashes every lease; "w1" is healthy. Whatever the ring
	// routes to w0 must be reassigned (or the wave repartitioned) and the
	// bytes must come out identical to a local run.
	co := NewCoordinator(fastConfig())
	defer co.Close()
	for i, mode := range []string{"w0", "none"} {
		// lease handler lives in internal/server; here a stub suffices —
		// it runs the leased cells through the same RunIndices path.
		name := fmt.Sprintf("w%d", i)
		h := ChaosMiddleware(name, crashPlan(mode), leaseStub(t))
		ts := httptest.NewServer(h)
		defer ts.Close()
		if err := co.Register(ts.Listener.Addr().String()); err != nil {
			t.Fatal(err)
		}
	}
	sp := smallSpec()
	rows, err := co.Run(context.Background(), testGrid(t, sp), nil, nil)
	if err != nil {
		t.Fatalf("Run with one dead worker: %v", err)
	}
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), localCSV(t, sp)) {
		t.Fatal("dead-worker fleet run differs from a local run")
	}
}

// leaseStub is a minimal in-package worker: the real handler lives in
// internal/server (which imports this package), so fleet's own tests serve
// leases through a stub speaking the same wire protocol.
func leaseStub(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/lease" {
			w.WriteHeader(http.StatusOK) // healthz
			return
		}
		var req LeaseRequest
		if err := jsonDecode(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		g, err := req.Grid.Build()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := req.Validate(g.Size()); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cells := req.Cells()
		rows, err := g.RunIndices(r.Context(), cells, nil, nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp := LeaseResponse{Lease: req.Lease, Rows: make([]CellRow, len(cells))}
		for k, i := range cells {
			resp.Rows[k] = CellRow{Index: i, Row: rows[k]}
		}
		w.Header().Set("Content-Type", "application/json")
		jsonEncode(w, resp)
	})
}

func TestCoordinatorDrainCheckpointResume(t *testing.T) {
	sp := smallSpec()
	straight := localCSV(t, sp)

	dir := t.TempDir()
	path := filepath.Join(dir, "grid.ckpt")
	g := testGrid(t, sp)
	ck, err := checkpoint.Open[sweep.Row](path, "sweep", g.Fingerprint(), g.Size(), false)
	if err != nil {
		t.Fatal(err)
	}
	ck.SetInterval(1)

	co := NewCoordinator(fastConfig())
	defer co.Close()
	ts := httptest.NewServer(leaseStub(t))
	defer ts.Close()
	if err := co.Register(ts.Listener.Addr().String()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, runErr := co.Run(ctx, g, ck, func(done, total int) {
		if done >= 1 {
			cancel()
		}
	})
	if runErr == nil {
		// The whole grid may have landed in one lease before the cancel
		// could bite; the resume leg below must still render clean bytes.
		if rows == nil {
			t.Fatal("nil rows with nil error")
		}
	} else {
		if !errors.Is(runErr, context.Canceled) {
			t.Fatalf("interrupted run failed with %v, want context.Canceled", runErr)
		}
		if rows != nil {
			t.Fatal("interrupted run returned partial rows; completed cells belong in the checkpoint only")
		}
	}

	g2 := testGrid(t, sp)
	ck2, err := checkpoint.Open[sweep.Row](path, "sweep", g2.Fingerprint(), g2.Size(), true)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := g2.RunContext(context.Background(), ck2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(straight, buf.Bytes()) {
		t.Fatal("fleet-interrupted grid resumed locally renders different bytes")
	}
	os.Remove(path)
}
