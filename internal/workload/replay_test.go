package workload

import (
	"strings"
	"testing"

	"softerror/internal/isa"
)

const sampleKernel = `
# stream kernel: load, compute, store, with a dead write and a branch
load r5 r1 0x1000
alu r6 r5 r2
store r6 r3 0x1008
alu r120 r6 -        # dead: r120 never read, overwritten next iteration
cmp p3 r6 r2
(p3) alu r7 r6 -
(p3!) alu r8 r6 -
nop
br p3 taken
`

func TestParseProgramBasics(t *testing.T) {
	body, err := ParseProgram(sampleKernel)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 9 {
		t.Fatalf("parsed %d instructions, want 9", len(body))
	}
	ld := body[0]
	if ld.Class != isa.ClassLoad || ld.Dest != isa.IntReg(5) || ld.Src1 != isa.IntReg(1) || ld.Addr != 0x1000 {
		t.Fatalf("load parsed wrong: %v", ld)
	}
	st := body[2]
	if st.Class != isa.ClassStore || st.Src1 != isa.IntReg(6) || st.Src2 != isa.IntReg(3) || st.Addr != 0x1008 {
		t.Fatalf("store parsed wrong: %v", st)
	}
	cmp := body[4]
	if !cmp.Dest.IsPred() {
		t.Fatalf("cmp dest not a predicate: %v", cmp)
	}
	guarded := body[5]
	if guarded.PredGuard != isa.PredReg(3) || guarded.PredFalse {
		t.Fatalf("guarded inst parsed wrong: %v", guarded)
	}
	pf := body[6]
	if !pf.PredFalse {
		t.Fatalf("pred-false marker lost: %v", pf)
	}
	br := body[8]
	if br.Class != isa.ClassBranch || !br.Taken || br.Mispred {
		t.Fatalf("branch parsed wrong: %v", br)
	}
}

func TestParseProgramCallDepth(t *testing.T) {
	body, err := ParseProgram("call\nalu r40 r1 -\nret\nalu r40 r2 -")
	if err != nil {
		t.Fatal(err)
	}
	if body[1].CallDepth != 1 {
		t.Fatalf("callee depth = %d, want 1", body[1].CallDepth)
	}
	if body[3].CallDepth != 0 {
		t.Fatalf("post-return depth = %d, want 0", body[3].CallDepth)
	}
}

func TestParseProgramErrors(t *testing.T) {
	bad := map[string]string{
		"unknown op":       "frobnicate r1",
		"bad register":     "alu rX r1 -",
		"out of range":     "alu r500 r1 -",
		"cmp non-pred":     "cmp r5 r1 r2",
		"load arity":       "load r5 r1",
		"store arity":      "store r5 0x10",
		"bad address":      "load r5 r1 zz",
		"unbalanced ret":   "ret",
		"empty":            "   \n# only comments\n",
		"guard not pred":   "(r3) alu r5 r1 -",
		"branch attribute": "br r1 sideways",
		"guard alone":      "(p3)",
	}
	for name, prog := range bad {
		if _, err := ParseProgram(prog); err == nil {
			t.Errorf("%s: program %q accepted", name, prog)
		}
	}
}

func TestReplayLoopsAndStamps(t *testing.T) {
	r := MustParseReplay("alu r5 r1 -\nnop", 1)
	var prev uint64
	for i := 0; i < 10; i++ {
		in := r.Next()
		if i > 0 && in.Seq != prev+1 {
			t.Fatalf("seq gap at %d", i)
		}
		prev = in.Seq
		wantNop := i%2 == 1
		if (in.Class == isa.ClassNop) != wantNop {
			t.Fatalf("loop order broken at %d: %v", i, in)
		}
	}
	w := r.NextWrong()
	if !w.WrongPath || w.Seq != prev+1 {
		t.Fatalf("wrong-path stamping broken: %v", w)
	}
}

func TestNewReplayRejectsEmpty(t *testing.T) {
	if _, err := NewReplay(nil, 1); err == nil {
		t.Fatal("empty body accepted")
	}
}

func TestMustParseReplayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad program did not panic")
		}
	}()
	MustParseReplay("bogus", 1)
}

func TestParseProgramCommentsAndCase(t *testing.T) {
	body, err := ParseProgram("nop # trailing comment\n\n  \nhint")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 2 || body[0].Class != isa.ClassNop || body[1].Class != isa.ClassHint {
		t.Fatalf("comment handling broken: %v", body)
	}
	if !strings.Contains(sampleKernel, "#") {
		t.Fatal("sample kernel should exercise comments")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	body, err := ParseProgram(sampleKernel)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatProgram(body)
	back, err := ParseProgram(text)
	if err != nil {
		t.Fatalf("formatted program does not parse: %v\n%s", err, text)
	}
	if len(back) != len(body) {
		t.Fatalf("round trip length %d, want %d", len(back), len(body))
	}
	for i := range body {
		a, b := body[i], back[i]
		a.Seq, a.PC, b.Seq, b.PC = 0, 0, 0, 0
		if a != b {
			t.Fatalf("instruction %d differs after round trip:\n a=%v\n b=%v", i, a, b)
		}
	}
}

func TestFormatGeneratorSample(t *testing.T) {
	// Property-style: a sample of generator output (correct path, depth
	// and bubbles cleared) must round-trip through the text form.
	g := MustNew(Default())
	var body []isa.Inst
	for len(body) < 300 {
		in := g.Next()
		in.Seq, in.PC, in.CallDepth, in.FetchBubble = 0, 0, 0, 0
		// The text form does not carry call-depth context for bodies that
		// start mid-procedure; skip rets that would underflow.
		if in.Class == isa.ClassReturn || in.Class == isa.ClassCall {
			continue
		}
		body = append(body, in)
	}
	text := FormatProgram(body)
	back, err := ParseProgram(text)
	if err != nil {
		t.Fatalf("generator sample does not round-trip: %v", err)
	}
	for i := range body {
		a, b := body[i], back[i]
		a.Seq, a.PC, b.Seq, b.PC = 0, 0, 0, 0
		if a != b {
			t.Fatalf("instruction %d differs:\n a=%v\n b=%v\n line=%q",
				i, a, b, strings.Split(text, "\n")[i])
		}
	}
}
