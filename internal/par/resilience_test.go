package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestCollectIsolatesPanic(t *testing.T) {
	const n = 16
	var done [n]atomic.Bool
	err := Run(context.Background(), n, Options{Workers: 4, Policy: Collect},
		func(_ context.Context, i int) error {
			if i == 5 {
				panic("poisoned cell")
			}
			done[i].Store(true)
			return nil
		})
	var es Errors
	if !errors.As(err, &es) {
		t.Fatalf("err = %v (%T), want Errors", err, err)
	}
	if len(es) != 1 || es[0].Index != 5 {
		t.Fatalf("failures = %v, want exactly index 5", es.Indices())
	}
	te := es[0]
	if te.Stack == nil {
		t.Error("TaskError.Stack is nil for a panic")
	}
	if !strings.Contains(te.Error(), "panicked") || !strings.Contains(te.Error(), "poisoned cell") {
		t.Errorf("TaskError message %q lacks panic details", te)
	}
	for i := 0; i < n; i++ {
		if i != 5 && !done[i].Load() {
			t.Errorf("index %d did not complete; a panic must cost only its own cell", i)
		}
	}
}

func TestFailFastReturnsTaskError(t *testing.T) {
	err := Run(context.Background(), 64, Options{Workers: 2, Policy: FailFast},
		func(_ context.Context, i int) error {
			if i == 3 {
				return fmt.Errorf("boom")
			}
			return nil
		})
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v (%T), want *TaskError", err, err)
	}
	if te.Index != 3 || te.Attempts != 1 {
		t.Errorf("TaskError = %+v, want index 3, 1 attempt", te)
	}
	if te.Stack != nil {
		t.Error("plain error grew a stack")
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	var attempts atomic.Int64
	err := Run(context.Background(), 4, Options{Workers: 2, Retries: 2},
		func(_ context.Context, i int) error {
			if i == 2 && attempts.Add(1) == 1 {
				return fmt.Errorf("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("retry did not absorb a transient failure: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("index 2 ran %d attempts, want 2", got)
	}
}

func TestRetriesExhaustedReportsAttempts(t *testing.T) {
	err := Run(context.Background(), 1, Options{Retries: 2, Policy: Collect},
		func(_ context.Context, i int) error { return fmt.Errorf("always") })
	var es Errors
	if !errors.As(err, &es) || len(es) != 1 {
		t.Fatalf("err = %v, want one-entry Errors", err)
	}
	if es[0].Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (1 + 2 retries)", es[0].Attempts)
	}
}

func TestWatchdogCooperativeHang(t *testing.T) {
	err := Run(context.Background(), 2, Options{Workers: 2, Policy: Collect, Timeout: 20 * time.Millisecond},
		func(ctx context.Context, i int) error {
			if i == 1 {
				<-ctx.Done() // hung simulation that honours cancellation
				return ctx.Err()
			}
			return nil
		})
	var es Errors
	if !errors.As(err, &es) || len(es) != 1 || es[0].Index != 1 {
		t.Fatalf("err = %v, want Errors{index 1}", err)
	}
	if !errors.Is(es[0], ErrHung) {
		t.Errorf("hung task error %v does not wrap ErrHung", es[0])
	}
}

func TestWatchdogAbandonsUnresponsiveTask(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	err := Run(context.Background(), 1,
		Options{Policy: Collect, Timeout: 10 * time.Millisecond, Grace: 10 * time.Millisecond},
		func(ctx context.Context, i int) error {
			<-release // ignores ctx entirely
			return nil
		})
	var es Errors
	if !errors.As(err, &es) || len(es) != 1 {
		t.Fatalf("err = %v, want one-entry Errors", err)
	}
	if !errors.Is(es[0], ErrHung) || !strings.Contains(es[0].Error(), "abandoned") {
		t.Errorf("abandoned task error = %v, want ErrHung with abandonment note", es[0])
	}
}

func TestRetryAfterHang(t *testing.T) {
	var attempts atomic.Int64
	err := Run(context.Background(), 1,
		Options{Timeout: 20 * time.Millisecond, Retries: 1},
		func(ctx context.Context, i int) error {
			if attempts.Add(1) == 1 {
				<-ctx.Done()
				return ctx.Err()
			}
			return nil
		})
	if err != nil {
		t.Fatalf("retry after hang failed: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("ran %d attempts, want 2", got)
	}
}

func TestExternalCancelCarriesNoBlame(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	err := Run(ctx, 8, Options{Workers: 1, Policy: Collect},
		func(ctx context.Context, i int) error {
			select {
			case started <- struct{}{}:
				cancel()
			default:
			}
			<-ctx.Done()
			return ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled, not task blame", err)
	}
}

func TestChaosHookInjectsAndRetries(t *testing.T) {
	SetChaos(func(_ context.Context, index, attempt int) error {
		if attempt == 1 {
			return fmt.Errorf("chaos: transient fault at %d", index)
		}
		return nil
	})
	t.Cleanup(func() { SetChaos(nil) })
	var ran atomic.Int64
	err := Run(context.Background(), 6, Options{Workers: 3, Retries: 1},
		func(_ context.Context, i int) error { ran.Add(1); return nil })
	if err != nil {
		t.Fatalf("chaos-injected transients not absorbed by one retry: %v", err)
	}
	if got := ran.Load(); got != 6 {
		t.Errorf("%d tasks ran, want 6", got)
	}
}

func TestChaosHookCanPanic(t *testing.T) {
	SetChaos(func(_ context.Context, index, attempt int) error {
		if index == 0 {
			panic("chaos panic")
		}
		return nil
	})
	t.Cleanup(func() { SetChaos(nil) })
	err := Run(context.Background(), 2, Options{Policy: Collect},
		func(_ context.Context, i int) error { return nil })
	var es Errors
	if !errors.As(err, &es) || len(es) != 1 || es[0].Index != 0 || es[0].Stack == nil {
		t.Fatalf("err = %v, want Errors{index 0 with stack}", err)
	}
}

func TestRunEmptyAndNil(t *testing.T) {
	if err := Run(context.Background(), 0, Options{}, nil); err != nil {
		t.Fatalf("n=0 Run errored: %v", err)
	}
}
