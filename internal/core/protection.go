package core

import (
	"softerror/internal/ace"
	"softerror/internal/isa"
	"softerror/internal/serate"
	"softerror/internal/spec"
)

// ProtectionRow is one row of the protection-scheme comparison: the
// absolute SDC and DUE rates of the instruction queue under a protection
// choice, composed from the measured AVFs and a raw per-bit rate (§2's
// rate equations, §8's design-space summary).
type ProtectionRow struct {
	Scheme string
	SDCFIT serate.FIT
	DUEFIT serate.FIT
}

// ProtectionComparison composes the IQ's absolute error rates under the
// design options the paper discusses: leave it unprotected, add parity
// (conservative), add parity plus the π-bit stack at the store-buffer or
// memory level, add squashing on top, or correct with ECC. rawFITPerBit is
// the technology's raw soft-error rate per bit.
func ProtectionComparison(benches []spec.Benchmark, commits uint64, rawFITPerBit float64) ([]ProtectionRow, error) {
	if benches == nil {
		benches = spec.All()
	}
	s := NewSuite(benches, commits)
	if err := s.Prewarm(PolicyBaseline, PolicySquashL1); err != nil {
		return nil, err
	}

	// Mean AVFs across the roster, baseline and squash-L1.
	var baseSDC, baseFalse [2]float64 // [0]=baseline, [1]=squash-L1
	var baseStore, baseMem [2]float64
	for i, pol := range []Policy{PolicyBaseline, PolicySquashL1} {
		for _, b := range s.Benches {
			r, err := s.Result(b, pol)
			if err != nil {
				return nil, err
			}
			baseSDC[i] += r.Report.SDCAVF()
			baseFalse[i] += r.Report.FalseDUEAVF()
			baseStore[i] += r.Report.FalseDUERemaining(ace.TrackStoreBuffer, 512)
			baseMem[i] += r.Report.FalseDUERemaining(ace.TrackMemory, 512)
		}
		n := float64(len(s.Benches))
		baseSDC[i] /= n
		baseFalse[i] /= n
		baseStore[i] /= n
		baseMem[i] /= n
	}

	bits := float64(64) * float64(isa.EntryPayloadBits)
	raw := serate.FIT(rawFITPerBit * bits)
	row := func(scheme string, sdcAVF, dueAVF float64) ProtectionRow {
		sdc, due := serate.Rates([]serate.Device{
			{Name: "iq", RawFIT: raw, SDCAVF: sdcAVF, DUEAVF: dueAVF},
		})
		return ProtectionRow{Scheme: scheme, SDCFIT: sdc, DUEFIT: due}
	}
	return []ProtectionRow{
		row("unprotected", baseSDC[0], 0),
		row("unprotected + squash-L1", baseSDC[1], 0),
		row("parity (conservative)", 0, baseSDC[0]+baseFalse[0]),
		row("parity + pi to store buffer", 0, baseSDC[0]+baseStore[0]),
		row("parity + pi through memory", 0, baseSDC[0]+baseMem[0]),
		row("parity + pi + squash-L1", 0, baseSDC[1]+baseStore[1]),
		row("ecc (corrects single-bit)", 0, 0),
	}, nil
}
