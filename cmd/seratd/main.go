// Command seratd serves the repository's AVF-evaluation engine over HTTP:
// single evaluations with a content-addressed result cache, sweep-grid
// jobs with admission control and live progress streaming, analytic AVF
// upper bounds (GET /v1/bound — served from the cache without simulating
// a single cycle or consuming an eval slot), and expvar-backed metrics.
//
//	seratd -addr :8080
//	curl -d '{"experiment":"table1","benches":"gzip" ...}' localhost:8080/v1/eval
//	curl 'localhost:8080/v1/bound?bench=gzip&iqsize=32&ooo=true'
//
// Fleet mode turns several daemons into one sharded sweep engine. A
// coordinator partitions sweep jobs into cell-range leases and routes them
// to worker daemons by consistent hashing of the cells' content addresses;
// workers are plain daemons that joined the fleet:
//
//	seratd -coordinator -addr :8080 -workers 127.0.0.1:8081,127.0.0.1:8082
//	seratd -addr :8081 -join 127.0.0.1:8080   # or register explicitly
//
// Worker failures are absorbed: leases retry with jittered backoff, then
// move to surviving workers (work stealing); with no healthy worker the
// coordinator degrades to local execution. The answer bytes are identical
// either way.
//
// On SIGINT/SIGTERM the daemon drains: new work is rejected, accepted
// jobs finish (or, with -checkpoint set, are interrupted and
// checkpointed), then the process exits. No accepted job is dropped.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/debug"
	"strings"
	"time"

	"softerror/internal/cli"
	"softerror/internal/fleet"
	"softerror/internal/server"
)

func main() { cli.Main("seratd", run) }

func run(args []string) error {
	d := cli.NewDriver("seratd", "seratd [flags]")
	fs := d.FS
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks one)")
	portFile := fs.String("portfile", "", "write the bound address to this file once listening")
	maxJobs := fs.Int("maxjobs", 2, "sweep jobs running concurrently")
	maxQueue := fs.Int("maxqueue", 8, "accepted sweep jobs allowed to wait for a slot")
	maxEvals := fs.Int("maxevals", 4, "eval computations in flight before shedding with 429")
	cacheMB := fs.Int64("cachemb", 64, "result cache budget in MiB")
	maxEstMcycles := fs.Float64("maxestmcycles", 0, "admission budget in estimated simulated Mcycles: sweeps the static cost model prices above it are rejected with 422 (0: no budget)")
	ckDir := fs.String("checkpoint", "", "directory for interrupted-job checkpoints (empty: drain waits for jobs to finish)")
	drainWait := fs.Duration("drainwait", time.Minute, "maximum time to wait for in-flight work at shutdown")
	coord := fs.Bool("coordinator", false, "run as fleet coordinator: dispatch sweep jobs to workers as leases")
	workers := fs.String("workers", "", "comma-separated worker addresses to register at startup (coordinator mode)")
	join := fs.String("join", "", "coordinator address to register this daemon with as a worker")
	leaseCells := fs.Int("leasecells", 4, "grid cells per fleet lease (coordinator mode)")
	leaseTimeout := fs.Duration("leasetimeout", 2*time.Minute, "per-attempt lease deadline (coordinator mode)")
	leaseRetries := fs.Int("leaseretries", 2, "lease re-deliveries on the same worker before reassignment (coordinator mode)")
	heartbeat := fs.Duration("heartbeat", 5*time.Second, "worker health-probe period (coordinator mode)")
	withPprof := fs.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
	memLimit := fs.Int64("memlimit", 0, "soft Go heap limit in MiB (0: no limit); see runtime/debug.SetMemoryLimit")
	if err := d.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if !*coord && *workers != "" {
		return cli.Usagef("-workers requires -coordinator")
	}
	if *ckDir != "" {
		if err := os.MkdirAll(*ckDir, 0o755); err != nil {
			return err
		}
	}
	if *memLimit < 0 {
		return cli.Usagef("-memlimit must be >= 0, got %d", *memLimit)
	}
	if *maxEstMcycles < 0 {
		return cli.Usagef("-maxestmcycles must be >= 0, got %g", *maxEstMcycles)
	}
	if *memLimit > 0 {
		debug.SetMemoryLimit(*memLimit << 20)
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	var co *fleet.Coordinator
	if *coord {
		co = fleet.NewCoordinator(fleet.Config{
			LeaseCells:     *leaseCells,
			LeaseTimeout:   *leaseTimeout,
			Retries:        *leaseRetries,
			HeartbeatEvery: *heartbeat,
		})
		defer co.Close()
		for _, addr := range strings.Split(*workers, ",") {
			if addr = strings.TrimSpace(addr); addr == "" {
				continue
			}
			if err := co.Register(addr); err != nil {
				return err
			}
		}
	}

	srv := server.New(server.Config{
		MaxJobs:       *maxJobs,
		MaxQueue:      *maxQueue,
		MaxEvals:      *maxEvals,
		Workers:       d.Jobs(),
		CacheBytes:    *cacheMB << 20,
		CheckpointDir: *ckDir,
		MaxEstMcycles: *maxEstMcycles,
		Fleet:         co,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	role := "daemon"
	if *coord {
		role = "coordinator"
	}
	fmt.Fprintf(os.Stderr, "seratd: %s listening on %s\n", role, bound)
	if *join != "" {
		if err := joinFleet(ctx, *join, bound); err != nil {
			ln.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "seratd: joined fleet at %s\n", *join)
	}

	hs := &http.Server{Handler: buildHandler(srv, *withPprof)}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting connections and new work, let accepted work
	// reach a terminal state (finish or checkpoint), then exit.
	fmt.Fprintln(os.Stderr, "seratd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := srv.Drain(dctx)
	hs.Shutdown(dctx)
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintln(os.Stderr, "seratd: drained")
	return nil
}

// buildHandler wraps the API handler with the optional pprof surface. The
// daemon serves its own handler, not http.DefaultServeMux, so the blank
// net/http/pprof import idiom would register the profiles on a mux nothing
// serves; instead the handlers are mounted explicitly on a private mux with
// the API as the fallback route. Off by default: the profile endpoints
// expose internals and cost CPU, so they are opt-in like expvar scraping.
func buildHandler(api http.Handler, withPprof bool) http.Handler {
	if !withPprof {
		return api
	}
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// joinFleet registers this daemon's bound address with a coordinator,
// retrying briefly so worker and coordinator can boot in either order.
func joinFleet(ctx context.Context, coord, bound string) error {
	body, err := json.Marshal(fleet.RegisterRequest{Addr: bound})
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 1; attempt <= 10; attempt++ {
		if attempt > 1 {
			select {
			case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		resp, err := http.Post("http://"+coord+"/v1/fleet/register", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		lastErr = fmt.Errorf("HTTP %d: %.200s", resp.StatusCode, data)
		if resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusNotFound {
			break // the coordinator rejected us for keeps; retrying cannot help
		}
	}
	return fmt.Errorf("seratd: join fleet at %s: %w", coord, lastErr)
}
