package core

import (
	"context"
	"fmt"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// BatchSpec is one lane of a batched evaluation: a pipeline configuration
// plus the lane's optional extra analyses. The RegFile analysis is not
// available on the batched path (it needs per-commit cycle retention only
// the solo Collector carries); route such runs through RunContext.
type BatchSpec struct {
	Pipeline    pipeline.Config
	FrontEnd    bool
	StoreBuffer bool
}

// RunBatchContext evaluates K configuration variants over one decode of
// the workload's instruction stream: one generator pass, one deadness
// analysis per realised commit-log length, K compact pipeline lanes. Each
// returned Result is byte-identical to RunContext under the same spec —
// the batched-independent seraudit check pins this.
//
// Workloads whose stream cannot be shared (PC-indexed branch predictors)
// fail with an error wrapping workload.ErrUnshareable; callers fall back
// to per-spec RunContext. Caches are always pre-warmed (the batched path
// serves sweeps and suites, which never skip warming).
func RunBatchContext(ctx context.Context, w workload.Params, commits uint64, specs []BatchSpec) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	if commits == 0 {
		commits = DefaultCommits
	}
	sh, err := workload.NewShared(w)
	if err != nil {
		return nil, err
	}
	// Pre-size the shared memos: every lane walks ~commits body
	// instructions (plus a small overshoot), and wrong-path draws run a
	// fraction of that. One up-front reservation replaces the log2(commits)
	// append-doublings the memos would otherwise pay.
	sh.Reserve(int(commits)+1024, int(commits)/4+256)
	group := ace.NewBatchGroup(sh)

	// Warm one hierarchy and clone it per lane: Clone is bit-identical to
	// replaying the warm-up (pinned by the cache clone tests), and a memcpy
	// of the warm state is far cheaper than re-simulating it K times.
	warm := workload.WarmedDefault()

	zero := pipeline.Config{}
	cfgs := make([]pipeline.Config, len(specs))
	mems := make([]*cache.Hierarchy, len(specs))
	sinks := make([]pipeline.BatchSink, len(specs))
	colls := make([]*ace.BatchCollector, len(specs))
	for i, sp := range specs {
		cfg := sp.Pipeline
		if cfg == zero {
			cfg = pipeline.DefaultConfig()
		}
		cfgs[i] = cfg
		if i == 0 {
			mems[i] = warm
		} else {
			mems[i] = warm.Clone()
		}
		ccfg := ace.StructureConfig(cfg, commits)
		ccfg.FrontEnd, ccfg.StoreBuffer = sp.FrontEnd, sp.StoreBuffer
		coll, err := ace.NewBatchCollector(ccfg, group)
		if err != nil {
			return nil, err
		}
		colls[i] = coll
		sinks[i] = coll
	}

	stats, err := pipeline.RunBatchStream(ctx, commits, sh, cfgs, mems, sinks)
	if err != nil {
		return nil, err
	}

	out := make([]*Result, len(specs))
	for i := range specs {
		st := stats[i]
		reps := colls[i].Finish(st.Cycles)
		simCycles.Add(st.Cycles)
		out[i] = &Result{
			Name:              w.Name,
			IPC:               st.IPC(),
			Report:            reps.IQ,
			Cycles:            st.Cycles,
			Commits:           st.Commits,
			Squashes:          st.Squashes,
			Refetches:         st.Refetches,
			ThrottleEvents:    st.ThrottleEvents,
			LoadMissRateL0:    st.LoadMissRate(cache.LevelL0),
			LoadMissRateL1:    st.LoadMissRate(cache.LevelL1),
			FrontEndReport:    reps.FrontEnd,
			StoreBufferReport: reps.StoreBuffer,
		}
	}
	return out, nil
}
