package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"softerror/internal/core"
)

func TestSweepToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "grid.csv")
	args := []string{
		"-q", "-benches", "gzip-graphic", "-policies", "baseline,squash-l1",
		"-iqsizes", "32,64", "-ooo", "false,true", "-commits", "5000",
		"-out", out,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+2*2*2 {
		t.Fatalf("CSV has %d lines, want header + 8 rows:\n%s", len(lines), data)
	}
}

func TestSweepErrors(t *testing.T) {
	cases := [][]string{
		{"-benches", "nosuch"},
		{"-policies", "nosuch"},
		{"-iqsizes", "abc"},
		{"-ooo", "maybe"},
	}
	for _, args := range cases {
		if err := run(append([]string{"-q"}, args...)); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParsePolicyNames(t *testing.T) {
	for _, s := range []string{"baseline", "none", "squash-l1", "squash-l0", "throttle-l1", "throttle-l0"} {
		if _, err := core.ParsePolicy(s); err != nil {
			t.Errorf("core.ParsePolicy(%q): %v", s, err)
		}
	}
}
