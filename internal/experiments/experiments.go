// Package experiments builds the paper's evaluation artefacts — Table 1,
// Table 2, Figures 1-4, the §4.1 occupancy breakdown, the throttling
// ablation, the protection comparison, the register-file extension and the
// SimPoint sensitivity study — as report.Tables from a shared parameter
// set.
//
// It is the single rendering path behind both cmd/repro and the seratd
// evaluation service: because both call Build and Emit with the same
// Params, a served response is byte-identical to the CLI's output for the
// same request — which is what makes the service's content-addressed
// result cache sound.
package experiments

import (
	"context"
	"fmt"
	"io"

	"softerror/internal/checkpoint"
	"softerror/internal/core"
	"softerror/internal/fault"
	"softerror/internal/report"
	"softerror/internal/spec"
)

// Params carries every knob the experiment drivers read. The zero value is
// not useful; fill Suite (for the roster-memoised experiments) and Benches
// (for the campaign experiments) plus the numeric knobs, mirroring
// cmd/repro's flag defaults.
type Params struct {
	// Suite memoises the roster simulations shared by Table 1, Figures
	// 2-4, the breakdown, the ablation and the register-file study.
	Suite *core.Suite
	// Benches is the roster for the experiments that bypass the suite
	// (Table 2, outcomes, protection, simpoints).
	Benches []spec.Benchmark
	// Commits is the per-run commit budget.
	Commits uint64
	// PET is the PET-buffer entry count for Figure 2.
	PET int
	// RawFIT is the raw per-bit soft-error rate for the protection study.
	RawFIT float64
	// SimPoints is the slices-per-benchmark count for the sensitivity
	// study.
	SimPoints int
	// Strikes and Seed parameterise the fault-injection campaign.
	Strikes int
	Seed    uint64
	// Jobs bounds the outcome campaign's worker pool (0 = par default).
	Jobs int
	// Checkpoint, when non-nil, snapshots the outcomes campaign; open it
	// with the geometry from core.OutcomesPlan. Only cmd/repro threads
	// one — the service keeps jobs content-addressed instead.
	Checkpoint *checkpoint.File[fault.Result]
}

// AllOrder is the emission order of the "all" meta-experiment (simpoints
// excluded, as in cmd/repro).
var AllOrder = []string{
	"table2", "table1", "breakdown", "fig2", "fig3", "fig4",
	"ablation", "protection", "regfile", "outcomes",
}

// Names returns the individual experiment names in AllOrder-then-extras
// order ("all" itself is not listed). "structures" needs an out-of-order
// suite and so, like "simpoints", stays out of AllOrder — the "all"
// artefact's bytes are pinned by results/repro_all.txt.
func Names() []string {
	return append(append([]string{}, AllOrder...), "simpoints", "structures")
}

// Valid reports whether name is a buildable experiment ("all" included).
func Valid(name string) bool {
	if name == "all" {
		return true
	}
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Build constructs the named experiment's table.
func Build(ctx context.Context, name string, p Params) (*report.Table, error) {
	switch name {
	case "table1":
		return Table1(p.Suite)
	case "table2":
		return Table2(p.Benches), nil
	case "outcomes":
		return Outcomes(ctx, p)
	case "fig2":
		return Figure2(p.Suite, p.PET)
	case "fig3":
		return Figure3(p.Suite)
	case "fig4":
		return Figure4(p.Suite)
	case "breakdown":
		return Breakdown(p.Suite)
	case "ablation":
		return Ablation(p.Suite)
	case "protection":
		return Protection(p.Benches, p.Commits, p.RawFIT)
	case "regfile":
		return RegFile(p.Suite)
	case "simpoints":
		return SimPoints(p.Benches, p.Commits, p.SimPoints)
	case "structures":
		return Structures(p.Suite)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", name)
	}
}

// Emit writes a built table in one of cmd/repro's two output forms: CSV,
// or the aligned table followed by a blank line.
func Emit(w io.Writer, t *report.Table, csv bool) error {
	if csv {
		return t.CSV(w)
	}
	t.Fprint(w)
	_, err := fmt.Fprintln(w)
	return err
}

// Run builds and emits the named experiment — or, for "all", the AllOrder
// sequence — producing exactly the bytes cmd/repro prints for the same
// parameters.
func Run(ctx context.Context, w io.Writer, name string, p Params, csv bool) error {
	names := []string{name}
	if name == "all" {
		names = AllOrder
	}
	for _, n := range names {
		t, err := Build(ctx, n, p)
		if err != nil {
			return err
		}
		if err := Emit(w, t, csv); err != nil {
			return err
		}
	}
	return nil
}

// Table1 reports the impact of squashing on IPC and the IQ AVFs.
func Table1(s *core.Suite) (*report.Table, error) {
	rows, err := s.Table1()
	if err != nil {
		return nil, err
	}
	t := report.New("Table 1: impact of squashing on IPC and the IQ's SDC and DUE AVFs",
		"design point", "IPC", "SDC AVF", "DUE AVF", "IPC/SDC AVF", "IPC/DUE AVF")
	for _, r := range rows {
		t.AddRow(r.Policy.String(), report.F2(r.IPC), report.Pct(r.SDCAVF),
			report.Pct(r.DUEAVF), report.F2(r.MeritSDC), report.F2(r.MeritDUE))
	}
	return t, nil
}

// Structures reports the out-of-order family's extra structures (ROB, LSQ,
// TAGE tables) under the baseline and both squash triggers. The suite must
// have OutOfOrder set.
func Structures(s *core.Suite) (*report.Table, error) {
	rows, err := s.Structures()
	if err != nil {
		return nil, err
	}
	t := report.New("Out-of-order structures: squashing vs ROB, LSQ and TAGE vulnerability",
		"design point", "IPC", "ROB SDC", "ROB DUE", "LSQ SDC", "LSQ DUE", "TAGE false DUE")
	for _, r := range rows {
		t.AddRow(r.Policy.String(), report.F2(r.IPC), report.Pct(r.ROBSDC),
			report.Pct(r.ROBDUE), report.Pct(r.LSQSDC), report.Pct(r.LSQDUE),
			report.Pct(r.TAGEFalseDUE))
	}
	return t, nil
}

// Table2 lists the benchmark roster.
func Table2(benches []spec.Benchmark) *report.Table {
	t := report.New("Table 2: benchmark roster (synthetic SPEC CPU2000 stand-ins)",
		"benchmark", "suite", "skipped (M)")
	for _, b := range benches {
		kind := "INT"
		if b.FP {
			kind = "FP"
		}
		t.AddRow(b.Name, kind, fmt.Sprintf("%d", b.SkippedM))
	}
	return t
}

// Outcomes runs the Figure-1 fault-injection campaign on the first roster
// benchmark, restoring and recording cells through p.Checkpoint when set.
func Outcomes(ctx context.Context, p Params) (*report.Table, error) {
	if len(p.Benches) == 0 {
		return nil, fmt.Errorf("experiments: outcomes needs at least one benchmark")
	}
	b := p.Benches[0]
	rows, err := core.OutcomesCampaign(ctx, b, p.Commits, p.Strikes, p.Seed, p.Jobs, p.Checkpoint)
	if err != nil {
		return nil, err
	}
	t := report.New(fmt.Sprintf("Figure 1: fault-outcome taxonomy (%s, %d strikes)", b.Name, p.Strikes),
		"configuration", "idle", "never-read", "benign", "SDC", "false DUE", "true DUE", "suppressed", "latent")
	for _, r := range rows {
		frac := func(o fault.Outcome) string {
			return report.Pct(float64(r.Counts[o]) / float64(r.Strikes))
		}
		t.AddRow(r.Label, frac(fault.OutcomeIdle), frac(fault.OutcomeNeverRead),
			frac(fault.OutcomeBenignUnACE), frac(fault.OutcomeSDC),
			frac(fault.OutcomeFalseDUE), frac(fault.OutcomeTrueDUE),
			frac(fault.OutcomeSuppressed), frac(fault.OutcomeLatent))
	}
	return t, nil
}

// Figure2 reports the false-DUE AVF remaining after cumulative tracking.
func Figure2(s *core.Suite, pet int) (*report.Table, error) {
	rows, err := s.Figure2(pet)
	if err != nil {
		return nil, err
	}
	t := report.New(fmt.Sprintf("Figure 2: false-DUE AVF remaining after cumulative tracking (PET=%d)", pet),
		"benchmark", "base", "pi-commit", "anti-pi", "pet", "pi-regfile", "pi-storebuf", "pi-memory")
	addRow := func(r core.Figure2Row) {
		cells := []string{r.Bench, report.Pct(r.BaseFalseDUE)}
		for _, rem := range r.Remaining {
			cells = append(cells, report.Pct(rem))
		}
		t.AddRow(cells...)
	}
	for _, r := range rows {
		addRow(r)
	}
	intOnly, fpOnly := false, true
	mi := core.Figure2Mean(rows, &intOnly)
	mi.Bench = "mean-INT"
	mf := core.Figure2Mean(rows, &fpOnly)
	mf.Bench = "mean-FP"
	ma := core.Figure2Mean(rows, nil)
	ma.Bench = "mean-ALL"
	for _, m := range []core.Figure2Row{mi, mf, ma} {
		addRow(m)
	}
	return t, nil
}

// Figure3 reports FDD coverage against the PET-buffer size.
func Figure3(s *core.Suite) (*report.Table, error) {
	rows, err := s.Figure3(nil)
	if err != nil {
		return nil, err
	}
	t := report.New("Figure 3: FDD coverage vs PET-buffer size",
		"entries", "FDD-reg", "+returns", "+memory")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Entries), report.Pct(r.FDDReg),
			report.Pct(r.WithReturns), report.Pct(r.WithMemory))
	}
	return t, nil
}

// Figure4 reports the combined squash + π-tracking design point.
func Figure4(s *core.Suite) (*report.Table, error) {
	rows, err := s.Figure4()
	if err != nil {
		return nil, err
	}
	t := report.New("Figure 4: combined squash-L1 + pi-to-store tracking, relative to baseline",
		"benchmark", "rel SDC AVF", "rel DUE AVF", "rel IPC")
	var sdc, due, ipc []float64
	for _, r := range rows {
		t.AddRow(r.Bench, report.F3(r.RelSDC), report.F3(r.RelDUE), report.F3(r.RelIPC))
		sdc = append(sdc, r.RelSDC)
		due = append(due, r.RelDUE)
		ipc = append(ipc, r.RelIPC)
	}
	t.AddRow("geomean", report.F3(core.GeoMean(sdc)), report.F3(core.GeoMean(due)), report.F3(core.GeoMean(ipc)))
	return t, nil
}

// Breakdown reports the §4.1 IQ occupancy breakdown.
func Breakdown(s *core.Suite) (*report.Table, error) {
	rows, err := s.Breakdown()
	if err != nil {
		return nil, err
	}
	t := report.New("Occupancy breakdown of the IQ (section 4.1)",
		"benchmark", "idle", "never-read", "Ex-ACE", "un-ACE", "ACE")
	var idle, nr, ex, un, ace float64
	for _, r := range rows {
		t.AddRow(r.Bench, report.Pct(r.Idle), report.Pct(r.NeverRead),
			report.Pct(r.ExACE), report.Pct(r.UnACE), report.Pct(r.ACE))
		idle += r.Idle
		nr += r.NeverRead
		ex += r.ExACE
		un += r.UnACE
		ace += r.ACE
	}
	n := float64(len(rows))
	t.AddRow("mean", report.Pct(idle/n), report.Pct(nr/n), report.Pct(ex/n),
		report.Pct(un/n), report.Pct(ace/n))
	return t, nil
}

// Ablation compares squashing against fetch throttling (§3.1).
func Ablation(s *core.Suite) (*report.Table, error) {
	rows, err := s.ThrottleAblation()
	if err != nil {
		return nil, err
	}
	t := report.New("Ablation: squashing vs fetch throttling (section 3.1)",
		"design point", "IPC", "SDC AVF", "IPC/SDC AVF")
	for _, r := range rows {
		t.AddRow(r.Policy.String(), report.F2(r.IPC), report.Pct(r.SDCAVF), report.F2(r.MeritSDC))
	}
	return t, nil
}

// Protection reports the absolute SDC/DUE rates across protection schemes.
func Protection(benches []spec.Benchmark, commits uint64, rawFIT float64) (*report.Table, error) {
	rows, err := core.ProtectionComparison(benches, commits, rawFIT)
	if err != nil {
		return nil, err
	}
	t := report.New(fmt.Sprintf("Protection design space for the IQ at %.4f FIT/bit", rawFIT),
		"scheme", "SDC rate", "DUE rate")
	for _, r := range rows {
		t.AddRow(r.Scheme, r.SDCFIT.String(), r.DUEFIT.String())
	}
	return t, nil
}

// RegFile reports the register-file vulnerability across the roster.
func RegFile(s *core.Suite) (*report.Table, error) {
	rows, err := s.RegFile()
	if err != nil {
		return nil, err
	}
	t := report.New("Register-file vulnerability across the roster (section 8 extension)",
		"benchmark", "SDC AVF", "false DUE", "Ex-ACE", "untouched")
	var sdc, fd float64
	for _, r := range rows {
		t.AddRow(r.Bench, report.Pct(r.SDCAVF), report.Pct(r.FalseDUEAVF),
			report.Pct(r.ExACE), report.Pct(r.Untouched))
		sdc += r.SDCAVF
		fd += r.FalseDUEAVF
	}
	n := float64(len(rows))
	t.AddRow("mean", report.Pct(sdc/n), report.Pct(fd/n), "", "")
	return t, nil
}

// SimPoints reports AVF sensitivity to the SimPoint slice chosen (§5).
func SimPoints(benches []spec.Benchmark, commits uint64, n int) (*report.Table, error) {
	t := report.New(fmt.Sprintf("SimPoint sensitivity (%d slices per benchmark, baseline)", n),
		"benchmark", "IPC", "+/-", "SDC AVF", "+/-", "DUE AVF", "+/-")
	for _, b := range benches {
		sum, err := core.RunSimPoints(b, core.PolicyBaseline, n, commits)
		if err != nil {
			return nil, err
		}
		t.AddRow(b.Name,
			report.F2(sum.MeanIPC), report.F2(sum.StdIPC),
			report.Pct(sum.MeanSDCAVF), report.Pct(sum.StdSDCAVF),
			report.Pct(sum.MeanDUEAVF), report.Pct(sum.StdDUEAVF))
	}
	return t, nil
}
