// Package invariant is the property/metamorphic audit layer over the
// simulation and serving stack. Every number the reproduction reports rests
// on a handful of structural properties — AVF is a residency integral, so
// residency conservation *is* correctness; the fast path, the streaming
// collector, the parallel engine and the checkpoint machinery are all
// claimed to be exact equivalences, not approximations. This package turns
// each claim into a Check: a seeded, self-contained property test over
// *randomised* configurations, usable from unit tests, fuzz harnesses and
// the cmd/seraudit driver alike.
//
// Every Check is deterministic in its seed: a failure reported by seraudit
// as "FAIL <name> seed=N" reproduces with the same seed from a test (see
// README "Auditing"). Checks return errors rather than panicking, so a
// driver can run the full suite and report every violation.
package invariant

import "fmt"

// Options tunes how expensive each Check's run is. The zero value audits
// at a laptop-friendly scale.
type Options struct {
	// Commits is the per-simulation commit budget (default 3000): long
	// enough for queues to fill, squash paths to fire and the AVF
	// integrals to accumulate structure, short enough to audit many seeds.
	Commits uint64
	// Workers is the fan-out used by the parallel-determinism checks
	// (default 4). The identity under audit is "-j 1 ≡ -j N", so this is
	// the N.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Commits == 0 {
		o.Commits = 3000
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// Check is one auditable property. Run executes the property at the given
// seed and returns nil when it holds. Distinct seeds draw distinct
// configurations/workloads/request mixes, so sweeping seeds sweeps the
// input space.
type Check struct {
	// Name is the stable identifier used by seraudit's -check filter and
	// failure reports.
	Name string
	// Doc is the one-line statement of the property.
	Doc string
	// Run executes the property once.
	Run func(seed uint64, opt Options) error
}

// All returns every registered check, in stable order: the simulation-layer
// properties first (they underpin everything else), then the campaign-layer
// equivalences, then the serving-layer contracts.
func All() []Check {
	return []Check{
		{
			Name: "residency-conservation",
			Doc:  "per-structure occupancy sums fit cycles×entries and the bit-cycle classes partition capacity exactly",
			Run:  checkResidencyConservation,
		},
		{
			Name: "trace-differential",
			Doc:  "event-horizon fast path and single-step interpreter produce identical traces on random configurations",
			Run:  checkTraceDifferential,
		},
		{
			Name: "stream-batch",
			Doc:  "streaming ace.Collector reports equal batch trace analysis exactly, on one shared run",
			Run:  checkStreamBatch,
		},
		{
			Name: "batched-independent",
			Doc:  "batched K-config evaluation equals K independent single-config runs, reports byte-identical",
			Run:  checkBatchedIndependent,
		},
		{
			Name: "arena-reuse",
			Doc:  "evaluation on a dirtied arena or shared arena pool is bit-identical to fresh-state runs, and retained Results survive reuse",
			Run:  checkArenaReuse,
		},
		{
			Name: "parallel-determinism",
			Doc:  "a random sweep grid renders byte-identical CSV at -j 1 and -j N",
			Run:  checkParallelDeterminism,
		},
		{
			Name: "checkpoint-resume",
			Doc:  "a grid cancelled mid-run and resumed from its checkpoint renders bytes identical to an uninterrupted run",
			Run:  checkCheckpointResume,
		},
		{
			Name: "fault-partition",
			Doc:  "strike tallies from arbitrary shuffled partitions of the strike space merge exactly to the single-range campaign's",
			Run:  checkFaultPartition,
		},
		{
			Name: "pi-bit-safety",
			Doc:  "no π-bit tracking configuration — any level, PET size or window — suppresses an outcome-changing error",
			Run:  checkPiBitSafety,
		},
		{
			Name: "chipplan-monotonicity",
			Doc:  "chip budget arithmetic decomposes per-structure, protection upgrades are cost/SDC-monotone, and Plan matches a brute-force oracle",
			Run:  checkChipPlan,
		},
		{
			Name: "traceview-roundtrip",
			Doc:  "a trace saved and loaded again is structurally identical and re-encodes to the same bytes",
			Run:  checkTraceviewRoundtrip,
		},
		{
			Name: "fingerprint-injectivity",
			Doc:  "distinct normalised eval requests never share a content address; spelled-out defaults share one with the implicit form",
			Run:  checkFingerprintInjectivity,
		},
		{
			Name: "cache-concurrency",
			Doc:  "concurrent mixed hit/miss eval load returns byte-identical bodies per request spec",
			Run:  checkCacheConcurrency,
		},
		{
			Name: "job-lifecycle",
			Doc:  "job event streams are dense in Seq, monotonic in done, terminal exactly once and replay identically",
			Run:  checkJobLifecycle,
		},
		{
			Name: "fleet-identity",
			Doc:  "a grid run locally, on a one-worker fleet, and on a chaos-injected three-worker fleet renders byte-identical CSV",
			Run:  checkFleetIdentity,
		},
		{
			Name: "static-bounds",
			Doc:  "static per-structure and per-bit-class AVF bounds dominate simulated AVF, and /v1/bound serves byte-deterministically with zero cycles simulated",
			Run:  checkStaticBounds,
		},
	}
}

// Find returns the check with the given name.
func Find(name string) (Check, error) {
	for _, c := range All() {
		if c.Name == name {
			return c, nil
		}
	}
	return Check{}, fmt.Errorf("invariant: unknown check %q", name)
}
