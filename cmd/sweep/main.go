// Command sweep runs a design-space grid over the simulator and writes one
// long-format CSV row per (benchmark × policy × IQ size × issue discipline)
// cell — ready for plotting or pivoting.
//
//	sweep -benches mcf,ammp -policies baseline,squash-l1 -iqsizes 16,32,64,128 -out grid.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"softerror/internal/core"
	"softerror/internal/par"
	"softerror/internal/spec"
	"softerror/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	benchList := fs.String("benches", "", "comma-separated benchmarks (default: all 26)")
	polList := fs.String("policies", "baseline,squash-l1,squash-l0", "comma-separated policies")
	sizeList := fs.String("iqsizes", "64", "comma-separated instruction-queue sizes")
	oooList := fs.String("ooo", "false", "comma-separated issue disciplines (false,true)")
	commits := fs.Uint64("commits", core.DefaultCommits, "committed instructions per cell")
	out := fs.String("out", "", "output CSV path (default: stdout)")
	quiet := fs.Bool("q", false, "suppress progress on stderr")
	jobs := fs.Int("j", 0, "simulation worker count (default GOMAXPROCS); output is identical at any -j")
	if err := fs.Parse(args); err != nil {
		return err
	}
	par.SetDefault(*jobs)

	g := &sweep.Grid{Commits: *commits, Workers: *jobs}
	g.Benches = spec.All()
	if *benchList != "" {
		g.Benches = g.Benches[:0]
		for _, name := range strings.Split(*benchList, ",") {
			b, ok := spec.ByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown benchmark %q", name)
			}
			g.Benches = append(g.Benches, b)
		}
	}
	for _, p := range strings.Split(*polList, ",") {
		pol, err := parsePolicy(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		g.Policies = append(g.Policies, pol)
	}
	for _, s := range strings.Split(*sizeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad IQ size %q", s)
		}
		g.IQSizes = append(g.IQSizes, n)
	}
	for _, s := range strings.Split(*oooList, ",") {
		v, err := strconv.ParseBool(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad ooo value %q", s)
		}
		g.OutOfOrder = append(g.OutOfOrder, v)
	}

	progress := func(done, total int) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	rows, err := g.Run(progress)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sweep.WriteCSV(w, rows)
}

func parsePolicy(s string) (core.Policy, error) {
	switch s {
	case "baseline", "none":
		return core.PolicyBaseline, nil
	case "squash-l1":
		return core.PolicySquashL1, nil
	case "squash-l0":
		return core.PolicySquashL0, nil
	case "throttle-l1":
		return core.PolicyThrottleL1, nil
	case "throttle-l0":
		return core.PolicyThrottleL0, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}
