package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Demo", "name", "ipc", "avf")
	tb.AddRow("baseline", "1.21", "29.0%")
	tb.AddRow("squash-l1", "1.19", "22.0%")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[3], "baseline") || !strings.Contains(lines[4], "squash-l1") {
		t.Errorf("rows wrong:\n%s", out)
	}
	// Numeric columns right-aligned: the '%' signs line up.
	if strings.Index(lines[3], "%") != strings.Index(lines[4], "%") {
		t.Errorf("numeric column misaligned:\n%s", out)
	}
}

func TestTableMissingAndExtraCells(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "z-extra")
	out := tb.String()
	if !strings.Contains(out, "z-extra") {
		t.Error("extra cell dropped")
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestCSV(t *testing.T) {
	tb := New("ignored", "a", "b")
	tb.AddRow("1", "2")
	tb.AddRow("3", "4,with-comma")
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "a,b\n1,2\n3,\"4,with-comma\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct{ got, want string }{
		{Pct(0.287), "28.7%"},
		{F2(1.2345), "1.23"},
		{F3(1.2345), "1.234"},
		{Rel(0.739), "-26.1%"},
		{Rel(1.15), "+15.0%"},
		{Int(42), "42"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("formatted %q, want %q", c.got, c.want)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("Empty", "a", "b")
	out := tb.String()
	if !strings.Contains(out, "Empty") || !strings.Contains(out, "a") {
		t.Fatalf("empty table render wrong:\n%s", out)
	}
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n" {
		t.Fatalf("empty CSV = %q", b.String())
	}
}
