package ace

import (
	"testing"

	"softerror/internal/cache"
	"softerror/internal/isa"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// regTrace builds a trace from a commit log with explicit cycles.
func regTrace(cycles uint64, log []isa.Inst, at []uint64) *pipeline.Trace {
	return &pipeline.Trace{
		Cycles:       cycles,
		IQSize:       64,
		CommitLog:    log,
		CommitCycles: at,
	}
}

func TestRegFileEmpty(t *testing.T) {
	rep := AnalyzeRegFile(regTrace(100, nil, nil), AnalyzeDeadness(nil))
	if rep.UntouchedFraction() != 1 {
		t.Fatalf("empty trace untouched = %v, want 1", rep.UntouchedFraction())
	}
	if rep.SDCAVF() != 0 || rep.DUEAVF() != 0 {
		t.Fatal("empty trace should have zero AVFs")
	}
}

func TestRegFileLiveValueWindow(t *testing.T) {
	// r5 defined at cycle 10, read by a live consumer at cycle 40,
	// overwritten at cycle 60; new value live-out to cycle 100.
	b := &logBuilder{}
	b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone) // def
	use := b.alu(isa.IntReg(6), isa.IntReg(5), isa.RegNone)
	b.store(isa.IntReg(6), 0x100) // keeps the consumer live
	b.load(isa.IntReg(7), 0x100)
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // overwrite
	_ = use
	at := []uint64{10, 40, 45, 50, 60}
	tr := regTrace(100, b.log, at)
	rep := AnalyzeRegFile(tr, AnalyzeDeadness(b.log))

	// First r5 value: ACE 10..40 (30 cycles), Ex-ACE 40..60 (20 cycles).
	// The second value and others are live-out ACE; check the components
	// are present rather than reconstructing every register.
	if rep.ACEBC == 0 || rep.ExACEBC == 0 {
		t.Fatalf("expected ACE and Ex-ACE bit-cycles, got %+v", rep)
	}
	wantEx := uint64(20 * IntRegBits)
	if rep.ExACEBC != wantEx {
		t.Fatalf("ExACEBC = %d, want %d", rep.ExACEBC, wantEx)
	}
}

func TestRegFileDeadReadWindow(t *testing.T) {
	// r5's only reader is itself dead: the read window counts as DeadRead
	// (false-DUE source), not ACE.
	b := &logBuilder{}
	b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)       // def r5 @10
	dr := b.alu(isa.IntReg(6), isa.IntReg(5), isa.RegNone) // dead reader @30
	b.alu(isa.IntReg(6), isa.IntReg(2), isa.RegNone)       // kill reader @40
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone)       // overwrite r5 @50
	at := []uint64{10, 30, 40, 50}
	tr := regTrace(100, b.log, at)
	dead := AnalyzeDeadness(b.log)
	if got := dead.Of(&b.log[dr]); got != CatFDDReg {
		t.Fatalf("reader should be fdd-reg, got %v", got)
	}
	rep := AnalyzeRegFile(tr, dead)
	// r5 value 1: def @10, dead read @30, overwrite @50: DeadRead 10..30,
	// Ex-ACE 30..50.
	wantDead := uint64(20 * IntRegBits)
	if rep.DeadReadBC != wantDead {
		t.Fatalf("DeadReadBC = %d, want %d", rep.DeadReadBC, wantDead)
	}
	if rep.FalseDUEAVF() <= 0 {
		t.Fatal("dead reads should produce regfile false DUE")
	}
}

func TestRegFileNeverReadValue(t *testing.T) {
	// A value overwritten without any read is pure Ex-ACE.
	b := &logBuilder{}
	b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone) // def @10
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // overwrite @30
	at := []uint64{10, 30}
	rep := AnalyzeRegFile(regTrace(100, b.log, at), AnalyzeDeadness(b.log))
	if rep.ExACEBC < uint64(20*IntRegBits) {
		t.Fatalf("ExACEBC = %d, want >= %d", rep.ExACEBC, 20*IntRegBits)
	}
	if rep.DeadReadBC != 0 {
		t.Fatalf("DeadReadBC = %d, want 0 (no reads at all)", rep.DeadReadBC)
	}
}

func TestRegFileLiveOutConservative(t *testing.T) {
	b := &logBuilder{}
	b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone) // def @10, never overwritten
	at := []uint64{10}
	rep := AnalyzeRegFile(regTrace(100, b.log, at), AnalyzeDeadness(b.log))
	if want := uint64(90 * IntRegBits); rep.ACEBC != want {
		t.Fatalf("live-out ACEBC = %d, want %d", rep.ACEBC, want)
	}
}

func TestRegFileClassesPartition(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	p := pipeline.MustNew(pipeline.DefaultConfig(), gen, mem)
	tr := p.Run(30000, true)
	dead := AnalyzeDeadness(tr.CommitLog)
	rep := AnalyzeRegFile(tr, dead)
	sum := rep.ACEBC + rep.DeadReadBC + rep.ExACEBC + rep.UntouchedBC
	if sum != rep.TotalBC {
		t.Fatalf("classes sum to %d, want %d", sum, rep.TotalBC)
	}
	if rep.SDCAVF() <= 0 || rep.SDCAVF() >= 1 {
		t.Fatalf("regfile SDC AVF = %v out of (0,1)", rep.SDCAVF())
	}
	if rep.FalseDUEAVF() <= 0 {
		t.Fatal("mixed workload should produce some regfile false DUE")
	}
	if rep.DUEAVF() <= rep.SDCAVF() {
		t.Fatal("regfile DUE AVF should exceed SDC AVF")
	}
	// Sanity: predicates and FP widen the file; the integer file alone
	// cannot exceed its share of capacity.
	intShare := float64(isa.NumIntRegs*IntRegBits) / float64(regFileCapacityBits)
	if rep.SDCAVF() > intShare+float64(isa.NumFPRegs*FPRegBits)/float64(regFileCapacityBits)+0.05 {
		t.Fatalf("regfile SDC AVF %v implausibly high", rep.SDCAVF())
	}
}

func TestRegFileWidths(t *testing.T) {
	if regBits(isa.IntReg(3)) != IntRegBits {
		t.Error("int width wrong")
	}
	if regBits(isa.FPReg(3)) != FPRegBits {
		t.Error("fp width wrong")
	}
	if regBits(isa.PredReg(3)) != PredRegBits {
		t.Error("pred width wrong")
	}
	want := uint64(128*64 + 128*82 + 64*1)
	if regFileCapacityBits != want {
		t.Fatalf("capacity = %d bits, want %d", regFileCapacityBits, want)
	}
}
