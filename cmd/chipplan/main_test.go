package main

import (
	"os"
	"path/filepath"
	"testing"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestMeasureMode(t *testing.T) {
	silence(t)
	args := []string{"-measure", "gzip-graphic", "-commits", "8000", "-rawfit", "0.05"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetFileMode(t *testing.T) {
	silence(t)
	path := filepath.Join(t.TempDir(), "budget.json")
	data := []byte(`{
		"RawFITPerBit": 0.05,
		"SDCTargetYears": 5000,
		"DUETargetYears": 25,
		"Structures": [
			{"Name": "iq", "Bits": 2624, "SDCAVF": 0.3, "FalseDUEAVF": 0.25},
			{"Name": "rf", "Bits": 18752, "SDCAVF": 0.1, "FalseDUEAVF": 0.01}
		]
	}`)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-budget", path}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-measure", "x", "-budget", "y"}); err == nil {
		t.Error("both modes accepted")
	}
	if err := run([]string{"-measure", "nosuch"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-budget", filepath.Join(t.TempDir(), "none.json")}); err == nil {
		t.Error("missing budget accepted")
	}
	garbage := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(garbage, []byte("{"), 0o644)
	if err := run([]string{"-budget", garbage}); err == nil {
		t.Error("garbage budget accepted")
	}
}
