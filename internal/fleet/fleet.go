// Package fleet turns seratd from one process into a coordinated fleet: a
// coordinator partitions a sweep grid into cell-range leases, routes each
// lease to a worker daemon by consistent hashing of the cells' content
// addresses (so every worker's fingerprint-keyed cache shards the keyspace
// instead of duplicating it), and dispatches the leases over the workers'
// HTTP surface with per-lease timeouts, jittered exponential backoff,
// heartbeat-driven health, work stealing for stragglers and graceful
// degradation to local execution when no worker is healthy.
//
// The package's contract is byte-identity: because every sweep cell is
// deterministic by index and rows are reassembled by cell index, a grid run
// on one worker, on N workers, on N crashing/hanging/slow workers, or
// entirely locally renders the same CSV bytes. The fleet-identity check in
// internal/invariant pins exactly that under injected chaos.
package fleet

import (
	"errors"
	"fmt"
	"net"
	"net/url"
	"strconv"
	"strings"

	"softerror/internal/core"
	"softerror/internal/spec"
	"softerror/internal/sweep"
)

// MaxGridCells bounds the grid a lease may reference, mirroring the
// coordinator-side sweep admission cap: a worker must not let one lease
// request queue unbounded simulation.
const MaxGridCells = 16384

// Typed admission errors. Wire handlers match them with errors.Is and
// reject the request before any simulation is admitted.
var (
	// ErrEmptyLease: a lease carrying no cell ranges.
	ErrEmptyLease = errors.New("fleet: lease has no ranges")
	// ErrInvertedRange: a range with hi < lo or a negative bound.
	ErrInvertedRange = errors.New("fleet: inverted cell range")
	// ErrRangeBounds: a range reaching beyond the grid's cell space.
	ErrRangeBounds = errors.New("fleet: cell range beyond grid bounds")
	// ErrRangeOverlap: ranges out of order or overlapping — a lease names
	// every cell at most once, in ascending order.
	ErrRangeOverlap = errors.New("fleet: overlapping or unsorted cell ranges")
	// ErrBadGrid: the lease's grid specification does not build.
	ErrBadGrid = errors.New("fleet: bad grid spec")
	// ErrBadAddr: a worker address that is not a bare host:port.
	ErrBadAddr = errors.New("fleet: bad worker address")
)

// GridSpec is the wire form of a sweep grid: the axes by name, exactly
// enough to rebuild the grid on a worker. It deliberately excludes the
// coordinator's resilience knobs (OnError, TaskTimeout, Retries) — lease
// retry and reassignment are the coordinator's job, so workers execute
// leases fail-fast and report errors upward.
type GridSpec struct {
	Benches    []string `json:"benches"`
	Policies   []string `json:"policies"`
	IQSizes    []int    `json:"iqsizes"`
	OutOfOrder []bool   `json:"ooo"`
	Commits    uint64   `json:"commits,omitempty"`
}

// SpecOf captures a built grid's axes in wire form. Build(SpecOf(g)) yields
// a grid with g's fingerprint.
func SpecOf(g *sweep.Grid) GridSpec {
	sp := GridSpec{
		IQSizes:    append([]int(nil), g.IQSizes...),
		OutOfOrder: append([]bool(nil), g.OutOfOrder...),
		Commits:    g.Commits,
	}
	for _, b := range g.Benches {
		sp.Benches = append(sp.Benches, b.Name)
	}
	for _, p := range g.Policies {
		sp.Policies = append(sp.Policies, p.Flag())
	}
	return sp
}

// Build rebuilds the sweep grid a spec names, validating every axis.
// Failures wrap ErrBadGrid.
func (sp GridSpec) Build() (*sweep.Grid, error) {
	if len(sp.Benches) == 0 {
		return nil, fmt.Errorf("%w: no benchmarks", ErrBadGrid)
	}
	benches, err := spec.ParseList(strings.Join(sp.Benches, ","))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadGrid, err)
	}
	if len(sp.Policies) == 0 {
		return nil, fmt.Errorf("%w: no policies", ErrBadGrid)
	}
	policies := make([]core.Policy, len(sp.Policies))
	for i, p := range sp.Policies {
		if policies[i], err = core.ParsePolicy(p); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadGrid, err)
		}
	}
	g := &sweep.Grid{
		Benches:    benches,
		Policies:   policies,
		IQSizes:    sp.IQSizes,
		OutOfOrder: sp.OutOfOrder,
		Commits:    sp.Commits,
	}
	if len(g.IQSizes) == 0 {
		g.IQSizes = []int{64}
	}
	if len(g.OutOfOrder) == 0 {
		g.OutOfOrder = []bool{false}
	}
	for _, iq := range g.IQSizes {
		if iq < 1 {
			return nil, fmt.Errorf("%w: IQ size %d, want >= 1", ErrBadGrid, iq)
		}
	}
	if n := g.Size(); n < 1 || n > MaxGridCells {
		return nil, fmt.Errorf("%w: grid spans %d cells, want 1..%d", ErrBadGrid, n, MaxGridCells)
	}
	return g, nil
}

// Range is a half-open run of grid cell indices [Lo, Hi).
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Count returns the number of cells in the range.
func (r Range) Count() int { return r.Hi - r.Lo }

// LeaseRequest is the POST /v1/lease body: one unit of fleet work — a set
// of cell ranges of one grid, leased to one worker. Attempt numbers the
// coordinator's delivery attempts (1-based), so chaos injectors and logs
// can distinguish a retry from a first try.
type LeaseRequest struct {
	Lease   string   `json:"lease"`
	Attempt int      `json:"attempt,omitempty"`
	Grid    GridSpec `json:"grid"`
	Ranges  []Range  `json:"ranges"`
}

// Validate admission-checks the lease's ranges against a grid of the given
// size: non-empty, each range well-formed and in bounds, ranges ascending
// and disjoint. Violations wrap the typed errors above.
func (l LeaseRequest) Validate(gridSize int) error {
	if len(l.Ranges) == 0 {
		return fmt.Errorf("%w (lease %q)", ErrEmptyLease, l.Lease)
	}
	next := 0
	for k, r := range l.Ranges {
		if r.Lo < 0 || r.Hi < r.Lo {
			return fmt.Errorf("%w: range %d is [%d, %d)", ErrInvertedRange, k, r.Lo, r.Hi)
		}
		if r.Hi == r.Lo {
			return fmt.Errorf("%w: range %d is empty [%d, %d)", ErrEmptyLease, k, r.Lo, r.Hi)
		}
		if r.Hi > gridSize {
			return fmt.Errorf("%w: range %d is [%d, %d), grid has %d cells", ErrRangeBounds, k, r.Lo, r.Hi, gridSize)
		}
		if r.Lo < next {
			return fmt.Errorf("%w: range %d starts at %d, previous ended at %d", ErrRangeOverlap, k, r.Lo, next)
		}
		next = r.Hi
	}
	return nil
}

// Cells flattens the ranges into ascending cell indices.
func (l LeaseRequest) Cells() []int {
	var cells []int
	for _, r := range l.Ranges {
		for i := r.Lo; i < r.Hi; i++ {
			cells = append(cells, i)
		}
	}
	return cells
}

// CellRow carries one computed cell over the wire: the grid cell index and
// its row. Row fields are float64s and integers, which encoding/json
// round-trips exactly, so rows crossing the fleet are bit-equal to rows
// computed locally.
type CellRow struct {
	Index int       `json:"index"`
	Row   sweep.Row `json:"row"`
}

// LeaseResponse is the 200 body of a lease execution: every leased cell,
// exactly once.
type LeaseResponse struct {
	Lease string    `json:"lease"`
	Rows  []CellRow `json:"rows"`
}

// rowsFor extracts the response rows in the order of cells, demanding exact
// coverage: every leased cell exactly once, nothing extra. A violation is a
// protocol error the coordinator treats as fatal — serving a grid with
// silently missing or duplicated cells would break byte-identity.
func (resp LeaseResponse) rowsFor(cells []int) ([]sweep.Row, error) {
	byIndex := make(map[int]sweep.Row, len(resp.Rows))
	for _, cr := range resp.Rows {
		if _, dup := byIndex[cr.Index]; dup {
			return nil, fmt.Errorf("fleet: lease %s response names cell %d twice", resp.Lease, cr.Index)
		}
		byIndex[cr.Index] = cr.Row
	}
	if len(byIndex) != len(cells) {
		return nil, fmt.Errorf("fleet: lease %s response has %d cells, leased %d", resp.Lease, len(byIndex), len(cells))
	}
	rows := make([]sweep.Row, len(cells))
	for k, i := range cells {
		row, ok := byIndex[i]
		if !ok {
			return nil, fmt.Errorf("fleet: lease %s response is missing cell %d", resp.Lease, i)
		}
		rows[k] = row
	}
	return rows, nil
}

// RegisterRequest is the POST /v1/fleet/register body: a worker announcing
// its serving address to the coordinator.
type RegisterRequest struct {
	Addr string `json:"addr"`
}

// RegisterResponse acknowledges a registration with the fleet's worker
// count.
type RegisterResponse struct {
	Workers int `json:"workers"`
}

// Validate admission-checks a worker address: a bare host:port (no scheme,
// no path, no control bytes) with a numeric port. Violations wrap
// ErrBadAddr.
func (r RegisterRequest) Validate() error {
	a := r.Addr
	if a == "" {
		return fmt.Errorf("%w: empty", ErrBadAddr)
	}
	if len(a) > 256 {
		return fmt.Errorf("%w: %d bytes, want <= 256", ErrBadAddr, len(a))
	}
	for i := 0; i < len(a); i++ {
		if a[i] < 0x21 || a[i] == 0x7f {
			return fmt.Errorf("%w: control or space byte at %d", ErrBadAddr, i)
		}
	}
	if strings.Contains(a, "/") {
		return fmt.Errorf("%w: %q contains a path or scheme, want bare host:port", ErrBadAddr, a)
	}
	host, port, err := net.SplitHostPort(a)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadAddr, err)
	}
	if host == "" {
		return fmt.Errorf("%w: empty host in %q", ErrBadAddr, a)
	}
	p, err := strconv.Atoi(port)
	if err != nil || p < 1 || p > 65535 {
		return fmt.Errorf("%w: port %q, want 1..65535", ErrBadAddr, port)
	}
	// The address is embedded verbatim in the coordinator's dial URLs, so
	// it must round-trip through URL parsing as exactly a host — bytes like
	// '#', '?' or '@' survive SplitHostPort but would smuggle a fragment,
	// query or userinfo into every lease (found by FuzzWorkerRegister).
	u, err := url.Parse("http://" + a)
	if err != nil || u.Host != a || u.Path != "" || u.RawQuery != "" || u.Fragment != "" || u.User != nil {
		return fmt.Errorf("%w: %q does not parse as a bare URL host", ErrBadAddr, a)
	}
	return nil
}

// rangesOf compresses ascending cell indices into disjoint ranges.
func rangesOf(cells []int) []Range {
	var out []Range
	for _, i := range cells {
		if n := len(out); n > 0 && out[n-1].Hi == i {
			out[n-1].Hi = i + 1
			continue
		}
		out = append(out, Range{Lo: i, Hi: i + 1})
	}
	return out
}
