package main

import (
	"os"
	"testing"
)

// silence routes stdout to /dev/null for the duration of a test so the
// experiment tables don't clutter test logs.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                               // no experiment
		{"nonsense"},                     // unknown experiment
		{"-benches", "nosuch", "table1"}, // unknown benchmark
		{"table1", "extra"},              // too many args
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunSmallExperiments(t *testing.T) {
	silence(t)
	common := []string{"-benches", "gzip-graphic,ammp", "-commits", "8000"}
	experiments := []string{"table1", "table2", "fig2", "fig3", "fig4", "breakdown", "ablation", "protection", "regfile"}
	for _, exp := range experiments {
		args := append(append([]string{}, common...), exp)
		if err := run(args); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunOutcomes(t *testing.T) {
	silence(t)
	args := []string{"-benches", "gzip-graphic", "-commits", "8000", "-strikes", "2000", "outcomes"}
	if err := run(args); err != nil {
		t.Fatalf("outcomes: %v", err)
	}
}

func TestRunSimPoints(t *testing.T) {
	silence(t)
	args := []string{"-benches", "gzip-graphic", "-commits", "6000", "-simpoints", "2", "simpoints"}
	if err := run(args); err != nil {
		t.Fatalf("simpoints: %v", err)
	}
}

func TestRunCSV(t *testing.T) {
	silence(t)
	args := []string{"-csv", "-benches", "gzip-graphic", "-commits", "8000", "table1"}
	if err := run(args); err != nil {
		t.Fatalf("csv table1: %v", err)
	}
}
