package ace

import (
	"testing"

	"softerror/internal/isa"
)

// logBuilder assembles committed-instruction logs for deadness tests.
type logBuilder struct {
	log   []isa.Inst
	seq   uint64
	depth uint8
}

func (b *logBuilder) add(in isa.Inst) int {
	in.Seq = b.seq
	in.CallDepth = b.depth
	b.seq++
	b.log = append(b.log, in)
	return len(b.log) - 1
}

func (b *logBuilder) alu(dest, src1, src2 isa.Reg) int {
	return b.add(isa.Inst{Class: isa.ClassALU, Dest: dest, Src1: src1, Src2: src2, PredGuard: isa.RegNone})
}

func (b *logBuilder) load(dest isa.Reg, addr uint64) int {
	return b.add(isa.Inst{Class: isa.ClassLoad, Dest: dest, Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone, Addr: addr})
}

func (b *logBuilder) store(val isa.Reg, addr uint64) int {
	return b.add(isa.Inst{Class: isa.ClassStore, Dest: isa.RegNone, Src1: val, Src2: isa.RegNone, PredGuard: isa.RegNone, Addr: addr})
}

func (b *logBuilder) nop() int {
	return b.add(isa.Inst{Class: isa.ClassNop, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, PredGuard: isa.RegNone})
}

func (b *logBuilder) call() int {
	i := b.add(isa.Inst{Class: isa.ClassCall, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, PredGuard: isa.RegNone})
	b.depth++
	return i
}

func (b *logBuilder) ret() int {
	b.depth--
	return b.add(isa.Inst{Class: isa.ClassReturn, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, PredGuard: isa.RegNone})
}

func catOf(t *testing.T, d *Deadness, log []isa.Inst, idx int) Category {
	t.Helper()
	return d.Of(&log[idx])
}

func TestFDDRegOverwriteWithoutRead(t *testing.T) {
	b := &logBuilder{}
	dead := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // overwrite, no read
	b.alu(isa.IntReg(9), isa.IntReg(5), isa.RegNone) // keep second write live... needs overwrite too
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, dead); got != CatFDDReg {
		t.Fatalf("overwritten-unread write classified %v, want fdd-reg", got)
	}
}

func TestLiveReadBeforeOverwrite(t *testing.T) {
	b := &logBuilder{}
	def := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	use := b.alu(isa.IntReg(6), isa.IntReg(5), isa.RegNone)
	b.store(isa.IntReg(6), 0x100) // live store keeps the user live
	b.load(isa.IntReg(7), 0x100)  // the store is read
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone)
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, def); got != CatACE {
		t.Fatalf("read-then-overwritten write classified %v, want ace", got)
	}
	if got := catOf(t, d, b.log, use); got != CatACE {
		t.Fatalf("consumer feeding live store classified %v, want ace", got)
	}
}

func TestLiveOutConservative(t *testing.T) {
	b := &logBuilder{}
	def := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.nop()
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, def); got != CatACE {
		t.Fatalf("never-overwritten write classified %v, want ace (live-out)", got)
	}
}

func TestTDDRegChain(t *testing.T) {
	b := &logBuilder{}
	producer := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	terminal := b.alu(isa.IntReg(6), isa.IntReg(5), isa.RegNone) // reads 5, writes 6
	b.alu(isa.IntReg(6), isa.IntReg(2), isa.RegNone)             // overwrite 6: terminal FDD
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone)             // overwrite 5
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, terminal); got != CatFDDReg {
		t.Fatalf("terminal classified %v, want fdd-reg", got)
	}
	if got := catOf(t, d, b.log, producer); got != CatTDDReg {
		t.Fatalf("producer classified %v, want tdd-reg", got)
	}
}

func TestTwoLevelTDDChain(t *testing.T) {
	b := &logBuilder{}
	root := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	mid := b.alu(isa.IntReg(6), isa.IntReg(5), isa.RegNone)
	term := b.alu(isa.IntReg(7), isa.IntReg(6), isa.RegNone)
	b.alu(isa.IntReg(7), isa.IntReg(2), isa.RegNone)
	b.alu(isa.IntReg(6), isa.IntReg(2), isa.RegNone)
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone)
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, term); got != CatFDDReg {
		t.Fatalf("terminal = %v, want fdd-reg", got)
	}
	if got := catOf(t, d, b.log, mid); got != CatTDDReg {
		t.Fatalf("mid = %v, want tdd-reg", got)
	}
	if got := catOf(t, d, b.log, root); got != CatTDDReg {
		t.Fatalf("root = %v, want tdd-reg", got)
	}
}

func TestMixedConsumersStayLive(t *testing.T) {
	b := &logBuilder{}
	def := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	deadUse := b.alu(isa.IntReg(6), isa.IntReg(5), isa.RegNone)
	b.alu(isa.IntReg(6), isa.IntReg(2), isa.RegNone) // kill dead use
	liveUse := b.alu(isa.IntReg(7), isa.IntReg(5), isa.RegNone)
	b.store(isa.IntReg(7), 0x200)
	b.load(isa.IntReg(8), 0x200)
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // overwrite def
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, deadUse); got != CatFDDReg {
		t.Fatalf("dead consumer = %v, want fdd-reg", got)
	}
	if got := catOf(t, d, b.log, liveUse); got != CatACE {
		t.Fatalf("live consumer = %v, want ace", got)
	}
	if got := catOf(t, d, b.log, def); got != CatACE {
		t.Fatalf("def with one live reader = %v, want ace", got)
	}
}

func TestDeadStoreAndTDDMem(t *testing.T) {
	b := &logBuilder{}
	producer := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	deadStore := b.store(isa.IntReg(5), 0x300)
	b.store(isa.IntReg(2), 0x300)                    // overwrite memory, no load
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // overwrite r5
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, deadStore); got != CatFDDMem {
		t.Fatalf("dead store = %v, want fdd-mem", got)
	}
	if got := catOf(t, d, b.log, producer); got != CatTDDMem {
		t.Fatalf("producer of dead store = %v, want tdd-mem", got)
	}
}

func TestStoreReadStaysLive(t *testing.T) {
	b := &logBuilder{}
	st := b.store(isa.IntReg(1), 0x400)
	ld := b.load(isa.IntReg(5), 0x400)
	b.store(isa.IntReg(2), 0x400)
	b.alu(isa.IntReg(6), isa.IntReg(5), isa.RegNone) // live-out consumer
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, st); got != CatACE {
		t.Fatalf("read store = %v, want ace", got)
	}
	if got := catOf(t, d, b.log, ld); got != CatACE {
		t.Fatalf("load with live consumer = %v, want ace", got)
	}
}

func TestStoreReadOnlyByDeadLoadIsTDDMem(t *testing.T) {
	// A store whose only reader is a load whose own result dies is
	// transitively dead via memory (§4.1): only full memory tracking can
	// cover it.
	b := &logBuilder{}
	st := b.store(isa.IntReg(1), 0x400)
	ld := b.load(isa.IntReg(5), 0x400)
	b.store(isa.IntReg(2), 0x400)                    // overwrite memory
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // overwrite load result unread
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, ld); got != CatFDDReg {
		t.Fatalf("dead load = %v, want fdd-reg", got)
	}
	if got := catOf(t, d, b.log, st); got != CatTDDMem {
		t.Fatalf("store read only by dead load = %v, want tdd-mem", got)
	}
}

func TestFinalStoreConservativelyLive(t *testing.T) {
	b := &logBuilder{}
	st := b.store(isa.IntReg(1), 0x500)
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, st); got != CatACE {
		t.Fatalf("never-overwritten store = %v, want ace", got)
	}
}

func TestReturnDeadLocal(t *testing.T) {
	b := &logBuilder{}
	b.call()
	local := b.alu(isa.IntReg(40), isa.IntReg(1), isa.RegNone) // written at depth 1
	b.ret()
	b.call()
	b.alu(isa.IntReg(40), isa.IntReg(2), isa.RegNone) // overwritten in a later frame
	b.ret()
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, local); got != CatFDDRet {
		t.Fatalf("return-dead local = %v, want fdd-ret", got)
	}
}

func TestSameFrameOverwriteIsPlainFDD(t *testing.T) {
	b := &logBuilder{}
	b.call()
	first := b.alu(isa.IntReg(40), isa.IntReg(1), isa.RegNone)
	b.alu(isa.IntReg(40), isa.IntReg(2), isa.RegNone) // same frame, no return between
	b.ret()
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, first); got != CatFDDReg {
		t.Fatalf("same-frame overwrite = %v, want fdd-reg", got)
	}
}

func TestNeutralClassification(t *testing.T) {
	b := &logBuilder{}
	n := b.nop()
	pf := b.add(isa.Inst{Class: isa.ClassPrefetch, Dest: isa.RegNone, Src1: isa.IntReg(3), Src2: isa.RegNone, PredGuard: isa.RegNone, Addr: 0x600})
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, n); got != CatNeutral {
		t.Fatalf("nop = %v, want neutral", got)
	}
	if got := catOf(t, d, b.log, pf); got != CatNeutral {
		t.Fatalf("prefetch = %v, want neutral", got)
	}
}

func TestPrefetchReadDoesNotKeepAlive(t *testing.T) {
	b := &logBuilder{}
	def := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.add(isa.Inst{Class: isa.ClassPrefetch, Dest: isa.RegNone, Src1: isa.IntReg(5), Src2: isa.RegNone, PredGuard: isa.RegNone, Addr: 0x700})
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone)
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, def); got != CatFDDReg {
		t.Fatalf("value read only by prefetch = %v, want fdd-reg", got)
	}
}

func TestPredFalseClassificationAndUses(t *testing.T) {
	b := &logBuilder{}
	// A compare producing p1, read by a pred-false instruction: the guard
	// read is a real use (it decided the instruction did nothing).
	cmp := b.add(isa.Inst{Class: isa.ClassALU, Dest: isa.PredReg(1), Src1: isa.IntReg(1), Src2: isa.IntReg(2), PredGuard: isa.RegNone})
	val := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	pf := b.add(isa.Inst{Class: isa.ClassALU, Dest: isa.IntReg(6), Src1: isa.IntReg(5), Src2: isa.RegNone, PredGuard: isa.PredReg(1), PredFalse: true})
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // overwrite val
	b.add(isa.Inst{Class: isa.ClassALU, Dest: isa.PredReg(1), Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone})
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, pf); got != CatPredFalse {
		t.Fatalf("pred-false inst = %v, want pred-false", got)
	}
	// The pred-false instruction's data source is NOT a real read.
	if got := catOf(t, d, b.log, val); got != CatFDDReg {
		t.Fatalf("value read only by pred-false inst = %v, want fdd-reg", got)
	}
	// But its guard read is real: the compare stays live.
	if got := catOf(t, d, b.log, cmp); got != CatACE {
		t.Fatalf("compare read by pred-false guard = %v, want ace", got)
	}
}

func TestBranchesAreACE(t *testing.T) {
	b := &logBuilder{}
	br := b.add(isa.Inst{Class: isa.ClassBranch, Dest: isa.RegNone, Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone, Taken: true})
	d := AnalyzeDeadness(b.log)
	if got := catOf(t, d, b.log, br); got != CatACE {
		t.Fatalf("branch = %v, want ace", got)
	}
}

func TestOfFallbacks(t *testing.T) {
	d := AnalyzeDeadness(nil)
	wp := isa.Inst{Seq: 99, WrongPath: true, Class: isa.ClassALU}
	if d.Of(&wp) != CatWrongPath {
		t.Error("wrong-path fallback broken")
	}
	unknown := isa.Inst{Seq: 42, Class: isa.ClassALU}
	if d.Of(&unknown) != CatACE {
		t.Error("unknown-seq fallback should be conservative ACE")
	}
}

func TestCountsAndDeadFraction(t *testing.T) {
	b := &logBuilder{}
	b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone) // fdd (overwritten below)
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // live-out
	b.nop()
	d := AnalyzeDeadness(b.log)
	if d.Committed() != 3 {
		t.Fatalf("Committed = %d, want 3", d.Committed())
	}
	if d.Counts[CatFDDReg] != 1 || d.Counts[CatACE] != 1 || d.Counts[CatNeutral] != 1 {
		t.Fatalf("Counts = %v", d.Counts)
	}
	if got := d.DeadFraction(); got != 1.0/3 {
		t.Fatalf("DeadFraction = %v, want 1/3", got)
	}
	empty := AnalyzeDeadness(nil)
	if empty.DeadFraction() != 0 {
		t.Error("empty deadness should report 0 dead fraction")
	}
}

func TestFDDDistances(t *testing.T) {
	b := &logBuilder{}
	b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone) // idx 0
	b.nop()                                          // idx 1
	b.nop()                                          // idx 2
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // idx 3: overwrite at distance 3
	d := AnalyzeDeadness(b.log)
	if len(d.FDDRegDist) != 1 || d.FDDRegDist[0] != 3 {
		t.Fatalf("FDDRegDist = %v, want [3]", d.FDDRegDist)
	}
}

func TestPETCoverage(t *testing.T) {
	dists := []int{1, 10, 100, 1000}
	cases := []struct {
		entries int
		want    float64
	}{
		{0, 0}, {1, 0.25}, {10, 0.5}, {100, 0.75}, {1000, 1}, {5000, 1},
	}
	for _, c := range cases {
		if got := PETCoverage(dists, c.entries); got != c.want {
			t.Errorf("PETCoverage(%d) = %v, want %v", c.entries, got, c.want)
		}
	}
	if PETCoverage(nil, 100) != 0 {
		t.Error("empty population coverage should be 0")
	}
}

func TestCategoryHelpers(t *testing.T) {
	if CatACE.UnACE() {
		t.Error("ACE must not be un-ACE")
	}
	for _, c := range []Category{CatWrongPath, CatPredFalse, CatNeutral, CatFDDReg, CatFDDRet, CatTDDReg, CatFDDMem, CatTDDMem} {
		if !c.UnACE() {
			t.Errorf("%v should be un-ACE", c)
		}
	}
	for _, c := range []Category{CatFDDReg, CatFDDRet, CatTDDReg, CatFDDMem, CatTDDMem} {
		if !c.Dead() {
			t.Errorf("%v should be dead", c)
		}
	}
	if CatWrongPath.Dead() || CatNeutral.Dead() || CatACE.Dead() {
		t.Error("non-dead category reported dead")
	}
}

func TestTrackLevels(t *testing.T) {
	want := map[Category]TrackLevel{
		CatACE:       TrackNever,
		CatWrongPath: TrackCommit,
		CatPredFalse: TrackCommit,
		CatNeutral:   TrackAntiPi,
		CatFDDReg:    TrackRegFile,
		CatFDDRet:    TrackRegFile,
		CatTDDReg:    TrackStoreBuffer,
		CatFDDMem:    TrackMemory,
		CatTDDMem:    TrackMemory,
	}
	for c, lvl := range want {
		if got := c.Track(); got != lvl {
			t.Errorf("%v.Track() = %v, want %v", c, got, lvl)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == "" {
			t.Errorf("category %d has empty name", c)
		}
	}
	if Category(99).String() == "" || TrackLevel(99).String() == "" {
		t.Error("out-of-range values should still render")
	}
	if TrackMemory.String() != "pi-memory" {
		t.Errorf("TrackMemory = %q", TrackMemory.String())
	}
}
