// Command seraudit sweeps the repository's invariant checks across
// randomised seeds: every structural property the reproduction's numbers
// rest on — residency conservation, fast-path ≡ single-step, stream ≡
// batch, batched K-config ≡ K independent runs, -j 1 ≡ -j N, kill/resume
// identity, strike-partition merge exactness, trace save/load round-trip,
// content-address injectivity, cache byte-identity, job-lifecycle
// monotonicity, fleet ≡ local byte-identity under injected worker chaos —
// audited over fresh random configurations each seed.
//
//	seraudit              # all checks, seeds 1..20
//	seraudit -quick       # all checks, seeds 1..3 (the race/CI tier)
//	seraudit -check trace-differential -seeds 100
//	seraudit -j 8         # fan the (check, seed) units over 8 workers
//
// The seed sweep fans out across -j workers (GOMAXPROCS by default); the
// report order is deterministic regardless of the fan-out.
//
// Every failure prints the check name and seed; re-run that seed (or drop
// it into the matching test) to reproduce exactly. Exit status 1 when any
// check fails.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"softerror/internal/cli"
	"softerror/internal/invariant"
	"softerror/internal/par"
)

func main() { cli.Main("seraudit", run) }

func run(args []string) error {
	d := cli.NewDriver("seraudit", "seraudit [flags]")
	fs := d.FS
	seeds := fs.Uint64("seeds", 0, "audit seeds 1..N (default 20, or 3 under -quick)")
	quick := fs.Bool("quick", false, "small seed sweep for CI tiers")
	check := fs.String("check", "", "run only the named check (default: all)")
	commits := fs.Uint64("commits", 3000, "per-simulation commit budget")
	list := fs.Bool("list", false, "list the registered checks and exit")
	if err := d.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}

	checks := invariant.All()
	if *list {
		for _, c := range checks {
			fmt.Printf("%-24s %s\n", c.Name, c.Doc)
		}
		return nil
	}
	if *check != "" {
		c, err := invariant.Find(*check)
		if err != nil {
			return cli.Usagef("%v (see seraudit -list)", err)
		}
		checks = []invariant.Check{c}
	}
	n := *seeds
	if n == 0 {
		n = 20
		if *quick {
			n = 3
		}
	}
	opt := invariant.Options{Commits: *commits, Workers: d.Jobs()}

	// Fan the (check, seed) units across the worker pool. Each unit stores
	// its verdict into its own slot and never returns an error to par, so
	// the pool's only failure mode is a panicking check (isolated by the
	// Collect policy and folded into that unit's slot below). Reporting
	// then walks the units in registry × seed order, which keeps the
	// "FAIL <check> seed=N" stream deterministic regardless of -j.
	type unit struct {
		check int
		seed  uint64
	}
	units := make([]unit, 0, len(checks)*int(n))
	for ci := range checks {
		for seed := uint64(1); seed <= n; seed++ {
			units = append(units, unit{check: ci, seed: seed})
		}
	}
	results := make([]error, len(units))
	runErr := par.Run(context.Background(), len(units),
		par.Options{Workers: d.Jobs(), Policy: par.Collect},
		func(ctx context.Context, i int) error {
			u := units[i]
			results[i] = checks[u.check].Run(u.seed, opt)
			return nil
		})
	var tasks par.Errors
	if errors.As(runErr, &tasks) {
		for _, te := range tasks {
			results[te.Index] = te.Err
		}
	} else if runErr != nil {
		return runErr
	}

	failures := 0
	for i, u := range units {
		if err := results[i]; err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s seed=%d: %v\n", checks[u.check].Name, u.seed, err)
		}
		if u.seed == n {
			fmt.Printf("audited %-24s over %d seeds\n", checks[u.check].Name, n)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d invariant violation(s) across %d checks × %d seeds",
			failures, len(checks), n)
	}
	fmt.Printf("all %d checks hold over %d seeds\n", len(checks), n)
	return nil
}
