package tracefile

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"path/filepath"
	"reflect"
	"testing"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

func sampleTrace(t testing.TB) *pipeline.Trace {
	t.Helper()
	gen := workload.MustNew(workload.Default())
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	p := pipeline.MustNew(pipeline.DefaultConfig(), gen, mem)
	return p.Run(5000, true)
}

func TestRoundTripInMemory(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("round-tripped trace differs")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tr := sampleTrace(t)
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != tr.Cycles || got.Commits != tr.Commits ||
		len(got.Residencies) != len(tr.Residencies) ||
		len(got.CommitLog) != len(tr.CommitLog) {
		t.Fatal("loaded trace summary mismatch")
	}
}

func TestLoadedTraceAnalysesIdentically(t *testing.T) {
	// The point of persistence: analyses of the loaded trace match the
	// original exactly.
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := ace.Analyze(tr), ace.Analyze(got)
	if a.SDCAVF() != b.SDCAVF() || a.DUEAVF() != b.DUEAVF() {
		t.Fatalf("AVFs differ after round trip: %v/%v vs %v/%v",
			a.SDCAVF(), a.DUEAVF(), b.SDCAVF(), b.DUEAVF())
	}
}

func TestRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid gzip, wrong magic.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(header{Magic: "something-else", Version: version}); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	if _, err := Read(&buf); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Right magic, wrong version.
	buf.Reset()
	zw = gzip.NewWriter(&buf)
	enc = gob.NewEncoder(zw)
	if err := enc.Encode(header{Magic: magic, Version: version + 1}); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	if _, err := Read(&buf); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestWriteNil(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Fatal("missing file accepted")
	}
}
