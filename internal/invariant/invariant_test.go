package invariant

import (
	"strings"
	"testing"

	"softerror/internal/rng"
)

// TestAllChecksHold runs every registered invariant over a handful of
// seeds at a small commit budget — the tier-1 slice of the audit. Broader
// seed sweeps run through cmd/seraudit (and the race tier runs it -quick).
func TestAllChecksHold(t *testing.T) {
	opt := Options{Commits: 2000, Workers: 2}
	for _, c := range All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 3; seed++ {
				if err := c.Run(seed, opt); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestCheckNamesStable pins the registry: names are the CLI contract
// (-check filters, failure reports), so renames are breaking changes.
func TestCheckNamesStable(t *testing.T) {
	want := []string{
		"residency-conservation", "trace-differential", "stream-batch",
		"batched-independent", "arena-reuse", "parallel-determinism",
		"checkpoint-resume", "fault-partition", "pi-bit-safety",
		"chipplan-monotonicity", "traceview-roundtrip",
		"fingerprint-injectivity", "cache-concurrency", "job-lifecycle",
		"fleet-identity", "static-bounds",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d checks, want %d", len(got), len(want))
	}
	for i, c := range got {
		if c.Name != want[i] {
			t.Errorf("check %d named %q, want %q", i, c.Name, want[i])
		}
		if c.Doc == "" || c.Run == nil {
			t.Errorf("check %q lacks a doc line or a runner", c.Name)
		}
		if strings.ToLower(c.Name) != c.Name || strings.ContainsAny(c.Name, " _") {
			t.Errorf("check name %q is not kebab-case", c.Name)
		}
	}
	if _, err := Find("trace-differential"); err != nil {
		t.Error(err)
	}
	if _, err := Find("no-such-check"); err == nil {
		t.Error("Find accepted an unknown name")
	}
}

// TestGeneratorsAreSeedDeterministic: the whole audit scheme rests on a
// reported seed reproducing the failing configuration exactly.
func TestGeneratorsAreSeedDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		a := newDraw(seed)
		b := newDraw(seed)
		if a != b {
			t.Fatalf("seed %d drew different configurations across runs", seed)
		}
	}
}

type draw struct {
	loadFrac float64
	iqSize   int
	ooo      bool
}

func newDraw(seed uint64) draw {
	s := rng.New(seed, 0xD4A3)
	p := RandomWorkload(s)
	cfg := RandomPipelineConfig(s)
	return draw{loadFrac: p.LoadFrac, iqSize: cfg.IQSize, ooo: cfg.OutOfOrder}
}
