package invariant

import (
	"context"
	"fmt"
	"reflect"

	"softerror/internal/core"
	"softerror/internal/rng"
)

// checkBatchedIndependent pins the tentpole identity of the batched
// evaluation path on randomised inputs: K random configurations evaluated
// over one decode of a random workload's stream (core.RunBatchContext)
// must produce Results equal — reports, deadness, stats, everything — to
// K independent core.RunContext runs. The batch width, each lane's
// geometry and each lane's optional analyses all vary per seed.
func checkBatchedIndependent(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0xBA7C)
	params := RandomWorkload(s)
	k := 2 + s.Intn(4)
	specs := make([]core.BatchSpec, k)
	for i := range specs {
		cfg := RandomPipelineConfig(s)
		// The batched engine is event-horizon only; SingleStep lanes are
		// rejected with a typed error (pinned by the pipeline batch tests).
		cfg.SingleStep = false
		specs[i] = core.BatchSpec{
			Pipeline:    cfg,
			FrontEnd:    s.Bool(0.5),
			StoreBuffer: s.Bool(0.5),
		}
	}

	batched, err := core.RunBatchContext(context.Background(), params, opt.Commits, specs)
	if err != nil {
		return err
	}
	for i, sp := range specs {
		solo, err := core.RunContext(context.Background(), core.Config{
			Workload:    params,
			Pipeline:    sp.Pipeline,
			Commits:     opt.Commits,
			FrontEnd:    sp.FrontEnd,
			StoreBuffer: sp.StoreBuffer,
		})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(solo, batched[i]) {
			return fmt.Errorf("batched lane %d of %d diverges from its independent run "+
				"(solo IPC=%.6f SDC=%.6f cycles=%d; batched IPC=%.6f SDC=%.6f cycles=%d; cfg=%+v)",
				i, k, solo.IPC, solo.Report.SDCAVF(), solo.Cycles,
				batched[i].IPC, batched[i].Report.SDCAVF(), batched[i].Cycles, sp.Pipeline)
		}
	}
	return nil
}
