package core

import (
	"sync"
	"testing"

	"softerror/internal/spec"
)

// TestSuiteSingleFlight proves the memo's single-flight guarantee: many
// goroutines requesting the same (benchmark, policy) cell concurrently
// execute exactly one simulation and all observe the same result.
func TestSuiteSingleFlight(t *testing.T) {
	b, ok := spec.ByName("mcf")
	if !ok {
		t.Fatal("mcf missing from roster")
	}
	s := NewSuite([]spec.Benchmark{b}, 5_000)

	const callers = 16
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			r, err := s.Result(b, PolicyBaseline)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()

	if n := s.Simulations(); n != 1 {
		t.Fatalf("%d concurrent Result calls executed %d simulations, want 1", callers, n)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d received a different *Result than caller 0", i)
		}
	}
}

// TestSuitePrewarmDedupes checks that a Prewarm followed by the aggregation
// drivers never re-simulates a cell: Table1 over three policies on a
// prewarmed suite costs exactly benches x policies simulations.
func TestSuitePrewarmDedupes(t *testing.T) {
	var benches []spec.Benchmark
	for _, name := range []string{"mcf", "ammp"} {
		b, ok := spec.ByName(name)
		if !ok {
			t.Fatalf("%s missing from roster", name)
		}
		benches = append(benches, b)
	}
	s := NewSuite(benches, 5_000)
	s.Workers = 4
	pols := []Policy{PolicyBaseline, PolicySquashL1, PolicySquashL0}
	if err := s.Prewarm(pols...); err != nil {
		t.Fatal(err)
	}
	want := uint64(len(benches) * len(pols))
	if n := s.Simulations(); n != want {
		t.Fatalf("Prewarm ran %d simulations, want %d", n, want)
	}
	if _, err := s.Table1(); err != nil {
		t.Fatal(err)
	}
	if n := s.Simulations(); n != want {
		t.Fatalf("Table1 after Prewarm re-simulated: %d simulations, want %d", n, want)
	}
}

// TestAllPolicies pins the helper's order to policy declaration order.
func TestAllPolicies(t *testing.T) {
	pols := AllPolicies()
	if len(pols) != NumPolicies {
		t.Fatalf("AllPolicies returned %d policies, want %d", len(pols), NumPolicies)
	}
	for i, p := range pols {
		if p != Policy(i) {
			t.Fatalf("AllPolicies[%d] = %v", i, p)
		}
	}
}
