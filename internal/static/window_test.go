package static

import "testing"

// pre builds a prefix-sum array over ws.
func pre(ws ...uint64) []uint64 {
	out := make([]uint64, len(ws)+1)
	for i, w := range ws {
		out[i+1] = out[i] + w
	}
	return out
}

func TestWindowMax(t *testing.T) {
	cases := []struct {
		name  string
		pre   []uint64
		win   int
		tailW uint64
		tail  int
		want  uint64
	}{
		{"empty", pre(), 4, 9, 0, 0},
		{"window covers all", pre(3, 1, 2), 8, 0, 0, 6},
		{"interior max", pre(1, 5, 5, 1), 2, 0, 0, 10},
		{"prefix max", pre(9, 9, 0, 0), 2, 0, 0, 18},
		{"suffix max", pre(0, 0, 9, 9), 2, 0, 0, 18},
		{"overhang beats body", pre(1, 1, 1), 2, 7, 3, 14},
		{"tail-only window", pre(1, 1), 2, 7, 4, 14},
		{"window covers body plus tail", pre(2, 2), 5, 3, 3, 13},
		{"zero tail weight ignores tail", pre(4, 4), 2, 0, 10, 8},
	}
	for _, c := range cases {
		if got := windowMax(c.pre, c.win, c.tailW, c.tail); got != c.want {
			t.Errorf("%s: windowMax = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestWindowMaxBrute cross-checks the windowed scan against a brute-force
// evaluation of every window over the materialised virtual sequence.
func TestWindowMaxBrute(t *testing.T) {
	weights := []uint64{3, 0, 7, 7, 1, 0, 0, 9, 2, 4}
	p := pre(weights...)
	for _, tail := range []int{0, 1, 5} {
		seq := append(append([]uint64{}, weights...), make([]uint64, tail)...)
		for i := len(weights); i < len(seq); i++ {
			seq[i] = 6
		}
		for win := 1; win <= len(seq)+2; win++ {
			var want uint64
			for s := 0; s+win <= len(seq); s++ {
				var sum uint64
				for _, w := range seq[s : s+win] {
					sum += w
				}
				if sum > want {
					want = sum
				}
			}
			if win >= len(seq) { // windowMax returns the full sum then
				want = 0
				for _, w := range seq {
					want += w
				}
			}
			if got := windowMax(p, win, 6, tail); got != want {
				t.Errorf("win=%d tail=%d: windowMax = %d, want %d", win, tail, got, want)
			}
		}
	}
}
