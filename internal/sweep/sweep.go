// Package sweep runs design-space grids over the simulator: the cross
// product of benchmarks, exposure policies, queue sizes and issue
// disciplines, with one long-format row per cell — the shape plotting
// tools want. It powers cmd/sweep and the ablation studies beyond the
// paper's fixed design points.
package sweep

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"softerror/internal/checkpoint"
	"softerror/internal/core"
	"softerror/internal/par"
	"softerror/internal/pipeline"
	"softerror/internal/serate"
	"softerror/internal/spec"
	"softerror/internal/static"
	"softerror/internal/workload"
)

// Grid describes the design space to sweep. Every axis must be non-empty;
// the run covers the full cross product.
type Grid struct {
	Benches    []spec.Benchmark
	Policies   []core.Policy
	IQSizes    []int
	OutOfOrder []bool
	// Commits per cell (default core.DefaultCommits).
	Commits uint64
	// Workers bounds Run's parallelism; <= 0 means the par package default
	// (GOMAXPROCS, or the -j flag of the calling command).
	Workers int
	// OnError selects the failure policy: par.FailFast (default) cancels
	// the grid on the first failed cell; par.Collect finishes every other
	// cell and reports the poisoned ones as par.Errors.
	OnError par.Policy
	// TaskTimeout is the per-cell watchdog deadline (0 = none): a hung
	// simulation is cancelled, retried per Retries, and reported hung.
	// A cell that leads its batch (see maxBatchLanes) simulates up to
	// maxBatchLanes cells inside one attempt; size the deadline for the
	// batch, not the single cell.
	TaskTimeout time.Duration
	// Retries is the number of deterministic re-attempts for failed or
	// hung cells; cells are index-deterministic, so a retried cell is
	// byte-identical to a first-try cell.
	Retries int
	// Arenas supplies the reusable per-worker evaluation state (decoded
	// stream memos, warm hierarchies, collectors, lane slabs): each batch
	// leader checks one arena out for its whole batch and returns it, so
	// state carries across waves, grid chunks and checkpoint resumes.
	// Long-lived callers (seratd) share one pool across jobs and fleet
	// leases; nil falls back to the process-wide default pool. Arena reuse
	// never changes bytes — the arena-reuse seraudit check pins it.
	Arenas *core.ArenaPool
}

// Row is one cell's measurements.
type Row struct {
	Bench      string
	FP         bool
	Policy     core.Policy
	IQSize     int
	OutOfOrder bool

	IPC         float64
	SDCAVF      float64
	DUEAVF      float64
	FalseDUEAVF float64
	MeritSDC    float64 // IPC / SDC AVF, the MITF proxy
	Squashes    uint64
}

// Size returns the number of cells in the grid.
func (g *Grid) Size() int {
	return len(g.Benches) * len(g.Policies) * len(g.IQSizes) * len(g.OutOfOrder)
}

func (g *Grid) validate() error {
	if len(g.Benches) == 0 || len(g.Policies) == 0 ||
		len(g.IQSizes) == 0 || len(g.OutOfOrder) == 0 {
		return fmt.Errorf("sweep: every grid axis needs at least one value")
	}
	for _, n := range g.IQSizes {
		if n < 1 {
			return fmt.Errorf("sweep: IQ size %d invalid", n)
		}
	}
	return nil
}

// cell maps a flat index to its axis values, benchmark-major — the same
// enumeration order the serial nested loops used, so rows[i] lands exactly
// where a serial run would have appended it.
func (g *Grid) cell(i int) (b spec.Benchmark, pol core.Policy, iq int, ooo bool) {
	no := len(g.OutOfOrder)
	ni := len(g.IQSizes)
	np := len(g.Policies)
	ooo = g.OutOfOrder[i%no]
	i /= no
	iq = g.IQSizes[i%ni]
	i /= ni
	pol = g.Policies[i%np]
	i /= np
	b = g.Benches[i]
	return b, pol, iq, ooo
}

// cellConfig materialises cell i's pipeline configuration.
func (g *Grid) cellConfig(i int) (spec.Benchmark, pipeline.Config) {
	b, pol, iq, ooo := g.cell(i)
	cfg := pipeline.DefaultConfig()
	pol.Apply(&cfg)
	cfg.IQSize = iq
	cfg.OutOfOrder = ooo
	return b, cfg
}

// rowFrom folds one finished simulation into cell i's row.
func (g *Grid) rowFrom(i int, res *core.Result) Row {
	b, pol, iq, ooo := g.cell(i)
	return Row{
		Bench:       b.Name,
		FP:          b.FP,
		Policy:      pol,
		IQSize:      iq,
		OutOfOrder:  ooo,
		IPC:         res.IPC,
		SDCAVF:      res.Report.SDCAVF(),
		DUEAVF:      res.Report.DUEAVF(),
		FalseDUEAVF: res.Report.FalseDUEAVF(),
		MeritSDC:    serate.Merit(res.IPC, res.Report.SDCAVF()),
		Squashes:    res.Squashes,
	}
}

// maxBatchLanes bounds how many cells one batched simulation drives. Cells
// sharing a benchmark are spread round-robin over ceil(block/maxBatchLanes)
// groups, so consecutive cell indices — which the worker pool dispatches in
// order — lead different groups instead of queueing behind one.
const maxBatchLanes = 8

// groupRun is the shared state of one batch group: the cells of one
// benchmark that evaluate together over a single decode of its instruction
// stream. The first cell task to arrive becomes the leader and simulates
// every still-pending member in one pipeline.RunBatch pass; the others wait
// on done and collect their rows. Each cell still checkpoints and reports
// progress from its own task, so failure blame, retries, and resume all
// keep per-cell granularity.
type groupRun struct {
	bench   spec.Benchmark
	members []int

	mu   sync.Mutex
	done chan struct{} // non-nil while a leader is simulating
	solo bool          // stream unshareable: every member runs solo
	rows map[int]Row   // batched results awaiting their cell's task
}

// buildGroups assigns every cell to its batch group.
func (g *Grid) buildGroups() map[int]*groupRun {
	all := make([]int, g.Size())
	for i := range all {
		all[i] = i
	}
	return g.buildGroupsFor(all)
}

// buildGroupsFor assigns each of the given cells to a batch group. Cells of
// one benchmark are spread round-robin over ceil(count/maxBatchLanes)
// groups, exactly as buildGroups spreads the full grid — a lease holding a
// subset of a bench's cells still batches them over one decode.
func (g *Grid) buildGroupsFor(indices []int) map[int]*groupRun {
	blk := len(g.Policies) * len(g.IQSizes) * len(g.OutOfOrder)
	byBench := make(map[int][]int)
	for _, i := range indices {
		byBench[i/blk] = append(byBench[i/blk], i)
	}
	index := make(map[int]*groupRun, len(indices))
	for bi, cells := range byBench {
		ng := (len(cells) + maxBatchLanes - 1) / maxBatchLanes
		benchGroups := make([]*groupRun, ng)
		for k := range benchGroups {
			benchGroups[k] = &groupRun{bench: g.Benches[bi], rows: make(map[int]Row)}
		}
		for o, i := range cells {
			gr := benchGroups[o%ng]
			gr.members = append(gr.members, i)
			index[i] = gr
		}
	}
	return index
}

// cellRow produces cell i's row, through the group's shared batch when the
// stream is shareable and solo otherwise. It loops until the row exists:
// a waiter whose leader failed claims leadership itself, so one poisoned
// member costs the group a re-run, not the campaign a deadlock.
func (g *Grid) cellRow(ctx context.Context, i int, gr *groupRun, ck *checkpoint.File[Row], commits uint64) (Row, error) {
	for {
		gr.mu.Lock()
		if r, ok := gr.rows[i]; ok {
			gr.mu.Unlock()
			return r, nil
		}
		if gr.solo {
			gr.mu.Unlock()
			return g.soloCell(ctx, i, commits)
		}
		if gr.done == nil {
			done := make(chan struct{})
			gr.done = done
			gr.mu.Unlock()
			if err := g.leadBatch(ctx, gr, ck, commits, done); err != nil &&
				!errors.Is(err, workload.ErrUnshareable) {
				return Row{}, err
			}
			continue
		}
		done := gr.done
		gr.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			return Row{}, ctx.Err()
		}
	}
}

// leadBatch simulates every member of gr that is neither checkpointed nor
// already computed, in one batched pass, and parks the rows for their
// tasks. The done channel is closed on every exit path — including a
// panicking simulation — so waiters never hang on a dead leader.
func (g *Grid) leadBatch(ctx context.Context, gr *groupRun, ck *checkpoint.File[Row], commits uint64, done chan struct{}) (err error) {
	defer func() {
		gr.mu.Lock()
		gr.done = nil
		gr.mu.Unlock()
		close(done)
	}()
	gr.mu.Lock()
	var pending []int
	for _, j := range gr.members {
		if _, ok := gr.rows[j]; !ok && !ck.Done(j) {
			pending = append(pending, j)
		}
	}
	gr.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	specs := make([]core.BatchSpec, len(pending))
	for k, j := range pending {
		_, cfg := g.cellConfig(j)
		specs[k] = core.BatchSpec{Pipeline: cfg}
	}
	var res []*core.Result
	if pool := g.Arenas; pool != nil {
		a := pool.Get()
		res, err = core.RunBatchArena(ctx, a, gr.bench.Params, commits, specs)
		pool.Put(a)
	} else {
		res, err = core.RunBatchContext(ctx, gr.bench.Params, commits, specs)
	}
	if err != nil {
		if errors.Is(err, workload.ErrUnshareable) {
			gr.mu.Lock()
			gr.solo = true
			gr.mu.Unlock()
		}
		return fmt.Errorf("sweep: %s batch (%d cells): %w",
			gr.bench.Name, len(pending), err)
	}
	gr.mu.Lock()
	for k, j := range pending {
		gr.rows[j] = g.rowFrom(j, res[k])
	}
	gr.mu.Unlock()
	return nil
}

// soloCell is the unbatched fallback: one cell, one independent run —
// exactly the pre-batching sweep path.
func (g *Grid) soloCell(ctx context.Context, i int, commits uint64) (Row, error) {
	b, cfg := g.cellConfig(i)
	res, err := core.RunContext(ctx, core.Config{
		Workload: b.Params,
		Pipeline: cfg,
		Commits:  commits,
	})
	if err != nil {
		_, pol, iq, ooo := g.cell(i)
		return Row{}, fmt.Errorf("sweep: %s/%v/iq%d/ooo=%v: %w",
			b.Name, pol, iq, ooo, err)
	}
	return g.rowFrom(i, res), nil
}

// EstimateCells prices every cell analytically: one decode of each
// benchmark's stream through the static analyzer, then one warm bound
// query per cell — no simulation. The returned slice is indexed like the
// rows (benchmark-major cell order) and holds each cell's estimated
// simulated cycle count (static.Bounds.EstCycles). ok is false when any
// benchmark's stream cannot be decoded position-addressably or the grid
// is invalid; callers then fall back to unpriced behaviour.
func (g *Grid) EstimateCells() (est []uint64, ok bool) {
	if err := g.validate(); err != nil {
		return nil, false
	}
	commits := g.Commits
	if commits == 0 {
		commits = core.DefaultCommits
	}
	if commits > 1<<31 {
		return nil, false // pricing must stay cheap; don't decode absurd bodies
	}
	est = make([]uint64, g.Size())
	blk := len(g.Policies) * len(g.IQSizes) * len(g.OutOfOrder)
	a := static.NewAnalyzer()
	for bi, b := range g.Benches {
		sh, err := workload.NewShared(b.Params)
		if err != nil {
			return nil, false
		}
		a.Load(sh.BodyPrefix(int(commits)+static.BodySlack), commits)
		for o := 0; o < blk; o++ {
			i := bi*blk + o
			_, cfg := g.cellConfig(i)
			est[i] = a.Query(cfg).EstCycles
		}
	}
	return est, true
}

// OrderCheapest returns every cell index ordered by ascending static cost
// estimate (ties in cell order, so the order is deterministic). Running
// cheap cells first shortens time-to-first-result and drains stragglers
// last; it never changes bytes — rows are scattered back to cell order.
// ok is false when the grid cannot be priced.
func (g *Grid) OrderCheapest() (order []int, ok bool) {
	est, ok := g.EstimateCells()
	if !ok {
		return nil, false
	}
	order = make([]int, len(est))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return est[order[a]] < est[order[b]] })
	return order, true
}

// Fingerprint identifies the grid's full parameterisation (every axis that
// changes what a cell index means or measures) for checkpoint validation.
func (g *Grid) Fingerprint() string {
	commits := g.Commits
	if commits == 0 {
		commits = core.DefaultCommits
	}
	parts := []any{"sweep-grid", commits}
	for _, b := range g.Benches {
		parts = append(parts, b.Name)
	}
	for _, p := range g.Policies {
		parts = append(parts, uint8(p))
	}
	for _, n := range g.IQSizes {
		parts = append(parts, n)
	}
	for _, o := range g.OutOfOrder {
		parts = append(parts, o)
	}
	return checkpoint.Fingerprint(parts...)
}

// CellFingerprint content-addresses cell i's full parameterisation —
// benchmark, policy, geometry, commit budget — independent of the grid that
// contains it. Two grids sharing a cell share its fingerprint, which is
// what lets a fleet route the cell to the same worker (and that worker's
// content-addressed cache) no matter which sweep asked for it.
func (g *Grid) CellFingerprint(i int) string {
	b, pol, iq, ooo := g.cell(i)
	commits := g.Commits
	if commits == 0 {
		commits = core.DefaultCommits
	}
	return checkpoint.Fingerprint("sweep-cell", commits, b.Name, uint8(pol), iq, ooo)
}

// Run executes the grid on the worker pool and returns one row per cell, in
// axis order (benchmark-major) regardless of scheduling: each worker writes
// only its own index of a pre-sized slice. progress, if non-nil, is called
// after each completed cell with a strictly increasing done count.
func (g *Grid) Run(progress func(done, total int)) ([]Row, error) {
	rows, err := g.RunContext(context.Background(), nil, progress)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunContext is Run with cancellation, an optional checkpoint, and the
// grid's resilience knobs (OnError, TaskTimeout, Retries) applied.
//
// Cells sharing a benchmark evaluate in batches of up to maxBatchLanes
// configurations over one decode of the instruction stream
// (core.RunBatchContext); batching changes only wall-clock, never bytes —
// every cell's row is identical to an independent run, and workloads whose
// stream cannot be shared fall back to per-cell simulation.
//
// Cells recorded in ck are restored, not re-simulated, and newly completed
// cells are written back, so an interrupted grid resumes where it stopped;
// determinism by cell index makes the resumed artefact byte-identical to an
// uninterrupted run. On failure RunContext flushes the checkpoint and
// returns the partial rows alongside the error — under par.Collect the
// error is a par.Errors listing exactly the poisoned cells, every other row
// being valid.
func (g *Grid) RunContext(ctx context.Context, ck *checkpoint.File[Row], progress func(done, total int)) ([]Row, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	commits := g.Commits
	if commits == 0 {
		commits = core.DefaultCommits
	}
	total := g.Size()
	if ck != nil && ck.Total() != total {
		return nil, fmt.Errorf("sweep: checkpoint has %d cells, grid has %d", ck.Total(), total)
	}
	rows := make([]Row, total)
	done := 0
	for i := 0; i < total; i++ {
		if v, ok := ck.Get(i); ok {
			rows[i] = v
			done++
		}
	}
	var mu sync.Mutex
	if progress != nil && done > 0 {
		progress(done, total)
	}
	opts := par.Options{
		Workers: g.Workers,
		Policy:  g.OnError,
		Timeout: g.TaskTimeout,
		Retries: g.Retries,
	}
	groups := g.buildGroups()
	err := par.Run(ctx, total, opts,
		func(ctx context.Context, i int) error {
			if ck.Done(i) {
				return nil
			}
			row, err := g.cellRow(ctx, i, groups[i], ck, commits)
			if err != nil {
				return err
			}
			rows[i] = row
			if err := ck.Put(i, row); err != nil {
				return err
			}
			if progress != nil {
				// Completion order is scheduling-dependent, but the done
				// count is advanced under the lock, so callers observe a
				// monotonic 1..total sequence.
				mu.Lock()
				done++
				progress(done, total)
				mu.Unlock()
			}
			return nil
		})
	// Flush cells completed since the last autosave even when stopping
	// early: interruption must lose nothing that already ran.
	if serr := ck.Save(); err == nil {
		err = serr
	}
	if err != nil {
		return rows, err
	}
	return rows, nil
}

// RunIndices executes exactly the given cells of the grid and returns their
// rows index-parallel to indices (out[k] is cell indices[k]). It is the
// lease-execution primitive of fleet mode: a worker handed an arbitrary
// subset of a grid produces rows identical to the ones a full local run
// computes for those cells — batching within the subset included. Cells
// recorded in ck are restored rather than re-simulated and newly completed
// cells are written back; ck may be nil. progress, when non-nil, is called
// with a monotonic done count over len(indices).
func (g *Grid) RunIndices(ctx context.Context, indices []int, ck *checkpoint.File[Row], progress func(done, total int)) ([]Row, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	commits := g.Commits
	if commits == 0 {
		commits = core.DefaultCommits
	}
	size := g.Size()
	for _, i := range indices {
		if i < 0 || i >= size {
			return nil, fmt.Errorf("sweep: cell index %d outside grid of %d cells", i, size)
		}
	}
	out := make([]Row, len(indices))
	done := 0
	var mu sync.Mutex
	groups := g.buildGroupsFor(indices)
	opts := par.Options{
		Workers: g.Workers,
		Policy:  g.OnError,
		Timeout: g.TaskTimeout,
		Retries: g.Retries,
	}
	err := par.Run(ctx, len(indices), opts,
		func(ctx context.Context, k int) error {
			i := indices[k]
			if v, ok := ck.Get(i); ok {
				out[k] = v
			} else {
				row, err := g.cellRow(ctx, i, groups[i], ck, commits)
				if err != nil {
					return err
				}
				out[k] = row
				if err := ck.Put(i, row); err != nil {
					return err
				}
			}
			if progress != nil {
				mu.Lock()
				done++
				progress(done, len(indices))
				mu.Unlock()
			}
			return nil
		})
	if serr := ck.Save(); err == nil {
		err = serr
	}
	if err != nil {
		return out, err
	}
	return out, nil
}

// csvHeader is the long-format column set.
var csvHeader = []string{
	"bench", "suite", "policy", "iq_size", "out_of_order",
	"ipc", "sdc_avf", "due_avf", "false_due_avf", "merit_sdc", "squashes",
}

// CSVWriter streams rows to an io.Writer in the long format, one row at a
// time, writing the header before the first row. Producers that learn rows
// incrementally — the server's job CSV endpoint, a resumed campaign —
// share it with the batch writers below, so every CSV in the system is
// byte-identical regardless of which path emitted it. Not safe for
// concurrent use.
type CSVWriter struct {
	cw       *csv.Writer
	headered bool
}

// NewCSVWriter wraps w; nothing is written until the first WriteRow or
// Flush.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{cw: csv.NewWriter(w)}
}

// WriteRow appends one row, emitting the header first when needed.
func (w *CSVWriter) WriteRow(r Row) error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	suite := "int"
	if r.FP {
		suite = "fp"
	}
	return w.cw.Write([]string{
		r.Bench, suite, r.Policy.String(),
		strconv.Itoa(r.IQSize), strconv.FormatBool(r.OutOfOrder),
		fmt.Sprintf("%.4f", r.IPC),
		fmt.Sprintf("%.6f", r.SDCAVF),
		fmt.Sprintf("%.6f", r.DUEAVF),
		fmt.Sprintf("%.6f", r.FalseDUEAVF),
		fmt.Sprintf("%.4f", r.MeritSDC),
		strconv.FormatUint(r.Squashes, 10),
	})
}

func (w *CSVWriter) writeHeader() error {
	if w.headered {
		return nil
	}
	w.headered = true
	return w.cw.Write(csvHeader)
}

// Flush drains buffered rows to the underlying writer and reports any
// write error. An empty grid still yields a well-formed CSV: Flush writes
// the header even when no row was.
func (w *CSVWriter) Flush() error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	w.cw.Flush()
	return w.cw.Error()
}

// WriteCSV emits the rows in long format with a header.
func WriteCSV(w io.Writer, rows []Row) error {
	return WriteCSVSkipping(w, rows, nil)
}

// WriteCSVSkipping emits the rows in long format, omitting the flagged
// indices — the poisoned cells of a collect-and-continue run, whose zero
// rows would otherwise masquerade as measurements.
func WriteCSVSkipping(w io.Writer, rows []Row, skip map[int]bool) error {
	sw := NewCSVWriter(w)
	for i, r := range rows {
		if skip[i] {
			continue
		}
		if err := sw.WriteRow(r); err != nil {
			return err
		}
	}
	return sw.Flush()
}
