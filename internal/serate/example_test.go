package serate_test

import (
	"fmt"

	"softerror/internal/serate"
)

// The paper's §3.2 worked example: a 2 GHz processor with IPC 2 and a
// 10-year DUE MTTF commits about 1.3×10^18 instructions between errors.
func ExampleMITF() {
	mttfHours := 10 * 365.0 * 24
	mitf := serate.MITF(2, 2e9, mttfHours)
	fmt.Printf("%.1e instructions\n", mitf)
	// Output:
	// 1.3e+18 instructions
}

// Composing a processor's SDC and DUE rates over its devices (§2): only
// unprotected devices contribute SDC, only detection-protected devices
// contribute DUE.
func ExampleRates() {
	sdc, due := serate.Rates([]serate.Device{
		{Name: "iq-parity", RawFIT: 100, DUEAVF: 0.62},
		{Name: "pc-unprotected", RawFIT: 10, SDCAVF: 1.0},
		{Name: "bpred", RawFIT: 50}, // AVF 0: never matters
	})
	fmt.Printf("SDC %.0f FIT, DUE %.0f FIT\n", float64(sdc), float64(due))
	// Output:
	// SDC 10 FIT, DUE 62 FIT
}

// One year of MTBF is 114155 FIT (§2).
func ExampleFIT_MTTFYears() {
	fmt.Printf("%.2f years\n", serate.FIT(114155).MTTFYears())
	// Output:
	// 1.00 years
}
