// Pibitcoverage: the false-DUE tracking stack of §4, demonstrated two ways.
//
// First, the PET buffer as a concrete data structure: we push a committed
// stream through it and watch it prove first-level dead instructions
// harmless at eviction time. Second, a fault-injection campaign on a full
// simulation showing how each cumulative π-bit deployment converts false
// DUEs into suppressions without ever losing a true error.
//
//	go run ./examples/pibitcoverage
package main

import (
	"fmt"
	"log"
	"os"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/core"
	"softerror/internal/fault"
	"softerror/internal/isa"
	"softerror/internal/pibit"
	"softerror/internal/report"
	"softerror/internal/spec"
)

func main() {
	petDemo()
	campaign()
}

// petDemo exercises the PET buffer directly: a faulty instruction whose
// destination is overwritten without a read is proven dead at eviction.
func petDemo() {
	fmt.Println("-- PET buffer demo --")
	pet := pibit.NewPETBuffer(4)

	faulty := isa.Inst{Seq: 100, Class: isa.ClassALU,
		Dest: isa.IntReg(7), Src1: isa.IntReg(1), Src2: isa.RegNone,
		PredGuard: isa.RegNone}
	overwriter := isa.Inst{Seq: 101, Class: isa.ClassALU,
		Dest: isa.IntReg(7), Src1: isa.IntReg(2), Src2: isa.RegNone,
		PredGuard: isa.RegNone}
	nop := isa.Inst{Seq: 102, Class: isa.ClassNop,
		Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		PredGuard: isa.RegNone}

	pet.Push(faulty, true) // parity flagged this one: π set
	pet.Push(overwriter, false)
	pet.Push(nop, false)
	pet.Push(nop, false)
	signal, seq, _ := pet.Push(nop, false) // evicts the faulty entry
	fmt.Printf("evicting seq %d with pi set: signal=%v (overwrite-without-read proves it FDD)\n",
		seq, signal)
	fmt.Printf("buffer counters: suppressed=%d signalled=%d\n\n",
		pet.Suppressed(), pet.Signalled())
}

// campaign injects faults into a real simulation under each tracking level.
func campaign() {
	fmt.Println("-- fault-injection campaign (gzip-graphic, parity-protected IQ) --")
	bench, ok := spec.ByName("gzip-graphic")
	if !ok {
		log.Fatal("benchmark missing")
	}
	res, err := core.Run(core.Config{
		Workload:  bench.Params,
		Commits:   60_000,
		KeepTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	inj := fault.NewInjector(res.Trace, res.Report.Dead)

	t := report.New("outcomes of 40,000 strikes per configuration",
		"tracking level", "false DUE", "true DUE", "suppressed", "latent", "missed")
	levels := append([]ace.TrackLevel{ace.TrackNever}, core.TrackingLevels...)
	for _, lvl := range levels {
		r, err := inj.Run(fault.Config{
			Protection: cache.ProtParity,
			Level:      lvl,
			Strikes:    40_000,
			Seed:       7,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(lvl.String(),
			report.Int(r.Counts[fault.OutcomeFalseDUE]),
			report.Int(r.Counts[fault.OutcomeTrueDUE]),
			report.Int(r.Counts[fault.OutcomeSuppressed]),
			report.Int(r.Counts[fault.OutcomeLatent]),
			report.Int(r.Counts[fault.OutcomeMissedError]))
	}
	t.Fprint(os.Stdout)
	fmt.Println("\nfalse DUEs fall to zero as the stack deploys; the 'missed' column")
	fmt.Println("stays zero: no mechanism ever suppresses an outcome-changing error.")
}
