package sweep

import (
	"strings"
	"testing"

	"softerror/internal/core"
	"softerror/internal/spec"
)

func smallGrid(t *testing.T) *Grid {
	t.Helper()
	var benches []spec.Benchmark
	for _, name := range []string{"gzip-graphic", "ammp"} {
		b, ok := spec.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		benches = append(benches, b)
	}
	return &Grid{
		Benches:    benches,
		Policies:   []core.Policy{core.PolicyBaseline, core.PolicySquashL1},
		IQSizes:    []int{32, 64},
		OutOfOrder: []bool{false},
		Commits:    6000,
	}
}

func TestGridSizeAndRun(t *testing.T) {
	g := smallGrid(t)
	if g.Size() != 8 {
		t.Fatalf("Size = %d, want 8", g.Size())
	}
	var calls int
	rows, err := g.Run(func(done, total int) {
		calls++
		if total != 8 || done != calls {
			t.Fatalf("progress(%d, %d) at call %d", done, total, calls)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.IPC <= 0 || r.SDCAVF <= 0 || r.DUEAVF <= r.SDCAVF {
			t.Fatalf("implausible row: %+v", r)
		}
		if r.Policy == core.PolicySquashL1 && r.Squashes == 0 {
			t.Fatalf("squash cell without squashes: %+v", r)
		}
	}
}

func TestGridIQSizeTrend(t *testing.T) {
	// Within a benchmark, a larger queue pools more state: SDC AVF should
	// not collapse as size grows (typically it rises).
	g := smallGrid(t)
	rows, err := g.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Row{}
	for _, r := range rows {
		if r.Policy == core.PolicyBaseline {
			byKey[r.Bench+string(rune(r.IQSize))] = r
		}
	}
	small := byKey["gzip-graphic"+string(rune(32))]
	large := byKey["gzip-graphic"+string(rune(64))]
	if large.SDCAVF < 0.5*small.SDCAVF {
		t.Fatalf("doubling the IQ collapsed the AVF: %.3f -> %.3f", small.SDCAVF, large.SDCAVF)
	}
}

func TestGridValidation(t *testing.T) {
	g := smallGrid(t)
	g.Policies = nil
	if _, err := g.Run(nil); err == nil {
		t.Fatal("empty axis accepted")
	}
	g = smallGrid(t)
	g.IQSizes = []int{0}
	if _, err := g.Run(nil); err == nil {
		t.Fatal("zero IQ size accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []Row{{
		Bench: "mcf", FP: false, Policy: core.PolicySquashL1,
		IQSize: 64, OutOfOrder: true,
		IPC: 1.5, SDCAVF: 0.25, DUEAVF: 0.5, FalseDUEAVF: 0.25,
		MeritSDC: 6, Squashes: 42,
	}}
	var b strings.Builder
	if err := WriteCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "bench,suite,policy,iq_size,out_of_order") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, want := range []string{"mcf", "int", "64", "true", "1.5000", "0.250000", "42"} {
		if !strings.Contains(lines[1], want) {
			t.Fatalf("row %q missing %q", lines[1], want)
		}
	}
}
