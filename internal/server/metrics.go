package server

import (
	"expvar"
	"time"

	"softerror/internal/core"
)

// metrics are the service's expvar-backed counters. The map is owned by
// the Server instead of being published through expvar's global registry,
// so tests (and embedders) can run any number of servers in one process —
// expvar.Publish panics on duplicate names.
type metrics struct {
	vars *expvar.Map

	requests        *expvar.Int // every HTTP request, any route or status
	rejected        *expvar.Int // 429s and 503s from admission control / drain
	rejectedCost    *expvar.Int // 422s from the static-cost admission budget
	cacheHits       *expvar.Int // evals served from the result cache
	cacheMisses     *expvar.Int // evals that had to simulate
	evalsInFlight   *expvar.Int // evals currently computing
	jobsInFlight    *expvar.Int // sweep jobs currently holding a worker slot
	jobsQueued      *expvar.Int // accepted sweep jobs waiting for a slot
	jobsDone        *expvar.Int // terminal: every cell completed
	jobsFailed      *expvar.Int // terminal: grid error
	jobsInterrupted *expvar.Int // terminal: drained mid-flight
	leasesServed    *expvar.Int // fleet leases executed to completion
	boundQueries    *expvar.Int // /v1/bound requests received
	boundsServed    *expvar.Int // bounds answered (cache hit or static analysis)
}

// newMetrics wires the counter set plus derived gauges: simulated cycle
// totals from the process-wide core counter and a cumulative Mcycles/s
// throughput gauge since start.
func newMetrics(start time.Time, cache *Cache) *metrics {
	m := &metrics{vars: new(expvar.Map).Init()}
	counter := func(name string) *expvar.Int {
		v := new(expvar.Int)
		m.vars.Set(name, v)
		return v
	}
	m.requests = counter("requests")
	m.rejected = counter("rejected")
	m.rejectedCost = counter("sweeps_rejected_cost")
	m.cacheHits = counter("cache_hits")
	m.cacheMisses = counter("cache_misses")
	m.evalsInFlight = counter("evals_in_flight")
	m.jobsInFlight = counter("jobs_in_flight")
	m.jobsQueued = counter("jobs_queued")
	m.jobsDone = counter("jobs_done")
	m.jobsFailed = counter("jobs_failed")
	m.jobsInterrupted = counter("jobs_interrupted")
	m.leasesServed = counter("leases_served")
	m.boundQueries = counter("bound_queries")
	m.boundsServed = counter("bounds_served")
	m.vars.Set("cache_entries", expvar.Func(func() any { return cache.Len() }))
	m.vars.Set("cache_bytes", expvar.Func(func() any { return cache.Bytes() }))
	m.vars.Set("mcycles_simulated", expvar.Func(func() any {
		return float64(core.CyclesSimulated()) / 1e6
	}))
	m.vars.Set("mcycles_per_sec", expvar.Func(func() any {
		secs := time.Since(start).Seconds()
		if secs <= 0 {
			return 0.0
		}
		return float64(core.CyclesSimulated()) / 1e6 / secs
	}))
	return m
}
