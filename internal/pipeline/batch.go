package pipeline

import (
	"context"
	"errors"
	"fmt"

	"softerror/internal/cache"
	"softerror/internal/isa"
)

// This file is the batched evaluation path: RunBatch drives K configuration
// variants through ONE decode of the generated instruction stream. The solo
// engine (pipeline.go) pulls instructions from a Source and stores full
// isa.Inst copies in its queues; each lane here instead stores a compact
// (BatchRef, Seq) pair into struct-of-arrays ring buffers and reads
// instruction content through the shared BatchSource memo, so K variants
// share one generation pass and one L2-resident body window. The engines
// are kept behaviourally identical phase by phase — the batched-independent
// seraudit check pins byte-identical reports against K solo runs.

// BatchSource is a decoded-once instruction stream shared by every lane of
// a batch: Body(n) is the n-th correct-path instruction of the
// un-interleaved stream (Seq n, pure correct-path PC), Wrong(j) the content
// of the j-th wrong-path draw. workload.Shared implements it. Returned
// pointers are valid until the next call extends the memo.
type BatchSource interface {
	Body(n int) *isa.Inst
	Wrong(j int) *isa.Inst
}

// ErrBatchSingleStep rejects SingleStep configurations from batches: the
// batch engine is the fast path, and mixing single-stepped and
// fast-forwarded variants in one pass would tie every lane to the slowest
// discipline. Run SingleStep configs through RunStream.
var ErrBatchSingleStep = errors.New("pipeline: SingleStep configurations cannot join a batch")

// BatchRef locates one fetched instruction within a shared stream: the
// correct-path body cursor n, plus a flag marking wrong-path fetches. The
// fetch-order sequence number is carried alongside, and together they
// reconstruct the exact instruction the solo engine would have fetched:
// a lane that has drawn w wrong-path instructions before body position n
// holds Seq n+w, so w (or the wrong-path ordinal j) is Seq minus the body
// cursor.
type BatchRef uint32

const wrongRef BatchRef = 1 << 31

func bodyRef(n int) BatchRef   { return BatchRef(n) }
func wrongAt(n int) BatchRef   { return BatchRef(n) | wrongRef }
func (r BatchRef) Wrong() bool { return r&wrongRef != 0 }
func (r BatchRef) Body() int   { return int(r &^ wrongRef) }

// Inst reconstructs the instruction a solo pipeline would have fetched at
// this reference with the given sequence number: the shared-stream content
// relabeled into the lane's coordinate system (Seq, PC shifted by 4 per
// preceding wrong-path fetch, wrong-path call depth from the preceding
// body instruction). FetchBubble is zero — the bubble is charged at fetch
// and never visible in a recorded event.
func (r BatchRef) Inst(src BatchSource, seq uint64) isa.Inst {
	n := r.Body()
	if r.Wrong() {
		j := int(seq) - n
		in := *src.Wrong(j)
		in.Seq = seq
		in.PC = src.Body(n).PC + 4*uint64(j)
		if n > 0 {
			in.CallDepth = src.Body(n - 1).CallDepth
		}
		return in
	}
	in := *src.Body(n)
	in.Seq = seq
	in.PC += 4 * (seq - uint64(n))
	in.FetchBubble = 0
	return in
}

// BatchSink receives one lane's events in compact form — the (ref, seq)
// pair instead of a materialised isa.Inst — so an index-aware collector
// (ace.BatchCollector) can skip reconstruction entirely. Cycle fields
// carry exactly what the corresponding Sink callback would: commits report
// (enq, issue); residencies the full interval; front-end intervals end at
// `until` with delivered marking decode reads; store-buffer intervals
// drain (or clip) at evict.
type BatchSink interface {
	BatchCommit(ref BatchRef, seq, enq, issue uint64)
	BatchResidency(ref BatchRef, seq, enq, issue, evict uint64, issued, squashed bool)
	BatchFrontEnd(ref BatchRef, seq, fetched, until uint64, delivered bool)
	BatchStoreBuffer(ref BatchRef, seq, enq, evict uint64)
}

// sinkAdapter lifts a plain Sink to a BatchSink by reconstructing each
// event's instruction from the shared stream. os caches the sink's OOOSink
// side (nil when the sink doesn't implement it), so out-of-order events
// forward without a per-event type assertion.
type sinkAdapter struct {
	src BatchSource
	s   Sink
	os  OOOSink
}

func (a *sinkAdapter) BatchCommit(ref BatchRef, seq, enq, issue uint64) {
	a.s.OnCommit(ref.Inst(a.src, seq), enq, issue)
}

func (a *sinkAdapter) BatchResidency(ref BatchRef, seq, enq, issue, evict uint64, issued, squashed bool) {
	a.s.OnResidency(Residency{
		Inst: ref.Inst(a.src, seq), Enq: enq, Evict: evict,
		Issued: issued, Issue: issue, Squashed: squashed,
	})
}

func (a *sinkAdapter) BatchFrontEnd(ref BatchRef, seq, fetched, until uint64, delivered bool) {
	a.s.OnFrontEnd(Residency{
		Inst: ref.Inst(a.src, seq), Enq: fetched, Evict: until,
		Issued: delivered, Issue: until, Squashed: !delivered,
	})
}

func (a *sinkAdapter) BatchStoreBuffer(ref BatchRef, seq, enq, evict uint64) {
	a.s.OnStoreBuffer(Residency{
		Inst: ref.Inst(a.src, seq), Enq: enq, Evict: evict,
		Issued: true, Issue: evict,
	})
}

func (a *sinkAdapter) BatchROB(ref BatchRef, seq, enq, evict uint64, read bool) {
	if a.os == nil {
		return
	}
	r := Residency{Inst: ref.Inst(a.src, seq), Enq: enq, Evict: evict, Squashed: !read}
	if read {
		r.Issued = true
		r.Issue = evict
	}
	a.os.OnROB(r)
}

func (a *sinkAdapter) BatchLSQ(ref BatchRef, seq, enq, evict uint64, read bool) {
	if a.os == nil {
		return
	}
	r := Residency{Inst: ref.Inst(a.src, seq), Enq: enq, Evict: evict, Squashed: !read}
	if read {
		r.Issued = true
		r.Issue = evict
	}
	a.os.OnLSQ(r)
}

// Compact queue entries: ~3× smaller than their solo counterparts, which
// carry a full isa.Inst each. Content is read back through the BatchSource.
type biqEntry struct {
	enq     uint64
	issue   uint64
	evictAt uint64
	seq     uint64
	in      *isa.Inst // correct-path content; nil for wrong-path entries
	ref     BatchRef
	issued  bool
}

type bfeEntry struct {
	fetched uint64
	readyAt uint64
	seq     uint64
	in      *isa.Inst // correct-path content; nil for wrong-path entries
	ref     BatchRef
}

type bsbEntry struct {
	addr    uint64
	enq     uint64
	drainAt uint64
	seq     uint64
	ref     BatchRef
}

// bodySlicer is the optional bulk accessor of a BatchSource:
// workload.Shared implements it, letting lanes index the memoised body
// slice directly instead of calling Body per lookup.
type bodySlicer interface {
	BodyPrefix(m int) []isa.Inst
}

// bodyAhead is how far past a missing index a lane's snapshot extends:
// large enough to amortise the interface call, small enough that the tail
// over-generation after the last commit stays negligible.
const bodyAhead = 512

// inst returns body instruction n, through the snapshot on the hot path.
func (ln *batchLane) inst(n int) *isa.Inst {
	if n < len(ln.body) {
		return &ln.body[n]
	}
	return ln.instSlow(n)
}

func (ln *batchLane) instSlow(n int) *isa.Inst {
	if ln.slicer == nil {
		return ln.src.Body(n)
	}
	ln.body = ln.slicer.BodyPrefix(n + bodyAhead)
	return &ln.body[n]
}

// streamRef is a queued refetch victim (or the parked pending fetch).
type streamRef struct {
	seq uint64
	ref BatchRef
}

// ring is a fixed-capacity FIFO over a preallocated buffer. The solo
// engine compacts its queues by copying the tail down on every head
// removal; lanes instead advance a head index, so steady-state dequeues
// are O(1) and the backing slab never moves.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) at(i int) *T {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return &r.buf[j]
}

func (r *ring[T]) push(v T) {
	j := r.head + r.n
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	r.buf[j] = v
	r.n++
}

func (r *ring[T]) pop(k int) {
	r.head += k
	if r.head >= len(r.buf) {
		r.head -= len(r.buf)
	}
	r.n -= k
}

// batchLane is one configuration variant's complete pipeline state. It is
// the solo Pipeline translated to compact entries: every phase below
// mirrors its pipeline.go counterpart exactly, so a lane's event stream
// and statistics are byte-identical to a solo run of the same config.
type batchLane struct {
	cfg   Config
	src   BatchSource
	mem   *cache.Hierarchy
	sink  BatchSink
	feCap int

	// body is a snapshot of the source's materialised body prefix, so hot
	// lookups index a slice instead of calling through the interface; it is
	// refreshed from slicer (when the source supports it) as the lane's
	// cursors outrun it. Entries are immutable once generated, so an old
	// snapshot never goes stale, only short.
	body   []isa.Inst
	slicer bodySlicer

	cycle    uint64
	regReady [isa.NumRegs]uint64

	iq       ring[biqEntry]
	fe       ring[bfeEntry]
	sb       ring[bsbEntry]
	issuePtr int

	refetch     []streamRef
	refetchHead int

	pendingRef  streamRef
	havePending bool

	wrongMode   bool
	wrongSrcSeq uint64
	resolveAt   uint64
	squashQ     []squashEvent
	throttleQ   []throttleEvent
	stallUntil  uint64

	nextBody   int // correct-path cursor: next body index to fetch fresh
	wrongDrawn int // wrong-path draws so far

	// Out-of-order family state (see batchooo.go); empty when !ooo.
	ooo     bool
	rob     ring[brobEntry]
	lsq     ring[blsqEntry]
	tage    tageState
	oooSink BatchOOOSink

	stats           Stats
	lastCommits     uint64
	lastCommitCycle uint64
}

// batchChunk is the lockstep pass length in commits: every live lane
// advances to the chunk target before any lane starts the next chunk, so
// the whole batch walks one shared body window that stays cache-resident
// across lanes.
const batchChunk = 4096

// RunBatch drives K configuration variants through one decode of the
// shared instruction stream, delivering each lane's events to the
// corresponding sink (nil to discard; a sink that implements BatchSink
// receives compact events directly). mems supplies each lane's private
// data-cache hierarchy — lanes interleave loads and store drains
// differently, so the hierarchy cannot be shared. Returns one Stats per
// lane, byte-identical to K independent RunStream runs.
func RunBatch(ctx context.Context, commits uint64, src BatchSource, cfgs []Config, mems []*cache.Hierarchy, sinks []Sink) ([]Stats, error) {
	bs := make([]BatchSink, len(cfgs))
	for i, s := range sinks {
		switch t := s.(type) {
		case nil:
		case BatchSink:
			bs[i] = t
		default:
			ad := &sinkAdapter{src: src, s: s}
			ad.os, _ = s.(OOOSink)
			bs[i] = ad
		}
	}
	return RunBatchStream(ctx, commits, src, cfgs, mems, bs)
}

// BatchArena owns the batched engine's reusable allocations: the lane
// structs and the shared queue slabs. A zero BatchArena is ready to use;
// passing the same arena to successive runs reuses its storage, so a sweep
// worker's steady state allocates no lane state at all. An arena serves
// one run at a time (not concurrency-safe), and reuse is invisible in the
// results: every lane field is rebuilt from scratch each run — the
// arena-reuse seraudit check pins fresh ≡ reused byte-identity.
type BatchArena struct {
	lanes    []*batchLane
	iqSlab   []biqEntry
	feSlab   []bfeEntry
	sbSlab   []bsbEntry
	robSlab  []brobEntry
	lsqSlab  []blsqEntry
	tageSlab []uint64
}

// slab returns buf resized to n entries, reusing its backing array when
// the capacity suffices; reused entries are cleared so an old run's
// content pointers don't pin evicted stream memos.
func slab[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// RunBatchStream is RunBatch for compact sinks — the zero-reconstruction
// hot path ace.BatchCollector rides.
func RunBatchStream(ctx context.Context, commits uint64, src BatchSource, cfgs []Config, mems []*cache.Hierarchy, sinks []BatchSink) ([]Stats, error) {
	return RunBatchStreamArena(ctx, commits, src, cfgs, mems, sinks, nil)
}

// RunBatchStreamArena is RunBatchStream drawing lane state from a; nil
// runs with one-shot allocations exactly as before.
func RunBatchStreamArena(ctx context.Context, commits uint64, src BatchSource, cfgs []Config, mems []*cache.Hierarchy, sinks []BatchSink, a *BatchArena) ([]Stats, error) {
	if src == nil {
		return nil, fmt.Errorf("pipeline: nil batch source")
	}
	if len(cfgs) == 0 || len(mems) != len(cfgs) || len(sinks) != len(cfgs) {
		return nil, fmt.Errorf("pipeline: batch needs matching cfgs/mems/sinks, got %d/%d/%d",
			len(cfgs), len(mems), len(sinks))
	}
	for i := range cfgs {
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("pipeline: batch lane %d: %w", i, err)
		}
		if cfgs[i].SingleStep {
			return nil, fmt.Errorf("pipeline: batch lane %d: %w", i, ErrBatchSingleStep)
		}
		if mems[i] == nil {
			return nil, fmt.Errorf("pipeline: batch lane %d: nil memory", i)
		}
	}
	lanes := newLanes(src, cfgs, mems, sinks, a)

	for target := uint64(0); target < commits; {
		target += batchChunk
		if target > commits {
			target = commits
		}
		for _, ln := range lanes {
			if err := ln.run(ctx, target); err != nil {
				return nil, err
			}
		}
	}

	out := make([]Stats, len(lanes))
	for i, ln := range lanes {
		ln.flush()
		ln.stats.Cycles = ln.cycle
		out[i] = ln.stats
	}
	// Shed per-run references so a pooled arena holds only its own slabs:
	// sources, hierarchies and sinks belong to the caller, and keeping them
	// reachable would pin a whole workload's memos past its eviction.
	for _, ln := range lanes {
		ln.src, ln.slicer, ln.mem, ln.sink, ln.body = nil, nil, nil, nil, nil
		ln.oooSink = nil
	}
	return out, nil
}

// newLanes builds every lane over shared backing slabs — one allocation
// per queue kind for the whole batch instead of three per lane — drawing
// the lane structs, slabs and per-lane queue buffers from the arena when
// one is supplied. Reused lanes are rebuilt field by field (a whole-struct
// overwrite), so a recycled lane starts from exactly the state a fresh
// allocation would.
func newLanes(src BatchSource, cfgs []Config, mems []*cache.Hierarchy, sinks []BatchSink, a *BatchArena) []*batchLane {
	if a == nil {
		a = &BatchArena{}
	}
	var iqTotal, feTotal, sbTotal int
	var robTotal, lsqTotal, tageTotal int
	for i := range cfgs {
		iqTotal += cfgs[i].IQSize
		feTotal += cfgs[i].FrontEndCap()
		sbTotal += cfgs[i].StoreBufferSize
		if cfgs[i].OutOfOrder {
			n := cfgs[i].Normalized()
			robTotal += n.ROBSize
			lsqTotal += n.LSQSize
			tageTotal += n.TAGETables << n.TAGETableBits
		}
	}
	a.iqSlab = slab(a.iqSlab, iqTotal)
	a.feSlab = slab(a.feSlab, feTotal)
	a.sbSlab = slab(a.sbSlab, sbTotal)
	a.robSlab = slab(a.robSlab, robTotal)
	a.lsqSlab = slab(a.lsqSlab, lsqTotal)
	a.tageSlab = slab(a.tageSlab, tageTotal)

	for len(a.lanes) < len(cfgs) {
		a.lanes = append(a.lanes, &batchLane{})
	}
	slicer, _ := src.(bodySlicer)
	lanes := a.lanes[:len(cfgs)]
	iqOff, feOff, sbOff := 0, 0, 0
	robOff, lsqOff, tageOff := 0, 0, 0
	for i := range cfgs {
		cfg := cfgs[i].Normalized()
		feCap := cfg.FrontEndCap()
		ln := lanes[i]
		refetch := slab(ln.refetch, cfg.IQSize+feCap)[:0]
		squashQ := ln.squashQ[:0]
		if cap(squashQ) < 8 {
			squashQ = make([]squashEvent, 0, 8)
		}
		throttleQ := ln.throttleQ[:0]
		if cap(throttleQ) < 8 {
			throttleQ = make([]throttleEvent, 0, 8)
		}
		*ln = batchLane{
			cfg:       cfg,
			src:       src,
			slicer:    slicer,
			mem:       mems[i],
			sink:      sinks[i],
			feCap:     feCap,
			refetch:   refetch,
			squashQ:   squashQ,
			throttleQ: throttleQ,
		}
		ln.iq.buf = a.iqSlab[iqOff : iqOff+cfg.IQSize]
		ln.fe.buf = a.feSlab[feOff : feOff+feCap]
		ln.sb.buf = a.sbSlab[sbOff : sbOff+cfg.StoreBufferSize]
		iqOff += cfg.IQSize
		feOff += feCap
		sbOff += cfg.StoreBufferSize
		if cfg.OutOfOrder {
			ln.ooo = true
			ln.rob.buf = a.robSlab[robOff : robOff+cfg.ROBSize]
			ln.lsq.buf = a.lsqSlab[lsqOff : lsqOff+cfg.LSQSize]
			robOff += cfg.ROBSize
			lsqOff += cfg.LSQSize
			tn := cfg.TAGETables << cfg.TAGETableBits
			ln.tage.init(&cfg, a.tageSlab[tageOff:tageOff+tn])
			tageOff += tn
			if s, ok := sinks[i].(BatchOOOSink); ok {
				ln.oooSink = s
			}
		}
	}
	return lanes
}

// run advances the lane until its commit count reaches target, with the
// solo engine's loop structure: step, watchdog, fast-forward to the lane's
// own next event horizon. Stopping at an intermediate chunk target skips
// at most one fast-forward, and the first step of the next chunk is then a
// provable no-op cycle, so chunking never changes results.
func (ln *batchLane) run(ctx context.Context, target uint64) error {
	for iter := uint64(0); ln.stats.Commits < target; iter++ {
		if iter&1023 == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		ln.step()
		if ln.stats.Commits != ln.lastCommits {
			ln.lastCommits = ln.stats.Commits
			ln.lastCommitCycle = ln.cycle
		} else if ln.cycle-ln.lastCommitCycle > watchdogCycles {
			panic(fmt.Sprintf(
				"pipeline: batch lane: no commit for %d cycles at cycle %d (iq=%d fe=%d refetch=%d wrong=%v stall=%d)",
				watchdogCycles, ln.cycle, ln.iq.n, ln.fe.n, len(ln.refetch)-ln.refetchHead, ln.wrongMode, ln.stallUntil))
		}
		if ln.stats.Commits < target {
			ln.fastForward()
		}
	}
	return nil
}

// flush closes residencies for entries still in flight, clipped at the
// final cycle, exactly as RunStream does.
func (ln *batchLane) flush() {
	if ln.sink == nil {
		return
	}
	for i := 0; i < ln.iq.n; i++ {
		ln.recordResidency(ln.iq.at(i), ln.cycle, false)
	}
	for i := 0; i < ln.fe.n; i++ {
		ln.recordFrontEnd(ln.fe.at(i), ln.cycle, false)
	}
	for i := 0; i < ln.sb.n; i++ {
		e := ln.sb.at(i)
		ln.sink.BatchStoreBuffer(e.ref, e.seq, e.enq, ln.cycle)
	}
	if ln.ooo {
		ln.oooFlushEnd(ln.cycle)
	}
}

func (ln *batchLane) step() {
	now := ln.cycle
	if ln.ooo {
		ln.drainLSQ(now)
	} else {
		ln.drainStores(now)
	}
	ln.resolveBranch(now)
	ln.applySquashes(now)
	ln.applyThrottles(now)
	if ln.ooo {
		ln.retire(now)
	}
	ln.evict(now)
	ln.issue(now)
	ln.deliver(now)
	ln.fetch(now)
	ln.cycle++
}

func (ln *batchLane) fastForward() {
	now := ln.cycle
	horizon := ln.nextEventCycle(now)
	if horizon <= now {
		return
	}
	if ln.stallUntil > now {
		stallEnd := ln.stallUntil
		if horizon < stallEnd {
			stallEnd = horizon
		}
		ln.stats.FetchStallCycles += stallEnd - now
	}
	ln.cycle = horizon
}

func (ln *batchLane) nextEventCycle(now uint64) uint64 {
	if now >= ln.stallUntil && ln.fe.n < ln.feCap {
		return now
	}
	horizon := neverCycle
	if now < ln.stallUntil {
		horizon = ln.stallUntil
	}
	if ln.sb.n > 0 {
		if at := ln.sb.at(0).drainAt; at < horizon {
			horizon = at
		}
	}
	if ln.resolveAt != 0 && ln.resolveAt < horizon {
		horizon = ln.resolveAt
	}
	for i := range ln.squashQ {
		if at := ln.squashQ[i].at; at < horizon {
			horizon = at
		}
	}
	for i := range ln.throttleQ {
		if at := ln.throttleQ[i].at; at < horizon {
			horizon = at
		}
	}
	if ln.iq.n > 0 {
		if e := ln.iq.at(0); e.issued && e.evictAt < horizon {
			horizon = e.evictAt
		}
	}
	if ln.fe.n > 0 && ln.iq.n < ln.cfg.IQSize {
		if at := ln.fe.at(0).readyAt; at < horizon {
			horizon = at
		}
	}
	if ln.ooo {
		horizon = ln.oooEventCycle(horizon)
	}
	for i := ln.issuePtr; i < ln.iq.n; i++ {
		if horizon <= now {
			return now
		}
		e := ln.iq.at(i)
		if e.issued {
			continue
		}
		if rc := ln.readyCycle(e); rc < horizon {
			horizon = rc
		}
		if !ln.cfg.OutOfOrder {
			break
		}
	}
	if horizon < now || horizon == neverCycle {
		return now
	}
	return horizon
}

func (ln *batchLane) readyCycle(e *biqEntry) uint64 {
	if e.ref.Wrong() {
		return 0
	}
	in := e.in
	t := uint64(0)
	if in.PredGuard != isa.RegNone {
		t = ln.regReady[in.PredGuard]
	}
	if in.PredFalse {
		return t
	}
	if in.Class == isa.ClassStore && !ln.ooo && ln.sb.n >= ln.cfg.StoreBufferSize {
		return neverCycle
	}
	if in.Src1 != isa.RegNone && ln.regReady[in.Src1] > t {
		t = ln.regReady[in.Src1]
	}
	if in.Src2 != isa.RegNone && ln.regReady[in.Src2] > t {
		t = ln.regReady[in.Src2]
	}
	return t
}

func (ln *batchLane) recordResidency(e *biqEntry, evict uint64, squashed bool) {
	if ln.sink == nil {
		return
	}
	ln.sink.BatchResidency(e.ref, e.seq, e.enq, e.issue, evict, e.issued, squashed)
}

func (ln *batchLane) recordFrontEnd(fe *bfeEntry, until uint64, delivered bool) {
	if ln.sink == nil {
		return
	}
	ln.sink.BatchFrontEnd(fe.ref, fe.seq, fe.fetched, until, delivered)
}

func (ln *batchLane) resolveBranch(now uint64) {
	if ln.resolveAt == 0 || now < ln.resolveAt {
		return
	}
	ln.resolveAt = 0
	ln.wrongMode = false
	kept := 0
	for i := 0; i < ln.iq.n; i++ {
		e := ln.iq.at(i)
		if e.ref.Wrong() {
			ln.stats.WrongFlushes++
			ln.recordResidency(e, now, !e.issued)
			continue
		}
		if kept != i {
			*ln.iq.at(kept) = *e
		}
		kept++
	}
	ln.iq.n = kept
	ln.issuePtr = 0
	kept = 0
	for i := 0; i < ln.fe.n; i++ {
		fe := ln.fe.at(i)
		if fe.ref.Wrong() {
			ln.stats.WrongFlushes++
			ln.recordFrontEnd(fe, now, false)
			continue
		}
		if kept != i {
			*ln.fe.at(kept) = *fe
		}
		kept++
	}
	ln.fe.n = kept
	if ln.ooo {
		ln.oooFlushWrong(now)
	}
}

func (ln *batchLane) applySquashes(now uint64) {
	rest := ln.squashQ[:0]
	for _, ev := range ln.squashQ {
		if ev.at > now {
			rest = append(rest, ev)
			continue
		}
		ln.doSquash(now, ev)
	}
	ln.squashQ = rest
}

func (ln *batchLane) doSquash(now uint64, ev squashEvent) {
	ln.stats.Squashes++
	kept := 0
	for i := 0; i < ln.iq.n; i++ {
		e := ln.iq.at(i)
		if e.issued || e.seq <= ev.loadSeq {
			if kept != i {
				*ln.iq.at(kept) = *e
			}
			kept++
			continue
		}
		ln.stats.SquashedEntries++
		ln.recordResidency(e, now, true)
		ln.squashVictim(e.ref, e.seq)
	}
	ln.iq.n = kept
	ln.issuePtr = 0

	kept = 0
	for i := 0; i < ln.fe.n; i++ {
		fe := ln.fe.at(i)
		if fe.seq <= ev.loadSeq {
			if kept != i {
				*ln.fe.at(kept) = *fe
			}
			kept++
			continue
		}
		ln.stats.SquashedEntries++
		ln.recordFrontEnd(fe, now, false)
		ln.squashVictim(fe.ref, fe.seq)
	}
	ln.fe.n = kept
	if ln.ooo {
		ln.oooSquash(now, ev)
	}

	if ln.refetchHead > 0 {
		m := copy(ln.refetch, ln.refetch[ln.refetchHead:])
		ln.refetch = ln.refetch[:m]
		ln.refetchHead = 0
	}
	sortStreamRefs(ln.refetch)
	restart := uint64(0)
	if mr := ev.missReturn; mr > uint64(ln.cfg.RefetchOverlap) {
		restart = mr - uint64(ln.cfg.RefetchOverlap)
	}
	if restart < now {
		restart = now
	}
	if restart > ln.stallUntil {
		ln.stallUntil = restart
	}
}

func (ln *batchLane) squashVictim(ref BatchRef, seq uint64) {
	if ref.Wrong() {
		return
	}
	ln.refetch = append(ln.refetch, streamRef{seq: seq, ref: ref})
	ln.stats.Refetches++
	if ln.wrongMode && seq == ln.wrongSrcSeq {
		ln.wrongMode = false
	}
}

func sortStreamRefs(q []streamRef) {
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && q[j-1].seq > q[j].seq; j-- {
			q[j-1], q[j] = q[j], q[j-1]
		}
	}
}

func (ln *batchLane) applyThrottles(now uint64) {
	rest := ln.throttleQ[:0]
	for _, ev := range ln.throttleQ {
		if ev.at > now {
			rest = append(rest, ev)
			continue
		}
		ln.stats.ThrottleEvents++
		if ev.missReturn > ln.stallUntil {
			ln.stallUntil = ev.missReturn
		}
	}
	ln.throttleQ = rest
}

func (ln *batchLane) evict(now uint64) {
	n := 0
	for n < ln.iq.n {
		e := ln.iq.at(n)
		if !e.issued || now < e.evictAt {
			break
		}
		ln.recordResidency(e, now, false)
		n++
	}
	if n > 0 {
		ln.iq.pop(n)
		ln.issuePtr -= n
		if ln.issuePtr < 0 {
			ln.issuePtr = 0
		}
	}
}

func (ln *batchLane) issue(now uint64) {
	issued := 0
	for i := ln.issuePtr; i < ln.iq.n && issued < ln.cfg.IssueWidth; i++ {
		e := ln.iq.at(i)
		if e.issued {
			continue
		}
		if !ln.ready(e, now) {
			if ln.cfg.OutOfOrder {
				continue
			}
			return
		}
		ln.execute(e, now)
		issued++
		if i == ln.issuePtr {
			ln.issuePtr = i + 1
		}
	}
}

func (ln *batchLane) ready(e *biqEntry, now uint64) bool {
	if e.ref.Wrong() {
		return true
	}
	in := e.in
	if in.PredGuard != isa.RegNone && ln.regReady[in.PredGuard] > now {
		return false
	}
	if in.PredFalse {
		return true
	}
	if in.Class == isa.ClassStore && !ln.ooo && ln.sb.n >= ln.cfg.StoreBufferSize {
		return false
	}
	if in.Src1 != isa.RegNone && ln.regReady[in.Src1] > now {
		return false
	}
	if in.Src2 != isa.RegNone && ln.regReady[in.Src2] > now {
		return false
	}
	return true
}

func (ln *batchLane) execute(e *biqEntry, now uint64) {
	if ln.ooo {
		ln.executeOOO(e, now)
		return
	}
	e.issued = true
	e.issue = now
	e.evictAt = now + uint64(ln.cfg.ReplayWindow)

	if e.ref.Wrong() {
		return
	}
	in := e.in

	ln.stats.Commits++
	if ln.sink != nil {
		ln.sink.BatchCommit(e.ref, e.seq, e.enq, now)
	}

	if in.PredFalse {
		return
	}

	switch in.Class {
	case isa.ClassALU:
		ln.writeDest(in, now+uint64(ln.cfg.ALULatency))
	case isa.ClassFPU:
		ln.writeDest(in, now+uint64(ln.cfg.FPLatency))
	case isa.ClassLoad:
		if ln.sbHolds(in.Addr) {
			ln.stats.ForwardedLoads++
			ln.writeDest(in, now+1)
			break
		}
		res := ln.mem.Access(in.Addr, false)
		ln.stats.LoadsByLevel[res.Level]++
		ln.writeDest(in, now+uint64(res.Latency))
		ln.maybeTrigger(e.seq, res, now)
	case isa.ClassStore:
		ln.sb.push(bsbEntry{
			addr:    in.Addr,
			enq:     now,
			drainAt: now + uint64(ln.cfg.StoreDrainLatency),
			seq:     e.seq,
			ref:     e.ref,
		})
	case isa.ClassIO:
		ln.mem.Access(in.Addr, true)
	case isa.ClassPrefetch:
		ln.mem.Prefetch(in.Addr)
	case isa.ClassBranch, isa.ClassCall, isa.ClassReturn:
		if in.Mispred && ln.wrongMode && ln.wrongSrcSeq == e.seq {
			ln.resolveAt = now + uint64(ln.cfg.BranchResolveLatency)
		}
	case isa.ClassNop, isa.ClassHint:
	}
}

// sbHolds reports whether a live store-buffer entry covers addr. The solo
// engine keeps a refcounted map; the buffer is at most StoreBufferSize
// entries, so a linear scan of the ring is cheaper than map traffic.
func (ln *batchLane) sbHolds(addr uint64) bool {
	for i := 0; i < ln.sb.n; i++ {
		if ln.sb.at(i).addr == addr {
			return true
		}
	}
	return false
}

func (ln *batchLane) writeDest(in *isa.Inst, readyAt uint64) {
	if in.Dest != isa.RegNone {
		ln.regReady[in.Dest] = readyAt
	}
}

func (ln *batchLane) maybeTrigger(seq uint64, res cache.AccessResult, now uint64) {
	if lvl := ln.cfg.SquashTrigger.level(); lvl >= 0 && res.MissedLevel(lvl) {
		ln.squashQ = append(ln.squashQ, squashEvent{
			at:         now + uint64(ln.mem.Level(lvl).Config().HitLatency),
			loadSeq:    seq,
			missReturn: now + uint64(res.Latency),
		})
	}
	if lvl := ln.cfg.ThrottleTrigger.level(); lvl >= 0 && res.MissedLevel(lvl) {
		ln.throttleQ = append(ln.throttleQ, throttleEvent{
			at:         now + uint64(ln.mem.Level(lvl).Config().HitLatency),
			missReturn: now + uint64(res.Latency),
		})
	}
}

func (ln *batchLane) drainStores(now uint64) {
	if ln.sb.n == 0 {
		return
	}
	e := ln.sb.at(0)
	if now < e.drainAt {
		return
	}
	ln.mem.Access(e.addr, true)
	if ln.sink != nil {
		ln.sink.BatchStoreBuffer(e.ref, e.seq, e.enq, now)
	}
	ln.sb.pop(1)
}

func (ln *batchLane) deliver(now uint64) {
	n := 0
	for n < ln.fe.n {
		fe := ln.fe.at(n)
		if fe.readyAt > now || ln.iq.n >= ln.cfg.IQSize {
			break
		}
		if ln.ooo {
			in := ln.feContent(fe)
			if !ln.oooAdmit(in) {
				break
			}
			ln.oooDispatch(in, fe, now)
		}
		ln.iq.push(biqEntry{ref: fe.ref, seq: fe.seq, in: fe.in, enq: now})
		ln.recordFrontEnd(fe, now, true)
		n++
	}
	if n > 0 {
		ln.fe.pop(n)
	}
}

func (ln *batchLane) fetch(now uint64) {
	if now < ln.stallUntil {
		ln.stats.FetchStallCycles++
		return
	}
	if ln.fe.n >= ln.feCap {
		return
	}
	readyAt := now + uint64(ln.cfg.FrontEndDepth)
	for i := 0; i < ln.cfg.FetchWidth && ln.fe.n < ln.feCap; i++ {
		var ref BatchRef
		var seq uint64
		switch {
		case ln.refetchHead < len(ln.refetch) && !ln.wrongMode:
			v := ln.refetch[ln.refetchHead]
			ln.refetchHead++
			if ln.refetchHead == len(ln.refetch) {
				ln.refetch = ln.refetch[:0]
				ln.refetchHead = 0
			}
			ref, seq = v.ref, v.seq
		case ln.havePending:
			ref, seq = ln.pendingRef.ref, ln.pendingRef.seq
			ln.havePending = false
		case ln.wrongMode:
			ref = wrongAt(ln.nextBody)
			seq = uint64(ln.nextBody + ln.wrongDrawn)
			ln.wrongDrawn++
		default:
			in := ln.inst(ln.nextBody)
			if in.FetchBubble > 0 {
				// Charge the delivery gap and park: the bubble lives in
				// the shared memo, so it is honoured on the first fetch
				// and ignored on refetch, exactly as the solo engine's
				// clear-on-park behaves.
				until := now + uint64(in.FetchBubble)
				if until > ln.stallUntil {
					ln.stallUntil = until
				}
				ln.pendingRef = streamRef{
					seq: uint64(ln.nextBody + ln.wrongDrawn),
					ref: bodyRef(ln.nextBody),
				}
				ln.havePending = true
				ln.nextBody++
				return
			}
			ref = bodyRef(ln.nextBody)
			seq = uint64(ln.nextBody + ln.wrongDrawn)
			ln.nextBody++
		}
		if seq > ln.stats.MaxSeq {
			ln.stats.MaxSeq = seq
		}
		// The content pointer rides in the entry from fetch onward: memo
		// arrays are append-only and their entries immutable, so a pointer
		// taken here stays valid even after the snapshot grows.
		var in *isa.Inst
		if !ref.Wrong() {
			in = ln.inst(ref.Body())
			if in.Class.IsControl() && in.Mispred && !ln.wrongMode {
				ln.wrongMode = true
				ln.wrongSrcSeq = seq
			}
		}
		ln.fe.push(bfeEntry{ref: ref, seq: seq, in: in, fetched: now, readyAt: readyAt})
	}
}
