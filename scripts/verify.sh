#!/bin/sh
# Repository verify recipe, in tiers:
#   1. tier-1: build + full test suite (the gate every change must pass)
#   2. race tier: the packages that run simulations concurrently, under the
#      race detector (parallel engine, suite memo, sweep grid, fault fan-out)
#   3. chaos tier: the resilience tests — injected panics, hangs and crashes
#      driven through the par chaos hook, checkpoint/resume byte-identity —
#      under the race detector, since failure paths exercise the locking the
#      happy path never touches
#   4. bench tier: a single-iteration run of the hot-loop benchmark so a
#      broken harness fails verify; performance deltas are tracked with
#      scripts/benchdiff.sh over full -benchtime runs
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/par ./internal/core ./internal/sweep ./internal/fault
go test -race -run 'Chaos|CrashResume|Resilien|Watchdog|Retry|Collect|Partial|Checkpoint|Resume' \
	./internal/par ./internal/checkpoint ./internal/fault ./internal/sweep \
	./cmd/sweep ./cmd/sersim ./cmd/repro
# bench tier: one iteration of the hot-loop benchmark, as a smoke test that
# the benchmark harness still compiles and runs; compare real runs across
# revisions with scripts/benchdiff.sh.
go test -run NONE -bench PipelineHotLoop -benchtime 1x -benchmem .
