package workload

import (
	"sync"

	"softerror/internal/cache"
)

// warmTemplate memoises one warmed default hierarchy per process. The warm
// sweep in WarmCaches is a fixed address sequence independent of the
// workload, so every run over the default hierarchy reaches the same warmed
// state; cloning a snapshot is bit-identical to redoing the sweep and turns
// an O(working-set) warm-up per simulation into an O(capacity) copy.
var (
	warmOnce     sync.Once
	warmSnapshot *cache.Hierarchy
)

// WarmedDefault returns a freshly cloned default hierarchy in the warmed
// steady state — equivalent to NewHierarchy(DefaultHierarchy()) followed by
// WarmCaches, but paying for the warm sweep only once per process. Each call
// returns an independent copy, safe to hand to a concurrent simulation.
func WarmedDefault() *cache.Hierarchy {
	return warmed().Clone()
}

// WarmedInto is WarmedDefault re-stamping dst's storage (cache.CloneInto):
// the arena path hands back pooled hierarchies from finished simulations
// and receives them warmed again without reallocating the line arrays. A
// nil or incompatible dst yields a fresh clone; the returned state is
// bit-identical to WarmedDefault's either way.
func WarmedInto(dst *cache.Hierarchy) *cache.Hierarchy {
	return warmed().CloneInto(dst)
}

func warmed() *cache.Hierarchy {
	warmOnce.Do(func() {
		warmSnapshot = cache.MustNewDefault()
		WarmCaches(warmSnapshot)
	})
	return warmSnapshot
}
