package pipeline

import "softerror/internal/isa"

// Residency records one occupancy of one instruction-queue entry: the
// interval during which a particular dynamic instruction's bits sat in the
// IQ. The ace package integrates these intervals into architectural
// vulnerability factors.
type Residency struct {
	Inst isa.Inst

	// Enq is the cycle the instruction entered the IQ. Evict is the cycle
	// it left (by post-issue eviction, squash, or wrong-path flush); the
	// occupied interval is [Enq, Evict).
	Enq   uint64
	Evict uint64

	// Issued reports whether this copy was read by the issue stage; Issue
	// is the cycle it was read. A parity check happens exactly at that
	// read, so only issued residencies can raise a DUE. The interval
	// (Issue, Evict) of an issued entry is Ex-ACE: the entry was issued
	// for the last time but not yet evicted.
	Issued bool
	Issue  uint64

	// Squashed marks a copy removed without ever being read: by an
	// exposure-reduction squash (correct-path copies, which are refetched
	// later under the same Seq) or by a wrong-path flush. A fault in such
	// a copy is never read and therefore benign (outcome 1 in Figure 1).
	Squashed bool
}

// Occupancy returns the number of cycles this residency occupied its entry.
func (r *Residency) Occupancy() uint64 {
	if r.Evict < r.Enq {
		return 0
	}
	return r.Evict - r.Enq
}

// Trace is the full record of one simulation: everything the AVF analysis,
// the false-DUE mechanisms, and the performance metrics need.
type Trace struct {
	// Cycles is the number of cycles simulated.
	Cycles uint64
	// Commits is the number of correct-path instructions committed
	// (including no-ops and predicated-false instructions, matching the
	// paper's instruction counting).
	Commits uint64
	// IQSize echoes the configured queue size.
	IQSize int

	// Residencies lists every IQ occupancy interval, in eviction order.
	Residencies []Residency
	// FrontEnd lists every fetch-buffer occupancy interval: Enq is the
	// fetch cycle, Evict the delivery-to-decode or flush cycle; Issued
	// marks delivered (read) entries. FrontEndCap is the buffer's
	// capacity in instructions. Together they support the paper's §4.2
	// discussion of π bits on fetch chunks.
	FrontEnd    []Residency
	FrontEndCap int
	// StoreBuffer lists every store-buffer occupancy: Enq is the store's
	// issue cycle, Evict its drain-to-cache cycle; every drained entry is
	// "read" (its value is committed to memory). StoreBufferCap is the
	// buffer's entry count. ForwardedLoads counts loads serviced by
	// store-to-load forwarding instead of the cache.
	StoreBuffer    []Residency
	StoreBufferCap int
	ForwardedLoads uint64
	// ROB and LSQ list the out-of-order family's reorder-buffer and
	// load/store-queue occupancy intervals (empty for the in-order
	// family). A ROB entry's read point is its in-order retire; an LSQ
	// entry's is its retire (loads, predicated-false stores) or its
	// drain to the cache (executed stores). ROBCap and LSQCap echo the
	// normalized configuration.
	ROB    []Residency
	ROBCap int
	LSQ    []Residency
	LSQCap int
	// TAGEReadCycles integrates the TAGE predictor's read exposure: for
	// every table lookup, the entry-cycles since that entry was last
	// read. TAGETables and TAGETableEntries echo the normalized
	// geometry; ace.AnalyzeTAGE turns the three into a closed-form
	// report.
	TAGEReadCycles   uint64
	TAGETables       int
	TAGETableEntries int
	// CommitLog lists committed instructions in program (issue) order; the
	// deadness analysis and the PET-buffer model consume it.
	CommitLog []isa.Inst
	// CommitCycles holds the cycle at which each CommitLog entry issued,
	// index-parallel to CommitLog; the register-file AVF analysis uses it
	// to integrate value lifetimes over time.
	CommitCycles []uint64

	// MaxSeq is the largest instruction sequence number observed.
	MaxSeq uint64

	// Exposure-action accounting.
	Squashes        uint64 // squash events fired
	SquashedEntries uint64 // IQ and front-end entries removed by squashes
	Refetches       uint64 // squashed correct-path instructions refetched
	ThrottleEvents  uint64
	WrongFlushes    uint64 // entries removed by branch-resolution flushes

	// LoadsByLevel counts correct-path loads by servicing level
	// (cache.LevelL0..LevelMemory).
	LoadsByLevel [4]uint64

	// FetchStallCycles counts cycles fetch was blocked by squash/throttle
	// stalls (not by IQ backpressure).
	FetchStallCycles uint64
}

// IPC returns committed instructions per cycle.
func (t *Trace) IPC() float64 {
	if t.Cycles == 0 {
		return 0
	}
	return float64(t.Commits) / float64(t.Cycles)
}

// LoadMissRate returns the fraction of loads serviced beyond the given
// cache level.
func (t *Trace) LoadMissRate(level int) float64 {
	var total, beyond uint64
	for l, n := range t.LoadsByLevel {
		total += n
		if l > level {
			beyond += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(beyond) / float64(total)
}
