package par

import (
	"context"
	"sync/atomic"
)

// ChaosFunc is a test-only fault injector. When installed, the engine calls
// it at the start of every task attempt, inside the panic-isolation and
// watchdog scope, so a hook can simulate the three classic worker failures:
//
//   - panic: simply panic — the engine must convert it to a TaskError;
//   - hang: block on ctx.Done() (cooperative) or on a private channel
//     (non-cooperative) — the watchdog must detect it;
//   - transient error: return an error for attempt 1 only — the retry must
//     heal it, and determinism tests can prove the retried cell is
//     byte-identical to a first-try cell.
//
// Returning nil lets the real task run.
type ChaosFunc func(ctx context.Context, index, attempt int) error

// chaosBox wraps the hook so atomic.Value can hold a nil function.
type chaosBox struct{ h ChaosFunc }

var chaosHook atomic.Value

// SetChaos installs (or, with nil, clears) the chaos hook. It exists for
// resilience tests only — production drivers must never set it. Tests should
// clear it via t.Cleanup(func() { par.SetChaos(nil) }).
func SetChaos(h ChaosFunc) { chaosHook.Store(chaosBox{h: h}) }

// chaos returns the installed hook, or nil.
func chaos() ChaosFunc {
	if b, ok := chaosHook.Load().(chaosBox); ok {
		return b.h
	}
	return nil
}
