package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// stubAPI stands in for the server handler: any route it receives is
// answered 200 with a marker body.
type stubAPI struct{ hits int }

func (s *stubAPI) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.hits++
	w.Write([]byte("api"))
}

func TestBuildHandlerWithoutPprof(t *testing.T) {
	api := &stubAPI{}
	h := buildHandler(api, false)
	if h != http.Handler(api) {
		t.Fatalf("buildHandler(api, false) should return the API handler unwrapped")
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if api.hits != 1 {
		t.Fatalf("pprof path off: want the API to see the request, hits=%d", api.hits)
	}
}

func TestBuildHandlerWithPprof(t *testing.T) {
	api := &stubAPI{}
	h := buildHandler(api, true)

	// The profile index answers from the pprof surface, not the API.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if api.hits != 0 {
		t.Fatalf("pprof index leaked through to the API")
	}
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", rr.Code)
	}
	if rr.Body.Len() == 0 {
		t.Fatalf("pprof index returned an empty body")
	}

	// Every other route still reaches the API.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if api.hits != 1 || rr.Body.String() != "api" {
		t.Fatalf("API route lost behind the pprof mux: hits=%d body=%q", api.hits, rr.Body.String())
	}
}
