package spec

import (
	"strings"
	"testing"
)

// FuzzParseList drives arbitrary strings through the roster parser. A
// successful parse must yield only roster benchmarks, an empty/blank list
// must mean the full roster, and re-joining the parsed names must
// round-trip to the identical roster (the parse is canonicalising only in
// whitespace, never in membership or order).
func FuzzParseList(f *testing.F) {
	f.Add("")
	f.Add("   ")
	f.Add("gzip-graphic")
	f.Add("gzip-graphic, ammp ,mcf")
	f.Add("gzip-graphic,gzip-graphic")
	f.Add("not-a-benchmark")
	f.Add("gzip-graphic,,ammp")
	f.Add("GZIP-GRAPHIC")
	f.Add(strings.Join(Names(), ","))

	f.Fuzz(func(t *testing.T, list string) {
		benches, err := ParseList(list)
		if err != nil {
			return
		}
		if strings.TrimSpace(list) == "" {
			if len(benches) != len(All()) {
				t.Fatalf("blank list %q parsed to %d benchmarks, want full roster of %d",
					list, len(benches), len(All()))
			}
			return
		}
		names := make([]string, len(benches))
		for i, b := range benches {
			got, ok := ByName(b.Name)
			if !ok {
				t.Fatalf("ParseList(%q) returned %q, which ByName does not know", list, b.Name)
			}
			if got != b {
				t.Fatalf("ParseList(%q) entry %q differs from the roster's", list, b.Name)
			}
			names[i] = b.Name
		}
		again, err := ParseList(strings.Join(names, ","))
		if err != nil {
			t.Fatalf("re-joined list %q failed to parse: %v", strings.Join(names, ","), err)
		}
		if len(again) != len(benches) {
			t.Fatalf("round-trip changed roster length %d -> %d", len(benches), len(again))
		}
		for i := range again {
			if again[i] != benches[i] {
				t.Fatalf("round-trip changed entry %d: %q -> %q", i, benches[i].Name, again[i].Name)
			}
		}
	})
}
