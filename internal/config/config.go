// Package config loads experiment configurations from JSON files for the
// command-line tools, so that a study — a workload tweak, a pipeline
// variant, a commit budget — is a reviewable artefact rather than a shell
// history entry.
//
// A config file overrides selectively: the workload starts from the named
// Table-2 benchmark's profile (or the generic default) and the pipeline
// from the paper's machine, then only the JSON-present fields replace the
// base values:
//
//	{
//	  "bench": "mcf",
//	  "commits": 200000,
//	  "workload": {"MispredictRate": 0.10},
//	  "pipeline": {"IQSize": 128, "SquashTrigger": 2}
//	}
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"softerror/internal/core"
	"softerror/internal/pipeline"
	"softerror/internal/spec"
	"softerror/internal/workload"
)

// raw is the file schema; workload/pipeline stay raw so they can be
// unmarshalled over prefilled bases.
type raw struct {
	Bench    string          `json:"bench"`
	Commits  uint64          `json:"commits"`
	Workload json.RawMessage `json:"workload"`
	Pipeline json.RawMessage `json:"pipeline"`
}

// Parse builds a core.Config from JSON bytes. Unknown fields are errors.
func Parse(data []byte) (core.Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r raw
	if err := dec.Decode(&r); err != nil {
		return core.Config{}, fmt.Errorf("config: %w", err)
	}

	wl := workload.Default()
	if r.Bench != "" {
		b, ok := spec.ByName(r.Bench)
		if !ok {
			return core.Config{}, fmt.Errorf("config: unknown benchmark %q", r.Bench)
		}
		wl = b.Params
	}
	if len(r.Workload) > 0 {
		wdec := json.NewDecoder(bytes.NewReader(r.Workload))
		wdec.DisallowUnknownFields()
		if err := wdec.Decode(&wl); err != nil {
			return core.Config{}, fmt.Errorf("config: workload: %w", err)
		}
	}
	if err := wl.Validate(); err != nil {
		return core.Config{}, fmt.Errorf("config: %w", err)
	}

	pcfg := pipeline.DefaultConfig()
	if len(r.Pipeline) > 0 {
		pdec := json.NewDecoder(bytes.NewReader(r.Pipeline))
		pdec.DisallowUnknownFields()
		if err := pdec.Decode(&pcfg); err != nil {
			return core.Config{}, fmt.Errorf("config: pipeline: %w", err)
		}
	}
	if err := pcfg.Validate(); err != nil {
		return core.Config{}, fmt.Errorf("config: %w", err)
	}

	return core.Config{Workload: wl, Pipeline: pcfg, Commits: r.Commits}, nil
}

// Load reads and parses a config file.
func Load(path string) (core.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Config{}, err
	}
	return Parse(data)
}
