// Httpget is a minimal HTTP client for shell scripts in containers that
// ship no curl or wget: GET (one argument) or POST (URL plus body), the
// response body to stdout, non-2xx statuses as a non-zero exit.
//
//	go run ./scripts/httpget URL [POST-BODY]
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 || len(os.Args) > 3 {
		fmt.Fprintln(os.Stderr, "usage: httpget URL [POST-BODY]")
		os.Exit(2)
	}
	var (
		resp *http.Response
		err  error
	)
	if len(os.Args) == 3 && os.Args[2] != "" {
		resp, err = http.Post(os.Args[1], "application/json", strings.NewReader(os.Args[2]))
	} else {
		resp, err = http.Get(os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
	if resp.StatusCode >= 300 {
		fmt.Fprintln(os.Stderr, resp.Status)
		os.Exit(1)
	}
}
