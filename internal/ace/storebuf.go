package ace

import "softerror/internal/pipeline"

// Store-buffer entry layout: the value being written and its target
// address. Unlike instruction-queue entries, every drained entry is
// consumed (written to memory), so there is no Ex-ACE state; the
// vulnerability question is only whether the write matters.
const (
	// SBDataBits is the width of the buffered store data.
	SBDataBits = 64
	// SBAddrBits is the width of the buffered physical address.
	SBAddrBits = 44
	// SBEntryBits is the payload width of one store-buffer entry.
	SBEntryBits = SBDataBits + SBAddrBits
)

// SBReport is the vulnerability analysis of the store buffer.
//
// For a live store the whole entry is ACE. For a dynamically dead store
// (its memory value overwritten before any load) the data bits are un-ACE
// — exactly the faults π-bits-through-memory cover — but the address bits
// remain ACE: corrupting them redirects the dead write onto a live
// location.
type SBReport struct {
	Cycles  uint64
	Entries int

	ACEBC      uint64
	DeadDataBC uint64
	IdleBC     uint64
}

// AnalyzeStoreBuffer integrates the store buffer's residency intervals.
func AnalyzeStoreBuffer(tr *pipeline.Trace, dead *Deadness) *SBReport {
	r := &SBReport{Cycles: tr.Cycles, Entries: tr.StoreBufferCap}
	for i := range tr.StoreBuffer {
		res := &tr.StoreBuffer[i]
		occ := res.Occupancy()
		if occ == 0 {
			continue
		}
		r.add(occ, dead.Of(&res.Inst))
	}
	r.finalize()
	return r
}

// add charges one drained store's occupancy under its deadness category —
// the shared classification point of the batch and streaming paths.
func (r *SBReport) add(occ uint64, cat Category) {
	switch cat {
	case CatFDDMem, CatTDDMem:
		r.ACEBC += occ * SBAddrBits
		r.DeadDataBC += occ * SBDataBits
	default:
		r.ACEBC += occ * SBEntryBits
	}
}

// finalize computes the idle remainder.
func (r *SBReport) finalize() {
	total := r.TotalBC()
	used := r.ACEBC + r.DeadDataBC
	if used > total {
		used = total
	}
	r.IdleBC = total - used
}

// TotalBC returns the buffer's bit-cycle capacity.
func (r *SBReport) TotalBC() uint64 {
	return r.Cycles * uint64(r.Entries) * SBEntryBits
}

// SDCAVF is the unprotected store buffer's vulnerability.
func (r *SBReport) SDCAVF() float64 { return r.frac(r.ACEBC) }

// FalseDUEAVF is the share of bit-cycles a parity-protected buffer would
// flag although the data was dynamically dead.
func (r *SBReport) FalseDUEAVF() float64 { return r.frac(r.DeadDataBC) }

// DUEAVF is the parity-protected buffer's total DUE AVF.
func (r *SBReport) DUEAVF() float64 { return r.SDCAVF() + r.FalseDUEAVF() }

// IdleFraction is the unoccupied share of the buffer.
func (r *SBReport) IdleFraction() float64 { return r.frac(r.IdleBC) }

func (r *SBReport) frac(bc uint64) float64 {
	total := r.TotalBC()
	if total == 0 {
		return 0
	}
	return float64(bc) / float64(total)
}
