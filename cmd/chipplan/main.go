// Command chipplan evaluates and plans chip-level soft-error budgets (§2
// of the paper). It either loads a budget from JSON or measures one from a
// simulation of a Table-2 benchmark, then reports the chip's SDC/DUE rates
// against vendor-style MTTF targets and searches for the cheapest
// protection mix that meets them.
//
//	chipplan -measure mcf -rawfit 0.05 -sdctarget 5000 -duetarget 25
//	chipplan -budget budget.json
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"softerror/internal/ace"
	"softerror/internal/chip"
	"softerror/internal/cli"
	"softerror/internal/core"
	"softerror/internal/isa"
	"softerror/internal/spec"
)

func main() {
	cli.Main("chipplan", run)
}

func run(args []string) error {
	d := cli.NewDriver("chipplan", "chipplan [flags] (-budget file.json | -measure bench)")
	fs := d.FS
	budgetPath := fs.String("budget", "", "JSON chip budget to evaluate")
	measure := fs.String("measure", "", "Table-2 benchmark to measure a budget from")
	commits := fs.Uint64("commits", core.DefaultCommits, "commits for -measure")
	rawFIT := fs.Float64("rawfit", 0.05, "raw soft-error rate per bit (FIT) for -measure")
	sdcTarget := fs.Float64("sdctarget", 5000, "SDC MTTF target in years for -measure")
	dueTarget := fs.Float64("duetarget", 25, "DUE MTTF target in years for -measure")
	if err := d.Parse(args); err != nil {
		return err
	}

	var budget *chip.Budget
	switch {
	case *budgetPath != "" && *measure != "":
		return cli.Usagef("use either -budget or -measure, not both")
	case *budgetPath != "":
		data, err := os.ReadFile(*budgetPath)
		if err != nil {
			return err
		}
		budget = &chip.Budget{}
		if err := json.Unmarshal(data, budget); err != nil {
			return fmt.Errorf("parse %s: %w", *budgetPath, err)
		}
	case *measure != "":
		b, err := measureBudget(*measure, *commits, *rawFIT, *sdcTarget, *dueTarget)
		if err != nil {
			return err
		}
		budget = b
	default:
		return cli.Usagef("one of -budget or -measure is required")
	}

	ev, err := budget.Evaluate()
	if err != nil {
		return err
	}
	fmt.Printf("as specified: SDC %s; DUE %s (meets targets: SDC %v, DUE %v)\n\n",
		ev.SDC, ev.DUE, ev.MeetsSDC, ev.MeetsDUE)

	plan, planEv, err := budget.Plan()
	if err != nil {
		return err
	}
	fmt.Printf("cheapest compliant mix (area cost %.1f%%):\n", 100*planEv.AreaCost)
	for _, line := range plan.Describe() {
		fmt.Println("  " + line)
	}
	fmt.Printf("\nchip totals: SDC %s; DUE %s\n", planEv.SDC, planEv.DUE)
	return nil
}

// measureBudget simulates one benchmark and builds a budget from the
// measured per-structure AVFs.
func measureBudget(name string, commits uint64, rawFIT, sdcTarget, dueTarget float64) (*chip.Budget, error) {
	b, ok := spec.ByName(name)
	if !ok {
		return nil, cli.Usagef("unknown benchmark %q", name)
	}
	res, err := core.Run(core.Config{
		Workload: b.Params, Commits: commits, KeepTrace: true, RegFile: true,
	})
	if err != nil {
		return nil, err
	}
	dead := res.Report.Dead
	fe := ace.AnalyzeFrontEnd(res.Trace, dead)
	sb := ace.AnalyzeStoreBuffer(res.Trace, dead)
	rf := res.RegFile
	return &chip.Budget{
		RawFITPerBit:   rawFIT,
		SDCTargetYears: sdcTarget,
		DUETargetYears: dueTarget,
		Structures: []chip.Structure{
			{Name: "instruction-queue", Bits: float64(64 * isa.EntryPayloadBits),
				SDCAVF: res.Report.SDCAVF(), FalseDUEAVF: res.Report.FalseDUEAVF()},
			{Name: "front-end-buffer", Bits: float64(res.Trace.FrontEndCap * isa.EntryPayloadBits),
				SDCAVF: fe.SDCAVF(), FalseDUEAVF: fe.FalseDUEAVF()},
			{Name: "store-buffer", Bits: float64(res.Trace.StoreBufferCap * ace.SBEntryBits),
				SDCAVF: sb.SDCAVF(), FalseDUEAVF: sb.FalseDUEAVF()},
			{Name: "register-files", Bits: 128*64 + 128*82 + 64,
				SDCAVF: rf.SDCAVF(), FalseDUEAVF: rf.FalseDUEAVF()},
		},
	}, nil
}
