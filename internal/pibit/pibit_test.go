package pibit

import (
	"testing"

	"softerror/internal/ace"
	"softerror/internal/isa"
)

// Test helpers mirroring the ace package's log builder.
type logBuilder struct {
	log []isa.Inst
	seq uint64
}

func (b *logBuilder) add(in isa.Inst) int {
	in.Seq = b.seq
	b.seq++
	b.log = append(b.log, in)
	return len(b.log) - 1
}

func (b *logBuilder) alu(dest, src1, src2 isa.Reg) int {
	return b.add(isa.Inst{Class: isa.ClassALU, Dest: dest, Src1: src1, Src2: src2, PredGuard: isa.RegNone})
}

func (b *logBuilder) load(dest isa.Reg, addr uint64) int {
	return b.add(isa.Inst{Class: isa.ClassLoad, Dest: dest, Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone, Addr: addr})
}

func (b *logBuilder) store(val isa.Reg, addr uint64) int {
	return b.add(isa.Inst{Class: isa.ClassStore, Dest: isa.RegNone, Src1: val, Src2: isa.RegNone, PredGuard: isa.RegNone, Addr: addr})
}

func (b *logBuilder) nop() int {
	return b.add(isa.Inst{Class: isa.ClassNop, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, PredGuard: isa.RegNone})
}

func (b *logBuilder) branch(src isa.Reg) int {
	return b.add(isa.Inst{Class: isa.ClassBranch, Dest: isa.RegNone, Src1: src, Src2: isa.RegNone, PredGuard: isa.RegNone})
}

func TestPETBufferProvesFDD(t *testing.T) {
	pet := NewPETBuffer(4)
	faulty := isa.Inst{Seq: 1, Class: isa.ClassALU, Dest: isa.IntReg(5), Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(faulty, true)
	// Overwrite r5 with no read, then pad until the faulty entry evicts.
	over := isa.Inst{Seq: 2, Class: isa.ClassALU, Dest: isa.IntReg(5), Src1: isa.IntReg(2), Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(over, false)
	pad := isa.Inst{Seq: 3, Class: isa.ClassNop, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, PredGuard: isa.RegNone}
	for i := 0; i < 2; i++ {
		pet.Push(pad, false)
	}
	// Next push evicts the faulty entry.
	signal, seq, evicted := pet.Push(pad, false)
	if !evicted || seq != 1 {
		t.Fatalf("expected eviction of seq 1, got seq %d evicted=%v", seq, evicted)
	}
	if signal {
		t.Fatal("PET buffer failed to prove an obvious FDD")
	}
	if pet.Suppressed() != 1 {
		t.Fatalf("Suppressed = %d, want 1", pet.Suppressed())
	}
}

func TestPETBufferSignalsOnInterveningRead(t *testing.T) {
	pet := NewPETBuffer(4)
	faulty := isa.Inst{Seq: 1, Class: isa.ClassALU, Dest: isa.IntReg(5), Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(faulty, true)
	reader := isa.Inst{Seq: 2, Class: isa.ClassALU, Dest: isa.IntReg(6), Src1: isa.IntReg(5), Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(reader, false)
	over := isa.Inst{Seq: 3, Class: isa.ClassALU, Dest: isa.IntReg(5), Src1: isa.IntReg(2), Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(over, false)
	pad := isa.Inst{Seq: 4, Class: isa.ClassNop, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(pad, false) // buffer now full
	signal, seq, _ := pet.Push(pad, false)
	if seq != 1 || !signal {
		t.Fatalf("read-before-overwrite must signal: signal=%v seq=%d", signal, seq)
	}
	if pet.Signalled() != 1 {
		t.Fatalf("Signalled = %d, want 1", pet.Signalled())
	}
}

func TestPETBufferSignalsWithoutOverwriter(t *testing.T) {
	pet := NewPETBuffer(2)
	faulty := isa.Inst{Seq: 1, Class: isa.ClassALU, Dest: isa.IntReg(5), Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(faulty, true)
	pad := isa.Inst{Seq: 2, Class: isa.ClassNop, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(pad, false)
	signal, seq, _ := pet.Push(pad, false) // evicts faulty, window too small
	if seq != 1 || !signal {
		t.Fatal("absence of an overwriting instruction must signal")
	}
}

func TestPETBufferDrain(t *testing.T) {
	pet := NewPETBuffer(8)
	faulty := isa.Inst{Seq: 1, Class: isa.ClassALU, Dest: isa.IntReg(5), Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(faulty, true)
	over := isa.Inst{Seq: 2, Class: isa.ClassALU, Dest: isa.IntReg(5), Src1: isa.IntReg(2), Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(over, false)
	if seqs := pet.Drain(); len(seqs) != 0 {
		t.Fatalf("drain signalled %v, want none (overwrite logged)", seqs)
	}
	if pet.Len() != 0 {
		t.Fatal("buffer not empty after drain")
	}

	pet2 := NewPETBuffer(8)
	pet2.Push(faulty, true) // no overwriter at all
	if seqs := pet2.Drain(); len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("drain = %v, want [1]", seqs)
	}
}

func TestPETBufferSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPETBuffer(0) did not panic")
		}
	}()
	NewPETBuffer(0)
}

func TestPETIgnoresNeutralAndPredFalseReads(t *testing.T) {
	pet := NewPETBuffer(4)
	faulty := isa.Inst{Seq: 1, Class: isa.ClassALU, Dest: isa.IntReg(5), Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(faulty, true)
	// A prefetch "reading" r5 is not an architectural consumer.
	pf := isa.Inst{Seq: 2, Class: isa.ClassPrefetch, Dest: isa.RegNone, Src1: isa.IntReg(5), Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(pf, false)
	over := isa.Inst{Seq: 3, Class: isa.ClassALU, Dest: isa.IntReg(5), Src1: isa.IntReg(2), Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(over, false)
	pad := isa.Inst{Seq: 4, Class: isa.ClassNop, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, PredGuard: isa.RegNone}
	pet.Push(pad, false) // buffer now full
	signal, seq, _ := pet.Push(pad, false)
	if seq != 1 || signal {
		t.Fatal("prefetch read should not defeat the FDD proof")
	}
}

// engineVerdict runs an engine at the given level over the builder's log.
func engineVerdict(level ace.TrackLevel, log []isa.Inst, faultIdx int, field isa.Field) Verdict {
	e := NewEngine(level)
	return e.Process(log, faultIdx, field)
}

func TestEnginePlainParitySignalsEverything(t *testing.T) {
	b := &logBuilder{}
	n := b.nop()
	if v := engineVerdict(ace.TrackNever, b.log, n, isa.FieldImm); v != VerdictSignalled {
		t.Fatalf("plain parity verdict = %v, want signalled", v)
	}
}

func TestEngineCommitSuppressesPredFalse(t *testing.T) {
	b := &logBuilder{}
	pf := b.add(isa.Inst{Class: isa.ClassALU, Dest: isa.IntReg(5), Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.PredReg(1), PredFalse: true})
	if v := engineVerdict(ace.TrackCommit, b.log, pf, isa.FieldImm); v != VerdictSuppressed {
		t.Fatalf("pred-false verdict = %v, want suppressed", v)
	}
	// But a live ALU op signals at commit.
	live := b.alu(isa.IntReg(6), isa.IntReg(1), isa.RegNone)
	if v := engineVerdict(ace.TrackCommit, b.log, live, isa.FieldImm); v != VerdictSignalled {
		t.Fatal("live instruction at TrackCommit should signal")
	}
}

func TestEngineAntiPi(t *testing.T) {
	b := &logBuilder{}
	n := b.nop()
	// Non-opcode strike on a nop: suppressed by the anti-π bit.
	if v := engineVerdict(ace.TrackAntiPi, b.log, n, isa.FieldImm); v != VerdictSuppressed {
		t.Fatalf("anti-π verdict = %v, want suppressed", v)
	}
	// Opcode strike on a nop could turn it into a real op: must signal.
	if v := engineVerdict(ace.TrackAntiPi, b.log, n, isa.FieldOpcode); v != VerdictSignalled {
		t.Fatal("opcode strike on neutral must signal")
	}
	// Without anti-π (TrackCommit), even the imm strike signals.
	if v := engineVerdict(ace.TrackCommit, b.log, n, isa.FieldImm); v != VerdictSignalled {
		t.Fatal("neutral without anti-π must signal")
	}
}

func TestEnginePETProvesFDD(t *testing.T) {
	b := &logBuilder{}
	f := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // overwrite soon
	if v := engineVerdict(ace.TrackPET, b.log, f, isa.FieldImm); v != VerdictSuppressed {
		t.Fatalf("PET verdict = %v, want suppressed", v)
	}
}

func TestEnginePETWindowLimit(t *testing.T) {
	b := &logBuilder{}
	f := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	for i := 0; i < 700; i++ {
		b.nop()
	}
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // overwrite beyond 512
	e := NewEngine(ace.TrackPET)                     // 512 entries
	if v := e.Process(b.log, f, isa.FieldImm); v != VerdictSignalled {
		t.Fatalf("overwrite outside PET window: verdict = %v, want signalled", v)
	}
	// A 1024-entry PET covers it.
	e.PETEntries = 1024
	if v := e.Process(b.log, f, isa.FieldImm); v != VerdictSuppressed {
		t.Fatal("1024-entry PET should prove the FDD")
	}
}

func TestEnginePETStoreSignals(t *testing.T) {
	b := &logBuilder{}
	st := b.store(isa.IntReg(1), 0x100)
	if v := engineVerdict(ace.TrackPET, b.log, st, isa.FieldImm); v != VerdictSignalled {
		t.Fatal("PET cannot prove stores dead; must signal")
	}
}

func TestEngineRegFile(t *testing.T) {
	b := &logBuilder{}
	f := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // overwrite, unread
	if v := engineVerdict(ace.TrackRegFile, b.log, f, isa.FieldImm); v != VerdictSuppressed {
		t.Fatalf("regfile π overwrite verdict = %v, want suppressed", v)
	}

	b2 := &logBuilder{}
	f2 := b2.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b2.alu(isa.IntReg(6), isa.IntReg(5), isa.RegNone) // read: signal
	if v := engineVerdict(ace.TrackRegFile, b2.log, f2, isa.FieldImm); v != VerdictSignalled {
		t.Fatal("read of a poisoned register must signal at TrackRegFile")
	}
}

func TestEngineStoreBufferTracksTDD(t *testing.T) {
	// TDD chain: faulty producer read by a consumer that is itself
	// overwritten without reaching a store — store-buffer tracking proves
	// the whole chain harmless where TrackRegFile would have signalled.
	b := &logBuilder{}
	f := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.alu(isa.IntReg(6), isa.IntReg(5), isa.RegNone) // consumer (π propagates)
	b.alu(isa.IntReg(6), isa.IntReg(2), isa.RegNone) // overwrite consumer
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // overwrite producer
	if v := engineVerdict(ace.TrackRegFile, b.log, f, isa.FieldImm); v != VerdictSignalled {
		t.Fatal("regfile level should signal on the TDD read")
	}
	if v := engineVerdict(ace.TrackStoreBuffer, b.log, f, isa.FieldImm); v != VerdictSuppressed {
		t.Fatal("store-buffer level should prove the TDD chain harmless")
	}
}

func TestEngineStoreBufferSignalsLiveStore(t *testing.T) {
	b := &logBuilder{}
	f := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.store(isa.IntReg(5), 0x100) // possibly-incorrect value reaches memory
	if v := engineVerdict(ace.TrackStoreBuffer, b.log, f, isa.FieldImm); v != VerdictSignalled {
		t.Fatal("π value committed by a store must signal at TrackStoreBuffer")
	}
}

func TestEngineStoreBufferSignalsBranch(t *testing.T) {
	b := &logBuilder{}
	f := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.branch(isa.IntReg(5)) // control consumes a poisoned value
	if v := engineVerdict(ace.TrackStoreBuffer, b.log, f, isa.FieldImm); v != VerdictSignalled {
		t.Fatal("π value consumed by control flow must signal")
	}
}

func TestEngineMemoryTracksDeadStore(t *testing.T) {
	// A poisoned value stored to memory and overwritten before any load:
	// only full memory tracking (design 4) proves it harmless.
	b := &logBuilder{}
	f := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.store(isa.IntReg(5), 0x200)                    // π into memory
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // clear reg π
	b.store(isa.IntReg(2), 0x200)                    // overwrite memory unread
	if v := engineVerdict(ace.TrackStoreBuffer, b.log, f, isa.FieldImm); v != VerdictSignalled {
		t.Fatal("store-buffer level signals when the value reaches memory")
	}
	if v := engineVerdict(ace.TrackMemory, b.log, f, isa.FieldImm); v != VerdictSuppressed {
		t.Fatal("memory level should track the dead store to suppression")
	}
}

func TestEngineMemoryLoadPicksUpPi(t *testing.T) {
	b := &logBuilder{}
	f := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.store(isa.IntReg(5), 0x300)                    // π into memory
	b.alu(isa.IntReg(5), isa.IntReg(2), isa.RegNone) // clear reg π
	b.load(isa.IntReg(7), 0x300)                     // load picks π up
	b.branch(isa.IntReg(7))                          // consumed by control: signal
	if v := engineVerdict(ace.TrackMemory, b.log, f, isa.FieldImm); v != VerdictSignalled {
		t.Fatal("π loaded from memory and consumed by control must signal")
	}
}

func TestEngineMemoryFaultyStoreDirect(t *testing.T) {
	b := &logBuilder{}
	st := b.store(isa.IntReg(1), 0x400)
	b.store(isa.IntReg(2), 0x400) // overwrite unread
	if v := engineVerdict(ace.TrackMemory, b.log, st, isa.FieldImm); v != VerdictSuppressed {
		t.Fatal("faulty dead store should be suppressed under memory tracking")
	}
	b2 := &logBuilder{}
	st2 := b2.store(isa.IntReg(1), 0x500)
	b2.load(isa.IntReg(7), 0x500)
	b2.branch(isa.IntReg(7))
	if v := engineVerdict(ace.TrackMemory, b2.log, st2, isa.FieldImm); v != VerdictSignalled {
		t.Fatal("faulty live store consumed by control must signal")
	}
}

func TestEngineLatentAtWindowEnd(t *testing.T) {
	b := &logBuilder{}
	f := b.alu(isa.IntReg(5), isa.IntReg(1), isa.RegNone)
	b.nop() // log ends with π still live
	if v := engineVerdict(ace.TrackRegFile, b.log, f, isa.FieldImm); v != VerdictLatent {
		t.Fatalf("live-out π verdict = %v, want latent", v)
	}
}

func TestEngineWrongPathSuppressed(t *testing.T) {
	b := &logBuilder{}
	wp := b.add(isa.Inst{Class: isa.ClassALU, Dest: isa.IntReg(5), Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone, WrongPath: true})
	if v := engineVerdict(ace.TrackCommit, b.log, wp, isa.FieldImm); v != VerdictSuppressed {
		t.Fatal("wrong-path instruction must be suppressed at commit")
	}
}

func TestEngineProcessPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range fault index did not panic")
		}
	}()
	NewEngine(ace.TrackCommit).Process(nil, 0, isa.FieldImm)
}

func TestVerdictString(t *testing.T) {
	if VerdictSuppressed.String() != "suppressed" ||
		VerdictSignalled.String() != "signalled" ||
		VerdictLatent.String() != "latent" {
		t.Error("verdict names wrong")
	}
	if Verdict(9).String() == "" {
		t.Error("unknown verdict should render")
	}
}
