package workload

import (
	"fmt"
	"strconv"
	"strings"

	"softerror/internal/isa"
	"softerror/internal/rng"
)

// Replay is a pipeline Source that replays a fixed instruction sequence in
// a loop — a hand-written kernel, a parsed program (ParseProgram), or a
// stream captured from elsewhere. It stamps fresh sequence numbers each
// iteration, so the pipeline sees an infinite dynamic stream, the way a
// loop kernel executes.
type Replay struct {
	body  []isa.Inst
	idx   int
	seq   uint64
	pc    uint64
	wrong *rng.Stream
}

// NewReplay builds a replay source over the given instruction body. The
// body must be non-empty; Seq/PC fields in it are ignored (re-stamped).
func NewReplay(body []isa.Inst, seed uint64) (*Replay, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("workload: empty replay body")
	}
	return &Replay{
		body:  body,
		pc:    0x4000_0000,
		wrong: rng.New(seed, 0x4e94).Derive("replay-wrong"),
	}, nil
}

// MustParseReplay parses a kernel program and wraps it in a Replay; it
// panics on parse errors (intended for tests and examples with literal
// programs).
func MustParseReplay(program string, seed uint64) *Replay {
	body, err := ParseProgram(program)
	if err != nil {
		panic(err)
	}
	r, err := NewReplay(body, seed)
	if err != nil {
		panic(err)
	}
	return r
}

// Next implements pipeline.Source.
func (r *Replay) Next() isa.Inst {
	in := r.body[r.idx]
	r.idx = (r.idx + 1) % len(r.body)
	in.Seq = r.seq
	in.PC = r.pc
	r.seq++
	r.pc += 4
	return in
}

// NextWrong implements pipeline.Source with simple synthetic wrong-path
// fill (the replayed program itself defines only the correct path).
func (r *Replay) NextWrong() isa.Inst {
	in := isa.Inst{
		Seq: r.seq, PC: r.pc, WrongPath: true,
		Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		PredGuard: isa.RegNone,
	}
	r.seq++
	r.pc += 4
	if r.wrong.Bool(0.5) {
		in.Class = isa.ClassALU
		in.Dest = isa.IntReg(1 + r.wrong.Intn(30))
		in.Src1 = isa.IntReg(1 + r.wrong.Intn(30))
	} else {
		in.Class = isa.ClassNop
	}
	return in
}

// ParseProgram parses the kernel mini-language into an instruction body.
// One instruction per line; '#' starts a comment; blank lines are skipped.
//
//	alu r5 r1 r2          # r5 = f(r1, r2); "-" for an absent operand
//	cmp p3 r1 r2          # compare writing predicate p3
//	load r6 r1 0x1000     # r6 = mem[0x1000], address base r1
//	store r1 r2 0x1000    # mem[0x1000] = r1, address base r2
//	prefetch r1 0x2000
//	nop | hint
//	br r1 taken           # conditional branch; add "mispred" for wrong path
//	br p3 taken mispred
//	call | ret
//	(p3) alu r5 r1 -      # predicated, guard true
//	(p3!) alu r5 r1 -     # predicated, guard evaluated false
//
// Call depth is tracked so the deadness analysis can classify return-dead
// locals; ret below depth zero is an error.
func ParseProgram(text string) ([]isa.Inst, error) {
	var out []isa.Inst
	depth := 0
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		in := isa.Inst{
			Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
			PredGuard: isa.RegNone,
		}
		// Optional guard prefix.
		if strings.HasPrefix(fields[0], "(") {
			g := strings.TrimPrefix(strings.TrimSuffix(fields[0], ")"), "(")
			if strings.HasSuffix(g, "!") {
				in.PredFalse = true
				g = strings.TrimSuffix(g, "!")
			}
			pr, err := parseReg(g)
			if err != nil || !pr.IsPred() {
				return nil, fmt.Errorf("line %d: bad guard %q", lineNo+1, fields[0])
			}
			in.PredGuard = pr
			fields = fields[1:]
			if len(fields) == 0 {
				return nil, fmt.Errorf("line %d: guard without instruction", lineNo+1)
			}
		}
		op := fields[0]
		args := fields[1:]
		var err error
		switch op {
		case "alu", "fpu", "cmp":
			in.Class = isa.ClassALU
			if op == "fpu" {
				in.Class = isa.ClassFPU
			}
			if len(args) < 1 {
				return nil, fmt.Errorf("line %d: %s needs a destination", lineNo+1, op)
			}
			if in.Dest, err = parseReg(args[0]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			if op == "cmp" && !in.Dest.IsPred() {
				return nil, fmt.Errorf("line %d: cmp must write a predicate", lineNo+1)
			}
			if len(args) > 1 {
				if in.Src1, err = parseOperand(args[1]); err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
				}
			}
			if len(args) > 2 {
				if in.Src2, err = parseOperand(args[2]); err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
				}
			}
		case "load":
			in.Class = isa.ClassLoad
			if len(args) != 3 {
				return nil, fmt.Errorf("line %d: load needs dest, base, addr", lineNo+1)
			}
			if in.Dest, err = parseReg(args[0]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			if in.Src1, err = parseOperand(args[1]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			if in.Addr, err = parseAddr(args[2]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			in.MemSize = 8
		case "store":
			in.Class = isa.ClassStore
			if len(args) != 3 {
				return nil, fmt.Errorf("line %d: store needs value, base, addr", lineNo+1)
			}
			if in.Src1, err = parseReg(args[0]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			if in.Src2, err = parseOperand(args[1]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			if in.Addr, err = parseAddr(args[2]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			in.MemSize = 8
		case "prefetch":
			in.Class = isa.ClassPrefetch
			if len(args) != 2 {
				return nil, fmt.Errorf("line %d: prefetch needs base, addr", lineNo+1)
			}
			if in.Src1, err = parseReg(args[0]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			if in.Addr, err = parseAddr(args[1]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			in.MemSize = 64
		case "nop":
			in.Class = isa.ClassNop
		case "hint":
			in.Class = isa.ClassHint
		case "br":
			in.Class = isa.ClassBranch
			if len(args) < 1 {
				return nil, fmt.Errorf("line %d: br needs a source", lineNo+1)
			}
			if in.Src1, err = parseReg(args[0]); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			for _, a := range args[1:] {
				switch a {
				case "taken":
					in.Taken = true
				case "mispred":
					in.Mispred = true
				default:
					return nil, fmt.Errorf("line %d: unknown branch attribute %q", lineNo+1, a)
				}
			}
		case "call":
			in.Class = isa.ClassCall
			in.Taken = true
			depth++
		case "ret":
			in.Class = isa.ClassReturn
			in.Taken = true
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("line %d: ret below depth zero", lineNo+1)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown opcode %q", lineNo+1, op)
		}
		in.CallDepth = uint8(depth)
		out = append(out, in)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty program")
	}
	return out, nil
}

func parseOperand(s string) (isa.Reg, error) {
	if s == "-" {
		return isa.RegNone, nil
	}
	return parseReg(s)
}

func parseReg(s string) (isa.Reg, error) {
	if len(s) < 2 {
		return isa.RegNone, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return isa.RegNone, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		if n < 0 || n >= isa.NumIntRegs {
			return isa.RegNone, fmt.Errorf("integer register %q out of range", s)
		}
		return isa.IntReg(n), nil
	case 'f':
		if n < 0 || n >= isa.NumFPRegs {
			return isa.RegNone, fmt.Errorf("fp register %q out of range", s)
		}
		return isa.FPReg(n), nil
	case 'p':
		if n < 0 || n >= isa.NumPredRegs {
			return isa.RegNone, fmt.Errorf("predicate register %q out of range", s)
		}
		return isa.PredReg(n), nil
	default:
		return isa.RegNone, fmt.Errorf("bad register %q", s)
	}
}

func parseAddr(s string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
	if err != nil {
		v, err = strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad address %q", s)
		}
	}
	return v, nil
}
