package pibit

import (
	"math"
	"testing"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// TestPETStructureMatchesAnalyticCoverage drives the real PET buffer (the
// FIFO-plus-scan hardware structure) with every first-level-dead register
// write of a real commit stream and compares its suppression rate against
// the analytic coverage model used by the Figure 2/3 drivers (the fraction
// of FDD writes whose overwrite distance fits the buffer). The two are
// different code paths over the same definition and must agree.
func TestPETStructureMatchesAnalyticCoverage(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	p := pipeline.MustNew(pipeline.DefaultConfig(), gen, mem)
	tr := p.Run(25000, true)
	dead := ace.AnalyzeDeadness(tr.CommitLog)

	for _, entries := range []int{64, 256, 512, 2048} {
		eng := &Engine{Level: ace.TrackPET, PETEntries: entries, Window: DefaultWindow}
		var total, suppressed int
		for i := range tr.CommitLog {
			in := &tr.CommitLog[i]
			if dead.Of(in) != ace.CatFDDReg {
				continue
			}
			total++
			if eng.Process(tr.CommitLog, i, 0) == VerdictSuppressed {
				suppressed++
			}
		}
		if total == 0 {
			t.Fatal("no FDD-reg instructions in the stream")
		}
		structural := float64(suppressed) / float64(total)
		analytic := ace.PETCoverage(dead.FDDRegDist, entries)
		// Small slack: instructions whose overwrite falls beyond the end
		// of the recorded log drain without proof in the structural path.
		if math.Abs(structural-analytic) > 0.01 {
			t.Errorf("PET %d entries: structural coverage %.4f, analytic %.4f",
				entries, structural, analytic)
		}
	}
}

// TestEngineAgreesWithTrackAssignments drives the dataflow engine at each
// level over every dead instruction and checks the verdicts against the
// category→mechanism map (ace.Category.Track) that the analytic model uses:
// a category's designated level (and everything above) must suppress or
// stay latent; the level just below must not fully cover it.
func TestEngineAgreesWithTrackAssignments(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	p := pipeline.MustNew(pipeline.DefaultConfig(), gen, mem)
	tr := p.Run(25000, true)
	dead := ace.AnalyzeDeadness(tr.CommitLog)

	checkCat := func(cat ace.Category) {
		lvl := cat.Track()
		eng := &Engine{Level: lvl, PETEntries: 512, Window: DefaultWindow}
		var signalled, total int
		for i := range tr.CommitLog {
			in := &tr.CommitLog[i]
			if dead.Of(in) != cat {
				continue
			}
			total++
			// A non-dest field strike: un-ACE ground truth for every
			// dead/neutral/squashable category.
			if eng.Process(tr.CommitLog, i, 5 /* imm field */) == VerdictSignalled {
				signalled++
			}
		}
		if total == 0 {
			t.Fatalf("category %v not present in stream", cat)
		}
		if frac := float64(signalled) / float64(total); frac > 0.02 {
			t.Errorf("category %v: designated level %v still signals %.1f%%",
				cat, lvl, 100*frac)
		}
	}
	for _, cat := range []ace.Category{
		ace.CatPredFalse, ace.CatNeutral, ace.CatFDDReg, ace.CatFDDRet,
		ace.CatTDDReg, ace.CatFDDMem, ace.CatTDDMem,
	} {
		checkCat(cat)
	}
}
