// Command traceview analyses a previously saved simulation trace
// (cmd/sersim -savetrace) without re-running the machine model: the full
// AVF decomposition of the instruction queue, front-end buffer, store
// buffer and register files, plus optional fault-injection campaigns.
//
//	sersim -bench mcf -savetrace mcf.trace
//	traceview mcf.trace
//	traceview -strikes 50000 mcf.trace
package main

import (
	"fmt"
	"os"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/cli"
	"softerror/internal/fault"
	"softerror/internal/report"
	"softerror/internal/tracefile"
)

func main() {
	cli.Main("traceview", run)
}

func run(args []string) error {
	d := cli.NewDriver("traceview", "traceview [flags] <file.trace>")
	fs := d.FS
	strikes := fs.Int("strikes", 0, "if > 0, run a fault-injection campaign with this many strikes")
	seed := fs.Uint64("seed", 1, "fault-injection seed")
	if err := d.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return cli.Usagef("exactly one trace file required")
	}
	tr, err := tracefile.Load(fs.Arg(0))
	if err != nil {
		return err
	}

	dead := ace.AnalyzeDeadness(tr.CommitLog)
	iq := ace.AnalyzeWith(tr, dead)
	fe := ace.AnalyzeFrontEnd(tr, dead)
	sb := ace.AnalyzeStoreBuffer(tr, dead)
	rf := ace.AnalyzeRegFile(tr, dead)

	fmt.Printf("trace: %d commits over %d cycles (IPC %.3f), %d IQ residencies\n\n",
		tr.Commits, tr.Cycles, tr.IPC(), len(tr.Residencies))

	t := report.New("per-structure vulnerability",
		"structure", "SDC AVF", "DUE AVF", "false DUE")
	t.AddRow("instruction queue", report.Pct(iq.SDCAVF()), report.Pct(iq.DUEAVF()), report.Pct(iq.FalseDUEAVF()))
	t.AddRow("front-end buffer", report.Pct(fe.SDCAVF()), report.Pct(fe.DUEAVF()), report.Pct(fe.FalseDUEAVF()))
	t.AddRow("store buffer", report.Pct(sb.SDCAVF()), report.Pct(sb.DUEAVF()), report.Pct(sb.FalseDUEAVF()))
	t.AddRow("register files", report.Pct(rf.SDCAVF()), report.Pct(rf.DUEAVF()), report.Pct(rf.FalseDUEAVF()))
	t.Fprint(os.Stdout)

	if *strikes > 0 {
		fmt.Println()
		inj := fault.NewInjector(tr, dead)
		ct := report.New(fmt.Sprintf("IQ fault campaign (%d strikes)", *strikes),
			"configuration", "SDC", "false DUE", "true DUE", "suppressed")
		configs := []struct {
			label string
			cfg   fault.Config
		}{
			{"unprotected", fault.Config{Protection: cache.ProtNone}},
			{"parity", fault.Config{Protection: cache.ProtParity, Level: ace.TrackNever}},
			{"parity+pi-storebuf", fault.Config{Protection: cache.ProtParity, Level: ace.TrackStoreBuffer}},
			{"parity+pi-memory", fault.Config{Protection: cache.ProtParity, Level: ace.TrackMemory}},
		}
		for _, c := range configs {
			c.cfg.Strikes = *strikes
			c.cfg.Seed = *seed
			r, err := inj.Run(c.cfg)
			if err != nil {
				return err
			}
			ct.AddRow(c.label,
				report.Pct(r.Frac(fault.OutcomeSDC)),
				report.Pct(r.Frac(fault.OutcomeFalseDUE)),
				report.Pct(r.Frac(fault.OutcomeTrueDUE)),
				report.Pct(r.Frac(fault.OutcomeSuppressed)))
		}
		ct.Fprint(os.Stdout)
	}
	return nil
}
