package server

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"softerror/internal/core"
	"softerror/internal/spec"
)

// TestNormalizeRejectsNegativeKnobs: the eval surface mirrors cmd/repro's
// flags, where every numeric knob is a count or a rate — negative or
// non-finite values must be refused at normalisation, not fed to the
// engine (a negative strike count reaches make([]T, n) paths downstream).
func TestNormalizeRejectsNegativeKnobs(t *testing.T) {
	cases := []struct {
		name string
		req  EvalRequest
	}{
		{"negative pet", EvalRequest{Experiment: "fig3", PET: -1}},
		{"negative simpoints", EvalRequest{Experiment: "table1", SimPoints: -4}},
		{"negative strikes", EvalRequest{Experiment: "outcomes", Strikes: -50}},
		{"negative rawfit", EvalRequest{Experiment: "fig4", RawFIT: -0.001}},
		{"nan rawfit", EvalRequest{Experiment: "fig4", RawFIT: math.NaN()}},
		{"inf rawfit", EvalRequest{Experiment: "fig4", RawFIT: math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := tc.req.normalize(); err == nil {
			t.Errorf("%s: normalize accepted %+v", tc.name, tc.req)
		}
	}
}

// TestEvalFingerprintWellDefined: spelling out the documented defaults must
// address the same content as leaving the fields zero — otherwise the cache
// stores the same bytes twice and the CLI/server identity splits.
func TestEvalFingerprintWellDefined(t *testing.T) {
	implicit := EvalRequest{Experiment: "table1"}
	explicit := EvalRequest{
		Experiment: "table1",
		Commits:    core.DefaultCommits,
		PET:        512,
		RawFIT:     0.001,
		SimPoints:  4,
		Strikes:    50_000,
		Seed:       1,
	}
	a, err := implicit.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("default-valued request fingerprints differ: %s vs %s", a, b)
	}
	if len(a) != 64 || strings.Trim(a, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint %q is not a SHA-256 hex digest", a)
	}
}

// TestEvalFingerprintInjective builds a family of normalized requests that
// are pairwise distinct — including cross-field traps where the same number
// moves between knobs — and checks no two share a content address.
func TestEvalFingerprintInjective(t *testing.T) {
	var reqs []EvalRequest
	for _, exp := range []string{"table1", "fig2", "fig3", "fig4", "breakdown"} {
		reqs = append(reqs, EvalRequest{Experiment: exp})
	}
	for i := uint64(1); i <= 8; i++ {
		reqs = append(reqs, EvalRequest{Experiment: "table1", Commits: 1000 * i})
	}
	reqs = append(reqs,
		EvalRequest{Experiment: "table1", CSV: true},
		EvalRequest{Experiment: "table1", Benches: []string{"gzip-graphic"}},
		EvalRequest{Experiment: "table1", Benches: []string{"ammp"}},
		EvalRequest{Experiment: "table1", Benches: []string{"gzip-graphic", "ammp"}},
		// The same scalar in different knobs must not collide.
		EvalRequest{Experiment: "outcomes", Strikes: 7},
		EvalRequest{Experiment: "outcomes", Seed: 7},
		EvalRequest{Experiment: "fig3", PET: 7},
		EvalRequest{Experiment: "fig3", SimPoints: 7},
	)
	seen := make(map[string]int)
	for i, r := range reqs {
		fp, err := r.Fingerprint()
		if err != nil {
			t.Fatalf("request %d (%+v): %v", i, r, err)
		}
		if j, dup := seen[fp]; dup {
			t.Fatalf("requests %d and %d share fingerprint %s:\n  %+v\n  %+v",
				j, i, fp, reqs[j], reqs[i])
		}
		seen[fp] = i
	}
}

// TestSuitePoolEvictionUnderConcurrentGet: a suite evicted from the pool
// while other goroutines still hold it must keep working — eviction drops
// the pool's reference, never the suite's own memo — and its results must
// match a fresh suite's exactly.
func TestSuitePoolEvictionUnderConcurrentGet(t *testing.T) {
	bench, _ := spec.ByName("gzip-graphic")
	pool := newSuitePool(context.Background(), 1, 1)

	held := pool.get(testCommits, []spec.Benchmark{bench}, []string{bench.Name})
	var wg sync.WaitGroup
	results := make([]*core.Result, 4)
	errs := make([]error, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = held.Result(bench, core.PolicyBaseline)
		}(i)
	}
	// Evict the held suite by cycling distinct rosters through a max-1 pool
	// while the holders are (possibly) still simulating.
	for _, name := range []string{"ammp", "mcf", "equake"} {
		b, _ := spec.ByName(name)
		pool.get(testCommits, []spec.Benchmark{b}, []string{name})
	}
	wg.Wait()

	want, err := core.NewSuite([]spec.Benchmark{bench}, testCommits).Result(bench, core.PolicyBaseline)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range results {
		if errs[i] != nil {
			t.Fatalf("holder %d errored after eviction: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("holder %d result diverged after eviction:\n got %+v\nwant %+v", i, *got, *want)
		}
	}
	if s := pool.get(testCommits, []spec.Benchmark{bench}, []string{bench.Name}); s == held {
		t.Fatalf("pool returned the evicted suite instance; want a rebuild")
	}
}

// TestSuitePoolReusesSuite pins the memoisation the pool exists for.
func TestSuitePoolReusesSuite(t *testing.T) {
	bench, _ := spec.ByName("gzip-graphic")
	pool := newSuitePool(context.Background(), 1, 4)
	a := pool.get(testCommits, []spec.Benchmark{bench}, []string{bench.Name})
	b := pool.get(testCommits, []spec.Benchmark{bench}, []string{bench.Name})
	if a != b {
		t.Fatal("pool rebuilt a resident suite")
	}
}

// FuzzEvalRequest drives arbitrary JSON through the request surface:
// decode, normalize, fingerprint. Accepted requests must normalise to
// in-range knobs and a deterministic SHA-256 content address; everything
// else must be a clean error, never a panic.
func FuzzEvalRequest(f *testing.F) {
	f.Add([]byte(`{"experiment":"table1"}`))
	f.Add([]byte(`{"experiment":"fig2","benches":["gzip-graphic","ammp"],"commits":8000,"pet":64}`))
	f.Add([]byte(`{"experiment":"all","csv":true,"seed":42}`))
	f.Add([]byte(`{"experiment":"outcomes","strikes":-1}`))
	f.Add([]byte(`{"experiment":"nope"}`))
	f.Add([]byte(`{"benches":["not-a-benchmark"]}`))
	f.Add([]byte(`{"experiment":"fig4","rawfit":1e308}`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeEvalRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		e, err := req.normalize()
		if err != nil {
			return
		}
		if e.pet < 0 || e.simPoints < 0 || e.strikes < 0 ||
			e.rawFIT < 0 || math.IsNaN(e.rawFIT) || math.IsInf(e.rawFIT, 0) {
			t.Fatalf("normalize accepted out-of-range knobs: %+v", e)
		}
		if e.commits == 0 || e.seed == 0 || e.pet == 0 || e.simPoints == 0 || e.strikes == 0 {
			t.Fatalf("normalize left a knob at zero (default not applied): %+v", e)
		}
		if len(e.benches) == 0 {
			t.Fatalf("normalize produced an empty roster: %+v", e)
		}
		fp := e.fingerprint()
		if len(fp) != 64 || strings.Trim(fp, "0123456789abcdef") != "" {
			t.Fatalf("fingerprint %q is not a SHA-256 hex digest", fp)
		}
		if again := e.fingerprint(); again != fp {
			t.Fatalf("fingerprint not deterministic: %s vs %s", fp, again)
		}
	})
}
