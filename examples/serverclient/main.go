// Serverclient runs seratd's engine end to end in one process: it starts
// the evaluation service on an ephemeral port, then plays a client
// against it — an evaluation computed once and then served from cache
// byte-identically, a sweep job followed live over the ndjson event
// stream, the finished grid fetched as CSV, and a metrics snapshot.
//
//	go run ./examples/serverclient
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"softerror/internal/server"
)

func main() {
	// The service is an http.Handler; serve it wherever you like.
	srv := server.New(server.Config{Workers: 4})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("seratd listening on %s\n\n", base)

	// 1. An evaluation: the first request simulates, the second is served
	// from the content-addressed cache with the same bytes.
	eval := `{"experiment":"table1","benches":["gzip-graphic","ammp"],"commits":8000}`
	first, hdr1 := post(base+"/v1/eval", eval)
	second, hdr2 := post(base+"/v1/eval", eval)
	fmt.Printf("eval #1: X-Cache=%s (%d bytes)\n", hdr1, len(first))
	fmt.Printf("eval #2: X-Cache=%s, byte-identical=%v\n\n", hdr2, bytes.Equal(first, second))
	fmt.Println(strings.TrimRight(string(second), "\n"))
	fmt.Println()

	// 2. A sweep job, watched live: submit the grid, then follow the event
	// stream until the terminal transition.
	grid := `{"benches":["mcf"],"policies":["baseline","squash-l1","throttle-l1"],"iqsizes":[16,64],"commits":8000}`
	accBody, _ := post(base+"/v1/sweep", grid)
	var acc struct {
		ID    string `json:"id"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal(accBody, &acc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep accepted: %s (%d cells)\n", acc.ID, acc.Total)
	resp, err := http.Get(base + "/v1/jobs/" + acc.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fmt.Printf("  event: %s\n", sc.Text())
	}
	resp.Body.Close()

	// 3. The finished grid as CSV — the same bytes cmd/sweep would write.
	resp, err = http.Get(base + "/v1/jobs/" + acc.ID + "/csv")
	if err != nil {
		log.Fatal(err)
	}
	csv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\n%s\n", csv)

	// 4. A few metrics.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	for _, k := range []string{"requests", "cache_hits", "cache_misses", "jobs_done", "mcycles_simulated"} {
		fmt.Printf("metrics: %-18s %v\n", k, m[k])
	}

	// 5. Drain before exit: no accepted work is dropped.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	hs.Shutdown(ctx)
	fmt.Println("\ndrained cleanly")
}

// post sends a JSON body and returns the response body and X-Cache header.
func post(url, body string) ([]byte, string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("%s: %s: %s", url, resp.Status, b)
	}
	return b, resp.Header.Get("X-Cache")
}
