// Package chip composes structure-level vulnerability measurements into
// processor-level SDC and DUE rates — the §2 framework of the paper:
//
//	SDC rate = Σ_d raw_d × SDC-AVF_d        DUE rate = Σ_d raw_d × DUE-AVF_d
//
// A Budget lists the vulnerable structures with their bit counts, measured
// AVFs, and chosen protection; Evaluate produces the chip's rates and
// checks them against vendor-style MTTF targets (the paper cites Bossen's
// industry targets of ~1000-year SDC and 10-25-year DUE MTTFs). Plan
// searches the protection design space for the cheapest mix that meets the
// targets, where "cost" is the classic area proxy: parity adds ~3% storage
// and ECC ~12%, duplication 100%.
package chip

import (
	"fmt"
	"sort"

	"softerror/internal/cache"
	"softerror/internal/serate"
)

// Structure is one vulnerable device population on the chip.
type Structure struct {
	Name string
	// Bits is the structure's storage size in bits.
	Bits float64
	// SDCAVF and FalseDUEAVF are the structure's measured vulnerability
	// factors: SDCAVF is the ACE fraction (a strike changes the outcome),
	// FalseDUEAVF the read-but-un-ACE fraction that detection would flag.
	SDCAVF      float64
	FalseDUEAVF float64
	// Protection is the applied scheme.
	Protection cache.Protection
	// Tracking marks π-bit false-DUE coverage deployed on top of parity;
	// it scales the structure's false-DUE contribution by (1 - Tracking).
	Tracking float64
}

// Contribution returns the structure's SDC and DUE FIT rates at the given
// raw per-bit rate.
func (s *Structure) Contribution(rawFITPerBit float64) (sdc, due serate.FIT) {
	raw := serate.FIT(rawFITPerBit * s.Bits)
	switch s.Protection {
	case cache.ProtNone:
		return serate.FIT(float64(raw) * s.SDCAVF), 0
	case cache.ProtParity:
		falseDUE := s.FalseDUEAVF * (1 - s.Tracking)
		return 0, serate.FIT(float64(raw) * (s.SDCAVF + falseDUE))
	default: // ECC corrects single-bit faults
		return 0, 0
	}
}

// areaOverhead is the storage-cost proxy of each protection scheme.
func areaOverhead(p cache.Protection) float64 {
	switch p {
	case cache.ProtParity:
		return 0.03
	case cache.ProtECC:
		return 0.12
	default:
		return 0
	}
}

// Budget is the chip's structure inventory plus the environment.
type Budget struct {
	Structures []Structure
	// RawFITPerBit is the technology's raw soft-error rate per bit.
	RawFITPerBit float64
	// SDCTargetYears and DUETargetYears are the vendor MTTF goals.
	SDCTargetYears float64
	DUETargetYears float64
}

// Evaluation is the chip-level outcome.
type Evaluation struct {
	SDC serate.FIT
	DUE serate.FIT
	// MeetsSDC and MeetsDUE report target compliance.
	MeetsSDC bool
	MeetsDUE bool
	// AreaCost is the summed protection storage overhead, weighted by
	// structure size and normalised to total protected bits.
	AreaCost float64
}

// Evaluate composes the budget.
func (b *Budget) Evaluate() (Evaluation, error) {
	if b.RawFITPerBit <= 0 {
		return Evaluation{}, fmt.Errorf("chip: RawFITPerBit must be positive")
	}
	if len(b.Structures) == 0 {
		return Evaluation{}, fmt.Errorf("chip: no structures")
	}
	var ev Evaluation
	var totalBits, costBits float64
	for i := range b.Structures {
		s := &b.Structures[i]
		if s.Bits <= 0 {
			return Evaluation{}, fmt.Errorf("chip: structure %q has no bits", s.Name)
		}
		if s.Tracking < 0 || s.Tracking > 1 {
			return Evaluation{}, fmt.Errorf("chip: structure %q tracking out of [0,1]", s.Name)
		}
		sdc, due := s.Contribution(b.RawFITPerBit)
		ev.SDC += sdc
		ev.DUE += due
		totalBits += s.Bits
		costBits += s.Bits * areaOverhead(s.Protection)
	}
	if totalBits > 0 {
		ev.AreaCost = costBits / totalBits
	}
	ev.MeetsSDC = b.SDCTargetYears <= 0 || ev.SDC.MTTFYears() >= b.SDCTargetYears
	ev.MeetsDUE = b.DUETargetYears <= 0 || ev.DUE.MTTFYears() >= b.DUETargetYears
	return ev, nil
}

// Plan searches the protection design space — every structure may be left
// unprotected, parity-protected (optionally with full π-bit tracking), or
// ECC-corrected — and returns the cheapest assignment (by AreaCost, ties
// broken by lower total FIT) that meets both targets. It returns an error
// when no assignment does.
func (b *Budget) Plan() (*Budget, Evaluation, error) {
	options := []struct {
		prot     cache.Protection
		tracking float64
	}{
		{cache.ProtNone, 0},
		{cache.ProtParity, 0},
		{cache.ProtParity, 1},
		{cache.ProtECC, 0},
	}
	n := len(b.Structures)
	if n > 12 {
		return nil, Evaluation{}, fmt.Errorf("chip: plan supports up to 12 structures, got %d", n)
	}
	assign := make([]int, n)
	var best *Budget
	var bestEv Evaluation
	var try func(i int) error
	try = func(i int) error {
		if i == n {
			cand := *b
			cand.Structures = append([]Structure(nil), b.Structures...)
			for k, a := range assign {
				cand.Structures[k].Protection = options[a].prot
				cand.Structures[k].Tracking = options[a].tracking
			}
			ev, err := cand.Evaluate()
			if err != nil {
				return err
			}
			if !ev.MeetsSDC || !ev.MeetsDUE {
				return nil
			}
			if best == nil || better(ev, bestEv) {
				best, bestEv = &cand, ev
			}
			return nil
		}
		for a := range options {
			assign[i] = a
			if err := try(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := try(0); err != nil {
		return nil, Evaluation{}, err
	}
	if best == nil {
		return nil, Evaluation{}, fmt.Errorf("chip: no protection mix meets the targets")
	}
	return best, bestEv, nil
}

func better(a, b Evaluation) bool {
	if a.AreaCost != b.AreaCost {
		return a.AreaCost < b.AreaCost
	}
	return float64(a.SDC+a.DUE) < float64(b.SDC+b.DUE)
}

// Describe renders the budget's per-structure assignments, sorted by
// contribution, for reports.
func (b *Budget) Describe() []string {
	type line struct {
		text string
		fit  float64
	}
	var lines []line
	for i := range b.Structures {
		s := &b.Structures[i]
		sdc, due := s.Contribution(b.RawFITPerBit)
		scheme := s.Protection.String()
		if s.Tracking > 0 {
			scheme += fmt.Sprintf("+tracking(%.0f%%)", 100*s.Tracking)
		}
		lines = append(lines, line{
			text: fmt.Sprintf("%s: %s, SDC %.3g FIT, DUE %.3g FIT",
				s.Name, scheme, float64(sdc), float64(due)),
			fit: float64(sdc + due),
		})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].fit > lines[j].fit })
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = l.text
	}
	return out
}
