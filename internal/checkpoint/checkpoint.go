// Package checkpoint persists the progress of long bulk campaigns so that a
// crash, a SIGINT, or a poisoned cell costs the remaining work, never the
// completed work. A checkpoint is a snapshot of the campaign's
// completed-cell bitmap plus the partial results (tallies, grid rows) of
// those cells, written with the temp-file + atomic-rename discipline so the
// file on disk is always a complete, parseable snapshot.
//
// Because every campaign in this repository is deterministic by cell index,
// resuming from a snapshot and re-running only the missing indices produces
// artefacts byte-identical to an uninterrupted run — the property the
// determinism tests pin. A fingerprint of the campaign's full
// parameterisation is stored in the snapshot and validated on load, so a
// checkpoint can never silently resume a different campaign.
package checkpoint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sync"
)

// Version is the snapshot format version; snapshots with a different
// version are refused on load. Version 2 switched Fingerprint from 64-bit
// FNV-1a to SHA-256, so every fingerprint embedded in a snapshot changed.
const Version = 2

// DefaultInterval is how many newly completed cells trigger an automatic
// Save from Put.
const DefaultInterval = 16

// Bitmap is a fixed-size bitset over cell indices.
type Bitmap struct {
	N     int      `json:"n"`
	Words []uint64 `json:"words"`
}

// NewBitmap returns an empty bitmap over [0, n).
func NewBitmap(n int) *Bitmap {
	return &Bitmap{N: n, Words: make([]uint64, (n+63)/64)}
}

// Set marks index i.
func (b *Bitmap) Set(i int) { b.Words[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether index i is marked; out-of-range indices are unmarked.
func (b *Bitmap) Get(i int) bool {
	if b == nil || i < 0 || i >= b.N {
		return false
	}
	return b.Words[i>>6]>>(uint(i)&63)&1 == 1
}

// Count returns the number of marked indices.
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	n := 0
	for _, w := range b.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// valid checks the bitmap's internal consistency against a cell count:
// right geometry and no set bits beyond N. A snapshot carrying marks past
// the cell space would make CountDone exceed Total and resume would skip
// cells it never ran, so such bitmaps are refused wholesale.
func (b *Bitmap) valid(total int) bool {
	if b == nil || b.N != total || len(b.Words) != (total+63)/64 {
		return false
	}
	if tail := uint(total) & 63; tail != 0 {
		if b.Words[len(b.Words)-1]&^(1<<tail-1) != 0 {
			return false
		}
	}
	return true
}

// snapshot is the on-disk JSON layout.
type snapshot[T any] struct {
	Version     int     `json:"version"`
	Kind        string  `json:"kind"`
	Fingerprint string  `json:"fingerprint"`
	Done        *Bitmap `json:"done"`
	Cells       []T     `json:"cells"`
}

// File is a checkpoint of a campaign over a fixed cell space. The zero
// value is not useful; build Files with New, Load or Open. A nil *File is a
// valid no-op sink, so drivers can thread an optional checkpoint without
// branching. All methods are safe for concurrent use.
type File[T any] struct {
	path        string
	kind        string
	fingerprint string

	mu        sync.Mutex
	done      *Bitmap
	cells     []T
	interval  int
	sinceSave int
}

// New returns a fresh checkpoint bound to path; nothing is written until
// Put or Save. kind names the campaign family ("sweep", "outcomes", ...)
// and fingerprint its exact parameterisation — both are validated on load.
func New[T any](path, kind, fingerprint string, total int) *File[T] {
	return &File[T]{
		path:        path,
		kind:        kind,
		fingerprint: fingerprint,
		done:        NewBitmap(total),
		cells:       make([]T, total),
		interval:    DefaultInterval,
	}
}

// Load reads an existing snapshot, refusing version, kind, fingerprint or
// geometry mismatches: a checkpoint resumes exactly the campaign that wrote
// it, or nothing.
func Load[T any](path, kind, fingerprint string, total int) (*File[T], error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot[T]
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("checkpoint: parse %s: %w", path, err)
	}
	switch {
	case s.Version == 1:
		// v1 snapshots embed FNV-1a fingerprints, so no v2 fingerprint can
		// ever match one; name the migration rather than the bare numbers.
		return nil, fmt.Errorf("checkpoint: %s uses checkpoint format v1, need v2 (fingerprints moved to SHA-256, so v1 progress cannot be validated); re-run without -resume to start fresh", path)
	case s.Version != Version:
		return nil, fmt.Errorf("checkpoint: %s has format version %d, want %d", path, s.Version, Version)
	case s.Kind != kind:
		return nil, fmt.Errorf("checkpoint: %s is a %q snapshot, want %q", path, s.Kind, kind)
	case s.Fingerprint != fingerprint:
		return nil, fmt.Errorf("checkpoint: %s was written by a different campaign configuration (fingerprint %s, want %s); delete it or rerun with the original flags", path, s.Fingerprint, fingerprint)
	case !s.Done.valid(total) || len(s.Cells) != total:
		return nil, fmt.Errorf("checkpoint: %s cell geometry does not match the campaign (%d cells)", path, total)
	}
	return &File[T]{
		path:        path,
		kind:        kind,
		fingerprint: fingerprint,
		done:        s.Done,
		cells:       s.Cells,
		interval:    DefaultInterval,
	}, nil
}

// Open is the driver-facing constructor: with resume set it loads path if
// it exists (a missing file starts fresh, so the first run of a campaign
// may already pass -resume); without resume it refuses to clobber an
// existing snapshot, forcing the operator to choose between resuming and
// deleting.
func Open[T any](path, kind, fingerprint string, total int, resume bool) (*File[T], error) {
	if resume {
		f, err := Load[T](path, kind, fingerprint, total)
		if err == nil {
			return f, nil
		}
		if os.IsNotExist(err) {
			return New[T](path, kind, fingerprint, total), nil
		}
		return nil, err
	}
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("checkpoint: %s already exists; resume it with -resume or delete it first", path)
	}
	return New[T](path, kind, fingerprint, total), nil
}

// Done reports whether cell i has a recorded result. Nil-safe.
func (f *File[T]) Done(i int) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done.Get(i)
}

// Get returns cell i's recorded result, if present. Nil-safe.
func (f *File[T]) Get(i int) (T, bool) {
	var zero T
	if f == nil {
		return zero, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done.Get(i) {
		return zero, false
	}
	return f.cells[i], true
}

// Put records cell i's result and saves the snapshot if the autosave
// interval has elapsed. Nil-safe no-op.
func (f *File[T]) Put(i int, v T) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cells[i] = v
	f.done.Set(i)
	f.sinceSave++
	if f.interval > 0 && f.sinceSave >= f.interval {
		return f.saveLocked()
	}
	return nil
}

// SetInterval overrides the autosave interval (cells per Save); n <= 0
// disables autosaving, leaving explicit Save calls. Nil-safe.
func (f *File[T]) SetInterval(n int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.interval = n
}

// Save writes the snapshot atomically: marshal, write to a temp file in the
// same directory, fsync, rename. Nil-safe.
func (f *File[T]) Save() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.saveLocked()
}

func (f *File[T]) saveLocked() error {
	data, err := json.Marshal(snapshot[T]{
		Version:     Version,
		Kind:        f.kind,
		Fingerprint: f.fingerprint,
		Done:        f.done,
		Cells:       f.cells,
	})
	if err != nil {
		return fmt.Errorf("checkpoint: marshal: %w", err)
	}
	dir := filepath.Dir(f.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(f.path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), f.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	f.sinceSave = 0
	return nil
}

// CountDone returns the number of completed cells. Nil-safe.
func (f *File[T]) CountDone() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done.Count()
}

// Total returns the campaign's cell count. Nil-safe (zero).
func (f *File[T]) Total() int {
	if f == nil {
		return 0
	}
	return f.done.N
}

// Path returns the snapshot location. Nil-safe (empty).
func (f *File[T]) Path() string {
	if f == nil {
		return ""
	}
	return f.path
}

// Remove deletes the snapshot file — called after a campaign completes so a
// finished run leaves nothing to resume. A missing file is not an error.
// Nil-safe.
func (f *File[T]) Remove() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := os.Remove(f.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Fingerprint hashes a campaign's parameterisation into a stable content
// address for snapshot validation and result caching. Pass every axis that
// changes the meaning of a cell index or its result. The hash is SHA-256
// (64 hex characters): the fingerprint addresses served artefacts, where a
// 64-bit collision would silently serve the wrong bytes.
func Fingerprint(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%v\x00", p)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
