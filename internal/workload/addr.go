package workload

import (
	"softerror/internal/cache"
	"softerror/internal/rng"
)

// Working-set regions. Region sizes are chosen relative to the modelled
// hierarchy (8KB L0, 256KB L1, 10MB L2) so that, after warm-up, an access
// routed to a region hits at the intended level:
//
//	hot   4KB    resident in L0
//	warm  128KB  too big for L0, resident in L1
//	big   4MB    too big for L1, resident in L2
//	huge  1GB    misses the whole hierarchy
//
// A separate small write-only ring provides dead-store addresses, and a
// distant region provides wrong-path (speculative, garbage) addresses.
const (
	hotBase  = 0x0001_0000
	hotSize  = 4 << 10
	warmBase = 0x0100_0000
	warmSize = 128 << 10
	bigBase  = 0x1000_0000
	bigSize  = 4 << 20
	hugeBase = 0x4000_0000
	hugeSize = 1 << 30

	deadBase = 0x0002_0000
	deadSize = 1 << 10

	wrongBase = 0x7000_0000
	wrongSize = 1 << 28

	ioBase = 0xF000_0000
	ioSize = 1 << 12

	accessAlign = 8
)

// addrStream draws data addresses according to the workload's working-set
// mix. Within the hot and warm regions accesses are uniform; within the big
// and huge regions they alternate between striding (streaming array sweeps,
// common in FP codes) and uniform picks.
type addrStream struct {
	s       *rng.Stream
	weights []float64

	stridePtr  uint64
	deadPtr    uint64
	strideBias float64

	// Markov state for miss clustering: real miss streams are bursty (a
	// new data block brings several misses together). region is the last
	// region picked; persist is the probability the next access stays in
	// a non-hot region.
	region  int
	persist float64
}

func newAddrStream(p *Params, s *rng.Stream) addrStream {
	strideBias := 0.3
	if p.FloatingPoint {
		strideBias = 0.7 // FP codes stream through arrays
	}
	return addrStream{
		s:          s,
		weights:    []float64{p.L0Frac, p.L1Frac, p.L2Frac, p.MemFrac},
		stridePtr:  bigBase,
		deadPtr:    deadBase,
		strideBias: strideBias,
		persist:    p.MissBurstiness,
	}
}

func align(a uint64) uint64 { return a &^ (accessAlign - 1) }

// data returns the next data-access address.
func (a *addrStream) data() uint64 {
	// Bursty region selection: once off the hot region, stay there with
	// probability persist, clustering the resulting cache misses.
	if a.region == 0 || !a.s.Bool(a.persist) {
		a.region = a.s.Pick(a.weights)
	}
	switch a.region {
	case 0:
		return align(hotBase + uint64(a.s.Intn(hotSize)))
	case 1:
		return align(warmBase + uint64(a.s.Intn(warmSize)))
	case 2:
		if a.s.Bool(a.strideBias) {
			a.stridePtr += 64
			if a.stridePtr >= bigBase+bigSize {
				a.stridePtr = bigBase
			}
			return align(a.stridePtr)
		}
		return align(bigBase + uint64(a.s.Intn(bigSize)))
	default:
		return align(hugeBase + uint64(a.s.Int63n(hugeSize)))
	}
}

// deadStore returns the next address in the write-only ring. The ring is
// tiny, so every slot is overwritten long before the trace ends, proving
// the stores dead; and it stays L0-resident, so dead stores do not perturb
// the miss behaviour that squash triggers depend on.
func (a *addrStream) deadStore() uint64 {
	addr := a.deadPtr
	a.deadPtr += accessAlign
	if a.deadPtr >= deadBase+deadSize {
		a.deadPtr = deadBase
	}
	return addr
}

// WarmCaches brings the hierarchy to the steady state a long-running
// SimPoint slice would have reached: the big region resident in L2, the
// warm region in L1, and the hot region (plus the dead-store ring) in L0.
// The paper measures 100M-instruction slices after skipping billions of
// instructions; sweeping the working-set regions reproduces that warmth
// without simulating the skip.
func WarmCaches(h *cache.Hierarchy) {
	sweep := func(base, size uint64) {
		for a := base; a < base+size; a += 64 {
			h.Access(a, false)
		}
	}
	sweep(bigBase, bigSize)
	sweep(warmBase, warmSize)
	sweep(deadBase, deadSize)
	sweep(hotBase, hotSize)
	// A second hot pass fixes LRU recency in the innermost level.
	sweep(hotBase, hotSize)
}
