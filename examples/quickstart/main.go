// Quickstart: simulate one workload, print the instruction queue's
// vulnerability profile, and show the MITF arithmetic of §3.2.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"softerror/internal/core"
	"softerror/internal/serate"
	"softerror/internal/workload"
)

func main() {
	// A mid-of-the-road integer workload on the default Itanium®2-like
	// core (6-wide, 64-entry IQ, 8KB/256KB/10MB caches).
	res, err := core.Run(core.Config{
		Workload: workload.Default(),
		Commits:  100_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	rep := res.Report
	fmt.Printf("simulated %d instructions in %d cycles: IPC = %.2f\n\n",
		res.Commits, res.Cycles, res.IPC)

	fmt.Println("instruction-queue vulnerability:")
	fmt.Printf("  SDC AVF (unprotected queue)      %5.1f%%\n", 100*rep.SDCAVF())
	fmt.Printf("  DUE AVF (parity-protected queue) %5.1f%%\n", 100*rep.DUEAVF())
	fmt.Printf("    true DUE  (real errors)        %5.1f%%\n", 100*rep.TrueDUEAVF())
	fmt.Printf("    false DUE (benign, flagged)    %5.1f%%\n", 100*rep.FalseDUEAVF())
	fmt.Printf("  dynamically dead instructions    %5.1f%%\n\n", 100*rep.Dead.DeadFraction())

	// The MITF metric: how many instructions the machine commits, on
	// average, between two errors — at a nominal raw rate of 0.001 FIT
	// per bit for the queue's 64 x 41 payload bits.
	raw := serate.FIT(0.001 * 64 * 41)
	fmt.Println("at 0.001 FIT/bit and 2.5 GHz:")
	fmt.Printf("  SDC MITF = %.3g instructions\n",
		serate.MITFFromAVF(res.IPC, 2.5e9, raw, rep.SDCAVF()))
	fmt.Printf("  DUE MITF = %.3g instructions\n",
		serate.MITFFromAVF(res.IPC, 2.5e9, raw, rep.DUEAVF()))
}
