// Package server implements seratd, the AVF-evaluation service: an HTTP
// front over the evaluation engine with a content-addressed result cache,
// admission-controlled sweep jobs, live progress streaming, and
// expvar-backed metrics.
//
// The service leans on the property the rest of the repository is built
// around: every artefact is a pure, deterministic function of its full
// parameterisation. Requests are therefore fingerprinted exactly like
// checkpoint resume validation (internal/checkpoint), identical requests
// are served from cache with byte-identical bodies, and cache misses run
// on the same resilient worker pool (internal/par) the CLI campaigns use.
package server

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result cache: keys are fingerprints of an
// evaluation's full parameterisation, values the exact bytes served for
// it. Eviction is LRU bounded by the total cached body bytes, so one huge
// artefact cannot pin unbounded memory. Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// cacheEntry is one cached response body plus its content type.
type cacheEntry struct {
	key   string
	ctype string
	body  []byte
}

// NewCache builds a cache bounded to maxBytes of body data; maxBytes <= 0
// disables caching (every Get misses, every Put is dropped).
func NewCache(maxBytes int64) *Cache {
	return &Cache{
		max:   maxBytes,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached body and content type for key, marking the entry
// most recently used. The returned slice is shared — callers must not
// mutate it.
func (c *Cache) Get(key string) (body []byte, ctype string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, "", false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.body, e.ctype, true
}

// Put records the response for key, evicting least-recently-used entries
// until the byte budget holds. Bodies larger than the whole budget are not
// cached at all.
func (c *Cache) Put(key, ctype string, body []byte) {
	if c.max <= 0 || int64(len(body)) > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Deterministic evaluation means a re-computed body is identical;
		// just refresh the recency.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, ctype: ctype, body: body})
	c.size += int64(len(body))
	for c.size > c.max {
		el := c.ll.Back()
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.size -= int64(len(e.body))
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the total cached body bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
