package par

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Policy selects how the engine reacts to a task that fails after all of its
// attempts.
type Policy uint8

const (
	// FailFast cancels the whole campaign on the first task failure — the
	// right posture for correctness gates, where any failed cell invalidates
	// the artefact.
	FailFast Policy = iota
	// Collect isolates failures: the campaign finishes every other index and
	// Run returns an Errors list describing the poisoned cells. Long
	// campaigns lose one cell to a panic instead of hours of work.
	Collect
)

// TaskError describes the failure of one task index after its attempts were
// exhausted. It is the unit entry of Errors and the FailFast return value.
type TaskError struct {
	// Index is the failed task's index in [0, n).
	Index int
	// Attempts is how many times the task was tried.
	Attempts int
	// Err is the final attempt's failure.
	Err error
	// Stack is the goroutine stack captured at the panic site, when the
	// final attempt panicked; nil for ordinary errors.
	Stack []byte
}

func (e *TaskError) Error() string {
	kind := "failed"
	if e.Stack != nil {
		kind = "panicked"
	}
	return fmt.Sprintf("par: task %d %s after %d attempt(s): %v", e.Index, kind, e.Attempts, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// Errors is the full failure set of a Collect campaign, sorted by index.
type Errors []*TaskError

func (es Errors) Error() string {
	if len(es) == 1 {
		return es[0].Error()
	}
	return fmt.Sprintf("par: %d tasks failed; first: %v", len(es), es[0])
}

// Indices returns the failed task indices in ascending order.
func (es Errors) Indices() []int {
	idx := make([]int, len(es))
	for i, e := range es {
		idx[i] = e.Index
	}
	return idx
}

// ErrHung marks a task attempt stopped by the per-task watchdog: either it
// returned the deadline error cooperatively, or it ignored cancellation past
// the grace period and its goroutine was abandoned.
var ErrHung = errors.New("par: task deadline exceeded")

// panicErr carries a recovered panic value and stack out of a task attempt.
type panicErr struct {
	val   any
	stack []byte
}

func (p *panicErr) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// Options configures a resilient Run.
type Options struct {
	// Workers bounds the pool; <= 0 resolves through the package default.
	Workers int
	// Policy is the failure policy (FailFast by default).
	Policy Policy
	// Timeout is the per-attempt watchdog deadline; 0 disables it. A firing
	// watchdog cancels the attempt's context, so tasks that check their
	// context abort within one simulation.
	Timeout time.Duration
	// Grace is how long after cancelling a timed-out attempt the engine
	// waits for it to unwind before abandoning its goroutine (default 1s).
	// An abandoned attempt is reported as hung; its index is treated as
	// failed even if the stray goroutine eventually finishes.
	Grace time.Duration
	// Retries is how many extra attempts a failed or hung index gets. Tasks
	// must be index-deterministic (derive any randomness from the index, not
	// from shared mutable state) so that a retried cell is byte-identical to
	// a first-try cell.
	Retries int
}

// defaultGrace bounds the post-cancellation wait for a hung attempt.
const defaultGrace = time.Second

// Run executes fn over [0, n) on a bounded worker pool with panic isolation,
// an optional per-attempt watchdog, and deterministic retries. A recovered
// panic becomes a TaskError carrying the index and stack instead of a
// process crash.
//
// Under FailFast the first task to exhaust its attempts cancels the rest and
// its TaskError is returned. Under Collect every index is attempted and the
// failures come back as an Errors value (nil error if all succeeded).
// External cancellation always wins: Run returns ctx's error and records no
// blame against in-flight tasks.
func Run(ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := Workers(opts.Workers)
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures Errors
		first    *TaskError
	)
	record := func(te *TaskError) {
		mu.Lock()
		defer mu.Unlock()
		if opts.Policy == FailFast {
			if first == nil {
				first = te
				cancel()
			}
			return
		}
		failures = append(failures, te)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				runIndex(ctx, i, opts, fn, record)
			}
		}()
	}
	wg.Wait()

	if opts.Policy == FailFast {
		if first != nil {
			return first
		}
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(failures) > 0 {
		sort.Slice(failures, func(a, b int) bool { return failures[a].Index < failures[b].Index })
		return failures
	}
	return nil
}

// runIndex drives one index through its attempt budget and records the
// failure, if any, once the budget is spent.
func runIndex(ctx context.Context, i int, opts Options, fn func(context.Context, int) error, record func(*TaskError)) {
	attempts := opts.Retries + 1
	var last error
	for a := 1; a <= attempts; a++ {
		err := runAttempt(ctx, i, a, opts, fn)
		if err == nil {
			return
		}
		if ctx.Err() != nil {
			// The campaign itself ended (external cancellation or another
			// worker's fail-fast); this index carries no blame.
			return
		}
		last = err
	}
	te := &TaskError{Index: i, Attempts: attempts, Err: last}
	var pe *panicErr
	if errors.As(last, &pe) {
		te.Stack = pe.stack
	}
	record(te)
}

// runAttempt executes one attempt of fn(i) with panic recovery, the chaos
// hook, and — when a timeout is set — watchdog supervision from a separate
// goroutine.
func runAttempt(ctx context.Context, i, attempt int, opts Options, fn func(context.Context, int) error) error {
	actx := ctx
	cancel := context.CancelFunc(func() {})
	if opts.Timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, opts.Timeout)
	}
	defer cancel()

	call := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &panicErr{val: r, stack: debug.Stack()}
			}
		}()
		if h := chaos(); h != nil {
			if err := h(actx, i, attempt); err != nil {
				return err
			}
		}
		return fn(actx, i)
	}

	var err error
	if opts.Timeout <= 0 {
		err = call()
	} else {
		done := make(chan error, 1)
		go func() { done <- call() }()
		select {
		case err = <-done:
		case <-actx.Done():
			// Watchdog fired (or the campaign was cancelled). The attempt's
			// context is cancelled; give a cooperative task a grace period
			// to unwind before abandoning its goroutine.
			grace := opts.Grace
			if grace <= 0 {
				grace = defaultGrace
			}
			timer := time.NewTimer(grace)
			select {
			case err = <-done:
				timer.Stop()
			case <-timer.C:
				return fmt.Errorf("%w: index %d unresponsive %v after cancellation, goroutine abandoned",
					ErrHung, i, grace)
			}
		}
	}
	if err != nil && ctx.Err() == nil && actx.Err() == context.DeadlineExceeded {
		// The attempt's own watchdog, not campaign-level cancellation.
		err = fmt.Errorf("%w (%v): %v", ErrHung, opts.Timeout, err)
	}
	return err
}
