// Package cli centralises the exit-code contract and signal plumbing shared
// by the command-line drivers.
//
// Every command exits with one of four documented codes:
//
//	0 — success (including -h/-help)
//	1 — runtime failure (simulation error, I/O error, cancellation with
//	    nothing checkpointed)
//	2 — usage error: bad flags or arguments
//	3 — partial completion: the campaign was interrupted or lost cells,
//	    and the completed work was checkpointed for -resume
//
// Commands return errors from their run functions; main defers the mapping
// to Exit, wrapping usage mistakes in UsageError (via Usagef or Parse) and
// interrupted-but-checkpointed campaigns in PartialError.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// The documented exit codes.
const (
	ExitOK      = 0
	ExitRuntime = 1
	ExitUsage   = 2
	ExitPartial = 3
)

// UsageError marks a command-line usage mistake (exit code 2).
type UsageError struct{ Err error }

func (e *UsageError) Error() string { return e.Err.Error() }
func (e *UsageError) Unwrap() error { return e.Err }

// Usagef builds a UsageError from a format string.
func Usagef(format string, args ...any) error {
	return &UsageError{Err: fmt.Errorf(format, args...)}
}

// Parse runs fs.Parse and classifies failures as usage errors; -h/-help
// passes through as flag.ErrHelp, which Exit maps to success.
func Parse(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return &UsageError{Err: err}
}

// PartialError reports a campaign that stopped early — interrupted, or with
// poisoned cells under a collect policy — whose completed work survives in
// a checkpoint (exit code 3).
type PartialError struct {
	// Done and Total count campaign cells.
	Done, Total int
	// Path locates the checkpoint snapshot.
	Path string
	// Err is what stopped the campaign.
	Err error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("partial completion: %d/%d cells checkpointed to %s (rerun with -resume to finish): %v",
		e.Done, e.Total, e.Path, e.Err)
}

func (e *PartialError) Unwrap() error { return e.Err }

// ExitCode maps an error to the documented exit code.
func ExitCode(err error) int {
	var ue *UsageError
	var pe *PartialError
	switch {
	case err == nil || errors.Is(err, flag.ErrHelp):
		return ExitOK
	case errors.As(err, &ue):
		return ExitUsage
	case errors.As(err, &pe):
		return ExitPartial
	default:
		return ExitRuntime
	}
}

// Exit prints err (if any) prefixed with the command name and terminates
// the process with the mapped code.
func Exit(name string, err error) {
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	}
	os.Exit(ExitCode(err))
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM, so
// campaign drivers can checkpoint and report instead of dying mid-write.
// The second signal kills the process with the default disposition.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
