package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"softerror/internal/cli"
	"softerror/internal/par"
)

// TestSweepCrashResumeByteIdentical drives the whole command through a
// kill-and-resume cycle: the first invocation loses a cell to an injected
// panic and exits with the partial code, the -resume invocation finishes the
// grid, and the final CSV is byte-identical to an uninterrupted run.
func TestSweepCrashResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-q", "-benches", "gzip-graphic", "-policies", "baseline,squash-l1",
		"-iqsizes", "32,64", "-ooo", "false", "-commits", "3000", "-j", "2",
	}
	straightOut := filepath.Join(dir, "straight.csv")
	if err := run(append(base, "-out", straightOut)); err != nil {
		t.Fatal(err)
	}
	straight, err := os.ReadFile(straightOut)
	if err != nil {
		t.Fatal(err)
	}

	ckPath := filepath.Join(dir, "grid.ckpt")
	crashOut := filepath.Join(dir, "crash.csv")
	par.SetChaos(func(_ context.Context, index, attempt int) error {
		if index == 3 {
			panic(fmt.Sprintf("chaos: simulated crash in cell %d", index))
		}
		return nil
	})
	err = run(append(base, "-out", crashOut, "-checkpoint", ckPath, "-onerror", "continue"))
	par.SetChaos(nil)
	if err == nil {
		t.Fatal("crashed sweep reported success")
	}
	if code := cli.ExitCode(err); code != cli.ExitPartial {
		t.Fatalf("crashed sweep exit code = %d, want %d (partial): %v", code, cli.ExitPartial, err)
	}
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("no checkpoint after crash: %v", err)
	}

	resumeOut := filepath.Join(dir, "resumed.csv")
	if err := run(append(base, "-out", resumeOut, "-checkpoint", ckPath, "-resume")); err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(resumeOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(straight, resumed) {
		t.Fatalf("resumed CSV differs from straight-through CSV:\n--- straight\n%s\n--- resumed\n%s", straight, resumed)
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Error("checkpoint not removed after a completed run")
	}
}

func TestSweepUsageExitCodes(t *testing.T) {
	cases := [][]string{
		{"-q", "-benches", "nosuch"},
		{"-q", "-policies", "nosuch"},
		{"-q", "-onerror", "nosuch"},
		{"-q", "-resume"},
		{"-q", "-nosuchflag"},
	}
	for _, args := range cases {
		err := run(args)
		if code := cli.ExitCode(err); code != cli.ExitUsage {
			t.Errorf("run(%v) exit code = %d (%v), want %d", args, code, err, cli.ExitUsage)
		}
	}
}
