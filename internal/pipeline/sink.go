package pipeline

import (
	"sort"

	"softerror/internal/isa"
)

// Sink receives the pipeline's observable events as they happen, instead of
// having them materialised into Trace slices. The pipeline calls a method
// exactly when the corresponding Trace record would have been appended, in
// the same order, with the same contents — so a sink sees precisely the
// stream a recorded Trace would hold, one interval at a time.
//
// Consumers that only fold the stream into counters (the ACE/AVF integrals)
// implement Sink directly and skip the O(commits) slices entirely;
// TraceRecorder is the Sink that reconstructs today's Trace for callers that
// still want materialised intervals (fault injection, tracefile, traceview).
type Sink interface {
	// OnResidency reports one closed instruction-queue occupancy interval
	// (eviction, squash, wrong-path flush, or end-of-run clip).
	OnResidency(r Residency)
	// OnFrontEnd reports one closed fetch-buffer occupancy interval.
	// Issued marks delivery to decode (the front end's read point);
	// Squashed marks removal without delivery.
	OnFrontEnd(r Residency)
	// OnStoreBuffer reports one closed store-buffer occupancy interval
	// (drain to cache, or end-of-run clip).
	OnStoreBuffer(r Residency)
	// OnCommit reports one committed (issued correct-path) instruction,
	// with the cycle its IQ copy enqueued and the cycle it issued. The
	// pre-issue wait issue-enq is the committed copy's read exposure; the
	// same copy's OnResidency arrives later, when the entry evicts.
	OnCommit(in isa.Inst, enq, issue uint64)
}

// OOOSink is the optional extension a Sink implements to receive the
// out-of-order family's extra structures. The engines type-assert once at
// run start; a plain Sink on an out-of-order run simply misses these
// events. Both events reuse Residency with the structure's own read point:
// a ROB entry is read at its in-order retire, an LSQ entry at its retire
// (loads, predicated-false stores) or its drain to the cache (executed
// stores) — so Issue == Evict for every read interval, and Issued=false
// marks copies flushed, squashed or clipped without a read.
type OOOSink interface {
	// OnROB reports one closed reorder-buffer occupancy interval.
	OnROB(r Residency)
	// OnLSQ reports one closed load/store-queue occupancy interval.
	OnLSQ(r Residency)
}

// Stats holds the scalar counters of one run — everything a Trace records
// besides its interval slices. RunStream returns it so streaming consumers
// get IPC, miss rates and event counts without a Trace.
type Stats struct {
	Cycles  uint64
	Commits uint64
	MaxSeq  uint64

	Squashes        uint64
	SquashedEntries uint64
	Refetches       uint64
	ThrottleEvents  uint64
	WrongFlushes    uint64
	ForwardedLoads  uint64

	LoadsByLevel [4]uint64

	FetchStallCycles uint64

	// TAGEReadCycles integrates the out-of-order family's predictor-table
	// read exposure: entry-cycles since last read, summed over every
	// lookup (0 for the in-order family).
	TAGEReadCycles uint64
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Commits) / float64(s.Cycles)
}

// LoadMissRate returns the fraction of loads serviced beyond the given
// cache level.
func (s *Stats) LoadMissRate(level int) float64 {
	var total, beyond uint64
	for l, n := range s.LoadsByLevel {
		total += n
		if l > level {
			beyond += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(beyond) / float64(total)
}

// TraceRecorder is the Sink that materialises the event stream back into a
// Trace, byte-identical to what the pipeline historically recorded.
type TraceRecorder struct {
	outOfOrder bool
	tr         Trace
}

// NewTraceRecorder builds a recorder for a run under cfg. commits pre-sizes
// the commit log (pass 0 when unknown).
func NewTraceRecorder(cfg Config, commits uint64) *TraceRecorder {
	rec := &TraceRecorder{outOfOrder: cfg.OutOfOrder}
	rec.tr.IQSize = cfg.IQSize
	rec.tr.FrontEndCap = cfg.FrontEndCap()
	rec.tr.StoreBufferCap = cfg.StoreBufferSize
	if cfg.OutOfOrder {
		n := cfg.Normalized()
		rec.tr.ROBCap = n.ROBSize
		rec.tr.LSQCap = n.LSQSize
		rec.tr.TAGETables = n.TAGETables
		rec.tr.TAGETableEntries = 1 << n.TAGETableBits
	}
	if commits > 0 {
		rec.tr.CommitLog = make([]isa.Inst, 0, commits)
		rec.tr.CommitCycles = make([]uint64, 0, commits)
	}
	return rec
}

// OnResidency implements Sink.
func (rec *TraceRecorder) OnResidency(r Residency) {
	rec.tr.Residencies = append(rec.tr.Residencies, r)
}

// OnFrontEnd implements Sink.
func (rec *TraceRecorder) OnFrontEnd(r Residency) {
	rec.tr.FrontEnd = append(rec.tr.FrontEnd, r)
}

// OnStoreBuffer implements Sink.
func (rec *TraceRecorder) OnStoreBuffer(r Residency) {
	rec.tr.StoreBuffer = append(rec.tr.StoreBuffer, r)
}

// OnCommit implements Sink.
func (rec *TraceRecorder) OnCommit(in isa.Inst, _, issue uint64) {
	rec.tr.CommitLog = append(rec.tr.CommitLog, in)
	rec.tr.CommitCycles = append(rec.tr.CommitCycles, issue)
}

// OnROB implements OOOSink.
func (rec *TraceRecorder) OnROB(r Residency) {
	rec.tr.ROB = append(rec.tr.ROB, r)
}

// OnLSQ implements OOOSink.
func (rec *TraceRecorder) OnLSQ(r Residency) {
	rec.tr.LSQ = append(rec.tr.LSQ, r)
}

// Trace finalises and returns the materialised trace: counters copied from
// the run's Stats, and — under out-of-order issue, which appends commits in
// dataflow order — the commit log restored to program order, which the
// unique sequence numbers make exact.
func (rec *TraceRecorder) Trace(st Stats) *Trace {
	tr := &rec.tr
	tr.Cycles = st.Cycles
	tr.Commits = st.Commits
	tr.MaxSeq = st.MaxSeq
	tr.Squashes = st.Squashes
	tr.SquashedEntries = st.SquashedEntries
	tr.Refetches = st.Refetches
	tr.ThrottleEvents = st.ThrottleEvents
	tr.WrongFlushes = st.WrongFlushes
	tr.ForwardedLoads = st.ForwardedLoads
	tr.LoadsByLevel = st.LoadsByLevel
	tr.FetchStallCycles = st.FetchStallCycles
	tr.TAGEReadCycles = st.TAGEReadCycles
	if rec.outOfOrder {
		log, cycles := tr.CommitLog, tr.CommitCycles
		order := make([]int, len(log))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return log[order[a]].Seq < log[order[b]].Seq })
		sortedLog := make([]isa.Inst, len(log))
		sortedCycles := make([]uint64, len(cycles))
		for i, j := range order {
			sortedLog[i] = log[j]
			sortedCycles[i] = cycles[j]
		}
		tr.CommitLog, tr.CommitCycles = sortedLog, sortedCycles
	}
	return tr
}

// Tee fans the event stream out to several sinks, in argument order. Nil
// sinks are skipped; a campaign driver uses it to feed an ace.Collector and
// a fault residency recorder from one run.
func Tee(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	return teeSink(kept)
}

type teeSink []Sink

func (t teeSink) OnResidency(r Residency) {
	for _, s := range t {
		s.OnResidency(r)
	}
}

func (t teeSink) OnFrontEnd(r Residency) {
	for _, s := range t {
		s.OnFrontEnd(r)
	}
}

func (t teeSink) OnStoreBuffer(r Residency) {
	for _, s := range t {
		s.OnStoreBuffer(r)
	}
}

func (t teeSink) OnCommit(in isa.Inst, enq, issue uint64) {
	for _, s := range t {
		s.OnCommit(in, enq, issue)
	}
}

// OnROB implements OOOSink, forwarding to the members that accept it.
func (t teeSink) OnROB(r Residency) {
	for _, s := range t {
		if os, ok := s.(OOOSink); ok {
			os.OnROB(r)
		}
	}
}

// OnLSQ implements OOOSink, forwarding to the members that accept it.
func (t teeSink) OnLSQ(r Residency) {
	for _, s := range t {
		if os, ok := s.(OOOSink); ok {
			os.OnLSQ(r)
		}
	}
}
