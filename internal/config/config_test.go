package config

import (
	"os"
	"path/filepath"
	"testing"

	"softerror/internal/pipeline"
	"softerror/internal/spec"
	"softerror/internal/workload"
)

func TestParseDefaults(t *testing.T) {
	cfg, err := Parse([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workload.Name != workload.Default().Name {
		t.Fatalf("default workload name = %q", cfg.Workload.Name)
	}
	if cfg.Pipeline != pipeline.DefaultConfig() {
		t.Fatal("default pipeline expected")
	}
	if cfg.Commits != 0 {
		t.Fatal("commits should default to zero (caller applies DefaultCommits)")
	}
}

func TestParseBenchBase(t *testing.T) {
	cfg, err := Parse([]byte(`{"bench": "mcf", "commits": 12345}`))
	if err != nil {
		t.Fatal(err)
	}
	mcf, _ := spec.ByName("mcf")
	if cfg.Workload != mcf.Params {
		t.Fatal("bench base not applied")
	}
	if cfg.Commits != 12345 {
		t.Fatalf("commits = %d", cfg.Commits)
	}
}

func TestParsePartialOverrides(t *testing.T) {
	cfg, err := Parse([]byte(`{
		"bench": "mcf",
		"workload": {"MispredictRate": 0.11},
		"pipeline": {"IQSize": 128}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	mcf, _ := spec.ByName("mcf")
	if cfg.Workload.MispredictRate != 0.11 {
		t.Fatalf("override lost: %v", cfg.Workload.MispredictRate)
	}
	// Untouched fields keep the bench's values.
	if cfg.Workload.L0Frac != mcf.Params.L0Frac {
		t.Fatal("non-overridden workload field changed")
	}
	if cfg.Pipeline.IQSize != 128 {
		t.Fatalf("IQSize = %d", cfg.Pipeline.IQSize)
	}
	if cfg.Pipeline.FetchWidth != pipeline.DefaultConfig().FetchWidth {
		t.Fatal("non-overridden pipeline field changed")
	}
}

func TestParseRejections(t *testing.T) {
	bad := map[string]string{
		"garbage":          `{`,
		"unknown top":      `{"bogus": 1}`,
		"unknown workload": `{"workload": {"NoSuchKnob": 1}}`,
		"unknown pipeline": `{"pipeline": {"NoSuchKnob": 1}}`,
		"unknown bench":    `{"bench": "nosuch"}`,
		"invalid workload": `{"workload": {"MeanBlockLen": 0}}`,
		"invalid pipeline": `{"pipeline": {"IQSize": 0}}`,
	}
	for name, data := range bad {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("%s: accepted %q", name, data)
		}
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(path, []byte(`{"bench": "ammp", "commits": 777}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workload.Name != "ammp" || cfg.Commits != 777 {
		t.Fatalf("loaded config wrong: %+v", cfg)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
