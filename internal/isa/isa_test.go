package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassALU:      "alu",
		ClassFPU:      "fpu",
		ClassLoad:     "load",
		ClassStore:    "store",
		ClassBranch:   "branch",
		ClassCall:     "call",
		ClassReturn:   "return",
		ClassNop:      "nop",
		ClassPrefetch: "prefetch",
		ClassHint:     "hint",
		ClassIO:       "io",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
		if !c.Valid() {
			t.Errorf("Class %q reported invalid", want)
		}
	}
	if Class(200).Valid() {
		t.Error("Class(200) reported valid")
	}
	if !strings.Contains(Class(200).String(), "200") {
		t.Error("invalid class String() should include the raw value")
	}
}

func TestClassNeutral(t *testing.T) {
	neutral := []Class{ClassNop, ClassPrefetch, ClassHint}
	for _, c := range neutral {
		if !c.Neutral() {
			t.Errorf("%v should be neutral", c)
		}
	}
	nonNeutral := []Class{ClassALU, ClassFPU, ClassLoad, ClassStore, ClassBranch, ClassCall, ClassReturn, ClassIO}
	for _, c := range nonNeutral {
		if c.Neutral() {
			t.Errorf("%v should not be neutral", c)
		}
	}
}

func TestClassIsMem(t *testing.T) {
	mem := []Class{ClassLoad, ClassStore, ClassPrefetch, ClassIO}
	for _, c := range mem {
		if !c.IsMem() {
			t.Errorf("%v should be memory class", c)
		}
	}
	if ClassALU.IsMem() || ClassBranch.IsMem() || ClassNop.IsMem() {
		t.Error("non-memory class reported IsMem")
	}
}

func TestClassIsControl(t *testing.T) {
	for _, c := range []Class{ClassBranch, ClassCall, ClassReturn} {
		if !c.IsControl() {
			t.Errorf("%v should be control class", c)
		}
	}
	for _, c := range []Class{ClassALU, ClassLoad, ClassNop, ClassIO} {
		if c.IsControl() {
			t.Errorf("%v should not be control class", c)
		}
	}
}

func TestRegConstructors(t *testing.T) {
	r := IntReg(5)
	if !r.IsInt() || r.IsFP() || r.IsPred() {
		t.Errorf("IntReg(5) classification wrong: %v", r)
	}
	if r.String() != "r5" {
		t.Errorf("IntReg(5).String() = %q", r.String())
	}
	f := FPReg(12)
	if !f.IsFP() || f.IsInt() || f.IsPred() {
		t.Errorf("FPReg(12) classification wrong: %v", f)
	}
	if f.String() != "f12" {
		t.Errorf("FPReg(12).String() = %q", f.String())
	}
	p := PredReg(3)
	if !p.IsPred() || p.IsInt() || p.IsFP() {
		t.Errorf("PredReg(3) classification wrong: %v", p)
	}
	if p.String() != "p3" {
		t.Errorf("PredReg(3).String() = %q", p.String())
	}
	if RegNone.Valid() {
		t.Error("RegNone should not be Valid")
	}
	if RegNone.String() != "none" {
		t.Errorf("RegNone.String() = %q", RegNone.String())
	}
}

func TestRegConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"IntReg(-1)":  func() { IntReg(-1) },
		"IntReg(128)": func() { IntReg(128) },
		"FPReg(128)":  func() { FPReg(128) },
		"PredReg(64)": func() { PredReg(64) },
		"PredReg(-1)": func() { PredReg(-1) },
		"FPReg(-5)":   func() { FPReg(-5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRegFilesDisjoint(t *testing.T) {
	// Property: every valid Reg belongs to exactly one file.
	f := func(n uint16) bool {
		r := Reg(n % NumRegs)
		count := 0
		if r.IsInt() {
			count++
		}
		if r.IsFP() {
			count++
		}
		if r.IsPred() {
			count++
		}
		return count == 1 && r.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegRoundTrip(t *testing.T) {
	for i := 0; i < NumIntRegs; i++ {
		if got := IntReg(i); int(got) != i {
			t.Fatalf("IntReg(%d) = %d", i, got)
		}
	}
	for i := 0; i < NumFPRegs; i++ {
		r := FPReg(i)
		if !r.IsFP() {
			t.Fatalf("FPReg(%d) not FP", i)
		}
	}
	for i := 0; i < NumPredRegs; i++ {
		r := PredReg(i)
		if !r.IsPred() {
			t.Fatalf("PredReg(%d) not predicate", i)
		}
	}
}

func TestInstHasDest(t *testing.T) {
	in := Inst{Class: ClassALU, Dest: IntReg(4), Src1: IntReg(1), Src2: IntReg(2), PredGuard: RegNone}
	if !in.HasDest() {
		t.Error("plain ALU with dest should HasDest")
	}
	in.PredFalse = true
	if in.HasDest() {
		t.Error("pred-false instruction should not HasDest")
	}
	in.PredFalse = false
	in.WrongPath = true
	if in.HasDest() {
		t.Error("wrong-path instruction should not HasDest")
	}
	store := Inst{Class: ClassStore, Dest: RegNone}
	if store.HasDest() {
		t.Error("store without dest should not HasDest")
	}
}

func TestInstCommitted(t *testing.T) {
	in := Inst{Class: ClassALU}
	if !in.Committed() {
		t.Error("correct-path instruction should commit")
	}
	in.WrongPath = true
	if in.Committed() {
		t.Error("wrong-path instruction should not commit")
	}
	// Predicated-false instructions retire (commit) but write nothing.
	pf := Inst{Class: ClassALU, PredFalse: true}
	if !pf.Committed() {
		t.Error("pred-false instruction should still commit")
	}
}

func TestInstString(t *testing.T) {
	in := Inst{
		Seq: 7, Class: ClassLoad, Dest: IntReg(3), Src1: IntReg(1),
		Src2: RegNone, PredGuard: PredReg(2), Addr: 0x1000,
	}
	s := in.String()
	for _, want := range []string{"#7", "load", "r3", "r1", "p2", "0x1000"} {
		if !strings.Contains(s, want) {
			t.Errorf("Inst.String() = %q, missing %q", s, want)
		}
	}
	in.WrongPath = true
	if !strings.Contains(in.String(), "wrong-path") {
		t.Error("wrong-path marker missing from String()")
	}
	in.WrongPath = false
	in.PredFalse = true
	if !strings.Contains(in.String(), "pred-false") {
		t.Error("pred-false marker missing from String()")
	}
}

func TestLayoutTotals(t *testing.T) {
	if EntryPayloadBits != 41 {
		t.Fatalf("EntryPayloadBits = %d, want 41 (IA-64 syllable)", EntryPayloadBits)
	}
	sum := 0
	for f := Field(0); f < NumFields; f++ {
		if FieldBits[f] <= 0 {
			t.Fatalf("field %v has non-positive width", f)
		}
		sum += FieldBits[f]
	}
	if sum != EntryPayloadBits {
		t.Fatalf("field widths sum to %d, want %d", sum, EntryPayloadBits)
	}
}

func TestFieldOffsetsContiguous(t *testing.T) {
	prevEnd := 0
	for f := Field(0); f < NumFields; f++ {
		off := FieldOffset(f)
		if off != prevEnd {
			t.Fatalf("field %v offset = %d, want %d", f, off, prevEnd)
		}
		prevEnd = off + FieldBits[f]
	}
	if prevEnd != EntryPayloadBits {
		t.Fatalf("layout ends at %d, want %d", prevEnd, EntryPayloadBits)
	}
}

func TestFieldOfBit(t *testing.T) {
	// Every bit maps to the field whose span contains it.
	for f := Field(0); f < NumFields; f++ {
		start := FieldOffset(f)
		for b := start; b < start+FieldBits[f]; b++ {
			if got := FieldOfBit(b); got != f {
				t.Fatalf("FieldOfBit(%d) = %v, want %v", b, got, f)
			}
		}
	}
}

func TestFieldOfBitPanics(t *testing.T) {
	for _, bit := range []int{-1, EntryPayloadBits, EntryPayloadBits + 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FieldOfBit(%d) did not panic", bit)
				}
			}()
			FieldOfBit(bit)
		}()
	}
}

func TestFieldString(t *testing.T) {
	want := map[Field]string{
		FieldOpcode: "opcode", FieldDest: "dest", FieldSrc1: "src1",
		FieldSrc2: "src2", FieldPred: "pred", FieldImm: "imm",
	}
	for f, w := range want {
		if f.String() != w {
			t.Errorf("Field(%d).String() = %q, want %q", f, f.String(), w)
		}
	}
	if !strings.Contains(Field(99).String(), "99") {
		t.Error("invalid field String() should include raw value")
	}
}
