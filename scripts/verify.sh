#!/bin/sh
# Repository verify recipe, in tiers:
#   1. format + tier-1: gofmt, build + full test suite (the gate every
#      change must pass)
#   2. race tier: the packages that run simulations concurrently, under the
#      race detector (parallel engine, suite memo, sweep grid, fault
#      fan-out, and the server's concurrent-load test)
#   3. chaos tier: the resilience tests — injected panics, hangs and crashes
#      driven through the par chaos hook, checkpoint/resume byte-identity,
#      server overflow shedding and drain/resume — under the race detector,
#      since failure paths exercise the locking the happy path never touches
#   4. audit tier: cmd/seraudit -quick under the race detector — every
#      invariant check (conservation, differential oracles, server
#      properties) over a small seed sweep; plus a short go-native fuzz
#      pass over each harness (skip with SERA_SKIP_FUZZ=1 when iterating)
#   5. smoke tier: the real seratd binary booted on an ephemeral port,
#      health-checked, served a cached eval and SIGINT-drained
#   6. bench tier: a single-iteration run of the hot-loop benchmark so a
#      broken harness fails verify; performance deltas are tracked with
#      scripts/benchdiff.sh over full -benchtime runs
set -eux

fmtdirs="$(gofmt -l cmd internal examples scripts *.go)"
[ -z "$fmtdirs" ] || { echo "gofmt needed: $fmtdirs" >&2; exit 1; }

go build ./...
go vet ./...
go test ./...
go test -race ./internal/par ./internal/core ./internal/sweep ./internal/fault ./internal/server
go test -race -run 'Chaos|CrashResume|Resilien|Watchdog|Retry|Collect|Partial|Checkpoint|Resume|Overflow|Drain|SingleFlight|Identity' \
	./internal/par ./internal/checkpoint ./internal/fault ./internal/sweep \
	./internal/server ./cmd/sweep ./cmd/sersim ./cmd/repro
go run -race ./cmd/seraudit -quick
if [ -z "${SERA_SKIP_FUZZ:-}" ]; then
	go test -run NONE -fuzz FuzzParseList -fuzztime 10s ./internal/spec
	go test -run NONE -fuzz FuzzParsePolicy -fuzztime 10s ./internal/core
	go test -run NONE -fuzz FuzzCheckpointLoad -fuzztime 10s ./internal/checkpoint
	go test -run NONE -fuzz FuzzEvalRequest -fuzztime 10s ./internal/server
fi
sh scripts/smoke_seratd.sh
# bench tier: one iteration of the hot-loop benchmark, as a smoke test that
# the benchmark harness still compiles and runs; compare real runs across
# revisions with scripts/benchdiff.sh.
go test -run NONE -bench PipelineHotLoop -benchtime 1x -benchmem .
