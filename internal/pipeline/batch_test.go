package pipeline

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"softerror/internal/cache"
	"softerror/internal/workload"
)

// batchConfigs is a spread of lane shapes covering the axes the sweep
// varies: IQ size, squash policy, store-buffer depth, issue discipline.
func batchConfigs() []Config {
	base := DefaultConfig()
	narrow := base
	narrow.IQSize = 16
	squash := base
	squash.SquashTrigger = TriggerL1Miss
	deepSB := base
	deepSB.StoreBufferSize = 4
	ooo := base
	ooo.OutOfOrder = true
	return []Config{base, narrow, squash, deepSB, ooo}
}

// soloTrace runs one config through the solo engine.
func soloTrace(t *testing.T, p workload.Params, cfg Config, commits uint64) *Trace {
	t.Helper()
	gen, err := workload.New(p)
	if err != nil {
		t.Fatal(err)
	}
	mem := workload.WarmedDefault()
	rec := NewTraceRecorder(cfg, commits)
	st, err := MustNew(cfg, gen, mem).RunStream(context.Background(), commits, rec)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace(st)
}

// TestBatchSingleLaneMatchesRunStream pins the K=1 degenerate case: one
// lane in a batch produces the exact trace RunStream produces — every
// residency, commit and statistic.
func TestBatchSingleLaneMatchesRunStream(t *testing.T) {
	const commits = 20_000
	p := workload.Default()
	for _, cfg := range batchConfigs() {
		want := soloTrace(t, p, cfg, commits)

		sh, err := workload.NewShared(p)
		if err != nil {
			t.Fatal(err)
		}
		rec := NewTraceRecorder(cfg, commits)
		stats, err := RunBatch(context.Background(), commits, sh,
			[]Config{cfg}, []*cache.Hierarchy{workload.WarmedDefault()}, []Sink{rec})
		if err != nil {
			t.Fatal(err)
		}
		got := rec.Trace(stats[0])
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("K=1 batch diverges from RunStream for cfg %+v:\n want cycles=%d commits=%d res=%d\n got  cycles=%d commits=%d res=%d",
				cfg, want.Cycles, want.Commits, len(want.Residencies),
				got.Cycles, got.Commits, len(got.Residencies))
		}
	}
}

// TestBatchLanesMatchIndependentRuns pins the tentpole identity at the
// engine level: K lanes sharing one decoded stream each produce the trace
// of an independent solo run of their config.
func TestBatchLanesMatchIndependentRuns(t *testing.T) {
	const commits = 20_000
	p := workload.Default()
	cfgs := batchConfigs()

	sh, err := workload.NewShared(p)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*TraceRecorder, len(cfgs))
	sinks := make([]Sink, len(cfgs))
	mems := make([]*cache.Hierarchy, len(cfgs))
	for i, cfg := range cfgs {
		recs[i] = NewTraceRecorder(cfg, commits)
		sinks[i] = recs[i]
		mems[i] = workload.WarmedDefault()
	}
	stats, err := RunBatch(context.Background(), commits, sh, cfgs, mems, sinks)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want := soloTrace(t, p, cfg, commits)
		got := recs[i].Trace(stats[i])
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("lane %d (cfg %+v) diverges from its solo run:\n want cycles=%d commits=%d res=%d\n got  cycles=%d commits=%d res=%d",
				i, cfg, want.Cycles, want.Commits, len(want.Residencies),
				got.Cycles, got.Commits, len(got.Residencies))
		}
	}
}

// TestBatchRejectsSingleStep pins the typed rejection: SingleStep lanes —
// alone or mixed with fast-path lanes — cannot join a batch.
func TestBatchRejectsSingleStep(t *testing.T) {
	p := workload.Default()
	sh, err := workload.NewShared(p)
	if err != nil {
		t.Fatal(err)
	}
	fast := DefaultConfig()
	stepped := DefaultConfig()
	stepped.SingleStep = true
	for _, cfgs := range [][]Config{
		{stepped},
		{fast, stepped, fast},
	} {
		mems := make([]*cache.Hierarchy, len(cfgs))
		for i := range mems {
			mems[i] = workload.WarmedDefault()
		}
		_, err := RunBatch(context.Background(), 100, sh, cfgs, mems, make([]Sink, len(cfgs)))
		if !errors.Is(err, ErrBatchSingleStep) {
			t.Fatalf("RunBatch with SingleStep lane = %v, want ErrBatchSingleStep", err)
		}
	}
}

// TestBatchCancelled pins cooperative cancellation: a cancelled context
// aborts the batch with the context's error.
func TestBatchCancelled(t *testing.T) {
	p := workload.Default()
	sh, err := workload.NewShared(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunBatch(ctx, 1_000_000, sh,
		[]Config{DefaultConfig()}, []*cache.Hierarchy{workload.WarmedDefault()}, []Sink{nil})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch = %v, want context.Canceled", err)
	}
}
