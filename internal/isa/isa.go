// Package isa defines the IA-64-flavoured instruction set used by the
// simulator: instruction classes, register identifiers, the dynamic
// instruction record that flows through the pipeline, and the bit-level
// layout of an instruction-queue entry used for per-field ACE accounting.
//
// The ISA is deliberately a simplification of Itanium®: 128 integer
// registers, 128 floating-point registers, 64 predicate registers, full
// predication, explicit no-op / prefetch / branch-hint instructions, and a
// 41-bit instruction syllable. Only the properties that matter for
// architectural-vulnerability analysis are retained: which register and
// memory locations an instruction defines and uses, whether it can be
// squashed without architectural effect, and how its bits are laid out in
// the instruction queue.
package isa

import "fmt"

// Class identifies the functional class of an instruction. The class
// determines execution latency, which pipeline resources are used, and —
// centrally for this paper — whether the instruction is "neutral" to soft
// errors (no-ops, prefetches, branch hints).
type Class uint8

const (
	// ClassALU is an integer arithmetic/logic operation.
	ClassALU Class = iota
	// ClassFPU is a floating-point operation.
	ClassFPU
	// ClassLoad reads memory into a register.
	ClassLoad
	// ClassStore writes a register value to memory.
	ClassStore
	// ClassBranch is a conditional or unconditional branch.
	ClassBranch
	// ClassCall is a procedure call (branch with link).
	ClassCall
	// ClassReturn is a procedure return.
	ClassReturn
	// ClassNop is an explicit no-operation. IA-64 bundles frequently
	// contain no-ops because of template constraints.
	ClassNop
	// ClassPrefetch is a software data-prefetch hint (lfetch).
	ClassPrefetch
	// ClassHint is a branch-prediction hint instruction (brp).
	ClassHint
	// ClassIO models an uncached load/store to an I/O device; values
	// reaching I/O are observable and terminate π-bit tracking scope.
	ClassIO

	numClasses = iota
)

var classNames = [numClasses]string{
	"alu", "fpu", "load", "store", "branch", "call", "return",
	"nop", "prefetch", "hint", "io",
}

// String returns the lower-case mnemonic class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Valid reports whether c is a defined class.
func (c Class) Valid() bool { return int(c) < numClasses }

// Neutral reports whether the class is neutral to soft errors: the paper's
// second false-DUE source. A strike on a non-opcode bit of such an
// instruction cannot affect the program's final outcome.
func (c Class) Neutral() bool {
	return c == ClassNop || c == ClassPrefetch || c == ClassHint
}

// IsMem reports whether the class accesses the data memory hierarchy.
func (c Class) IsMem() bool {
	return c == ClassLoad || c == ClassStore || c == ClassPrefetch || c == ClassIO
}

// IsControl reports whether the class redirects control flow.
func (c Class) IsControl() bool {
	return c == ClassBranch || c == ClassCall || c == ClassReturn
}

// Reg identifies an architectural register. The integer file occupies
// [0, NumIntRegs), the floating-point file [NumIntRegs, NumIntRegs+NumFPRegs),
// and predicate registers [predBase, predBase+NumPredRegs). RegNone marks an
// absent operand.
type Reg int16

// Register file sizes, matching Itanium®'s architected counts.
const (
	NumIntRegs  = 128
	NumFPRegs   = 128
	NumPredRegs = 64

	predBase = NumIntRegs + NumFPRegs

	// NumRegs is the total number of architectural registers across all
	// three files; Reg values are indices into [0, NumRegs).
	NumRegs = NumIntRegs + NumFPRegs + NumPredRegs
)

// RegNone marks the absence of a register operand.
const RegNone Reg = -1

// IntReg returns the Reg for integer register rN. It panics if n is out of
// range.
func IntReg(n int) Reg {
	if n < 0 || n >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register %d out of range", n))
	}
	return Reg(n)
}

// FPReg returns the Reg for floating-point register fN.
func FPReg(n int) Reg {
	if n < 0 || n >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register %d out of range", n))
	}
	return Reg(NumIntRegs + n)
}

// PredReg returns the Reg for predicate register pN.
func PredReg(n int) Reg {
	if n < 0 || n >= NumPredRegs {
		panic(fmt.Sprintf("isa: predicate register %d out of range", n))
	}
	return Reg(predBase + n)
}

// IsInt reports whether r names an integer register.
func (r Reg) IsInt() bool { return r >= 0 && r < NumIntRegs }

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs && r < predBase }

// IsPred reports whether r names a predicate register.
func (r Reg) IsPred() bool { return r >= predBase && r < NumRegs }

// Valid reports whether r names any architectural register.
func (r Reg) Valid() bool { return r >= 0 && r < NumRegs }

// String renders the register in assembly style (r5, f12, p3, none).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "none"
	case r.IsInt():
		return fmt.Sprintf("r%d", int(r))
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	case r.IsPred():
		return fmt.Sprintf("p%d", int(r)-predBase)
	default:
		return fmt.Sprintf("reg(%d)", int(r))
	}
}

// Inst is a dynamic instruction: one fetched syllable with its run-time
// outcomes resolved. The pipeline and the ACE analyser share this record.
//
// Seq numbers are assigned in fetch order and are unique across a run,
// including wrong-path instructions (which never commit).
type Inst struct {
	Seq uint64 // dynamic sequence number, fetch order
	PC  uint64 // virtual address of the bundle syllable

	Class Class

	// Register operands. Dest is RegNone for instructions without a
	// destination (stores, branches, no-ops...). PredGuard is the
	// qualifying predicate register, RegNone when unpredicated.
	Dest      Reg
	Src1      Reg
	Src2      Reg
	PredGuard Reg

	// Dynamic outcomes.
	PredFalse bool   // qualifying predicate evaluated false: result discarded
	WrongPath bool   // fetched past a mispredicted branch; will be squashed
	Taken     bool   // branch outcome (Class.IsControl only)
	Mispred   bool   // branch was mispredicted at fetch
	Addr      uint64 // effective address (IsMem classes)
	MemSize   uint8  // access size in bytes (IsMem classes)

	// CallDepth is the procedure-nesting depth at fetch, stamped by the
	// workload generator. The ACE analyser uses it to classify registers
	// that die because the procedure that wrote them returned.
	CallDepth uint8

	// FetchBubble is a front-end delivery gap, in cycles, charged before
	// this instruction can be fetched: it stands in for instruction-cache
	// misses, ITLB misses and bundle-dispersal breaks, which keep the
	// instruction queue from sitting permanently full. The pipeline
	// consumes (zeroes) it on first fetch; refetches after a squash hit a
	// warm I-cache and pay nothing.
	FetchBubble uint8
}

// HasDest reports whether the instruction architecturally writes Dest.
// Predicated-false and wrong-path instructions do not.
func (in *Inst) HasDest() bool {
	return in.Dest != RegNone && !in.PredFalse && !in.WrongPath
}

// Committed reports whether the instruction's results become architectural
// state: it must be on the correct path. Predicated-false instructions
// commit (retire) but write nothing.
func (in *Inst) Committed() bool { return !in.WrongPath }

// String renders a compact single-line disassembly, useful in test failures.
func (in *Inst) String() string {
	s := fmt.Sprintf("#%d %s", in.Seq, in.Class)
	if in.PredGuard != RegNone {
		s = fmt.Sprintf("(%s) %s", in.PredGuard, s)
	}
	if in.Dest != RegNone {
		s += " " + in.Dest.String() + "="
	}
	if in.Src1 != RegNone {
		s += " " + in.Src1.String()
	}
	if in.Src2 != RegNone {
		s += "," + in.Src2.String()
	}
	if in.Class.IsMem() {
		s += fmt.Sprintf(" [%#x]", in.Addr)
	}
	if in.WrongPath {
		s += " <wrong-path>"
	}
	if in.PredFalse {
		s += " <pred-false>"
	}
	return s
}
