// Package par is the deterministic parallel execution engine behind the
// evaluation drivers: a bounded worker pool that fans a function out over an
// index space and delivers results into pre-sized slices, so output order is
// a property of the index space, never of goroutine scheduling.
//
// Every bulk campaign in this repository — suite fan-outs, design-space
// grids, fault-injection campaigns — is a set of mutually independent,
// individually deterministic simulations. Running them on N workers must
// therefore produce byte-identical artefacts to running them on one; the
// engine guarantees that by construction: workers claim indices from an
// atomic counter, write results only to their own index, and all ordering
// decisions (aggregation, CSV emission) happen in index order afterwards.
//
// The engine is also the campaign's containment boundary: worker panics are
// recovered into typed TaskErrors instead of crashing the process, a
// per-task watchdog detects hung simulations, and failed or hung cells can
// be deterministically retried or skipped (Collect policy) so that a single
// poisoned cell costs one cell, not the whole run. See Run and Options.
package par

import (
	"context"
	"runtime"
	"sync/atomic"
)

// defaultWorkers overrides the GOMAXPROCS fallback when positive; commands
// set it from their -j flag.
var defaultWorkers atomic.Int64

// SetDefault sets the package-wide default worker count used when a caller
// passes Workers <= 0. n <= 0 restores the GOMAXPROCS default. Commands call
// this once from flag parsing; it is safe for concurrent use.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers resolves a requested worker count: n > 0 is honoured as-is;
// anything else falls back to SetDefault's value, and failing that to
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if d := defaultWorkers.Load(); d > 0 {
		return int(d)
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on up to workers goroutines
// (resolved through Workers). The first failure cancels the context and
// stops unclaimed indices; in-flight calls run to completion. ForEach
// returns the first failure in claim order as a *TaskError (a recovered
// worker panic included), or ctx's error if it was cancelled externally.
// It is Run with fail-fast policy and no watchdog or retries.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	return Run(ctx, n, Options{Workers: workers}, fn)
}

// Map runs fn over [0, n) on up to workers goroutines and returns the
// results in index order. On error the partial results are discarded and the
// first error is returned.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
