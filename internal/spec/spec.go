// Package spec provides the benchmark registry standing in for Table 2 of
// the paper: the 12 SPEC CPU2000 integer and 14 floating-point programs
// whose SimPoint slices drive the evaluation.
//
// Each benchmark is a named, seeded workload.Params profile. The profiles
// cannot reproduce the concrete SPEC programs (proprietary binaries, IA-64
// compilations, SimPoint traces), so they are synthesised to span the
// behavioural axes the paper's results depend on:
//
//   - integer codes carry more branches, more mispredictions and more
//     predication — hence more wrong-path and predicated-false IQ state
//     (the π-to-commit bar of Figure 2 is biggest for INT);
//   - floating-point codes carry more no-ops and software prefetches —
//     hence the anti-π bit matters most for FP (60% vs 35% in the paper) —
//     plus streaming access patterns;
//   - memory-boundedness varies widely, producing the per-benchmark spread
//     of squash benefit in Figure 4 (ammp's few critical misses make
//     squashing spectacularly effective there).
//
// The paper's per-benchmark "instructions skipped" column is reused as the
// deterministic seed of each profile.
package spec

import (
	"fmt"
	"sort"
	"strings"

	"softerror/internal/workload"
)

// Benchmark is one entry of the Table-2 roster.
type Benchmark struct {
	// Name matches the paper's benchmark-input naming.
	Name string
	// FP marks floating-point benchmarks.
	FP bool
	// SkippedM is the paper's SimPoint skip distance in millions of
	// instructions (Table 2); it doubles as the workload seed.
	SkippedM int
	// Params is the synthetic workload profile.
	Params workload.Params
}

// tweak describes how one benchmark deviates from its base profile.
type tweak func(*workload.Params)

func intBase() workload.Params {
	p := workload.Default()
	// Integer codes: more control flow, more predication, fewer FP ops.
	p.FPFrac = 0.01
	p.NopFrac = 0.22
	p.PrefetchFrac = 0.02
	p.MispredictRate = 0.07
	p.PredicatedFrac = 0.20
	p.MeanBlockLen = 7
	return p
}

func fpBase() workload.Params {
	p := workload.Default()
	// FP codes: nop/prefetch heavy bundles, long compute blocks, well
	// predicted loops, streaming memory.
	p.FloatingPoint = true
	p.FPFrac = 0.18
	p.LoadFrac = 0.16
	p.NopFrac = 0.30
	p.PrefetchFrac = 0.06
	p.HintFrac = 0.005
	p.MispredictRate = 0.02
	p.PredicatedFrac = 0.06
	p.MeanBlockLen = 14
	p.MeanCalleeLen = 120
	return p
}

// roster defines the 26 Table-2 benchmarks. Tweaks are loosely informed by
// the programs' published characters (mcf/art memory-bound, crafty/sixtrack
// compute-bound, perlbmk branchy, swim/mgrid streaming, ...).
var roster = []struct {
	name     string
	fp       bool
	skippedM int
	tweak    tweak
}{
	// --- integer ---
	{"bzip2-source", false, 48900, func(p *workload.Params) {
		p.L1Frac, p.L2Frac = 0.012, 0.005
	}},
	{"cc-200", false, 16600, func(p *workload.Params) {
		p.MispredictRate = 0.09
		p.CallFrac = 0.02
		p.DeadLocalFrac = 0.35
	}},
	{"crafty", false, 120600, func(p *workload.Params) {
		p.L1Frac, p.L2Frac, p.MemFrac = 0.004, 0.001, 0.0001
		p.DepDistance = 7
	}},
	{"eon-kajiya", false, 73000, func(p *workload.Params) {
		p.FPFrac = 0.10
		p.L1Frac, p.L2Frac, p.MemFrac = 0.005, 0.002, 0.0002
		p.CallFrac = 0.025
	}},
	{"gap", false, 18800, func(p *workload.Params) {
		p.CallFrac = 0.02
		p.L1Frac = 0.012
	}},
	{"gzip-graphic", false, 29000, func(p *workload.Params) {
		p.L1Frac, p.L2Frac = 0.010, 0.003
		p.MispredictRate = 0.06
	}},
	{"mcf", false, 26200, func(p *workload.Params) {
		// Pointer-chasing, badly memory bound.
		p.L0Frac, p.L1Frac, p.L2Frac, p.MemFrac = 0.960, 0.020, 0.016, 0.004
		p.LoadUseDistance = 6
		p.DepDistance = 4
		p.MissBurstiness = 0.5
	}},
	{"parser", false, 71400, func(p *workload.Params) {
		p.MispredictRate = 0.08
		p.L1Frac = 0.011
	}},
	{"perlbmk-makerand", false, 0, func(p *workload.Params) {
		p.MispredictRate = 0.10
		p.CallFrac = 0.03
		p.MeanBlockLen = 6
	}},
	{"twolf", false, 185400, func(p *workload.Params) {
		p.L1Frac, p.L2Frac = 0.014, 0.007
		p.MispredictRate = 0.08
	}},
	{"vortex-lendian3", false, 59300, func(p *workload.Params) {
		p.CallFrac = 0.025
		p.DeadLocalFrac = 0.40
		p.L1Frac = 0.012
	}},
	{"vpr-route", false, 49200, func(p *workload.Params) {
		p.L1Frac, p.L2Frac = 0.013, 0.006
		p.MispredictRate = 0.09
	}},

	// --- floating point ---
	{"ammp", true, 50900, func(p *workload.Params) {
		// The paper's outlier: instructions queue behind a few critical
		// misses, so squashing slashes AVF for almost no IPC cost.
		p.L0Frac, p.L1Frac, p.L2Frac, p.MemFrac = 0.982, 0.010, 0.0065, 0.0015
		p.MissBurstiness = 0.9
		p.FetchBubbleProb = 0.08
		p.LoadUseDistance = 8
	}},
	{"applu", true, 500, func(p *workload.Params) {
		p.L1Frac, p.L2Frac = 0.011, 0.006
	}},
	{"apsi", true, 100, func(p *workload.Params) {
		p.NopFrac = 0.33
		p.FPFrac = 0.14
		p.L1Frac = 0.010
	}},
	{"art-110", true, 36400, func(p *workload.Params) {
		// Tiny kernel streaming over a matrix that misses everywhere.
		p.L0Frac, p.L1Frac, p.L2Frac, p.MemFrac = 0.968, 0.018, 0.012, 0.002
		p.MissBurstiness = 0.85
		p.NopFrac = 0.26
	}},
	{"equake", true, 1500, func(p *workload.Params) {
		p.L1Frac, p.L2Frac = 0.012, 0.007
		p.LoadFrac = 0.19
	}},
	{"facerec", true, 64100, func(p *workload.Params) {
		p.L1Frac = 0.009
		p.PrefetchFrac = 0.08
	}},
	{"fma3d", true, 23600, func(p *workload.Params) {
		p.CallFrac = 0.015
		p.DeadLocalFrac = 0.35
	}},
	{"galgel", true, 5000, func(p *workload.Params) {
		p.FPFrac = 0.28
		p.NopFrac = 0.20
		p.L1Frac = 0.007
	}},
	{"lucas", true, 123500, func(p *workload.Params) {
		p.L1Frac, p.L2Frac = 0.013, 0.008
		p.PrefetchFrac = 0.07
	}},
	{"mesa", true, 73300, func(p *workload.Params) {
		p.FPFrac = 0.14
		p.MispredictRate = 0.04
		p.L1Frac = 0.006
	}},
	{"mgrid", true, 200, func(p *workload.Params) {
		p.NopFrac = 0.34
		p.PrefetchFrac = 0.08
		p.FPFrac = 0.12
		p.L1Frac = 0.009
	}},
	{"sixtrack", true, 4100, func(p *workload.Params) {
		// Compute bound: almost everything hits the L0.
		p.L0Frac, p.L1Frac, p.L2Frac, p.MemFrac = 0.995, 0.003, 0.0015, 0.0002
		p.FPFrac = 0.30
		p.NopFrac = 0.20
		p.LoadFrac = 0.12
	}},
	{"swim", true, 78100, func(p *workload.Params) {
		p.L1Frac, p.L2Frac, p.MemFrac = 0.014, 0.009, 0.001
		p.PrefetchFrac = 0.09
		p.NopFrac = 0.28
	}},
	{"wupwise", true, 23800, func(p *workload.Params) {
		p.CallFrac = 0.02
		p.L1Frac = 0.008
	}},
}

// All returns the full 26-benchmark roster in Table-2 order (integer then
// floating point). The returned slice and its Params are fresh copies.
func All() []Benchmark {
	out := make([]Benchmark, 0, len(roster))
	for _, r := range roster {
		p := intBase()
		if r.fp {
			p = fpBase()
		}
		p.Name = r.name
		p.FloatingPoint = r.fp
		p.Seed = uint64(r.skippedM)*2654435761 + fnv(r.name)
		r.tweak(&p)
		if err := p.Validate(); err != nil {
			panic(fmt.Sprintf("spec: profile %s invalid: %v", r.name, err))
		}
		out = append(out, Benchmark{Name: r.name, FP: r.fp, SkippedM: r.skippedM, Params: p})
	}
	return out
}

// Integer returns the integer subset of the roster.
func Integer() []Benchmark { return filter(false) }

// FloatingPoint returns the floating-point subset of the roster.
func FloatingPoint() []Benchmark { return filter(true) }

func filter(fp bool) []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.FP == fp {
			out = append(out, b)
		}
	}
	return out
}

// ByName looks a benchmark up by its Table-2 name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// ParseList resolves a comma-separated benchmark list to roster entries,
// trimming whitespace around names; an empty (or all-blank) list means the
// full roster. It is the shared vocabulary of the -benches flags and the
// evaluation service's request schema.
func ParseList(list string) ([]Benchmark, error) {
	if strings.TrimSpace(list) == "" {
		return All(), nil
	}
	var out []Benchmark
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		b, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (known: %s)",
				name, strings.Join(Names(), ", "))
		}
		out = append(out, b)
	}
	return out, nil
}

// Names returns the sorted benchmark names, for CLI help text.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	sort.Strings(names)
	return names
}

func fnv(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
