// Package fault implements single-bit fault injection into the instruction
// queue: a Monte-Carlo campaign that samples strikes uniformly over the
// queue's (entry × bit × cycle) space and classifies each outcome according
// to Figure 1 of the paper — benign, silent data corruption (SDC), true
// detected unrecoverable error (true DUE), or false DUE — under a
// configurable protection scheme and π-bit tracking level.
//
// The campaign is the empirical cross-check of the analytic ACE-based AVFs:
// with enough strikes, the measured SDC fraction converges to the SDC AVF
// of the unprotected queue, and the measured (true + false) DUE fractions
// converge to the DUE AVF decomposition of the parity-protected queue.
package fault

import (
	"context"
	"fmt"
	"sort"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/isa"
	"softerror/internal/par"
	"softerror/internal/pibit"
	"softerror/internal/pipeline"
	"softerror/internal/rng"
)

// Outcome classifies one injected strike, mirroring Figure 1.
type Outcome uint8

const (
	// OutcomeIdle: the struck entry held no instruction (outcome 1).
	OutcomeIdle Outcome = iota
	// OutcomeNeverRead: the struck copy was never read after the strike —
	// squashed, flushed, or past its last issue (outcomes 1-2).
	OutcomeNeverRead
	// OutcomeBenignUnACE: read, but the bit cannot affect the outcome and
	// no detection is present (outcome 3).
	OutcomeBenignUnACE
	// OutcomeSDC: read, outcome-changing, undetected (outcome 4).
	OutcomeSDC
	// OutcomeFalseDUE: detected and signalled, but the program outcome
	// would have been unaffected (outcome 5).
	OutcomeFalseDUE
	// OutcomeTrueDUE: detected and signalled, outcome-changing (outcome 6).
	OutcomeTrueDUE
	// OutcomeSuppressed: detected, and the π-bit machinery proved the
	// error false before signalling — the paper's false-DUE reduction.
	OutcomeSuppressed
	// OutcomeLatent: detected and still tracked by π state when the
	// observation window closed; no error signalled, none lost.
	OutcomeLatent
	// OutcomeMissedError: the machinery suppressed an outcome-changing
	// error. This must never happen; the campaign counts it as a safety
	// invariant.
	OutcomeMissedError

	// NumOutcomes is the number of outcome classes.
	NumOutcomes = iota
)

var outcomeNames = [NumOutcomes]string{
	"idle", "never-read", "benign-unace", "sdc",
	"false-due", "true-due", "suppressed", "latent", "missed-error",
}

// String names the outcome.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Config parameterises a campaign.
type Config struct {
	// Protection is the queue's error-detection scheme: ProtNone (SDC
	// study) or ProtParity (DUE study). ProtECC yields all-benign.
	Protection cache.Protection
	// Level is the deployed π-bit tracking level (parity only);
	// ace.TrackNever models the conservative signal-on-detect baseline.
	Level ace.TrackLevel
	// PETEntries sizes the PET buffer at ace.TrackPET (default 512).
	PETEntries int
	// Strikes is the number of injected faults.
	Strikes int
	// Seed drives the strike sampler.
	Seed uint64
}

// Result tallies a campaign.
type Result struct {
	Counts  [NumOutcomes]uint64
	Strikes uint64
}

// Frac returns the fraction of strikes with the given outcome.
func (r *Result) Frac(o Outcome) float64 {
	if r.Strikes == 0 {
		return 0
	}
	return float64(r.Counts[o]) / float64(r.Strikes)
}

// SDCFraction estimates the SDC AVF (meaningful for ProtNone campaigns).
func (r *Result) SDCFraction() float64 { return r.Frac(OutcomeSDC) }

// DUEFraction estimates the DUE AVF (true + false) for parity campaigns.
func (r *Result) DUEFraction() float64 {
	return r.Frac(OutcomeTrueDUE) + r.Frac(OutcomeFalseDUE)
}

// FalseDUEFraction estimates the false-DUE AVF.
func (r *Result) FalseDUEFraction() float64 { return r.Frac(OutcomeFalseDUE) }

// Injector samples strikes against the residency record of one structure
// (the instruction queue by default; the front-end fetch buffer via
// NewFrontEndInjector).
type Injector struct {
	residencies []pipeline.Residency
	log         []isa.Inst
	dead        *ace.Deadness

	cum      []uint64 // cumulative occupied bit-cycles per residency
	totalOcc uint64
	capacity uint64
	bySeq    map[uint64]int // commit-log index by sequence number
}

// NewInjector prepares fault injection over a trace's instruction-queue
// residencies and its deadness analysis.
func NewInjector(tr *pipeline.Trace, dead *ace.Deadness) *Injector {
	return NewStructureInjector(tr.Residencies, tr.Cycles, tr.IQSize, tr.CommitLog, dead)
}

// NewFrontEndInjector prepares fault injection over the fetch buffer: the
// structure §4.2's chunk-granularity π bits protect. A strike is detected
// when the chunk is read at delivery to decode; the same commit-path
// machinery then decides its fate.
func NewFrontEndInjector(tr *pipeline.Trace, dead *ace.Deadness) *Injector {
	return NewStructureInjector(tr.FrontEnd, tr.Cycles, tr.FrontEndCap, tr.CommitLog, dead)
}

// NewROBInjector prepares fault injection over the out-of-order family's
// reorder-buffer residencies (traces recorded with Config.OutOfOrder).
// Retire is the read point, and only correct-path entries are ever read,
// so the commit-path machinery decides each strike's fate exactly as for
// the IQ. The load/store queue and the TAGE tables are analysed at report
// level, like the store buffer: their payloads are addresses, data and
// predictor state rather than instruction entries.
func NewROBInjector(tr *pipeline.Trace, dead *ace.Deadness) *Injector {
	return NewStructureInjector(tr.ROB, tr.Cycles, tr.ROBCap, tr.CommitLog, dead)
}

// NewStructureInjector prepares fault injection over arbitrary residency
// intervals of a structure with the given entry count.
func NewStructureInjector(res []pipeline.Residency, cycles uint64, entries int, log []isa.Inst, dead *ace.Deadness) *Injector {
	inj := &Injector{
		residencies: res,
		log:         log,
		dead:        dead,
		capacity:    cycles * uint64(entries) * uint64(isa.EntryPayloadBits),
		bySeq:       make(map[uint64]int, len(log)),
	}
	inj.cum = make([]uint64, len(res))
	var acc uint64
	for i := range res {
		acc += res[i].Occupancy() * uint64(isa.EntryPayloadBits)
		inj.cum[i] = acc
	}
	inj.totalOcc = acc
	for i := range log {
		inj.bySeq[log[i].Seq] = i
	}
	return inj
}

// strikeSeqBase offsets the RNG sequence space of strike streams; each
// strike index derives its own PCG sequence from it.
const strikeSeqBase = uint64(0xfa17) << 32

// strikeStream returns strike i's private RNG stream. Deriving the stream
// from (seed, index) — rather than drawing all strikes from one sequential
// stream — makes every strike an independently addressable unit of work:
// any partition of the index space (chunked checkpoints, parallel fan-out,
// watchdog retries, single-strike replays) tallies exactly what a serial
// sweep of [0, Strikes) would.
func strikeStream(seed uint64, i int) *rng.Stream {
	return rng.New(seed, strikeSeqBase+uint64(i))
}

// Merge folds o's tallies into r. Campaign chunks merged in any order
// reproduce the full campaign exactly (unsigned addition is exact and
// commutative).
func (r *Result) Merge(o *Result) {
	for i := range r.Counts {
		r.Counts[i] += o.Counts[i]
	}
	r.Strikes += o.Strikes
}

// engine builds the tracking engine a campaign configuration implies.
func (cfg Config) engine() *pibit.Engine {
	pet := cfg.PETEntries
	if pet <= 0 {
		pet = 512
	}
	return &pibit.Engine{Level: cfg.Level, PETEntries: pet, Window: pibit.DefaultWindow}
}

// Run executes a campaign and returns the tallied outcomes.
func (inj *Injector) Run(cfg Config) (*Result, error) {
	return inj.RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: the strike loop checks
// ctx periodically, so SIGINT or a watchdog aborts within one campaign, not
// after it.
func (inj *Injector) RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Strikes <= 0 {
		return nil, fmt.Errorf("fault: Strikes = %d, want > 0", cfg.Strikes)
	}
	return inj.RunRange(ctx, cfg, 0, cfg.Strikes)
}

// RunRange executes strikes [lo, hi) of a campaign. Because every strike
// owns an index-derived RNG stream and the tracking engine holds no
// cross-strike state, tallies of any partition of [0, cfg.Strikes) merge to
// exactly the full campaign's tallies — the property that makes chunked
// checkpoints resumable without drift.
func (inj *Injector) RunRange(ctx context.Context, cfg Config, lo, hi int) (*Result, error) {
	if lo < 0 || hi < lo || hi > cfg.Strikes {
		return nil, fmt.Errorf("fault: strike range [%d, %d) outside [0, %d)", lo, hi, cfg.Strikes)
	}
	if inj.capacity == 0 {
		return nil, fmt.Errorf("fault: empty trace")
	}
	engine := cfg.engine()
	res := &Result{}
	for i := lo; i < hi; i++ {
		// Check for cancellation every 1024 strikes: cheap enough to keep
		// the loop tight, frequent enough that a SIGINT or watchdog stops a
		// campaign mid-flight instead of at its end.
		if i&1023 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		o := inj.strike(strikeStream(cfg.Seed, i), cfg, engine)
		res.Counts[o]++
		res.Strikes++
	}
	return res, nil
}

// StrikeOutcome classifies strike i of a campaign in isolation. It returns
// exactly what a full campaign records for index i — strikes share no
// state — which is what lets a retried or replayed cell be byte-identical
// to its first-try counterpart.
func (inj *Injector) StrikeOutcome(cfg Config, i int) Outcome {
	return inj.strike(strikeStream(cfg.Seed, i), cfg, cfg.engine())
}

// RunMany executes one campaign per configuration, fanning them out over
// the worker pool (workers <= 0 means the par package default). The injector
// is read-only during campaigns and every strike owns an index-derived RNG
// stream — so the result slice is bit-identical to running the
// configurations one after another.
func (inj *Injector) RunMany(cfgs []Config, workers int) ([]*Result, error) {
	c := &Campaign{Injector: inj, Configs: cfgs, Opts: par.Options{Workers: workers}}
	return c.Run(context.Background())
}

// strike injects one uniformly sampled fault and classifies it.
func (inj *Injector) strike(s *rng.Stream, cfg Config, engine *pibit.Engine) Outcome {
	u := uint64(s.Int63n(int64(inj.capacity)))
	if u >= inj.totalOcc {
		return OutcomeIdle
	}
	// Locate the residency containing occupied bit-cycle u.
	idx := sort.Search(len(inj.cum), func(i int) bool { return inj.cum[i] > u })
	r := &inj.residencies[idx]
	base := uint64(0)
	if idx > 0 {
		base = inj.cum[idx-1]
	}
	off := u - base
	cycle := r.Enq + off/uint64(isa.EntryPayloadBits)
	bit := int(off % uint64(isa.EntryPayloadBits))
	field := isa.FieldOfBit(bit)

	// Strikes after the last read are never consumed.
	if !r.Issued || cycle >= r.Issue {
		return OutcomeNeverRead
	}

	cat := inj.dead.Of(&r.Inst)
	truth := ace.BitACE(cat, field, r.Inst.Dest != isa.RegNone)

	switch cfg.Protection {
	case cache.ProtNone:
		if truth {
			return OutcomeSDC
		}
		return OutcomeBenignUnACE
	case cache.ProtECC:
		return OutcomeNeverRead // corrected in place; never observed
	}

	// Parity: the fault is detected when the entry is read at issue.
	if r.Inst.WrongPath {
		// Wrong-path instructions never reach the commit log; the commit
		// point discards them under any π level.
		if cfg.Level >= ace.TrackCommit {
			return OutcomeSuppressed
		}
		return OutcomeFalseDUE
	}
	ci, ok := inj.bySeq[r.Inst.Seq]
	if !ok {
		// Issued after the recorded log ended; be conservative.
		if truth {
			return OutcomeTrueDUE
		}
		return OutcomeFalseDUE
	}
	switch engine.Process(inj.log, ci, field) {
	case pibit.VerdictSignalled:
		if truth {
			return OutcomeTrueDUE
		}
		return OutcomeFalseDUE
	case pibit.VerdictSuppressed:
		if truth {
			return OutcomeMissedError
		}
		return OutcomeSuppressed
	default:
		return OutcomeLatent
	}
}

// StdErr returns the Monte-Carlo standard error of the fraction estimate
// for the given outcome (binomial: sqrt(p(1-p)/n)). Reported AVF estimates
// are typically quoted as Frac ± 2·StdErr.
func (r *Result) StdErr(o Outcome) float64 {
	if r.Strikes == 0 {
		return 0
	}
	p := r.Frac(o)
	return sqrt(p * (1 - p) / float64(r.Strikes))
}

// sqrt avoids importing math for one call site.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}
