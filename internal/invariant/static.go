package invariant

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"

	"softerror/internal/core"
	"softerror/internal/rng"
	"softerror/internal/server"
	"softerror/internal/spec"
	"softerror/internal/static"
)

// checkStaticBounds pins the static analyzer's whole claim: over a
// seed-drawn workload and pipeline configuration, every analytic AVF upper
// bound dominates the simulated AVF for its structure — SDC, false DUE and
// DUE for the instruction queue, front end, store buffer and register
// file (plus the reorder buffer, load/store queue and predictor tables
// when the drawn config is out of order), and every IQ bit-field class —
// and the cycle lower bound never
// exceeds the simulated cycle count. Then the serving leg: /v1/bound
// answers the same cell twice byte-identically without simulating a single
// cycle.
func checkStaticBounds(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0x57A7B)
	params := RandomWorkload(s)
	cfg := RandomPipelineConfig(s)

	res, err := core.RunContext(context.Background(), core.Config{
		Workload: params,
		Pipeline: cfg,
		Commits:  opt.Commits,
		FrontEnd: true, StoreBuffer: true, RegFile: true,
	})
	if err != nil {
		return fmt.Errorf("run: %w (cfg=%+v)", err, cfg)
	}
	if res.Cycles == 0 || res.Commits < opt.Commits {
		return fmt.Errorf("degenerate run: %d cycles, %d/%d commits (cfg=%+v)",
			res.Cycles, res.Commits, opt.Commits, cfg)
	}
	b, err := static.Analyze(params, opt.Commits, cfg)
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}

	const eps = 1e-9
	type pair struct {
		name  string
		bound float64
		sim   float64
	}
	pairs := []pair{
		{"iq sdc", b.IQ.SDC, res.Report.SDCAVF()},
		{"iq false-due", b.IQ.FalseDUE, res.Report.FalseDUEAVF()},
		{"iq due", b.IQ.DUE, res.Report.DUEAVF()},
		{"front-end sdc", b.FrontEnd.SDC, res.FrontEndReport.SDCAVF()},
		{"front-end false-due", b.FrontEnd.FalseDUE, res.FrontEndReport.FalseDUEAVF()},
		{"front-end due", b.FrontEnd.DUE, res.FrontEndReport.DUEAVF()},
		{"store-buffer sdc", b.StoreBuffer.SDC, res.StoreBufferReport.SDCAVF()},
		{"store-buffer false-due", b.StoreBuffer.FalseDUE, res.StoreBufferReport.FalseDUEAVF()},
		{"store-buffer due", b.StoreBuffer.DUE, res.StoreBufferReport.DUEAVF()},
		{"reg-file sdc", b.RegFile.SDC, res.RegFile.SDCAVF()},
		{"reg-file false-due", b.RegFile.FalseDUE, res.RegFile.FalseDUEAVF()},
		{"reg-file due", b.RegFile.DUE, res.RegFile.DUEAVF()},
	}
	if res.ROBReport != nil {
		pairs = append(pairs,
			pair{"rob sdc", b.ROB.SDC, res.ROBReport.SDCAVF()},
			pair{"rob false-due", b.ROB.FalseDUE, res.ROBReport.FalseDUEAVF()},
			pair{"rob due", b.ROB.DUE, res.ROBReport.DUEAVF()})
	}
	if res.LSQReport != nil {
		pairs = append(pairs,
			pair{"lsq sdc", b.LSQ.SDC, res.LSQReport.SDCAVF()},
			pair{"lsq false-due", b.LSQ.FalseDUE, res.LSQReport.FalseDUEAVF()},
			pair{"lsq due", b.LSQ.DUE, res.LSQReport.DUEAVF()})
	}
	if res.TAGEReport != nil {
		pairs = append(pairs,
			pair{"tage sdc", b.TAGE.SDC, res.TAGEReport.SDCAVF()},
			pair{"tage false-due", b.TAGE.FalseDUE, res.TAGEReport.FalseDUEAVF()},
			pair{"tage due", b.TAGE.DUE, res.TAGEReport.DUEAVF()})
	}
	total := float64(res.Report.TotalBC())
	for f, bound := range b.IQField {
		pairs = append(pairs, pair{
			fmt.Sprintf("iq field %d", f), bound,
			float64(res.Report.FieldACEBC[f]) / total,
		})
	}
	for _, p := range pairs {
		if p.bound+eps < p.sim {
			return fmt.Errorf("%s: static bound %.9f < simulated AVF %.9f (cfg=%+v)",
				p.name, p.bound, p.sim, cfg)
		}
	}
	if b.MinCycles > res.Cycles {
		return fmt.Errorf("cycle lower bound %d > simulated cycles %d (cfg=%+v)",
			b.MinCycles, res.Cycles, cfg)
	}
	return checkBoundServing(s)
}

// checkBoundServing audits the production surface on a seed-drawn roster
// cell: two identical /v1/bound queries must produce byte-identical bodies
// (the second from cache), and the process-wide simulated-cycle counter —
// the expvar mcycles_simulated source — must not move.
func checkBoundServing(s *rng.Stream) error {
	srv := server.New(server.Config{Workers: 1, CacheBytes: 1 << 20})
	defer srv.Close()

	all := spec.All()
	bench := all[s.Intn(len(all))].Name
	iq := 8 + int(s.Intn(120))
	ooo := s.Intn(2) == 1
	target := fmt.Sprintf("/v1/bound?bench=%s&iqsize=%d&ooo=%v&commits=4000",
		bench, iq, ooo)

	before := core.CyclesSimulated()
	r1 := get(srv, target)
	if r1.Code != http.StatusOK {
		return fmt.Errorf("GET %s = %d: %s", target, r1.Code, r1.Body.String())
	}
	r2 := get(srv, target)
	if r2.Code != http.StatusOK {
		return fmt.Errorf("repeat GET %s = %d: %s", target, r2.Code, r2.Body.String())
	}
	if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		return fmt.Errorf("bound responses for %s differ between queries", target)
	}
	if h := r2.Header().Get("X-Cache"); h != "hit" {
		return fmt.Errorf("repeat bound query served %q, want cache hit", h)
	}
	if after := core.CyclesSimulated(); after != before {
		return fmt.Errorf("bound queries moved mcycles_simulated by %d cycles, want 0",
			after-before)
	}
	return nil
}

// get runs one GET against the in-process server and returns the recorded
// response.
func get(s *server.Server, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}
