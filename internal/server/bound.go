package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"softerror/internal/checkpoint"
	"softerror/internal/core"
	"softerror/internal/isa"
	"softerror/internal/pipeline"
	"softerror/internal/spec"
	"softerror/internal/static"
)

// BoundStruct is one structure's AVF upper bounds in a /v1/bound response.
type BoundStruct struct {
	SDC      float64 `json:"sdc"`
	FalseDUE float64 `json:"false_due"`
	DUE      float64 `json:"due"`
}

// BoundResponse is the GET /v1/bound body: analytic AVF upper bounds for
// one (benchmark, policy, geometry, commit budget) cell, plus the static
// cost model the server prices sweep work with. Every number is derived
// from the decoded program alone — serving it burns zero simulated cycles.
type BoundResponse struct {
	Bench      string `json:"bench"`
	Policy     string `json:"policy"`
	IQSize     int    `json:"iq_size"`
	OutOfOrder bool   `json:"out_of_order"`
	Commits    uint64 `json:"commits"`

	IQ          BoundStruct `json:"iq"`
	FrontEnd    BoundStruct `json:"front_end"`
	StoreBuffer BoundStruct `json:"store_buffer"`
	RegFile     BoundStruct `json:"reg_file"`

	// IQFields bounds the instruction queue's per-field ACE fraction,
	// keyed by field name (opcode, dest, ...).
	IQFields map[string]float64 `json:"iq_fields"`

	// MinCycles is a provable lower bound on the cell's simulated cycles;
	// EstCycles is the admission cost estimate derived from it.
	MinCycles uint64 `json:"min_cycles"`
	EstCycles uint64 `json:"est_cycles"`
}

// boundSpec is a normalised /v1/bound query.
type boundSpec struct {
	bench   spec.Benchmark
	policy  core.Policy
	iqSize  int
	ooo     bool
	commits uint64
}

// parseBoundQuery validates the query parameters and applies the sweep
// cell defaults (iqsize 64, in order, core.DefaultCommits), so a bound
// query prices exactly the cell a sweep with the same axes would run.
func parseBoundQuery(r *http.Request) (boundSpec, error) {
	q := r.URL.Query()
	var b boundSpec
	name := q.Get("bench")
	if name == "" {
		return b, fmt.Errorf("bench parameter is required")
	}
	var ok bool
	if b.bench, ok = spec.ByName(name); !ok {
		return b, fmt.Errorf("unknown benchmark %q", name)
	}
	pol := q.Get("policy")
	if pol == "" {
		pol = core.PolicyBaseline.Flag()
	}
	var err error
	if b.policy, err = core.ParsePolicy(pol); err != nil {
		return b, err
	}
	b.iqSize = 64
	if v := q.Get("iqsize"); v != "" {
		if b.iqSize, err = strconv.Atoi(v); err != nil || b.iqSize < 1 {
			return b, fmt.Errorf("bad iqsize %q, want a positive integer", v)
		}
	}
	if v := q.Get("ooo"); v != "" {
		if b.ooo, err = strconv.ParseBool(v); err != nil {
			return b, fmt.Errorf("bad ooo %q, want a boolean", v)
		}
	}
	b.commits = core.DefaultCommits
	if v := q.Get("commits"); v != "" {
		if b.commits, err = strconv.ParseUint(v, 10, 32); err != nil || b.commits < 1 {
			return b, fmt.Errorf("bad commits %q, want a positive integer", v)
		}
	}
	return b, nil
}

// fingerprint is the bound's content address in the shared result cache.
func (b boundSpec) fingerprint() string {
	return checkpoint.Fingerprint("bound", 1, b.bench.Name, uint8(b.policy),
		b.iqSize, b.ooo, b.commits)
}

// handleBound serves an analytic AVF bound for one sweep cell. Bounds are
// served from the content-addressed cache and computed — statically, never
// by simulation — on miss; the endpoint takes no eval or sweep slot, so
// bound traffic cannot displace simulation work, and `mcycles_simulated`
// does not move however many bounds are served.
func (s *Server) handleBound(w http.ResponseWriter, r *http.Request) {
	s.metrics.boundQueries.Add(1)
	if s.isDraining() {
		s.metrics.rejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	bs, err := parseBoundQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := bs.fingerprint()
	if body, ctype, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		s.metrics.boundsServed.Add(1)
		s.serveBody(w, ctype, "hit", body)
		return
	}
	cfg := pipeline.DefaultConfig()
	bs.policy.Apply(&cfg)
	cfg.IQSize = bs.iqSize
	cfg.OutOfOrder = bs.ooo
	bounds, err := static.Analyze(bs.bench.Params, bs.commits, cfg)
	if err != nil {
		// The one analyzable failure mode: a stream that cannot be decoded
		// position-addressably. Not the client's fault, not retryable.
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := BoundResponse{
		Bench:       bs.bench.Name,
		Policy:      bs.policy.Flag(),
		IQSize:      bs.iqSize,
		OutOfOrder:  bs.ooo,
		Commits:     bs.commits,
		IQ:          BoundStruct(bounds.IQ),
		FrontEnd:    BoundStruct(bounds.FrontEnd),
		StoreBuffer: BoundStruct(bounds.StoreBuffer),
		RegFile:     BoundStruct(bounds.RegFile),
		IQFields:    make(map[string]float64, isa.NumFields),
		MinCycles:   bounds.MinCycles,
		EstCycles:   bounds.EstCycles,
	}
	for f := isa.Field(0); f < isa.NumFields; f++ {
		resp.IQFields[f.String()] = bounds.IQField[f]
	}
	body, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body = append(body, '\n')
	const ctype = "application/json; charset=utf-8"
	s.cache.Put(key, ctype, body)
	s.metrics.cacheMisses.Add(1)
	s.metrics.boundsServed.Add(1)
	s.serveBody(w, ctype, "miss", body)
}
