package core

import (
	"math"
	"testing"

	"softerror/internal/spec"
)

func TestRunSimPointsBasics(t *testing.T) {
	b, _ := spec.ByName("gzip-graphic")
	sum, err := RunSimPoints(b, PolicyBaseline, 3, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 3 || sum.Bench != "gzip-graphic" {
		t.Fatalf("summary header wrong: %+v", sum)
	}
	if sum.MeanIPC <= 0 || sum.MeanSDCAVF <= 0 || sum.MeanDUEAVF <= sum.MeanSDCAVF {
		t.Fatalf("implausible means: %+v", sum)
	}
	// Different slices differ, but only by phase noise: stds are small
	// relative to the means.
	if sum.StdSDCAVF <= 0 {
		t.Fatal("distinct SimPoints should not be identical")
	}
	if sum.StdSDCAVF > 0.5*sum.MeanSDCAVF {
		t.Fatalf("SimPoint SDC spread implausibly wide: %+v", sum)
	}
}

func TestRunSimPointsFirstMatchesSingleRun(t *testing.T) {
	// The first SimPoint is the benchmark's headline configuration: a
	// single-point summary must equal a direct run.
	b, _ := spec.ByName("ammp")
	sum, err := RunSimPoints(b, PolicyBaseline, 1, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(Config{Workload: b.Params, Commits: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.MeanIPC-direct.IPC) > 1e-12 {
		t.Fatalf("first SimPoint IPC %v != direct %v", sum.MeanIPC, direct.IPC)
	}
	if math.Abs(sum.MeanSDCAVF-direct.Report.SDCAVF()) > 1e-12 {
		t.Fatal("first SimPoint SDC AVF mismatch")
	}
	if sum.StdIPC != 0 {
		t.Fatal("single SimPoint should have zero spread")
	}
}

func TestRunSimPointsRejectsZero(t *testing.T) {
	b, _ := spec.ByName("mcf")
	if _, err := RunSimPoints(b, PolicyBaseline, 0, 1000); err == nil {
		t.Fatal("zero SimPoints accepted")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	if math.Abs(s-2.138)/2.138 > 0.01 { // sample std
		t.Fatalf("std = %v", s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty meanStd should be zero")
	}
	if _, s := meanStd([]float64{3}); s != 0 {
		t.Fatal("single-element std should be zero")
	}
}

func TestProtectionComparison(t *testing.T) {
	benches := []spec.Benchmark{}
	for _, name := range []string{"gzip-graphic", "ammp"} {
		b, _ := spec.ByName(name)
		benches = append(benches, b)
	}
	rows, err := ProtectionComparison(benches, 10_000, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	by := map[string]ProtectionRow{}
	for _, r := range rows {
		by[r.Scheme] = r
	}
	unprot := by["unprotected"]
	parity := by["parity (conservative)"]
	store := by["parity + pi to store buffer"]
	mem := by["parity + pi through memory"]
	combined := by["parity + pi + squash-L1"]
	ecc := by["ecc (corrects single-bit)"]

	if unprot.SDCFIT <= 0 || unprot.DUEFIT != 0 {
		t.Fatalf("unprotected row wrong: %+v", unprot)
	}
	if parity.SDCFIT != 0 {
		t.Fatal("parity must eliminate SDC")
	}
	// The paper's §2.2 point: parity more than doubles the error rate.
	if float64(parity.DUEFIT) < 1.5*float64(unprot.SDCFIT) {
		t.Fatalf("parity DUE %v should far exceed unprotected SDC %v",
			parity.DUEFIT, unprot.SDCFIT)
	}
	// Tracking and squashing strictly improve.
	if !(store.DUEFIT < parity.DUEFIT && mem.DUEFIT < store.DUEFIT) {
		t.Fatalf("tracking ordering wrong: %v %v %v", parity.DUEFIT, store.DUEFIT, mem.DUEFIT)
	}
	if combined.DUEFIT >= store.DUEFIT {
		t.Fatalf("adding squash should reduce DUE: %v vs %v", combined.DUEFIT, store.DUEFIT)
	}
	if ecc.SDCFIT != 0 || ecc.DUEFIT != 0 {
		t.Fatal("ECC row should be zero-rate")
	}
	if by["unprotected + squash-L1"].SDCFIT >= unprot.SDCFIT {
		t.Fatal("squash should reduce unprotected SDC FIT")
	}
}

func TestFigure2UnderSquashShrinksBase(t *testing.T) {
	var benches []spec.Benchmark
	for _, name := range []string{"mcf", "ammp"} {
		b, _ := spec.ByName(name)
		benches = append(benches, b)
	}
	s := NewSuite(benches, 20_000)
	base, err := s.Figure2(512)
	if err != nil {
		t.Fatal(err)
	}
	squash, err := s.Figure2Under(PolicySquashL1, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		// §6.3: squashing shrinks the false-DUE base the stack covers;
		// full deployment still reaches zero.
		if squash[i].BaseFalseDUE >= base[i].BaseFalseDUE {
			t.Errorf("%s: squash did not shrink false DUE (%.4f vs %.4f)",
				base[i].Bench, squash[i].BaseFalseDUE, base[i].BaseFalseDUE)
		}
		if squash[i].Remaining[5] != 0 {
			t.Errorf("%s: full stack under squash leaves %.4f", base[i].Bench, squash[i].Remaining[5])
		}
	}
}
