package chip

import (
	"encoding/json"
	"strings"
	"testing"

	"softerror/internal/cache"
)

// sampleBudget mirrors the structures this repository measures: the IQ,
// the front-end buffer, the store buffer and the register files, with
// AVFs in the ranges the simulator produces.
func sampleBudget() *Budget {
	return &Budget{
		RawFITPerBit:   0.001,
		SDCTargetYears: 1000,
		DUETargetYears: 25,
		Structures: []Structure{
			{Name: "instruction-queue", Bits: 64 * 41, SDCAVF: 0.30, FalseDUEAVF: 0.28},
			{Name: "front-end", Bits: 60 * 41, SDCAVF: 0.27, FalseDUEAVF: 0.39},
			{Name: "store-buffer", Bits: 16 * 108, SDCAVF: 0.04, FalseDUEAVF: 0.01},
			{Name: "register-files", Bits: 128*64 + 128*82 + 64, SDCAVF: 0.09, FalseDUEAVF: 0.01},
		},
	}
}

func TestEvaluateUnprotected(t *testing.T) {
	b := sampleBudget()
	ev, err := b.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if ev.SDC <= 0 {
		t.Fatal("unprotected chip must have SDC rate")
	}
	if ev.DUE != 0 {
		t.Fatal("no detection deployed: DUE must be zero")
	}
	if ev.AreaCost != 0 {
		t.Fatal("no protection: zero area cost")
	}
}

func TestEvaluateParityMovesSDCtoDUE(t *testing.T) {
	b := sampleBudget()
	for i := range b.Structures {
		b.Structures[i].Protection = cache.ProtParity
	}
	ev, err := b.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if ev.SDC != 0 {
		t.Fatal("parity everywhere must eliminate SDC")
	}
	unprot := sampleBudget()
	base, _ := unprot.Evaluate()
	// §2.2: DUE(parity) = true (old SDC) + false > old SDC.
	if float64(ev.DUE) <= float64(base.SDC) {
		t.Fatalf("parity DUE %v should exceed unprotected SDC %v", ev.DUE, base.SDC)
	}
}

func TestTrackingScalesFalseDUE(t *testing.T) {
	b := sampleBudget()
	for i := range b.Structures {
		b.Structures[i].Protection = cache.ProtParity
	}
	noTrack, _ := b.Evaluate()
	for i := range b.Structures {
		b.Structures[i].Tracking = 1
	}
	full, _ := b.Evaluate()
	if float64(full.DUE) >= float64(noTrack.DUE) {
		t.Fatal("full tracking must reduce DUE")
	}
	// With full tracking, DUE equals the true-DUE (SDC AVF) component.
	want := 0.0
	for _, s := range sampleBudget().Structures {
		want += 0.001 * s.Bits * s.SDCAVF
	}
	if got := float64(full.DUE); got < want*0.999 || got > want*1.001 {
		t.Fatalf("tracked DUE = %v, want ~%v", got, want)
	}
}

func TestEvaluateValidation(t *testing.T) {
	b := sampleBudget()
	b.RawFITPerBit = 0
	if _, err := b.Evaluate(); err == nil {
		t.Fatal("zero raw rate accepted")
	}
	b = sampleBudget()
	b.Structures = nil
	if _, err := b.Evaluate(); err == nil {
		t.Fatal("empty budget accepted")
	}
	b = sampleBudget()
	b.Structures[0].Bits = 0
	if _, err := b.Evaluate(); err == nil {
		t.Fatal("zero-bit structure accepted")
	}
	b = sampleBudget()
	b.Structures[0].Tracking = 2
	if _, err := b.Evaluate(); err == nil {
		t.Fatal("tracking > 1 accepted")
	}
}

func TestPlanMeetsTargets(t *testing.T) {
	b := sampleBudget()
	plan, ev, err := b.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.MeetsSDC || !ev.MeetsDUE {
		t.Fatalf("plan does not meet targets: %+v", ev)
	}
	// The planner must not gold-plate: given these targets the all-ECC
	// assignment also works but costs 12%; the chosen mix must be cheaper
	// or equal.
	allECC := sampleBudget()
	for i := range allECC.Structures {
		allECC.Structures[i].Protection = cache.ProtECC
	}
	eccEv, _ := allECC.Evaluate()
	if ev.AreaCost > eccEv.AreaCost {
		t.Fatalf("plan cost %.4f exceeds all-ECC %.4f", ev.AreaCost, eccEv.AreaCost)
	}
	if len(plan.Structures) != len(b.Structures) {
		t.Fatal("plan lost structures")
	}
}

func TestPlanStructureCountGuard(t *testing.T) {
	// All-ECC zeroes both rates, so every finite target is feasible; the
	// planner's only hard failure is the exhaustive-search size guard.
	big := &Budget{RawFITPerBit: 0.001, Structures: make([]Structure, 13)}
	for i := range big.Structures {
		big.Structures[i] = Structure{Name: "s", Bits: 1}
	}
	if _, _, err := big.Plan(); err == nil {
		t.Fatal("oversized plan accepted")
	}
}

func TestDescribeSortsByContribution(t *testing.T) {
	b := sampleBudget()
	lines := b.Describe()
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The register files dominate raw bits but have low AVF; the IQ and
	// front-end dominate contribution. First line must mention one of the
	// top contributors.
	if !strings.Contains(lines[0], "register-files") &&
		!strings.Contains(lines[0], "instruction-queue") &&
		!strings.Contains(lines[0], "front-end") {
		t.Fatalf("unexpected top contributor: %s", lines[0])
	}
	for _, l := range lines {
		if !strings.Contains(l, "FIT") {
			t.Fatalf("line missing FIT: %s", l)
		}
	}
}

func TestBudgetJSONRoundTrip(t *testing.T) {
	// cmd/chipplan consumes budgets as JSON; the schema is the exported
	// struct itself, so a round trip must preserve the evaluation.
	b := sampleBudget()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back Budget
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	evA, _ := b.Evaluate()
	evB, _ := back.Evaluate()
	if evA != evB {
		t.Fatalf("evaluation drifted over JSON: %+v vs %+v", evA, evB)
	}
}
