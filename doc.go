// Package softerror reproduces "Techniques to Reduce the Soft Error Rate
// of a High-Performance Microprocessor" (Weaver, Emer, Mukherjee,
// Reinhardt; ISCA 2004) as a self-contained Go library: an Itanium®2-like
// in-order pipeline model with a 64-entry instruction queue, ACE-based
// AVF analysis, the squash-on-miss exposure-reduction techniques with the
// MITF metric, and the full π-bit / anti-π / PET-buffer false-DUE tracking
// stack, validated by single-bit fault injection.
//
// This package is the stable façade: it aliases the primary entry points
// of the implementation packages so that typical studies need only this
// import. The full surface lives in the internal packages:
//
//	internal/workload  synthetic SPEC CPU2000 stand-ins
//	internal/spec      the Table-2 benchmark roster
//	internal/cache     the L0/L1/L2 data-cache hierarchy
//	internal/pipeline  the in-order core and instruction queue
//	internal/ace       deadness discovery and AVF integration
//	internal/pibit     π bit, anti-π, PET buffer, tracking engine
//	internal/fault     single-bit fault-injection campaigns
//	internal/serate    FIT/MTTF/MITF arithmetic
//	internal/chip      chip-level rate budgets and protection planning
//	internal/scrub     multi-bit strike models: scrubbing and interleaving
//	internal/sweep     design-space grids to CSV
//	internal/tracefile trace persistence for offline analysis
//	internal/config    JSON experiment configs
//	internal/core      experiment drivers (Table 1, Figures 1-4)
//
// Quick start:
//
//	res, err := softerror.Run(softerror.Config{
//		Workload: softerror.DefaultWorkload(),
//		Commits:  100_000,
//	})
//	fmt.Println(res.IPC, res.Report.SDCAVF(), res.Report.DUEAVF())
package softerror

import (
	"softerror/internal/core"
	"softerror/internal/spec"
	"softerror/internal/workload"
)

// Config parameterises one simulation; see internal/core.Config.
type Config = core.Config

// Result is a distilled simulation outcome; see internal/core.Result.
type Result = core.Result

// Suite evaluates a benchmark roster under multiple exposure policies.
type Suite = core.Suite

// Policy selects the exposure-reduction configuration (Table 1's rows).
type Policy = core.Policy

// Exposure-reduction policies.
const (
	PolicyBaseline   = core.PolicyBaseline
	PolicySquashL1   = core.PolicySquashL1
	PolicySquashL0   = core.PolicySquashL0
	PolicyThrottleL1 = core.PolicyThrottleL1
	PolicyThrottleL0 = core.PolicyThrottleL0
)

// Benchmark is one entry of the Table-2 roster.
type Benchmark = spec.Benchmark

// WorkloadParams configures a synthetic workload.
type WorkloadParams = workload.Params

// Run executes one simulation end to end.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// NewSuite builds an experiment suite over a roster (nil = all 26).
func NewSuite(benches []Benchmark, commits uint64) *Suite {
	return core.NewSuite(benches, commits)
}

// Benchmarks returns the full Table-2 roster.
func Benchmarks() []Benchmark { return spec.All() }

// BenchmarkByName looks up one Table-2 benchmark.
func BenchmarkByName(name string) (Benchmark, bool) { return spec.ByName(name) }

// DefaultWorkload returns a mid-of-the-road integer workload profile.
func DefaultWorkload() WorkloadParams { return workload.Default() }
