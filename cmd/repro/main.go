// Command repro regenerates every table and figure of the paper's
// evaluation section:
//
//	repro table1     — Table 1: squashing vs IPC and SDC/DUE AVFs
//	repro table2     — Table 2: the benchmark roster
//	repro outcomes   — Figure 1: fault-outcome taxonomy (injection campaign)
//	repro fig2       — Figure 2: false-DUE coverage per tracking mechanism
//	repro fig3       — Figure 3: FDD coverage vs PET-buffer size
//	repro fig4       — Figure 4: combined squash + π tracking, per benchmark
//	repro breakdown  — §4.1 occupancy breakdown (idle/Ex-ACE/un-ACE/ACE)
//	repro ablation   — fetch throttling vs squashing (§3.1)
//	repro protection — absolute SDC/DUE rates across protection schemes (§2, §8)
//	repro regfile    — register-file AVFs across the roster (§8's extension)
//	repro simpoints  — AVF sensitivity to the SimPoint slice chosen (§5)
//	repro all        — everything above (except simpoints)
//
// Numbers come from the synthetic workload substrate, so absolute values
// differ from the paper's Asim/SPEC measurements; the shapes are the
// reproduction target (see EXPERIMENTS.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"softerror/internal/checkpoint"
	"softerror/internal/cli"
	"softerror/internal/core"
	"softerror/internal/fault"
	"softerror/internal/par"
	"softerror/internal/report"
	"softerror/internal/spec"
)

func main() {
	cli.Exit("repro", run(os.Args[1:]))
}

func run(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	commits := fs.Uint64("commits", core.DefaultCommits, "committed instructions per run")
	benchList := fs.String("benches", "", "comma-separated benchmark subset (default: all 26)")
	pet := fs.Int("pet", 512, "PET buffer entries for fig2")
	rawFIT := fs.Float64("rawfit", 0.001, "raw soft-error rate per bit (FIT), for protection")
	simpoints := fs.Int("simpoints", 4, "slices per benchmark for simpoints")
	strikes := fs.Int("strikes", 50_000, "fault-injection strikes for outcomes")
	seed := fs.Uint64("seed", 1, "fault-injection seed")
	csvOut := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jobs := fs.Int("j", 0, "simulation worker count (default GOMAXPROCS); output is identical at any -j")
	ckPath := fs.String("checkpoint", "", "snapshot the outcomes campaign to this file; removed on success")
	resume := fs.Bool("resume", false, "resume the outcomes campaign from an existing -checkpoint snapshot")
	prof := cli.NewProfile(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: repro [flags] <table1|table2|outcomes|fig2|fig3|fig4|breakdown|ablation|protection|regfile|simpoints|all>\n\n")
		fs.PrintDefaults()
	}
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return cli.Usagef("exactly one experiment required")
	}
	if *resume && *ckPath == "" {
		return cli.Usagef("-resume requires -checkpoint")
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	par.SetDefault(*jobs)
	ctx, stop := cli.SignalContext()
	defer stop()

	benches := spec.All()
	if *benchList != "" {
		benches = benches[:0]
		for _, name := range strings.Split(*benchList, ",") {
			b, ok := spec.ByName(strings.TrimSpace(name))
			if !ok {
				return cli.Usagef("unknown benchmark %q (known: %s)",
					name, strings.Join(spec.Names(), ", "))
			}
			benches = append(benches, b)
		}
	}
	suite := core.NewSuite(benches, *commits)
	suite.Ctx = ctx
	emit := func(t *report.Table) error {
		if *csvOut {
			return t.CSV(os.Stdout)
		}
		t.Fprint(os.Stdout)
		fmt.Println()
		return nil
	}

	experiments := map[string]func() error{
		"table1":     func() error { return table1(suite, emit) },
		"table2":     func() error { return table2(benches, emit) },
		"outcomes":   func() error { return outcomes(ctx, benches, *commits, *strikes, *seed, *jobs, *ckPath, *resume, emit) },
		"fig2":       func() error { return fig2(suite, *pet, emit) },
		"fig3":       func() error { return fig3(suite, emit) },
		"fig4":       func() error { return fig4(suite, emit) },
		"breakdown":  func() error { return breakdown(suite, emit) },
		"ablation":   func() error { return ablation(suite, emit) },
		"protection": func() error { return protection(benches, *commits, *rawFIT, emit) },
		"regfile":    func() error { return regfile(suite, emit) },
		"simpoints":  func() error { return simPoints(benches, *commits, *simpoints, emit) },
	}
	name := fs.Arg(0)
	if name == "all" {
		for _, k := range []string{"table2", "table1", "breakdown", "fig2", "fig3", "fig4", "ablation", "protection", "regfile", "outcomes"} {
			if err := experiments[k](); err != nil {
				return err
			}
		}
		return nil
	}
	exp, ok := experiments[name]
	if !ok {
		fs.Usage()
		return cli.Usagef("unknown experiment %q", name)
	}
	return exp()
}

func table1(s *core.Suite, emit func(*report.Table) error) error {
	rows, err := s.Table1()
	if err != nil {
		return err
	}
	t := report.New("Table 1: impact of squashing on IPC and the IQ's SDC and DUE AVFs",
		"design point", "IPC", "SDC AVF", "DUE AVF", "IPC/SDC AVF", "IPC/DUE AVF")
	for _, r := range rows {
		t.AddRow(r.Policy.String(), report.F2(r.IPC), report.Pct(r.SDCAVF),
			report.Pct(r.DUEAVF), report.F2(r.MeritSDC), report.F2(r.MeritDUE))
	}
	return emit(t)
}

func table2(benches []spec.Benchmark, emit func(*report.Table) error) error {
	t := report.New("Table 2: benchmark roster (synthetic SPEC CPU2000 stand-ins)",
		"benchmark", "suite", "skipped (M)")
	for _, b := range benches {
		kind := "INT"
		if b.FP {
			kind = "FP"
		}
		t.AddRow(b.Name, kind, fmt.Sprintf("%d", b.SkippedM))
	}
	return emit(t)
}

func outcomes(ctx context.Context, benches []spec.Benchmark, commits uint64, strikes int, seed uint64, jobs int, ckPath string, resume bool, emit func(*report.Table) error) error {
	if len(benches) == 0 {
		return cli.Usagef("no benchmarks")
	}
	b := benches[0]
	var ck *checkpoint.File[fault.Result]
	if ckPath != "" {
		cells, fp := core.OutcomesPlan(b, commits, strikes, seed)
		var err error
		ck, err = checkpoint.Open[fault.Result](ckPath, "outcomes", fp, cells, resume)
		if err != nil {
			return err
		}
	}
	rows, err := core.OutcomesCampaign(ctx, b, commits, strikes, seed, jobs, ck)
	if err != nil {
		if ck != nil && errors.Is(err, context.Canceled) {
			return &cli.PartialError{
				Done: ck.CountDone(), Total: ck.Total(), Path: ck.Path(), Err: err,
			}
		}
		return err
	}
	if err := ck.Remove(); err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("Figure 1: fault-outcome taxonomy (%s, %d strikes)", b.Name, strikes),
		"configuration", "idle", "never-read", "benign", "SDC", "false DUE", "true DUE", "suppressed", "latent")
	for _, r := range rows {
		frac := func(o fault.Outcome) string {
			return report.Pct(float64(r.Counts[o]) / float64(r.Strikes))
		}
		t.AddRow(r.Label, frac(fault.OutcomeIdle), frac(fault.OutcomeNeverRead),
			frac(fault.OutcomeBenignUnACE), frac(fault.OutcomeSDC),
			frac(fault.OutcomeFalseDUE), frac(fault.OutcomeTrueDUE),
			frac(fault.OutcomeSuppressed), frac(fault.OutcomeLatent))
	}
	return emit(t)
}

func fig2(s *core.Suite, pet int, emit func(*report.Table) error) error {
	rows, err := s.Figure2(pet)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("Figure 2: false-DUE AVF remaining after cumulative tracking (PET=%d)", pet),
		"benchmark", "base", "pi-commit", "anti-pi", "pet", "pi-regfile", "pi-storebuf", "pi-memory")
	addRow := func(r core.Figure2Row) {
		cells := []string{r.Bench, report.Pct(r.BaseFalseDUE)}
		for _, rem := range r.Remaining {
			cells = append(cells, report.Pct(rem))
		}
		t.AddRow(cells...)
	}
	for _, r := range rows {
		addRow(r)
	}
	intOnly, fpOnly := false, true
	mi := core.Figure2Mean(rows, &intOnly)
	mi.Bench = "mean-INT"
	mf := core.Figure2Mean(rows, &fpOnly)
	mf.Bench = "mean-FP"
	ma := core.Figure2Mean(rows, nil)
	ma.Bench = "mean-ALL"
	for _, m := range []core.Figure2Row{mi, mf, ma} {
		addRow(m)
	}
	return emit(t)
}

func fig3(s *core.Suite, emit func(*report.Table) error) error {
	rows, err := s.Figure3(nil)
	if err != nil {
		return err
	}
	t := report.New("Figure 3: FDD coverage vs PET-buffer size",
		"entries", "FDD-reg", "+returns", "+memory")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Entries), report.Pct(r.FDDReg),
			report.Pct(r.WithReturns), report.Pct(r.WithMemory))
	}
	return emit(t)
}

func fig4(s *core.Suite, emit func(*report.Table) error) error {
	rows, err := s.Figure4()
	if err != nil {
		return err
	}
	t := report.New("Figure 4: combined squash-L1 + pi-to-store tracking, relative to baseline",
		"benchmark", "rel SDC AVF", "rel DUE AVF", "rel IPC")
	var sdc, due, ipc []float64
	for _, r := range rows {
		t.AddRow(r.Bench, report.F3(r.RelSDC), report.F3(r.RelDUE), report.F3(r.RelIPC))
		sdc = append(sdc, r.RelSDC)
		due = append(due, r.RelDUE)
		ipc = append(ipc, r.RelIPC)
	}
	t.AddRow("geomean", report.F3(core.GeoMean(sdc)), report.F3(core.GeoMean(due)), report.F3(core.GeoMean(ipc)))
	return emit(t)
}

func breakdown(s *core.Suite, emit func(*report.Table) error) error {
	rows, err := s.Breakdown()
	if err != nil {
		return err
	}
	t := report.New("Occupancy breakdown of the IQ (section 4.1)",
		"benchmark", "idle", "never-read", "Ex-ACE", "un-ACE", "ACE")
	var idle, nr, ex, un, ace float64
	for _, r := range rows {
		t.AddRow(r.Bench, report.Pct(r.Idle), report.Pct(r.NeverRead),
			report.Pct(r.ExACE), report.Pct(r.UnACE), report.Pct(r.ACE))
		idle += r.Idle
		nr += r.NeverRead
		ex += r.ExACE
		un += r.UnACE
		ace += r.ACE
	}
	n := float64(len(rows))
	t.AddRow("mean", report.Pct(idle/n), report.Pct(nr/n), report.Pct(ex/n),
		report.Pct(un/n), report.Pct(ace/n))
	return emit(t)
}

func ablation(s *core.Suite, emit func(*report.Table) error) error {
	rows, err := s.ThrottleAblation()
	if err != nil {
		return err
	}
	t := report.New("Ablation: squashing vs fetch throttling (section 3.1)",
		"design point", "IPC", "SDC AVF", "IPC/SDC AVF")
	for _, r := range rows {
		t.AddRow(r.Policy.String(), report.F2(r.IPC), report.Pct(r.SDCAVF), report.F2(r.MeritSDC))
	}
	return emit(t)
}

func protection(benches []spec.Benchmark, commits uint64, rawFIT float64, emit func(*report.Table) error) error {
	rows, err := core.ProtectionComparison(benches, commits, rawFIT)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("Protection design space for the IQ at %.4f FIT/bit", rawFIT),
		"scheme", "SDC rate", "DUE rate")
	for _, r := range rows {
		t.AddRow(r.Scheme, r.SDCFIT.String(), r.DUEFIT.String())
	}
	return emit(t)
}

func simPoints(benches []spec.Benchmark, commits uint64, n int, emit func(*report.Table) error) error {
	t := report.New(fmt.Sprintf("SimPoint sensitivity (%d slices per benchmark, baseline)", n),
		"benchmark", "IPC", "+/-", "SDC AVF", "+/-", "DUE AVF", "+/-")
	for _, b := range benches {
		sum, err := core.RunSimPoints(b, core.PolicyBaseline, n, commits)
		if err != nil {
			return err
		}
		t.AddRow(b.Name,
			report.F2(sum.MeanIPC), report.F2(sum.StdIPC),
			report.Pct(sum.MeanSDCAVF), report.Pct(sum.StdSDCAVF),
			report.Pct(sum.MeanDUEAVF), report.Pct(sum.StdDUEAVF))
	}
	return emit(t)
}

func regfile(s *core.Suite, emit func(*report.Table) error) error {
	rows, err := s.RegFile()
	if err != nil {
		return err
	}
	t := report.New("Register-file vulnerability across the roster (section 8 extension)",
		"benchmark", "SDC AVF", "false DUE", "Ex-ACE", "untouched")
	var sdc, fd float64
	for _, r := range rows {
		t.AddRow(r.Bench, report.Pct(r.SDCAVF), report.Pct(r.FalseDUEAVF),
			report.Pct(r.ExACE), report.Pct(r.Untouched))
		sdc += r.SDCAVF
		fd += r.FalseDUEAVF
	}
	n := float64(len(rows))
	t.AddRow("mean", report.Pct(sdc/n), report.Pct(fd/n), "", "")
	return emit(t)
}
