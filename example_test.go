package softerror_test

import (
	"fmt"

	"softerror"
)

// Example_quickRun simulates a small slice of the default workload and
// checks the basic AVF relationships from §2 of the paper: adding parity
// converts the SDC AVF into true DUE and adds false DUE on top.
func Example_quickRun() {
	res, err := softerror.Run(softerror.Config{
		Workload: softerror.DefaultWorkload(),
		Commits:  20_000,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep := res.Report
	fmt.Println("IPC positive:", res.IPC > 0)
	fmt.Println("true DUE equals SDC:", rep.TrueDUEAVF() == rep.SDCAVF())
	fmt.Println("parity raises total error rate:", rep.DUEAVF() > rep.SDCAVF())
	// Output:
	// IPC positive: true
	// true DUE equals SDC: true
	// parity raises total error rate: true
}

// Example_squashPolicy compares baseline and squash-on-L1 on one Table-2
// benchmark: the AVF must fall.
func Example_squashPolicy() {
	bench, ok := softerror.BenchmarkByName("mcf")
	if !ok {
		fmt.Println("missing benchmark")
		return
	}
	suite := softerror.NewSuite([]softerror.Benchmark{bench}, 20_000)
	base, err := suite.Result(bench, softerror.PolicyBaseline)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	squash, err := suite.Result(bench, softerror.PolicySquashL1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("squashing reduces SDC AVF:", squash.Report.SDCAVF() < base.Report.SDCAVF())
	fmt.Println("squash events fired:", squash.Squashes > 0)
	// Output:
	// squashing reduces SDC AVF: true
	// squash events fired: true
}

// Example_roster lists the shape of the Table-2 benchmark roster.
func Example_roster() {
	benches := softerror.Benchmarks()
	ints, fps := 0, 0
	for _, b := range benches {
		if b.FP {
			fps++
		} else {
			ints++
		}
	}
	fmt.Printf("%d benchmarks: %d integer, %d floating-point\n", len(benches), ints, fps)
	// Output:
	// 26 benchmarks: 12 integer, 14 floating-point
}
