// Squashstudy: the exposure-reduction trade-off of §3 on a memory-bound
// workload. Sweeps the squash triggers and fetch-throttling, and reasons
// about the performance/reliability trade with the MITF metric: a policy is
// worthwhile only if it raises IPC/AVF — i.e. if it cuts the AVF by more
// than it cuts the IPC.
//
//	go run ./examples/squashstudy
package main

import (
	"fmt"
	"log"
	"os"

	"softerror/internal/core"
	"softerror/internal/pipeline"
	"softerror/internal/report"
	"softerror/internal/serate"
	"softerror/internal/spec"
)

func main() {
	// mcf: the classic pointer-chasing, memory-bound SPEC workload —
	// instructions pool in the queue behind load misses, so there is a
	// lot of exposure for squashing to remove.
	bench, ok := spec.ByName("mcf")
	if !ok {
		log.Fatal("mcf missing from roster")
	}

	policies := []core.Policy{
		core.PolicyBaseline,
		core.PolicySquashL1,
		core.PolicySquashL0,
		core.PolicyThrottleL1,
	}

	var base *core.Result
	t := report.New("exposure reduction on "+bench.Name,
		"policy", "IPC", "SDC AVF", "DUE AVF", "squashes", "rel MITF (SDC)")
	for _, pol := range policies {
		cfg := pipeline.DefaultConfig()
		pol.Apply(&cfg)
		res, err := core.Run(core.Config{
			Workload: bench.Params,
			Pipeline: cfg,
			Commits:  120_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if pol == core.PolicyBaseline {
			base = res
		}
		// MITF is proportional to IPC/AVF at fixed frequency and raw
		// error rate, so the relative MITF needs no rate assumptions.
		relMITF := serate.Merit(res.IPC, res.Report.SDCAVF()) /
			serate.Merit(base.IPC, base.Report.SDCAVF())
		t.AddRow(pol.String(), report.F2(res.IPC),
			report.Pct(res.Report.SDCAVF()), report.Pct(res.Report.DUEAVF()),
			report.Int(res.Squashes), report.Rel(relMITF))
	}
	t.Fprint(os.Stdout)

	fmt.Println("\nreading the last column: positive means the AVF fell by more than")
	fmt.Println("the IPC did, so the machine commits more instructions between errors —")
	fmt.Println("the paper's criterion for a worthwhile exposure-reduction policy.")
}
