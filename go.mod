module softerror

go 1.22
