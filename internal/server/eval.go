package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"softerror/internal/checkpoint"
	"softerror/internal/core"
	"softerror/internal/experiments"
	"softerror/internal/spec"
)

// EvalRequest is the POST /v1/eval body. It mirrors cmd/repro's flag
// surface exactly — same names, same defaults — so that the rendered
// response is byte-identical to the CLI's output for the same invocation.
// Zero/absent fields take the repro defaults.
type EvalRequest struct {
	// Experiment names one of the repro experiments ("table1", "fig2",
	// ..., or "all").
	Experiment string `json:"experiment"`
	// Benches is the roster subset (empty = all 26).
	Benches []string `json:"benches,omitempty"`
	// Commits per run (default core.DefaultCommits).
	Commits uint64 `json:"commits,omitempty"`
	// PET buffer entries for fig2 (default 512).
	PET int `json:"pet,omitempty"`
	// RawFIT is the raw per-bit soft-error rate for protection (default
	// 0.001).
	RawFIT float64 `json:"rawfit,omitempty"`
	// SimPoints is the slices-per-benchmark count (default 4).
	SimPoints int `json:"simpoints,omitempty"`
	// Strikes and Seed parameterise the outcomes campaign (defaults
	// 50000, 1).
	Strikes int    `json:"strikes,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// CSV selects CSV output over the aligned table.
	CSV bool `json:"csv,omitempty"`
}

// decodeEvalRequest parses a /v1/eval body, refusing unknown fields so a
// typo'd knob cannot silently fall back to its default.
func decodeEvalRequest(r io.Reader) (EvalRequest, error) {
	var req EvalRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return EvalRequest{}, err
	}
	return req, nil
}

// Fingerprint returns the request's content address — the cache key its
// response is stored under — after normalisation, or the normalisation
// error for an invalid request. Exposed so the invariant layer can audit
// injectivity over the same addresses the server serves by.
func (r *EvalRequest) Fingerprint() (string, error) {
	e, err := r.normalize()
	if err != nil {
		return "", err
	}
	return e.fingerprint(), nil
}

// evalSpec is a normalised, validated request: defaults applied, roster
// resolved to canonical benchmarks. Two requests that normalise equally
// are the same content address.
type evalSpec struct {
	experiment string
	benches    []spec.Benchmark
	names      []string
	commits    uint64
	pet        int
	rawFIT     float64
	simPoints  int
	strikes    int
	seed       uint64
	csv        bool
}

// normalize validates the request and applies cmd/repro's defaults.
func (r *EvalRequest) normalize() (evalSpec, error) {
	e := evalSpec{
		experiment: r.Experiment,
		commits:    r.Commits,
		pet:        r.PET,
		rawFIT:     r.RawFIT,
		simPoints:  r.SimPoints,
		strikes:    r.Strikes,
		seed:       r.Seed,
		csv:        r.CSV,
	}
	if !experiments.Valid(e.experiment) {
		return evalSpec{}, fmt.Errorf("unknown experiment %q (known: %v and \"all\")",
			e.experiment, experiments.Names())
	}
	// Every numeric knob is a count or a rate: negatives and non-finite
	// rates are refused here rather than fed to the engine.
	switch {
	case e.pet < 0:
		return evalSpec{}, fmt.Errorf("pet must be non-negative, got %d", e.pet)
	case e.simPoints < 0:
		return evalSpec{}, fmt.Errorf("simpoints must be non-negative, got %d", e.simPoints)
	case e.strikes < 0:
		return evalSpec{}, fmt.Errorf("strikes must be non-negative, got %d", e.strikes)
	case e.rawFIT < 0 || math.IsNaN(e.rawFIT) || math.IsInf(e.rawFIT, 0):
		return evalSpec{}, fmt.Errorf("rawfit must be a finite non-negative rate, got %v", e.rawFIT)
	}
	var err error
	if e.benches, err = spec.ParseList(joinNames(r.Benches)); err != nil {
		return evalSpec{}, err
	}
	e.names = make([]string, len(e.benches))
	for i, b := range e.benches {
		e.names[i] = b.Name
	}
	if e.commits == 0 {
		e.commits = core.DefaultCommits
	}
	if e.pet == 0 {
		e.pet = 512
	}
	if e.rawFIT == 0 {
		e.rawFIT = 0.001
	}
	if e.simPoints == 0 {
		e.simPoints = 4
	}
	if e.strikes == 0 {
		e.strikes = 50_000
	}
	if e.seed == 0 {
		e.seed = 1
	}
	return e, nil
}

func joinNames(names []string) string {
	var buf bytes.Buffer
	for i, n := range names {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(n)
	}
	return buf.String()
}

// fingerprint is the content address: every knob that changes a single
// byte of the response participates.
func (e evalSpec) fingerprint() string {
	parts := []any{"eval", 1, e.experiment, e.csv, e.commits, e.pet,
		e.rawFIT, e.simPoints, e.strikes, e.seed}
	for _, n := range e.names {
		parts = append(parts, n)
	}
	return checkpoint.Fingerprint(parts...)
}

// contentType returns the response media type for the output form.
func (e evalSpec) contentType() string {
	if e.csv {
		return "text/csv; charset=utf-8"
	}
	return "text/plain; charset=utf-8"
}

// render computes the response body — exactly the bytes cmd/repro prints
// for the equivalent invocation — on a suite drawn from the warm pool.
func (s *Server) render(ctx context.Context, e evalSpec) ([]byte, error) {
	p := experiments.Params{
		Suite:     s.suites.get(e.commits, e.benches, e.names),
		Benches:   e.benches,
		Commits:   e.commits,
		PET:       e.pet,
		RawFIT:    e.rawFIT,
		SimPoints: e.simPoints,
		Strikes:   e.strikes,
		Seed:      e.seed,
		Jobs:      s.cfg.Workers,
	}
	var buf bytes.Buffer
	if err := experiments.Run(ctx, &buf, e.experiment, p, e.csv); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// flight single-flights one in-progress eval computation: concurrent
// identical requests block on done and share the outcome instead of each
// burning a worker-pool slot on the same simulation.
type flight struct {
	done  chan struct{}
	body  []byte
	ctype string
	err   error
}

// suitePool keeps warm core.Suite memos across requests — the reason a
// long-lived service beats the one-shot CLI: the roster simulations behind
// Table 1, Figures 2-4, the breakdown, the ablation and the register-file
// study are computed once per (roster, commits) and reused by every later
// request. LRU-bounded so pathological request streams cannot hoard memory.
type suitePool struct {
	ctx     context.Context
	workers int

	mu    sync.Mutex
	max   int
	m     map[string]*core.Suite
	order []string // least recently used first
}

func newSuitePool(ctx context.Context, workers, max int) *suitePool {
	return &suitePool{ctx: ctx, workers: workers, max: max, m: make(map[string]*core.Suite)}
}

// get returns the pooled suite for (commits, roster), building it on first
// use. The suite memo is single-flighted internally, so concurrent callers
// of the same cell run one simulation.
func (p *suitePool) get(commits uint64, benches []spec.Benchmark, names []string) *core.Suite {
	parts := []any{"suite", commits}
	for _, n := range names {
		parts = append(parts, n)
	}
	key := checkpoint.Fingerprint(parts...)
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.m[key]; ok {
		p.touch(key)
		return s
	}
	s := core.NewSuite(benches, commits)
	s.Ctx = p.ctx
	s.Workers = p.workers
	p.m[key] = s
	p.order = append(p.order, key)
	if len(p.order) > p.max {
		evict := p.order[0]
		p.order = p.order[1:]
		delete(p.m, evict)
	}
	return s
}

// touch moves key to the most-recently-used end.
func (p *suitePool) touch(key string) {
	for i, k := range p.order {
		if k == key {
			p.order = append(append(p.order[:i:i], p.order[i+1:]...), key)
			return
		}
	}
}
