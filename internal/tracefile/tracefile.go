// Package tracefile persists pipeline traces to disk so that expensive
// simulations can be analysed repeatedly — different protection schemes,
// tracking levels, PET sizes, fault-injection campaigns — without
// re-running the machine model. Files are gob-encoded and gzip-compressed,
// with a versioned header so stale files fail loudly instead of decoding
// garbage.
package tracefile

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"softerror/internal/pipeline"
)

// magic identifies a trace file; version gates the gob schema.
const (
	magic   = "softerror-trace"
	version = 1
)

type header struct {
	Magic   string
	Version int
}

// Write serialises a trace to w.
func Write(w io.Writer, tr *pipeline.Trace) error {
	if tr == nil {
		return fmt.Errorf("tracefile: nil trace")
	}
	zw := gzip.NewWriter(w)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(header{Magic: magic, Version: version}); err != nil {
		return fmt.Errorf("tracefile: encode header: %w", err)
	}
	if err := enc.Encode(tr); err != nil {
		return fmt.Errorf("tracefile: encode trace: %w", err)
	}
	return zw.Close()
}

// Read deserialises a trace from r, validating the header.
func Read(r io.Reader) (*pipeline.Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("tracefile: not a trace file (gzip): %w", err)
	}
	defer zr.Close()
	dec := gob.NewDecoder(zr)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("tracefile: decode header: %w", err)
	}
	if h.Magic != magic {
		return nil, fmt.Errorf("tracefile: bad magic %q", h.Magic)
	}
	if h.Version != version {
		return nil, fmt.Errorf("tracefile: version %d, this build reads %d", h.Version, version)
	}
	var tr pipeline.Trace
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("tracefile: decode trace: %w", err)
	}
	return &tr, nil
}

// Save writes a trace to path, creating or truncating the file.
func Save(path string, tr *pipeline.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := Write(bw, tr); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace from path.
func Load(path string) (*pipeline.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
