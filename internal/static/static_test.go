package static_test

import (
	"context"
	"os"
	"reflect"
	"strconv"
	"testing"

	"softerror/internal/core"
	"softerror/internal/invariant"
	"softerror/internal/pipeline"
	"softerror/internal/rng"
	"softerror/internal/static"
	"softerror/internal/workload"
)

func TestEmptyProgram(t *testing.T) {
	a := static.NewAnalyzer()
	a.Load(nil, 0)
	b := a.Query(pipeline.DefaultConfig())
	if b != (static.Bounds{}) {
		t.Fatalf("empty program bounds = %+v, want zero", b)
	}
}

func TestQueryDeterministic(t *testing.T) {
	b1, err := static.Analyze(workload.Default(), 2000, pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := static.Analyze(workload.Default(), 2000, pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Fatalf("Analyze not deterministic:\n%+v\n%+v", b1, b2)
	}
}

// TestBoundsInRange: every AVF bound is a fraction regardless of config
// shape, including degenerate configs Query has to clamp.
func TestBoundsInRange(t *testing.T) {
	cfgs := []pipeline.Config{
		pipeline.DefaultConfig(),
		{IssueWidth: 1, FetchWidth: 1, IQSize: 1, FrontEndDepth: 1,
			BranchResolveLatency: 1, StoreBufferSize: 1, StoreDrainLatency: 1},
		{OutOfOrder: true}, // all-zero dims: clamped, not rejected
		{IssueWidth: -3, FetchWidth: 0, IQSize: 1 << 30, OutOfOrder: true},
	}
	for s := uint64(1); s <= 4; s++ {
		r := rng.New(s, 0x57A71)
		p := invariant.RandomWorkload(r)
		sh, err := workload.NewShared(p)
		if err != nil {
			t.Fatal(err)
		}
		a := static.NewAnalyzer()
		a.Load(sh.BodyPrefix(1000+static.BodySlack), 1000)
		for _, cfg := range cfgs {
			b := a.Query(cfg)
			check := func(name string, v float64) {
				if v < 0 || v > 1 || v != v {
					t.Errorf("seed %d cfg %+v: %s = %v out of [0,1]", s, cfg, name, v)
				}
			}
			for name, sb := range map[string]static.StructBounds{
				"IQ": b.IQ, "FrontEnd": b.FrontEnd,
				"StoreBuffer": b.StoreBuffer, "RegFile": b.RegFile,
			} {
				check(name+".SDC", sb.SDC)
				check(name+".FalseDUE", sb.FalseDUE)
				check(name+".DUE", sb.DUE)
			}
			for f, v := range b.IQField {
				check("IQField", v)
				_ = f
			}
		}
	}
}

// TestBoundsDominateSimulation is the inline slice of the static-bounds
// seraudit check: over random (workload, config) draws, every static bound
// must dominate the simulated AVF it claims to bound.
func TestBoundsDominateSimulation(t *testing.T) {
	const eps = 1e-9
	commits := uint64(2000)
	if v := os.Getenv("STATIC_DOMINANCE_COMMITS"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("STATIC_DOMINANCE_COMMITS: %v", err)
		}
		commits = n
	}
	seeds := uint64(10)
	if v := os.Getenv("STATIC_DOMINANCE_SEEDS"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("STATIC_DOMINANCE_SEEDS: %v", err)
		}
		seeds = n
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		s := rng.New(seed, 0x57A7B)
		p := invariant.RandomWorkload(s)
		cfg := invariant.RandomPipelineConfig(s)
		res, err := core.RunContext(context.Background(), core.Config{
			Workload: p, Pipeline: cfg, Commits: commits,
			FrontEnd: true, StoreBuffer: true, RegFile: true,
		})
		if err != nil {
			t.Fatalf("seed %d: run: %v (cfg=%+v)", seed, err, cfg)
		}
		b, err := static.Analyze(p, commits, cfg)
		if err != nil {
			t.Fatalf("seed %d: analyze: %v", seed, err)
		}
		ck := func(name string, bound, sim float64) {
			if bound+eps < sim {
				t.Errorf("seed %d %s: static bound %.6f < simulated %.6f (cfg=%+v)",
					seed, name, bound, sim, cfg)
			}
		}
		ck("IQ.SDC", b.IQ.SDC, res.Report.SDCAVF())
		ck("IQ.FalseDUE", b.IQ.FalseDUE, res.Report.FalseDUEAVF())
		ck("IQ.DUE", b.IQ.DUE, res.Report.DUEAVF())
		total := float64(res.Report.TotalBC())
		for f := range b.IQField {
			ck("IQField", b.IQField[f], float64(res.Report.FieldACEBC[f])/total)
		}
		ck("FrontEnd.SDC", b.FrontEnd.SDC, res.FrontEndReport.SDCAVF())
		ck("FrontEnd.FalseDUE", b.FrontEnd.FalseDUE, res.FrontEndReport.FalseDUEAVF())
		ck("FrontEnd.DUE", b.FrontEnd.DUE, res.FrontEndReport.DUEAVF())
		ck("StoreBuffer.SDC", b.StoreBuffer.SDC, res.StoreBufferReport.SDCAVF())
		ck("StoreBuffer.FalseDUE", b.StoreBuffer.FalseDUE, res.StoreBufferReport.FalseDUEAVF())
		ck("StoreBuffer.DUE", b.StoreBuffer.DUE, res.StoreBufferReport.DUEAVF())
		ck("RegFile.SDC", b.RegFile.SDC, res.RegFile.SDCAVF())
		ck("RegFile.FalseDUE", b.RegFile.FalseDUE, res.RegFile.FalseDUEAVF())
		ck("RegFile.DUE", b.RegFile.DUE, res.RegFile.DUEAVF())
		if b.MinCycles > res.Cycles {
			t.Errorf("seed %d: MinCycles %d > simulated cycles %d (cfg=%+v)",
				seed, b.MinCycles, res.Cycles, cfg)
		}
	}
}
