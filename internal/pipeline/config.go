// Package pipeline implements the in-order, six-wide, Itanium®2-like core
// model whose 64-entry instruction queue (IQ) is the structure under study.
//
// The model is a cycle-level simulator of exactly the mechanisms that
// determine IQ residency — the quantity all of the paper's results derive
// from:
//
//   - fetch through a multi-cycle front end, with wrong-path fetch past
//     mispredicted branches until resolution;
//   - a scoreboarded, strictly in-order issue stage that stalls at the
//     first instruction with an unready source (stall-on-use), so that a
//     load miss pools younger instructions in the IQ;
//   - a data-cache hierarchy whose service level classifies each load as an
//     L0/L1/L2/memory access — the squash trigger predicate;
//   - the paper's exposure-reduction actions: squashing the IQ on a
//     triggering load miss and refetching after the miss returns, or
//     throttling fetch for the duration of the miss;
//   - a post-issue replay window during which issued entries linger in the
//     IQ without ever being read again, generating the paper's Ex-ACE
//     state.
//
// Every IQ occupancy interval is recorded as a Residency; the ace package
// turns those into SDC/DUE architectural vulnerability factors.
package pipeline

import (
	"fmt"

	"softerror/internal/cache"
)

// Trigger selects the cache-miss event that fires an exposure-reduction
// action (paper §3.1). TriggerL1Miss fires on loads serviced beyond the L1
// (≈25-cycle latency or worse); TriggerL0Miss fires on loads serviced
// beyond the L0 (≈10-cycle latency or worse), a strict superset.
type Trigger uint8

const (
	// TriggerNone disables the action.
	TriggerNone Trigger = iota
	// TriggerL0Miss fires on any load that misses the L0 cache.
	TriggerL0Miss
	// TriggerL1Miss fires on any load that misses the L1 cache.
	TriggerL1Miss
)

// String names the trigger.
func (tr Trigger) String() string {
	switch tr {
	case TriggerNone:
		return "none"
	case TriggerL0Miss:
		return "l0-miss"
	case TriggerL1Miss:
		return "l1-miss"
	default:
		return fmt.Sprintf("trigger(%d)", uint8(tr))
	}
}

// level returns the cache level whose miss fires the trigger.
func (tr Trigger) level() int {
	switch tr {
	case TriggerL0Miss:
		return cache.LevelL0
	case TriggerL1Miss:
		return cache.LevelL1
	default:
		return -1
	}
}

// Config parameterises the core. Zero values are invalid; start from
// DefaultConfig.
type Config struct {
	// FetchWidth is syllables fetched per cycle (two IA-64 bundles = 6).
	FetchWidth int
	// IssueWidth is the maximum instructions issued per cycle.
	IssueWidth int
	// IQSize is the number of instruction-queue entries (the paper: 64).
	IQSize int
	// FrontEndDepth is the fetch-to-IQ latency in cycles; it sets the
	// refill bubble after a squash or a branch redirect.
	FrontEndDepth int
	// BranchResolveLatency is cycles from a branch's issue to redirect.
	BranchResolveLatency int
	// ReplayWindow is how many cycles an issued entry lingers in the IQ
	// before eviction, in case it must be replayed; this residency is the
	// paper's Ex-ACE state (issued for the last time but not yet evicted).
	ReplayWindow int
	// ALULatency and FPLatency are execute latencies in cycles.
	ALULatency int
	FPLatency  int

	// StoreBufferSize is the number of store-buffer entries; committed
	// stores wait here before draining to the cache, and younger loads
	// forward from matching entries. A full buffer stalls store issue.
	StoreBufferSize int
	// StoreDrainLatency is the minimum cycles a store sits in the buffer
	// before it may drain (one drain per cycle).
	StoreDrainLatency int

	// OutOfOrder selects the out-of-order core family: issue skips past
	// stalled entries and picks any ready instruction (register-true
	// dataflow order), and the core grows the family's AVF-bearing
	// structures — a reorder buffer with in-order retire, a load/store
	// queue with store-to-load forwarding and drain-at-retire, and a
	// TAGE-class predictor table read on every control fetch. The paper's
	// machine is in-order; this family answers its §3.1 remark that the
	// squashing trade-off is "similar, though not as pronounced, for
	// out-of-order machines": stalled loads no longer block independent
	// work, so less state pools behind misses.
	OutOfOrder bool

	// ROBSize, RetireWidth and LSQSize dimension the out-of-order
	// family's reorder buffer (entries; retired in order, at most
	// RetireWidth per cycle) and load/store queue. TAGETables and
	// TAGETableBits dimension the TAGE predictor: TAGETables tagged
	// tables of 1<<TAGETableBits entries with geometrically growing
	// history lengths. All five are ignored by the in-order family;
	// zero values select the defaults Normalized fills in.
	ROBSize       int
	RetireWidth   int
	LSQSize       int
	TAGETables    int
	TAGETableBits int

	// SquashTrigger squashes all unissued IQ entries younger than a load
	// that misses at the trigger level, stalls fetch until the miss
	// returns, and refetches the squashed instructions (paper §3.1,
	// after Tullsen & Brown).
	SquashTrigger Trigger
	// RefetchOverlap is how many cycles before the triggering miss returns
	// that refetch restarts, hiding (part of) the front-end refill under
	// the miss shadow. FrontEndDepth means refetched instructions arrive
	// exactly as the miss data does; 0 means the refill is fully exposed
	// after the miss returns.
	RefetchOverlap int
	// ThrottleTrigger stalls fetch (without squashing) until the
	// triggering miss returns — the paper's second, less effective action.
	ThrottleTrigger Trigger

	// SingleStep disables event-horizon cycle skipping, forcing one step
	// per simulated cycle. The fast path is exact (pinned by the
	// differential fuzz tests), so this is a debugging and
	// cross-validation knob, not a fidelity one.
	SingleStep bool
}

// FrontEndCap returns the fetch-buffer capacity implied by the front-end
// geometry: FetchWidth syllables per stage across FrontEndDepth stages,
// plus two cycles of skid.
func (c Config) FrontEndCap() int {
	return c.FetchWidth * (c.FrontEndDepth + 2)
}

// DefaultConfig returns the modelled Itanium®2-like core: 6-wide fetch and
// issue, 64-entry IQ, and a front end deep enough that its refill hides
// under an L1-miss shadow but not under an L0-miss shadow — the mechanism
// behind the paper's Table 1 trade-off.
func DefaultConfig() Config {
	return Config{
		FetchWidth:           6,
		IssueWidth:           6,
		IQSize:               64,
		FrontEndDepth:        8,
		BranchResolveLatency: 3,
		ReplayWindow:         3,
		ALULatency:           1,
		FPLatency:            4,
		StoreBufferSize:      16,
		StoreDrainLatency:    6,
		RefetchOverlap:       4,
		SquashTrigger:        TriggerNone,
		ThrottleTrigger:      TriggerNone,
	}
}

// Normalized returns the configuration with the out-of-order family's
// zero-valued structure dimensions replaced by their defaults: a 192-entry
// ROB retiring 8 per cycle, a 48-entry LSQ, and a 4-table TAGE predictor
// with 512-entry tables. In-order configurations pass through unchanged,
// so the in-order family's behaviour (and byte encoding) is untouched.
// The engines and the static analyzer normalize internally; callers only
// need this to learn which dimensions a run actually used.
func (c Config) Normalized() Config {
	if !c.OutOfOrder {
		return c
	}
	if c.ROBSize == 0 {
		c.ROBSize = 192
	}
	if c.RetireWidth == 0 {
		c.RetireWidth = 8
	}
	if c.LSQSize == 0 {
		c.LSQSize = 48
	}
	if c.TAGETables == 0 {
		c.TAGETables = 4
	}
	if c.TAGETableBits == 0 {
		c.TAGETableBits = 9
	}
	return c
}

// Validate reports a descriptive error for invalid configurations.
func (c *Config) Validate() error {
	pos := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth},
		{"IssueWidth", c.IssueWidth},
		{"IQSize", c.IQSize},
		{"FrontEndDepth", c.FrontEndDepth},
		{"BranchResolveLatency", c.BranchResolveLatency},
		{"ALULatency", c.ALULatency},
		{"FPLatency", c.FPLatency},
		{"StoreBufferSize", c.StoreBufferSize},
		{"StoreDrainLatency", c.StoreDrainLatency},
	}
	for _, f := range pos {
		if f.v < 1 {
			return fmt.Errorf("pipeline: %s = %d, want >= 1", f.name, f.v)
		}
	}
	if c.ReplayWindow < 0 {
		return fmt.Errorf("pipeline: ReplayWindow = %d, want >= 0", c.ReplayWindow)
	}
	if c.RefetchOverlap < 0 || c.RefetchOverlap > c.FrontEndDepth {
		return fmt.Errorf("pipeline: RefetchOverlap = %d, want in [0, FrontEndDepth]", c.RefetchOverlap)
	}
	if c.SquashTrigger > TriggerL1Miss {
		return fmt.Errorf("pipeline: invalid SquashTrigger %d", c.SquashTrigger)
	}
	if c.ThrottleTrigger > TriggerL1Miss {
		return fmt.Errorf("pipeline: invalid ThrottleTrigger %d", c.ThrottleTrigger)
	}
	ooo := []struct {
		name string
		v    int
	}{
		{"ROBSize", c.ROBSize},
		{"RetireWidth", c.RetireWidth},
		{"LSQSize", c.LSQSize},
		{"TAGETables", c.TAGETables},
		{"TAGETableBits", c.TAGETableBits},
	}
	for _, f := range ooo {
		if f.v < 0 {
			return fmt.Errorf("pipeline: %s = %d, want >= 0", f.name, f.v)
		}
	}
	if c.OutOfOrder {
		n := c.Normalized()
		if n.TAGETableBits > 12 {
			return fmt.Errorf("pipeline: TAGETableBits = %d, want <= 12", n.TAGETableBits)
		}
		// The folded global history must fit one uint64 word.
		if n.TAGETables*n.TAGETableBits > 48 {
			return fmt.Errorf("pipeline: TAGETables*TAGETableBits = %d, want <= 48",
				n.TAGETables*n.TAGETableBits)
		}
	}
	return nil
}
