package core

import (
	"context"
	"fmt"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// BatchSpec is one lane of a batched evaluation: a pipeline configuration
// plus the lane's optional extra analyses. The RegFile analysis is not
// available on the batched path (it needs per-commit cycle retention only
// the solo Collector carries); route such runs through RunContext.
type BatchSpec struct {
	Pipeline    pipeline.Config
	FrontEnd    bool
	StoreBuffer bool
}

// RunBatchContext evaluates K configuration variants over one decode of
// the workload's instruction stream: one generator pass, one deadness
// analysis per realised commit-log length, K compact pipeline lanes. Each
// returned Result is byte-identical to RunContext under the same spec —
// the batched-independent seraudit check pins this.
//
// Workloads whose stream cannot be shared (PC-indexed branch predictors)
// fail with an error wrapping workload.ErrUnshareable; callers fall back
// to per-spec RunContext. Caches are always pre-warmed (the batched path
// serves sweeps and suites, which never skip warming).
func RunBatchContext(ctx context.Context, w workload.Params, commits uint64, specs []BatchSpec) ([]*Result, error) {
	a := defaultArenas.Get()
	defer defaultArenas.Put(a)
	return RunBatchArena(ctx, a, w, commits, specs)
}

// RunBatchArena is RunBatchContext drawing all reusable evaluation state —
// decoded stream memos, warm hierarchies, collectors, lane state — from
// the caller's arena. Arena reuse is invisible in the results: a reused
// arena returns byte-identical Results to a fresh one (the arena-reuse
// seraudit check pins this). The arena serves one run at a time.
func RunBatchArena(ctx context.Context, a *Arena, w workload.Params, commits uint64, specs []BatchSpec) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	if a == nil {
		a = NewArena()
	}
	if commits == 0 {
		commits = DefaultCommits
	}
	sh, group, err := a.stream(w)
	if err != nil {
		return nil, err
	}
	// Pre-size the shared memos: every lane walks ~commits body
	// instructions (plus a small overshoot), and wrong-path draws run a
	// fraction of that. One up-front reservation replaces the log2(commits)
	// append-doublings the memos would otherwise pay; on a reused stream
	// the memos are already materialised and this is a no-op.
	sh.Reserve(int(commits)+1024, int(commits)/4+256)

	// Warm hierarchies come re-stamped from the arena's pool: CloneInto is
	// bit-identical to a fresh warm clone (pinned by the cache clone
	// tests), and a memcpy of the warm state is far cheaper than
	// re-simulating the warm-up K times.
	zero := pipeline.Config{}
	cfgs := make([]pipeline.Config, len(specs))
	mems := make([]*cache.Hierarchy, len(specs))
	sinks := make([]pipeline.BatchSink, len(specs))
	colls := make([]*ace.BatchCollector, len(specs))
	for i, sp := range specs {
		cfg := sp.Pipeline
		if cfg == zero {
			cfg = pipeline.DefaultConfig()
		}
		cfgs[i] = cfg
		mems[i] = a.warmHierarchy()
		ccfg := ace.StructureConfig(cfg, commits)
		ccfg.FrontEnd, ccfg.StoreBuffer = sp.FrontEnd, sp.StoreBuffer
		coll, err := a.collector(ccfg, group)
		if err != nil {
			return nil, err
		}
		colls[i] = coll
		sinks[i] = coll
	}

	stats, err := pipeline.RunBatchStreamArena(ctx, commits, sh, cfgs, mems, sinks, &a.pipe)
	if err != nil {
		return nil, err
	}

	out := make([]*Result, len(specs))
	for i := range specs {
		st := stats[i]
		reps := colls[i].Finish(st.Cycles)
		a.putCollector(colls[i])
		a.putHierarchy(mems[i])
		simCycles.Add(st.Cycles)
		out[i] = &Result{
			Name:              w.Name,
			IPC:               st.IPC(),
			Report:            reps.IQ,
			Cycles:            st.Cycles,
			Commits:           st.Commits,
			Squashes:          st.Squashes,
			Refetches:         st.Refetches,
			ThrottleEvents:    st.ThrottleEvents,
			LoadMissRateL0:    st.LoadMissRate(cache.LevelL0),
			LoadMissRateL1:    st.LoadMissRate(cache.LevelL1),
			FrontEndReport:    reps.FrontEnd,
			StoreBufferReport: reps.StoreBuffer,
			ROBReport:         reps.ROB,
			LSQReport:         reps.LSQ,
			TAGEReport:        tageReport(cfgs[i], st),
		}
	}
	return out, nil
}
