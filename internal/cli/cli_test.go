package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{flag.ErrHelp, ExitOK},
		{errors.New("boom"), ExitRuntime},
		{Usagef("bad flag"), ExitUsage},
		{&PartialError{Done: 3, Total: 8, Path: "x.ckpt", Err: errors.New("interrupted")}, ExitPartial},
		{fmt.Errorf("wrapped: %w", Usagef("inner")), ExitUsage},
		{fmt.Errorf("wrapped: %w", &PartialError{Err: errors.New("e")}), ExitPartial},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestParseClassifiesFlagErrors(t *testing.T) {
	newFS := func() *flag.FlagSet {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		fs.Bool("ok", false, "")
		return fs
	}
	if err := Parse(newFS(), []string{"-ok"}); err != nil {
		t.Errorf("valid args: %v", err)
	}
	if err := Parse(newFS(), []string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: err = %v, want flag.ErrHelp through unwrapped", err)
	}
	err := Parse(newFS(), []string{"-nope"})
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Errorf("unknown flag: err = %v (%T), want *UsageError", err, err)
	}
}

func TestPartialErrorMessage(t *testing.T) {
	pe := &PartialError{Done: 5, Total: 9, Path: "grid.ckpt", Err: errors.New("interrupt")}
	msg := pe.Error()
	for _, want := range []string{"5/9", "grid.ckpt", "-resume", "interrupt"} {
		if !strings.Contains(msg, want) {
			t.Errorf("PartialError message %q missing %q", msg, want)
		}
	}
	if !errors.Is(pe, pe.Err) {
		t.Error("PartialError does not unwrap to its cause")
	}
}
