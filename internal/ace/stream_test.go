package ace

import (
	"context"
	"reflect"
	"testing"

	"softerror/internal/cache"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// TestCollectorMatchesBatchAnalysis pins the core guarantee of the
// streaming path: for identical runs, the Collector's reports are *exactly*
// equal — every bit-cycle tally, field decomposition and deadness
// population — to materialising the trace and running the batch analyses.
func TestCollectorMatchesBatchAnalysis(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*pipeline.Config)
	}{
		{"default", func(c *pipeline.Config) {}},
		{"squash-l1", func(c *pipeline.Config) { c.SquashTrigger = pipeline.TriggerL1Miss }},
		{"squash-l0-throttle", func(c *pipeline.Config) {
			c.SquashTrigger = pipeline.TriggerL0Miss
			c.ThrottleTrigger = pipeline.TriggerL1Miss
		}},
		{"ooo-squash-l1", func(c *pipeline.Config) {
			c.OutOfOrder = true
			c.SquashTrigger = pipeline.TriggerL1Miss
		}},
		{"tiny-queues", func(c *pipeline.Config) {
			c.IQSize = 8
			c.StoreBufferSize = 2
			c.SquashTrigger = pipeline.TriggerL1Miss
		}},
	}
	const commits = 30000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := pipeline.DefaultConfig()
			tc.mut(&cfg)

			// Batch: materialise the trace, analyse each structure.
			p1 := pipeline.MustNew(cfg, workload.MustNew(workload.Default()), cache.MustNewDefault())
			tr := p1.Run(commits, true)
			dead := AnalyzeDeadness(tr.CommitLog)
			wantIQ := AnalyzeWith(tr, dead)
			wantFE := AnalyzeFrontEnd(tr, dead)
			wantSB := AnalyzeStoreBuffer(tr, dead)
			wantRF := AnalyzeRegFile(tr, dead)

			// Stream: same config and seeds, no trace materialised.
			p2 := pipeline.MustNew(cfg, workload.MustNew(workload.Default()), cache.MustNewDefault())
			ccfg := StructureConfig(cfg, commits)
			ccfg.FrontEnd, ccfg.StoreBuffer, ccfg.RegFile = true, true, true
			coll := NewCollector(ccfg)
			st, err := p2.RunStream(context.Background(), commits, coll)
			if err != nil {
				t.Fatal(err)
			}
			got := coll.Finish(st.Cycles)

			if st.Cycles != tr.Cycles || st.Commits != tr.Commits {
				t.Fatalf("stats diverge: cycles %d vs %d, commits %d vs %d",
					st.Cycles, tr.Cycles, st.Commits, tr.Commits)
			}
			if !reflect.DeepEqual(coll.CommitLog(), tr.CommitLog) {
				t.Fatal("streamed commit log differs from recorded trace")
			}
			if !reflect.DeepEqual(got.IQ, wantIQ) {
				t.Errorf("IQ report differs:\n got %+v\nwant %+v", got.IQ, wantIQ)
			}
			if !reflect.DeepEqual(got.FrontEnd, wantFE) {
				t.Errorf("front-end report differs:\n got %+v\nwant %+v", got.FrontEnd, wantFE)
			}
			if !reflect.DeepEqual(got.StoreBuffer, wantSB) {
				t.Errorf("store-buffer report differs:\n got %+v\nwant %+v", got.StoreBuffer, wantSB)
			}
			if !reflect.DeepEqual(got.RegFile, wantRF) {
				t.Errorf("regfile report differs:\n got %+v\nwant %+v", got.RegFile, wantRF)
			}
		})
	}
}

// TestCollectorDisabledAnalysesNil pins that the opt-in reports stay nil
// (and cost nothing) when not requested.
func TestCollectorDisabledAnalysesNil(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	p := pipeline.MustNew(cfg, workload.MustNew(workload.Default()), cache.MustNewDefault())
	coll := NewCollector(StructureConfig(cfg, 5000))
	st, err := p.RunStream(context.Background(), 5000, coll)
	if err != nil {
		t.Fatal(err)
	}
	got := coll.Finish(st.Cycles)
	if got.FrontEnd != nil || got.StoreBuffer != nil || got.RegFile != nil {
		t.Fatal("disabled analyses should be nil")
	}
	if got.IQ == nil || got.IQ.TotalBC() == 0 {
		t.Fatal("IQ report missing")
	}
	if len(coll.fePending) != 0 || len(coll.sbPending) != 0 || coll.commitCycles != nil {
		t.Fatal("disabled analyses should retain no per-event state")
	}
}
