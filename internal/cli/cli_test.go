package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
)

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{flag.ErrHelp, ExitOK},
		{errors.New("boom"), ExitRuntime},
		{Usagef("bad flag"), ExitUsage},
		{&PartialError{Done: 3, Total: 8, Path: "x.ckpt", Err: errors.New("interrupted")}, ExitPartial},
		{fmt.Errorf("wrapped: %w", Usagef("inner")), ExitUsage},
		{fmt.Errorf("wrapped: %w", &PartialError{Err: errors.New("e")}), ExitPartial},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestParseClassifiesFlagErrors(t *testing.T) {
	newFS := func() *flag.FlagSet {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		fs.Bool("ok", false, "")
		return fs
	}
	if err := Parse(newFS(), []string{"-ok"}); err != nil {
		t.Errorf("valid args: %v", err)
	}
	if err := Parse(newFS(), []string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: err = %v, want flag.ErrHelp through unwrapped", err)
	}
	err := Parse(newFS(), []string{"-nope"})
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Errorf("unknown flag: err = %v (%T), want *UsageError", err, err)
	}
}

func TestPartialErrorMessage(t *testing.T) {
	pe := &PartialError{Done: 5, Total: 9, Path: "grid.ckpt", Err: errors.New("interrupt")}
	msg := pe.Error()
	for _, want := range []string{"5/9", "grid.ckpt", "-resume", "interrupt"} {
		if !strings.Contains(msg, want) {
			t.Errorf("PartialError message %q missing %q", msg, want)
		}
	}
	if !errors.Is(pe, pe.Err) {
		t.Error("PartialError does not unwrap to its cause")
	}
}

func TestProfileWritesRequestedFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.pprof"
	mem := dir + "/mem.pprof"
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := NewProfile(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1e5; i++ {
		_ = fmt.Sprintf("%d", i) // give the profiler something to sample
	}
	p.Stop()
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("empty profile %s", path)
		}
	}
}

func TestProfileNoopWithoutFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := NewProfile(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Stop() // must not create files or panic
}
