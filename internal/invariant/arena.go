package invariant

import (
	"bytes"
	"context"
	"fmt"
	"reflect"

	"softerror/internal/core"
	"softerror/internal/rng"
	"softerror/internal/workload"
)

// checkArenaReuse pins the bit-invisibility of the evaluation arena: a
// batch evaluated on an arena already dirtied by other workloads and
// geometries must produce Results equal — reports, deadness, stats,
// everything — to the same batch on a fresh arena, and a sweep grid drawing
// from a shared, pre-warmed ArenaPool must render byte-identical CSV to one
// running without any pool. The check also re-runs an earlier batch on the
// dirty arena and re-compares its previously retained Results, so a pooled
// collector or hierarchy clobbering state a caller still holds is caught,
// not just a diverging fresh computation.
func checkArenaReuse(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0xA4EA)
	ctx := context.Background()

	type round struct {
		params workload.Params
		specs  []core.BatchSpec
		want   []*core.Result
	}

	randomBatch := func() ([]core.BatchSpec, workload.Params) {
		params := RandomWorkload(s)
		k := 1 + s.Intn(3)
		specs := make([]core.BatchSpec, k)
		for i := range specs {
			cfg := RandomPipelineConfig(s)
			// The batched engine is event-horizon only (see
			// checkBatchedIndependent).
			cfg.SingleStep = false
			specs[i] = core.BatchSpec{
				Pipeline:    cfg,
				FrontEnd:    s.Bool(0.5),
				StoreBuffer: s.Bool(0.5),
			}
		}
		return specs, params
	}

	// Leg 1: Results on one persistently dirtied arena versus a fresh arena
	// per batch. Three rounds of distinct workloads overflow nothing but do
	// exercise collector Reset, hierarchy CloneInto re-stamping and the
	// stream memo's MRU handling.
	dirty := core.NewArena()
	rounds := make([]round, 0, 3)
	for r := 0; r < 3; r++ {
		specs, params := randomBatch()
		want, err := core.RunBatchArena(ctx, core.NewArena(), params, opt.Commits, specs)
		if err != nil {
			return err
		}
		got, err := core.RunBatchArena(ctx, dirty, params, opt.Commits, specs)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(want, got) {
			return fmt.Errorf("round %d: reused arena diverges from fresh arena (k=%d)",
				r, len(specs))
		}
		rounds = append(rounds, round{params: params, specs: specs, want: want})
	}
	// Revisit round 0 on the dirty arena: its stream memo was pushed down
	// the MRU list by the later rounds, and the Results retained above must
	// have survived every intervening reuse untouched.
	first := rounds[0]
	again, err := core.RunBatchArena(ctx, dirty, first.params, opt.Commits, first.specs)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(first.want, again) {
		return fmt.Errorf("revisiting the first batch on the dirty arena diverges from its retained Results")
	}

	// Leg 2: CSV bytes. The same random grid rendered with no pool, with a
	// pool seeded by the dirty arena, and a second pass on the now-warm
	// pool must agree byte for byte.
	newGrid := randomGridSpec(s, opt)
	plain := newGrid()
	plain.Workers = opt.Workers
	plainCSV, err := gridCSV(plain)
	if err != nil {
		return err
	}
	pool := core.NewArenaPool()
	pool.Put(dirty)
	pooled := newGrid()
	pooled.Workers = opt.Workers
	pooled.Arenas = pool
	pooledCSV, err := gridCSV(pooled)
	if err != nil {
		return err
	}
	if !bytes.Equal(plainCSV, pooledCSV) {
		return fmt.Errorf("grid CSV with a dirtied arena pool differs from the pool-free run (%d vs %d bytes)",
			len(pooledCSV), len(plainCSV))
	}
	warm := newGrid()
	warm.Workers = opt.Workers
	warm.Arenas = pool
	warmCSV, err := gridCSV(warm)
	if err != nil {
		return err
	}
	if !bytes.Equal(plainCSV, warmCSV) {
		return fmt.Errorf("second grid pass on the warm arena pool differs from the pool-free run (%d vs %d bytes)",
			len(warmCSV), len(plainCSV))
	}
	return nil
}
