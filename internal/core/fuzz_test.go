package core

import "testing"

// FuzzParsePolicy pins the flag-vocabulary parser: every accepted string
// maps to an in-range policy whose String() form is itself accepted and
// maps back to the same policy; everything else errors without panicking.
func FuzzParsePolicy(f *testing.F) {
	f.Add("baseline")
	f.Add("none")
	f.Add("squash-l1")
	f.Add("squash-l0")
	f.Add("throttle-l1")
	f.Add("throttle-l0")
	f.Add("SQUASH-L1")
	f.Add("squash-l1 ")
	f.Add("")

	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			return
		}
		if p < 0 || p >= NumPolicies {
			t.Fatalf("ParsePolicy(%q) = %d, outside [0, %d)", s, p, NumPolicies)
		}
		back, err := ParsePolicy(p.Flag())
		if err != nil {
			t.Fatalf("canonical flag %q of parsed policy does not re-parse: %v", p.Flag(), err)
		}
		if back != p {
			t.Fatalf("round-trip changed policy: %v -> %v", p, back)
		}
	})
}
