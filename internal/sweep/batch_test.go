package sweep

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"softerror/internal/checkpoint"
)

// rowsCSV renders a finished row set with the shared writer.
func rowsCSV(t *testing.T, rows []Row) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGridCancelMidBatchResumesPerCell pins the batched dispatch's crash
// contract: progress is checkpointed per cell, never per batch. smallGrid's
// bench blocks (4 cells each) fit one batch group, so the first leg is
// cancelled while a leader holds parked rows for cells whose tasks have not
// run; those rows must not leak into the checkpoint, and the resumed leg
// must re-derive them and render bytes identical to an uninterrupted run.
func TestGridCancelMidBatchResumesPerCell(t *testing.T) {
	g := smallGrid(t)
	g.Workers = 2
	want, err := g.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := rowsCSV(t, want)

	path := filepath.Join(t.TempDir(), "grid.ckpt")
	interrupted := smallGrid(t)
	interrupted.Workers = 2
	ck, err := checkpoint.Open[Row](path, "sweep", interrupted.Fingerprint(), interrupted.Size(), false)
	if err != nil {
		t.Fatal(err)
	}
	ck.SetInterval(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, runErr := interrupted.RunContext(ctx, ck, func(done, total int) {
		cancel() // first completed cell kills the campaign mid-batch
	})
	if runErr == nil {
		t.Fatal("cancelled run reported success")
	}

	resumed := smallGrid(t)
	resumed.Workers = 2
	ck2, err := checkpoint.Open[Row](path, "sweep", resumed.Fingerprint(), resumed.Size(), true)
	if err != nil {
		t.Fatal(err)
	}
	if done := ck2.CountDone(); done < 1 || done >= resumed.Size() {
		t.Fatalf("checkpoint has %d of %d cells; want a strict non-empty subset", done, resumed.Size())
	}
	rows, err := resumed.RunContext(context.Background(), ck2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsCSV(t, rows); !bytes.Equal(got, wantCSV) {
		t.Fatalf("resumed CSV differs from uninterrupted run:\n got %d bytes\nwant %d bytes", len(got), len(wantCSV))
	}
}
