// Package bpred provides branch-prediction models for the front end.
//
// The workload generator needs to decide, per dynamic branch, whether the
// front end fetched down the wrong path — that decision controls the
// wrong-path occupancy of the instruction queue, one of the paper's three
// false-DUE sources. Two families of models are provided:
//
//   - Table predictors (Bimodal, Gshare) predict direction from branch
//     history, giving organic, phase-dependent misprediction behaviour.
//   - Statistical mispredicts at a calibrated fixed rate, used to pin a
//     benchmark profile at its target wrong-path fraction.
package bpred

import (
	"fmt"

	"softerror/internal/rng"
)

// Model is a branch-direction predictor. One call per dynamic branch both
// predicts and trains.
type Model interface {
	// Mispredict reports whether the front end mispredicted this branch,
	// given its PC and actual direction, and trains the model.
	Mispredict(pc uint64, taken bool) bool
	// Name identifies the model in reports.
	Name() string
}

// counter is a 2-bit saturating counter: 0-1 predict not-taken, 2-3 taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) train(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a classic PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal builds a bimodal predictor with 2^bits counters, initialised
// weakly taken.
func NewBimodal(bits int) *Bimodal {
	if bits < 1 || bits > 24 {
		panic(fmt.Sprintf("bpred: bimodal bits %d out of [1,24]", bits))
	}
	t := make([]counter, 1<<bits)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: uint64(len(t) - 1)}
}

// Name implements Model.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", len(b.table)) }

// Mispredict implements Model.
func (b *Bimodal) Mispredict(pc uint64, taken bool) bool {
	idx := (pc >> 2) & b.mask
	pred := b.table[idx].taken()
	b.table[idx] = b.table[idx].train(taken)
	return pred != taken
}

// Gshare XORs global branch history into the table index (McFarling, 1993).
type Gshare struct {
	table    []counter
	mask     uint64
	hist     uint64
	histMask uint64
}

// NewGshare builds a gshare predictor with 2^tableBits counters and
// histBits of global history.
func NewGshare(tableBits, histBits int) *Gshare {
	if tableBits < 1 || tableBits > 24 {
		panic(fmt.Sprintf("bpred: gshare table bits %d out of [1,24]", tableBits))
	}
	if histBits < 1 || histBits > 32 {
		panic(fmt.Sprintf("bpred: gshare history bits %d out of [1,32]", histBits))
	}
	t := make([]counter, 1<<tableBits)
	for i := range t {
		t[i] = 2
	}
	return &Gshare{
		table:    t,
		mask:     uint64(len(t) - 1),
		histMask: uint64(1)<<histBits - 1,
	}
}

// Name implements Model.
func (g *Gshare) Name() string { return fmt.Sprintf("gshare-%d", len(g.table)) }

// Mispredict implements Model.
func (g *Gshare) Mispredict(pc uint64, taken bool) bool {
	idx := ((pc >> 2) ^ g.hist) & g.mask
	pred := g.table[idx].taken()
	g.table[idx] = g.table[idx].train(taken)
	g.hist = ((g.hist << 1) | boolBit(taken)) & g.histMask
	return pred != taken
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Statistical mispredicts at a fixed rate, independent of the branch. It
// pins a workload at a calibrated wrong-path fraction.
type Statistical struct {
	rate float64
	s    *rng.Stream
}

// NewStatistical builds a statistical model mispredicting with the given
// rate in [0,1], drawing from stream s.
func NewStatistical(rate float64, s *rng.Stream) *Statistical {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("bpred: rate %v out of [0,1]", rate))
	}
	return &Statistical{rate: rate, s: s}
}

// Name implements Model.
func (p *Statistical) Name() string { return fmt.Sprintf("statistical-%.3f", p.rate) }

// Mispredict implements Model.
func (p *Statistical) Mispredict(pc uint64, taken bool) bool {
	return p.s.Bool(p.rate)
}
