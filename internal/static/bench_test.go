package static

import (
	"testing"

	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// BenchmarkStaticBound measures the warm bound-query path: the per-config
// cost /v1/bound pays after the program view is built. One iteration is
// one in-order plus one out-of-order query against a loaded analyzer.
func BenchmarkStaticBound(b *testing.B) {
	sh, err := workload.NewShared(workload.Default())
	if err != nil {
		b.Fatal(err)
	}
	a := NewAnalyzer()
	const commits = 100_000
	a.Load(sh.BodyPrefix(commits+BodySlack), commits)

	base := pipeline.DefaultConfig()
	ooo := base
	ooo.OutOfOrder = true
	a.Query(base)
	a.Query(ooo)

	b.ReportAllocs()
	b.ResetTimer()
	var sink Bounds
	for i := 0; i < b.N; i++ {
		sink = a.Query(base)
		sink = a.Query(ooo)
	}
	_ = sink
}
