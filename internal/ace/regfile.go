package ace

import (
	"softerror/internal/isa"
	"softerror/internal/pipeline"
)

// RegFileReport is the vulnerability analysis of the architectural register
// files — the "other structures" of the paper's conclusion, whose AVF the
// same π-bit mechanisms can reduce once they exist for the instruction
// queue.
//
// A register bit-cycle is classified by what happens to the value it holds:
//
//	ACE        between the value's definition and its last read by a live
//	           consumer: a strike there corrupts architectural output;
//	DeadRead   read again, but only by dynamically dead consumers: with
//	           parity these reads raise false DUEs; π-bit propagation
//	           (per-register and beyond) covers them;
//	ExACE      after the last read, before the overwrite: never consumed;
//	Untouched  before a register's first definition in the observed window.
//
// Bit-cycles are weighted by register width: 64-bit integer registers,
// 82-bit floating-point registers (IA-64's extended format), 1-bit
// predicates.
type RegFileReport struct {
	Cycles uint64

	ACEBC       uint64
	DeadReadBC  uint64
	ExACEBC     uint64
	UntouchedBC uint64

	TotalBC uint64
}

// Register widths in bits, per file.
const (
	IntRegBits  = 64
	FPRegBits   = 82 // IA-64 extended floating point
	PredRegBits = 1
)

func regBits(r isa.Reg) uint64 {
	switch {
	case r.IsInt():
		return IntRegBits
	case r.IsFP():
		return FPRegBits
	default:
		return PredRegBits
	}
}

// regFileCapacityBits is the total width of the architected register state.
var regFileCapacityBits = func() uint64 {
	return uint64(isa.NumIntRegs)*IntRegBits +
		uint64(isa.NumFPRegs)*FPRegBits +
		uint64(isa.NumPredRegs)*PredRegBits
}()

// regValue tracks the live definition occupying one register.
type regValue struct {
	defCycle     uint64
	lastLiveRead uint64 // cycle of the latest read by a live consumer
	lastAnyRead  uint64 // cycle of the latest read by any consumer
	hasLiveRead  bool
	hasAnyRead   bool
	valid        bool
}

// AnalyzeRegFile integrates register-value lifetimes over the trace's
// committed stream. It requires a trace recorded with commit cycles and the
// deadness analysis of the same commit log (before Compact).
func AnalyzeRegFile(tr *pipeline.Trace, dead *Deadness) *RegFileReport {
	return analyzeRegFileLog(tr.CommitLog, tr.CommitCycles, tr.Cycles, dead)
}

// analyzeRegFileLog is AnalyzeRegFile over a bare commit log — the entry
// point the streaming Collector shares, since the register-file analysis
// is inherently a program-order pass over commits, not residencies.
func analyzeRegFileLog(log []isa.Inst, commitCycles []uint64, cycles uint64, dead *Deadness) *RegFileReport {
	rep := &RegFileReport{
		Cycles:  cycles,
		TotalBC: cycles * regFileCapacityBits,
	}
	if len(log) == 0 {
		rep.UntouchedBC = rep.TotalBC
		return rep
	}

	var state [isa.NumRegs]regValue
	end := cycles

	close := func(r isa.Reg, v *regValue, until uint64) {
		if !v.valid || until < v.defCycle {
			return
		}
		bits := regBits(r)
		aceEnd := v.defCycle
		if v.hasLiveRead {
			aceEnd = v.lastLiveRead
		}
		deadEnd := aceEnd
		if v.hasAnyRead && v.lastAnyRead > deadEnd {
			deadEnd = v.lastAnyRead
		}
		if deadEnd > until {
			deadEnd = until
		}
		if aceEnd > until {
			aceEnd = until
		}
		rep.ACEBC += (aceEnd - v.defCycle) * bits
		rep.DeadReadBC += (deadEnd - aceEnd) * bits
		rep.ExACEBC += (until - deadEnd) * bits
	}

	for i := range log {
		in := &log[i]
		cycle := commitCycles[i]
		cat := dead.Of(in)

		// Reads: neutral instructions consume nothing; predicated-false
		// instructions read only their guard. A read is "live" when the
		// reader itself can affect the outcome.
		if !in.Class.Neutral() {
			liveReader := !cat.Dead()
			read := func(r isa.Reg) {
				if r == isa.RegNone {
					return
				}
				v := &state[r]
				if !v.valid {
					return
				}
				v.hasAnyRead = true
				if cycle > v.lastAnyRead {
					v.lastAnyRead = cycle
				}
				if liveReader {
					v.hasLiveRead = true
					if cycle > v.lastLiveRead {
						v.lastLiveRead = cycle
					}
				}
			}
			read(in.PredGuard)
			if !in.PredFalse {
				read(in.Src1)
				read(in.Src2)
			}
		}

		// Defs close the previous value.
		if in.HasDest() {
			r := in.Dest
			close(r, &state[r], cycle)
			state[r] = regValue{defCycle: cycle, valid: true}
		}
	}

	// Values still live at the end of the window: conservatively ACE
	// through the end (a future read may consume them), mirroring the
	// live-out rule of the instruction-queue analysis.
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		v := &state[r]
		if !v.valid {
			continue
		}
		bits := regBits(r)
		rep.ACEBC += (end - v.defCycle) * bits
		v.valid = false
	}

	used := rep.ACEBC + rep.DeadReadBC + rep.ExACEBC
	if used > rep.TotalBC {
		// Clamp: overlapping commit cycles at the very end of a clipped
		// run cannot overflow by more than rounding.
		used = rep.TotalBC
	}
	rep.UntouchedBC = rep.TotalBC - used
	return rep
}

// SDCAVF is the probability a uniformly random register-file bit-cycle
// strike corrupts architectural output (unprotected file).
func (r *RegFileReport) SDCAVF() float64 { return r.frac(r.ACEBC) }

// TrueDUEAVF equals SDCAVF under single-bit parity.
func (r *RegFileReport) TrueDUEAVF() float64 { return r.frac(r.ACEBC) }

// FalseDUEAVF is the fraction of bit-cycles whose faults a parity-checked
// register file would flag although only dead consumers read them; π-bit
// propagation through the pipeline covers exactly these.
func (r *RegFileReport) FalseDUEAVF() float64 { return r.frac(r.DeadReadBC) }

// DUEAVF is the parity-protected register file's total DUE AVF.
func (r *RegFileReport) DUEAVF() float64 { return r.TrueDUEAVF() + r.FalseDUEAVF() }

// ExACEFraction and UntouchedFraction expose the benign classes.
func (r *RegFileReport) ExACEFraction() float64 { return r.frac(r.ExACEBC) }

// UntouchedFraction is the never-defined fraction of the window.
func (r *RegFileReport) UntouchedFraction() float64 { return r.frac(r.UntouchedBC) }

func (r *RegFileReport) frac(bc uint64) float64 {
	if r.TotalBC == 0 {
		return 0
	}
	return float64(bc) / float64(r.TotalBC)
}
