package workload

import (
	"errors"
	"testing"

	"softerror/internal/isa"
	"softerror/internal/rng"
)

// TestSharedRelabeling pins the stream-sharing identity the batch
// evaluator rests on: a generator driven with an arbitrary interleaving of
// Next and NextWrong emits exactly the Shared memo's instructions under the
// documented Seq/PC/CallDepth relabeling. The interleaving is drawn per
// seed, so a seed sweep exercises many wrong-path burst patterns.
func TestSharedRelabeling(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		p := Default()
		p.Seed = seed
		p.MispredictRate = 0.05 + 0.02*float64(seed)
		solo := MustNew(p)
		sh, err := NewShared(p)
		if err != nil {
			t.Fatal(err)
		}
		drive := rng.New(seed, 0xAB1E)
		n, w := 0, 0 // correct-path cursor, wrong-path draws so far
		for i := 0; i < 20_000; i++ {
			if n > 0 && drive.Bool(0.08) {
				want := solo.NextWrong()
				got := *sh.Wrong(w)
				got.Seq = uint64(n + w)
				got.PC = sh.Body(n).PC + 4*uint64(w)
				got.CallDepth = sh.Body(n - 1).CallDepth
				w++
				if want != got {
					t.Fatalf("seed %d: wrong-path draw %d diverges:\n solo %+v\n memo %+v",
						seed, w-1, want, got)
				}
				continue
			}
			want := solo.Next()
			got := *sh.Body(n)
			got.Seq += uint64(w)
			got.PC += 4 * uint64(w)
			n++
			if want != got {
				t.Fatalf("seed %d: correct-path position %d diverges:\n solo %+v\n memo %+v",
					seed, n-1, want, got)
			}
		}
	}
}

// TestSharedRejectsPCIndexedPredictors pins the typed fallback error.
func TestSharedRejectsPCIndexedPredictors(t *testing.T) {
	for _, bp := range []string{"gshare", "bimodal"} {
		p := Default()
		p.BranchPredictor = bp
		if _, err := NewShared(p); !errors.Is(err, ErrUnshareable) {
			t.Fatalf("NewShared(%s) = %v, want ErrUnshareable", bp, err)
		}
	}
	p := Default()
	p.BranchPredictor = "statistical"
	if _, err := NewShared(p); err != nil {
		t.Fatalf("NewShared(statistical) = %v", err)
	}
}

// TestSharedBodyIsPureCorrectPath pins the memo's coordinate system:
// Body(n).Seq == n for every n.
func TestSharedBodyIsPureCorrectPath(t *testing.T) {
	sh, err := NewShared(Default())
	if err != nil {
		t.Fatal(err)
	}
	var last *isa.Inst
	for n := 0; n < 5_000; n++ {
		in := sh.Body(n)
		if in.Seq != uint64(n) {
			t.Fatalf("Body(%d).Seq = %d", n, in.Seq)
		}
		last = in
	}
	if last.PC == 0 {
		t.Fatal("body PCs never advanced")
	}
}
