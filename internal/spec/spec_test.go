package spec

import (
	"testing"

	"softerror/internal/workload"
)

func TestRosterSize(t *testing.T) {
	all := All()
	if len(all) != 26 {
		t.Fatalf("roster has %d benchmarks, want 26 (Table 2)", len(all))
	}
	if n := len(Integer()); n != 12 {
		t.Fatalf("integer roster = %d, want 12", n)
	}
	if n := len(FloatingPoint()); n != 14 {
		t.Fatalf("fp roster = %d, want 14", n)
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, b := range All() {
		if err := b.Params.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if b.Params.Name != b.Name {
			t.Errorf("%s: params name %q mismatched", b.Name, b.Params.Name)
		}
		if b.Params.FloatingPoint != b.FP {
			t.Errorf("%s: FP flag mismatch", b.Name)
		}
	}
}

func TestNamesUniqueAndSeedsDistinct(t *testing.T) {
	seen := map[string]bool{}
	seeds := map[uint64]string{}
	for _, b := range All() {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
		if other, dup := seeds[b.Params.Seed]; dup {
			t.Errorf("seed collision between %s and %s", b.Name, other)
		}
		seeds[b.Params.Seed] = b.Name
	}
}

func TestTable2SkipValues(t *testing.T) {
	// Spot-check the paper's Table 2 skip distances.
	want := map[string]int{
		"bzip2-source":     48900,
		"crafty":           120600,
		"mcf":              26200,
		"perlbmk-makerand": 0,
		"twolf":            185400,
		"ammp":             50900,
		"lucas":            123500,
		"wupwise":          23800,
		"apsi":             100,
	}
	for name, skip := range want {
		b, ok := ByName(name)
		if !ok {
			t.Errorf("benchmark %s missing", name)
			continue
		}
		if b.SkippedM != skip {
			t.Errorf("%s skip = %d M, want %d M", name, b.SkippedM, skip)
		}
	}
}

func TestByNameMiss(t *testing.T) {
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName found a benchmark that does not exist")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 26 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted at %d: %s >= %s", i, names[i-1], names[i])
		}
	}
}

func TestIntFPCharacterSplit(t *testing.T) {
	// The behavioural axes the paper relies on: FP benchmarks carry more
	// neutral instructions and fewer mispredictions than integer ones, on
	// average.
	avg := func(bs []Benchmark, f func(workload.Params) float64) float64 {
		s := 0.0
		for _, b := range bs {
			s += f(b.Params)
		}
		return s / float64(len(bs))
	}
	neutral := func(p workload.Params) float64 { return p.NopFrac + p.PrefetchFrac + p.HintFrac }
	mispred := func(p workload.Params) float64 { return p.MispredictRate }
	pred := func(p workload.Params) float64 { return p.PredicatedFrac }

	ints, fps := Integer(), FloatingPoint()
	if avg(fps, neutral) <= avg(ints, neutral) {
		t.Error("FP benchmarks should carry more neutral instructions than INT")
	}
	if avg(fps, mispred) >= avg(ints, mispred) {
		t.Error("FP benchmarks should mispredict less than INT")
	}
	if avg(fps, pred) >= avg(ints, pred) {
		t.Error("FP benchmarks should be less predicated than INT")
	}
}

func TestProfilesGenerate(t *testing.T) {
	// Every profile must drive the generator without error.
	for _, b := range All() {
		g, err := workload.New(b.Params)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for i := 0; i < 1000; i++ {
			in := g.Next()
			if !in.Class.Valid() {
				t.Fatalf("%s: invalid instruction %v", b.Name, in)
			}
		}
	}
}

func TestAllReturnsFreshCopies(t *testing.T) {
	a := All()
	a[0].Params.LoadFrac = 0.99
	b := All()
	if b[0].Params.LoadFrac == 0.99 {
		t.Fatal("All() exposes shared state")
	}
}
