package pipeline

import (
	"context"
	"fmt"

	"softerror/internal/cache"
	"softerror/internal/isa"
)

// Source supplies the dynamic instruction stream. Next returns the next
// correct-path instruction; NextWrong synthesises a wrong-path instruction
// fetched past an unresolved mispredicted branch. Both share one
// sequence-number space in fetch order.
type Source interface {
	Next() isa.Inst
	NextWrong() isa.Inst
}

// watchdogCycles bounds forward-progress stalls; exceeding it indicates a
// simulator bug, not a workload property.
const watchdogCycles = 500_000

// neverCycle is the "no scheduled event" horizon sentinel.
const neverCycle = ^uint64(0)

type iqEntry struct {
	inst    isa.Inst
	enq     uint64
	issued  bool
	issue   uint64
	evictAt uint64 // valid once issued
}

type sbEntry struct {
	inst    isa.Inst
	enq     uint64
	drainAt uint64
}

type feEntry struct {
	inst    isa.Inst
	fetched uint64
	readyAt uint64
}

type squashEvent struct {
	at         uint64
	loadSeq    uint64
	missReturn uint64
}

type throttleEvent struct {
	at         uint64
	missReturn uint64
}

// Pipeline is the core model. Create one per run with New; a Pipeline is
// not safe for concurrent use and cannot be restarted after Run.
type Pipeline struct {
	cfg Config
	src Source
	mem *cache.Hierarchy

	cycle    uint64
	regReady [isa.NumRegs]uint64

	iq          []iqEntry
	frontEnd    []feEntry
	sb          []sbEntry
	sbAddrs     map[uint64]int // live store-buffer addresses, refcounted
	refetch     []isa.Inst
	refetchHead int // index of the next refetch victim (popped O(1))
	feCap       int
	issuePtr    int // index of oldest unissued IQ entry (scan hint)

	// pendingInst parks an instruction whose front-end delivery gap
	// (Inst.FetchBubble) is being charged; it is fetched once the gap
	// elapses.
	pendingInst isa.Inst
	havePending bool

	wrongMode   bool
	wrongSrcSeq uint64 // Seq of the unresolved mispredicted branch
	resolveAt   uint64 // cycle the outstanding mispredict redirects; 0 = none scheduled
	squashQ     []squashEvent
	throttleQ   []throttleEvent
	stallUntil  uint64

	// Out-of-order family state (see ooo.go); nil/zero for in-order.
	ooo      bool
	rob      []robEntry
	lsq      []lsqEntry
	lsqAddrs map[uint64]int // live LSQ store addresses, refcounted
	tage     tageState

	stats   Stats
	sink    Sink
	oooSink OOOSink // sink's optional OOOSink side, bound at run start
}

// New builds a pipeline over the given instruction source and data-cache
// hierarchy. The hierarchy may be pre-warmed and is shared state: the
// caller owns it.
func New(cfg Config, src Source, mem *cache.Hierarchy) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil || mem == nil {
		return nil, fmt.Errorf("pipeline: nil source or memory")
	}
	cfg = cfg.Normalized()
	p := &Pipeline{
		cfg:   cfg,
		src:   src,
		mem:   mem,
		feCap: cfg.FrontEndCap(),
	}
	// Pre-size every queue to its structural bound (the refetch queue to a
	// worst-case squash's victim count) so the steady state never grows a
	// slice.
	p.iq = make([]iqEntry, 0, cfg.IQSize)
	p.frontEnd = make([]feEntry, 0, p.feCap)
	p.sb = make([]sbEntry, 0, cfg.StoreBufferSize)
	p.sbAddrs = make(map[uint64]int, cfg.StoreBufferSize)
	p.refetch = make([]isa.Inst, 0, cfg.IQSize+p.feCap)
	p.squashQ = make([]squashEvent, 0, 8)
	p.throttleQ = make([]throttleEvent, 0, 8)
	if cfg.OutOfOrder {
		p.ooo = true
		p.rob = make([]robEntry, 0, cfg.ROBSize)
		p.lsq = make([]lsqEntry, 0, cfg.LSQSize)
		p.lsqAddrs = make(map[uint64]int, cfg.LSQSize)
		p.tage.init(&cfg, make([]uint64, cfg.TAGETables<<cfg.TAGETableBits))
	}
	return p, nil
}

// MustNew is New for statically valid arguments.
func MustNew(cfg Config, src Source, mem *cache.Hierarchy) *Pipeline {
	p, err := New(cfg, src, mem)
	if err != nil {
		panic(err)
	}
	return p
}

// Run simulates until the given number of correct-path instructions have
// committed, then drains residency records and returns the trace. record
// controls whether residencies and the commit log are captured (disable for
// warm-up runs).
func (p *Pipeline) Run(commits uint64, record bool) *Trace {
	tr, _ := p.RunContext(context.Background(), commits, record)
	return tr
}

// RunContext is Run with cooperative cancellation: the cycle loop checks
// ctx every so often, so a SIGINT or a per-task watchdog aborts within one
// simulation rather than waiting for it to finish. A cancelled run returns
// a nil trace and ctx's error; the pipeline must not be reused afterwards.
func (p *Pipeline) RunContext(ctx context.Context, commits uint64, record bool) (*Trace, error) {
	if !record {
		st, err := p.RunStream(ctx, commits, nil)
		if err != nil {
			return nil, err
		}
		return NewTraceRecorder(p.cfg, 0).Trace(st), nil
	}
	rec := NewTraceRecorder(p.cfg, commits)
	st, err := p.RunStream(ctx, commits, rec)
	if err != nil {
		return nil, err
	}
	return rec.Trace(st), nil
}

// RunStream simulates until the given number of correct-path instructions
// have committed, delivering every residency and commit to sink as it
// closes instead of materialising a Trace (sink may be nil for warm-up).
// In-flight entries are flushed to the sink, clipped at the final cycle, so
// occupancy integrals stay consistent. This is the zero-materialisation hot
// path: with a streaming sink no per-instruction slice is ever built.
func (p *Pipeline) RunStream(ctx context.Context, commits uint64, sink Sink) (Stats, error) {
	p.sink = sink
	if s, ok := sink.(OOOSink); ok {
		p.oooSink = s
	}
	lastCommitCycle := uint64(0)
	lastCommits := uint64(0)
	for iter := uint64(0); p.stats.Commits < commits; iter++ {
		if iter&1023 == 0 && ctx.Err() != nil {
			return Stats{}, ctx.Err()
		}
		p.step()
		if p.stats.Commits != lastCommits {
			lastCommits = p.stats.Commits
			lastCommitCycle = p.cycle
		} else if p.cycle-lastCommitCycle > watchdogCycles {
			panic(fmt.Sprintf(
				"pipeline: no commit for %d cycles at cycle %d (iq=%d fe=%d refetch=%d wrong=%v stall=%d)",
				watchdogCycles, p.cycle, len(p.iq), len(p.frontEnd), p.refetchLen(), p.wrongMode, p.stallUntil))
		}
		if !p.cfg.SingleStep && p.stats.Commits < commits {
			p.fastForward()
		}
	}
	// Close residencies for entries still in flight, clipped at the final
	// cycle so occupancy integrals stay consistent.
	if sink != nil {
		for i := range p.iq {
			p.recordResidency(&p.iq[i], p.cycle, false)
		}
		for i := range p.frontEnd {
			p.recordFrontEnd(&p.frontEnd[i], p.cycle, false)
		}
		for i := range p.sb {
			e := &p.sb[i]
			sink.OnStoreBuffer(Residency{
				Inst: e.inst, Enq: e.enq, Evict: p.cycle,
				Issued: true, Issue: p.cycle,
			})
		}
		if p.ooo {
			p.oooFlushEnd(p.cycle)
		}
	}
	p.stats.Cycles = p.cycle
	return p.stats, nil
}

// step advances one cycle.
func (p *Pipeline) step() {
	now := p.cycle
	if p.ooo {
		p.drainLSQ(now)
	} else {
		p.drainStores(now)
	}
	p.resolveBranch(now)
	p.applySquashes(now)
	p.applyThrottles(now)
	if p.ooo {
		p.retire(now)
	}
	p.evict(now)
	p.issue(now)
	p.deliver(now)
	p.fetch(now)
	p.cycle++
}

// fastForward jumps the clock to the next cycle at which anything can
// happen, charging the skipped fetch-stall cycles in bulk. Skipped cycles
// are provably no-ops — every state change the step phases can make is
// scheduled at a known cycle (nextEventCycle), so executing the next step
// at the horizon produces exactly the state single-stepping would.
func (p *Pipeline) fastForward() {
	now := p.cycle
	horizon := p.nextEventCycle(now)
	if horizon <= now {
		return
	}
	if p.stallUntil > now {
		// Each skipped cycle below stallUntil would have charged one
		// fetch-stall cycle.
		stallEnd := p.stallUntil
		if horizon < stallEnd {
			stallEnd = horizon
		}
		p.stats.FetchStallCycles += stallEnd - now
	}
	p.cycle = horizon
}

// nextEventCycle returns the earliest cycle ≥ now at which any step phase
// can act: the min over the fetch stall's end, the head store's drain, the
// branch redirect, queued squash/throttle detections, the head entry's
// eviction, front-end delivery, and the earliest issue among unissued IQ
// entries. A result of now means the coming cycle is not quiescent (or an
// event horizon cannot be bounded conservatively) and must be stepped.
func (p *Pipeline) nextEventCycle(now uint64) uint64 {
	// Fetch proceeds this cycle: nothing to skip. (This is the common case
	// off the stall path and keeps the scan off the IPC-bound hot loop.)
	if now >= p.stallUntil && len(p.frontEnd) < p.feCap {
		return now
	}
	horizon := neverCycle
	if now < p.stallUntil {
		horizon = p.stallUntil
	}
	if len(p.sb) > 0 && p.sb[0].drainAt < horizon {
		horizon = p.sb[0].drainAt
	}
	if p.resolveAt != 0 && p.resolveAt < horizon {
		horizon = p.resolveAt
	}
	for i := range p.squashQ {
		if at := p.squashQ[i].at; at < horizon {
			horizon = at
		}
	}
	for i := range p.throttleQ {
		if at := p.throttleQ[i].at; at < horizon {
			horizon = at
		}
	}
	if len(p.iq) > 0 && p.iq[0].issued && p.iq[0].evictAt < horizon {
		horizon = p.iq[0].evictAt
	}
	if len(p.frontEnd) > 0 && len(p.iq) < p.cfg.IQSize && p.frontEnd[0].readyAt < horizon {
		horizon = p.frontEnd[0].readyAt
	}
	if p.ooo {
		horizon = p.oooEventCycle(horizon)
	}
	// Earliest issue among unissued entries. In-order issue stalls on the
	// first unissued instruction, so only its readiness matters; out of
	// order, any entry may issue next.
	for i := p.issuePtr; i < len(p.iq); i++ {
		if horizon <= now {
			return now
		}
		e := &p.iq[i]
		if e.issued {
			continue
		}
		if rc := p.readyCycle(&e.inst); rc < horizon {
			horizon = rc
		}
		if !p.cfg.OutOfOrder {
			break
		}
	}
	if horizon < now || horizon == neverCycle {
		return now
	}
	return horizon
}

// readyCycle returns the first cycle at which the instruction's operands
// are available — ready(in, c) holds exactly when readyCycle(in) ≤ c. A
// store blocked on a full store buffer returns neverCycle: it unblocks on
// a drain, which contributes its own horizon candidate.
func (p *Pipeline) readyCycle(in *isa.Inst) uint64 {
	if in.WrongPath {
		return 0
	}
	t := uint64(0)
	if in.PredGuard != isa.RegNone {
		t = p.regReady[in.PredGuard]
	}
	if in.PredFalse {
		return t // guard known false: operand values are irrelevant
	}
	if in.Class == isa.ClassStore && !p.ooo && len(p.sb) >= p.cfg.StoreBufferSize {
		return neverCycle
	}
	if in.Src1 != isa.RegNone && p.regReady[in.Src1] > t {
		t = p.regReady[in.Src1]
	}
	if in.Src2 != isa.RegNone && p.regReady[in.Src2] > t {
		t = p.regReady[in.Src2]
	}
	return t
}

// recordResidency reports a residency for e ending at evict.
func (p *Pipeline) recordResidency(e *iqEntry, evict uint64, squashed bool) {
	if p.sink == nil {
		return
	}
	p.sink.OnResidency(Residency{
		Inst:     e.inst,
		Enq:      e.enq,
		Evict:    evict,
		Issued:   e.issued,
		Issue:    e.issue,
		Squashed: squashed,
	})
}

// resolveBranch redirects fetch when the outstanding mispredicted branch
// reaches its resolution cycle, flushing wrong-path state everywhere.
func (p *Pipeline) resolveBranch(now uint64) {
	if p.resolveAt == 0 || now < p.resolveAt {
		return
	}
	p.resolveAt = 0
	p.wrongMode = false
	// Flush wrong-path entries from the IQ.
	kept := p.iq[:0]
	for i := range p.iq {
		e := &p.iq[i]
		if e.inst.WrongPath {
			p.stats.WrongFlushes++
			p.recordResidency(e, now, !e.issued)
			continue
		}
		kept = append(kept, *e)
	}
	p.iq = kept
	p.issuePtr = 0
	// Flush wrong-path entries from the front end.
	keptFE := p.frontEnd[:0]
	for i := range p.frontEnd {
		fe := &p.frontEnd[i]
		if fe.inst.WrongPath {
			p.stats.WrongFlushes++
			p.recordFrontEnd(fe, now, false)
			continue
		}
		keptFE = append(keptFE, *fe)
	}
	p.frontEnd = keptFE
	if p.ooo {
		p.oooFlushWrong(now)
	}
}

// applySquashes fires pending squash events whose detection cycle arrived.
func (p *Pipeline) applySquashes(now uint64) {
	rest := p.squashQ[:0]
	for _, ev := range p.squashQ {
		if ev.at > now {
			rest = append(rest, ev)
			continue
		}
		p.doSquash(now, ev)
	}
	p.squashQ = rest
}

// doSquash removes every unissued IQ entry younger than the triggering
// load, flushes the front end the same way, queues correct-path victims for
// refetch, and stalls fetch until the miss returns.
func (p *Pipeline) doSquash(now uint64, ev squashEvent) {
	p.stats.Squashes++
	kept := p.iq[:0]
	for i := range p.iq {
		e := &p.iq[i]
		if e.issued || e.inst.Seq <= ev.loadSeq {
			kept = append(kept, *e)
			continue
		}
		p.stats.SquashedEntries++
		p.recordResidency(e, now, true)
		p.squashVictim(e.inst)
	}
	p.iq = kept
	p.issuePtr = 0

	keptFE := p.frontEnd[:0]
	for i := range p.frontEnd {
		fe := &p.frontEnd[i]
		if fe.inst.Seq <= ev.loadSeq {
			keptFE = append(keptFE, *fe)
			continue
		}
		p.stats.SquashedEntries++
		p.recordFrontEnd(fe, now, false)
		p.squashVictim(fe.inst)
	}
	p.frontEnd = keptFE
	if p.ooo {
		p.oooSquash(now, ev)
	}

	if p.refetchHead > 0 {
		m := copy(p.refetch, p.refetch[p.refetchHead:])
		p.refetch = p.refetch[:m]
		p.refetchHead = 0
	}
	sortRefetch(p.refetch)
	// Restart fetch early enough that the front-end refill overlaps the
	// remaining miss shadow. The subtraction saturates at 0: a miss that
	// returns within the overlap window (tiny warm-up cycle counts, large
	// overlap sweeps) must not wrap to a near-infinite stall.
	restart := uint64(0)
	if mr := ev.missReturn; mr > uint64(p.cfg.RefetchOverlap) {
		restart = mr - uint64(p.cfg.RefetchOverlap)
	}
	if restart < now {
		restart = now
	}
	if restart > p.stallUntil {
		p.stallUntil = restart
	}
}

// squashVictim routes one squashed instruction: correct-path instructions
// are refetched later under the same Seq; wrong-path ones are dropped. If
// the unresolved mispredicted branch itself is squashed, wrong-path fetch
// mode ends (it will re-trigger on refetch).
func (p *Pipeline) squashVictim(in isa.Inst) {
	if in.WrongPath {
		return
	}
	p.refetch = append(p.refetch, in)
	p.stats.Refetches++
	if p.wrongMode && in.Seq == p.wrongSrcSeq {
		p.wrongMode = false
	}
}

// refetchLen is the number of squash victims still awaiting refetch.
func (p *Pipeline) refetchLen() int {
	return len(p.refetch) - p.refetchHead
}

// sortRefetch restores fetch order (by Seq) after a squash interleaves
// victims with earlier, not-yet-refetched ones.
func sortRefetch(q []isa.Inst) {
	// Insertion sort: the queue is short and nearly sorted.
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && q[j-1].Seq > q[j].Seq; j-- {
			q[j-1], q[j] = q[j], q[j-1]
		}
	}
}

// applyThrottles fires pending fetch-throttle events.
func (p *Pipeline) applyThrottles(now uint64) {
	rest := p.throttleQ[:0]
	for _, ev := range p.throttleQ {
		if ev.at > now {
			rest = append(rest, ev)
			continue
		}
		p.stats.ThrottleEvents++
		if ev.missReturn > p.stallUntil {
			p.stallUntil = ev.missReturn
		}
	}
	p.throttleQ = rest
}

// evict retires issued entries from the queue head once their replay window
// closes.
func (p *Pipeline) evict(now uint64) {
	n := 0
	for n < len(p.iq) {
		e := &p.iq[n]
		if !e.issued || now < e.evictAt {
			break
		}
		p.recordResidency(e, now, false)
		n++
	}
	if n > 0 {
		m := copy(p.iq, p.iq[n:])
		p.iq = p.iq[:m]
		p.issuePtr -= n
		if p.issuePtr < 0 {
			p.issuePtr = 0
		}
	}
}

// issue performs scoreboarded issue: up to IssueWidth instructions per
// cycle. In-order mode stops at the first unissued instruction with an
// unready operand (stall-on-use); out-of-order mode skips stalled entries
// and issues any ready instruction, oldest first.
func (p *Pipeline) issue(now uint64) {
	issued := 0
	for i := p.issuePtr; i < len(p.iq) && issued < p.cfg.IssueWidth; i++ {
		e := &p.iq[i]
		if e.issued {
			continue
		}
		if !p.ready(&e.inst, now) {
			if p.cfg.OutOfOrder {
				continue // skip the stalled entry, look younger
			}
			return // in-order: nothing younger may issue
		}
		p.execute(e, now)
		issued++
		if i == p.issuePtr {
			p.issuePtr = i + 1
		}
	}
}

// ready reports whether the instruction's operands are available. Wrong-path
// instructions are always "ready": their operands are speculative garbage.
func (p *Pipeline) ready(in *isa.Inst, now uint64) bool {
	if in.WrongPath {
		return true
	}
	if in.PredGuard != isa.RegNone && p.regReady[in.PredGuard] > now {
		return false
	}
	if in.PredFalse {
		return true // guard known false: operand values are irrelevant
	}
	if in.Class == isa.ClassStore && !p.ooo && len(p.sb) >= p.cfg.StoreBufferSize {
		return false // store buffer full: the store cannot issue
	}
	if in.Src1 != isa.RegNone && p.regReady[in.Src1] > now {
		return false
	}
	if in.Src2 != isa.RegNone && p.regReady[in.Src2] > now {
		return false
	}
	return true
}

// execute issues one entry: reads it (the parity-check point), performs its
// side effects, and schedules its eviction. The out-of-order family runs
// its own copy (ooo.go) so the in-order hot path stays branch-identical.
func (p *Pipeline) execute(e *iqEntry, now uint64) {
	if p.ooo {
		p.executeOOO(e, now)
		return
	}
	e.issued = true
	e.issue = now
	e.evictAt = now + uint64(p.cfg.ReplayWindow)
	in := &e.inst

	if in.WrongPath {
		return // consumed an issue slot; no architectural effects
	}

	p.stats.Commits++
	if p.sink != nil {
		p.sink.OnCommit(*in, e.enq, now)
	}

	if in.PredFalse {
		return // retires without executing
	}

	switch in.Class {
	case isa.ClassALU:
		p.writeDest(in, now+uint64(p.cfg.ALULatency))
	case isa.ClassFPU:
		p.writeDest(in, now+uint64(p.cfg.FPLatency))
	case isa.ClassLoad:
		if p.sbAddrs[in.Addr] > 0 {
			// Store-to-load forwarding: serviced from the store buffer,
			// no cache access, no miss trigger.
			p.stats.ForwardedLoads++
			p.writeDest(in, now+1)
			break
		}
		res := p.mem.Access(in.Addr, false)
		p.stats.LoadsByLevel[res.Level]++
		p.writeDest(in, now+uint64(res.Latency))
		p.maybeTrigger(in, res, now)
	case isa.ClassStore:
		p.sb = append(p.sb, sbEntry{
			inst:    *in,
			enq:     now,
			drainAt: now + uint64(p.cfg.StoreDrainLatency),
		})
		p.sbAddrs[in.Addr]++
	case isa.ClassIO:
		p.mem.Access(in.Addr, true)
	case isa.ClassPrefetch:
		p.mem.Prefetch(in.Addr)
	case isa.ClassBranch, isa.ClassCall, isa.ClassReturn:
		if in.Mispred && p.wrongMode && p.wrongSrcSeq == in.Seq {
			p.resolveAt = now + uint64(p.cfg.BranchResolveLatency)
		}
	case isa.ClassNop, isa.ClassHint:
		// No effects.
	}
}

func (p *Pipeline) writeDest(in *isa.Inst, readyAt uint64) {
	if in.Dest != isa.RegNone {
		p.regReady[in.Dest] = readyAt
	}
}

// maybeTrigger schedules exposure-reduction actions for a load serviced
// beyond the trigger level. The action fires when the miss is *detected* —
// when the trigger-level cache would have responded — and fetch stalls
// until the miss returns.
func (p *Pipeline) maybeTrigger(in *isa.Inst, res cache.AccessResult, now uint64) {
	if lvl := p.cfg.SquashTrigger.level(); lvl >= 0 && res.MissedLevel(lvl) {
		p.squashQ = append(p.squashQ, squashEvent{
			at:         now + uint64(p.mem.Level(lvl).Config().HitLatency),
			loadSeq:    in.Seq,
			missReturn: now + uint64(res.Latency),
		})
	}
	if lvl := p.cfg.ThrottleTrigger.level(); lvl >= 0 && res.MissedLevel(lvl) {
		p.throttleQ = append(p.throttleQ, throttleEvent{
			at:         now + uint64(p.mem.Level(lvl).Config().HitLatency),
			missReturn: now + uint64(res.Latency),
		})
	}
}

// drainStores retires at most one store per cycle from the buffer head to
// the cache, reporting its residency (the drain is the read point: the
// value is committed to memory).
func (p *Pipeline) drainStores(now uint64) {
	if len(p.sb) == 0 {
		return
	}
	e := &p.sb[0]
	if now < e.drainAt {
		return
	}
	p.mem.Access(e.inst.Addr, true)
	if p.sink != nil {
		p.sink.OnStoreBuffer(Residency{
			Inst:   e.inst,
			Enq:    e.enq,
			Evict:  now,
			Issued: true,
			Issue:  now,
		})
	}
	if n := p.sbAddrs[e.inst.Addr]; n <= 1 {
		delete(p.sbAddrs, e.inst.Addr)
	} else {
		p.sbAddrs[e.inst.Addr] = n - 1
	}
	m := copy(p.sb, p.sb[1:])
	p.sb = p.sb[:m]
}

// deliver moves instructions that have traversed the front end into the IQ,
// in order, while space remains.
func (p *Pipeline) deliver(now uint64) {
	n := 0
	for n < len(p.frontEnd) {
		fe := &p.frontEnd[n]
		if fe.readyAt > now || len(p.iq) >= p.cfg.IQSize {
			break
		}
		if p.ooo {
			if !p.oooAdmit(&fe.inst) {
				break
			}
			p.oooDispatch(&fe.inst, now)
		}
		p.iq = append(p.iq, iqEntry{inst: fe.inst, enq: now})
		p.recordFrontEnd(fe, now, true)
		n++
	}
	if n > 0 {
		m := copy(p.frontEnd, p.frontEnd[n:])
		p.frontEnd = p.frontEnd[:m]
	}
}

// recordFrontEnd reports one fetch-buffer occupancy interval: delivered
// entries are read into decode (the front end's parity-check point);
// flushed ones never are.
func (p *Pipeline) recordFrontEnd(fe *feEntry, until uint64, delivered bool) {
	if p.sink == nil {
		return
	}
	p.sink.OnFrontEnd(Residency{
		Inst:     fe.inst,
		Enq:      fe.fetched,
		Evict:    until,
		Issued:   delivered,
		Issue:    until,
		Squashed: !delivered,
	})
}

// fetch brings up to FetchWidth instructions into the front end, honouring
// squash/throttle stalls and front-end capacity. Sources in priority order:
// the refetch queue, then the wrong-path synthesiser (when an unresolved
// mispredict is outstanding), then the correct-path stream.
func (p *Pipeline) fetch(now uint64) {
	if now < p.stallUntil {
		p.stats.FetchStallCycles++
		return
	}
	if len(p.frontEnd) >= p.feCap {
		return
	}
	readyAt := now + uint64(p.cfg.FrontEndDepth)
	for i := 0; i < p.cfg.FetchWidth && len(p.frontEnd) < p.feCap; i++ {
		var in isa.Inst
		switch {
		case p.refetchHead < len(p.refetch) && !p.wrongMode:
			// Refetched instructions are older than any parked pending
			// instruction and hit a warm I-cache (no delivery gap).
			in = p.refetch[p.refetchHead]
			p.refetchHead++
			if p.refetchHead == len(p.refetch) {
				p.refetch = p.refetch[:0]
				p.refetchHead = 0
			}
		case p.havePending:
			in = p.pendingInst
			p.havePending = false
		case p.wrongMode:
			in = p.src.NextWrong()
		default:
			in = p.src.Next()
		}
		if in.FetchBubble > 0 {
			// Charge the front-end delivery gap (I-cache/ITLB miss,
			// dispersal break) and park the instruction until it elapses.
			until := now + uint64(in.FetchBubble)
			if until > p.stallUntil {
				p.stallUntil = until
			}
			in.FetchBubble = 0
			p.pendingInst = in
			p.havePending = true
			return
		}
		if in.Seq > p.stats.MaxSeq {
			p.stats.MaxSeq = in.Seq
		}
		p.frontEnd = append(p.frontEnd, feEntry{inst: in, fetched: now, readyAt: readyAt})
		// A freshly fetched mispredicted control instruction flips fetch
		// into wrong-path mode for the rest of this cycle and beyond.
		if !in.WrongPath && in.Class.IsControl() && in.Mispred && !p.wrongMode {
			p.wrongMode = true
			p.wrongSrcSeq = in.Seq
		}
	}
}
