package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// snapshotEvents copies the job's event log for inspection.
func snapshotEvents(j *Job) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// checkEventStream asserts the invariants every job event log must satisfy:
// Seq dense from 0, Done nondecreasing, at most one terminal event, and the
// terminal event (when present) last.
func checkEventStream(t *testing.T, events []Event) {
	t.Helper()
	lastDone := 0
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d (log %+v)", i, ev.Seq, events)
		}
		if ev.Done < lastDone {
			t.Fatalf("done regressed %d -> %d at event %d (log %+v)", lastDone, ev.Done, i, events)
		}
		lastDone = ev.Done
		if ev.State.terminal() && i != len(events)-1 {
			t.Fatalf("terminal event %q at %d is not last of %d (log %+v)",
				ev.State, i, len(events), events)
		}
	}
}

// TestJobRecordAfterDrainStaysTerminal is the terminal-state regression
// test: a progress callback firing after drain has interrupted the job (the
// sweep worker was mid-cell when jobsCtx was cancelled) must not resurrect
// the job to running, append events past the terminal one, or regress done.
func TestJobRecordAfterDrainStaysTerminal(t *testing.T) {
	j := newJob("job-000001", "fp", 4)
	j.start()
	j.progress(1)
	j.finish(JobInterrupted, nil, nil, "ck.ckpt", errors.New("interrupted by drain"))
	n := len(snapshotEvents(j))

	// The straggling worker reports its cell after the drain finished us.
	j.progress(2)
	j.start()

	if st := j.State(); st != JobInterrupted {
		t.Fatalf("job left terminal state: %q", st)
	}
	events := snapshotEvents(j)
	if len(events) != n {
		t.Fatalf("events recorded after the terminal one: %+v", events[n:])
	}
	checkEventStream(t, events)
	if st := j.Status(); st.State != JobInterrupted || st.Checkpoint != "ck.ckpt" {
		t.Fatalf("status after straggler = %+v, want interrupted with checkpoint", st)
	}
}

// TestJobProgressDrainRace races progress callbacks against finish, as a
// drain does against in-flight sweep workers; under -race this doubles as
// the locking test. Whatever the interleaving, the job must end exactly
// once, stay terminal, and keep its event stream monotonic.
func TestJobProgressDrainRace(t *testing.T) {
	for iter := 0; iter < 100; iter++ {
		j := newJob("job-000001", "fp", 10)
		j.start()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for done := 1; done <= 10; done++ {
				j.progress(done)
			}
		}()
		j.finish(JobInterrupted, nil, nil, "", errors.New("interrupted by drain"))
		wg.Wait()

		if st := j.State(); st != JobInterrupted {
			t.Fatalf("iter %d: job ended %q, want interrupted", iter, st)
		}
		events := snapshotEvents(j)
		checkEventStream(t, events)
		if last := events[len(events)-1]; last.State != JobInterrupted {
			t.Fatalf("iter %d: last event %+v, want interrupted", iter, last)
		}
	}
}

// TestJobDoneMonotonicAcrossFinish: finish must not report a done count
// below the one a progress event already published.
func TestJobDoneMonotonicAcrossFinish(t *testing.T) {
	j := newJob("job-000001", "fp", 4)
	j.start()
	j.progress(3)
	j.finish(JobDone, nil, nil, "", nil)
	events := snapshotEvents(j)
	checkEventStream(t, events)
	if last := events[len(events)-1]; last.Done != 3 {
		t.Fatalf("terminal event done = %d, want 3", last.Done)
	}
}

// TestJobNextReplaysAcrossTerminal pins the stream-replay contract: every
// recorded event, including the terminal one, is served by index to a late
// subscriber, and reading past the end blocks until the context expires
// instead of fabricating events.
func TestJobNextReplaysAcrossTerminal(t *testing.T) {
	j := newJob("job-000001", "fp", 2)
	j.start()
	j.progress(1)
	j.progress(2)
	j.finish(JobDone, nil, nil, "", nil)

	want := snapshotEvents(j)
	ctx := context.Background()
	for i := range want {
		ev, ok := j.next(ctx, i)
		if !ok {
			t.Fatalf("next(%d) refused a recorded event", i)
		}
		if ev != want[i] {
			t.Fatalf("next(%d) = %+v, want %+v", i, ev, want[i])
		}
	}
	if !want[len(want)-1].State.terminal() {
		t.Fatalf("last replayed event %+v is not terminal", want[len(want)-1])
	}

	// Past the end of a finished job there is nothing to wait for: the read
	// must block until the caller gives up, not invent an event.
	tctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if ev, ok := j.next(tctx, len(want)); ok {
		t.Fatalf("next past terminal returned %+v", ev)
	}
}
