// Command sweep runs a design-space grid over the simulator and writes one
// long-format CSV row per (benchmark × policy × IQ size × issue discipline)
// cell — ready for plotting or pivoting.
//
//	sweep -benches mcf,ammp -policies baseline,squash-l1 -iqsizes 16,32,64,128 -out grid.csv
//
// Long grids can be checkpointed and resumed: -checkpoint snapshots completed
// cells as they finish, SIGINT flushes a final snapshot, and a rerun with
// -resume re-simulates only the missing cells — producing a CSV byte-identical
// to an uninterrupted run, because every cell is deterministic in its index.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 partial
// completion (interrupted or poisoned cells, checkpoint written).
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"softerror/internal/checkpoint"
	"softerror/internal/cli"
	"softerror/internal/core"
	"softerror/internal/par"
	"softerror/internal/spec"
	"softerror/internal/sweep"
)

func main() {
	cli.Main("sweep", run)
}

func run(args []string) error {
	d := cli.NewDriver("sweep", "sweep [flags]")
	fs := d.FS
	benchList := fs.String("benches", "", "comma-separated benchmarks (default: all 26)")
	polList := fs.String("policies", "baseline,squash-l1,squash-l0", "comma-separated policies")
	sizeList := fs.String("iqsizes", "64", "comma-separated instruction-queue sizes")
	oooList := fs.String("ooo", "false", "comma-separated issue disciplines (false,true)")
	commits := fs.Uint64("commits", core.DefaultCommits, "committed instructions per cell")
	out := fs.String("out", "", "output CSV path (default: stdout)")
	quiet := fs.Bool("q", false, "suppress progress on stderr")
	ckPath := fs.String("checkpoint", "", "snapshot completed cells to this file; removed on success")
	resume := fs.Bool("resume", false, "resume from an existing -checkpoint snapshot")
	onError := fs.String("onerror", "fail", "failed-cell policy: fail (cancel grid) or continue (finish other cells)")
	taskTimeout := fs.Duration("tasktimeout", 0, "per-cell watchdog deadline (0 = none)")
	retries := fs.Int("retries", 0, "deterministic re-attempts for failed or hung cells")
	prof := cli.NewProfile(fs)
	if err := d.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	g := &sweep.Grid{
		Commits:     *commits,
		Workers:     d.Jobs(),
		TaskTimeout: *taskTimeout,
		Retries:     *retries,
	}
	switch *onError {
	case "fail":
		g.OnError = par.FailFast
	case "continue":
		g.OnError = par.Collect
	default:
		return cli.Usagef("bad -onerror %q (want fail or continue)", *onError)
	}
	if *resume && *ckPath == "" {
		return cli.Usagef("-resume requires -checkpoint")
	}
	benches, err := spec.ParseList(*benchList)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	g.Benches = benches
	for _, p := range strings.Split(*polList, ",") {
		pol, err := core.ParsePolicy(strings.TrimSpace(p))
		if err != nil {
			return cli.Usagef("%v", err)
		}
		g.Policies = append(g.Policies, pol)
	}
	for _, s := range strings.Split(*sizeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return cli.Usagef("bad IQ size %q", s)
		}
		g.IQSizes = append(g.IQSizes, n)
	}
	for _, s := range strings.Split(*oooList, ",") {
		v, err := strconv.ParseBool(strings.TrimSpace(s))
		if err != nil {
			return cli.Usagef("bad ooo value %q", s)
		}
		g.OutOfOrder = append(g.OutOfOrder, v)
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	var ck *checkpoint.File[sweep.Row]
	if *ckPath != "" {
		var err error
		ck, err = checkpoint.Open[sweep.Row](*ckPath, "sweep", g.Fingerprint(), g.Size(), *resume)
		if err != nil {
			return err
		}
		if *resume && !*quiet {
			fmt.Fprintf(os.Stderr, "sweep: resuming %s: %d/%d cells already done\n",
				*ckPath, ck.CountDone(), g.Size())
		}
	}

	progress := func(done, total int) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	rows, err := g.RunContext(ctx, ck, progress)
	if err != nil {
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		return finishPartial(rows, err, ck, g.Size(), *out)
	}

	if err := writeRows(*out, rows, nil); err != nil {
		return err
	}
	// The artefact is complete; the snapshot has served its purpose.
	return ck.Remove()
}

// finishPartial salvages what an interrupted or partially failed grid did
// produce: the valid rows go to the output (poisoned cells omitted), the
// per-cell failures go to stderr, and — when a checkpoint holds the completed
// work — the error is classified as partial so the exit code tells scripts a
// -resume rerun can finish the job.
func finishPartial(rows []sweep.Row, err error, ck *checkpoint.File[sweep.Row], total int, out string) error {
	var tasks par.Errors
	if errors.As(err, &tasks) {
		skip := make(map[int]bool, len(tasks))
		for _, te := range tasks {
			skip[te.Index] = true
			fmt.Fprintf(os.Stderr, "sweep: cell failed: %v\n", te)
		}
		if werr := writeRows(out, rows, skip); werr != nil {
			return werr
		}
		if ck != nil {
			return &cli.PartialError{
				Done: total - len(tasks), Total: total, Path: ck.Path(), Err: err,
			}
		}
		return err
	}
	if ck != nil && errors.Is(err, context.Canceled) {
		return &cli.PartialError{
			Done: ck.CountDone(), Total: total, Path: ck.Path(), Err: err,
		}
	}
	return err
}

func writeRows(out string, rows []sweep.Row, skip map[int]bool) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sweep.WriteCSVSkipping(w, rows, skip)
}
