package pibit

import (
	"fmt"

	"softerror/internal/ace"
	"softerror/internal/isa"
)

// Verdict is the tracking machinery's decision about one detected fault.
type Verdict uint8

const (
	// VerdictSuppressed: the mechanism proved the error could not affect
	// the program's output and raised nothing.
	VerdictSuppressed Verdict = iota
	// VerdictSignalled: a machine-check error was raised.
	VerdictSignalled
	// VerdictLatent: the π bit was still being tracked when the
	// observation window ended — no error raised yet, none lost: the
	// fault remains detectable at its eventual consumption point.
	VerdictLatent
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictSuppressed:
		return "suppressed"
	case VerdictSignalled:
		return "signalled"
	case VerdictLatent:
		return "latent"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Engine models a parity-protected instruction queue with the paper's π-bit
// tracking deployed up to a configurable level. Given a fault detected on
// one committed instruction, Process replays the architectural dataflow
// from the commit stream and decides whether the machinery signals an
// error, proves it false, or is still tracking it when the window closes.
type Engine struct {
	// Level selects the cumulative tracking deployment (§4.3 / Figure 2).
	Level ace.TrackLevel
	// PETEntries sizes the PET buffer at TrackPET.
	PETEntries int
	// Window bounds how many committed instructions after the fault are
	// replayed before the engine declares the π state latent.
	Window int
}

// DefaultWindow bounds dataflow replay; register overwrite distances and
// store-ring recycling are far shorter in practice.
const DefaultWindow = 50_000

// NewEngine returns an engine at the given level with a 512-entry PET
// buffer (the paper's headline configuration) and the default window.
func NewEngine(level ace.TrackLevel) *Engine {
	return &Engine{Level: level, PETEntries: 512, Window: DefaultWindow}
}

// Process decides the fate of a fault detected (by parity, at issue) on
// log[faultIdx], where struckField identifies the corrupted bit-field.
// The log must be the committed instruction stream in program order.
func (e *Engine) Process(log []isa.Inst, faultIdx int, struckField isa.Field) Verdict {
	if faultIdx < 0 || faultIdx >= len(log) {
		panic(fmt.Sprintf("pibit: fault index %d out of log range %d", faultIdx, len(log)))
	}
	in := &log[faultIdx]

	// Plain parity: a conservative design raises a machine check the
	// moment the parity error is read out of the queue.
	if e.Level == ace.TrackNever {
		return VerdictSignalled
	}

	// π carried to the commit point: the retire unit ignores errors on
	// instructions that never commit results (§4.3.1). Wrong-path faults
	// are handled by the caller (they never reach the commit log).
	if in.WrongPath || in.PredFalse {
		return VerdictSuppressed
	}

	// Anti-π: neutral instruction types cannot affect the outcome unless
	// the opcode bits themselves were struck (§4.3.2).
	if e.Level >= ace.TrackAntiPi && in.Class.Neutral() && struckField != isa.FieldOpcode {
		return VerdictSuppressed
	}
	if in.Class.Neutral() {
		// Opcode strike on a neutral instruction, or anti-π not deployed:
		// must signal at commit.
		return VerdictSignalled
	}

	// A corrupted destination specifier redirects the write itself: the π
	// bit cannot follow the value (it would poison the wrong register and
	// leave the intended one silently stale), so the hardware signals at
	// commit whenever the dest field's parity domain faulted.
	if in.HasDest() && struckField == isa.FieldDest {
		return VerdictSignalled
	}

	switch e.Level {
	case ace.TrackCommit, ace.TrackAntiPi:
		// No post-commit machinery: signal at the commit point.
		return VerdictSignalled
	case ace.TrackPET:
		return e.processPET(log, faultIdx)
	default:
		return e.processDataflow(log, faultIdx)
	}
}

// processPET runs the faulty instruction through a PET buffer fed by the
// subsequent commit stream (§4.3.3, design 1).
func (e *Engine) processPET(log []isa.Inst, faultIdx int) Verdict {
	in := &log[faultIdx]
	if !in.HasDest() {
		// The PET buffer can only prove register FDD; stores, branches
		// and other destination-less instructions signal at commit.
		return VerdictSignalled
	}
	pet := NewPETBuffer(e.PETEntries)
	pet.Push(*in, true)
	end := faultIdx + 1 + e.Window
	if end > len(log) {
		end = len(log)
	}
	for i := faultIdx + 1; i < end; i++ {
		signal, seq, evicted := pet.Push(log[i], false)
		if evicted && seq == in.Seq {
			if signal {
				return VerdictSignalled
			}
			return VerdictSuppressed
		}
	}
	for _, seq := range pet.Drain() {
		if seq == in.Seq {
			return VerdictSignalled
		}
	}
	return VerdictSuppressed
}

// processDataflow implements the register-file, store-buffer and memory π
// levels (§4.3.3, designs 2–4) by replaying architectural dataflow from the
// fault forward.
func (e *Engine) processDataflow(log []isa.Inst, faultIdx int) Verdict {
	in := &log[faultIdx]

	// Destination-less π instructions cannot defer: a store commits
	// possibly-incorrect data (signal at store commit for designs 2–3),
	// and control flow cannot be tracked through memory at all.
	if !in.HasDest() {
		switch {
		case in.Class == isa.ClassStore && e.Level >= ace.TrackMemory:
			// Design 4: the store's π transfers to the memory block.
			return e.trackMemoryFromStore(log, faultIdx)
		default:
			return VerdictSignalled
		}
	}

	regPi := map[isa.Reg]bool{in.Dest: true}
	var memPi map[uint64]bool
	if e.Level >= ace.TrackMemory {
		memPi = make(map[uint64]bool)
	}

	end := faultIdx + 1 + e.Window
	if end > len(log) {
		end = len(log)
	}
	for i := faultIdx + 1; i < end; i++ {
		cur := &log[i]
		v, done := e.stepDataflow(cur, regPi, memPi)
		if done {
			return v
		}
		if len(regPi) == 0 && len(memPi) == 0 {
			return VerdictSuppressed // all π state overwritten unread
		}
	}
	return VerdictLatent
}

// trackMemoryFromStore handles a π store under design 4: the block is
// poisoned; a later load picks the π up into its destination and tracking
// continues; an overwriting store clears it.
func (e *Engine) trackMemoryFromStore(log []isa.Inst, faultIdx int) Verdict {
	st := &log[faultIdx]
	regPi := map[isa.Reg]bool{}
	memPi := map[uint64]bool{st.Addr: true}
	end := faultIdx + 1 + e.Window
	if end > len(log) {
		end = len(log)
	}
	for i := faultIdx + 1; i < end; i++ {
		v, done := e.stepDataflow(&log[i], regPi, memPi)
		if done {
			return v
		}
		if len(regPi) == 0 && len(memPi) == 0 {
			return VerdictSuppressed
		}
	}
	return VerdictLatent
}

// stepDataflow advances the π dataflow by one committed instruction.
// It returns done=true with the final verdict when the machinery commits
// to a decision.
func (e *Engine) stepDataflow(cur *isa.Inst, regPi map[isa.Reg]bool, memPi map[uint64]bool) (Verdict, bool) {
	if cur.Class.Neutral() {
		return 0, false // neutral readers consume nothing
	}

	// A poisoned qualifying predicate makes the execute/nullify decision
	// itself suspect. For an instruction that nullified (pred-false), the
	// register it would have written cannot be tracked — signal. For one
	// that executed, its result is simply possibly incorrect: poison the
	// destination and keep tracking, like any other poisoned read.
	guardPi := cur.PredGuard != isa.RegNone && regPi[cur.PredGuard]
	if guardPi && cur.PredFalse {
		return VerdictSignalled, true
	}

	// Does this instruction read a poisoned register?
	readPi := guardPi
	if !cur.PredFalse {
		if cur.Src1 != isa.RegNone && regPi[cur.Src1] {
			readPi = true
		}
		if cur.Src2 != isa.RegNone && regPi[cur.Src2] {
			readPi = true
		}
	}

	// Loads may pick π up from a poisoned memory block (design 4).
	loadPi := false
	if memPi != nil && cur.Class == isa.ClassLoad && !cur.PredFalse && memPi[cur.Addr] {
		loadPi = true
	}

	switch {
	case e.Level == ace.TrackRegFile:
		// Design 2: signal on any read of a poisoned register.
		if readPi {
			return VerdictSignalled, true
		}
	case readPi || loadPi:
		// Designs 3–4: π propagates along dataflow. Control flow and I/O
		// cannot be deferred; stores defer only under design 4.
		switch {
		case cur.Class.IsControl() || cur.Class == isa.ClassIO:
			return VerdictSignalled, true
		case cur.Class == isa.ClassStore:
			if e.Level >= ace.TrackMemory {
				memPi[cur.Addr] = true
			} else {
				return VerdictSignalled, true
			}
		case cur.HasDest():
			regPi[cur.Dest] = true
		}
	}

	// Overwrites clear poisoned state: a clean result supersedes it.
	if !readPi && !loadPi {
		if cur.HasDest() {
			delete(regPi, cur.Dest)
		}
		if memPi != nil && cur.Class == isa.ClassStore && !cur.PredFalse {
			delete(memPi, cur.Addr)
		}
	}
	return 0, false
}
