package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"softerror/internal/fleet"
)

// handleLease executes one fleet lease: rebuild the grid named by the wire
// spec, admission-check the cell ranges, run exactly those cells, and
// answer every leased cell exactly once. Leases share the sweep worker
// slots — a worker saturated with local jobs sheds leases with 429 and the
// coordinator backs off or reassigns. Execution is fail-fast: retry and
// reassignment are the coordinator's job, so any cell error fails the
// lease loudly instead of answering partial coverage.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.metrics.rejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req fleet.LeaseRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	g, err := req.Grid.Build()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := req.Validate(g.Size()); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g.Workers = s.cfg.Workers
	g.Arenas = s.arenas // leases share the daemon's warm evaluation state

	// Take a sweep worker slot without queueing: a lease that cannot run
	// now is better retried elsewhere than parked here.
	select {
	case s.slots <- struct{}{}:
	default:
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "no worker slot free")
		return
	}
	defer func() { <-s.slots }()

	// The lease lives as long as both the request and the job context: a
	// coordinator giving up (timeout, drain) or this worker draining both
	// cancel the simulation promptly.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.jobsCtx, cancel)
	defer stop()

	cells := req.Cells()
	rows, err := g.RunIndices(ctx, cells, nil, nil)
	switch {
	case err == nil:
	case s.jobsCtx.Err() != nil && errors.Is(err, context.Canceled):
		s.metrics.rejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	default:
		httpError(w, http.StatusInternalServerError, "lease %s failed: %v", req.Lease, err)
		return
	}
	resp := fleet.LeaseResponse{Lease: req.Lease, Rows: make([]fleet.CellRow, len(cells))}
	for k, i := range cells {
		resp.Rows[k] = fleet.CellRow{Index: i, Row: rows[k]}
	}
	s.metrics.leasesServed.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleFleetRegister admits a worker into the coordinator's fleet. Served
// only when the server runs in coordinator mode.
func (s *Server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Fleet == nil {
		httpError(w, http.StatusNotFound, "not a coordinator")
		return
	}
	if s.isDraining() {
		s.metrics.rejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req fleet.RegisterRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := s.cfg.Fleet.Register(req.Addr); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, fleet.RegisterResponse{Workers: s.cfg.Fleet.NumWorkers()})
}
