package softerror

import (
	"strings"
	"testing"

	"softerror/internal/core"
	"softerror/internal/report"
	"softerror/internal/spec"
	"softerror/internal/sweep"
)

// detCommits keeps the determinism matrix fast while still exercising the
// full pipeline/ACE stack per cell.
const detCommits = 20_000

// detRoster is a mixed INT/FP subset, large enough that an 8-worker pool
// genuinely interleaves cells.
func detRoster(t *testing.T) []spec.Benchmark {
	t.Helper()
	var benches []spec.Benchmark
	for _, name := range []string{"mcf", "twolf", "gzip-graphic", "ammp", "equake", "swim"} {
		b, ok := spec.ByName(name)
		if !ok {
			t.Fatalf("benchmark %q missing from roster", name)
		}
		benches = append(benches, b)
	}
	return benches
}

// table1CSV renders Table 1 rows exactly as cmd/repro -csv would.
func table1CSV(t *testing.T, workers int, benches []spec.Benchmark) string {
	t.Helper()
	s := core.NewSuite(benches, detCommits)
	s.Workers = workers
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	tbl := report.New("table1", "design point", "ipc", "sdc", "due", "merit_sdc", "merit_due")
	for _, r := range rows {
		tbl.AddRow(r.Policy.String(), report.F2(r.IPC), report.Pct(r.SDCAVF),
			report.Pct(r.DUEAVF), report.F2(r.MeritSDC), report.F2(r.MeritDUE))
	}
	var sb strings.Builder
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// figure2CSV renders Figure 2 rows (per-benchmark false-DUE coverage).
func figure2CSV(t *testing.T, workers int, benches []spec.Benchmark) string {
	t.Helper()
	s := core.NewSuite(benches, detCommits)
	s.Workers = workers
	rows, err := s.Figure2(512)
	if err != nil {
		t.Fatal(err)
	}
	tbl := report.New("figure2", "bench", "base", "l0", "l1", "l2", "l3", "l4", "l5")
	for _, r := range rows {
		cells := []string{r.Bench, report.Pct(r.BaseFalseDUE)}
		for _, rem := range r.Remaining {
			cells = append(cells, report.Pct(rem))
		}
		tbl.AddRow(cells...)
	}
	var sb strings.Builder
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestParallelDeterminismTable1 pins the hard constraint of the parallel
// engine: the Table 1 artefact is byte-identical at one worker and at eight.
func TestParallelDeterminismTable1(t *testing.T) {
	benches := detRoster(t)
	serial := table1CSV(t, 1, benches)
	parallel := table1CSV(t, 8, benches)
	if serial != parallel {
		t.Fatalf("Table 1 CSV differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, parallel)
	}
}

// TestParallelDeterminismFigure2 does the same for the per-benchmark
// Figure 2 coverage rows.
func TestParallelDeterminismFigure2(t *testing.T) {
	benches := detRoster(t)
	serial := figure2CSV(t, 1, benches)
	parallel := figure2CSV(t, 8, benches)
	if serial != parallel {
		t.Fatalf("Figure 2 CSV differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, parallel)
	}
}

// TestParallelDeterminismSweep runs a small design-space grid at both worker
// counts and asserts the emitted CSV is byte-identical, and that the
// parallel run's progress callback stays monotonic.
func TestParallelDeterminismSweep(t *testing.T) {
	mcf, _ := spec.ByName("mcf")
	ammp, _ := spec.ByName("ammp")
	grid := func(workers int) *sweep.Grid {
		return &sweep.Grid{
			Benches:    []spec.Benchmark{mcf, ammp},
			Policies:   []core.Policy{core.PolicyBaseline, core.PolicySquashL1},
			IQSizes:    []int{32, 64},
			OutOfOrder: []bool{false},
			Commits:    detCommits,
			Workers:    workers,
		}
	}
	runCSV := func(workers int, progress func(done, total int)) string {
		rows, err := grid(workers).Run(progress)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := sweep.WriteCSV(&sb, rows); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	serial := runCSV(1, nil)
	lastDone := 0
	parallel := runCSV(8, func(done, total int) {
		if done != lastDone+1 || total != 8 {
			t.Errorf("progress(%d, %d) after done=%d: not monotonic", done, total, lastDone)
		}
		lastDone = done
	})
	if lastDone != 8 {
		t.Errorf("progress reached %d of 8 cells", lastDone)
	}
	if serial != parallel {
		t.Fatalf("sweep CSV differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, parallel)
	}
}

// TestParallelDeterminismOutcomes pins the fault-injection campaigns: the
// per-configuration fan-out must reproduce the serial strike streams
// exactly, because every configuration owns an identically seeded RNG.
func TestParallelDeterminismOutcomes(t *testing.T) {
	mcf, _ := spec.ByName("mcf")
	run := func() string {
		rows, err := core.Outcomes(mcf, detCommits, 2_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, r := range rows {
			sb.WriteString(r.Label)
			for _, c := range r.Counts {
				sb.WriteByte(' ')
				sb.WriteString(report.F2(float64(c)))
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("Outcomes not reproducible across parallel runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
