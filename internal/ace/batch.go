package ace

import (
	"fmt"
	"slices"

	"softerror/internal/isa"
	"softerror/internal/pipeline"
)

// This file is the analysis half of the batched evaluation path. A
// BatchGroup owns the per-stream work every variant shares — chiefly the
// deadness classification of the commit log, which is Seq-value-independent
// and so identical across variants that committed the same number of body
// instructions. A BatchCollector is one lane's pipeline.BatchSink: it keys
// every deferred charge by body index instead of sequence number, which
// both skips instruction reconstruction on the hot path and turns Finish's
// per-event binary searches into direct indexing. All charges flow through
// the same Report.addRead/addNeverRead/SBReport.add helpers as the solo
// Collector, so the finished reports are byte-identical to K independent
// runs — the batched-independent seraudit check pins exactly that.

// bodyPrefixer is the optional fast path for obtaining the shared commit
// log as a slice; workload.Shared implements it.
type bodyPrefixer interface {
	BodyPrefix(m int) []isa.Inst
}

// BatchGroup shares one decoded stream's analyses across the lanes of a
// batch. Not safe for concurrent use: one group serves one batch.
type BatchGroup struct {
	src  pipeline.BatchSource
	dead map[int]*Deadness
}

// NewBatchGroup wraps the batch's shared stream.
func NewBatchGroup(src pipeline.BatchSource) *BatchGroup {
	return &BatchGroup{src: src, dead: make(map[int]*Deadness)}
}

// commitLog returns the first m body instructions as a slice — the shared
// stand-in for any lane's commit log (deadness and the per-commit fields
// are Seq-value-independent). The workload.Shared fast path aliases the
// generator's memo; the fallback copies through the interface.
func (g *BatchGroup) commitLog(m int) []isa.Inst {
	if p, ok := g.src.(bodyPrefixer); ok {
		return p.BodyPrefix(m)
	}
	log := make([]isa.Inst, m)
	for i := range log {
		log[i] = *g.src.Body(i)
	}
	return log
}

// deadness returns the memoised classification of the first m body
// instructions. Lanes overshoot their commit target by at most
// IssueWidth-1, so a batch sees only a handful of distinct m values and
// the analysis runs once per value instead of once per lane.
func (g *BatchGroup) deadness(m int) *Deadness {
	if d, ok := g.dead[m]; ok {
		return d
	}
	d := AnalyzeDeadness(g.commitLog(m))
	g.dead[m] = d
	return d
}

// viewFor returns one lane's Deadness: the shared classification with the
// lane's relabeled sequence numbers. Categories, counts and FDD distance
// populations alias the shared analysis (they are read-only downstream);
// the seqs slice is the lane's own, so OfSeq resolves lane coordinates.
func (g *BatchGroup) viewFor(m int, seqs []uint64) *Deadness {
	d := *g.deadness(m)
	d.seqs = seqs
	return &d
}

// batchPendingRead defers one front-end read charge to Finish, keyed by
// body index (the solo Collector keys by Seq and binary-searches later).
type batchPendingRead struct {
	body int
	wait uint64
}

type batchPendingOcc struct {
	body int
	occ  uint64
}

// BatchCollector folds one lane's compact events into ACE reports. It is
// the BatchSink counterpart of Collector: same charges, same helpers, no
// isa.Inst reconstruction anywhere on the event path.
// commitRec is one body position's deferred IQ charge: the lane's
// relabeled Seq, the pre-issue wait, and the post-issue linger, packed into
// one cache line's worth so the three per-commit writes touch one array.
type commitRec struct {
	seq, wait, linger uint64
}

type BatchCollector struct {
	cfg   CollectorConfig
	group *BatchGroup

	recs    []commitRec // indexed by body position; zero value = no commit yet
	bits    []uint64    // committed-body bitmap, parallel to recs
	n       int         // one past the highest committed body index
	commits int         // total commits; == n iff [0, n) is hole-free

	iq  Report
	fe  Report
	sb  SBReport
	rob Report
	lsq LSQReport

	// Wrong-path IQ residencies aggregate during the run (addRead is
	// linear, so summed buckets settle exactly); index is dest<<1 | control.
	wrongIQ [4]struct{ wait, linger uint64 }

	fePending  []batchPendingRead
	sbPending  []batchPendingOcc
	robPending []batchPendingRead
	lsqPending []batchPendingOcc
}

// NewBatchCollector builds one lane's collector over the batch's shared
// group. The RegFile analysis needs per-commit cycle retention that the
// batched path does not carry; request it through the solo path.
func NewBatchCollector(cfg CollectorConfig, group *BatchGroup) (*BatchCollector, error) {
	c := &BatchCollector{}
	if err := c.Reset(cfg, group); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset re-arms a finished collector for a new lane, reusing the commit
// record and bitmap storage — the collector's two big allocations — so a
// pooled collector's steady state allocates nothing. Safe after Finish:
// the returned Reports are detached copies and the deadness views own
// their seqs, so resetting never mutates previously returned results.
func (c *BatchCollector) Reset(cfg CollectorConfig, group *BatchGroup) error {
	if cfg.RegFile {
		return fmt.Errorf("ace: the RegFile analysis is not available on the batched path")
	}
	c.cfg, c.group = cfg, group
	// A lane overshoots its commit target by at most IssueWidth-1 commits
	// (one final multi-issue cycle); the slack keeps the last commits from
	// hitting the grow path.
	want := int(cfg.Commits) + 16
	nb := (want + 63) / 64
	if cap(c.recs) < want || cap(c.bits) < nb {
		c.recs = make([]commitRec, want)
		c.bits = make([]uint64, nb)
	} else {
		c.recs = c.recs[:want]
		c.bits = c.bits[:nb]
		clear(c.recs)
		clear(c.bits)
	}
	c.n, c.commits = 0, 0
	c.iq, c.fe, c.sb = Report{}, Report{}, SBReport{}
	c.rob, c.lsq = Report{}, LSQReport{}
	c.wrongIQ = [4]struct{ wait, linger uint64 }{}
	c.fePending = c.fePending[:0]
	c.sbPending = c.sbPending[:0]
	c.robPending = c.robPending[:0]
	c.lsqPending = c.lsqPending[:0]
	return nil
}

// BatchCommit implements pipeline.BatchSink. Out-of-order lanes commit in
// dataflow order, so charges are placed by body index; every body index
// below the final commit count commits exactly once, making the array
// dense by Finish (pre-zeroed gaps are overwritten when their commit
// arrives).
func (c *BatchCollector) BatchCommit(ref pipeline.BatchRef, seq, enq, issue uint64) {
	body := ref.Body()
	if body >= len(c.recs) {
		c.recs = append(c.recs, make([]commitRec, body+16-len(c.recs))...)
		c.bits = append(c.bits, make([]uint64, (len(c.recs)+63)/64-len(c.bits))...)
	}
	c.recs[body].seq = seq
	c.recs[body].wait = issue - enq
	c.bits[body>>6] |= 1 << (uint(body) & 63)
	c.commits++
	if body >= c.n {
		c.n = body + 1
	}
}

// BatchResidency implements pipeline.BatchSink: one closed IQ interval.
func (c *BatchCollector) BatchResidency(ref pipeline.BatchRef, seq, enq, issue, evict uint64, issued, squashed bool) {
	if evict <= enq {
		return
	}
	occ := evict - enq
	if !issued {
		c.iq.addNeverRead(occ)
		return
	}
	wait := issue - enq
	linger := evict - issue
	if ref.Wrong() {
		t := c.group.src.Wrong(int(seq) - ref.Body())
		key := 0
		if t.Dest != isa.RegNone {
			key += 2
		}
		if t.Class.IsControl() {
			key++
		}
		c.wrongIQ[key].wait += wait
		c.wrongIQ[key].linger += linger
		return
	}
	// Correct path: the commit event always precedes the eviction (evict
	// runs before issue within a cycle, so an entry issued at cycle t
	// closes its interval at t+1 or later), so the body's record exists and
	// the linger parks next to the wait for one fused addRead in Finish.
	// addRead charges linger category-independently (ExACEBC only), so the
	// fused call is bit-identical to the solo Collector's split charges.
	if body := ref.Body(); body < c.n {
		c.recs[body].linger += linger
	} else {
		c.iq.addRead(0, linger, CatACE, false, false)
	}
}

// BatchFrontEnd implements pipeline.BatchSink: one closed fetch-buffer
// interval.
func (c *BatchCollector) BatchFrontEnd(ref pipeline.BatchRef, seq, fetched, until uint64, delivered bool) {
	if !c.cfg.FrontEnd {
		return
	}
	if until <= fetched {
		return
	}
	wait := until - fetched
	if !delivered {
		c.fe.addNeverRead(wait)
		return
	}
	if ref.Wrong() {
		t := c.group.src.Wrong(int(seq) - ref.Body())
		c.fe.addRead(wait, 0, CatWrongPath, t.Dest != isa.RegNone, t.Class.IsControl())
		return
	}
	c.fePending = append(c.fePending, batchPendingRead{body: ref.Body(), wait: wait})
}

// BatchStoreBuffer implements pipeline.BatchSink: one drained (or run-end
// clipped) store-buffer interval.
func (c *BatchCollector) BatchStoreBuffer(ref pipeline.BatchRef, seq, enq, evict uint64) {
	if !c.cfg.StoreBuffer {
		return
	}
	if evict <= enq {
		return
	}
	c.sbPending = append(c.sbPending, batchPendingOcc{body: ref.Body(), occ: evict - enq})
}

// BatchROB implements pipeline.BatchOOOSink: one closed reorder-buffer
// interval. Read (retired) entries are always correct-path and committed,
// so their category resolves from the shared log in Finish.
func (c *BatchCollector) BatchROB(ref pipeline.BatchRef, seq, enq, evict uint64, read bool) {
	if c.cfg.ROBSize == 0 {
		return
	}
	if evict <= enq {
		return
	}
	occ := evict - enq
	if !read {
		c.rob.addNeverRead(occ)
		return
	}
	c.robPending = append(c.robPending, batchPendingRead{body: ref.Body(), wait: occ})
}

// BatchLSQ implements pipeline.BatchOOOSink: one closed load/store-queue
// interval.
func (c *BatchCollector) BatchLSQ(ref pipeline.BatchRef, seq, enq, evict uint64, read bool) {
	if c.cfg.LSQSize == 0 {
		return
	}
	if evict <= enq {
		return
	}
	occ := evict - enq
	if !read {
		c.lsq.addNeverRead(occ)
		return
	}
	c.lsqPending = append(c.lsqPending, batchPendingOcc{body: ref.Body(), occ: occ})
}

// Finish settles every deferred charge against the group's shared deadness
// and returns the lane's reports. cycles is the lane's Stats.Cycles. The
// collector must not receive further events.
func (c *BatchCollector) Finish(cycles uint64) *Reports {
	// The committed set is usually the dense body prefix [0, c.n), which
	// shares the group's memoised deadness. An out-of-order lane, though,
	// can stop mid dataflow window with younger bodies committed while
	// older ones are still in flight; the analysis must then run over
	// exactly the committed sub-log — the solo Collector's log — with the
	// holes excluded, so the lane pays for a private AnalyzeDeadness.
	m := c.n
	var (
		dead   *Deadness
		cats   []Category
		log    []isa.Inst
		bodies []int // ascending committed body indices; nil when dense
	)
	// Every body commits at most once, so c.commits == m proves the
	// committed set is exactly the dense prefix [0, m).
	if c.commits == m {
		seqs := make([]uint64, m)
		for i := range seqs {
			seqs[i] = c.recs[i].seq
		}
		dead = c.group.viewFor(m, seqs)
		cats = dead.cats
		log = c.group.commitLog(m)
	} else {
		prefix := c.group.commitLog(m)
		bodies = make([]int, 0, c.commits)
		seqs := make([]uint64, 0, c.commits)
		log = make([]isa.Inst, 0, c.commits)
		for i := 0; i < m; i++ {
			if c.bits[i>>6]>>(uint(i)&63)&1 == 1 {
				bodies = append(bodies, i)
				seqs = append(seqs, c.recs[i].seq)
				log = append(log, prefix[i])
			}
		}
		dead = AnalyzeDeadness(log)
		dead.seqs = seqs // relabel to lane coordinates, as viewFor does
		cats = dead.cats
	}
	// subIdx maps a body index to its position in log/cats, or -1 when the
	// body never committed — the batched equivalent of an OfSeq miss.
	subIdx := func(body int) int {
		if bodies == nil {
			if body < m {
				return body
			}
			return -1
		}
		if j, ok := slices.BinarySearch(bodies, body); ok {
			return j
		}
		return -1
	}

	// addRead is linear in wait and linger (every charge is wait*k or
	// linger*k for a constant k determined by the category and flags), so
	// the per-commit charges aggregate exactly: sum per (category, dest,
	// control) bucket, then fold each bucket through addRead once.
	var agg [NumCategories * 4]struct{ wait, linger uint64 }
	for i := range log {
		in := &log[i]
		r := &c.recs[i]
		if bodies != nil {
			r = &c.recs[bodies[i]]
		}
		key := int(cats[i]) * 4
		if in.Dest != isa.RegNone {
			key += 2
		}
		if in.Class.IsControl() {
			key++
		}
		agg[key].wait += r.wait
		agg[key].linger += r.linger
	}
	for key, a := range agg {
		if a.wait == 0 && a.linger == 0 {
			continue
		}
		c.iq.addRead(a.wait, a.linger, Category(key/4), key&2 != 0, key&1 != 0)
	}
	for key, a := range c.wrongIQ {
		if a.wait == 0 && a.linger == 0 {
			continue
		}
		c.iq.addRead(a.wait, a.linger, CatWrongPath, key&2 != 0, key&1 != 0)
	}
	// The returned Reports are value copies detached from the collector's
	// own fields (Report and SBReport are flat apart from the Dead pointer,
	// whose view is built fresh above), so a later Reset-and-reuse of this
	// collector cannot reach back into results a caller retained.
	c.iq.Cycles = cycles
	c.iq.Entries = c.cfg.IQSize
	c.iq.BitsPer = isa.EntryPayloadBits
	c.iq.Dead = dead
	c.iq.finalize()
	iq := c.iq
	out := &Reports{IQ: &iq, Dead: dead}

	if c.cfg.FrontEnd {
		for i := range c.fePending {
			p := &c.fePending[i]
			var in *isa.Inst
			cat := CatACE // in flight at run end: conservatively live
			if j := subIdx(p.body); j >= 0 {
				cat = cats[j]
				in = &log[j]
			} else {
				in = c.group.src.Body(p.body)
			}
			c.fe.addRead(p.wait, 0, cat, in.Dest != isa.RegNone, in.Class.IsControl())
		}
		c.fe.Cycles = cycles
		c.fe.Entries = c.cfg.FrontEndCap
		c.fe.BitsPer = isa.EntryPayloadBits
		c.fe.Dead = dead
		c.fe.finalize()
		fe := c.fe
		out.FrontEnd = &fe
	}
	if c.cfg.StoreBuffer {
		for i := range c.sbPending {
			p := &c.sbPending[i]
			cat := CatACE
			if j := subIdx(p.body); j >= 0 {
				cat = cats[j]
			}
			c.sb.add(p.occ, cat)
		}
		c.sb.Cycles = cycles
		c.sb.Entries = c.cfg.StoreBufferCap
		c.sb.finalize()
		sb := c.sb
		out.StoreBuffer = &sb
	}
	if c.cfg.ROBSize > 0 {
		for i := range c.robPending {
			p := &c.robPending[i]
			var in *isa.Inst
			cat := CatACE // not in the log: conservatively live
			if j := subIdx(p.body); j >= 0 {
				cat = cats[j]
				in = &log[j]
			} else {
				in = c.group.src.Body(p.body)
			}
			c.rob.addRead(p.wait, 0, cat, in.Dest != isa.RegNone, in.Class.IsControl())
		}
		c.rob.Cycles = cycles
		c.rob.Entries = c.cfg.ROBSize
		c.rob.BitsPer = isa.EntryPayloadBits
		c.rob.Dead = dead
		c.rob.finalize()
		rob := c.rob
		out.ROB = &rob
	}
	if c.cfg.LSQSize > 0 {
		for i := range c.lsqPending {
			p := &c.lsqPending[i]
			cat := CatACE
			if j := subIdx(p.body); j >= 0 {
				cat = cats[j]
			}
			c.lsq.add(p.occ, cat)
		}
		c.lsq.Cycles = cycles
		c.lsq.Entries = c.cfg.LSQSize
		c.lsq.finalize()
		lsq := c.lsq
		out.LSQ = &lsq
	}
	return out
}
