package server

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"softerror/internal/fleet"
)

func TestLeaseEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})

	sp := fleet.GridSpec{
		Benches:  []string{"mcf"},
		Policies: []string{"baseline"},
		IQSizes:  []int{16, 32, 64},
		Commits:  400,
	}
	req := fleet.LeaseRequest{
		Lease:  "lease-000001",
		Grid:   sp,
		Ranges: []fleet.Range{{Lo: 0, Hi: 2}},
	}
	rec := do(s, "POST", "/v1/lease", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("lease returned %d: %s", rec.Code, rec.Body.String())
	}
	var resp fleet.LeaseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Lease != req.Lease || len(resp.Rows) != 2 {
		t.Fatalf("lease response %q with %d rows, want %q with 2", resp.Lease, len(resp.Rows), req.Lease)
	}

	// The served rows must be the exact rows a local run computes for the
	// same cells — the byte-identity contract at its smallest scale.
	g, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, cr := range resp.Rows {
		if cr.Index != k {
			t.Fatalf("row %d answers cell %d", k, cr.Index)
		}
		if !reflect.DeepEqual(cr.Row, want[cr.Index]) {
			t.Fatalf("leased cell %d differs from the local row:\n%+v\n%+v", cr.Index, cr.Row, want[cr.Index])
		}
	}
}

func TestLeaseEndpointRejects(t *testing.T) {
	s := newTestServer(t, Config{})

	mcf := fleet.GridSpec{Benches: []string{"mcf"}, Policies: []string{"baseline"}}
	cases := []struct {
		name string
		body any
	}{
		{"malformed json", json.RawMessage(`{`)},
		{"unknown field", json.RawMessage(`{"lease":"l","nope":1}`)},
		{"bad grid", fleet.LeaseRequest{
			Lease:  "l",
			Grid:   fleet.GridSpec{Benches: []string{"nope"}, Policies: []string{"baseline"}},
			Ranges: []fleet.Range{{Lo: 0, Hi: 1}},
		}},
		{"empty ranges", fleet.LeaseRequest{Lease: "l", Grid: mcf}},
		{"inverted range", fleet.LeaseRequest{
			Lease: "l", Grid: mcf, Ranges: []fleet.Range{{Lo: 1, Hi: 0}},
		}},
		{"beyond bounds", fleet.LeaseRequest{
			Lease: "l", Grid: mcf, Ranges: []fleet.Range{{Lo: 0, Hi: 99}},
		}},
	}
	for _, c := range cases {
		if rec := do(s, "POST", "/v1/lease", c.body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: lease returned %d, want 400; body: %.200s", c.name, rec.Code, rec.Body.String())
		}
	}
}

func TestLeaseEndpointDraining(t *testing.T) {
	s := newTestServer(t, Config{})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	req := fleet.LeaseRequest{
		Lease:  "l",
		Grid:   fleet.GridSpec{Benches: []string{"mcf"}, Policies: []string{"baseline"}},
		Ranges: []fleet.Range{{Lo: 0, Hi: 1}},
	}
	if rec := do(s, "POST", "/v1/lease", req); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("lease during drain returned %d, want 503", rec.Code)
	}
}

func TestFleetRegisterEndpoint(t *testing.T) {
	plain := newTestServer(t, Config{})
	if rec := do(plain, "POST", "/v1/fleet/register", fleet.RegisterRequest{Addr: "127.0.0.1:9999"}); rec.Code != http.StatusNotFound {
		t.Fatalf("register on a non-coordinator returned %d, want 404", rec.Code)
	}

	co := fleet.NewCoordinator(fleet.Config{})
	t.Cleanup(co.Close)
	s := newTestServer(t, Config{Fleet: co})

	rec := do(s, "POST", "/v1/fleet/register", fleet.RegisterRequest{Addr: "127.0.0.1:9999"})
	if rec.Code != http.StatusOK {
		t.Fatalf("register returned %d: %s", rec.Code, rec.Body.String())
	}
	var resp fleet.RegisterResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workers != 1 {
		t.Fatalf("register acknowledged %d workers, want 1", resp.Workers)
	}
	// Idempotent: the same worker re-registering does not grow the fleet.
	rec = do(s, "POST", "/v1/fleet/register", fleet.RegisterRequest{Addr: "127.0.0.1:9999"})
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workers != 1 {
		t.Fatalf("re-register grew the fleet to %d workers", resp.Workers)
	}
	if rec := do(s, "POST", "/v1/fleet/register", fleet.RegisterRequest{Addr: "http://evil/"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("register with a bad addr returned %d, want 400", rec.Code)
	}
}

// TestCoordinatorJobDegradesToLocal pins graceful degradation end to end:
// a coordinator-mode server whose only registered worker is unreachable
// must still finish a sweep job — through the coordinator's local
// fallback — and the job must end done, not failed.
func TestCoordinatorJobDegradesToLocal(t *testing.T) {
	co := fleet.NewCoordinator(fleet.Config{})
	t.Cleanup(co.Close)
	s := newTestServer(t, Config{Fleet: co})
	if err := co.Register("127.0.0.1:9"); err != nil { // discard port: nothing listens
		t.Fatal(err)
	}

	acc := submitSweep(t, s, SweepRequest{
		Benches:  []string{"mcf"},
		Policies: []string{"baseline"},
		Commits:  400,
	})
	st := waitTerminal(t, s, acc.ID)
	if st.State != JobDone {
		t.Fatalf("coordinator job ended %q, want done: %+v", st.State, st)
	}
	if snap := co.Snapshot(); snap.LocalFallbacks < 1 {
		t.Fatalf("LocalFallbacks = %d, want >= 1 (the only worker is unreachable)", snap.LocalFallbacks)
	}
}
