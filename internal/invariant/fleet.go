package invariant

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"time"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/fault"
	"softerror/internal/fleet"
	"softerror/internal/rng"
	"softerror/internal/server"
	"softerror/internal/sweep"
	"softerror/internal/tracefile"
)

// chaosPlan is a deterministic, budgeted HTTP fault plan shared by all
// workers of one fleet leg. The budget guarantees the chaos dries up, so a
// run always terminates; hangs are rationed separately because each one
// costs a full lease timeout of wall clock.
type chaosPlan struct {
	mu     sync.Mutex
	s      *rng.Stream
	budget int
	hangs  int
	slowNs int64
}

// decide is the fleet.ChaosFunc: fault only the lease surface (heartbeats
// stay truthful, so suspected workers keep being re-admitted — the harder
// case for the coordinator, which must make progress through a fleet that
// is flaky rather than cleanly dead).
func (p *chaosPlan) decide(worker string, r *http.Request) fleet.Fault {
	if r.URL.Path != "/v1/lease" {
		return fleet.Fault{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.budget <= 0 || !p.s.Bool(0.4) {
		return fleet.Fault{}
	}
	p.budget--
	switch p.s.Intn(4) {
	case 0:
		return fleet.Fault{Kind: fleet.FaultCrash}
	case 1:
		if p.hangs < 1 {
			p.hangs++
			return fleet.Fault{Kind: fleet.FaultHang}
		}
		return fleet.Fault{Kind: fleet.FaultError}
	case 2:
		return fleet.Fault{Kind: fleet.FaultError}
	default:
		return fleet.Fault{Kind: fleet.FaultSlow, Delay: time.Duration(1+p.s.Int63n(p.slowNs)) * time.Nanosecond}
	}
}

// fleetCSV runs the grid through a coordinator driving n in-process worker
// daemons (real server.Server instances behind real TCP listeners), each
// wrapped in the HTTP chaos injector, and renders the rows as CSV.
func fleetCSV(newGrid func() *sweep.Grid, n int, plan *chaosPlan, cfg fleet.Config) ([]byte, fleet.Snapshot, error) {
	co := fleet.NewCoordinator(cfg)
	defer co.Close()
	for w := 0; w < n; w++ {
		name := fmt.Sprintf("worker-%d", w)
		srv := server.New(server.Config{Workers: 2, MaxJobs: 4})
		defer srv.Close()
		var h http.Handler = srv
		if plan != nil {
			h = fleet.ChaosMiddleware(name, plan.decide, srv)
		}
		ts := httptest.NewServer(h)
		defer ts.Close()
		if err := co.Register(ts.Listener.Addr().String()); err != nil {
			return nil, fleet.Snapshot{}, err
		}
	}
	rows, err := co.Run(context.Background(), newGrid(), nil, nil)
	if err != nil {
		return nil, fleet.Snapshot{}, err
	}
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, rows); err != nil {
		return nil, fleet.Snapshot{}, err
	}
	return buf.Bytes(), co.Snapshot(), nil
}

// checkFleetIdentity pins the fleet's headline contract: one random grid
// rendered locally, on a one-worker fleet, and on a three-worker fleet
// whose lease surface crashes, hangs, errors and stalls under an injected
// chaos plan, produces byte-identical CSV. Scheduling, retries, steals and
// local fallback may all differ run to run — the bytes may not.
func checkFleetIdentity(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0xF1EE)
	newGrid := randomGridSpec(s, opt)

	local, err := gridCSV(newGrid())
	if err != nil {
		return err
	}

	cfg := fleet.Config{
		LeaseCells:       1 + s.Intn(3),
		LeaseTimeout:     2 * time.Second,
		Retries:          1,
		BackoffBase:      time.Millisecond,
		BackoffMax:       8 * time.Millisecond,
		HeartbeatEvery:   25 * time.Millisecond,
		HeartbeatTimeout: 250 * time.Millisecond,
		Seed:             seed,
	}

	solo, _, err := fleetCSV(newGrid, 1, nil, cfg)
	if err != nil {
		return fmt.Errorf("one-worker fleet: %w", err)
	}
	if !bytes.Equal(local, solo) {
		return fmt.Errorf("one-worker fleet renders different CSV bytes than a local run (%d vs %d bytes)",
			len(solo), len(local))
	}

	plan := &chaosPlan{s: rng.New(seed, 0xC4A0), budget: 6, slowNs: int64(5 * time.Millisecond)}
	flaky, snap, err := fleetCSV(newGrid, 3, plan, cfg)
	if err != nil {
		return fmt.Errorf("chaos fleet: %w", err)
	}
	if !bytes.Equal(local, flaky) {
		return fmt.Errorf("chaos fleet renders different CSV bytes than a local run (%d vs %d bytes)",
			len(flaky), len(local))
	}
	// The accounting must at least be self-consistent: per-worker tallies
	// sum to the coordinator's totals.
	var retries, steals, failures int64
	for _, w := range snap.Workers {
		retries += w.Retries
		steals += w.Steals
		failures += w.Failures
	}
	if retries != snap.LeaseRetries || steals != snap.LeaseSteals || failures != snap.LeaseFailures {
		return fmt.Errorf("fleet metrics disagree: per-worker (%d retries, %d steals, %d failures) vs totals (%d, %d, %d)",
			retries, steals, failures, snap.LeaseRetries, snap.LeaseSteals, snap.LeaseFailures)
	}
	return nil
}

// checkFaultPartition audits the strike-space partition property the fleet
// and the chunked checkpoints both lean on: tallies from an arbitrary
// seed-drawn partition of [0, Strikes), merged in shuffled order, equal the
// single-range campaign's tallies exactly — same counts, same totals, no
// drift from where the cuts fall or the order fragments land.
func checkFaultPartition(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0xFA27)
	params := RandomWorkload(s)
	cfg := RandomPipelineConfig(s)
	tr, err := runTrace(cfg, params, opt.Commits)
	if err != nil {
		return err
	}
	dead := ace.AnalyzeDeadness(tr.CommitLog)
	inj := fault.NewInjector(tr, dead)

	fcfg := fault.Config{
		Strikes: 2000 + s.Intn(3000),
		Seed:    s.Uint64(),
	}
	if s.Bool(0.5) {
		fcfg.Protection = cache.ProtParity
		fcfg.Level = ace.TrackLevel(s.Intn(int(ace.TrackMemory) + 1))
	} else {
		fcfg.Protection = cache.ProtNone
	}

	ctx := context.Background()
	full, err := inj.RunRange(ctx, fcfg, 0, fcfg.Strikes)
	if err != nil {
		return err
	}

	// Draw random ascending cut points, then run the fragments in a
	// shuffled order — merging must be exact AND commutative.
	parts := 2 + s.Intn(6)
	cuts := []int{0}
	for len(cuts) < parts {
		if c := 1 + s.Intn(fcfg.Strikes-1); c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	cuts = append(cuts, fcfg.Strikes)
	type frag struct{ lo, hi int }
	frags := make([]frag, 0, len(cuts)-1)
	for i := 0; i+1 < len(cuts); i++ {
		frags = append(frags, frag{cuts[i], cuts[i+1]})
	}
	for i := len(frags) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		frags[i], frags[j] = frags[j], frags[i]
	}

	merged := &fault.Result{}
	for _, f := range frags {
		part, err := inj.RunRange(ctx, fcfg, f.lo, f.hi)
		if err != nil {
			return err
		}
		merged.Merge(part)
	}
	if *merged != *full {
		return fmt.Errorf("%d-way partition merged to %+v, single range tallied %+v (cfg=%+v)",
			len(frags), *merged, *full, fcfg)
	}
	return nil
}

// checkTraceviewRoundtrip pins the trace archive format: a random trace
// saved and loaded again is structurally identical to the original, and
// re-encoding the loaded trace reproduces the encoder's bytes exactly (the
// format has one canonical encoding per trace — nothing is lost, nothing
// drifts per round trip).
func checkTraceviewRoundtrip(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0x72AC)
	params := RandomWorkload(s)
	cfg := RandomPipelineConfig(s)
	tr, err := runTrace(cfg, params, opt.Commits)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "invariant-traceview-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trace.sertr")

	if err := tracefile.Save(path, tr); err != nil {
		return fmt.Errorf("save: %w", err)
	}
	loaded, err := tracefile.Load(path)
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	if !reflect.DeepEqual(tr, loaded) {
		return fmt.Errorf("loaded trace differs from the saved one (cfg=%+v)", cfg)
	}

	var first, second bytes.Buffer
	if err := tracefile.Write(&first, tr); err != nil {
		return err
	}
	if err := tracefile.Write(&second, loaded); err != nil {
		return err
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		return fmt.Errorf("re-encoding the loaded trace changed the bytes (%d vs %d)",
			len(first.Bytes()), len(second.Bytes()))
	}
	return nil
}
