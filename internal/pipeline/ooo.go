package pipeline

import "softerror/internal/isa"

// This file is the out-of-order core family: the structures and phases
// that exist only when Config.OutOfOrder is set. The family follows the
// engine's composable-structure protocol — every vulnerable structure
// supplies (a) a dispatch/admission hook (oooAdmit/oooDispatch), (b)
// occupancy intervals through a per-structure sink method with a defined
// read point (OOOSink.OnROB/OnLSQ), (c) a horizon candidate the
// event-horizon skipper folds (oooEventCycle), and (d) flush, squash and
// end-of-run clip rules mirroring the instruction queue's. The in-order
// family never reaches this code: every hook is gated on p.ooo, so its
// cycle-level behaviour and event stream are byte-identical to before.
//
// The three structures:
//
//   - Reorder buffer: every delivered instruction allocates an entry at
//     dispatch and retires in dispatch order, at most RetireWidth per
//     cycle, once its completion cycle passes. Retire is the read point
//     (the entry's payload updates architectural state). Wrong-path
//     entries are flushed unread at branch resolution; if their resolving
//     branch was itself squashed out of the ROB they drain unread from
//     the head instead, so the buffer can never wedge.
//   - Load/store queue: memory operations hold an entry from dispatch.
//     Loads and predicated-false stores are read and released at retire;
//     executed stores drain to the cache in order, at most one per cycle,
//     StoreDrainLatency cycles after retiring (drain-at-retire), and
//     younger loads forward from matching queued stores for that whole
//     window. Loads leave at retire, so draining stores always form the
//     queue's oldest prefix and head-only draining preserves store order.
//   - TAGE predictor: TAGETables tagged tables of 1<<TAGETableBits
//     entries, indexed by PC hashed with geometrically growing folds of
//     the global history. Every delivered control-class instruction —
//     correct or wrong path — reads one entry per table and shifts its
//     direction into the history. The read-exposure integral
//     (entry-cycles since each touched entry's previous read) accumulates
//     in Stats.TAGEReadCycles; ace.AnalyzeTAGE closes the form.

// robEntry is one reorder-buffer slot: allocated at dispatch, completed
// at issue (completeAt 0 until then), retired from the head in order.
type robEntry struct {
	inst       isa.Inst
	enq        uint64
	completeAt uint64 // 0 until issued; earliest cycle the entry may retire
	mem        bool   // has an LSQ twin to settle at retire
}

// lsqEntry is one load/store-queue slot: allocated at dispatch, released
// at retire (loads, predicated-false stores) or drained from the head
// (executed stores, drainAt nonzero once scheduled).
type lsqEntry struct {
	inst    isa.Inst
	enq     uint64
	drainAt uint64 // nonzero once a retired store is scheduled to drain
}

// tageState is the TAGE predictor's residency-tracking state: per-entry
// last-read cycles (flat, tables << tableBits) plus the global history.
// Prediction content (tags, counters) does not affect timing in this
// model — the workload stream pre-encodes mispredictions — so only the
// read schedule, which the AVF integral needs, is tracked.
type tageState struct {
	tables    int
	tableBits uint
	mask      uint64
	hist      uint64
	last      []uint64
}

// init arms the state over a last-read buffer of cfg.TAGETables <<
// cfg.TAGETableBits entries (cfg must be normalized; the buffer must be
// zeroed).
func (t *tageState) init(cfg *Config, last []uint64) {
	t.tables = cfg.TAGETables
	t.tableBits = uint(cfg.TAGETableBits)
	t.mask = 1<<t.tableBits - 1
	t.hist = 0
	t.last = last
}

// touch reads one prediction entry per table for a control-class fetch
// and returns the entry-cycles since each touched entry was last read —
// the read-exposure integrand. Table ti hashes the PC with ti*tableBits
// bits of global history XOR-folded to the index width (table 0 is the
// history-less bimodal base).
func (t *tageState) touch(pc, now uint64) uint64 {
	var rc uint64
	base := pc >> 2
	for ti := 0; ti < t.tables; ti++ {
		h := t.hist & (1<<(uint(ti)*t.tableBits) - 1)
		var fold uint64
		for h != 0 {
			fold ^= h & t.mask
			h >>= t.tableBits
		}
		slot := uint64(ti)<<t.tableBits | (base^fold)&t.mask
		rc += now - t.last[slot]
		t.last[slot] = now
	}
	return rc
}

// note shifts one branch outcome into the global history.
func (t *tageState) note(taken bool) {
	t.hist <<= 1
	if taken {
		t.hist |= 1
	}
}

// oooAdmit reports whether dispatch has room for one more instruction: a
// free ROB entry, plus a free LSQ entry for memory operations.
func (p *Pipeline) oooAdmit(in *isa.Inst) bool {
	if len(p.rob) >= p.cfg.ROBSize {
		return false
	}
	if (in.Class == isa.ClassLoad || in.Class == isa.ClassStore) && len(p.lsq) >= p.cfg.LSQSize {
		return false
	}
	return true
}

// oooDispatch allocates the instruction's ROB entry (and LSQ entry for
// memory operations) and, for control-class instructions on either path,
// reads the TAGE tables and trains the global history.
func (p *Pipeline) oooDispatch(in *isa.Inst, now uint64) {
	mem := in.Class == isa.ClassLoad || in.Class == isa.ClassStore
	p.rob = append(p.rob, robEntry{inst: *in, enq: now, mem: mem})
	if mem {
		p.lsq = append(p.lsq, lsqEntry{inst: *in, enq: now})
	}
	if in.Class.IsControl() {
		p.stats.TAGEReadCycles += p.tage.touch(in.PC, now)
		p.tage.note(in.Taken)
	}
}

// executeOOO issues one entry under the out-of-order family: the solo
// execute with the store buffer replaced by the LSQ and a ROB completion
// mark scheduling the in-order retire.
func (p *Pipeline) executeOOO(e *iqEntry, now uint64) {
	e.issued = true
	e.issue = now
	e.evictAt = now + uint64(p.cfg.ReplayWindow)
	in := &e.inst

	done := now + 1 // earliest retire; refined per class below

	if in.WrongPath {
		p.robComplete(in.Seq, done)
		return // consumed an issue slot; no architectural effects
	}

	p.stats.Commits++
	if p.sink != nil {
		p.sink.OnCommit(*in, e.enq, now)
	}

	if in.PredFalse {
		p.robComplete(in.Seq, done)
		return // retires without executing
	}

	switch in.Class {
	case isa.ClassALU:
		done = now + uint64(p.cfg.ALULatency)
		p.writeDest(in, done)
	case isa.ClassFPU:
		done = now + uint64(p.cfg.FPLatency)
		p.writeDest(in, done)
	case isa.ClassLoad:
		if p.lsqAddrs[in.Addr] > 0 {
			// Store-to-load forwarding from the LSQ: no cache access,
			// no miss trigger.
			p.stats.ForwardedLoads++
			p.writeDest(in, now+1)
			break
		}
		res := p.mem.Access(in.Addr, false)
		p.stats.LoadsByLevel[res.Level]++
		done = now + uint64(res.Latency)
		p.writeDest(in, done)
		p.maybeTrigger(in, res, now)
	case isa.ClassStore:
		// The LSQ entry was allocated at dispatch; executing claims the
		// forwarding window, which lasts until the store drains.
		p.lsqAddrs[in.Addr]++
	case isa.ClassIO:
		p.mem.Access(in.Addr, true)
	case isa.ClassPrefetch:
		p.mem.Prefetch(in.Addr)
	case isa.ClassBranch, isa.ClassCall, isa.ClassReturn:
		if in.Mispred && p.wrongMode && p.wrongSrcSeq == in.Seq {
			p.resolveAt = now + uint64(p.cfg.BranchResolveLatency)
			// The branch retires no earlier than it redirects, so the
			// resolution flush (which runs first in the step) removes its
			// wrong-path successors before they could ever reach the head.
			done = p.resolveAt
		}
	case isa.ClassNop, isa.ClassHint:
		// No effects.
	}
	p.robComplete(in.Seq, done)
}

// robComplete marks the issuing instruction's ROB entry ready to retire
// at done. Unissued entries always have an IQ twin, so the entry exists;
// ROB order is dispatch order and issue favours old entries, so the scan
// from the head is short.
func (p *Pipeline) robComplete(seq, done uint64) {
	for i := range p.rob {
		if e := &p.rob[i]; e.completeAt == 0 && e.inst.Seq == seq {
			e.completeAt = done
			return
		}
	}
}

// retire pops completed entries from the ROB head, in dispatch order, up
// to RetireWidth per cycle. Retire is the ROB's read point. Wrong-path
// entries reaching the head (only possible when their resolving branch
// was itself squashed out of the ROB) drain unread. Retiring memory
// operations settle their LSQ twin.
func (p *Pipeline) retire(now uint64) {
	n := 0
	for n < len(p.rob) && n < p.cfg.RetireWidth {
		e := &p.rob[n]
		if e.completeAt == 0 || now < e.completeAt {
			break
		}
		read := !e.inst.WrongPath
		p.recordROB(e, now, read)
		if e.mem {
			p.lsqRetire(e.inst.Seq, now, read)
		}
		n++
	}
	if n > 0 {
		m := copy(p.rob, p.rob[n:])
		p.rob = p.rob[:m]
	}
}

// lsqRetire settles the LSQ entry of a retiring memory operation: loads
// and predicated-false stores are read at retire and released; executed
// correct-path stores stay queued and drain in order; wrong-path twins
// leave unread with their ROB entry.
func (p *Pipeline) lsqRetire(seq, now uint64, read bool) {
	for i := range p.lsq {
		e := &p.lsq[i]
		if e.inst.Seq != seq {
			continue
		}
		if read && e.inst.Class == isa.ClassStore && !e.inst.PredFalse {
			e.drainAt = now + uint64(p.cfg.StoreDrainLatency)
			return
		}
		p.recordLSQ(e, now, read)
		p.lsq = append(p.lsq[:i], p.lsq[i+1:]...)
		return
	}
}

// drainLSQ drains at most one executed store per cycle from the queue
// head to the cache — the store's read point — and releases its
// forwarding claim.
func (p *Pipeline) drainLSQ(now uint64) {
	if len(p.lsq) == 0 {
		return
	}
	e := &p.lsq[0]
	if e.drainAt == 0 || now < e.drainAt {
		return
	}
	p.mem.Access(e.inst.Addr, true)
	p.recordLSQ(e, now, true)
	if n := p.lsqAddrs[e.inst.Addr]; n <= 1 {
		delete(p.lsqAddrs, e.inst.Addr)
	} else {
		p.lsqAddrs[e.inst.Addr] = n - 1
	}
	m := copy(p.lsq, p.lsq[1:])
	p.lsq = p.lsq[:m]
}

// oooFlushWrong removes wrong-path entries from the ROB and LSQ when the
// mispredicted branch resolves; none were read. Wrong-path stores never
// execute, so no forwarding claims are released here.
func (p *Pipeline) oooFlushWrong(now uint64) {
	kept := p.rob[:0]
	for i := range p.rob {
		e := &p.rob[i]
		if e.inst.WrongPath {
			p.recordROB(e, now, false)
			continue
		}
		kept = append(kept, *e)
	}
	p.rob = kept
	keptL := p.lsq[:0]
	for i := range p.lsq {
		e := &p.lsq[i]
		if e.inst.WrongPath {
			p.recordLSQ(e, now, false)
			continue
		}
		keptL = append(keptL, *e)
	}
	p.lsq = keptL
}

// oooSquash mirrors the IQ squash in the ROB and LSQ: unissued entries
// younger than the triggering load are removed unread (their IQ twins
// were just squashed, so they could never complete). Refetched victims
// re-enter both structures at dispatch.
func (p *Pipeline) oooSquash(now uint64, ev squashEvent) {
	kept := p.rob[:0]
	for i := range p.rob {
		e := &p.rob[i]
		if e.completeAt != 0 || e.inst.Seq <= ev.loadSeq {
			kept = append(kept, *e)
			continue
		}
		p.recordROB(e, now, false)
		if e.mem {
			p.lsqRemove(e.inst.Seq, now)
		}
	}
	p.rob = kept
}

// lsqRemove drops the unissued LSQ entry with the given seq (squash
// path); it was never read.
func (p *Pipeline) lsqRemove(seq, now uint64) {
	for i := range p.lsq {
		if p.lsq[i].inst.Seq == seq {
			p.recordLSQ(&p.lsq[i], now, false)
			p.lsq = append(p.lsq[:i], p.lsq[i+1:]...)
			return
		}
	}
}

// oooFlushEnd clips in-flight ROB and LSQ entries at the final cycle:
// unretired copies were never read; stores already scheduled to drain are
// charged as read at the clip, like the in-order store buffer.
func (p *Pipeline) oooFlushEnd(cycle uint64) {
	for i := range p.rob {
		p.recordROB(&p.rob[i], cycle, false)
	}
	for i := range p.lsq {
		e := &p.lsq[i]
		p.recordLSQ(e, cycle, e.drainAt != 0)
	}
}

// oooEventCycle folds the out-of-order structures' horizon candidates:
// the head ROB entry's retire and the head LSQ store's drain. Unissued
// heads are covered by the IQ issue scan (every unissued ROB entry has an
// IQ twin), and dispatch admission unblocks only through these events.
func (p *Pipeline) oooEventCycle(horizon uint64) uint64 {
	if len(p.rob) > 0 {
		if at := p.rob[0].completeAt; at != 0 && at < horizon {
			horizon = at
		}
	}
	if len(p.lsq) > 0 {
		if at := p.lsq[0].drainAt; at != 0 && at < horizon {
			horizon = at
		}
	}
	return horizon
}

// recordROB reports one reorder-buffer residency ending at evict; read
// marks an in-order retire (the read point is the retire cycle itself).
func (p *Pipeline) recordROB(e *robEntry, evict uint64, read bool) {
	if p.oooSink == nil {
		return
	}
	r := Residency{Inst: e.inst, Enq: e.enq, Evict: evict, Squashed: !read}
	if read {
		r.Issued = true
		r.Issue = evict
	}
	p.oooSink.OnROB(r)
}

// recordLSQ reports one load/store-queue residency ending at evict; read
// marks consumption (retire for loads and predicated-false stores, drain
// for executed stores).
func (p *Pipeline) recordLSQ(e *lsqEntry, evict uint64, read bool) {
	if p.oooSink == nil {
		return
	}
	r := Residency{Inst: e.inst, Enq: e.enq, Evict: evict, Squashed: !read}
	if read {
		r.Issued = true
		r.Issue = evict
	}
	p.oooSink.OnLSQ(r)
}
