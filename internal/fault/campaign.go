package fault

import (
	"context"
	"fmt"

	"softerror/internal/checkpoint"
	"softerror/internal/par"
)

// DefaultChunk is the number of strikes per campaign cell: small enough
// that a checkpointed campaign loses at most a few thousand strikes to a
// crash, large enough that per-cell overhead (engine construction, cell
// bookkeeping) stays negligible.
const DefaultChunk = 8192

// Campaign runs a set of injection configurations as one flat space of
// resumable cells. Each cell is a chunk of strike indices of one
// configuration; per-strike RNG streams make the partition invisible in the
// tallies, so any schedule — serial, parallel, interrupted and resumed —
// produces bit-identical per-configuration Results.
type Campaign struct {
	Injector *Injector
	Configs  []Config
	// Chunk bounds strikes per cell (default DefaultChunk).
	Chunk int
	// Opts configures the worker pool: worker count, failure policy,
	// watchdog deadline and retry budget.
	Opts par.Options
	// Checkpoint, when non-nil, records completed cells (and restores them
	// on resume, skipping their execution). Its cell count must equal
	// Cells() and its fingerprint should be built from Fingerprint().
	Checkpoint *checkpoint.File[Result]
}

// chunk resolves the per-cell strike budget.
func (c *Campaign) chunk() int {
	if c.Chunk > 0 {
		return c.Chunk
	}
	return DefaultChunk
}

// chunksOf returns how many cells configuration ci spans.
func (c *Campaign) chunksOf(ci int) int {
	return (c.Configs[ci].Strikes + c.chunk() - 1) / c.chunk()
}

// Cells returns the total cell count across all configurations.
func (c *Campaign) Cells() int {
	n := 0
	for ci := range c.Configs {
		n += c.chunksOf(ci)
	}
	return n
}

// cell maps a flat cell index to its configuration and strike range,
// configuration-major.
func (c *Campaign) cell(i int) (ci, lo, hi int) {
	for ci = range c.Configs {
		n := c.chunksOf(ci)
		if i < n {
			lo = i * c.chunk()
			hi = lo + c.chunk()
			if hi > c.Configs[ci].Strikes {
				hi = c.Configs[ci].Strikes
			}
			return ci, lo, hi
		}
		i -= n
	}
	panic(fmt.Sprintf("fault: cell index %d out of campaign range", i))
}

// Fingerprint identifies the campaign's parameterisation (every field that
// changes what a cell index means or tallies) for checkpoint validation.
// Callers should mix in the identity of the trace the injector was built
// from (benchmark, policy, commit count).
func (c *Campaign) Fingerprint() string {
	parts := []any{"fault-campaign", c.chunk(), len(c.Configs)}
	for _, cfg := range c.Configs {
		parts = append(parts, cfg.Protection, cfg.Level, cfg.PETEntries, cfg.Strikes, cfg.Seed)
	}
	return checkpoint.Fingerprint(parts...)
}

// Run executes every cell on the worker pool and returns one merged Result
// per configuration, in configuration order. Cells already present in the
// checkpoint are restored, not re-run. On failure or cancellation the
// checkpoint (if any) is flushed before returning, so completed cells
// survive; the error reports why the campaign stopped.
func (c *Campaign) Run(ctx context.Context) ([]*Result, error) {
	if len(c.Configs) == 0 {
		return nil, nil
	}
	for i, cfg := range c.Configs {
		if cfg.Strikes <= 0 {
			return nil, fmt.Errorf("fault: config %d: Strikes = %d, want > 0", i, cfg.Strikes)
		}
	}
	cells := c.Cells()
	ck := c.Checkpoint
	if ck != nil && ck.Total() != cells {
		return nil, fmt.Errorf("fault: checkpoint has %d cells, campaign has %d", ck.Total(), cells)
	}
	out := make([]Result, cells)
	for i := 0; i < cells; i++ {
		if v, ok := ck.Get(i); ok {
			out[i] = v
		}
	}
	err := par.Run(ctx, cells, c.Opts, func(ctx context.Context, i int) error {
		if ck.Done(i) {
			return nil
		}
		ci, lo, hi := c.cell(i)
		r, err := c.Injector.RunRange(ctx, c.Configs[ci], lo, hi)
		if err != nil {
			return err
		}
		out[i] = *r
		return ck.Put(i, *r)
	})
	// Flush stragglers past the last autosave even when stopping early: the
	// whole point of the checkpoint is that interruption loses nothing.
	if serr := ck.Save(); err == nil {
		err = serr
	}
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(c.Configs))
	i := 0
	for ci := range c.Configs {
		merged := &Result{}
		for k := 0; k < c.chunksOf(ci); k++ {
			merged.Merge(&out[i])
			i++
		}
		results[ci] = merged
	}
	return results, nil
}
