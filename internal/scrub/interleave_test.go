package scrub

import (
	"math"
	"testing"
)

func TestInterleaveValidate(t *testing.T) {
	bad := []Interleave{
		{Factor: 0, StrikeWidthProb: TypicalWidths()},
		{Factor: 2, StrikeWidthProb: nil},
		{Factor: 2, StrikeWidthProb: []float64{-0.1, 0.5}},
		{Factor: 2, StrikeWidthProb: []float64{0.9, 0.9}},
	}
	for i, iv := range bad {
		if err := iv.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	good := Interleave{Factor: 2, StrikeWidthProb: TypicalWidths()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefeatProbabilityTail(t *testing.T) {
	widths := TypicalWidths()
	// Factor 1 (no interleaving): every multi-bit strike defeats.
	iv := Interleave{Factor: 1, StrikeWidthProb: widths}
	p1, err := iv.DefeatProbability()
	if err != nil {
		t.Fatal(err)
	}
	wantTail := 0.0
	for _, p := range widths[1:] {
		wantTail += p
	}
	if math.Abs(p1-wantTail) > 1e-12 {
		t.Fatalf("factor-1 defeat = %v, want %v", p1, wantTail)
	}
	// Increasing the factor monotonically shrinks the defeat probability.
	prev := p1
	for f := 2; f <= 6; f++ {
		iv.Factor = f
		p, _ := iv.DefeatProbability()
		if p > prev+1e-15 {
			t.Fatalf("defeat probability rose at factor %d", f)
		}
		prev = p
	}
	// A factor covering the whole distribution eliminates defeats.
	iv.Factor = len(widths)
	if p, _ := iv.DefeatProbability(); p != 0 {
		t.Fatalf("full interleave leaves %v", p)
	}
}

func TestDefeatFIT(t *testing.T) {
	iv := Interleave{Factor: 2, StrikeWidthProb: TypicalWidths()}
	fit, err := iv.DefeatFIT(1000)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := iv.DefeatProbability()
	if math.Abs(float64(fit)-1000*p) > 1e-9 {
		t.Fatalf("DefeatFIT = %v, want %v", fit, 1000*p)
	}
}

func TestSimulateDefeatsMatches(t *testing.T) {
	iv := Interleave{Factor: 2, StrikeWidthProb: TypicalWidths()}
	want, _ := iv.DefeatProbability()
	got, err := iv.SimulateDefeats(300_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.002 {
		t.Fatalf("simulated %v vs analytic %v", got, want)
	}
	if _, err := iv.SimulateDefeats(0, 1); err == nil {
		t.Fatal("zero strikes accepted")
	}
}
