// Command repro regenerates every table and figure of the paper's
// evaluation section:
//
//	repro table1     — Table 1: squashing vs IPC and SDC/DUE AVFs
//	repro table2     — Table 2: the benchmark roster
//	repro outcomes   — Figure 1: fault-outcome taxonomy (injection campaign)
//	repro fig2       — Figure 2: false-DUE coverage per tracking mechanism
//	repro fig3       — Figure 3: FDD coverage vs PET-buffer size
//	repro fig4       — Figure 4: combined squash + π tracking, per benchmark
//	repro breakdown  — §4.1 occupancy breakdown (idle/Ex-ACE/un-ACE/ACE)
//	repro ablation   — fetch throttling vs squashing (§3.1)
//	repro protection — absolute SDC/DUE rates across protection schemes (§2, §8)
//	repro regfile    — register-file AVFs across the roster (§8's extension)
//	repro simpoints  — AVF sensitivity to the SimPoint slice chosen (§5)
//	repro structures — ROB/LSQ/TAGE AVFs under squashing (-core ooo only)
//	repro all        — everything above (except simpoints and structures)
//
// The -core flag selects the core family: "inorder" (default) is the
// paper's machine, "ooo" swaps in the out-of-order family (reorder buffer
// with in-order retire, load/store queue with forwarding, TAGE predictor)
// for every suite-routed experiment, so the squash-vs-AVF trade-off can
// be re-asked on a machine whose window reorders.
//
// The table builders live in internal/experiments, shared with the seratd
// evaluation service: a served response is byte-identical to this command's
// output for the same parameters.
//
// Numbers come from the synthetic workload substrate, so absolute values
// differ from the paper's Asim/SPEC measurements; the shapes are the
// reproduction target (see EXPERIMENTS.md).
package main

import (
	"context"
	"errors"
	"os"

	"softerror/internal/checkpoint"
	"softerror/internal/cli"
	"softerror/internal/core"
	"softerror/internal/experiments"
	"softerror/internal/fault"
	"softerror/internal/spec"
)

func main() {
	cli.Main("repro", run)
}

func run(args []string) error {
	d := cli.NewDriver("repro",
		"repro [flags] <table1|table2|outcomes|fig2|fig3|fig4|breakdown|ablation|protection|regfile|simpoints|structures|all>")
	fs := d.FS
	commits := fs.Uint64("commits", core.DefaultCommits, "committed instructions per run")
	coreFam := fs.String("core", "inorder", "core family for suite-routed experiments: inorder or ooo")
	benchList := fs.String("benches", "", "comma-separated benchmark subset (default: all 26)")
	pet := fs.Int("pet", 512, "PET buffer entries for fig2")
	rawFIT := fs.Float64("rawfit", 0.001, "raw soft-error rate per bit (FIT), for protection")
	simpoints := fs.Int("simpoints", 4, "slices per benchmark for simpoints")
	strikes := fs.Int("strikes", 50_000, "fault-injection strikes for outcomes")
	seed := fs.Uint64("seed", 1, "fault-injection seed")
	csvOut := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	ckPath := fs.String("checkpoint", "", "snapshot the outcomes campaign to this file; removed on success")
	resume := fs.Bool("resume", false, "resume the outcomes campaign from an existing -checkpoint snapshot")
	prof := cli.NewProfile(fs)
	if err := d.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return cli.Usagef("exactly one experiment required")
	}
	if *resume && *ckPath == "" {
		return cli.Usagef("-resume requires -checkpoint")
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	ctx, stop := cli.SignalContext()
	defer stop()

	benches, err := spec.ParseList(*benchList)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	name := fs.Arg(0)
	if !experiments.Valid(name) {
		fs.Usage()
		return cli.Usagef("unknown experiment %q", name)
	}
	suite := core.NewSuite(benches, *commits)
	suite.Ctx = ctx
	switch *coreFam {
	case "inorder":
	case "ooo":
		suite.OutOfOrder = true
	default:
		return cli.Usagef("unknown core family %q (want inorder or ooo)", *coreFam)
	}
	p := experiments.Params{
		Suite:     suite,
		Benches:   benches,
		Commits:   *commits,
		PET:       *pet,
		RawFIT:    *rawFIT,
		SimPoints: *simpoints,
		Strikes:   *strikes,
		Seed:      *seed,
		Jobs:      d.Jobs(),
	}
	// Only the outcomes campaign checkpoints; its geometry is a function of
	// the first roster benchmark and the strike budget.
	if *ckPath != "" && (name == "outcomes" || name == "all") {
		if len(benches) == 0 {
			return cli.Usagef("no benchmarks")
		}
		cells, fp := core.OutcomesPlan(benches[0], *commits, *strikes, *seed)
		ck, err := checkpoint.Open[fault.Result](*ckPath, "outcomes", fp, cells, *resume)
		if err != nil {
			return err
		}
		p.Checkpoint = ck
	}
	if err := experiments.Run(ctx, os.Stdout, name, p, *csvOut); err != nil {
		if p.Checkpoint != nil && errors.Is(err, context.Canceled) {
			return &cli.PartialError{
				Done: p.Checkpoint.CountDone(), Total: p.Checkpoint.Total(),
				Path: p.Checkpoint.Path(), Err: err,
			}
		}
		return err
	}
	return p.Checkpoint.Remove()
}
