package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"softerror/internal/cli"
	"softerror/internal/par"
)

// captureStdout redirects os.Stdout to a file for one run() and returns its
// contents.
func captureStdout(t *testing.T, fn func() error) ([]byte, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stdout")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = f
	runErr := fn()
	os.Stdout = old
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, runErr
}

// TestFaultCampaignCrashResume kills the -strikes campaign with an injected
// panic, then resumes it; the resumed invocation's full report must be
// byte-identical to one that was never interrupted.
func TestFaultCampaignCrashResume(t *testing.T) {
	base := []string{"-commits", "8000", "-strikes", "1500", "-faultseed", "3", "-j", "2"}
	straight, err := captureStdout(t, func() error { return run(base) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(straight, []byte("fault-injection outcomes")) {
		t.Fatalf("straight run printed no campaign table:\n%s", straight)
	}

	ckPath := filepath.Join(t.TempDir(), "faults.ckpt")
	withCk := append(base, "-checkpoint", ckPath)
	par.SetChaos(func(_ context.Context, index, attempt int) error {
		if index >= 3 {
			panic(fmt.Sprintf("chaos: simulated crash in cell %d", index))
		}
		return nil
	})
	_, err = captureStdout(t, func() error { return run(withCk) })
	par.SetChaos(nil)
	if err == nil {
		t.Fatal("chaos-crashed campaign reported success")
	}
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("no checkpoint after crash: %v", err)
	}

	resumed, err := captureStdout(t, func() error { return run(append(withCk, "-resume")) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(straight, resumed) {
		t.Fatalf("resumed report differs from straight-through report:\n--- straight\n%s\n--- resumed\n%s", straight, resumed)
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Error("checkpoint not removed after a completed campaign")
	}
}

func TestSersimUsageExitCodes(t *testing.T) {
	cases := [][]string{
		{"-resume"},               // -resume without -checkpoint
		{"-checkpoint", "x.ckpt"}, // -checkpoint without -strikes
		{"-bench", "nosuch"},      // unknown benchmark
		{"-policy", "nosuch"},     // unknown policy
		{"-nosuchflag"},           // unknown flag
	}
	for _, args := range cases {
		err := run(args)
		if code := cli.ExitCode(err); code != cli.ExitUsage {
			t.Errorf("run(%v) exit code = %d (%v), want %d", args, code, err, cli.ExitUsage)
		}
	}
}
