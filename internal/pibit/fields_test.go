package pibit

import (
	"testing"

	"softerror/internal/ace"
	"softerror/internal/isa"
)

// TestFieldBitPartition pins the bit-level accounting contract between
// isa's entry layout and the π-bit machinery: the payload fields tile the
// entry exactly — every payload bit belongs to one field, field widths sum
// to the entry size, and the offset arithmetic the fault injector uses
// (FieldOfBit over strike offsets) agrees with the declared layout.
func TestFieldBitPartition(t *testing.T) {
	sum := 0
	for f := isa.Field(0); f < isa.NumFields; f++ {
		if isa.FieldBits[f] <= 0 {
			t.Fatalf("field %v has non-positive width %d", f, isa.FieldBits[f])
		}
		if off := isa.FieldOffset(f); off != sum {
			t.Errorf("FieldOffset(%v) = %d, want %d (packed declaration order)", f, off, sum)
		}
		sum += isa.FieldBits[f]
	}
	if sum != isa.EntryPayloadBits {
		t.Fatalf("field widths sum to %d, want EntryPayloadBits = %d", sum, isa.EntryPayloadBits)
	}

	var perField [isa.NumFields]int
	for bit := 0; bit < isa.EntryPayloadBits; bit++ {
		f := isa.FieldOfBit(bit)
		if f >= isa.NumFields {
			t.Fatalf("FieldOfBit(%d) = %v out of range", bit, f)
		}
		perField[f]++
		lo := isa.FieldOffset(f)
		if bit < lo || bit >= lo+isa.FieldBits[f] {
			t.Errorf("FieldOfBit(%d) = %v, but that field spans [%d,%d)",
				bit, f, lo, lo+isa.FieldBits[f])
		}
	}
	for f := isa.Field(0); f < isa.NumFields; f++ {
		if perField[f] != isa.FieldBits[f] {
			t.Errorf("field %v owns %d bits, want FieldBits = %d", f, perField[f], isa.FieldBits[f])
		}
	}
}

// TestVerdictByStruckField pins, field by field, the engine decisions that
// make per-field AVF accounting meaningful: anti-π clears a neutral
// instruction except for opcode strikes, a corrupted destination specifier
// can never be deferred, and commit-point π clears wrong-path and
// predicated-false strikes in every field.
func TestVerdictByStruckField(t *testing.T) {
	none := isa.RegNone
	clean := func(class isa.Class, dest isa.Reg) isa.Inst {
		return isa.Inst{Class: class, Dest: dest, Src1: none, Src2: none, PredGuard: none}
	}
	// log[0] is the struck instruction per case; log[1] overwrites the
	// same destination without reading it, so deferred π dies unread.
	overwrite := clean(isa.ClassALU, isa.IntReg(1))

	cases := []struct {
		name  string
		level ace.TrackLevel
		in    isa.Inst
		want  func(f isa.Field) Verdict
	}{
		{"parity signals every field", ace.TrackNever,
			clean(isa.ClassNop, none),
			func(isa.Field) Verdict { return VerdictSignalled }},
		{"commit pi clears wrong-path in every field", ace.TrackCommit,
			func() isa.Inst { in := clean(isa.ClassALU, isa.IntReg(1)); in.WrongPath = true; return in }(),
			func(isa.Field) Verdict { return VerdictSuppressed }},
		{"commit pi clears pred-false in every field", ace.TrackCommit,
			func() isa.Inst { in := clean(isa.ClassALU, isa.IntReg(1)); in.PredFalse = true; return in }(),
			func(isa.Field) Verdict { return VerdictSuppressed }},
		{"no anti-pi: neutral signals every field", ace.TrackCommit,
			clean(isa.ClassNop, none),
			func(isa.Field) Verdict { return VerdictSignalled }},
		{"anti-pi clears neutral except opcode", ace.TrackAntiPi,
			clean(isa.ClassNop, none),
			func(f isa.Field) Verdict {
				if f == isa.FieldOpcode {
					return VerdictSignalled
				}
				return VerdictSuppressed
			}},
		{"regfile pi: only the dest specifier is undeferrable", ace.TrackRegFile,
			clean(isa.ClassALU, isa.IntReg(1)),
			func(f isa.Field) Verdict {
				if f == isa.FieldDest {
					return VerdictSignalled
				}
				return VerdictSuppressed // pi on r1 is overwritten unread
			}},
	}
	for _, c := range cases {
		e := NewEngine(c.level)
		log := []isa.Inst{c.in, overwrite}
		for f := isa.Field(0); f < isa.NumFields; f++ {
			if got, want := e.Process(log, 0, f), c.want(f); got != want {
				t.Errorf("%s: struck field %v: verdict %v, want %v", c.name, f, got, want)
			}
		}
	}
}
