package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"softerror/internal/checkpoint"
	"softerror/internal/core"
	"softerror/internal/fleet"
	"softerror/internal/par"
	"softerror/internal/spec"
	"softerror/internal/sweep"
)

// Config sizes the service. Zero values take the documented defaults.
type Config struct {
	// MaxJobs is the number of sweep jobs running concurrently (default 2).
	MaxJobs int
	// MaxQueue is the number of accepted sweep jobs allowed to wait for a
	// slot (default 8); beyond it, submissions are rejected with 429.
	MaxQueue int
	// MaxEvals is the number of eval computations in flight (default 4);
	// beyond it, cache misses are rejected with 429. Cache hits are never
	// admission-controlled.
	MaxEvals int
	// Workers bounds each simulation campaign's parallelism (default
	// GOMAXPROCS, shared fairly by the par pool).
	Workers int
	// CacheBytes bounds the result cache (default 64 MiB; <0 disables).
	CacheBytes int64
	// CheckpointDir, when set, makes drain interrupt running sweep jobs and
	// checkpoint them there (fingerprint-named files) instead of waiting
	// for them to finish; resubmitting an interrupted grid resumes it.
	CheckpointDir string
	// MaxEstMcycles, when positive, is the admission budget for sweep
	// submissions in estimated simulated Mcycles: grids the static cost
	// model prices above it are rejected with 422 (and counted by the
	// sweeps_rejected_cost expvar) instead of being queued. Unpriceable
	// grids (streams the analyzer cannot decode) are always admitted.
	MaxEstMcycles float64
	// Fleet, when set, runs this server as a fleet coordinator: sweep jobs
	// are partitioned into leases and dispatched across the coordinator's
	// registered workers (degrading to local execution when none are
	// healthy), /v1/fleet/register admits workers, and /metrics grows a
	// fleet aggregate. The server does not own the coordinator — the
	// embedder closes it.
	Fleet *fleet.Coordinator
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	if c.MaxEvals <= 0 {
		c.MaxEvals = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	return c
}

// Server is the seratd HTTP service. Create with New, serve via ServeHTTP
// (it implements http.Handler), stop with Drain then Close.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *Cache
	metrics *metrics
	suites  *suitePool
	// arenas is shared by every sweep job and fleet lease the daemon
	// serves: decoded workload memos and warm evaluation buffers survive
	// from one job's batches to the next (and across a checkpoint-resumed
	// job's two legs) instead of being rebuilt per batch wave.
	arenas *core.ArenaPool

	// lifeCtx lives until Close: suites and eval computations run on it so
	// an in-flight eval finishes during drain. jobsCtx is cancelled at
	// drain time (when checkpointing is configured) to interrupt jobs.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	jobsCtx    context.Context
	jobsCancel context.CancelFunc

	evalGate *gate

	mu       sync.Mutex
	draining bool
	flights  map[string]*flight
	jobs     map[string]*Job
	byFP     map[string]*Job
	jobSeq   int

	slots chan struct{}  // worker slots for sweep jobs
	wg    sync.WaitGroup // accepted sweep jobs not yet terminal
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   NewCache(cfg.CacheBytes),
		arenas:  core.NewArenaPool(),
		flights: make(map[string]*flight),
		jobs:    make(map[string]*Job),
		byFP:    make(map[string]*Job),
		slots:   make(chan struct{}, cfg.MaxJobs),
	}
	s.metrics = newMetrics(time.Now(), s.cache)
	s.lifeCtx, s.lifeCancel = context.WithCancel(context.Background())
	s.jobsCtx, s.jobsCancel = context.WithCancel(s.lifeCtx)
	s.suites = newSuitePool(s.lifeCtx, cfg.Workers, 8)
	s.evalGate = newGate(cfg.MaxEvals)

	s.mux.HandleFunc("POST /v1/eval", s.handleEval)
	s.mux.HandleFunc("GET /v1/bound", s.handleBound)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/csv", s.handleJobCSV)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/lease", s.handleLease)
	s.mux.HandleFunc("POST /v1/fleet/register", s.handleFleetRegister)
	if cfg.Fleet != nil {
		s.metrics.vars.Set("fleet", expvar.Func(func() any { return cfg.Fleet.Snapshot() }))
	}
	return s
}

// ServeHTTP routes the request, counting it.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Drain stops accepting work and waits for every accepted job and eval to
// reach a terminal state, or for ctx to expire. With CheckpointDir set,
// running jobs are interrupted and checkpointed; otherwise they are left
// to finish naturally. Either way no accepted job is silently dropped:
// each ends done, failed or interrupted.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already && s.cfg.CheckpointDir != "" {
		s.jobsCancel()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// Close releases the server's contexts. Call after Drain.
func (s *Server) Close() { s.lifeCancel() }

// isDraining reports whether new work is being rejected.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// gate is counting-semaphore admission control: Enter either grants a
// slot immediately or fails — overload sheds instead of queueing, so the
// caller can answer 429 while the pool stays saturated but not oversubscribed.
type gate struct{ slots chan struct{} }

func newGate(n int) *gate { return &gate{slots: make(chan struct{}, n)} }

// enter returns a release func, or false when the gate is full.
func (g *gate) enter() (func(), bool) {
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, true
	default:
		return nil, false
	}
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// handleEval serves one evaluation: cache hit → stored bytes; miss →
// simulate under the eval gate, cache, serve. Concurrent identical misses
// single-flight onto one computation. The X-Cache response header says
// which path served the bytes ("hit" or "miss").
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.metrics.rejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	req, err := decodeEvalRequest(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	e, err := req.normalize()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := e.fingerprint()
	if body, ctype, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		s.serveBody(w, ctype, "hit", body)
		return
	}

	// Single-flight: the first miss computes, the rest wait and share.
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
		case <-r.Context().Done():
			return
		}
		if f.err != nil {
			httpError(w, http.StatusInternalServerError, "evaluation failed: %v", f.err)
			return
		}
		s.metrics.cacheHits.Add(1)
		s.serveBody(w, f.ctype, "hit", f.body)
		return
	}
	f := &flight{done: make(chan struct{}), ctype: e.contentType()}
	s.flights[key] = f
	s.mu.Unlock()

	release, ok := s.evalGate.enter()
	if !ok {
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		f.err = fmt.Errorf("too many evaluations in flight")
		close(f.done)
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "too many evaluations in flight")
		return
	}
	s.metrics.cacheMisses.Add(1)
	s.metrics.evalsInFlight.Add(1)
	f.body, f.err = s.render(s.lifeCtx, e)
	s.metrics.evalsInFlight.Add(-1)
	release()
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
	if f.err != nil {
		httpError(w, http.StatusInternalServerError, "evaluation failed: %v", f.err)
		return
	}
	s.cache.Put(key, f.ctype, f.body)
	s.serveBody(w, f.ctype, "miss", f.body)
}

func (s *Server) serveBody(w http.ResponseWriter, ctype, xcache string, body []byte) {
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("X-Cache", xcache)
	w.Write(body)
}

// SweepRequest is the POST /v1/sweep body: the grid axes plus resilience
// knobs, mirroring cmd/sweep's flags.
type SweepRequest struct {
	Benches    []string `json:"benches,omitempty"`
	Policies   []string `json:"policies"`
	IQSizes    []int    `json:"iqsizes,omitempty"`
	OutOfOrder []bool   `json:"ooo,omitempty"`
	Commits    uint64   `json:"commits,omitempty"`
	// OnError: "fail-fast" (default) or "continue".
	OnError string `json:"onerror,omitempty"`
	// TaskTimeout is the per-cell watchdog in Go duration syntax ("30s").
	TaskTimeout string `json:"tasktimeout,omitempty"`
	Retries     int    `json:"retries,omitempty"`
}

// SweepAccepted is the 202 response to a sweep submission.
type SweepAccepted struct {
	ID    string `json:"id"`
	Total int    `json:"total"`
	// Deduplicated is true when the submission matched an existing
	// non-failed job for the identical grid, which is returned instead of
	// re-running.
	Deduplicated bool `json:"deduplicated,omitempty"`
	// Priced reports whether the static cost model could price the grid.
	// It distinguishes a genuinely ~0-Mcycle estimate from "the analyzer
	// could not decode the stream" (false, with EstimatedMcycles zero).
	// Deduplicated responses echo the existing job and are never priced.
	Priced bool `json:"priced"`
	// EstimatedMcycles is the static cost model's price for the whole
	// grid, in millions of simulated cycles — computed analytically at
	// admission, before any simulation runs. Meaningful only when Priced
	// is true.
	EstimatedMcycles float64 `json:"estimated_mcycles"`
}

// maxSweepCells bounds an accepted grid's cell count: the benchmark and
// policy axes are roster-bounded, but the iqsizes/ooo arrays come straight
// from the request body, and an unbounded product would let one POST queue
// arbitrarily much simulation.
const maxSweepCells = 16384

// buildGrid translates the request into a sweep.Grid.
func (s *Server) buildGrid(req SweepRequest) (*sweep.Grid, error) {
	benches, err := spec.ParseList(joinNames(req.Benches))
	if err != nil {
		return nil, err
	}
	if len(req.Policies) == 0 {
		return nil, fmt.Errorf("at least one policy is required")
	}
	policies := make([]core.Policy, len(req.Policies))
	for i, p := range req.Policies {
		if policies[i], err = core.ParsePolicy(p); err != nil {
			return nil, err
		}
	}
	g := &sweep.Grid{
		Benches:    benches,
		Policies:   policies,
		IQSizes:    req.IQSizes,
		OutOfOrder: req.OutOfOrder,
		Commits:    req.Commits,
		Workers:    s.cfg.Workers,
		Retries:    req.Retries,
		Arenas:     s.arenas,
	}
	if len(g.IQSizes) == 0 {
		g.IQSizes = []int{64}
	}
	if len(g.OutOfOrder) == 0 {
		g.OutOfOrder = []bool{false}
	}
	switch req.OnError {
	case "", "fail-fast":
		g.OnError = par.FailFast
	case "continue":
		g.OnError = par.Collect
	default:
		return nil, fmt.Errorf("unknown onerror policy %q (known: fail-fast, continue)", req.OnError)
	}
	if req.TaskTimeout != "" {
		d, err := time.ParseDuration(req.TaskTimeout)
		if err != nil {
			return nil, fmt.Errorf("bad tasktimeout: %v", err)
		}
		g.TaskTimeout = d
	}
	for _, iq := range g.IQSizes {
		if iq < 1 {
			return nil, fmt.Errorf("bad IQ size %d, want >= 1", iq)
		}
	}
	if req.Retries < 0 {
		return nil, fmt.Errorf("bad retries %d, want >= 0", req.Retries)
	}
	if n := g.Size(); n < 1 || n > maxSweepCells {
		return nil, fmt.Errorf("grid spans %d cells, want 1..%d", n, maxSweepCells)
	}
	return g, nil
}

// handleSweep accepts a grid campaign: dedup against live jobs by grid
// fingerprint, admission-check the queue, register the job and launch it.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.metrics.rejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	g, err := s.buildGrid(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fp := g.Fingerprint()

	// Price the grid analytically before admission, so the cost budget can
	// reject over-budget work outright (the ROADMAP's admission pre-filter)
	// and the 202 can report the estimate alongside an explicit priced
	// flag. Dedup still wins: an identical already-admitted job is echoed
	// without re-pricing.
	var estMcycles float64
	priced := false
	if est, ok := g.EstimateCells(); ok {
		var sum uint64
		for _, c := range est {
			sum += c
		}
		estMcycles = float64(sum) / 1e6
		priced = true
	}

	s.mu.Lock()
	if prev, ok := s.byFP[fp]; ok {
		// Deterministic grids mean an identical submission would produce
		// identical rows; hand back the existing job unless it failed (a
		// failed or interrupted job may deserve a retry, which — thanks to
		// checkpointing — resumes from the completed cells).
		st := prev.State()
		if st != JobFailed && st != JobInterrupted {
			s.mu.Unlock()
			writeJSON(w, http.StatusAccepted, SweepAccepted{
				ID: prev.ID, Total: prev.Total, Deduplicated: true,
			})
			return
		}
	}
	if s.cfg.MaxEstMcycles > 0 && priced && estMcycles > s.cfg.MaxEstMcycles {
		s.mu.Unlock()
		s.metrics.rejectedCost.Add(1)
		httpError(w, http.StatusUnprocessableEntity,
			"grid priced at %.1f estimated Mcycles, over the %.1f admission budget",
			estMcycles, s.cfg.MaxEstMcycles)
		return
	}
	queued := 0
	for _, j := range s.jobs {
		if st := j.State(); st == JobQueued {
			queued++
		}
	}
	if queued >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "job queue is full (%d queued)", queued)
		return
	}
	s.jobSeq++
	id := fmt.Sprintf("job-%06d", s.jobSeq)
	j := newJob(id, fp, g.Size())
	s.jobs[id] = j
	s.byFP[fp] = j
	s.wg.Add(1)
	s.mu.Unlock()

	s.metrics.jobsQueued.Add(1)
	go s.runJob(j, g)
	writeJSON(w, http.StatusAccepted, SweepAccepted{
		ID: id, Total: j.Total, Priced: priced, EstimatedMcycles: estMcycles,
	})
}

// runGrid executes a sweep grid: through the fleet coordinator when this
// server runs in coordinator mode, locally otherwise. Both paths honour the
// checkpoint and render byte-identical rows — the fleet's contract.
func (s *Server) runGrid(ctx context.Context, g *sweep.Grid, ck *checkpoint.File[sweep.Row], progress func(done, total int)) ([]sweep.Row, error) {
	if s.cfg.Fleet != nil {
		return s.cfg.Fleet.Run(ctx, g, ck, progress)
	}
	// Local execution runs cells cheapest-first by the static cost model:
	// quick cells surface early progress and stragglers drain last. Rows
	// are scattered back to cell order, so the served bytes are identical
	// to an unordered run's.
	order, ok := g.OrderCheapest()
	if !ok {
		return g.RunContext(ctx, ck, progress)
	}
	out, err := g.RunIndices(ctx, order, ck, progress)
	rows := make([]sweep.Row, g.Size())
	for k, i := range order {
		if k < len(out) {
			rows[i] = out[k]
		}
	}
	// Failure indices refer to positions in the execution order; remap
	// them to cell indices so blame, skip sets and retries stay aligned
	// with the grid.
	var errs par.Errors
	var te *par.TaskError
	switch {
	case errors.As(err, &errs):
		for _, e := range errs {
			e.Index = order[e.Index]
		}
		sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
	case errors.As(err, &te):
		te.Index = order[te.Index]
	}
	return rows, err
}

// runJob drives one accepted sweep job to a terminal state. It owns the
// job's wg token; every exit path records a terminal event first.
func (s *Server) runJob(j *Job, g *sweep.Grid) {
	defer s.wg.Done()

	// Wait for a worker slot; drain (or shutdown) while queued interrupts
	// the job before it starts — zero cells done, nothing to checkpoint.
	select {
	case s.slots <- struct{}{}:
	case <-s.jobsCtx.Done():
		s.metrics.jobsQueued.Add(-1)
		s.metrics.jobsInterrupted.Add(1)
		j.finish(JobInterrupted, nil, nil, "", fmt.Errorf("interrupted before start"))
		return
	}
	defer func() { <-s.slots }()
	s.metrics.jobsQueued.Add(-1)
	s.metrics.jobsInFlight.Add(1)
	defer s.metrics.jobsInFlight.Add(-1)
	j.start()

	var ck *checkpoint.File[sweep.Row]
	ckPath := ""
	if s.cfg.CheckpointDir != "" {
		ckPath = filepath.Join(s.cfg.CheckpointDir, j.Fingerprint+".ckpt")
		var err error
		ck, err = checkpoint.Open[sweep.Row](ckPath, "sweep", j.Fingerprint, g.Size(), true)
		if err != nil {
			s.metrics.jobsFailed.Add(1)
			j.finish(JobFailed, nil, nil, "", err)
			return
		}
	}

	rows, err := s.runGrid(s.jobsCtx, g, ck, func(done, total int) { j.progress(done) })
	switch {
	case err == nil:
		if ck != nil {
			ck.Remove()
		}
		s.metrics.jobsDone.Add(1)
		j.finish(JobDone, rows, nil, "", nil)
	case errors.Is(err, context.Canceled) && s.jobsCtx.Err() != nil:
		// Drained mid-run: completed cells are safe in the checkpoint.
		s.metrics.jobsInterrupted.Add(1)
		j.finish(JobInterrupted, nil, nil, ckPath, fmt.Errorf("interrupted by drain"))
	default:
		var errs par.Errors
		skip := map[int]bool{}
		if errors.As(err, &errs) {
			// Collect policy: the unpoisoned rows are valid measurements.
			for _, i := range errs.Indices() {
				skip[i] = true
			}
		}
		s.metrics.jobsFailed.Add(1)
		j.finish(JobFailed, rows, skip, ckPath, err)
	}
}

// lookupJob resolves the {id} path value.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", id)
	}
	return j
}

// handleJob serves the job-status snapshot.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleJobEvents streams the job's events as ndjson, flushing each line,
// from the first event through the terminal one. Reconnecting replays the
// full history — events are retained for the job's lifetime, so no
// transition can be missed.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		ev, ok := j.next(r.Context(), i)
		if !ok {
			return // client went away
		}
		if err := enc.Encode(ev); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ev.State.terminal() {
			return
		}
	}
}

// handleJobCSV streams a terminal job's rows through the shared
// sweep.CSVWriter — byte-identical to cmd/sweep's file output for the
// same grid. Poisoned cells of a failed collect-and-continue job are
// skipped, exactly as the CLI skips them.
func (s *Server) handleJobCSV(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	if !j.State().terminal() {
		httpError(w, http.StatusConflict, "job %s is not finished (%s)", j.ID, j.State())
		return
	}
	rows, skip := j.Rows()
	if rows == nil {
		httpError(w, http.StatusConflict, "job %s has no rows (%s)", j.ID, j.State())
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	cw := sweep.NewCSVWriter(w)
	for i, row := range rows {
		if skip[i] {
			continue
		}
		if err := cw.WriteRow(row); err != nil {
			return
		}
	}
	cw.Flush()
}

// handleHealthz answers ok while accepting work, 503 while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the expvar map as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, s.metrics.vars.String())
}
