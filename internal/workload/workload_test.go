package workload

import (
	"math"
	"testing"

	"softerror/internal/isa"
)

func TestParamsValidateDefault(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("Default() does not validate: %v", err)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.LoadFrac = -0.1 },
		func(p *Params) { p.NopFrac = 1.5 },
		func(p *Params) { p.MispredictRate = 2 },
		func(p *Params) { p.LoadFrac = 0.6; p.StoreFrac = 0.6 },
		func(p *Params) { p.L0Frac = 0; p.L1Frac = 0; p.L2Frac = 0; p.MemFrac = 0 },
		func(p *Params) { p.MeanBlockLen = 0 },
		func(p *Params) { p.MeanCalleeLen = 0 },
		func(p *Params) { p.DepDistance = 0 },
	}
	for i, mutate := range cases {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid Params validated", i)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	p := Default()
	p.MeanBlockLen = 0
	if _, err := New(p); err == nil {
		t.Fatal("New accepted invalid Params")
	}
}

func TestDeterministicStream(t *testing.T) {
	a := MustNew(Default())
	b := MustNew(Default())
	for i := 0; i < 5000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("instruction %d differs:\n a=%v\n b=%v", i, ia, ib)
		}
	}
}

func TestSeqMonotonic(t *testing.T) {
	g := MustNew(Default())
	var prev uint64
	for i := 0; i < 10000; i++ {
		var in isa.Inst
		if i%7 == 3 {
			in = g.NextWrong()
		} else {
			in = g.Next()
		}
		if i > 0 && in.Seq != prev+1 {
			t.Fatalf("sequence gap at %d: %d -> %d", i, prev, in.Seq)
		}
		prev = in.Seq
	}
}

// drawMix draws n correct-path instructions and returns per-class fractions.
func drawMix(t *testing.T, p Params, n int) (map[isa.Class]float64, *Generator) {
	t.Helper()
	g := MustNew(p)
	counts := map[isa.Class]int{}
	for i := 0; i < n; i++ {
		in := g.Next()
		if !in.Class.Valid() {
			t.Fatalf("invalid class at %d: %v", i, in)
		}
		counts[in.Class]++
	}
	fracs := map[isa.Class]float64{}
	for c, k := range counts {
		fracs[c] = float64(k) / float64(n)
	}
	return fracs, g
}

func TestMixApproximatesParams(t *testing.T) {
	p := Default()
	const n = 200000
	fracs, _ := drawMix(t, p, n)

	// Mix params are weights over *body* instructions; control flow and
	// idiom-expansion instructions dilute the realised fractions, so check
	// relative to the parameter with a generous band.
	approx := func(name string, got, want float64) {
		t.Helper()
		if got < 0.6*want || got > 1.1*want {
			t.Errorf("%s fraction = %.4f, want within [0.6, 1.1]x of %.4f", name, got, want)
		}
	}
	approx("nop", fracs[isa.ClassNop], p.NopFrac)
	approx("prefetch", fracs[isa.ClassPrefetch], p.PrefetchFrac)
	approx("load", fracs[isa.ClassLoad], p.LoadFrac)
	// Branch fraction: one block-terminator roughly every MeanBlockLen+1
	// instructions.
	wantBr := 1.0 / float64(p.MeanBlockLen+1)
	approx("branch+call+return", fracs[isa.ClassBranch]+fracs[isa.ClassCall]+fracs[isa.ClassReturn], wantBr)
}

func TestCallsBalanceReturns(t *testing.T) {
	g := MustNew(Default())
	calls, rets := 0, 0
	depth := 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		switch in.Class {
		case isa.ClassCall:
			calls++
			depth++
		case isa.ClassReturn:
			rets++
			depth--
		}
		if depth < 0 {
			t.Fatalf("return without matching call at instruction %d", i)
		}
		if depth > maxCallDepth {
			t.Fatalf("call depth %d exceeds cap", depth)
		}
	}
	if calls == 0 {
		t.Fatal("no calls emitted")
	}
	if diff := calls - rets; diff < 0 || diff > maxCallDepth {
		t.Fatalf("calls=%d returns=%d unbalanced", calls, rets)
	}
}

func TestCallDepthStamped(t *testing.T) {
	g := MustNew(Default())
	depth := 0
	for i := 0; i < 50000; i++ {
		in := g.Next()
		// The stamp reflects depth *after* the call/return executes for
		// calls (callee side), matching the generator's bookkeeping.
		switch in.Class {
		case isa.ClassCall:
			depth++
		case isa.ClassReturn:
			depth--
		default:
			if int(in.CallDepth) != depth {
				t.Fatalf("inst %d: CallDepth=%d, tracker=%d", i, in.CallDepth, depth)
			}
		}
	}
}

func TestScratchRegistersNeverRead(t *testing.T) {
	g := MustNew(Default())
	for i := 0; i < 100000; i++ {
		in := g.Next()
		for _, src := range []isa.Reg{in.Src1, in.Src2} {
			if src.IsInt() && int(src) >= scratchLo && int(src) <= scratchHi {
				t.Fatalf("instruction %d reads scratch register %v: %v", i, src, in)
			}
		}
	}
}

func TestTDDPoolReadOnlyByChains(t *testing.T) {
	// TDD-pool registers may be read, but only by instructions whose own
	// destination is in the scratch/TDD pool or a dead store — i.e. the
	// designated dead consumers. A live-dest instruction must never source
	// a TDD-pool register.
	g := MustNew(Default())
	for i := 0; i < 100000; i++ {
		in := g.Next()
		readsTDD := false
		for _, src := range []isa.Reg{in.Src1, in.Src2} {
			if src.IsInt() && int(src) >= tddLo && int(src) <= tddHi {
				readsTDD = true
			}
		}
		if !readsTDD {
			continue
		}
		deadDest := in.Dest.IsInt() &&
			((int(in.Dest) >= scratchLo && int(in.Dest) <= scratchHi) ||
				(int(in.Dest) >= tddLo && int(in.Dest) <= tddHi))
		if !deadDest && in.Class != isa.ClassStore {
			t.Fatalf("instruction %d reads TDD pool with live dest: %v", i, in)
		}
	}
}

func TestDeadStoreAddressesNeverLoaded(t *testing.T) {
	g := MustNew(Default())
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Class == isa.ClassLoad && in.Addr >= deadBase && in.Addr < deadBase+deadSize {
			t.Fatalf("instruction %d loads from dead-store ring: %v", i, in)
		}
	}
}

func TestPredicationStats(t *testing.T) {
	p := Default()
	p.PredicatedFrac = 0.3
	p.PredFalseProb = 0.4
	g := MustNew(p)
	const n = 200000
	for i := 0; i < n; i++ {
		g.Next()
	}
	st := g.Stats()
	predFrac := float64(st.Predicated) / float64(st.Total)
	// Only ALU/FP/load/store bodies are predication-eligible, so the
	// realised fraction is below the parameter; it must still be material.
	if predFrac < 0.05 || predFrac > p.PredicatedFrac {
		t.Errorf("predicated fraction = %.3f, want in (0.05, %.2f]", predFrac, p.PredicatedFrac)
	}
	if st.Predicated > 0 {
		falseFrac := float64(st.PredFalse) / float64(st.Predicated)
		if math.Abs(falseFrac-p.PredFalseProb) > 0.05 {
			t.Errorf("pred-false fraction = %.3f, want ~%.2f", falseFrac, p.PredFalseProb)
		}
	}
}

func TestMispredictRate(t *testing.T) {
	p := Default()
	p.MispredictRate = 0.10
	g := MustNew(p)
	branches, mispred := 0, 0
	for i := 0; i < 300000; i++ {
		in := g.Next()
		if in.Class == isa.ClassBranch {
			branches++
			if in.Mispred {
				mispred++
			}
		}
	}
	if branches == 0 {
		t.Fatal("no branches")
	}
	rate := float64(mispred) / float64(branches)
	if math.Abs(rate-0.10) > 0.02 {
		t.Errorf("mispredict rate = %.3f, want ~0.10", rate)
	}
}

func TestWrongPathInstructions(t *testing.T) {
	g := MustNew(Default())
	for i := 0; i < 10000; i++ {
		in := g.NextWrong()
		if !in.WrongPath {
			t.Fatal("NextWrong produced a correct-path instruction")
		}
		if in.Committed() {
			t.Fatal("wrong-path instruction reports Committed")
		}
		if !in.Class.Valid() {
			t.Fatalf("invalid wrong-path class: %v", in)
		}
	}
	if g.Stats().WrongPath != 10000 {
		t.Fatalf("WrongPath stat = %d, want 10000", g.Stats().WrongPath)
	}
}

func TestAddrRegions(t *testing.T) {
	p := Default()
	p.L0Frac, p.L1Frac, p.L2Frac, p.MemFrac = 0.25, 0.25, 0.25, 0.25
	p.MissBurstiness = 0 // disable clustering so fractions match weights
	g := MustNew(p)
	var hot, warm, big, huge int
	total := 0
	for i := 0; i < 400000; i++ {
		in := g.Next()
		if in.Class != isa.ClassLoad {
			continue
		}
		total++
		switch {
		case in.Addr >= hotBase && in.Addr < hotBase+hotSize:
			hot++
		case in.Addr >= warmBase && in.Addr < warmBase+warmSize:
			warm++
		case in.Addr >= bigBase && in.Addr < bigBase+bigSize:
			big++
		case in.Addr >= hugeBase && in.Addr < hugeBase+hugeSize:
			huge++
		default:
			t.Fatalf("load address %#x in no region", in.Addr)
		}
	}
	if total == 0 {
		t.Fatal("no loads")
	}
	for name, k := range map[string]int{"hot": hot, "warm": warm, "big": big, "huge": huge} {
		frac := float64(k) / float64(total)
		if math.Abs(frac-0.25) > 0.03 {
			t.Errorf("%s region fraction = %.3f, want ~0.25", name, frac)
		}
	}
}

func TestAddressAlignment(t *testing.T) {
	g := MustNew(Default())
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if in.Class.IsMem() && in.Addr%accessAlign != 0 {
			t.Fatalf("misaligned address %#x in %v", in.Addr, in)
		}
	}
}

func TestDeadIntentFractions(t *testing.T) {
	p := Default()
	g := MustNew(p)
	const n = 300000
	for i := 0; i < n; i++ {
		g.Next()
	}
	st := g.Stats()
	deadIntent := float64(st.IntentFDDReg+st.IntentTDDReg+st.IntentFDDMem+st.IntentTDDMem) / float64(st.Total)
	// The paper reports ~20% dynamically dead instructions; the explicit
	// dead idioms should put us in that neighbourhood before counting
	// return-dead locals.
	if deadIntent < 0.08 || deadIntent > 0.35 {
		t.Errorf("explicit dead intent fraction = %.3f, want in [0.08, 0.35]", deadIntent)
	}
	if st.IntentLocal == 0 {
		t.Error("no procedure-local writes emitted")
	}
}

func TestRecentRing(t *testing.T) {
	r := newRecentRing(4)
	s := MustNew(Default()).mix
	if got := r.pick(s, 2); got != isa.RegNone {
		t.Fatalf("empty ring pick = %v, want RegNone", got)
	}
	r.push(isa.IntReg(1))
	r.push(isa.IntReg(2))
	for i := 0; i < 100; i++ {
		got := r.pick(s, 2)
		if got != isa.IntReg(1) && got != isa.IntReg(2) {
			t.Fatalf("pick returned %v not in ring", got)
		}
	}
	// Overflow wraps.
	for i := 3; i <= 10; i++ {
		r.push(isa.IntReg(i))
	}
	for i := 0; i < 100; i++ {
		got := r.pick(s, 2)
		if int(got) < 7 || int(got) > 10 {
			t.Fatalf("pick returned evicted register %v", got)
		}
	}
}

func TestRRCounterWraps(t *testing.T) {
	c := rrCounter{lo: 5, hi: 7}
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		seen[c.take()]++
	}
	for v := 5; v <= 7; v++ {
		if seen[v] != 3 {
			t.Fatalf("rrCounter value %d taken %d times, want 3", v, seen[v])
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := MustNew(Default())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

func TestTablePredictorsProduceOrganicRates(t *testing.T) {
	for _, model := range []string{"gshare", "bimodal"} {
		p := Default()
		p.BranchPredictor = model
		g := MustNew(p)
		branches, mispred := 0, 0
		for i := 0; i < 200000; i++ {
			in := g.Next()
			if in.Class == isa.ClassBranch {
				branches++
				if in.Mispred {
					mispred++
				}
			}
		}
		if branches == 0 {
			t.Fatalf("%s: no branches", model)
		}
		rate := float64(mispred) / float64(branches)
		// Synthetic branch outcomes are random coin flips at TakenProb, so
		// table predictors converge near the entropy floor: they learn the
		// bias but not the (nonexistent) pattern.
		if rate <= 0.05 || rate >= 0.60 {
			t.Errorf("%s: organic mispredict rate %.3f implausible", model, rate)
		}
	}
}

func TestIOInstructionsEmitted(t *testing.T) {
	p := Default()
	p.IOFrac = 0.01 // exaggerate for the test
	g := MustNew(p)
	ios := 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Class == isa.ClassIO {
			ios++
			if in.Src1 == isa.RegNone {
				t.Fatal("I/O write without a value source")
			}
			if in.Addr < ioBase || in.Addr >= ioBase+ioSize {
				t.Fatalf("I/O address %#x outside device region", in.Addr)
			}
		}
	}
	if ios == 0 {
		t.Fatal("no I/O instructions emitted")
	}
}
