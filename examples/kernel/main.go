// Kernel: analyse a hand-written loop kernel instead of a synthetic
// benchmark. The mini-language (workload.ParseProgram) lets a user express
// an exact instruction sequence — here a stencil-like loop with a known
// dead write and a predicated pair — and the full stack (pipeline, ACE
// analysis, π-bit levels) runs on it like on any workload.
//
//	go run ./examples/kernel
package main

import (
	"fmt"
	"log"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

const kernel = `
# one iteration of a stencil-ish loop
load r5 r1 0x1000        # x    = a[i]
load r6 r1 0x1040        # y    = a[i+8]
alu r7 r5 r6             # t    = f(x, y)
store r7 r2 0x2000       # b[i] = t
alu r120 r7 -            # profiling temp: dead, overwritten next iter
cmp p3 r7 r5
(p3) alu r8 r7 -         # taken-side work
(p3!) alu r9 r7 -        # annulled side
nop                      # bundle filler
br p3 taken
`

func main() {
	src := workload.MustParseReplay(kernel, 42)
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	pipe, err := pipeline.New(pipeline.DefaultConfig(), src, mem)
	if err != nil {
		log.Fatal(err)
	}
	tr := pipe.Run(50_000, true)
	rep := ace.Analyze(tr)

	fmt.Printf("kernel ran at IPC %.2f over %d cycles\n\n", tr.IPC(), tr.Cycles)
	fmt.Printf("instruction-queue AVFs:\n")
	fmt.Printf("  SDC (unprotected)  %5.1f%%\n", 100*rep.SDCAVF())
	fmt.Printf("  DUE (parity)       %5.1f%%\n", 100*rep.DUEAVF())
	fmt.Printf("  false DUE          %5.1f%%\n\n", 100*rep.FalseDUEAVF())

	fmt.Println("dynamic dead-code discovery on the kernel:")
	for c := ace.Category(0); c < ace.NumCategories; c++ {
		if n := rep.Dead.Counts[c]; n > 0 {
			fmt.Printf("  %-11s %6d instructions\n", c.String(), n)
		}
	}

	fmt.Println("\nfalse-DUE left after each tracking level:")
	for _, lvl := range []ace.TrackLevel{
		ace.TrackCommit, ace.TrackAntiPi, ace.TrackPET,
		ace.TrackRegFile, ace.TrackStoreBuffer, ace.TrackMemory,
	} {
		fmt.Printf("  %-12s %5.1f%%\n", lvl.String(), 100*rep.FalseDUERemaining(lvl, 512))
	}
}
