package fault

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/checkpoint"
	"softerror/internal/par"
)

// TestStrikeOutcomeIsolation pins the per-strike RNG stream contract: a
// single strike index replayed in isolation reproduces exactly its outcome
// within the full campaign, so any subset of the strike space (a retried
// cell, a resumed chunk, a debugging session on one strike) is faithful.
func TestStrikeOutcomeIsolation(t *testing.T) {
	tr, dead, _ := setup(t)
	inj := NewInjector(tr, dead)
	cfg := Config{Protection: cache.ProtParity, Level: ace.TrackCommit, Strikes: 400, Seed: 7}
	full, err := inj.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var replay Result
	for i := 0; i < cfg.Strikes; i++ {
		replay.Counts[inj.StrikeOutcome(cfg, i)]++
		replay.Strikes++
	}
	if replay.Counts != full.Counts {
		t.Fatalf("strike-by-strike replay %v != full campaign %v", replay.Counts, full.Counts)
	}
}

// TestRunRangePartitionIdentity checks that any partition of the strike
// space merges to the full campaign's exact tallies — the property chunked
// checkpointing rests on.
func TestRunRangePartitionIdentity(t *testing.T) {
	tr, dead, _ := setup(t)
	inj := NewInjector(tr, dead)
	cfg := Config{Protection: cache.ProtNone, Strikes: 1000, Seed: 3}
	full, err := inj.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	merged := &Result{}
	for _, cut := range [][2]int{{0, 137}, {137, 700}, {700, 1000}} {
		part, err := inj.RunRange(ctx, cfg, cut[0], cut[1])
		if err != nil {
			t.Fatal(err)
		}
		merged.Merge(part)
	}
	if merged.Counts != full.Counts || merged.Strikes != full.Strikes {
		t.Fatalf("partitioned run %v != full run %v", merged.Counts, full.Counts)
	}
}

func TestCampaignMatchesDirectRuns(t *testing.T) {
	tr, dead, _ := setup(t)
	inj := NewInjector(tr, dead)
	cfgs := []Config{
		{Protection: cache.ProtNone, Strikes: 300, Seed: 5},
		{Protection: cache.ProtParity, Level: ace.TrackStoreBuffer, Strikes: 300, Seed: 5},
	}
	camp := &Campaign{Injector: inj, Configs: cfgs, Chunk: 97}
	got, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := inj.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Counts != want.Counts {
			t.Errorf("config %d: campaign %v != direct run %v", i, got[i].Counts, want.Counts)
		}
	}
}

// TestCampaignCrashResumeByteIdentical is the acceptance scenario: a chaos
// hook kills the campaign partway through, the checkpoint preserves the
// completed cells, and a resumed run produces tallies identical to a run
// that was never interrupted.
func TestCampaignCrashResumeByteIdentical(t *testing.T) {
	tr, dead, _ := setup(t)
	inj := NewInjector(tr, dead)
	cfgs := []Config{
		{Protection: cache.ProtNone, Strikes: 500, Seed: 11},
		{Protection: cache.ProtParity, Level: ace.TrackMemory, Strikes: 500, Seed: 11},
	}
	newCamp := func() *Campaign {
		return &Campaign{Injector: inj, Configs: cfgs, Chunk: 100, Opts: par.Options{Workers: 2}}
	}

	straight, err := newCamp().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	camp := newCamp()
	fp := camp.Fingerprint()
	ck, err := checkpoint.Open[Result](path, "fault-test", fp, camp.Cells(), false)
	if err != nil {
		t.Fatal(err)
	}
	ck.SetInterval(1)
	camp.Checkpoint = ck

	// Crash the process-under-test once it reaches cell 3.
	par.SetChaos(func(_ context.Context, index, attempt int) error {
		if index >= 3 {
			panic(fmt.Sprintf("chaos: simulated crash in cell %d", index))
		}
		return nil
	})
	if _, err := camp.Run(context.Background()); err == nil {
		par.SetChaos(nil)
		t.Fatal("chaos-crashed campaign reported success")
	}
	par.SetChaos(nil)

	resumed, err := checkpoint.Open[Result](path, "fault-test", fp, camp.Cells(), true)
	if err != nil {
		t.Fatal(err)
	}
	if n := resumed.CountDone(); n == 0 || n == camp.Cells() {
		t.Fatalf("checkpoint holds %d/%d cells; the crash should leave a strict partial", n, camp.Cells())
	}
	camp2 := newCamp()
	camp2.Checkpoint = resumed
	got, err := camp2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if got[i].Counts != straight[i].Counts || got[i].Strikes != straight[i].Strikes {
			t.Errorf("config %d: resumed %v != straight-through %v", i, got[i].Counts, straight[i].Counts)
		}
	}
}

func TestCampaignRejectsMismatchedCheckpoint(t *testing.T) {
	tr, dead, _ := setup(t)
	inj := NewInjector(tr, dead)
	camp := &Campaign{
		Injector: inj,
		Configs:  []Config{{Protection: cache.ProtNone, Strikes: 100, Seed: 1}},
		Chunk:    50,
		Checkpoint: checkpoint.New[Result](
			filepath.Join(t.TempDir(), "x.ckpt"), "k", "fp", 99),
	}
	if _, err := camp.Run(context.Background()); err == nil {
		t.Fatal("campaign accepted a checkpoint with the wrong cell count")
	}
}
