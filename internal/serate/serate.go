// Package serate implements the soft-error-rate arithmetic of §2 and §3.2
// of the paper: FIT/MTTF conversions, the composition of a processor's SDC
// and DUE rates from per-device raw rates and AVFs, and the MITF (Mean
// Instructions To Failure) metric that captures the performance–reliability
// trade-off of exposure-reduction techniques.
package serate

import (
	"fmt"
	"math"
)

// FIT is a failure rate in Failures In Time: one FIT is one failure per
// billion device-hours.
type FIT float64

// HoursPerBillion is the number of device-hours in which a 1-FIT device
// fails once.
const HoursPerBillion = 1e9

// MTTFYearFIT is the FIT rate equivalent to an MTTF of one year
// (10^9 / (24*365) ≈ 114155), as computed in §2 of the paper.
const MTTFYearFIT = HoursPerBillion / (24 * 365)

// MTTFYears converts a FIT rate to mean time to failure in years.
// A zero rate yields +Inf.
func (f FIT) MTTFYears() float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return float64(MTTFYearFIT) / float64(f)
}

// MTTFHours converts a FIT rate to mean time to failure in hours.
func (f FIT) MTTFHours() float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return HoursPerBillion / float64(f)
}

// FromMTTFYears returns the FIT rate for a given MTTF in years.
func FromMTTFYears(years float64) FIT {
	if years <= 0 {
		return FIT(math.Inf(1))
	}
	return FIT(MTTFYearFIT / years)
}

// Device is one vulnerable structure: a raw circuit-level error rate
// (proportional to its bit count) and its architectural vulnerability
// factors. A device protected by error detection only (parity) contributes
// its DUE AVF; an unprotected device contributes its SDC AVF; an
// ECC-corrected device contributes neither.
type Device struct {
	Name   string
	RawFIT FIT     // raw soft-error rate of the device's bits
	SDCAVF float64 // probability a strike becomes silent data corruption
	DUEAVF float64 // probability a strike becomes a detected unrecoverable error
}

// Rates composes total SDC and DUE FIT rates over a set of devices,
// implementing the summations of §2.1 and §2.2.
func Rates(devices []Device) (sdc, due FIT) {
	for _, d := range devices {
		sdc += FIT(float64(d.RawFIT) * d.SDCAVF)
		due += FIT(float64(d.RawFIT) * d.DUEAVF)
	}
	return sdc, due
}

// MITF computes Mean Instructions To Failure from IPC, clock frequency in
// hertz, and an MTTF in hours: MITF = IPC × frequency × MTTF (§3.2).
func MITF(ipc, frequencyHz, mttfHours float64) float64 {
	return ipc * frequencyHz * mttfHours * 3600
}

// MITFFromAVF computes MITF directly from the raw error rate and AVF:
// MITF = (frequency / raw error rate) × (IPC / AVF). At fixed frequency and
// raw rate, MITF is proportional to IPC/AVF — the paper's figure of merit
// for squashing policies.
func MITFFromAVF(ipc, frequencyHz float64, raw FIT, avf float64) float64 {
	if raw <= 0 || avf <= 0 {
		return math.Inf(1)
	}
	mttfHours := (FIT(float64(raw) * avf)).MTTFHours()
	return MITF(ipc, frequencyHz, mttfHours)
}

// Merit is the paper's dimensionless MITF proxy IPC/AVF (Table 1's last two
// columns). Infinite when AVF is zero.
func Merit(ipc, avf float64) float64 {
	if avf <= 0 {
		return math.Inf(1)
	}
	return ipc / avf
}

// String renders a FIT value with its MTTF equivalent.
func (f FIT) String() string {
	return fmt.Sprintf("%.1f FIT (MTTF %.2f years)", float64(f), f.MTTFYears())
}
