package invariant

import (
	"context"
	"fmt"

	"softerror/internal/core"
	"softerror/internal/isa"
	"softerror/internal/pipeline"
	"softerror/internal/rng"
)

// ConservationSink is a pipeline.Sink that integrates raw occupancy per
// structure and validates every interval's shape as it closes. Tee it onto
// any run (core.Config.Sink) and compare its sums against the structures'
// bit-cycle capacity: Weaver et al.'s AVF is a residency integral, so an
// interval that escapes these bounds is a wrong number, not a style issue.
type ConservationSink struct {
	// IQOcc, FEOcc and SBOcc are Σ(Evict−Enq) per structure, in
	// entry-cycles.
	IQOcc, FEOcc, SBOcc uint64
	// Commits counts OnCommit events.
	Commits uint64
	// Err records the first malformed interval observed (nil when all
	// intervals were well-formed).
	Err error
}

func (c *ConservationSink) interval(structure string, r pipeline.Residency) uint64 {
	if c.Err == nil {
		switch {
		case r.Evict < r.Enq:
			c.Err = fmt.Errorf("%s interval inverted: evict %d < enq %d (seq %d)",
				structure, r.Evict, r.Enq, r.Inst.Seq)
		case r.Issued && (r.Issue < r.Enq || r.Issue > r.Evict):
			c.Err = fmt.Errorf("%s issue cycle %d outside residency [%d, %d] (seq %d)",
				structure, r.Issue, r.Enq, r.Evict, r.Inst.Seq)
		}
	}
	return r.Occupancy()
}

// OnResidency implements pipeline.Sink.
func (c *ConservationSink) OnResidency(r pipeline.Residency) { c.IQOcc += c.interval("iq", r) }

// OnFrontEnd implements pipeline.Sink.
func (c *ConservationSink) OnFrontEnd(r pipeline.Residency) { c.FEOcc += c.interval("front-end", r) }

// OnStoreBuffer implements pipeline.Sink.
func (c *ConservationSink) OnStoreBuffer(r pipeline.Residency) {
	c.SBOcc += c.interval("store-buffer", r)
}

// OnCommit implements pipeline.Sink.
func (c *ConservationSink) OnCommit(in isa.Inst, enq, issue uint64) {
	c.Commits++
	if c.Err == nil && issue < enq {
		c.Err = fmt.Errorf("commit of seq %d issued at %d before enqueue at %d", in.Seq, issue, enq)
	}
}

// reportConserved checks one structure report's accounting: the bit-cycle
// classes must partition capacity exactly, and every AVF must be a
// probability.
func reportConserved(name string, r *aceReport) error {
	sum := r.IdleBC + r.NeverReadBC + r.ExACEBC + r.ACEBC + r.UnACETotalBC
	if sum != r.TotalBC {
		return fmt.Errorf("%s bit-cycle classes sum to %d, capacity is %d", name, sum, r.TotalBC)
	}
	for _, f := range []struct {
		label string
		v     float64
	}{
		{"sdc_avf", r.SDCAVF}, {"due_avf", r.DUEAVF}, {"false_due_avf", r.FalseDUEAVF},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("%s %s = %v, outside [0,1]", name, f.label, f.v)
		}
	}
	if r.SDCAVF+r.FalseDUEAVF > 1+1e-12 {
		return fmt.Errorf("%s ACE and un-ACE fractions overlap: %v + %v > 1",
			name, r.SDCAVF, r.FalseDUEAVF)
	}
	return nil
}

// aceReport is the subset of ace.Report the conservation check audits,
// flattened so both structure reports go through one validator.
type aceReport struct {
	TotalBC, IdleBC, NeverReadBC, ExACEBC, ACEBC, UnACETotalBC uint64
	SDCAVF, DUEAVF, FalseDUEAVF                                float64
}

// checkResidencyConservation drives one random workload × machine
// configuration and asserts, via a teed ConservationSink, that (1) every
// interval is well-formed, (2) per-structure occupancy integrals fit within
// cycles × entries, (3) the IQ's non-idle bit-cycles equal the occupancy
// integral exactly (the classes partition occupancy, nothing more or less),
// and (4) every derived AVF is a probability.
func checkResidencyConservation(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0x1A5E)
	params := RandomWorkload(s)
	cfg := RandomPipelineConfig(s)
	sink := &ConservationSink{}
	res, err := core.RunContext(context.Background(), core.Config{
		Workload:    params,
		Pipeline:    cfg,
		Commits:     opt.Commits,
		FrontEnd:    true,
		StoreBuffer: true,
		Sink:        sink,
	})
	if err != nil {
		return fmt.Errorf("run: %w (cfg=%+v)", err, cfg)
	}
	if sink.Err != nil {
		return sink.Err
	}
	if sink.Commits != res.Commits {
		return fmt.Errorf("sink saw %d commits, run reports %d", sink.Commits, res.Commits)
	}
	// A degenerate run would pass every bound vacuously.
	if res.Cycles == 0 || res.Commits < opt.Commits {
		return fmt.Errorf("run made no progress: %d cycles, %d of %d commits",
			res.Cycles, res.Commits, opt.Commits)
	}

	// Capacity: no structure can integrate more entry-cycles than it has.
	for _, st := range []struct {
		name    string
		occ     uint64
		entries int
	}{
		{"iq", sink.IQOcc, cfg.IQSize},
		{"front-end", sink.FEOcc, cfg.FrontEndCap()},
		{"store-buffer", sink.SBOcc, cfg.StoreBufferSize},
	} {
		if cap := res.Cycles * uint64(st.entries); st.occ > cap {
			return fmt.Errorf("%s occupancy %d entry-cycles exceeds capacity %d (%d cycles × %d entries)",
				st.name, st.occ, cap, res.Cycles, st.entries)
		}
	}

	// The IQ charges every occupied cycle of every interval to exactly one
	// class, so non-idle bit-cycles must equal the occupancy integral.
	rep := res.Report
	if nonIdle, want := rep.TotalBC()-rep.IdleBC, sink.IQOcc*uint64(rep.BitsPer); nonIdle != want {
		return fmt.Errorf("iq non-idle bit-cycles %d != occupancy integral %d", nonIdle, want)
	}
	if err := reportConserved("iq", &aceReport{
		TotalBC: rep.TotalBC(), IdleBC: rep.IdleBC, NeverReadBC: rep.NeverReadBC,
		ExACEBC: rep.ExACEBC, ACEBC: rep.ACEBC, UnACETotalBC: rep.UnACETotalBC(),
		SDCAVF: rep.SDCAVF(), DUEAVF: rep.DUEAVF(), FalseDUEAVF: rep.FalseDUEAVF(),
	}); err != nil {
		return err
	}

	// The front end reads at delivery (no linger), so its classified
	// bit-cycles are bounded by — not equal to — the occupancy integral.
	fe := res.FrontEndReport
	if fe == nil {
		return fmt.Errorf("front-end analysis missing from result")
	}
	if nonIdle, bound := fe.TotalBC()-fe.IdleBC, sink.FEOcc*uint64(fe.BitsPer); nonIdle > bound {
		return fmt.Errorf("front-end non-idle bit-cycles %d exceed occupancy integral %d", nonIdle, bound)
	}
	if err := reportConserved("front-end", &aceReport{
		TotalBC: fe.TotalBC(), IdleBC: fe.IdleBC, NeverReadBC: fe.NeverReadBC,
		ExACEBC: fe.ExACEBC, ACEBC: fe.ACEBC, UnACETotalBC: fe.UnACETotalBC(),
		SDCAVF: fe.SDCAVF(), DUEAVF: fe.DUEAVF(), FalseDUEAVF: fe.FalseDUEAVF(),
	}); err != nil {
		return err
	}

	if res.StoreBufferReport == nil {
		return fmt.Errorf("store-buffer analysis missing from result")
	}
	return nil
}
