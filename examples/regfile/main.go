// Regfile: the paper's closing extension — "once these mechanisms are in
// place, they can also reduce the AVF of other structures, such as the
// register file." Computes the architectural register files' vulnerability
// decomposition across contrasting benchmarks and shows how much of a
// parity-protected file's DUE rate the π-bit machinery would remove (the
// dead-read windows are exactly what π propagation covers).
//
//	go run ./examples/regfile
package main

import (
	"fmt"
	"log"
	"os"

	"softerror/internal/core"
	"softerror/internal/report"
	"softerror/internal/spec"
)

func main() {
	names := []string{"gzip-graphic", "mcf", "ammp", "sixtrack"}
	t := report.New("register-file vulnerability (int + fp + predicate files)",
		"benchmark", "SDC AVF", "DUE AVF", "false DUE", "Ex-ACE", "untouched")
	for _, name := range names {
		b, ok := spec.ByName(name)
		if !ok {
			log.Fatalf("benchmark %s missing", name)
		}
		res, err := core.Run(core.Config{
			Workload: b.Params,
			Commits:  80_000,
			RegFile:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		rf := res.RegFile
		t.AddRow(name,
			report.Pct(rf.SDCAVF()), report.Pct(rf.DUEAVF()),
			report.Pct(rf.FalseDUEAVF()), report.Pct(rf.ExACEFraction()),
			report.Pct(rf.UntouchedFraction()))
	}
	t.Fprint(os.Stdout)

	fmt.Println("\nthe 'false DUE' column is the share of register bit-cycles whose")
	fmt.Println("faults a parity-checked file would flag even though only dynamically")
	fmt.Println("dead consumers ever read them; carrying pi bits from registers down")
	fmt.Println("the pipeline (sections 4.2-4.3 of the paper) suppresses exactly these.")
}
