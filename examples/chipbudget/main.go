// Chipbudget: the §2 design loop end to end. Measure the AVFs of every
// modelled structure on a real simulation, compose them into chip-level
// SDC/DUE rates, check vendor-style MTTF targets, and let the planner pick
// the cheapest protection mix that meets them.
//
//	go run ./examples/chipbudget
package main

import (
	"fmt"
	"log"

	"softerror/internal/ace"
	"softerror/internal/chip"
	"softerror/internal/core"
	"softerror/internal/isa"
	"softerror/internal/spec"
)

func main() {
	bench, ok := spec.ByName("gzip-graphic")
	if !ok {
		log.Fatal("benchmark missing")
	}
	res, err := core.Run(core.Config{
		Workload:  bench.Params,
		Commits:   80_000,
		KeepTrace: true,
		RegFile:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	dead := res.Report.Dead
	fe := ace.AnalyzeFrontEnd(res.Trace, dead)
	sb := ace.AnalyzeStoreBuffer(res.Trace, dead)
	rf := res.RegFile

	budget := &chip.Budget{
		// A dense future node (the paper's motivation: error rates grow
		// with transistor counts) and vendor-style targets (Bossen,
		// IRPS'02: ~1000-year SDC, 10-25-year DUE MTTFs).
		RawFITPerBit:   0.05,
		SDCTargetYears: 5000,
		DUETargetYears: 25,
		Structures: []chip.Structure{
			{
				Name:        "instruction-queue",
				Bits:        float64(64 * isa.EntryPayloadBits),
				SDCAVF:      res.Report.SDCAVF(),
				FalseDUEAVF: res.Report.FalseDUEAVF(),
			},
			{
				Name:        "front-end-buffer",
				Bits:        float64(res.Trace.FrontEndCap * isa.EntryPayloadBits),
				SDCAVF:      fe.SDCAVF(),
				FalseDUEAVF: fe.FalseDUEAVF(),
			},
			{
				Name:        "store-buffer",
				Bits:        float64(res.Trace.StoreBufferCap * ace.SBEntryBits),
				SDCAVF:      sb.SDCAVF(),
				FalseDUEAVF: sb.FalseDUEAVF(),
			},
			{
				Name:        "register-files",
				Bits:        128*64 + 128*82 + 64,
				SDCAVF:      rf.SDCAVF(),
				FalseDUEAVF: rf.FalseDUEAVF(),
			},
		},
	}

	fmt.Printf("measured on %s (%d commits):\n\n", bench.Name, res.Commits)
	unprotected, err := budget.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("everything unprotected:\n  SDC %s\n  meets %0.f-year SDC target: %v\n\n",
		unprotected.SDC, budget.SDCTargetYears, unprotected.MeetsSDC)

	plan, ev, err := budget.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cheapest protection mix meeting both targets (area cost %.1f%%):\n",
		100*ev.AreaCost)
	for _, line := range plan.Describe() {
		fmt.Println("  " + line)
	}
	fmt.Printf("\nchip totals: SDC %s; DUE %s\n", ev.SDC, ev.DUE)
}
