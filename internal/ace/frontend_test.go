package ace

import (
	"testing"

	"softerror/internal/cache"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

func TestFrontEndAnalysis(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	p := pipeline.MustNew(pipeline.DefaultConfig(), gen, mem)
	tr := p.Run(30000, true)
	dead := AnalyzeDeadness(tr.CommitLog)

	fe := AnalyzeFrontEnd(tr, dead)
	iq := AnalyzeWith(tr, dead)

	if tr.FrontEndCap <= 0 {
		t.Fatal("trace missing front-end capacity")
	}
	if len(tr.FrontEnd) == 0 {
		t.Fatal("no front-end residencies recorded")
	}
	// Classes partition capacity.
	sum := fe.IdleBC + fe.NeverReadBC + fe.ExACEBC + fe.ACEBC + fe.UnACETotalBC()
	if sum != fe.TotalBC() {
		t.Fatalf("front-end classes sum to %d, want %d", sum, fe.TotalBC())
	}
	if fe.SDCAVF() <= 0 || fe.SDCAVF() >= 1 {
		t.Fatalf("front-end SDC AVF = %v out of (0,1)", fe.SDCAVF())
	}
	// The fetch buffer holds instructions only for the front-end latency,
	// while IQ entries pool behind stalls: per-entry exposure is shorter,
	// and the buffer has no replay window, so its Ex-ACE share is zero
	// (delivery evicts immediately).
	if fe.ExACEBC != 0 {
		t.Fatalf("front-end Ex-ACE = %d, want 0 (deliver evicts)", fe.ExACEBC)
	}
	// Both structures see the same workload mix, so both should have
	// wrong-path and neutral un-ACE content.
	if fe.UnACEBC[CatWrongPath] == 0 || fe.UnACEBC[CatNeutral] == 0 {
		t.Fatal("front-end missing un-ACE categories")
	}
	_ = iq
}

func TestFrontEndResidencyBounds(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	cfg := pipeline.DefaultConfig()
	cfg.SquashTrigger = pipeline.TriggerL1Miss
	p := pipeline.MustNew(cfg, gen, mem)
	tr := p.Run(30000, true)

	var occ uint64
	for _, r := range tr.FrontEnd {
		if r.Evict < r.Enq {
			t.Fatalf("front-end residency inverted: %+v", r)
		}
		occ += r.Occupancy()
	}
	if max := tr.Cycles * uint64(tr.FrontEndCap); occ > max {
		t.Fatalf("front-end occupancy %d exceeds capacity %d", occ, max)
	}
	// Squashing must create never-read (flushed) front-end copies.
	flushed := 0
	for _, r := range tr.FrontEnd {
		if r.Squashed {
			flushed++
		}
	}
	if flushed == 0 {
		t.Fatal("squash run produced no flushed front-end residencies")
	}
}
