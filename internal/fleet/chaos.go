package fleet

import (
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// FaultKind enumerates the HTTP-level failures the chaos injector can
// impose on a worker — the wire analogues of the three classic task
// failures par.SetChaos injects in-process (panic, hang, transient error),
// plus the degraded-but-alive case:
//
//   - FaultCrash: the connection is torn down mid-response, as a killed
//     worker process would — the coordinator sees a transport error;
//   - FaultHang: the handler blocks until the client gives up — the
//     per-lease timeout must expire the lease and reassign it;
//   - FaultError: a clean 500 — the retry/backoff path must heal it;
//   - FaultSlow: the response is delayed by Delay — stragglers must not
//     change bytes, only wall-clock (and may trigger work stealing).
type FaultKind uint8

const (
	// FaultNone lets the request through untouched.
	FaultNone FaultKind = iota
	// FaultCrash aborts the connection without a response.
	FaultCrash
	// FaultHang blocks until the client disconnects.
	FaultHang
	// FaultError answers 500 without running the handler.
	FaultError
	// FaultSlow delays the handler by Delay, then proceeds.
	FaultSlow
)

// Fault is one chaos decision.
type Fault struct {
	Kind  FaultKind
	Delay time.Duration // FaultSlow only
}

// ChaosFunc decides the fault for one incoming request on one worker. It
// runs on the worker's serving path, so it must be safe for concurrent use.
type ChaosFunc func(worker string, r *http.Request) Fault

// chaosBox wraps the hook so atomic.Value can hold a nil function.
type chaosBox struct{ h ChaosFunc }

var chaosHook atomic.Value

// SetChaos installs (or, with nil, clears) the process-global chaos hook
// consulted by ChaosMiddleware instances built without an explicit hook. It
// exists for resilience tests only — production daemons must never set it.
// Tests should clear it via t.Cleanup(func() { fleet.SetChaos(nil) }).
func SetChaos(h ChaosFunc) { chaosHook.Store(chaosBox{h: h}) }

// globalChaos returns the installed global hook, or nil.
func globalChaos() ChaosFunc {
	if b, ok := chaosHook.Load().(chaosBox); ok {
		return b.h
	}
	return nil
}

// ChaosMiddleware wraps a worker's handler with the HTTP-level fault
// injector. fn decides per-request faults; a nil fn consults the
// process-global SetChaos hook (so a real daemon wired through the
// middleware can be chaos-driven from a test). worker names this instance
// in fault decisions — invariant checks give each in-process worker its own
// identity and its own deterministic fault plan.
func ChaosMiddleware(worker string, fn ChaosFunc, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hook := fn
		if hook == nil {
			hook = globalChaos()
		}
		if hook != nil {
			switch f := hook(worker, r); f.Kind {
			case FaultCrash:
				// net/http aborts the connection and suppresses the stack
				// trace for exactly this sentinel.
				panic(http.ErrAbortHandler)
			case FaultHang:
				// Block until the client disconnects; the coordinator's
				// lease timeout is what cuts this. The server only watches
				// for the disconnect once the request body is consumed, so
				// drain it first — otherwise the context never fires and
				// the hang outlives the client forever.
				io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				panic(http.ErrAbortHandler)
			case FaultError:
				http.Error(w, "chaos: injected failure", http.StatusInternalServerError)
				return
			case FaultSlow:
				select {
				case <-time.After(f.Delay):
				case <-r.Context().Done():
					panic(http.ErrAbortHandler)
				}
			}
		}
		next.ServeHTTP(w, r)
	})
}
