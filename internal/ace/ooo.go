package ace

import "softerror/internal/pipeline"

// This file analyses the out-of-order family's extra structures. The
// reorder buffer carries the same instruction payload as the IQ, so it
// reuses Report with retire as the read point (no post-read linger: an
// entry leaves the buffer the cycle it retires, so Issue == Evict and the
// Ex-ACE bucket stays empty). The load/store queue is an address+data
// structure like the store buffer, with its own report below; the TAGE
// predictor's exposure integral closes in TAGEReport without per-event
// residencies at all.

// Load/store-queue entry layout, mirroring the store buffer's.
const (
	// LSQDataBits is the width of the queued store data or load result.
	LSQDataBits = 64
	// LSQAddrBits is the width of the queued physical address.
	LSQAddrBits = 44
	// LSQEntryBits is the payload width of one load/store-queue entry.
	LSQEntryBits = LSQDataBits + LSQAddrBits
)

// TAGE entry layout: partial tag, signed prediction counter, usefulness
// counter.
const (
	TAGETagBits    = 12
	TAGECtrBits    = 3
	TAGEUsefulBits = 2
	// TAGEEntryBits is the payload width of one predictor-table entry.
	TAGEEntryBits = TAGETagBits + TAGECtrBits + TAGEUsefulBits
)

// AnalyzeROB integrates a recorded trace's reorder-buffer residencies.
func AnalyzeROB(tr *pipeline.Trace, dead *Deadness) *Report {
	return AnalyzeStructure(tr.ROB, tr.Cycles, tr.ROBCap, dead)
}

// LSQReport is the vulnerability analysis of the load/store queue. Live
// entries are fully ACE until their read (retire or drain). Dynamically
// dead memory operations keep ACE address bits — corrupting them redirects
// the access onto a live location — while their data bits are un-ACE.
// Predicated-false stores are read at retire only to be discarded, so the
// whole entry is un-ACE (a parity flag there is a false DUE).
type LSQReport struct {
	Cycles  uint64
	Entries int

	ACEBC       uint64
	DeadDataBC  uint64
	PredFalseBC uint64
	NeverReadBC uint64
	IdleBC      uint64
}

// AnalyzeLSQ integrates a recorded trace's load/store-queue residencies.
func AnalyzeLSQ(tr *pipeline.Trace, dead *Deadness) *LSQReport {
	r := &LSQReport{Cycles: tr.Cycles, Entries: tr.LSQCap}
	for i := range tr.LSQ {
		res := &tr.LSQ[i]
		occ := res.Occupancy()
		if occ == 0 {
			continue
		}
		if !res.Issued {
			r.addNeverRead(occ)
			continue
		}
		r.add(occ, dead.Of(&res.Inst))
	}
	r.finalize()
	return r
}

// add charges one read (retired or drained) entry's occupancy under its
// deadness category — the shared classification point of the batch and
// streaming paths.
func (r *LSQReport) add(occ uint64, cat Category) {
	switch cat {
	case CatPredFalse:
		r.PredFalseBC += occ * LSQEntryBits
	case CatFDDReg, CatFDDRet, CatTDDReg, CatFDDMem, CatTDDMem:
		r.ACEBC += occ * LSQAddrBits
		r.DeadDataBC += occ * LSQDataBits
	default:
		r.ACEBC += occ * LSQEntryBits
	}
}

// addNeverRead charges an entry removed without a read (squashed, flushed,
// or clipped unretired at run end): benign.
func (r *LSQReport) addNeverRead(occ uint64) {
	r.NeverReadBC += occ * LSQEntryBits
}

// finalize computes the idle remainder.
func (r *LSQReport) finalize() {
	total := r.TotalBC()
	used := r.ACEBC + r.DeadDataBC + r.PredFalseBC + r.NeverReadBC
	if used > total {
		used = total
	}
	r.IdleBC = total - used
}

// TotalBC returns the queue's bit-cycle capacity.
func (r *LSQReport) TotalBC() uint64 {
	return r.Cycles * uint64(r.Entries) * LSQEntryBits
}

// SDCAVF is the unprotected queue's vulnerability.
func (r *LSQReport) SDCAVF() float64 { return r.frac(r.ACEBC) }

// FalseDUEAVF is the share of bit-cycles a parity-protected queue would
// flag although the bits could not affect the outcome: dead data plus
// predicated-false entries read at retire.
func (r *LSQReport) FalseDUEAVF() float64 { return r.frac(r.DeadDataBC + r.PredFalseBC) }

// DUEAVF is the parity-protected queue's total DUE AVF.
func (r *LSQReport) DUEAVF() float64 { return r.SDCAVF() + r.FalseDUEAVF() }

// IdleFraction is the unoccupied share of the queue.
func (r *LSQReport) IdleFraction() float64 { return r.frac(r.IdleBC) }

func (r *LSQReport) frac(bc uint64) float64 {
	total := r.TotalBC()
	if total == 0 {
		return 0
	}
	return float64(bc) / float64(total)
}

// TAGEReport is the closed-form vulnerability analysis of the TAGE
// predictor tables. A strike on predictor state can only change a
// prediction — a performance event, never an architectural one — so its
// SDC AVF is structurally zero. Under parity, every lookup flags any
// strike accumulated in the touched entries since their previous read,
// all of it a false DUE: the pipeline records that exposure integral
// (Stats.TAGEReadCycles) and the report closes the division.
type TAGEReport struct {
	Cycles       uint64
	Tables       int
	TableEntries int
	// ReadCycles is the integral of entry-cycles between consecutive reads
	// of the same entry, summed over every table lookup of the run.
	ReadCycles uint64
}

// AnalyzeTAGE builds the report from a recorded trace.
func AnalyzeTAGE(tr *pipeline.Trace) *TAGEReport {
	return &TAGEReport{
		Cycles:       tr.Cycles,
		Tables:       tr.TAGETables,
		TableEntries: tr.TAGETableEntries,
		ReadCycles:   tr.TAGEReadCycles,
	}
}

// TotalBC returns the tables' bit-cycle capacity.
func (r *TAGEReport) TotalBC() uint64 {
	return r.Cycles * uint64(r.Tables) * uint64(r.TableEntries) * TAGEEntryBits
}

// SDCAVF is zero: predictor state never affects architectural correctness.
func (r *TAGEReport) SDCAVF() float64 { return 0 }

// FalseDUEAVF is the read-exposed share of the tables under parity. Each
// lookup exposes the full entry, so the entry-cycle integral scales by the
// entry width in both numerator and denominator and cancels.
func (r *TAGEReport) FalseDUEAVF() float64 {
	total := r.Cycles * uint64(r.Tables) * uint64(r.TableEntries)
	if total == 0 {
		return 0
	}
	f := float64(r.ReadCycles) / float64(total)
	if f > 1 {
		return 1
	}
	return f
}

// DUEAVF is the parity-protected tables' total DUE AVF — entirely false.
func (r *TAGEReport) DUEAVF() float64 { return r.FalseDUEAVF() }
