package workload

import (
	"fmt"
	"strings"

	"softerror/internal/isa"
)

// FormatProgram renders an instruction body back into the kernel
// mini-language accepted by ParseProgram. Formatting then parsing yields
// the original body (modulo Seq/PC stamps, which the parser does not
// produce), so programs can be exported, edited and replayed.
func FormatProgram(body []isa.Inst) string {
	var b strings.Builder
	for i := range body {
		in := &body[i]
		if in.PredGuard != isa.RegNone {
			mark := ""
			if in.PredFalse {
				mark = "!"
			}
			fmt.Fprintf(&b, "(%s%s) ", in.PredGuard, mark)
		}
		switch in.Class {
		case isa.ClassALU:
			if in.Dest.IsPred() {
				fmt.Fprintf(&b, "cmp %s %s %s", in.Dest, operand(in.Src1), operand(in.Src2))
			} else {
				fmt.Fprintf(&b, "alu %s %s %s", in.Dest, operand(in.Src1), operand(in.Src2))
			}
		case isa.ClassFPU:
			fmt.Fprintf(&b, "fpu %s %s %s", in.Dest, operand(in.Src1), operand(in.Src2))
		case isa.ClassLoad:
			fmt.Fprintf(&b, "load %s %s 0x%x", in.Dest, operand(in.Src1), in.Addr)
		case isa.ClassStore:
			fmt.Fprintf(&b, "store %s %s 0x%x", operand(in.Src1), operand(in.Src2), in.Addr)
		case isa.ClassPrefetch:
			fmt.Fprintf(&b, "prefetch %s 0x%x", in.Src1, in.Addr)
		case isa.ClassNop:
			b.WriteString("nop")
		case isa.ClassHint:
			b.WriteString("hint")
		case isa.ClassBranch:
			fmt.Fprintf(&b, "br %s", in.Src1)
			if in.Taken {
				b.WriteString(" taken")
			}
			if in.Mispred {
				b.WriteString(" mispred")
			}
		case isa.ClassCall:
			b.WriteString("call")
		case isa.ClassReturn:
			b.WriteString("ret")
		default:
			fmt.Fprintf(&b, "# unrepresentable class %v", in.Class)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func operand(r isa.Reg) string {
	if r == isa.RegNone {
		return "-"
	}
	return r.String()
}
