package bpred

import (
	"math"
	"strings"
	"testing"

	"softerror/internal/rng"
)

func TestCounterSaturates(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.train(false)
	}
	if c != 0 {
		t.Fatalf("counter under-saturated to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.train(true)
	}
	if c != 3 {
		t.Fatalf("counter over-saturated to %d", c)
	}
	if !c.taken() {
		t.Fatal("saturated-taken counter predicts not-taken")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	pc := uint64(0x4000)
	// Always-taken branch: after warm-up, never mispredicted.
	for i := 0; i < 4; i++ {
		b.Mispredict(pc, true)
	}
	for i := 0; i < 100; i++ {
		if b.Mispredict(pc, true) {
			t.Fatalf("bimodal mispredicted stable branch at iteration %d", i)
		}
	}
}

func TestBimodalAlternatingWorstCase(t *testing.T) {
	b := NewBimodal(10)
	pc := uint64(0x4000)
	mis := 0
	for i := 0; i < 1000; i++ {
		if b.Mispredict(pc, i%2 == 0) {
			mis++
		}
	}
	// An alternating branch defeats a bimodal predictor badly.
	if mis < 400 {
		t.Fatalf("alternating branch mispredicted only %d/1000 times", mis)
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	g := NewGshare(12, 8)
	pc := uint64(0x8000)
	// A period-4 pattern is capturable with history; after training the
	// misprediction rate must collapse.
	pattern := []bool{true, true, false, true}
	for i := 0; i < 2000; i++ {
		g.Mispredict(pc, pattern[i%len(pattern)])
	}
	mis := 0
	for i := 0; i < 2000; i++ {
		if g.Mispredict(pc, pattern[i%len(pattern)]) {
			mis++
		}
	}
	if rate := float64(mis) / 2000; rate > 0.05 {
		t.Fatalf("gshare failed to learn period-4 pattern: mispredict rate %.3f", rate)
	}
}

func TestGshareBeatsBimodalOnPattern(t *testing.T) {
	b := NewBimodal(12)
	g := NewGshare(12, 8)
	pc := uint64(0x1000)
	pattern := []bool{true, false, false, true, false}
	misB, misG := 0, 0
	for i := 0; i < 5000; i++ {
		taken := pattern[i%len(pattern)]
		if b.Mispredict(pc, taken) {
			misB++
		}
		if g.Mispredict(pc, taken) {
			misG++
		}
	}
	if misG >= misB {
		t.Fatalf("gshare (%d) should beat bimodal (%d) on a periodic pattern", misG, misB)
	}
}

func TestStatisticalRate(t *testing.T) {
	s := rng.New(11, 0)
	m := NewStatistical(0.07, s)
	mis := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if m.Mispredict(uint64(i*4), i%3 == 0) {
			mis++
		}
	}
	rate := float64(mis) / n
	if math.Abs(rate-0.07) > 0.005 {
		t.Fatalf("statistical rate = %.4f, want ~0.07", rate)
	}
}

func TestStatisticalEdgeRates(t *testing.T) {
	s := rng.New(1, 1)
	never := NewStatistical(0, s)
	always := NewStatistical(1, s)
	for i := 0; i < 100; i++ {
		if never.Mispredict(0, true) {
			t.Fatal("rate-0 model mispredicted")
		}
		if !always.Mispredict(0, false) {
			t.Fatal("rate-1 model predicted correctly")
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bimodal0":   func() { NewBimodal(0) },
		"bimodal25":  func() { NewBimodal(25) },
		"gshare-t0":  func() { NewGshare(0, 8) },
		"gshare-h0":  func() { NewGshare(10, 0) },
		"gshare-h33": func() { NewGshare(10, 33) },
		"stat-neg":   func() { NewStatistical(-0.1, rng.New(1, 1)) },
		"stat-over":  func() { NewStatistical(1.1, rng.New(1, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNames(t *testing.T) {
	if !strings.HasPrefix(NewBimodal(4).Name(), "bimodal") {
		t.Error("bimodal name")
	}
	if !strings.HasPrefix(NewGshare(4, 4).Name(), "gshare") {
		t.Error("gshare name")
	}
	if !strings.HasPrefix(NewStatistical(0.5, rng.New(1, 1)).Name(), "statistical") {
		t.Error("statistical name")
	}
}

func BenchmarkGshare(b *testing.B) {
	g := NewGshare(14, 12)
	for i := 0; i < b.N; i++ {
		g.Mispredict(uint64(i)<<2, i&5 == 0)
	}
}
