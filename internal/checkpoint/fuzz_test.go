package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// corruptTailBits is a snapshot whose bitmap claims 8 cells but carries a
// full word of set bits: the geometry is self-consistent, yet 56 of the set
// bits lie beyond N. Loading it must fail — accepting it yields
// CountDone() > Total() and a resume that skips cells it never ran.
func corruptTailBits() []byte {
	return []byte(fmt.Sprintf(
		`{"version":%d,"kind":"fuzz","fingerprint":"fp","done":{"n":8,"words":[18446744073709551615]},"cells":[0,0,0,0,0,0,0,0]}`,
		Version))
}

// validSnapshot round-trips a real File so the corpus always contains one
// loadable snapshot regardless of format version.
func validSnapshot(t interface{ TempDir() string }) []byte {
	dir := t.TempDir()
	path := filepath.Join(dir, "seed.ckpt")
	f := New[int](path, "fuzz", "fp", 8)
	f.Put(3, 42)
	if err := f.Save(); err != nil {
		panic(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	return data
}

// TestLoadRejectsTailBits is the non-fuzz regression pin for the corrupt
// bitmap above (the fuzzer found it; tier-1 keeps it found).
func TestLoadRejectsTailBits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.ckpt")
	if err := os.WriteFile(path, corruptTailBits(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load[int](path, "fuzz", "fp", 8)
	if err == nil {
		t.Fatalf("Load accepted a bitmap with set bits beyond N: CountDone=%d Total=%d",
			f.CountDone(), f.Total())
	}
}

// FuzzCheckpointLoad feeds arbitrary bytes through the snapshot loader: a
// corrupted checkpoint must produce an error, never a panic and never a
// silently-resumed File that violates its own accounting (done cells beyond
// the cell space, counts above the total).
func FuzzCheckpointLoad(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(fmt.Sprintf(`{"version":%d,"kind":"fuzz","fingerprint":"fp"}`, Version)))
	f.Add([]byte(fmt.Sprintf(`{"version":%d,"kind":"fuzz","fingerprint":"fp","done":{"n":8,"words":[0]},"cells":[1,2,3,4,5,6,7,8]}`, Version)))
	f.Add(corruptTailBits())
	f.Add(validSnapshot(f))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := Load[int](path, "fuzz", "fp", 8)
		if err != nil {
			return
		}
		if ck.Total() != 8 {
			t.Fatalf("loaded checkpoint reports %d cells, want 8", ck.Total())
		}
		if n := ck.CountDone(); n < 0 || n > 8 {
			t.Fatalf("loaded checkpoint reports %d done cells of 8", n)
		}
		for i := -1; i <= 8; i++ {
			done := ck.Done(i)
			_, ok := ck.Get(i)
			if done != ok {
				t.Fatalf("cell %d: Done=%v but Get ok=%v", i, done, ok)
			}
			if (i < 0 || i >= 8) && done {
				t.Fatalf("out-of-range cell %d reported done", i)
			}
		}
	})
}
