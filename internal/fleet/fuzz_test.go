package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"net/url"
	"testing"
)

// FuzzLeaseRequest drives arbitrary JSON through the lease admission
// surface exactly as the worker's handler does: strict decode, grid build,
// range validation. Accepted leases must name a bounded grid and an
// ascending, disjoint, in-bounds cell set; every rejection must be one of
// the typed admission errors — never a panic, never an untyped rejection,
// never an admitted malformed range.
func FuzzLeaseRequest(f *testing.F) {
	f.Add([]byte(`{"lease":"lease-000001","grid":{"benches":["gzip-graphic"],"policies":["baseline"]},"ranges":[{"lo":0,"hi":1}]}`))
	f.Add([]byte(`{"lease":"l","attempt":2,"grid":{"benches":["gzip-graphic","mcf"],"policies":["baseline","squash-l1"],"iqsizes":[16,64],"ooo":[false,true],"commits":5000},"ranges":[{"lo":0,"hi":3},{"lo":5,"hi":9}]}`))
	f.Add([]byte(`{"lease":"empty","grid":{"benches":["mcf"],"policies":["baseline"]},"ranges":[]}`))
	f.Add([]byte(`{"lease":"inverted","grid":{"benches":["mcf"],"policies":["baseline"]},"ranges":[{"lo":3,"hi":1}]}`))
	f.Add([]byte(`{"lease":"negative","grid":{"benches":["mcf"],"policies":["baseline"]},"ranges":[{"lo":-1,"hi":1}]}`))
	f.Add([]byte(`{"lease":"beyond","grid":{"benches":["mcf"],"policies":["baseline"]},"ranges":[{"lo":0,"hi":99}]}`))
	f.Add([]byte(`{"lease":"overlap","grid":{"benches":["mcf"],"policies":["baseline"],"iqsizes":[16,32,64]},"ranges":[{"lo":0,"hi":2},{"lo":1,"hi":3}]}`))
	f.Add([]byte(`{"lease":"unsorted","grid":{"benches":["mcf"],"policies":["baseline"],"iqsizes":[16,32,64]},"ranges":[{"lo":2,"hi":3},{"lo":0,"hi":1}]}`))
	f.Add([]byte(`{"lease":"badbench","grid":{"benches":["nope"],"policies":["baseline"]},"ranges":[{"lo":0,"hi":1}]}`))
	f.Add([]byte(`{"lease":"badpolicy","grid":{"benches":["mcf"],"policies":["nope"]},"ranges":[{"lo":0,"hi":1}]}`))
	f.Add([]byte(`{"lease":"badiq","grid":{"benches":["mcf"],"policies":["baseline"],"iqsizes":[0]},"ranges":[{"lo":0,"hi":1}]}`))
	f.Add([]byte(`{"lease":"nogrid","ranges":[{"lo":0,"hi":1}]}`))
	f.Add([]byte(`{"unknown":true}`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req LeaseRequest
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return
		}
		g, err := req.Grid.Build()
		if err != nil {
			if !errors.Is(err, ErrBadGrid) {
				t.Fatalf("grid rejection is not typed ErrBadGrid: %v", err)
			}
			return
		}
		size := g.Size()
		if size < 1 || size > MaxGridCells {
			t.Fatalf("built grid spans %d cells (cap %d)", size, MaxGridCells)
		}
		if err := req.Validate(size); err != nil {
			for _, want := range []error{ErrEmptyLease, ErrInvertedRange, ErrRangeBounds, ErrRangeOverlap} {
				if errors.Is(err, want) {
					return
				}
			}
			t.Fatalf("range rejection is not typed: %v", err)
		}
		cells := req.Cells()
		if len(cells) == 0 {
			t.Fatalf("validated lease flattens to zero cells: %+v", req.Ranges)
		}
		total := 0
		for _, r := range req.Ranges {
			total += r.Count()
		}
		if total != len(cells) {
			t.Fatalf("ranges count %d cells, flattened %d", total, len(cells))
		}
		for k, i := range cells {
			if i < 0 || i >= size {
				t.Fatalf("validated lease names out-of-bounds cell %d (grid %d)", i, size)
			}
			if k > 0 && i <= cells[k-1] {
				t.Fatalf("validated lease cells not strictly ascending: %d after %d", i, cells[k-1])
			}
		}
		// The range compressor must round-trip the flattened set.
		back := LeaseRequest{Lease: req.Lease, Ranges: rangesOf(cells)}
		if err := back.Validate(size); err != nil {
			t.Fatalf("rangesOf(Cells()) does not re-validate: %v", err)
		}
		if got := back.Cells(); len(got) != len(cells) {
			t.Fatalf("rangesOf(Cells()) round-trips %d cells, want %d", len(got), len(cells))
		}
	})
}

// FuzzWorkerRegister drives arbitrary JSON through worker-registration
// admission. Every accepted address must be a bare host:port that embeds
// verbatim into the coordinator's dial URLs; every rejection must wrap
// ErrBadAddr.
func FuzzWorkerRegister(f *testing.F) {
	f.Add([]byte(`{"addr":"127.0.0.1:8081"}`))
	f.Add([]byte(`{"addr":"[::1]:8081"}`))
	f.Add([]byte(`{"addr":"worker-3.fleet.internal:443"}`))
	f.Add([]byte(`{"addr":""}`))
	f.Add([]byte(`{"addr":"localhost"}`))
	f.Add([]byte(`{"addr":"localhost:0"}`))
	f.Add([]byte(`{"addr":"localhost:999999"}`))
	f.Add([]byte(`{"addr":"localhost:abc"}`))
	f.Add([]byte(`{"addr":"http://localhost:8081"}`))
	f.Add([]byte(`{"addr":"host:80/path"}`))
	f.Add([]byte(`{"addr":"host name:80"}`))
	f.Add([]byte("{\"addr\":\"host\\n:80\"}"))
	f.Add([]byte(`{"addr":":8080"}`))
	f.Add([]byte(`{"unknown":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req RegisterRequest
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return
		}
		err := req.Validate()
		if err != nil {
			if !errors.Is(err, ErrBadAddr) {
				t.Fatalf("rejection is not typed ErrBadAddr: %v", err)
			}
			return
		}
		host, port, sperr := net.SplitHostPort(req.Addr)
		if sperr != nil || host == "" || port == "" {
			t.Fatalf("accepted addr %q does not split cleanly: %v", req.Addr, sperr)
		}
		u, uerr := url.Parse("http://" + req.Addr + "/v1/lease")
		if uerr != nil {
			t.Fatalf("accepted addr %q does not embed in a URL: %v", req.Addr, uerr)
		}
		if u.Host != req.Addr {
			t.Fatalf("accepted addr %q parses to URL host %q", req.Addr, u.Host)
		}
		if u.Path != "/v1/lease" {
			t.Fatalf("accepted addr %q smuggles a path: %q", req.Addr, u.Path)
		}
	})
}
