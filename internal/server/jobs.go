package server

import (
	"context"
	"sync"

	"softerror/internal/sweep"
)

// JobState enumerates a job's lifecycle. Every accepted job reaches one of
// the three terminal states — done, failed or interrupted — so a drained
// server never silently drops accepted work.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker slot.
	JobQueued JobState = "queued"
	// JobRunning: occupying a worker slot.
	JobRunning JobState = "running"
	// JobDone: every cell completed; rows and CSV are servable.
	JobDone JobState = "done"
	// JobFailed: the grid returned an error; under the continue policy the
	// unpoisoned rows remain servable with the failures skipped.
	JobFailed JobState = "failed"
	// JobInterrupted: the server drained while the job was accepted or
	// running. Completed cells live in the checkpoint (when checkpointing
	// is configured); resubmitting the identical grid resumes them.
	JobInterrupted JobState = "interrupted"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobInterrupted
}

// Event is one observation on a job's event stream: a state transition or
// a progress step. Seq increases by one per event.
type Event struct {
	Seq   int      `json:"seq"`
	State JobState `json:"state"`
	Done  int      `json:"done"`
	Total int      `json:"total"`
	Error string   `json:"error,omitempty"`
}

// JobStatus is the poll-endpoint snapshot of a job.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Done  int      `json:"done"`
	Total int      `json:"total"`
	Error string   `json:"error,omitempty"`
	// Checkpoint names the snapshot file holding the completed cells of an
	// interrupted job, when the server checkpoints jobs.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// Job is one accepted sweep campaign. The content-addressed identity is
// Fingerprint (the grid's full parameterisation); ID is the serving handle.
type Job struct {
	ID          string
	Fingerprint string
	Total       int

	mu      sync.Mutex
	changed chan struct{} // closed and replaced on every event
	state   JobState
	done    int
	errMsg  string
	ckpt    string
	rows    []sweep.Row
	skip    map[int]bool
	events  []Event
}

func newJob(id, fingerprint string, total int) *Job {
	j := &Job{
		ID:          id,
		Fingerprint: fingerprint,
		Total:       total,
		changed:     make(chan struct{}),
		state:       JobQueued,
	}
	j.record(JobQueued, 0, "")
	return j
}

// record appends an event and wakes every stream listener. Callers must
// not hold j.mu. Terminal states are absorbing: a progress callback from a
// sweep worker that was mid-cell when drain finished the job must not
// resurrect it, and done never regresses below a published count.
func (j *Job) record(state JobState, done int, errMsg string) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	if done < j.done {
		done = j.done
	}
	j.state = state
	j.done = done
	if errMsg != "" {
		j.errMsg = errMsg
	}
	j.events = append(j.events, Event{
		Seq:   len(j.events),
		State: state,
		Done:  done,
		Total: j.Total,
		Error: errMsg,
	})
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
}

// start marks the job running.
func (j *Job) start() { j.record(JobRunning, j.doneCount(), "") }

// progress records one completed cell count (monotonic per the grid's
// progress contract).
func (j *Job) progress(done int) { j.record(JobRunning, done, "") }

// finish moves the job to a terminal state, retaining any salvageable rows
// (with poisoned indices flagged) and the checkpoint path for resume.
func (j *Job) finish(state JobState, rows []sweep.Row, skip map[int]bool, ckpt string, err error) {
	j.mu.Lock()
	j.rows = rows
	j.skip = skip
	j.ckpt = ckpt
	j.mu.Unlock()
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	j.record(state, j.doneCount(), msg)
}

func (j *Job) doneCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// State returns the current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status snapshots the job for the poll endpoint.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:    j.ID,
		State: j.state,
		Done:  j.done,
		Total: j.Total,
		Error: j.errMsg,
	}
	if j.state == JobInterrupted {
		st.Checkpoint = j.ckpt
	}
	return st
}

// Rows returns the job's result rows and poisoned-cell set, valid once the
// job is terminal.
func (j *Job) Rows() ([]sweep.Row, map[int]bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rows, j.skip
}

// next blocks until event i exists (returning it) or ctx is cancelled.
func (j *Job) next(ctx context.Context, i int) (Event, bool) {
	for {
		j.mu.Lock()
		if i < len(j.events) {
			ev := j.events[i]
			j.mu.Unlock()
			return ev, true
		}
		ch := j.changed
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return Event{}, false
		}
	}
}
