package fault

import (
	"sort"
	"sync"

	"softerror/internal/ace"
	"softerror/internal/isa"
	"softerror/internal/pipeline"
)

// StreamRecorder is a pipeline.Sink that retains exactly what injection
// over the instruction queue needs — the IQ residency intervals and the
// committed stream — and nothing else. Campaign drivers tee it alongside a
// streaming ace.Collector so one run feeds both the analytic AVFs and the
// Monte-Carlo injector without materialising a full trace (front-end and
// store-buffer intervals, commit cycles) that injection never samples.
type StreamRecorder struct {
	res []pipeline.Residency
	log []isa.Inst
}

// NewStreamRecorder builds a recorder; commits pre-sizes the commit log
// (pass 0 when unknown).
func NewStreamRecorder(commits uint64) *StreamRecorder {
	rec := &StreamRecorder{}
	rec.reset(commits)
	return rec
}

// recorderPool recycles recorder buffers across campaign runs: the IQ
// residency list and the commit log are the two large per-campaign
// allocations, and figure drivers run one campaign per roster benchmark.
var recorderPool = sync.Pool{New: func() any { return new(StreamRecorder) }}

// GetStreamRecorder is NewStreamRecorder drawing from a process-wide pool.
// Pair with Release once every Injector built over the recorder is done.
func GetStreamRecorder(commits uint64) *StreamRecorder {
	rec := recorderPool.Get().(*StreamRecorder)
	rec.reset(commits)
	return rec
}

// Release returns the recorder's buffers to the pool. The caller must be
// finished with the recorder AND with every Injector built from it — the
// injector aliases the recorded slices, it does not copy them.
func (rec *StreamRecorder) Release() {
	recorderPool.Put(rec)
}

func (rec *StreamRecorder) reset(commits uint64) {
	rec.res = rec.res[:0]
	rec.log = rec.log[:0]
	if commits > 0 && uint64(cap(rec.log)) < commits {
		rec.log = make([]isa.Inst, 0, commits)
	}
}

// OnResidency implements pipeline.Sink.
func (rec *StreamRecorder) OnResidency(r pipeline.Residency) {
	rec.res = append(rec.res, r)
}

// OnFrontEnd implements pipeline.Sink (ignored: IQ injection only).
func (rec *StreamRecorder) OnFrontEnd(pipeline.Residency) {}

// OnStoreBuffer implements pipeline.Sink (ignored: IQ injection only).
func (rec *StreamRecorder) OnStoreBuffer(pipeline.Residency) {}

// OnCommit implements pipeline.Sink.
func (rec *StreamRecorder) OnCommit(in isa.Inst, _, _ uint64) {
	rec.log = append(rec.log, in)
}

// Injector builds the structure injector over the recorded stream, exactly
// as NewInjector would over a recorded trace: same residency order, same
// program-order commit log. cycles and entries come from the run's stats
// and configuration (Stats.Cycles, Config.IQSize).
func (rec *StreamRecorder) Injector(cycles uint64, entries int, dead *ace.Deadness) *Injector {
	sortLogBySeq(rec.log)
	return NewStructureInjector(rec.res, cycles, entries, rec.log, dead)
}

// sortLogBySeq restores program order (ascending unique Seq) to a commit
// log appended in dataflow order by an out-of-order run; an in-order log is
// already sorted and left untouched.
func sortLogBySeq(log []isa.Inst) {
	for i := 1; i < len(log); i++ {
		if log[i].Seq < log[i-1].Seq {
			sort.Slice(log, func(a, b int) bool { return log[a].Seq < log[b].Seq })
			return
		}
	}
}
