package main

import (
	"os"
	"path/filepath"
	"testing"

	"softerror/internal/core"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestParsePolicy(t *testing.T) {
	good := []string{"baseline", "none", "squash-l1", "squash-l0", "throttle-l1", "throttle-l0"}
	for _, s := range good {
		if _, err := core.ParsePolicy(s); err != nil {
			t.Errorf("core.ParsePolicy(%q): %v", s, err)
		}
	}
	if _, err := core.ParsePolicy("bogus"); err == nil {
		t.Error("parsePolicy accepted nonsense")
	}
}

func TestRunDefaultWorkload(t *testing.T) {
	silence(t)
	if err := run([]string{"-commits", "8000"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBenchAndPolicies(t *testing.T) {
	silence(t)
	for _, pol := range []string{"baseline", "squash-l1", "throttle-l0"} {
		args := []string{"-bench", "mcf", "-policy", pol, "-commits", "8000"}
		if err := run(args); err != nil {
			t.Fatalf("policy %s: %v", pol, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-bench", "nosuch"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-policy", "nosuch"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunWithConfigFile(t *testing.T) {
	silence(t)
	path := filepath.Join(t.TempDir(), "exp.json")
	data := []byte(`{"bench": "ammp", "commits": 6000, "pipeline": {"IQSize": 32}}`)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", filepath.Join(t.TempDir(), "none.json")}); err == nil {
		t.Error("missing config accepted")
	}
}
