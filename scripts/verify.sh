#!/bin/sh
# Repository verify recipe, in tiers:
#   1. format + tier-1: gofmt, build + full test suite (the gate every
#      change must pass)
#   2. race tier: the packages that run simulations concurrently, under the
#      race detector (parallel engine, suite memo, sweep grid, fault
#      fan-out, and the server's concurrent-load test)
#   3. chaos tier: the resilience tests — injected panics, hangs and crashes
#      driven through the par chaos hook, checkpoint/resume byte-identity,
#      server overflow shedding and drain/resume — under the race detector,
#      since failure paths exercise the locking the happy path never touches
#   4. audit tier: cmd/seraudit -quick under the race detector — every
#      invariant check (conservation, differential oracles, server
#      properties, and static-bounds: analytic AVF bounds dominating
#      simulated AVF per structure and bit class) over a small seed sweep;
#      plus a short go-native fuzz pass over each harness (skip with
#      SERA_SKIP_FUZZ=1 when iterating)
#   5. smoke tier: the real seratd binary booted on an ephemeral port,
#      health-checked, served a cached eval and SIGINT-drained
#   6. fleet tier: the coordinator/worker suite under the race detector,
#      the fleet-identity invariant (fleet CSV ≡ local CSV under injected
#      worker crash/hang/error/slow chaos) and the real-process fleet
#      smoke: a coordinator plus two worker daemons, one killed -9
#      mid-sweep, byte-identical output demanded anyway. Skip with
#      SERA_SKIP_FLEET=1 when iterating on unrelated code
#   7. bench tier: a short run of the tracked benchmarks (hot loop +
#      batched sweep), gated against the committed BENCH_<date>.json
#      snapshot with scripts/benchdiff.sh — fails loudly past a 10%
#      regression. Skip with SERA_SKIP_BENCH=1 when iterating; widen with
#      BENCH_GATE_PCT on noisy or different machines (snapshots are
#      machine-local baselines)
#
# Opt-outs, for iterating on unrelated code — never for shipping:
#   SERA_SKIP_FUZZ=1   skip the go-native fuzz passes (tier 4)
#   SERA_SKIP_FLEET=1  skip the fleet race/invariant/smoke suite (tier 6)
#   SERA_SKIP_BENCH=1  skip the benchmark regression gate (tier 7)
#   BENCH_GATE_PCT=N   widen tier 7's regression gate to N percent
set -eux

fmtdirs="$(gofmt -l cmd internal examples scripts *.go)"
[ -z "$fmtdirs" ] || { echo "gofmt needed: $fmtdirs" >&2; exit 1; }

go build ./...
go vet ./...
go test ./...
go test -race ./internal/par ./internal/core ./internal/sweep ./internal/fault ./internal/server ./internal/static
go test -race -run 'Chaos|CrashResume|Resilien|Watchdog|Retry|Collect|Partial|Checkpoint|Resume|Overflow|Drain|SingleFlight|Identity' \
	./internal/par ./internal/checkpoint ./internal/fault ./internal/sweep \
	./internal/server ./cmd/sweep ./cmd/sersim ./cmd/repro
go run -race ./cmd/seraudit -quick
if [ -z "${SERA_SKIP_FUZZ:-}" ]; then
	go test -run NONE -fuzz FuzzParseList -fuzztime 10s ./internal/spec
	go test -run NONE -fuzz FuzzParsePolicy -fuzztime 10s ./internal/core
	go test -run NONE -fuzz FuzzCheckpointLoad -fuzztime 10s ./internal/checkpoint
	go test -run NONE -fuzz FuzzEvalRequest -fuzztime 10s ./internal/server
	go test -run NONE -fuzz FuzzSweepRequest -fuzztime 10s ./internal/server
	go test -run NONE -fuzz FuzzJobPath -fuzztime 10s ./internal/server
	go test -run NONE -fuzz FuzzLeaseRequest -fuzztime 10s ./internal/fleet
	go test -run NONE -fuzz FuzzWorkerRegister -fuzztime 10s ./internal/fleet
	go test -run NONE -fuzz FuzzStaticBound -fuzztime 10s ./internal/static
fi
sh scripts/smoke_seratd.sh
if [ -z "${SERA_SKIP_FLEET:-}" ]; then
	go test -race ./internal/fleet
	go run -race ./cmd/seraudit -check fleet-identity -quick
	sh scripts/smoke_fleet.sh
fi
# bench tier: capture the tracked benchmarks and gate against the newest
# committed BENCH_<date>.json snapshot; a deliberate performance change
# ships a refreshed snapshot (scripts/benchdiff.sh -snapshot).
if [ -z "${SERA_SKIP_BENCH:-}" ]; then
	bench_out=$(mktemp)
	trap 'rm -f "$bench_out"' EXIT
	go test -run NONE -bench 'PipelineHotLoop$|BatchedSweep' -benchtime 2x -benchmem . | tee "$bench_out"
	go test -run NONE -bench StaticBound -benchtime 2x -benchmem ./internal/static | tee -a "$bench_out"
	scripts/benchdiff.sh -gate "$bench_out"
fi
