package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"softerror/internal/core"
)

func getBound(t *testing.T, s *Server, target string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", target, nil))
	return w
}

// TestBoundServesWithoutSimulating pins the endpoint's whole contract:
// responses are byte-deterministic, the second identical query is a cache
// hit, the counters move, and — the point of the subsystem — not one cycle
// is simulated however many bounds are served.
func TestBoundServesWithoutSimulating(t *testing.T) {
	s := New(Config{Workers: 2, MaxEvals: 0}) // zero eval slots: bounds must not need one
	defer s.Close()

	before := core.CyclesSimulated()
	const target = "/v1/bound?bench=mcf&policy=squash-l1&iqsize=32&ooo=true&commits=5000"
	w1 := getBound(t, s, target)
	if w1.Code != 200 {
		t.Fatalf("GET %s = %d: %s", target, w1.Code, w1.Body.String())
	}
	if h := w1.Header().Get("X-Cache"); h != "miss" {
		t.Errorf("first query X-Cache = %q, want miss", h)
	}
	w2 := getBound(t, s, target)
	if w2.Code != 200 {
		t.Fatalf("second GET = %d", w2.Code)
	}
	if h := w2.Header().Get("X-Cache"); h != "hit" {
		t.Errorf("second query X-Cache = %q, want hit", h)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatalf("bound responses differ:\n%s\nvs\n%s", w1.Body.String(), w2.Body.String())
	}
	if after := core.CyclesSimulated(); after != before {
		t.Fatalf("bound queries simulated %d cycles, want 0", after-before)
	}
	if got := s.metrics.boundQueries.Value(); got != 2 {
		t.Errorf("bound_queries = %d, want 2", got)
	}
	if got := s.metrics.boundsServed.Value(); got != 2 {
		t.Errorf("bounds_served = %d, want 2", got)
	}
}

// TestBoundResponseShape decodes one response and sanity-checks the bound
// semantics the static package guarantees.
func TestBoundResponseShape(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	w := getBound(t, s, "/v1/bound?bench=gzip-graphic")
	if w.Code != 200 {
		t.Fatalf("GET = %d: %s", w.Code, w.Body.String())
	}
	var resp BoundResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Bench != "gzip-graphic" || resp.Policy != "baseline" ||
		resp.IQSize != 64 || resp.OutOfOrder || resp.Commits != core.DefaultCommits {
		t.Fatalf("defaults not applied: %+v", resp)
	}
	for name, sb := range map[string]BoundStruct{
		"iq": resp.IQ, "front_end": resp.FrontEnd,
		"store_buffer": resp.StoreBuffer, "reg_file": resp.RegFile,
	} {
		for metric, v := range map[string]float64{
			"sdc": sb.SDC, "false_due": sb.FalseDUE, "due": sb.DUE,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s.%s = %v out of [0,1]", name, metric, v)
			}
		}
	}
	if len(resp.IQFields) == 0 {
		t.Error("iq_fields missing")
	}
	if resp.MinCycles == 0 || resp.EstCycles < resp.MinCycles {
		t.Errorf("cost model: min=%d est=%d, want 0 < min <= est",
			resp.MinCycles, resp.EstCycles)
	}
}

// TestBoundBadQueries: every malformed query is a clean 400.
func TestBoundBadQueries(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	for _, target := range []string{
		"/v1/bound",
		"/v1/bound?bench=not-a-benchmark",
		"/v1/bound?bench=mcf&policy=nope",
		"/v1/bound?bench=mcf&iqsize=0",
		"/v1/bound?bench=mcf&iqsize=x",
		"/v1/bound?bench=mcf&ooo=maybe",
		"/v1/bound?bench=mcf&commits=0",
		"/v1/bound?bench=mcf&commits=-5",
	} {
		if w := getBound(t, s, target); w.Code != 400 {
			t.Errorf("GET %s = %d, want 400", target, w.Code)
		}
	}
}
