package invariant

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"softerror/internal/ace"
	"softerror/internal/checkpoint"
	"softerror/internal/core"
	"softerror/internal/pipeline"
	"softerror/internal/rng"
	"softerror/internal/spec"
	"softerror/internal/sweep"
	"softerror/internal/workload"
)

// runTrace runs one pipeline built from (cfg, params) on a warmed default
// hierarchy and returns the materialised trace.
func runTrace(cfg pipeline.Config, params workload.Params, commits uint64) (*pipeline.Trace, error) {
	gen, err := workload.New(params)
	if err != nil {
		return nil, err
	}
	p, err := pipeline.New(cfg, gen, workload.WarmedDefault())
	if err != nil {
		return nil, err
	}
	return p.Run(commits, true), nil
}

// checkTraceDifferential cross-validates the event-horizon fast path
// against the reference single-step interpreter on one random
// configuration: the traces must be identical in every cycle count,
// residency interval and committed instruction.
func checkTraceDifferential(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0xD1FF)
	params := RandomWorkload(s)
	cfg := RandomPipelineConfig(s)
	// Narrow queues on a third of draws: capacity-limited regimes are where
	// a wrong horizon first shows as a shifted eviction.
	if s.Bool(1.0 / 3) {
		cfg.IQSize = 8
		cfg.StoreBufferSize = 2
	}
	ref, fast := cfg, cfg
	ref.SingleStep = true
	fast.SingleStep = false
	want, err := runTrace(ref, params, opt.Commits)
	if err != nil {
		return err
	}
	got, err := runTrace(fast, params, opt.Commits)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(want, got) {
		return fmt.Errorf("fast-forward trace diverges from single-step "+
			"(cycles %d vs %d, commits %d vs %d, squashes %d vs %d, cfg=%+v)",
			want.Cycles, got.Cycles, want.Commits, got.Commits,
			want.Squashes, got.Squashes, cfg)
	}
	return nil
}

// checkStreamBatch runs ONE random simulation with the streaming
// ace.Collector and a TraceRecorder teed off the same event stream, then
// batch-analyses the recorded trace: the two report sets must be exactly
// equal — same integrals, same categories, not statistically close.
func checkStreamBatch(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0x57BA)
	params := RandomWorkload(s)
	cfg := RandomPipelineConfig(s)
	gen, err := workload.New(params)
	if err != nil {
		return err
	}
	pipe, err := pipeline.New(cfg, gen, workload.WarmedDefault())
	if err != nil {
		return err
	}
	ccfg := ace.StructureConfig(cfg, opt.Commits)
	ccfg.FrontEnd = true
	ccfg.StoreBuffer = true
	coll := ace.NewCollector(ccfg)
	rec := pipeline.NewTraceRecorder(cfg, opt.Commits)
	st, err := pipe.RunStream(context.Background(), opt.Commits, pipeline.Tee(coll, rec))
	if err != nil {
		return err
	}
	streamed := coll.Finish(st.Cycles)
	tr := rec.Trace(st)

	batchIQ := ace.Analyze(tr)
	if !reflect.DeepEqual(streamed.IQ, batchIQ) {
		return fmt.Errorf("streamed IQ report diverges from batch analysis (cfg=%+v)", cfg)
	}
	if batchFE := ace.AnalyzeFrontEnd(tr, batchIQ.Dead); !reflect.DeepEqual(streamed.FrontEnd, batchFE) {
		return fmt.Errorf("streamed front-end report diverges from batch analysis (cfg=%+v)", cfg)
	}
	if batchSB := ace.AnalyzeStoreBuffer(tr, batchIQ.Dead); !reflect.DeepEqual(streamed.StoreBuffer, batchSB) {
		return fmt.Errorf("streamed store-buffer report diverges from batch analysis (cfg=%+v)", cfg)
	}
	return nil
}

// randomGridSpec draws a small random sweep grid: the axes vary per seed so
// a seed sweep covers many benchmark/policy/geometry mixes. The draw is
// returned as a constructor so the same grid can be instantiated several
// times (the determinism checks compare independent runs).
func randomGridSpec(s *rng.Stream, opt Options) func() *sweep.Grid {
	all := spec.All()
	benches := make([]spec.Benchmark, 0, 2)
	first := s.Intn(len(all))
	benches = append(benches, all[first])
	if second := s.Intn(len(all)); second != first {
		benches = append(benches, all[second])
	}
	policies := []core.Policy{core.Policy(s.Intn(core.NumPolicies))}
	if extra := core.Policy(s.Intn(core.NumPolicies)); extra != policies[0] {
		policies = append(policies, extra)
	}
	iqSizes := []int{16 << s.Intn(3)} // 16, 32 or 64
	ooo := []bool{s.Bool(0.5)}
	commits := opt.Commits
	return func() *sweep.Grid {
		return &sweep.Grid{
			Benches:    append([]spec.Benchmark(nil), benches...),
			Policies:   append([]core.Policy(nil), policies...),
			IQSizes:    append([]int(nil), iqSizes...),
			OutOfOrder: append([]bool(nil), ooo...),
			Commits:    commits,
		}
	}
}

// gridCSV runs the grid and renders its rows with the shared CSV writer.
func gridCSV(g *sweep.Grid) ([]byte, error) {
	rows, err := g.Run(nil)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, rows); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// checkParallelDeterminism renders one random grid at -j 1 and -j N and
// compares the CSV artefacts byte for byte.
func checkParallelDeterminism(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0x9A12)
	newGrid := randomGridSpec(s, opt)

	serial := newGrid()
	serial.Workers = 1
	serialCSV, err := gridCSV(serial)
	if err != nil {
		return err
	}
	fanned := newGrid()
	fanned.Workers = opt.Workers
	fannedCSV, err := gridCSV(fanned)
	if err != nil {
		return err
	}
	if !bytes.Equal(serialCSV, fannedCSV) {
		return fmt.Errorf("-j 1 and -j %d render different CSV bytes (%d vs %d bytes)",
			opt.Workers, len(serialCSV), len(fannedCSV))
	}
	return nil
}

// checkCheckpointResume cancels a random grid partway through — from its
// own progress callback, as a SIGINT or server drain would — then resumes
// from the checkpoint and demands bytes identical to an uninterrupted run.
// The cancellation point is seed-drawn, so a seed sweep kills the campaign
// at many different depths.
func checkCheckpointResume(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0xC4E5)
	newGrid := randomGridSpec(s, opt)

	straight, err := gridCSV(newGrid())
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "invariant-ckpt-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "grid.ckpt")

	g := newGrid()
	killAt := 1 + s.Intn(g.Size())
	ck, err := checkpoint.Open[sweep.Row](path, "sweep", g.Fingerprint(), g.Size(), false)
	if err != nil {
		return err
	}
	ck.SetInterval(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, runErr := g.RunContext(ctx, ck, func(done, total int) {
		if done >= killAt {
			cancel()
		}
	})
	// killAt == Size() can let the run finish before the cancel lands; both
	// a cancelled and a completed first leg must resume to the same bytes.
	if runErr != nil && ctx.Err() == nil {
		return fmt.Errorf("interrupted leg failed for a non-cancellation reason: %w", runErr)
	}

	resumed := newGrid()
	ck2, err := checkpoint.Open[sweep.Row](path, "sweep", resumed.Fingerprint(), resumed.Size(), true)
	if err != nil {
		return fmt.Errorf("reopening checkpoint: %w", err)
	}
	rows, err := resumed.RunContext(context.Background(), ck2, nil)
	if err != nil {
		return fmt.Errorf("resumed leg: %w", err)
	}
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, rows); err != nil {
		return err
	}
	if !bytes.Equal(straight, buf.Bytes()) {
		return fmt.Errorf("resumed CSV differs from uninterrupted run (killed after %d of %d cells)",
			killAt, g.Size())
	}
	return nil
}
