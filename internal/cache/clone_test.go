package cache

import (
	"reflect"
	"testing"
)

// TestHierarchyCloneIndependence checks a clone carries the parent's exact
// state and then evolves independently.
func TestHierarchyCloneIndependence(t *testing.T) {
	h := MustNewDefault()
	for a := uint64(0); a < 1<<16; a += 64 {
		h.Access(a, a%128 == 0)
	}
	c := h.Clone()

	// Identical state: the same probe sequence must hit the same levels.
	for a := uint64(0); a < 1<<16; a += 4096 {
		if got, want := c.Access(a, false), h.Access(a, false); got != want {
			t.Fatalf("addr %#x: clone serviced at %+v, parent at %+v", a, got, want)
		}
	}
	if c.Level(0).Stats() != h.Level(0).Stats() {
		t.Fatalf("L0 stats diverged under identical accesses: clone %+v parent %+v",
			c.Level(0).Stats(), h.Level(0).Stats())
	}

	// Independence: accesses to the clone must not leak into the parent.
	before := h.Level(0).Stats()
	for a := uint64(1 << 30); a < 1<<30+1<<14; a += 64 {
		c.Access(a, true)
	}
	if h.Level(0).Stats() != before {
		t.Fatal("accessing the clone mutated the parent's L0")
	}
}

// TestCloneIntoMatchesClone pins the arena-reuse property: re-stamping a
// dirty pooled hierarchy from a warm template must produce exactly the
// state a fresh Clone would, every field, every line.
func TestCloneIntoMatchesClone(t *testing.T) {
	warm := MustNewDefault()
	for a := uint64(0); a < 1<<17; a += 64 {
		warm.Access(a, a%192 == 0)
	}

	// Dirty a pooled hierarchy with a completely different access pattern,
	// including an OnEvict hook and prefetcher state the re-stamp must shed.
	pooled := MustNewDefault()
	pooled.NextLinePrefetch = true
	pooled.OnEvict = func(Eviction) {}
	for a := uint64(1 << 28); a < 1<<28+1<<16; a += 32 {
		pooled.Access(a, true)
	}

	want := warm.Clone()
	got := warm.CloneInto(pooled)
	if got != pooled {
		t.Fatal("CloneInto allocated a fresh hierarchy despite a compatible dst")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("CloneInto state differs from Clone")
	}

	// Incompatible destinations fall back to a fresh clone.
	small, err := NewHierarchy(HierarchyConfig{
		Levels:     []Config{{Name: "L0", Size: 4 << 10, LineSize: 64, Assoc: 2, HitLatency: 1}},
		MemLatency: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fb := warm.CloneInto(small); fb == small || !reflect.DeepEqual(fb, want) {
		t.Fatal("CloneInto into an incompatible hierarchy must fall back to Clone")
	}
}

// TestCloneMatchesReplayedWarm checks the property core.Run relies on: a
// clone of a warmed hierarchy is indistinguishable from a fresh hierarchy
// warmed with the same access sequence.
func TestCloneMatchesReplayedWarm(t *testing.T) {
	warm := func(h *Hierarchy) {
		for a := uint64(0); a < 1<<18; a += 64 {
			h.Access(a, false)
		}
	}
	a := MustNewDefault()
	warm(a)
	b := MustNewDefault()
	warm(b)
	c := a.Clone()

	for addr := uint64(0); addr < 1<<18; addr += 512 {
		rb, rc := b.Access(addr, false), c.Access(addr, false)
		if rb != rc {
			t.Fatalf("addr %#x: replayed-warm %+v, clone %+v", addr, rb, rc)
		}
	}
	for lvl := 0; lvl < b.NumLevels(); lvl++ {
		if b.Level(lvl).Stats() != c.Level(lvl).Stats() {
			t.Fatalf("level %d stats: replayed-warm %+v, clone %+v",
				lvl, b.Level(lvl).Stats(), c.Level(lvl).Stats())
		}
	}
}
