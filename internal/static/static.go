// Package static bounds per-structure AVF analytically — from the decoded
// program and a pipeline configuration, never from simulation.
//
// The analyzer walks a committed-instruction prefix of a workload body (the
// same single-decode memo `workload.Shared` feeds the simulator) and
// computes, for every vulnerable structure the simulator reports on,
// an upper bound on its AVF under any execution of that program on the
// given pipeline.Config. Three facts make the bounds sound without a cycle
// model:
//
//  1. Truncated deadness dominates. ace.AnalyzeDeadness over a prefix of
//     the commit log classifies every unresolved value as ACE, so the
//     category a prefix assigns an instruction is always at least as ACE
//     as the category any longer log assigns it. The analyzer may
//     therefore run the simulator's own deadness pass over a conservative
//     prefix and treat the result as a per-instruction ACE-bit ceiling.
//
//  2. Queue residents are a contiguous fetch-stream segment. The IQ and
//     the front-end buffer insert in fetch order and evict from the head
//     only (even out of order: an unissued head blocks eviction), so the
//     committed instructions co-resident in a structure of E entries at
//     any cycle occupy a contiguous window of at most E body positions.
//     The per-cycle ACE charge is then at most the maximum window sum of
//     per-instruction ACE weights, and AVF <= maxWindow / (E * bits).
//
//  3. Occupancy is drain-bounded. A store-buffer entry drains
//     unconditionally within StoreBufferSize + StoreDrainLatency cycles
//     of entering, and a run of N commits lasts at least
//     ceil(N / min(IssueWidth, FetchWidth)) cycles, which bounds the
//     buffer's integrated occupancy.
//
// The front-end bound additionally has to absorb the run-end tail: the
// collector charges a delivered-but-never-committed instruction as fully
// ACE, so positions past the deadness cut are weighted at the full entry
// width. False-DUE bounds need the opposite direction of fact 1 — an
// instruction's un-ACE bits can only grow in a longer log — so they use a
// per-instruction worst case derived from the instruction content alone
// (a store may always turn out dead; a destination-less branch never can).
//
// Query is allocation-free once a (program, cut) pair has been analyzed,
// so a loaded Analyzer prices configurations at memory speed.
package static

import (
	"fmt"

	"softerror/internal/ace"
	"softerror/internal/isa"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// BodySlack is how many decoded instructions past the commit target
// Analyze hands the analyzer. A run of N target commits can touch body
// positions past N: up to IssueWidth-1 overshoot commits, plus (out of
// order) one structure's worth of stalled holes whose commits land
// beyond N, plus the front end running ahead. 512 covers every
// configuration RandomPipelineConfig can draw (IW + 2*(IQSize +
// FrontEndCap) <= 488); larger hand-built configs stay sound because
// Query pads any shortfall pessimistically.
const BodySlack = 512

// StructBounds is one structure's AVF upper bounds. Each field dominates
// the matching simulated quantity: SDC >= Report.SDCAVF(), FalseDUE >=
// Report.FalseDUEAVF(), DUE >= Report.DUEAVF().
type StructBounds struct {
	SDC      float64
	FalseDUE float64
	DUE      float64
}

// Bounds is the full answer for one (program, commit target, config)
// triple.
type Bounds struct {
	// Commits is the commit target the bounds were computed for.
	Commits uint64

	IQ          StructBounds
	FrontEnd    StructBounds
	StoreBuffer StructBounds
	RegFile     StructBounds

	// ROB, LSQ and TAGE bound the out-of-order family's extra structures.
	// All zero for in-order configurations, whose runs produce no such
	// reports.
	ROB  StructBounds
	LSQ  StructBounds
	TAGE StructBounds

	// IQField bounds the instruction queue's per-field ACE bit-cycle
	// fraction: IQField[f] >= Report.FieldACEBC[f] / Report.TotalBC().
	IQField [isa.NumFields]float64

	// MinCycles is a provable lower bound on the simulated cycle count:
	// commits per cycle cannot exceed min(IssueWidth, FetchWidth).
	MinCycles uint64
	// EstCycles is a cost heuristic for pricing and ordering work — an
	// estimate, not a bound: MinCycles plus the program's fetch bubbles
	// and rough per-event stall charges.
	EstCycles uint64
}

// Analyzer computes bounds for one loaded program across many
// configurations. Load allocates; Query is allocation-free once the
// deadness view for the config's cut has been built (the first Query per
// distinct out-of-order cut builds one). Not safe for concurrent use.
type Analyzer struct {
	body    []isa.Inst
	commits int

	// Content-derived state, independent of any deadness cut.
	uMaxPre      []uint64 // prefix sums of worst-case un-ACE bits
	memPos       []int32  // body index of each load/store-queue resident
	memUPre      []uint64 // per-mem-op worst-case un-ACE LSQ bit prefix sums
	controls     uint64   // control-class instructions in the decoded body
	storePos     []int32  // body index of each store that can enter the SB
	definedBits  uint64   // bits of registers the program ever defines
	deadReadBits uint64   // bits of defined registers a dead reader may read
	bubbles      uint64   // sum of FetchBubble over the commit target
	loads        uint64
	mispreds     uint64
	stores       uint64
	hasMispred   bool

	views map[int]*cutView
}

// cutView is the deadness-dependent weight state for one prefix cut.
type cutView struct {
	acePreIQ  []uint64                // IQ ACE-bit prefix sums
	acePreFE  []uint64                // front-end ACE-bit prefix sums
	aceLSQPre []uint64                // LSQ ACE-bit prefix sums, per mem op
	fieldPre  [isa.NumFields][]uint64 // per-field ACE-bit prefix sums
	sbDead    int                     // stores proven dead to memory
}

// NewAnalyzer returns an empty analyzer; call Load before Query.
func NewAnalyzer() *Analyzer {
	return &Analyzer{views: make(map[int]*cutView)}
}

// Analyze is the one-shot convenience path: decode the workload through
// the shared memo, load the commit prefix plus slack, and query the
// config. It fails only when the workload's stream cannot be decoded
// position-addressably (PC-indexed branch predictors).
func Analyze(p workload.Params, commits uint64, cfg pipeline.Config) (Bounds, error) {
	sh, err := workload.NewShared(p)
	if err != nil {
		return Bounds{}, fmt.Errorf("static: %w", err)
	}
	if commits > 1<<40 {
		return Bounds{}, fmt.Errorf("static: commit target %d too large to decode", commits)
	}
	a := NewAnalyzer()
	a.Load(sh.BodyPrefix(int(commits)+BodySlack), commits)
	return a.Query(cfg), nil
}

// Load points the analyzer at a decoded committed-instruction prefix and
// a commit target. body should extend BodySlack instructions past the
// target when available (Analyze arranges this); shorter bodies stay
// sound — Query pads the unknown positions at the worst-case weight.
// The analyzer aliases body; do not mutate it while querying.
func (a *Analyzer) Load(body []isa.Inst, commits uint64) {
	n := int(commits)
	if commits > 1<<40 || n < 0 {
		n = len(body) // absurd target: bound what we can see
	}
	a.body = body
	a.commits = n
	a.views = make(map[int]*cutView)

	k := len(body)
	a.uMaxPre = make([]uint64, k+1)
	a.memPos = a.memPos[:0]
	a.memUPre = append(a.memUPre[:0], 0)
	a.controls = 0
	a.storePos = a.storePos[:0]
	a.definedBits, a.deadReadBits = 0, 0
	a.bubbles, a.loads, a.mispreds, a.stores = 0, 0, 0, 0
	a.hasMispred = false

	var defined, deadRead [isa.NumRegs]bool
	for i := 0; i < k; i++ {
		in := &body[i]
		a.uMaxPre[i+1] = a.uMaxPre[i] + worstUnACE(in)
		if in.Mispred {
			a.hasMispred = true
		}
		if in.Class.IsControl() {
			a.controls++
		}
		if in.Class == isa.ClassLoad || in.Class == isa.ClassStore {
			a.memPos = append(a.memPos, int32(i))
			a.memUPre = append(a.memUPre, a.memUPre[len(a.memUPre)-1]+worstLSQUnACE(in))
		}
		enterSB := in.Class == isa.ClassStore && !in.PredFalse && !in.WrongPath
		if enterSB {
			a.storePos = append(a.storePos, int32(i))
		}
		if i < n {
			a.bubbles += uint64(in.FetchBubble)
			switch {
			case in.Class == isa.ClassLoad && !in.PredFalse && !in.WrongPath:
				a.loads++
			case enterSB:
				a.stores++
			}
			if in.Mispred {
				a.mispreds++
			}
		}
		if in.HasDest() {
			defined[in.Dest] = true
		}
		// A register read can become a dead read only when its reader can
		// receive a dead category: destination writers and stores. Neutral
		// instructions read nothing; predicated-false readers touch only
		// the guard and are never classified dead; destination-less
		// control flow is always ACE.
		if !in.Class.Neutral() && !in.WrongPath &&
			(in.HasDest() || (in.Class == isa.ClassStore && !in.PredFalse)) {
			if in.PredGuard != isa.RegNone {
				deadRead[in.PredGuard] = true
			}
			if !in.PredFalse {
				if in.Src1 != isa.RegNone {
					deadRead[in.Src1] = true
				}
				if in.Src2 != isa.RegNone {
					deadRead[in.Src2] = true
				}
			}
		}
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if defined[r] {
			a.definedBits += regBits(r)
			// The simulator ignores reads of never-defined registers, so
			// only defined registers can accumulate dead-read bit-cycles.
			if deadRead[r] {
				a.deadReadBits += regBits(r)
			}
		}
	}
}

// Query bounds the config's AVF for the loaded program. The returned
// bounds are valid for any simulation of the same program at the loaded
// commit target; degenerate configs (zero or negative sizes) are clamped
// rather than rejected, loosening the bounds instead of failing.
func (a *Analyzer) Query(cfg pipeline.Config) Bounds {
	var b Bounds
	b.Commits = uint64(a.commits)
	if a.commits == 0 {
		return b
	}
	n := a.commits
	k := len(a.body)
	B := uint64(isa.EntryPayloadBits)

	iw := clampDim(cfg.IssueWidth)
	fw := clampDim(cfg.FetchWidth)
	iqSize := clampDim(cfg.IQSize)
	fed := clampDim(cfg.FrontEndDepth + 2)
	feCap := clampDim(fw * fed)
	brl := clampDim(cfg.BranchResolveLatency)
	sbSize := clampDim(cfg.StoreBufferSize)
	sdl := clampDim(cfg.StoreDrainLatency)

	// slack bounds how far past the commit target a run can touch body
	// positions, and symmetrically how close to the target an out-of-order
	// run's uncommitted holes can reach back.
	slack := iw + 2*(iqSize+feCap)
	virt := n + slack - k // worst-case pad when the body is short
	if virt < 0 {
		virt = 0
	}
	cut := n
	if cfg.OutOfOrder {
		cut = n - slack
		if cut < 0 {
			cut = 0
		}
	}
	if cut > k {
		cut = k
	}
	cv := a.view(cut)

	// Unknown instructions past the decoded body could be mispredicted
	// branches; only a fully decoded horizon can rule wrong-path fill out.
	hasMispred := a.hasMispred || virt > 0

	// Instruction queue: fact 2 windows over the ACE-weight arrays.
	iqDen := float64(uint64(iqSize) * B)
	b.IQ.SDC = clamp(float64(windowMax(cv.acePreIQ, iqSize, B, virt)) / iqDen)
	for f := isa.Field(0); f < isa.NumFields; f++ {
		fb := uint64(isa.FieldBits[f])
		w := windowMax(cv.fieldPre[f], iqSize, fb, virt)
		bound := float64(w) / iqDen
		if ceil := float64(fb) / float64(B); bound > ceil {
			bound = ceil // a field can never exceed its own width share
		}
		b.IQField[f] = bound
	}
	// False DUE: content-derived worst-case un-ACE weights for committed
	// instructions, plus wrong-path issue slots. In order, nothing behind
	// an unissued mispredicted branch issues until the branch does; the
	// redirect fires BranchResolveLatency cycles after the branch issues
	// and is processed before that cycle's issue stage, so the shadow
	// holds at most BRL issue cycles — IssueWidth*(BRL+1) keeps one cycle
	// of margin. Out of order the branch itself may stall arbitrarily (a
	// dependent load miss) while wrong-path fill issues freely, so the
	// whole queue is the only cap.
	kWP := 0
	if hasMispred {
		kWP = iqSize
		if !cfg.OutOfOrder {
			if wp := iw * (brl + 1); wp < kWP {
				kWP = wp
			}
		}
	}
	b.IQ.FalseDUE = clamp((float64(windowMax(a.uMaxPre, iqSize, B, virt)) +
		float64(uint64(kWP)*B)) / iqDen)
	b.IQ.DUE = clamp(b.IQ.SDC + b.IQ.FalseDUE)

	// Front end: same windows at the fetch buffer's capacity. Delivered
	// wrong-path chunks charge full width, but in order only one shadow is
	// live at a time and its deliveries are capped by the IQ space it can
	// drain into: the free entries at redirect plus the shadow's issue
	// slots. Out of order the shadow drains the queue indefinitely, so the
	// buffer capacity is the only cap.
	feDen := float64(uint64(feCap) * B)
	b.FrontEnd.SDC = clamp(float64(windowMax(cv.acePreFE, feCap, B, virt)) / feDen)
	kFE := 0
	if hasMispred {
		kFE = feCap
		if !cfg.OutOfOrder {
			if v := iqSize + kWP; v < kFE {
				kFE = v
			}
		}
	}
	b.FrontEnd.FalseDUE = clamp((float64(windowMax(a.uMaxPre, feCap, B, virt)) +
		float64(uint64(kFE)*B)) / feDen)
	b.FrontEnd.DUE = clamp(b.FrontEnd.SDC + b.FrontEnd.FalseDUE)

	// Store buffer: fact 3. Every entry drains within D cycles; dead
	// stores charge only their address bits.
	b.MinCycles = ceilDiv(uint64(n), uint64(min(iw, fw)))
	drain := uint64(sbSize + sdl)
	nStores := len(a.storePos) + virt // unknown tail: every slot a store
	live := nStores - cv.sbDead
	sumW := uint64(live)*ace.SBEntryBits + uint64(cv.sbDead)*ace.SBAddrBits
	sbDen := float64(b.MinCycles * uint64(sbSize) * ace.SBEntryBits)
	b.StoreBuffer.SDC = clamp(float64(drain*sumW) / sbDen)
	sbFalse := clamp(float64(drain*uint64(nStores)*ace.SBDataBits) / sbDen)
	if perCycle := float64(ace.SBDataBits) / float64(ace.SBEntryBits); sbFalse > perCycle {
		sbFalse = perCycle // at most the data share of every occupied entry
	}
	b.StoreBuffer.FalseDUE = sbFalse
	b.StoreBuffer.DUE = clamp(b.StoreBuffer.SDC + b.StoreBuffer.FalseDUE)

	// Register file: a register charges nothing until defined, so the
	// defined width is a cycle-free ceiling; dead reads additionally need
	// a reader that can be classified dead.
	defBits := a.definedBits + uint64(virt)*ace.FPRegBits
	deadBits := a.deadReadBits + uint64(virt)*ace.FPRegBits
	if defBits > regFileCapacityBits {
		defBits = regFileCapacityBits
	}
	if deadBits > regFileCapacityBits {
		deadBits = regFileCapacityBits
	}
	b.RegFile.SDC = clamp(float64(defBits) / float64(regFileCapacityBits))
	b.RegFile.FalseDUE = clamp(float64(deadBits) / float64(regFileCapacityBits))
	b.RegFile.DUE = clamp(b.RegFile.SDC + b.RegFile.FalseDUE)

	// Out-of-order family: reorder buffer, load/store queue and predictor
	// tables. All zero for the in-order family, whose runs produce no such
	// reports.
	if cfg.OutOfOrder {
		nrm := cfg.Normalized()
		robSize := clampDim(nrm.ROBSize)
		lsqSize := clampDim(nrm.LSQSize)

		// Reorder buffer: retire is the read point, unread (squashed,
		// flushed or clipped) entries are benign, and a retired entry
		// carries exactly the IQ's per-instruction weights, so the same
		// prefix arrays window here. Squash victims are refetched through
		// the front end while issued survivors retire past them, so
		// co-resident retirees can spread beyond the buffer size; the
		// in-flight slack pads the window. Wrong-path entries never retire,
		// so no issue-slot term is added to the false-DUE side.
		robWin := robSize + slack
		robDen := float64(uint64(robSize) * B)
		b.ROB.SDC = clamp(float64(windowMax(cv.acePreIQ, robWin, B, virt)) / robDen)
		b.ROB.FalseDUE = clamp(float64(windowMax(a.uMaxPre, robWin, B, virt)) / robDen)
		b.ROB.DUE = clamp(b.ROB.SDC + b.ROB.FalseDUE)

		// Load/store queue: only memory operations occupy entries, so the
		// windows run over the mem-op subsequence with the same slack pad.
		// Wrong-path entries are never read and charge nothing on either
		// side; unknown tail slots are all taken as full-width mem ops.
		lsqWin := lsqSize + slack
		lsqDen := float64(uint64(lsqSize) * ace.LSQEntryBits)
		b.LSQ.SDC = clamp(float64(windowMax(cv.aceLSQPre, lsqWin, ace.LSQEntryBits, virt)) / lsqDen)
		b.LSQ.FalseDUE = clamp(float64(windowMax(a.memUPre, lsqWin, ace.LSQEntryBits, virt)) / lsqDen)
		b.LSQ.DUE = clamp(b.LSQ.SDC + b.LSQ.FalseDUE)

		// TAGE: predictor state never affects architectural correctness, so
		// SDC is structurally zero. Under parity each control-class dispatch
		// performs one lookup whose per-table gap is at most the run length,
		// so ReadCycles <= lookups*Tables*Cycles and the false-DUE AVF is at
		// most lookups/TableEntries. Wrong-path fill and squash refetches
		// re-dispatch controls without a static count, so those
		// configurations take the trivial ceiling.
		b.TAGE.SDC = 0
		if hasMispred || cfg.SquashTrigger != pipeline.TriggerNone {
			b.TAGE.FalseDUE = 1
		} else {
			tb := nrm.TAGETableBits
			if tb < 1 {
				tb = 1
			}
			if tb > 12 {
				tb = 12
			}
			entries := uint64(1) << uint(tb)
			b.TAGE.FalseDUE = clamp(float64(a.controls+uint64(virt)) / float64(entries))
		}
		b.TAGE.DUE = b.TAGE.FalseDUE
	}

	// Pricing heuristic: front-end bubbles plus rough stall charges.
	b.EstCycles = b.MinCycles + a.bubbles +
		2*a.loads + a.mispreds*uint64(brl+fed) +
		a.stores*uint64(sdl)/uint64(sbSize)
	return b
}

// view returns (building on first use) the deadness-dependent weights for
// one cut. The map makes repeat queries against the same cut — every
// in-order config, and out-of-order configs sharing queue shapes —
// allocation-free.
func (a *Analyzer) view(cut int) *cutView {
	if cv, ok := a.views[cut]; ok {
		return cv
	}
	if len(a.views) > 64 {
		a.views = make(map[int]*cutView) // fuzz-shaped config churn: reset
	}
	k := len(a.body)
	cv := &cutView{
		acePreIQ: make([]uint64, k+1),
		acePreFE: make([]uint64, k+1),
	}
	for f := range cv.fieldPre {
		cv.fieldPre[f] = make([]uint64, k+1)
	}
	dead := ace.AnalyzeDeadness(a.body[:cut])
	B := uint64(isa.EntryPayloadBits)
	for i := 0; i < k; i++ {
		in := &a.body[i]
		hasDest := in.Dest != isa.RegNone
		var wIQ, wFE uint64
		var cat ace.Category
		known := i < cut
		if known {
			cat = dead.Of(in)
			wIQ = aceBitsOf(cat, hasDest)
			wFE = wIQ
		} else {
			// Past the cut the category is unresolved. The IQ only charges
			// committed instructions, whose flag-determined categories
			// still pin wrong-path, predicated-false and neutral weights;
			// the front end charges a delivered-never-committed
			// instruction as fully ACE, so it gets no such refinement.
			cat = ace.CatACE
			wIQ = worstIQACE(in)
			wFE = B
		}
		cv.acePreIQ[i+1] = cv.acePreIQ[i] + wIQ
		cv.acePreFE[i+1] = cv.acePreFE[i] + wFE
		for f := isa.Field(0); f < isa.NumFields; f++ {
			var w uint64
			if known {
				if ace.BitACE(cat, f, hasDest) {
					w = uint64(isa.FieldBits[f])
				}
			} else {
				w = worstFieldACE(in, f)
			}
			cv.fieldPre[f][i+1] = cv.fieldPre[f][i] + w
		}
		if known && in.Class == isa.ClassStore && cat.Dead() {
			cv.sbDead++
		}
	}
	// LSQ ACE weights per mem op, mirroring ace.LSQReport.add: live entries
	// charge full width, dead ones only their address bits, predicated-false
	// and wrong-path ones nothing. Flags pin the latter two even past the
	// cut; deadness past the cut stays at the full-width worst case.
	cv.aceLSQPre = make([]uint64, len(a.memPos)+1)
	for j, pos := range a.memPos {
		in := &a.body[pos]
		var w uint64
		switch {
		case in.WrongPath, in.PredFalse:
		case int(pos) < cut && dead.Of(in).Dead():
			w = ace.LSQAddrBits
		default:
			w = ace.LSQEntryBits
		}
		cv.aceLSQPre[j+1] = cv.aceLSQPre[j] + w
	}
	a.views[cut] = cv
	return cv
}

// windowMax returns the maximum sum over any contiguous window of length
// win of the virtual weight sequence (pre's deltas over [0, len(pre)-1),
// then tail copies of tailW). This is the per-cycle charge ceiling of
// fact 2: co-resident committed instructions occupy at most win
// contiguous positions.
func windowMax(pre []uint64, win int, tailW uint64, tail int) uint64 {
	n := len(pre) - 1
	total := n + tail
	if win >= total {
		return pre[n] + uint64(tail)*tailW
	}
	var best uint64
	// Windows starting in the real body (possibly overhanging the tail).
	for s := 0; s <= n && s+win <= total; s++ {
		hi := s + win
		over := 0
		if hi > n {
			over = hi - n
			hi = n
		}
		if sum := pre[hi] - pre[s] + uint64(over)*tailW; sum > best {
			best = sum
		}
	}
	// Any window fully inside the tail.
	if tail >= win {
		if sum := uint64(win) * tailW; sum > best {
			best = sum
		}
	}
	return best
}

// worstUnACE is the largest un-ACE weight an instruction's pre-issue wait
// can carry under any deadness outcome — the direction fact 1 cannot
// cover, pinned by content alone. Mirrors ace.Report.addRead: the
// complement of the smallest possible ACE weight.
func worstUnACE(in *isa.Inst) uint64 {
	B := uint64(isa.EntryPayloadBits)
	switch {
	case in.WrongPath, in.PredFalse:
		return B
	case in.Class.Neutral():
		return B - uint64(isa.FieldBits[isa.FieldOpcode])
	case in.Class == isa.ClassStore:
		return B // a store proven dead keeps no ACE share in the queue
	case in.Dest != isa.RegNone:
		return B - uint64(isa.FieldBits[isa.FieldDest])
	default:
		return 0 // destination-less control flow is always fully ACE
	}
}

// worstLSQUnACE is the largest un-ACE weight a memory operation's
// load/store-queue occupancy can carry under any deadness outcome,
// mirroring ace.LSQReport.add: predicated-false entries are read at retire
// only to be discarded (full width), any other committed mem op may prove
// dead (data bits), and wrong-path entries are never read at all (benign,
// so no DUE either).
func worstLSQUnACE(in *isa.Inst) uint64 {
	switch {
	case in.WrongPath:
		return 0
	case in.PredFalse:
		return ace.LSQEntryBits
	default:
		return ace.LSQDataBits
	}
}

// worstIQACE is the largest ACE weight a committed instruction past the
// deadness cut can carry: full width unless its flags pin the category.
func worstIQACE(in *isa.Inst) uint64 {
	switch {
	case in.WrongPath, in.PredFalse:
		return 0
	case in.Class.Neutral():
		return uint64(isa.FieldBits[isa.FieldOpcode])
	default:
		return uint64(isa.EntryPayloadBits)
	}
}

// worstFieldACE is worstIQACE restricted to one field.
func worstFieldACE(in *isa.Inst, f isa.Field) uint64 {
	switch {
	case in.WrongPath, in.PredFalse:
		return 0
	case in.Class.Neutral():
		if f == isa.FieldOpcode {
			return uint64(isa.FieldBits[f])
		}
		return 0
	default:
		return uint64(isa.FieldBits[f])
	}
}

// aceBitsOf mirrors ace.Report.addRead's per-category ACE bit weights.
func aceBitsOf(cat ace.Category, hasDest bool) uint64 {
	switch {
	case cat == ace.CatACE:
		return uint64(isa.EntryPayloadBits)
	case cat == ace.CatNeutral:
		return uint64(isa.FieldBits[isa.FieldOpcode])
	case cat.Dead():
		if hasDest {
			return uint64(isa.FieldBits[isa.FieldDest])
		}
		return 0
	default: // wrong path, predicated false
		return 0
	}
}

// regFileCapacityBits mirrors the register-file report's denominator.
var regFileCapacityBits = uint64(isa.NumIntRegs)*ace.IntRegBits +
	uint64(isa.NumFPRegs)*ace.FPRegBits +
	uint64(isa.NumPredRegs)*ace.PredRegBits

func regBits(r isa.Reg) uint64 {
	switch {
	case r.IsInt():
		return ace.IntRegBits
	case r.IsFP():
		return ace.FPRegBits
	default:
		return ace.PredRegBits
	}
}

// clampDim sanitizes a config dimension: at least 1 so denominators stay
// positive, capped so fuzzed giants cannot overflow or stall the windows.
func clampDim(v int) int {
	if v < 1 {
		return 1
	}
	if v > 1<<20 {
		return 1 << 20
	}
	return v
}

func clamp(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < 0 || x != x {
		return 0
	}
	return x
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
