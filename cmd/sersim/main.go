// Command sersim runs one benchmark through the simulator and prints the
// full vulnerability profile of its instruction queue: IPC, occupancy
// breakdown, SDC/DUE AVFs with the false-DUE decomposition by category,
// the absolute FIT/MTTF/MITF numbers implied by a raw per-bit error rate,
// and the effect of each π-bit tracking level.
//
// Example:
//
//	sersim -bench mcf -policy squash-l1 -commits 200000 -rawfit 0.001
//
// With -strikes N the run finishes with a Monte-Carlo fault-injection
// campaign on the traced queue (N strikes per protection configuration);
// -checkpoint/-resume snapshot and resume the campaign across interruptions
// with byte-identical tallies.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 partial
// completion (campaign interrupted, checkpoint written).
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"softerror/internal/ace"
	"softerror/internal/checkpoint"
	"softerror/internal/cli"
	"softerror/internal/config"
	"softerror/internal/core"
	"softerror/internal/fault"
	"softerror/internal/isa"
	"softerror/internal/par"
	"softerror/internal/pipeline"
	"softerror/internal/report"
	"softerror/internal/serate"
	"softerror/internal/spec"
	"softerror/internal/tracefile"
	"softerror/internal/workload"
)

func main() {
	cli.Main("sersim", run)
}

func run(args []string) error {
	d := cli.NewDriver("sersim", "sersim [flags]")
	fs := d.FS
	bench := fs.String("bench", "", "benchmark name from the Table-2 roster (default: the generic workload)")
	configPath := fs.String("config", "", "JSON experiment config (see internal/config); -bench/-policy still apply on top")
	policy := fs.String("policy", "baseline", "exposure policy: baseline, squash-l1, squash-l0, throttle-l1, throttle-l0")
	commits := fs.Uint64("commits", core.DefaultCommits, "committed instructions to simulate")
	rawFIT := fs.Float64("rawfit", 0.001, "raw soft-error rate per bit, in FIT")
	freq := fs.Float64("freq", 2.5e9, "clock frequency in Hz (the paper's part: 2.5 GHz)")
	pet := fs.Int("pet", 512, "PET buffer entries")
	saveTrace := fs.String("savetrace", "", "write the full trace to this file (analyse with traceview)")
	strikes := fs.Int("strikes", 0, "also run a fault-injection campaign with this many strikes per configuration (0 = skip)")
	faultSeed := fs.Uint64("faultseed", 1, "fault-injection campaign seed")
	ckPath := fs.String("checkpoint", "", "snapshot the fault campaign to this file; removed on success")
	resume := fs.Bool("resume", false, "resume the fault campaign from an existing -checkpoint snapshot")
	if err := d.Parse(args); err != nil {
		return err
	}
	if *resume && *ckPath == "" {
		return cli.Usagef("-resume requires -checkpoint")
	}
	if *ckPath != "" && *strikes <= 0 {
		return cli.Usagef("-checkpoint requires -strikes")
	}
	ctx, stop := cli.SignalContext()
	defer stop()

	params := workload.Default()
	pcfg := pipeline.DefaultConfig()
	runCommits := *commits
	if *configPath != "" {
		cfg, err := config.Load(*configPath)
		if err != nil {
			return err
		}
		params, pcfg = cfg.Workload, cfg.Pipeline
		if cfg.Commits != 0 {
			runCommits = cfg.Commits
		}
	}
	if *bench != "" {
		b, ok := spec.ByName(*bench)
		if !ok {
			return cli.Usagef("unknown benchmark %q; try one of %v", *bench, spec.Names())
		}
		params = b.Params
	}
	pol, err := core.ParsePolicy(*policy)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	pol.Apply(&pcfg)
	// Stream by default: residencies fold into the AVF integrals as they
	// close and a fault campaign records just what injection samples. Only
	// -savetrace still needs the full trace materialised.
	keepTrace := *saveTrace != ""
	ccfg := core.Config{
		Workload: params, Pipeline: pcfg, Commits: runCommits,
		RegFile: true, FrontEnd: true, StoreBuffer: true, KeepTrace: keepTrace,
	}
	var rec *fault.StreamRecorder
	if *strikes > 0 && !keepTrace {
		rec = fault.NewStreamRecorder(runCommits)
		ccfg.Sink = rec
	}
	res, err := core.RunContext(ctx, ccfg)
	if err != nil {
		return err
	}
	rep := res.Report
	fe, sb := res.FrontEndReport, res.StoreBufferReport

	fmt.Printf("workload %s under %q: %d commits in %d cycles (IPC %.3f)\n",
		res.Name, pol, res.Commits, res.Cycles, res.IPC)
	fmt.Printf("load miss rates: L0 %.1f%%  L1 %.1f%%   squashes %d  refetches %d\n\n",
		100*res.LoadMissRateL0, 100*res.LoadMissRateL1, res.Squashes, res.Refetches)

	occ := report.New("IQ occupancy (fraction of bit-cycles)",
		"class", "fraction")
	occ.AddRow("idle", report.Pct(rep.IdleFraction()))
	occ.AddRow("never-read (squashed/flushed)", report.Pct(rep.NeverReadFraction()))
	occ.AddRow("Ex-ACE", report.Pct(rep.ExACEFraction()))
	occ.AddRow("valid un-ACE (false-DUE source)", report.Pct(rep.FalseDUEAVF()))
	occ.AddRow("ACE", report.Pct(rep.SDCAVF()))
	occ.AddRow("  of which control (Y-branch bound)", report.Pct(rep.YBranchBound()))
	occ.Fprint(os.Stdout)
	fmt.Println()

	cats := report.New("un-ACE composition (bit-cycle fractions)",
		"category", "fraction", "covered by")
	for c := ace.Category(1); c < ace.NumCategories; c++ {
		frac := float64(rep.UnACEBC[c]) / float64(rep.TotalBC())
		cats.AddRow(c.String(), report.Pct(frac), c.Track().String())
	}
	cats.Fprint(os.Stdout)
	fmt.Println()

	fields := report.New("per-field vulnerability (ACE share of each field's bit-cycles)",
		"field", "bits", "ACE share")
	for f := isa.Field(0); f < isa.NumFields; f++ {
		tot := rep.FieldACEBC[f] + rep.FieldUnACEBC[f]
		share := 0.0
		if tot > 0 {
			share = float64(rep.FieldACEBC[f]) / float64(tot)
		}
		fields.AddRow(f.String(), fmt.Sprintf("%d", isa.FieldBits[f]), report.Pct(share))
	}
	fields.Fprint(os.Stdout)
	fmt.Println()

	bits := float64(rep.Entries) * float64(isa.EntryPayloadBits)
	raw := serate.FIT(*rawFIT * bits)
	sdcFIT, dueFIT := serate.Rates([]serate.Device{
		{Name: "iq-unprotected", RawFIT: raw, SDCAVF: rep.SDCAVF()},
		{Name: "iq-parity", RawFIT: raw, DUEAVF: rep.DUEAVF()},
	})
	rates := report.New(fmt.Sprintf("absolute rates at %.4f FIT/bit x %.0f bits", *rawFIT, bits),
		"metric", "value")
	rates.AddRow("unprotected SDC", sdcFIT.String())
	rates.AddRow("parity DUE", dueFIT.String())
	rates.AddRow("SDC MITF", fmt.Sprintf("%.3g instructions",
		serate.MITFFromAVF(res.IPC, *freq, raw, rep.SDCAVF())))
	rates.AddRow("DUE MITF", fmt.Sprintf("%.3g instructions",
		serate.MITFFromAVF(res.IPC, *freq, raw, rep.DUEAVF())))
	rates.Fprint(os.Stdout)
	fmt.Println()

	lvls := report.New(fmt.Sprintf("false-DUE tracking (PET=%d entries)", *pet),
		"deployed through", "false DUE AVF", "total DUE AVF")
	lvls.AddRow("(none)", report.Pct(rep.FalseDUEAVF()), report.Pct(rep.DUEAVF()))
	for _, lvl := range core.TrackingLevels {
		remaining := rep.FalseDUERemaining(lvl, *pet)
		lvls.AddRow(lvl.String(), report.Pct(remaining), report.Pct(rep.TrueDUEAVF()+remaining))
	}
	lvls.Fprint(os.Stdout)
	fmt.Println()

	rf := res.RegFile
	reg := report.New("register-file vulnerability (int + fp + predicate files)",
		"class", "fraction")
	reg.AddRow("ACE (SDC AVF)", report.Pct(rf.SDCAVF()))
	reg.AddRow("dead-read (false-DUE source)", report.Pct(rf.FalseDUEAVF()))
	reg.AddRow("Ex-ACE", report.Pct(rf.ExACEFraction()))
	reg.AddRow("untouched", report.Pct(rf.UntouchedFraction()))
	reg.Fprint(os.Stdout)
	fmt.Println()

	feT := report.New(fmt.Sprintf("front-end fetch buffer (%d instructions)", fe.Entries),
		"class", "fraction")
	feT.AddRow("ACE (SDC AVF)", report.Pct(fe.SDCAVF()))
	feT.AddRow("un-ACE read (false-DUE source)", report.Pct(fe.FalseDUEAVF()))
	feT.AddRow("never-read (flushed)", report.Pct(fe.NeverReadFraction()))
	feT.AddRow("idle", report.Pct(fe.IdleFraction()))
	feT.Fprint(os.Stdout)
	fmt.Println()

	sbT := report.New(fmt.Sprintf("store buffer (%d entries, data+address payload)", sb.Entries),
		"class", "fraction")
	sbT.AddRow("ACE (SDC AVF)", report.Pct(sb.SDCAVF()))
	sbT.AddRow("dead data (false-DUE source)", report.Pct(sb.FalseDUEAVF()))
	sbT.AddRow("idle", report.Pct(sb.IdleFraction()))
	sbT.Fprint(os.Stdout)

	if *strikes > 0 {
		fmt.Println()
		var inj *fault.Injector
		if rec != nil {
			inj = rec.Injector(res.Cycles, rep.Entries, rep.Dead)
		} else {
			inj = fault.NewInjector(res.Trace, rep.Dead)
		}
		if err := faultCampaign(ctx, res, inj, *strikes, *faultSeed, d.Jobs(), *ckPath, *resume); err != nil {
			return err
		}
	}

	if *saveTrace != "" {
		if err := tracefile.Save(*saveTrace, res.Trace); err != nil {
			return err
		}
		fmt.Printf("\ntrace written to %s\n", *saveTrace)
	}
	return nil
}

// faultCampaign runs the Figure-1 protection ladder against the traced run:
// every strike draws its own index-derived RNG stream, so the tallies are
// byte-identical at any worker count and across checkpoint/resume cycles.
func faultCampaign(ctx context.Context, res *core.Result, inj *fault.Injector, strikes int, seed uint64, jobs int, ckPath string, resume bool) error {
	labels, cfgs := core.OutcomeConfigs(strikes, seed)
	camp := &fault.Campaign{
		Injector: inj,
		Configs:  cfgs,
		Opts:     par.Options{Workers: jobs},
	}
	if ckPath != "" {
		fp := checkpoint.Fingerprint("sersim-faults", res.Name, res.Commits, camp.Fingerprint())
		ck, err := checkpoint.Open[fault.Result](ckPath, "sersim-faults", fp, camp.Cells(), resume)
		if err != nil {
			return err
		}
		camp.Checkpoint = ck
	}
	results, err := camp.Run(ctx)
	if err != nil {
		if ck := camp.Checkpoint; ck != nil && errors.Is(err, context.Canceled) {
			return &cli.PartialError{
				Done: ck.CountDone(), Total: ck.Total(), Path: ck.Path(), Err: err,
			}
		}
		return err
	}
	t := report.New(fmt.Sprintf("fault-injection outcomes (%d strikes per configuration, seed %d)", strikes, seed),
		"configuration", "idle", "never-read", "benign", "SDC", "false DUE", "true DUE", "suppressed", "latent")
	for i, r := range results {
		frac := func(o fault.Outcome) string {
			return report.Pct(float64(r.Counts[o]) / float64(r.Strikes))
		}
		t.AddRow(labels[i], frac(fault.OutcomeIdle), frac(fault.OutcomeNeverRead),
			frac(fault.OutcomeBenignUnACE), frac(fault.OutcomeSDC),
			frac(fault.OutcomeFalseDUE), frac(fault.OutcomeTrueDUE),
			frac(fault.OutcomeSuppressed), frac(fault.OutcomeLatent))
	}
	t.Fprint(os.Stdout)
	return camp.Checkpoint.Remove()
}
