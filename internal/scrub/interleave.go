package scrub

import (
	"fmt"

	"softerror/internal/rng"
	"softerror/internal/serate"
)

// Interleave models §2's other multi-bit mitigation: "interleaving cells
// from different entries in the physical layout". A single energetic
// particle can upset a short run of physically adjacent cells; if the
// layout interleaves I protection domains, a run of w adjacent bits
// deposits ⌈w/I⌉ errors into the worst-hit domain, so single-bit
// correction survives any strike with w ≤ I.
type Interleave struct {
	// Factor is the interleave degree I: physically adjacent bits belong
	// to Factor distinct protection words.
	Factor int
	// StrikeWidthProb[w-1] is the probability a particle upsets exactly w
	// adjacent cells; widths beyond the slice have probability zero.
	// Typical technology data concentrates on w = 1 with a fast tail.
	StrikeWidthProb []float64
}

// Validate reports a descriptive error for bad parameters.
func (iv *Interleave) Validate() error {
	if iv.Factor < 1 {
		return fmt.Errorf("scrub: interleave factor %d < 1", iv.Factor)
	}
	if len(iv.StrikeWidthProb) == 0 {
		return fmt.Errorf("scrub: empty strike-width distribution")
	}
	sum := 0.0
	for _, p := range iv.StrikeWidthProb {
		if p < 0 {
			return fmt.Errorf("scrub: negative strike-width probability")
		}
		sum += p
	}
	if sum <= 0 || sum > 1+1e-9 {
		return fmt.Errorf("scrub: strike-width probabilities sum to %v", sum)
	}
	return nil
}

// DefeatProbability returns the probability that one particle strike
// defeats single-bit correction: the probability its width exceeds the
// interleave factor.
func (iv *Interleave) DefeatProbability() (float64, error) {
	if err := iv.Validate(); err != nil {
		return 0, err
	}
	p := 0.0
	for w1, pw := range iv.StrikeWidthProb {
		if w1+1 > iv.Factor {
			p += pw
		}
	}
	return p, nil
}

// DefeatFIT scales a structure's raw strike rate (in FIT) by the defeat
// probability: the residual multi-bit error rate after interleaving.
func (iv *Interleave) DefeatFIT(rawStrikes serate.FIT) (serate.FIT, error) {
	p, err := iv.DefeatProbability()
	if err != nil {
		return 0, err
	}
	return serate.FIT(float64(rawStrikes) * p), nil
}

// SimulateDefeats Monte-Carlo-checks DefeatProbability by drawing strike
// widths and applying the ⌈w/I⌉ rule. Deterministic per seed.
func (iv *Interleave) SimulateDefeats(strikes int, seed uint64) (float64, error) {
	if err := iv.Validate(); err != nil {
		return 0, err
	}
	if strikes <= 0 {
		return 0, fmt.Errorf("scrub: non-positive strike count")
	}
	s := rng.New(seed, 0x171e)
	defeats := 0
	for i := 0; i < strikes; i++ {
		w := 1 + s.Pick(iv.StrikeWidthProb)
		worst := (w + iv.Factor - 1) / iv.Factor // ⌈w/I⌉ errors in one word
		if worst >= 2 {
			defeats++
		}
	}
	return float64(defeats) / float64(strikes), nil
}

// TypicalWidths is a representative strike-width distribution for a
// mid-2000s SRAM process: overwhelmingly single-bit with a geometric tail
// (cf. the multi-bit characterisation literature the paper cites).
func TypicalWidths() []float64 {
	return []float64{0.97, 0.02, 0.007, 0.002, 0.001}
}
