package invariant

import (
	"softerror/internal/pipeline"
	"softerror/internal/rng"
	"softerror/internal/workload"
)

// RandomWorkload draws a valid workload profile from across the parameter
// space, including corners the Table-2 roster never visits: near-total
// dead code, saturated mispredict rates, degenerate cache mixes. The draw
// consumes a fixed number of stream values, so a seed pins the profile.
func RandomWorkload(s *rng.Stream) workload.Params {
	p := workload.Default()
	p.Seed = s.Uint64()
	p.LoadFrac = 0.05 + 0.2*s.Float64()
	p.StoreFrac = 0.02 + 0.1*s.Float64()
	p.FPFrac = 0.15 * s.Float64()
	p.NopFrac = 0.35 * s.Float64()
	p.PrefetchFrac = 0.05 * s.Float64()
	p.MispredictRate = 0.15 * s.Float64()
	p.CallFrac = 0.03 * s.Float64()
	p.PredicatedFrac = 0.3 * s.Float64()
	p.PredFalseProb = s.Float64()
	p.FDDRegFrac = 0.06 * s.Float64()
	p.TDDRegFrac = 0.04 * s.Float64()
	p.FDDMemFrac = 0.03 * s.Float64()
	p.DeadLocalFrac = s.Float64()
	p.MissBurstiness = s.Float64()
	p.L0Frac = 0.9 + 0.09*s.Float64()
	rest := 1 - p.L0Frac
	p.L1Frac = rest * 0.6
	p.L2Frac = rest * 0.3
	p.MemFrac = rest * 0.1
	p.FetchBubbleProb = 0.5 * s.Float64()
	p.FetchBubbleMean = 1 + s.Intn(8)
	p.MeanBlockLen = 3 + s.Intn(15)
	p.MeanCalleeLen = 10 + s.Intn(150)
	p.DepDistance = 1 + s.Intn(12)
	p.LoadUseDistance = s.Intn(25)
	// Independent draws can push the instruction mix past 1 (seraudit's
	// seed sweep found seeds doing exactly that); rescale the mix terms
	// proportionally so every seed yields a valid profile.
	mix := p.LoadFrac + p.StoreFrac + p.FPFrac + p.IOFrac + p.NopFrac +
		p.PrefetchFrac + p.HintFrac + p.BranchFrac + p.CallFrac +
		p.FDDRegFrac + p.TDDRegFrac + p.FDDMemFrac
	if mix > 0.98 {
		k := 0.98 / mix
		p.LoadFrac *= k
		p.StoreFrac *= k
		p.FPFrac *= k
		p.IOFrac *= k
		p.NopFrac *= k
		p.PrefetchFrac *= k
		p.HintFrac *= k
		p.BranchFrac *= k
		p.CallFrac *= k
		p.FDDRegFrac *= k
		p.TDDRegFrac *= k
		p.FDDMemFrac *= k
	}
	return p
}

// RandomPipelineConfig draws a valid machine configuration spanning
// in-order/out-of-order issue, every squash/throttle trigger combination,
// and queue geometries from tiny to generous.
func RandomPipelineConfig(s *rng.Stream) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.FetchWidth = 1 + s.Intn(8)
	cfg.IssueWidth = 1 + s.Intn(8)
	cfg.IQSize = 8 << s.Intn(5) // 8..128
	cfg.FrontEndDepth = 1 + s.Intn(12)
	cfg.BranchResolveLatency = 1 + s.Intn(6)
	cfg.ReplayWindow = s.Intn(10)
	cfg.StoreBufferSize = 2 + s.Intn(30)
	cfg.StoreDrainLatency = 1 + s.Intn(12)
	cfg.RefetchOverlap = s.Intn(cfg.FrontEndDepth + 1)
	cfg.SquashTrigger = pipeline.Trigger(s.Intn(3))
	cfg.ThrottleTrigger = pipeline.Trigger(s.Intn(3))
	cfg.OutOfOrder = s.Bool(0.3)
	// Out-of-order family dimensions, always drawn so every seed consumes a
	// fixed number of stream values (the in-order family ignores them).
	// The TAGE draw stays inside Validate's folded-history word limit
	// (tables*bits <= 48, bits <= 12).
	cfg.ROBSize = 16 << s.Intn(5) // 16..256
	cfg.RetireWidth = 1 + s.Intn(8)
	cfg.LSQSize = 4 << s.Intn(4) // 4..32
	cfg.TAGETables = 1 + s.Intn(5)
	cfg.TAGETableBits = 5 + s.Intn(5)
	return cfg
}
