// Command seratd serves the repository's AVF-evaluation engine over HTTP:
// single evaluations with a content-addressed result cache, sweep-grid
// jobs with admission control and live progress streaming, and
// expvar-backed metrics.
//
//	seratd -addr :8080
//	curl -d '{"experiment":"table1","benches":"gzip" ...}' localhost:8080/v1/eval
//
// On SIGINT/SIGTERM the daemon drains: new work is rejected, accepted
// jobs finish (or, with -checkpoint set, are interrupted and
// checkpointed), then the process exits. No accepted job is dropped.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"softerror/internal/cli"
	"softerror/internal/server"
)

func main() { cli.Main("seratd", run) }

func run(args []string) error {
	d := cli.NewDriver("seratd", "seratd [flags]")
	fs := d.FS
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks one)")
	portFile := fs.String("portfile", "", "write the bound address to this file once listening")
	maxJobs := fs.Int("maxjobs", 2, "sweep jobs running concurrently")
	maxQueue := fs.Int("maxqueue", 8, "accepted sweep jobs allowed to wait for a slot")
	maxEvals := fs.Int("maxevals", 4, "eval computations in flight before shedding with 429")
	cacheMB := fs.Int64("cachemb", 64, "result cache budget in MiB")
	ckDir := fs.String("checkpoint", "", "directory for interrupted-job checkpoints (empty: drain waits for jobs to finish)")
	drainWait := fs.Duration("drainwait", time.Minute, "maximum time to wait for in-flight work at shutdown")
	if err := d.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *ckDir != "" {
		if err := os.MkdirAll(*ckDir, 0o755); err != nil {
			return err
		}
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	srv := server.New(server.Config{
		MaxJobs:       *maxJobs,
		MaxQueue:      *maxQueue,
		MaxEvals:      *maxEvals,
		Workers:       d.Jobs(),
		CacheBytes:    *cacheMB << 20,
		CheckpointDir: *ckDir,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "seratd: listening on %s\n", bound)

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting connections and new work, let accepted work
	// reach a terminal state (finish or checkpoint), then exit.
	fmt.Fprintln(os.Stderr, "seratd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := srv.Drain(dctx)
	hs.Shutdown(dctx)
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintln(os.Stderr, "seratd: drained")
	return nil
}
