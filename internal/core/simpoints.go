package core

import (
	"context"
	"fmt"
	"math"

	"softerror/internal/par"
	"softerror/internal/pipeline"
	"softerror/internal/spec"
)

// SimPointSummary aggregates several SimPoint slices of one benchmark. The
// paper obtained multiple SimPoints per benchmark but presented only the
// first; running several quantifies how sensitive the AVFs are to the
// slice (program phase) chosen.
type SimPointSummary struct {
	Bench  string
	Policy Policy
	N      int

	MeanIPC, StdIPC       float64
	MeanSDCAVF, StdSDCAVF float64
	MeanDUEAVF, StdDUEAVF float64
}

// RunSimPoints simulates n SimPoint slices of one benchmark under a policy.
// Each slice reuses the benchmark's profile with a derived seed, standing
// in for a different region of the program's execution, and runs for
// commits instructions.
func RunSimPoints(b spec.Benchmark, pol Policy, n int, commits uint64) (SimPointSummary, error) {
	if n < 1 {
		return SimPointSummary{}, fmt.Errorf("core: need at least one SimPoint, got %d", n)
	}
	pcfg := pipeline.DefaultConfig()
	pol.Apply(&pcfg)

	sum := SimPointSummary{Bench: b.Name, Policy: pol, N: n}
	// Slices are independent runs with derived seeds; fan them out and
	// aggregate in slice order so the summary stays bit-identical at any
	// worker count.
	type slice struct{ ipc, sdc, due float64 }
	slices, err := par.Map(context.Background(), n, 0,
		func(_ context.Context, k int) (slice, error) {
			params := b.Params
			// Golden-ratio seed stepping keeps slices decorrelated while the
			// first SimPoint reproduces the headline numbers exactly.
			params.Seed = b.Params.Seed + uint64(k)*0x9e3779b97f4a7c15
			r, err := Run(Config{Workload: params, Pipeline: pcfg, Commits: commits})
			if err != nil {
				return slice{}, fmt.Errorf("core: %s simpoint %d: %w", b.Name, k, err)
			}
			return slice{ipc: r.IPC, sdc: r.Report.SDCAVF(), due: r.Report.DUEAVF()}, nil
		})
	if err != nil {
		return SimPointSummary{}, err
	}
	var ipc, sdc, due []float64
	for _, sl := range slices {
		ipc = append(ipc, sl.ipc)
		sdc = append(sdc, sl.sdc)
		due = append(due, sl.due)
	}
	sum.MeanIPC, sum.StdIPC = meanStd(ipc)
	sum.MeanSDCAVF, sum.StdSDCAVF = meanStd(sdc)
	sum.MeanDUEAVF, sum.StdDUEAVF = meanStd(due)
	return sum, nil
}

func meanStd(xs []float64) (mean, std float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / (n - 1))
}
