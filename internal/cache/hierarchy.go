package cache

import "fmt"

// Level indices for the modelled three-level hierarchy. LevelMemory is the
// pseudo-level representing main memory.
const (
	LevelL0 = 0
	LevelL1 = 1
	LevelL2 = 2
	// LevelMemory is returned when an access misses every cache level.
	LevelMemory = 3
)

// LevelName returns a printable name for a hierarchy level index.
func LevelName(level int) string {
	switch level {
	case LevelL0:
		return "L0"
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMemory:
		return "memory"
	default:
		return fmt.Sprintf("level(%d)", level)
	}
}

// HierarchyConfig sizes the full data hierarchy.
type HierarchyConfig struct {
	Levels     []Config
	MemLatency int // cycles for an access that misses every level
}

// DefaultHierarchy returns the paper's hierarchy: 8KB L0 with 2-cycle hits,
// 256KB L1 with 10-cycle hits, 10MB L2 with 25-cycle hits, and a main
// memory latency characteristic of the modelled 2.5 GHz part.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		Levels: []Config{
			{Name: "L0", Size: 8 << 10, LineSize: 64, Assoc: 4, HitLatency: 2, Protection: ProtParity},
			{Name: "L1", Size: 256 << 10, LineSize: 128, Assoc: 8, HitLatency: 10, Protection: ProtParity},
			{Name: "L2", Size: 10 << 20, LineSize: 128, Assoc: 10, HitLatency: 25, Protection: ProtECC},
		},
		MemLatency: 200,
	}
}

// AccessResult reports where an access was serviced.
type AccessResult struct {
	// Level is the hierarchy level that supplied the data: LevelL0..LevelL2
	// or LevelMemory.
	Level int
	// Latency is the cycles until the data is available to consumers.
	Latency int
}

// MissedLevel reports whether the access missed in the given cache level
// (i.e. was serviced further out). This is the squash-trigger predicate:
// MissedLevel(LevelL1) is the paper's "L1 load miss" trigger.
func (r AccessResult) MissedLevel(level int) bool { return r.Level > level }

// Hierarchy composes cache levels with an inclusive fill policy and an
// optional hardware next-line prefetcher. Prefetcher activity is a pure
// hint: a soft error in its command or address stream cannot affect
// correctness, which is why the paper attaches an anti-π bit to it
// (§4.3.2) — mis-prefetches only perturb performance.
type Hierarchy struct {
	levels     []*Cache
	memLatency int

	// OnEvict, if non-nil, observes every line displaced from any level.
	// Used by the π-bit machinery for out-of-scope detection.
	OnEvict func(Eviction)

	// NextLinePrefetch, when enabled, issues a prefetch for the next line
	// after every demand miss beyond the L0 — a minimal hardware
	// prefetcher.
	NextLinePrefetch bool

	memAccesses  uint64
	hwPrefetches uint64
	inHWPrefetch bool
}

// NewHierarchy builds a Hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one level")
	}
	if cfg.MemLatency <= 0 {
		return nil, fmt.Errorf("cache: non-positive memory latency %d", cfg.MemLatency)
	}
	h := &Hierarchy{memLatency: cfg.MemLatency}
	for _, lc := range cfg.Levels {
		c, err := NewCache(lc)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, c)
	}
	return h, nil
}

// MustNewDefault builds the paper's default hierarchy; it panics only on a
// programming error in the defaults.
func MustNewDefault() *Hierarchy {
	h, err := NewHierarchy(DefaultHierarchy())
	if err != nil {
		panic(err)
	}
	return h
}

// Clone returns a deep copy of the hierarchy: every level's lines,
// replacement state and counters. The OnEvict hook is not carried over —
// observers subscribe per instance. Cloning a warmed hierarchy is
// bit-identical to warming a fresh one with the same access sequence, which
// is what lets concurrent simulations share one warm-up.
func (h *Hierarchy) Clone() *Hierarchy {
	c := &Hierarchy{
		memLatency:       h.memLatency,
		NextLinePrefetch: h.NextLinePrefetch,
		memAccesses:      h.memAccesses,
		hwPrefetches:     h.hwPrefetches,
	}
	c.levels = make([]*Cache, len(h.levels))
	for i, lv := range h.levels {
		c.levels[i] = lv.Clone()
	}
	return c
}

// CloneInto is Clone writing into dst's storage when dst has the same
// shape, so a pooled hierarchy can be re-stamped from a warm template
// without reallocating ~capacity bytes of line arrays per simulation. Any
// dst (nil, or a hierarchy of different shape) falls back to a fresh
// Clone. Like Clone, the result carries no OnEvict hook and is
// bit-identical to warming a fresh hierarchy — the cache clone tests pin
// CloneInto against Clone field for field.
func (h *Hierarchy) CloneInto(dst *Hierarchy) *Hierarchy {
	if dst == nil || len(dst.levels) != len(h.levels) {
		return h.Clone()
	}
	dst.memLatency = h.memLatency
	dst.OnEvict = nil
	dst.NextLinePrefetch = h.NextLinePrefetch
	dst.memAccesses = h.memAccesses
	dst.hwPrefetches = h.hwPrefetches
	dst.inHWPrefetch = false
	for i, lv := range h.levels {
		dst.levels[i] = lv.CloneInto(dst.levels[i])
	}
	return dst
}

// NumLevels returns the number of cache levels (excluding memory).
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// Level returns the cache at the given level index.
func (h *Hierarchy) Level(i int) *Cache { return h.levels[i] }

// MemAccesses returns the number of accesses serviced by main memory.
func (h *Hierarchy) MemAccesses() uint64 { return h.memAccesses }

// HWPrefetches returns the number of prefetches the hardware prefetcher
// has issued.
func (h *Hierarchy) HWPrefetches() uint64 { return h.hwPrefetches }

// Access services a data access, probing levels inward-out, filling all
// inner levels on the way back (inclusive). write marks lines dirty.
func (h *Hierarchy) Access(addr uint64, write bool) AccessResult {
	for i, c := range h.levels {
		if c.Access(addr, write) {
			h.fillInner(addr, write, i)
			return AccessResult{Level: i, Latency: c.cfg.HitLatency}
		}
	}
	h.memAccesses++
	h.fillInner(addr, write, len(h.levels))
	h.maybeNextLine(addr)
	return AccessResult{Level: LevelMemory, Latency: h.memLatency}
}

// maybeNextLine issues the hardware prefetcher's next-line hint after a
// demand miss to memory.
func (h *Hierarchy) maybeNextLine(addr uint64) {
	if !h.NextLinePrefetch || h.inHWPrefetch {
		return
	}
	h.inHWPrefetch = true
	line := uint64(h.levels[len(h.levels)-1].Config().LineSize)
	h.Prefetch(addr + line)
	h.hwPrefetches++
	h.inHWPrefetch = false
}

// fillInner allocates addr into every level closer than hitLevel.
func (h *Hierarchy) fillInner(addr uint64, write bool, hitLevel int) {
	for i := hitLevel - 1; i >= 0; i-- {
		ev, evicted := h.levels[i].Fill(addr, write)
		if evicted && h.OnEvict != nil {
			ev.Level = i
			h.OnEvict(ev)
		}
	}
}

// Prefetch warms the hierarchy for addr without counting a demand access at
// the levels that already hold it. Modelling detail: prefetches fill like
// reads.
func (h *Hierarchy) Prefetch(addr uint64) {
	for i, c := range h.levels {
		if found, _, _ := c.Lookup(addr); found {
			h.fillInner(addr, false, i)
			return
		}
	}
	h.fillInner(addr, false, len(h.levels))
}

// SetPi propagates a π-bit write for addr to every π-capable level holding
// the line. It reports whether any level recorded it.
func (h *Hierarchy) SetPi(addr uint64, v bool) bool {
	any := false
	for _, c := range h.levels {
		if c.SetPi(addr, v) {
			any = true
		}
	}
	return any
}

// Pi returns the π bit for addr from the innermost π-capable level holding
// the line.
func (h *Hierarchy) Pi(addr uint64) (pi, ok bool) {
	for _, c := range h.levels {
		if p, found := c.Pi(addr); found {
			return p, true
		}
	}
	return false, false
}
