package workload

import (
	"testing"

	"softerror/internal/cache"
)

// TestWarmedDefaultMatchesManualWarm checks the memoised snapshot is
// bit-identical to warming a fresh default hierarchy in place — the
// property that makes the warm template a pure optimisation.
func TestWarmedDefaultMatchesManualWarm(t *testing.T) {
	manual := cache.MustNewDefault()
	WarmCaches(manual)
	snap := WarmedDefault()

	for lvl := 0; lvl < manual.NumLevels(); lvl++ {
		if manual.Level(lvl).Stats() != snap.Level(lvl).Stats() {
			t.Fatalf("level %d stats: manual %+v, snapshot %+v",
				lvl, manual.Level(lvl).Stats(), snap.Level(lvl).Stats())
		}
	}
	if manual.MemAccesses() != snap.MemAccesses() {
		t.Fatalf("memory accesses: manual %d, snapshot %d",
			manual.MemAccesses(), snap.MemAccesses())
	}
	// The same post-warm probe sequence must be serviced identically.
	for a := uint64(0); a < 1<<20; a += 2048 {
		rm, rs := manual.Access(a, false), snap.Access(a, false)
		if rm != rs {
			t.Fatalf("addr %#x: manual %+v, snapshot %+v", a, rm, rs)
		}
	}
}

// TestWarmedDefaultIsolation checks successive calls return independent
// copies: mutating one snapshot must not perturb the next.
func TestWarmedDefaultIsolation(t *testing.T) {
	a := WarmedDefault()
	for addr := uint64(1 << 40); addr < 1<<40+1<<16; addr += 64 {
		a.Access(addr, true)
	}
	b := WarmedDefault()
	if a.MemAccesses() == b.MemAccesses() {
		t.Fatal("second snapshot shares state with the mutated first")
	}
	manual := cache.MustNewDefault()
	WarmCaches(manual)
	if b.MemAccesses() != manual.MemAccesses() {
		t.Fatalf("snapshot drifted after sibling mutation: %d vs %d",
			b.MemAccesses(), manual.MemAccesses())
	}
}
