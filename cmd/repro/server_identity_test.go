package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"softerror/internal/server"
)

// captureRun runs the repro CLI with args and returns exactly the bytes it
// writes to stdout.
func captureRun(t *testing.T, args ...string) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	outc := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- b
	}()
	runErr := run(args)
	os.Stdout = old
	w.Close()
	out := <-outc
	r.Close()
	if runErr != nil {
		t.Fatalf("run(%v): %v", args, runErr)
	}
	return out
}

// postEval sends one evaluation to the service and returns status, X-Cache
// and body.
func postEval(t *testing.T, s *server.Server, req server.EvalRequest) (int, string, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("POST", "/v1/eval", bytes.NewReader(body)))
	return w.Code, w.Header().Get("X-Cache"), w.Body.Bytes()
}

// TestServerEvalByteIdentity is the service's reproducibility acceptance
// test: for the same parameterisation, POST /v1/eval returns exactly the
// bytes `repro` prints — on the cache miss that computes the result AND on
// the cache hit that replays it. The CLI and the service share one
// rendering path (internal/experiments), and this pins it.
func TestServerEvalByteIdentity(t *testing.T) {
	s := server.New(server.Config{Workers: 2})
	t.Cleanup(s.Close)

	cases := []struct {
		name string
		args []string
		req  server.EvalRequest
	}{
		{
			name: "table1",
			args: []string{"-benches", "gzip-graphic,ammp", "-commits", "8000", "table1"},
			req: server.EvalRequest{
				Experiment: "table1",
				Benches:    []string{"gzip-graphic", "ammp"},
				Commits:    8000,
			},
		},
		{
			name: "table1-csv",
			args: []string{"-csv", "-benches", "gzip-graphic,ammp", "-commits", "8000", "table1"},
			req: server.EvalRequest{
				Experiment: "table1",
				Benches:    []string{"gzip-graphic", "ammp"},
				Commits:    8000,
				CSV:        true,
			},
		},
		{
			name: "breakdown",
			args: []string{"-benches", "gzip-graphic,ammp", "-commits", "8000", "breakdown"},
			req: server.EvalRequest{
				Experiment: "breakdown",
				Benches:    []string{"gzip-graphic", "ammp"},
				Commits:    8000,
			},
		},
		{
			name: "outcomes",
			args: []string{"-benches", "gzip-graphic", "-commits", "8000", "-strikes", "2000", "outcomes"},
			req: server.EvalRequest{
				Experiment: "outcomes",
				Benches:    []string{"gzip-graphic"},
				Commits:    8000,
				Strikes:    2000,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := captureRun(t, tc.args...)
			if len(want) == 0 {
				t.Fatal("CLI produced no output")
			}

			code, xcache, miss := postEval(t, s, tc.req)
			if code != http.StatusOK {
				t.Fatalf("miss: status %d, body %s", code, miss)
			}
			if xcache != "miss" {
				t.Fatalf("first request X-Cache = %q, want miss", xcache)
			}
			if !bytes.Equal(miss, want) {
				t.Errorf("cache-miss body differs from CLI output\nserver:\n%s\nCLI:\n%s", miss, want)
			}

			code, xcache, hit := postEval(t, s, tc.req)
			if code != http.StatusOK {
				t.Fatalf("hit: status %d, body %s", code, hit)
			}
			if xcache != "hit" {
				t.Fatalf("second request X-Cache = %q, want hit", xcache)
			}
			if !bytes.Equal(hit, want) {
				t.Errorf("cache-hit body differs from CLI output")
			}
		})
	}
}
