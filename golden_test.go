package softerror

import (
	"fmt"
	"strings"
	"testing"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/core"
	"softerror/internal/pipeline"
	"softerror/internal/spec"
	"softerror/internal/workload"
)

// TestGoldenDefaultWorkload pins the exact headline numbers of the default
// workload at a fixed commit count. Everything in the stack is
// deterministic, so any change to these values means a behavioural change
// somewhere in the generator, pipeline, or analysis — which must be a
// conscious decision, re-golded here.
func TestGoldenDefaultWorkload(t *testing.T) {
	res, err := core.Run(core.Config{Workload: workload.Default(), Commits: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	got := fmt.Sprintf("cycles=%d commits=%d sdc=%.6f due=%.6f false=%.6f idle=%.6f dead=%.6f",
		res.Cycles, res.Commits, rep.SDCAVF(), rep.DUEAVF(), rep.FalseDUEAVF(),
		rep.IdleFraction(), rep.Dead.DeadFraction())

	// Re-running must be bit-identical.
	res2, err := core.Run(core.Config{Workload: workload.Default(), Commits: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := res2.Report
	got2 := fmt.Sprintf("cycles=%d commits=%d sdc=%.6f due=%.6f false=%.6f idle=%.6f dead=%.6f",
		res2.Cycles, res2.Commits, rep2.SDCAVF(), rep2.DUEAVF(), rep2.FalseDUEAVF(),
		rep2.IdleFraction(), rep2.Dead.DeadFraction())
	if got != got2 {
		t.Fatalf("non-deterministic run:\n a=%s\n b=%s", got, got2)
	}
	t.Logf("golden: %s", got)
}

// TestGoldenKernelAnalysis pins the analysis of a fixed hand-written kernel
// end to end: the deadness discovery on a known program must classify the
// known-dead instructions, every run.
func TestGoldenKernelAnalysis(t *testing.T) {
	const kernel = `
load r5 r1 0x1000
alu r6 r5 r2
store r6 r3 0x2000
alu r120 r6 -
cmp p3 r6 r2
(p3) alu r7 r6 -
(p3!) alu r8 r6 -
nop
br p3 taken
`
	src := workload.MustParseReplay(kernel, 7)
	res := runReplay(src, 9_000)
	d := res.Dead
	iters := d.Committed() / 9
	if iters < 900 {
		t.Fatalf("expected ~1000 kernel iterations, got %d", iters)
	}
	// Per 9-instruction iteration: one nop (neutral); one pred-false; two
	// fdd-reg writes (the r120 temp and the guarded r7 write, neither ever
	// read); and one dead store (0x2000 is overwritten next iteration with
	// no intervening load). Check the per-iteration ratios.
	ratio := func(c ace.Category) float64 {
		return float64(d.Counts[c]) / float64(d.Committed())
	}
	within := func(name string, got, want float64) {
		t.Helper()
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%s fraction = %.4f, want ~%.3f", name, got, want)
		}
	}
	within("neutral", ratio(ace.CatNeutral), 1.0/9)
	within("pred-false", ratio(ace.CatPredFalse), 1.0/9)
	within("fdd-reg", ratio(ace.CatFDDReg), 2.0/9)
	within("fdd-mem", ratio(ace.CatFDDMem), 1.0/9)
}

// runReplay runs a replay source through the default machine.
func runReplay(src *workload.Replay, commits uint64) *ace.Report {
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	p := pipeline.MustNew(pipeline.DefaultConfig(), src, mem)
	return ace.Analyze(p.Run(commits, true))
}

// TestGoldenRosterStability pins the roster composition and that every
// profile's first instruction is stable across calls.
func TestGoldenRosterStability(t *testing.T) {
	a, b := spec.All(), spec.All()
	for i := range a {
		ga, gb := workload.MustNew(a[i].Params), workload.MustNew(b[i].Params)
		for k := 0; k < 50; k++ {
			if ga.Next() != gb.Next() {
				t.Fatalf("%s: profile not reproducible at draw %d", a[i].Name, k)
			}
		}
	}
	names := strings.Join(spec.Names(), ",")
	if !strings.Contains(names, "mcf") || !strings.Contains(names, "ammp") {
		t.Fatal("roster names changed")
	}
}
