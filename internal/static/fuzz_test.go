package static

import (
	"reflect"
	"testing"

	"softerror/internal/isa"
	"softerror/internal/pipeline"
)

// decodeFuzzBody turns arbitrary bytes into an instruction body, 6 bytes
// per instruction, without sanitising the result: out-of-range classes,
// invalid register indices and contradictory flag sets are exactly the
// malformed programs the analyzer must bound without panicking.
func decodeFuzzBody(data []byte) []isa.Inst {
	n := len(data) / 6
	if n > 4096 {
		n = 4096
	}
	body := make([]isa.Inst, n)
	for i := 0; i < n; i++ {
		b := data[i*6 : i*6+6]
		in := &body[i]
		in.Seq = uint64(i)
		in.Class = isa.Class(b[0])
		reg := func(v byte) isa.Reg {
			if v == 0xFF {
				return isa.RegNone
			}
			return isa.Reg(int(v) * isa.NumRegs / 255)
		}
		in.Dest, in.Src1, in.Src2 = reg(b[1]), reg(b[2]), reg(b[3])
		if b[4]&1 != 0 {
			in.PredGuard = reg(b[4] >> 1)
		} else {
			in.PredGuard = isa.RegNone
		}
		in.PredFalse = b[5]&1 != 0
		in.WrongPath = b[5]&2 != 0
		in.Mispred = b[5]&4 != 0
		in.Taken = b[5]&8 != 0
		in.FetchBubble = b[5] >> 4
	}
	return body
}

// FuzzStaticBound drives malformed programs and degenerate configs through
// Load/Query. Whatever the input, the analyzer must not panic, every bound
// must be a fraction in [0, 1], and querying twice must be bit-identical.
func FuzzStaticBound(f *testing.F) {
	f.Add([]byte{}, uint64(0), 0, 0, 0, 0, 0, 0, 0, false)
	f.Add([]byte{3, 0, 1, 2, 0, 0}, uint64(1), 6, 6, 64, 8, 3, 16, 6, false)
	f.Add([]byte{7, 255, 255, 255, 0, 0, 4, 9, 1, 2, 3, 5}, uint64(2), 1, 1, 1, 1, 1, 1, 1, true)
	f.Add([]byte{2, 0, 0, 0, 0, 255, 3, 1, 1, 1, 1, 255}, uint64(1000), -4, 0, 1<<30, -1, 0, 0, -9, true)
	f.Add([]byte{255, 254, 253, 252, 251, 250}, ^uint64(0), 8, 8, 128, 12, 6, 31, 12, false)
	f.Fuzz(func(t *testing.T, data []byte, commits uint64,
		iw, fw, iq, fed, brl, sb, sdl int, ooo bool) {
		body := decodeFuzzBody(data)
		a := NewAnalyzer()
		a.Load(body, commits)
		cfg := pipeline.Config{
			IssueWidth: iw, FetchWidth: fw, IQSize: iq,
			FrontEndDepth: fed, BranchResolveLatency: brl,
			StoreBufferSize: sb, StoreDrainLatency: sdl,
			OutOfOrder: ooo,
		}
		b1 := a.Query(cfg)
		b2 := a.Query(cfg)
		if !reflect.DeepEqual(b1, b2) {
			t.Fatalf("Query not deterministic:\n%+v\n%+v", b1, b2)
		}
		frac := func(name string, v float64) {
			if v < 0 || v > 1 || v != v {
				t.Fatalf("%s = %v out of [0,1] (cfg=%+v, %d insts, commits=%d)",
					name, v, cfg, len(body), commits)
			}
		}
		for _, s := range []struct {
			name string
			b    StructBounds
		}{{"IQ", b1.IQ}, {"FrontEnd", b1.FrontEnd}, {"StoreBuffer", b1.StoreBuffer}, {"RegFile", b1.RegFile}} {
			frac(s.name+".SDC", s.b.SDC)
			frac(s.name+".FalseDUE", s.b.FalseDUE)
			frac(s.name+".DUE", s.b.DUE)
		}
		for _, v := range b1.IQField {
			frac("IQField", v)
		}
	})
}
