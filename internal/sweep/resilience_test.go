package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"softerror/internal/checkpoint"
	"softerror/internal/par"
)

// TestGridCrashResumeByteIdenticalCSV is the acceptance scenario for the
// sweep artefact: a grid killed partway through (chaos-injected panic under
// fail-fast, exactly like a crashing cell), resumed from its checkpoint,
// must emit a CSV byte-identical to an uninterrupted run.
func TestGridCrashResumeByteIdenticalCSV(t *testing.T) {
	newGrid := func() *Grid {
		g := smallGrid(t)
		g.Commits = 3000
		g.Workers = 2
		return g
	}
	straightRows, err := newGrid().Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var straight bytes.Buffer
	if err := WriteCSV(&straight, straightRows); err != nil {
		t.Fatal(err)
	}

	g := newGrid()
	path := filepath.Join(t.TempDir(), "grid.ckpt")
	ck, err := checkpoint.Open[Row](path, "sweep", g.Fingerprint(), g.Size(), false)
	if err != nil {
		t.Fatal(err)
	}
	ck.SetInterval(1)
	par.SetChaos(func(_ context.Context, index, attempt int) error {
		if index >= g.Size()/2 {
			panic(fmt.Sprintf("chaos: simulated crash in cell %d", index))
		}
		return nil
	})
	_, err = g.RunContext(context.Background(), ck, nil)
	par.SetChaos(nil)
	if err == nil {
		t.Fatal("chaos-crashed grid reported success")
	}
	if n := ck.CountDone(); n == 0 || n == g.Size() {
		t.Fatalf("checkpoint holds %d/%d cells; the crash should leave a strict partial", n, g.Size())
	}

	g2 := newGrid()
	ck2, err := checkpoint.Open[Row](path, "sweep", g2.Fingerprint(), g2.Size(), true)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := g2.RunContext(context.Background(), ck2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resumed bytes.Buffer
	if err := WriteCSV(&resumed, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(straight.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed CSV differs from straight-through CSV:\n--- straight\n%s\n--- resumed\n%s",
			straight.String(), resumed.String())
	}
}

// TestGridCollectLosesOnlyPoisonedCell proves panic isolation at the grid
// level: under collect-and-continue a panicking cell costs exactly its own
// row, every other cell completes, and the error names the cell.
func TestGridCollectLosesOnlyPoisonedCell(t *testing.T) {
	g := smallGrid(t)
	g.Commits = 3000
	g.Workers = 2
	g.OnError = par.Collect
	const poisoned = 5
	par.SetChaos(func(_ context.Context, index, attempt int) error {
		if index == poisoned {
			panic("chaos: poisoned cell")
		}
		return nil
	})
	rows, err := g.RunContext(context.Background(), nil, nil)
	par.SetChaos(nil)

	var es par.Errors
	if !errors.As(err, &es) {
		t.Fatalf("err = %v (%T), want par.Errors", err, err)
	}
	if len(es) != 1 || es[0].Index != poisoned || es[0].Stack == nil {
		t.Fatalf("failures = %+v, want exactly index %d with a stack", es, poisoned)
	}
	if len(rows) != g.Size() {
		t.Fatalf("partial rows = %d, want full slice of %d", len(rows), g.Size())
	}
	for i, r := range rows {
		if i == poisoned {
			if r.IPC != 0 {
				t.Errorf("poisoned cell %d has a row: %+v", i, r)
			}
			continue
		}
		if r.IPC <= 0 {
			t.Errorf("cell %d lost to someone else's panic: %+v", i, r)
		}
	}

	var out bytes.Buffer
	skip := map[int]bool{poisoned: true}
	if err := WriteCSVSkipping(&out, rows, skip); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(out.Bytes(), []byte("\n")); got != g.Size() {
		t.Errorf("skipping CSV has %d lines, want header + %d rows", got, g.Size()-1)
	}
}

// TestGridResumeRejectsChangedGrid pins the fingerprint guard: a checkpoint
// written by one grid must not silently resume a differently shaped one.
func TestGridResumeRejectsChangedGrid(t *testing.T) {
	g := smallGrid(t)
	path := filepath.Join(t.TempDir(), "grid.ckpt")
	ck, err := checkpoint.Open[Row](path, "sweep", g.Fingerprint(), g.Size(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(); err != nil {
		t.Fatal(err)
	}
	changed := smallGrid(t)
	changed.IQSizes = []int{16, 64}
	if _, err := checkpoint.Open[Row](path, "sweep", changed.Fingerprint(), changed.Size(), true); err == nil {
		t.Fatal("checkpoint of a different grid accepted for resume")
	}
}
