#!/bin/sh
# Repository verify recipe, in tiers:
#   1. tier-1: build + full test suite (the gate every change must pass)
#   2. race tier: the packages that run simulations concurrently, under the
#      race detector (parallel engine, suite memo, sweep grid, fault fan-out)
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/par ./internal/core ./internal/sweep ./internal/fault
