// Package core is the library façade: it wires a synthetic workload, the
// cache hierarchy, the pipeline, the ACE analysis and the fault-injection
// machinery into single-call experiments, and implements the paper's
// evaluation drivers (Table 1, Figures 1-4, the §4.1 occupancy breakdown,
// and the fetch-throttling ablation).
package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/pipeline"
	"softerror/internal/workload"
)

// Policy selects the exposure-reduction configuration under study — the
// rows of the paper's Table 1, plus the fetch-throttling action studied in
// §3.1.
type Policy uint8

const (
	// PolicyBaseline runs without exposure reduction.
	PolicyBaseline Policy = iota
	// PolicySquashL1 squashes the IQ on loads that miss the L1 cache.
	PolicySquashL1
	// PolicySquashL0 squashes the IQ on loads that miss the L0 cache.
	PolicySquashL0
	// PolicyThrottleL1 stalls fetch (no squash) on L1 misses.
	PolicyThrottleL1
	// PolicyThrottleL0 stalls fetch (no squash) on L0 misses.
	PolicyThrottleL0

	// NumPolicies is the number of policies.
	NumPolicies = iota
)

var policyNames = [NumPolicies]string{
	"no squashing", "squash on L1 load misses", "squash on L0 load misses",
	"throttle on L1 load misses", "throttle on L0 load misses",
}

// String names the policy as in Table 1.
func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

var policyFlags = [NumPolicies]string{
	"baseline", "squash-l1", "squash-l0", "throttle-l1", "throttle-l0",
}

// Flag returns the policy's canonical flag/API vocabulary — the inverse of
// ParsePolicy, so ParsePolicy(p.Flag()) == p for every valid policy.
func (p Policy) Flag() string {
	if int(p) < len(policyFlags) {
		return policyFlags[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy resolves the flag/API vocabulary shared by cmd/sweep,
// cmd/sersim and the evaluation service to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "baseline", "none":
		return PolicyBaseline, nil
	case "squash-l1":
		return PolicySquashL1, nil
	case "squash-l0":
		return PolicySquashL0, nil
	case "throttle-l1":
		return PolicyThrottleL1, nil
	case "throttle-l0":
		return PolicyThrottleL0, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (known: baseline, squash-l1, squash-l0, throttle-l1, throttle-l0)", s)
	}
}

// Apply configures a pipeline for the policy.
func (p Policy) Apply(cfg *pipeline.Config) {
	cfg.SquashTrigger = pipeline.TriggerNone
	cfg.ThrottleTrigger = pipeline.TriggerNone
	switch p {
	case PolicySquashL1:
		cfg.SquashTrigger = pipeline.TriggerL1Miss
	case PolicySquashL0:
		cfg.SquashTrigger = pipeline.TriggerL0Miss
	case PolicyThrottleL1:
		cfg.ThrottleTrigger = pipeline.TriggerL1Miss
	case PolicyThrottleL0:
		cfg.ThrottleTrigger = pipeline.TriggerL0Miss
	}
}

// Config parameterises one simulation.
type Config struct {
	// Workload is the synthetic program profile.
	Workload workload.Params
	// Pipeline is the core configuration; zero value means
	// pipeline.DefaultConfig().
	Pipeline pipeline.Config
	// Commits is how many instructions to commit (default 100,000 —
	// one thousandth of the paper's SimPoint length, enough for the AVF
	// integrals to stabilise on a laptop-scale run).
	Commits uint64
	// SkipWarm skips pre-warming the cache hierarchy. The paper measures
	// slices after skipping billions of instructions, so warm caches are
	// the faithful default.
	SkipWarm bool
	// KeepTrace retains the full pipeline trace (residencies and commit
	// log) on the Result, as needed for fault-injection campaigns. Off by
	// default: without it the run streams residencies straight into the
	// AVF integrals and never materialises a trace.
	KeepTrace bool
	// RegFile additionally computes the architectural register files'
	// vulnerability report (the paper's closing "other structures"
	// extension).
	RegFile bool
	// FrontEnd and StoreBuffer additionally compute the fetch buffer's and
	// store buffer's vulnerability reports (§4.2's front-end structures and
	// the conclusion's "other structures").
	FrontEnd    bool
	StoreBuffer bool
	// Sink, when non-nil, is teed into the pipeline's event stream on the
	// streaming path (KeepTrace false) — e.g. a fault.StreamRecorder that
	// retains just the intervals an injection campaign samples.
	Sink pipeline.Sink
}

// DefaultCommits is the default per-run commit count.
const DefaultCommits = 100_000

// simCycles accumulates every cycle simulated by this process, across all
// workers and drivers; the evaluation service reads it to report a
// simulated-Mcycles/s throughput gauge.
var simCycles atomic.Uint64

// CyclesSimulated returns the total number of cycles simulated by this
// process so far. Safe for concurrent use.
func CyclesSimulated() uint64 { return simCycles.Load() }

// Result is the distilled outcome of one simulation.
type Result struct {
	// Name echoes the workload name.
	Name string
	// IPC is committed instructions per cycle.
	IPC float64
	// Report is the integrated ACE/AVF analysis.
	Report *ace.Report
	// Cycles, Commits, Squashes, Refetches and ThrottleEvents summarise
	// the run.
	Cycles         uint64
	Commits        uint64
	Squashes       uint64
	Refetches      uint64
	ThrottleEvents uint64
	// LoadMissRateL0 and LoadMissRateL1 are the realised load miss rates
	// at the squash-trigger levels.
	LoadMissRateL0 float64
	LoadMissRateL1 float64
	// Trace is retained only when Config.KeepTrace was set.
	Trace *pipeline.Trace
	// RegFile is the register-file vulnerability report, present only
	// when Config.RegFile was set.
	RegFile *ace.RegFileReport
	// FrontEndReport and StoreBufferReport are present only when
	// Config.FrontEnd / Config.StoreBuffer were set.
	FrontEndReport    *ace.Report
	StoreBufferReport *ace.SBReport
	// ROBReport, LSQReport and TAGEReport are the out-of-order family's
	// structure analyses, present only when Pipeline.OutOfOrder was set.
	ROBReport  *ace.Report
	LSQReport  *ace.LSQReport
	TAGEReport *ace.TAGEReport
}

// tageReport closes the TAGE exposure integral carried by an out-of-order
// run's stats; nil for the in-order family.
func tageReport(cfg pipeline.Config, st pipeline.Stats) *ace.TAGEReport {
	if !cfg.OutOfOrder {
		return nil
	}
	n := cfg.Normalized()
	return &ace.TAGEReport{
		Cycles:       st.Cycles,
		Tables:       n.TAGETables,
		TableEntries: 1 << n.TAGETableBits,
		ReadCycles:   st.TAGEReadCycles,
	}
}

// Run executes one simulation end to end: build the generator, warm the
// hierarchy, run the pipeline, and integrate the AVFs.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation threaded through the
// pipeline's cycle loop, so a SIGINT or watchdog aborts within one
// simulation rather than one campaign.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Commits == 0 {
		cfg.Commits = DefaultCommits
	}
	zero := pipeline.Config{}
	if cfg.Pipeline == zero {
		cfg.Pipeline = pipeline.DefaultConfig()
	}
	gen, err := workload.New(cfg.Workload)
	if err != nil {
		return nil, err
	}
	// Warm runs clone a process-wide warmed snapshot instead of redoing the
	// (workload-independent) warm sweep; the clone is bit-identical to a
	// freshly warmed hierarchy, so results are unchanged — only cheaper.
	var mem *cache.Hierarchy
	if cfg.SkipWarm {
		var err error
		mem, err = cache.NewHierarchy(cache.DefaultHierarchy())
		if err != nil {
			return nil, err
		}
	} else {
		mem = workload.WarmedDefault()
	}
	pipe, err := pipeline.New(cfg.Pipeline, gen, mem)
	if err != nil {
		return nil, err
	}
	if cfg.KeepTrace {
		tr, err := pipe.RunContext(ctx, cfg.Commits, true)
		if err != nil {
			return nil, err
		}
		rep := ace.Analyze(tr)
		res := &Result{
			Name:           cfg.Workload.Name,
			IPC:            tr.IPC(),
			Report:         rep,
			Cycles:         tr.Cycles,
			Commits:        tr.Commits,
			Squashes:       tr.Squashes,
			Refetches:      tr.Refetches,
			ThrottleEvents: tr.ThrottleEvents,
			LoadMissRateL0: tr.LoadMissRate(cache.LevelL0),
			LoadMissRateL1: tr.LoadMissRate(cache.LevelL1),
			Trace:          tr,
		}
		if cfg.RegFile {
			res.RegFile = ace.AnalyzeRegFile(tr, rep.Dead)
		}
		if cfg.FrontEnd {
			res.FrontEndReport = ace.AnalyzeFrontEnd(tr, rep.Dead)
		}
		if cfg.StoreBuffer {
			res.StoreBufferReport = ace.AnalyzeStoreBuffer(tr, rep.Dead)
		}
		if cfg.Pipeline.OutOfOrder {
			res.ROBReport = ace.AnalyzeROB(tr, rep.Dead)
			res.LSQReport = ace.AnalyzeLSQ(tr, rep.Dead)
			res.TAGEReport = ace.AnalyzeTAGE(tr)
		}
		simCycles.Add(res.Cycles)
		return res, nil
	}
	// Streaming path: residencies fold into the AVF integrals as their
	// intervals close; no trace is ever materialised. The resulting reports
	// are exactly equal to the batch path's (pinned by the ace stream
	// tests), just cheaper.
	ccfg := ace.StructureConfig(cfg.Pipeline, cfg.Commits)
	ccfg.FrontEnd, ccfg.StoreBuffer, ccfg.RegFile = cfg.FrontEnd, cfg.StoreBuffer, cfg.RegFile
	coll := ace.NewCollector(ccfg)
	var sink pipeline.Sink = coll
	if cfg.Sink != nil {
		sink = pipeline.Tee(coll, cfg.Sink)
	}
	st, err := pipe.RunStream(ctx, cfg.Commits, sink)
	if err != nil {
		return nil, err
	}
	reps := coll.Finish(st.Cycles)
	simCycles.Add(st.Cycles)
	return &Result{
		Name:              cfg.Workload.Name,
		IPC:               st.IPC(),
		Report:            reps.IQ,
		Cycles:            st.Cycles,
		Commits:           st.Commits,
		Squashes:          st.Squashes,
		Refetches:         st.Refetches,
		ThrottleEvents:    st.ThrottleEvents,
		LoadMissRateL0:    st.LoadMissRate(cache.LevelL0),
		LoadMissRateL1:    st.LoadMissRate(cache.LevelL1),
		RegFile:           reps.RegFile,
		FrontEndReport:    reps.FrontEnd,
		StoreBufferReport: reps.StoreBuffer,
		ROBReport:         reps.ROB,
		LSQReport:         reps.LSQ,
		TAGEReport:        tageReport(cfg.Pipeline, st),
	}, nil
}
