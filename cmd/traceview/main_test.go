package main

import (
	"os"
	"path/filepath"
	"testing"

	"softerror/internal/core"
	"softerror/internal/tracefile"
	"softerror/internal/workload"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func writeTrace(t *testing.T) string {
	t.Helper()
	res, err := core.Run(core.Config{Workload: workload.Default(), Commits: 6000, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := tracefile.Save(path, res.Trace); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestViewTrace(t *testing.T) {
	silence(t)
	path := writeTrace(t)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-strikes", "2000", path}); err != nil {
		t.Fatal(err)
	}
}

func TestViewErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "none.trace")}); err == nil {
		t.Error("nonexistent file accepted")
	}
	garbage := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(garbage, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{garbage}); err == nil {
		t.Error("garbage trace accepted")
	}
}
