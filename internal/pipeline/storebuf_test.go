package pipeline

import (
	"testing"

	"softerror/internal/cache"
	"softerror/internal/isa"
	"softerror/internal/workload"
)

func TestStoreToLoadForwarding(t *testing.T) {
	// A store followed immediately by a load of the same address: the load
	// must forward from the store buffer, not access the cache.
	st := blankInst(isa.ClassStore)
	st.Src1 = isa.IntReg(1)
	st.Addr = 0x5000_0000 // would miss everything if it reached the cache
	ld := blankInst(isa.ClassLoad)
	ld.Dest = isa.IntReg(5)
	ld.Src1 = isa.IntReg(1)
	ld.Addr = 0x5000_0000
	use := blankInst(isa.ClassALU)
	use.Dest = isa.IntReg(6)
	use.Src1 = isa.IntReg(5)

	p := MustNew(DefaultConfig(), &scriptSource{insts: []isa.Inst{st, ld, use}}, newMem(t))
	tr := p.Run(3, true)
	if tr.ForwardedLoads != 1 {
		t.Fatalf("ForwardedLoads = %d, want 1", tr.ForwardedLoads)
	}
	var cacheLoads uint64
	for _, n := range tr.LoadsByLevel {
		cacheLoads += n
	}
	if cacheLoads != 0 {
		t.Fatalf("forwarded load accessed the cache: %v", tr.LoadsByLevel)
	}
	// Forwarding is fast: no 200-cycle memory stall.
	if tr.Cycles > 100 {
		t.Fatalf("forwarded load stalled %d cycles", tr.Cycles)
	}
}

func TestStoreDrainsToCache(t *testing.T) {
	st := blankInst(isa.ClassStore)
	st.Src1 = isa.IntReg(1)
	st.Addr = 0x7000
	p := MustNew(DefaultConfig(), &scriptSource{insts: []isa.Inst{st}}, newMem(t))
	tr := p.Run(60, true)
	if len(tr.StoreBuffer) == 0 {
		t.Fatal("no store-buffer residency recorded")
	}
	r := tr.StoreBuffer[0]
	if !r.Issued || r.Evict <= r.Enq {
		t.Fatalf("store-buffer residency malformed: %+v", r)
	}
	if drain := r.Evict - r.Enq; drain < uint64(DefaultConfig().StoreDrainLatency) {
		t.Fatalf("store drained after %d cycles, want >= %d", drain, DefaultConfig().StoreDrainLatency)
	}
	// After draining, the line is in the cache.
	if found, dirty, _ := p.mem.Level(cache.LevelL0).Lookup(0x7000); !found || !dirty {
		t.Fatalf("drained store not dirty in L0: found=%v dirty=%v", found, dirty)
	}
}

func TestStoreBufferFullStallsIssue(t *testing.T) {
	// More back-to-back stores than buffer entries: with one drain per
	// cycle after the drain latency, issue must stall on the full buffer
	// rather than overflow it.
	cfg := DefaultConfig()
	cfg.StoreBufferSize = 2
	cfg.StoreDrainLatency = 20
	var insts []isa.Inst
	for i := 0; i < 12; i++ {
		st := blankInst(isa.ClassStore)
		st.Src1 = isa.IntReg(1)
		st.Addr = uint64(0x8000 + 64*i)
		insts = append(insts, st)
	}
	p := MustNew(cfg, &scriptSource{insts: insts}, newMem(t))
	tr := p.Run(12, true)
	// 12 stores through a 2-entry buffer draining every ~20 cycles: the
	// run must take far longer than an unconstrained pipe would.
	if tr.Cycles < 100 {
		t.Fatalf("full store buffer did not throttle: %d cycles", tr.Cycles)
	}
	if len(tr.StoreBuffer) != 12 {
		t.Fatalf("store-buffer residencies = %d, want 12", len(tr.StoreBuffer))
	}
	// Occupancy never exceeds capacity.
	var occ uint64
	for _, r := range tr.StoreBuffer {
		occ += r.Occupancy()
	}
	if max := tr.Cycles * uint64(cfg.StoreBufferSize); occ > max {
		t.Fatalf("store-buffer occupancy %d exceeds capacity %d", occ, max)
	}
}

func TestStoreBufferConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StoreBufferSize = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero store buffer accepted")
	}
	cfg = DefaultConfig()
	cfg.StoreDrainLatency = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero drain latency accepted")
	}
}

func TestStoreBufferWithGenerator(t *testing.T) {
	gen := workload.MustNew(workload.Default())
	mem := cache.MustNewDefault()
	workload.WarmCaches(mem)
	p := MustNew(DefaultConfig(), gen, mem)
	tr := p.Run(20000, true)
	if len(tr.StoreBuffer) == 0 {
		t.Fatal("generator run recorded no store-buffer residencies")
	}
	if tr.ForwardedLoads == 0 {
		t.Fatal("no store-to-load forwarding in a mixed workload")
	}
	for _, r := range tr.StoreBuffer {
		if r.Inst.Class != isa.ClassStore {
			t.Fatalf("non-store in store buffer: %v", r.Inst)
		}
		if r.Inst.WrongPath || r.Inst.PredFalse {
			t.Fatalf("squashable store drained: %v", r.Inst)
		}
	}
}
