package scrub

import (
	"math"
	"testing"
)

// A 10MB ECC cache with 64-bit protection words at a generous raw rate.
func sampleModel() *Model {
	return &Model{
		Words:              (10 << 20) * 8 / 64,
		BitsPerWord:        64,
		RawFITPerBit:       0.001,
		ScrubIntervalHours: 24,
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Model){
		func(m *Model) { m.Words = 0 },
		func(m *Model) { m.BitsPerWord = 0 },
		func(m *Model) { m.RawFITPerBit = 0 },
		func(m *Model) { m.ScrubIntervalHours = 0 },
	}
	for i, mutate := range bad {
		m := sampleModel()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := m.DoubleStrikeFIT(); err == nil {
			t.Errorf("case %d: DoubleStrikeFIT accepted invalid model", i)
		}
	}
}

func TestExactMatchesApproximation(t *testing.T) {
	m := sampleModel()
	exact, err := m.DoubleStrikeFIT()
	if err != nil {
		t.Fatal(err)
	}
	approx, err := m.Approximate()
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 0 || approx <= 0 {
		t.Fatalf("rates must be positive: %v %v", exact, approx)
	}
	if rel := math.Abs(float64(exact-approx)) / float64(approx); rel > 0.01 {
		t.Fatalf("exact %v vs approx %v differ by %.2f%%", exact, approx, 100*rel)
	}
}

func TestScrubbingLinearlySuppresses(t *testing.T) {
	// Halving the scrub interval halves the double-strike rate — the §2
	// design lever.
	m := sampleModel()
	slow, _ := m.DoubleStrikeFIT()
	m.ScrubIntervalHours /= 2
	fast, _ := m.DoubleStrikeFIT()
	ratio := float64(slow) / float64(fast)
	if math.Abs(ratio-2) > 0.02 {
		t.Fatalf("interval halving changed rate by %.3fx, want ~2x", ratio)
	}
}

func TestMultiBitOrdersOfMagnitudeBelowSingleBit(t *testing.T) {
	// The paper's justification for the single-bit model: even at a whole
	// day between scrubs, double strikes are many orders of magnitude
	// rarer than single-bit strikes.
	m := sampleModel()
	double, _ := m.DoubleStrikeFIT()
	single := m.RawFITPerBit * float64(m.Words*m.BitsPerWord)
	if float64(double) > single*1e-6 {
		t.Fatalf("double-strike rate %v not ≪ single-bit rate %v", double, single)
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	// A small, hot model so the Monte Carlo sees events: few words, huge
	// raw rate, long interval.
	m := &Model{Words: 200, BitsPerWord: 64, RawFITPerBit: 5e5, ScrubIntervalHours: 1}
	exact, err := m.DoubleStrikeFIT()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := m.Simulate(4000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(sim-exact)) / float64(exact); rel > 0.10 {
		t.Fatalf("simulated %v vs analytic %v differ by %.1f%%", sim, exact, 100*rel)
	}
	if _, err := m.Simulate(0, 1); err == nil {
		t.Fatal("zero intervals accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := &Model{Words: 100, BitsPerWord: 64, RawFITPerBit: 5e4, ScrubIntervalHours: 1}
	a, _ := m.Simulate(500, 3)
	b, _ := m.Simulate(500, 3)
	if a != b {
		t.Fatalf("non-deterministic simulation: %v vs %v", a, b)
	}
}
