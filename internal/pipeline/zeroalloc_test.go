//go:build !race

// Race instrumentation allocates on its own; the allocation budgets here
// only hold in plain builds.

package pipeline

import (
	"context"
	"testing"

	"softerror/internal/cache"
	"softerror/internal/workload"
)

// TestBatchSteadyStateAllocFree pins the tentpole property of the batch
// engine: with a warm BatchArena, a fully decoded shared stream and
// re-stamped hierarchies, a complete multi-lane run allocates only its
// []Stats result — the cycle loop itself (lane state, ring buffers, squash
// and throttle queues, refetch backlog) runs out of the arena.
func TestBatchSteadyStateAllocFree(t *testing.T) {
	const commits = 5000
	base := DefaultConfig()
	narrow := base
	narrow.IQSize = 16
	narrow.OutOfOrder = true
	cfgs := []Config{base, narrow}

	sh, err := workload.NewShared(workload.Default())
	if err != nil {
		t.Fatal(err)
	}
	mems := make([]*cache.Hierarchy, len(cfgs))
	sinks := make([]BatchSink, len(cfgs)) // nil sinks: the loop is under test, not the collectors
	var a BatchArena
	ctx := context.Background()

	run := func() {
		for i := range mems {
			mems[i] = workload.WarmedInto(mems[i]) // alloc-free re-stamp once shaped
		}
		if _, err := RunBatchStreamArena(ctx, commits, sh, cfgs, mems, sinks, &a); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: decode the stream, shape the hierarchies, grow the arena

	// One allocation per run is structural: the returned []Stats. Anything
	// beyond it is churn leaking back into the steady-state loop.
	if avg := testing.AllocsPerRun(10, run); avg > 1 {
		t.Fatalf("warm batch run allocates %.1f times, want <= 1 (the []Stats result)", avg)
	}
}
