// Package report renders experiment results as aligned fixed-width text
// tables (for terminals) and as CSV (for plotting), with small formatting
// helpers shared by the command-line tools.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty, extra cells are kept
// (widening the table).
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Fprint writes the table, aligned, to w.
func (t *Table) Fprint(w io.Writer) {
	ncols := len(t.Columns)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			// Left-align the first column, right-align the rest (numeric).
			if i == 0 {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			} else {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
				b.WriteString(cell)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	writeRow(t.Columns)
	total := ncols - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.rows {
		writeRow(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// CSV writes the table as CSV (header + rows) to w.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Pct formats a fraction as a percentage with one decimal ("28.7%").
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// F2 formats with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// F3 formats with three decimals.
func F3(x float64) string { return fmt.Sprintf("%.3f", x) }

// Rel formats a ratio against 1.0 as a signed percentage change ("-26.1%").
func Rel(x float64) string { return fmt.Sprintf("%+.1f%%", 100*(x-1)) }

// Int formats an integer count.
func Int(x uint64) string { return fmt.Sprintf("%d", x) }
