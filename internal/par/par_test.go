package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefault(3)
	defer SetDefault(0)
	if got := Workers(0); got != 3 {
		t.Fatalf("Workers(0) after SetDefault(3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("explicit count must beat default: Workers(5) = %d", got)
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := Map(context.Background(), 100, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	var hits [500]atomic.Int32
	err := ForEach(context.Background(), len(hits), 16, func(_ context.Context, i int) error {
		hits[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if n := hits[i].Load(); n != 1 {
			t.Fatalf("index %d executed %d times", i, n)
		}
	}
}

func TestFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEach(context.Background(), 10_000, 4, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n == 10_000 {
		t.Fatalf("error did not stop the pool: all %d indices ran", n)
	}
}

func TestMapDiscardsOnError(t *testing.T) {
	out, err := Map(context.Background(), 8, 2, func(_ context.Context, i int) (string, error) {
		if i == 3 {
			return "", fmt.Errorf("cell %d failed", i)
		}
		return "ok", nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out != nil {
		t.Fatalf("partial results leaked: %v", out)
	}
}

func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 100, 4, func(_ context.Context, i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, nil); err != nil {
		t.Fatal(err)
	}
	out, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Map over empty space: out=%v err=%v", out, err)
	}
}
