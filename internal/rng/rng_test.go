package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at draw %d", i)
		}
	}
}

func TestSequencesIndependent(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different sequence ids collided %d/1000 times", same)
	}
}

func TestDeriveIndependentOfParentUse(t *testing.T) {
	p1 := New(9, 1)
	d1 := p1.Derive("cache")
	p2 := New(9, 1)
	d2 := p2.Derive("cache")
	for i := 0; i < 100; i++ {
		if d1.Uint64() != d2.Uint64() {
			t.Fatalf("Derive not deterministic at draw %d", i)
		}
	}
	// Deriving must not perturb the parent.
	q1 := New(9, 1)
	q2 := New(9, 1)
	_ = q1.Derive("anything")
	for i := 0; i < 100; i++ {
		if q1.Uint64() != q2.Uint64() {
			t.Fatalf("Derive perturbed parent state at draw %d", i)
		}
	}
}

func TestDeriveLabelsDiffer(t *testing.T) {
	p := New(5, 5)
	a := p.Derive("alpha")
	b := p.Derive("beta")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams with different labels collided %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(1, 1)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 1).Intn(0)
}

func TestInt63nRange(t *testing.T) {
	s := New(2, 2)
	for _, n := range []int64{1, 5, 1 << 40, math.MaxInt64} {
		for i := 0; i < 100; i++ {
			v := s.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3, 3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4, 4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(5, 5)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(6, 6)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", p)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(7, 7)
	const p = 0.25
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // = 3
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1, 1).Geometric(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8, 8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPickRespectsWeights(t *testing.T) {
	s := New(9, 9)
	weights := []float64{0, 1, 3, 0}
	counts := make([]int, len(weights))
	const n = 40000
	for i := 0; i < n; i++ {
		counts[s.Pick(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("Pick selected zero-weight element: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("Pick weight ratio = %v, want ~3", ratio)
	}
}

func TestPickAllZero(t *testing.T) {
	s := New(10, 10)
	if got := s.Pick([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("Pick(all zero) = %d, want 0", got)
	}
}

func TestUint32Property(t *testing.T) {
	// Property: the low bit of Uint32 should be roughly balanced for any seed.
	f := func(seed uint64) bool {
		s := New(seed, 0)
		ones := 0
		for i := 0; i < 1000; i++ {
			ones += int(s.Uint32() & 1)
		}
		return ones > 380 && ones < 620
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUnbiasedSmallN(t *testing.T) {
	s := New(11, 11)
	const n = 3
	const draws = 90000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-1.0/n) > 0.01 {
			t.Fatalf("Intn(%d) bucket %d frac = %v", n, i, frac)
		}
	}
}

func BenchmarkUint32(b *testing.B) {
	s := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint32()
	}
}

func BenchmarkIntn64(b *testing.B) {
	s := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(64)
	}
}
