package scrub_test

import (
	"fmt"

	"softerror/internal/scrub"
)

// Why the paper's single-bit fault model is safe for a scrubbed ECC cache:
// at a day between scrubs, accumulated double strikes are over nine orders
// of magnitude rarer than single-bit strikes.
func ExampleModel_DoubleStrikeFIT() {
	m := &scrub.Model{
		Words:              (10 << 20) * 8 / 64, // 10MB L2, 64-bit ECC words
		BitsPerWord:        64,
		RawFITPerBit:       0.001,
		ScrubIntervalHours: 24,
	}
	double, err := m.DoubleStrikeFIT()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	single := m.RawFITPerBit * float64(m.Words*m.BitsPerWord)
	fmt.Printf("single-bit: %.0f FIT\n", single)
	fmt.Printf("double-strike escapes: %.2e FIT\n", float64(double))
	// Output:
	// single-bit: 83886 FIT
	// double-strike escapes: 6.44e-05 FIT
}

// Interleaving protection domains defeats spatial multi-bit strikes: a
// factor-4 interleave leaves only the widest (rarest) strikes uncovered.
func ExampleInterleave_DefeatProbability() {
	for _, factor := range []int{1, 2, 4} {
		iv := scrub.Interleave{Factor: factor, StrikeWidthProb: scrub.TypicalWidths()}
		p, _ := iv.DefeatProbability()
		fmt.Printf("interleave %d: %.3f of strikes defeat ECC\n", factor, p)
	}
	// Output:
	// interleave 1: 0.030 of strikes defeat ECC
	// interleave 2: 0.010 of strikes defeat ECC
	// interleave 4: 0.001 of strikes defeat ECC
}
