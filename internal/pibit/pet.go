// Package pibit implements the paper's false-DUE tracking hardware: the π
// (possibly incorrect) bit carried by instructions from detection to the
// point where the hardware can prove the error harmless, the anti-π bit on
// neutral instruction types, the Post-commit Error Tracking (PET) buffer,
// and the π-bit extensions to the register file, store buffer, caches and
// memory (§4 of the paper).
//
// The mechanisms are implemented as real data structures driven by the
// committed instruction stream, so a fault-injection campaign exercises the
// same decisions the hardware would make: set π instead of raising a
// machine check, propagate it along dataflow, and signal only when a
// possibly-incorrect value could reach architectural output.
package pibit

import (
	"fmt"

	"softerror/internal/isa"
)

// petEntry is one logged instruction in the PET buffer.
type petEntry struct {
	inst isa.Inst
	pi   bool
}

// PETBuffer is the Post-commit Error Tracking buffer: a FIFO log of retired
// instructions with their π bits. When an entry with a set π bit is evicted,
// the buffer is scanned to prove the instruction first-level dynamically
// dead — its destination overwritten by a younger logged instruction with no
// intervening read. Proven-dead evictions suppress the error; everything
// else must signal (§4.3.3, design 1).
type PETBuffer struct {
	entries []petEntry
	head    int // index of the oldest entry
	count   int

	signalled uint64
	suppress  uint64
}

// NewPETBuffer returns a PET buffer with the given number of entries.
func NewPETBuffer(entries int) *PETBuffer {
	if entries < 1 {
		panic(fmt.Sprintf("pibit: PET buffer size %d, want >= 1", entries))
	}
	return &PETBuffer{entries: make([]petEntry, 0, entries)}
}

// Size returns the buffer's capacity in entries.
func (b *PETBuffer) Size() int { return cap(b.entries) }

// Len returns the number of instructions currently logged.
func (b *PETBuffer) Len() int { return b.count }

// Signalled and Suppressed return campaign counters: errors raised at
// eviction versus errors proven false and dropped.
func (b *PETBuffer) Signalled() uint64 { return b.signalled }

// Suppressed returns the number of π evictions proven harmless.
func (b *PETBuffer) Suppressed() uint64 { return b.suppress }

// Push logs a retired instruction with its π bit. If the buffer is full the
// oldest instruction is evicted first; when that evictee carries a set π
// bit, Push reports whether an error must be signalled for it (signal=true)
// and on which instruction (evictSeq). A false return with ok=true means
// the eviction proved the error false.
func (b *PETBuffer) Push(in isa.Inst, pi bool) (signal bool, evictSeq uint64, evicted bool) {
	if b.count == cap(b.entries) {
		old := b.entries[:cap(b.entries)][b.head]
		b.entries[:cap(b.entries)][b.head] = petEntry{inst: in, pi: pi}
		b.head = (b.head + 1) % cap(b.entries)
		if old.pi {
			if b.provesDead(&old.inst) {
				b.suppress++
				return false, old.inst.Seq, true
			}
			b.signalled++
			return true, old.inst.Seq, true
		}
		return false, old.inst.Seq, true
	}
	b.entries = append(b.entries, petEntry{inst: in, pi: pi})
	b.count++
	if b.count == cap(b.entries) {
		b.head = 0
	}
	return false, 0, false
}

// Drain evicts every remaining entry in order, reporting the sequence
// numbers of entries whose π bit must be signalled: at drain time nothing
// younger can prove them dead beyond what the log already holds.
func (b *PETBuffer) Drain() (signalSeqs []uint64) {
	for i := 0; i < b.count; i++ {
		idx := (b.head + i) % cap(b.entries)
		e := &b.entries[:cap(b.entries)][idx]
		if !e.pi {
			continue
		}
		if b.provesDeadFrom(&e.inst, i+1) {
			b.suppress++
			continue
		}
		b.signalled++
		signalSeqs = append(signalSeqs, e.inst.Seq)
	}
	b.entries = b.entries[:0]
	b.head, b.count = 0, 0
	return signalSeqs
}

// provesDead scans the whole (post-eviction) buffer contents — all younger
// than old — for an overwrite of old's destination with no intervening read.
func (b *PETBuffer) provesDead(old *isa.Inst) bool {
	return b.scan(old, 0, b.count)
}

// provesDeadFrom scans entries starting at logical offset from.
func (b *PETBuffer) provesDeadFrom(old *isa.Inst, from int) bool {
	return b.scan(old, from, b.count)
}

func (b *PETBuffer) scan(old *isa.Inst, from, to int) bool {
	if !old.HasDest() {
		return false // nothing to prove for stores, branches, no-dest ops
	}
	dest := old.Dest
	for i := from; i < to; i++ {
		idx := (b.head + i) % cap(b.entries)
		in := &b.entries[:cap(b.entries)][idx].inst
		if readsReg(in, dest) {
			return false // intervening read: possibly consumed
		}
		if in.HasDest() && in.Dest == dest {
			return true // overwritten without read: proven FDD
		}
	}
	return false // no overwriter logged: cannot prove
}

// readsReg reports whether the instruction architecturally reads r. A
// predicated-false instruction reads only its guard; neutral instructions
// read nothing that matters.
func readsReg(in *isa.Inst, r isa.Reg) bool {
	if in.Class.Neutral() {
		return false
	}
	if in.PredGuard == r {
		return true
	}
	if in.PredFalse {
		return false
	}
	return in.Src1 == r || in.Src2 == r
}
