package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"softerror/internal/cli"
	"softerror/internal/par"
)

// captureStdout redirects os.Stdout to a file for one run() and returns its
// contents.
func captureStdout(t *testing.T, fn func() error) ([]byte, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stdout")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = f
	runErr := fn()
	os.Stdout = old
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, runErr
}

// TestOutcomesCrashResume kills the Figure-1 injection campaign with an
// injected panic, resumes it, and requires the resumed table to be
// byte-identical to an uninterrupted run's.
func TestOutcomesCrashResume(t *testing.T) {
	base := []string{"-benches", "gzip-graphic", "-commits", "8000", "-strikes", "1500", "-j", "2"}
	straight, err := captureStdout(t, func() error { return run(append(base, "outcomes")) })
	if err != nil {
		t.Fatal(err)
	}

	ckPath := filepath.Join(t.TempDir(), "outcomes.ckpt")
	withCk := append(append([]string{}, base...), "-checkpoint", ckPath)
	par.SetChaos(func(_ context.Context, index, attempt int) error {
		if index >= 3 {
			panic(fmt.Sprintf("chaos: simulated crash in cell %d", index))
		}
		return nil
	})
	_, err = captureStdout(t, func() error { return run(append(withCk, "outcomes")) })
	par.SetChaos(nil)
	if err == nil {
		t.Fatal("chaos-crashed campaign reported success")
	}
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("no checkpoint after crash: %v", err)
	}

	resumed, err := captureStdout(t, func() error {
		return run(append(append([]string{}, withCk...), "-resume", "outcomes"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(straight, resumed) {
		t.Fatalf("resumed table differs from straight-through table:\n--- straight\n%s\n--- resumed\n%s", straight, resumed)
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Error("checkpoint not removed after a completed campaign")
	}
}

func TestReproUsageExitCodes(t *testing.T) {
	cases := [][]string{
		{},
		{"nonsense"},
		{"-benches", "nosuch", "table1"},
		{"-resume", "outcomes"},
		{"-nosuchflag", "table1"},
	}
	for _, args := range cases {
		err := run(args)
		if code := cli.ExitCode(err); code != cli.ExitUsage {
			t.Errorf("run(%v) exit code = %d (%v), want %d", args, code, err, cli.ExitUsage)
		}
	}
}
