package pibit_test

import (
	"fmt"

	"softerror/internal/ace"
	"softerror/internal/isa"
	"softerror/internal/pibit"
)

// The PET buffer in action: a parity-flagged instruction enters with its π
// bit set; by the time it is evicted, the buffer has logged an overwrite of
// its destination with no intervening read, proving the error false.
func ExamplePETBuffer() {
	pet := pibit.NewPETBuffer(3)
	faulty := isa.Inst{Seq: 1, Class: isa.ClassALU, Dest: isa.IntReg(5),
		Src1: isa.IntReg(1), Src2: isa.RegNone, PredGuard: isa.RegNone}
	overwrite := isa.Inst{Seq: 2, Class: isa.ClassALU, Dest: isa.IntReg(5),
		Src1: isa.IntReg(2), Src2: isa.RegNone, PredGuard: isa.RegNone}
	nop := isa.Inst{Seq: 3, Class: isa.ClassNop, Dest: isa.RegNone,
		Src1: isa.RegNone, Src2: isa.RegNone, PredGuard: isa.RegNone}

	pet.Push(faulty, true) // π set by the parity check
	pet.Push(overwrite, false)
	pet.Push(nop, false)
	signal, seq, _ := pet.Push(nop, false) // evicts the faulty entry
	fmt.Printf("evicted seq %d: signal error = %v\n", seq, signal)
	// Output:
	// evicted seq 1: signal error = false
}

// The tracking engine resolves a fault per the deployed mechanism level: a
// plain-parity machine signals immediately; the anti-π bit recognises that
// a non-opcode strike on a no-op cannot matter.
func ExampleEngine_Process() {
	nop := isa.Inst{Seq: 0, Class: isa.ClassNop, Dest: isa.RegNone,
		Src1: isa.RegNone, Src2: isa.RegNone, PredGuard: isa.RegNone}
	log := []isa.Inst{nop}

	parity := pibit.NewEngine(ace.TrackNever)
	antiPi := pibit.NewEngine(ace.TrackAntiPi)
	fmt.Println("plain parity:", parity.Process(log, 0, isa.FieldImm))
	fmt.Println("with anti-pi:", antiPi.Process(log, 0, isa.FieldImm))
	fmt.Println("opcode strike:", antiPi.Process(log, 0, isa.FieldOpcode))
	// Output:
	// plain parity: signalled
	// with anti-pi: suppressed
	// opcode strike: signalled
}
