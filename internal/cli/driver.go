package cli

import (
	"flag"
	"fmt"
	"os"

	"softerror/internal/par"
)

// Driver bundles the flag plumbing every command repeats: a
// ContinueOnError FlagSet named after the command, an optional usage
// synopsis printed above the flag defaults, the shared -j worker flag
// wired into par.SetDefault, and usage-classified parsing.
//
//	func run(args []string) error {
//		d := cli.NewDriver("mycmd", "mycmd [flags] <arg>")
//		verbose := d.FS.Bool("v", false, "verbose")
//		if err := d.Parse(args); err != nil {
//			return err
//		}
//		...
//	}
type Driver struct {
	// FS is the command's flag set; register command-specific flags on it
	// before calling Parse.
	FS   *flag.FlagSet
	jobs *int
}

// NewDriver builds a Driver for the named command. synopsis, when
// non-empty, becomes the first line of the usage message.
func NewDriver(name, synopsis string) *Driver {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	if synopsis != "" {
		fs.Usage = func() {
			fmt.Fprintf(fs.Output(), "usage: %s\n\n", synopsis)
			fs.PrintDefaults()
		}
	}
	d := &Driver{FS: fs}
	d.jobs = fs.Int("j", 0, "simulation worker count (default GOMAXPROCS); output is identical at any -j")
	return d
}

// Parse parses args with usage-error classification and installs the -j
// value as the package-wide worker default.
func (d *Driver) Parse(args []string) error {
	if err := Parse(d.FS, args); err != nil {
		return err
	}
	par.SetDefault(*d.jobs)
	return nil
}

// Jobs returns the parsed -j value (0 = GOMAXPROCS default).
func (d *Driver) Jobs() int { return *d.jobs }

// Main is the shared main() body: run the command on os.Args and exit with
// the documented code.
func Main(name string, run func(args []string) error) {
	Exit(name, run(os.Args[1:]))
}
