package pipeline

import (
	"context"
	"fmt"
	"sort"

	"softerror/internal/cache"
	"softerror/internal/isa"
)

// Source supplies the dynamic instruction stream. Next returns the next
// correct-path instruction; NextWrong synthesises a wrong-path instruction
// fetched past an unresolved mispredicted branch. Both share one
// sequence-number space in fetch order.
type Source interface {
	Next() isa.Inst
	NextWrong() isa.Inst
}

// watchdogCycles bounds forward-progress stalls; exceeding it indicates a
// simulator bug, not a workload property.
const watchdogCycles = 500_000

type iqEntry struct {
	inst    isa.Inst
	enq     uint64
	issued  bool
	issue   uint64
	evictAt uint64 // valid once issued
}

type sbEntry struct {
	inst    isa.Inst
	enq     uint64
	drainAt uint64
}

type feEntry struct {
	inst    isa.Inst
	fetched uint64
	readyAt uint64
}

type squashEvent struct {
	at         uint64
	loadSeq    uint64
	missReturn uint64
}

type throttleEvent struct {
	at         uint64
	missReturn uint64
}

// Pipeline is the core model. Create one per run with New; a Pipeline is
// not safe for concurrent use and cannot be restarted after Run.
type Pipeline struct {
	cfg Config
	src Source
	mem *cache.Hierarchy

	cycle    uint64
	regReady [isa.NumRegs]uint64

	iq       []iqEntry
	frontEnd []feEntry
	sb       []sbEntry
	refetch  []isa.Inst
	feCap    int
	issuePtr int // index of oldest unissued IQ entry (scan hint)

	// pendingInst parks an instruction whose front-end delivery gap
	// (Inst.FetchBubble) is being charged; it is fetched once the gap
	// elapses.
	pendingInst isa.Inst
	havePending bool

	wrongMode   bool
	wrongSrcSeq uint64 // Seq of the unresolved mispredicted branch
	resolveAt   uint64 // cycle the outstanding mispredict redirects; 0 = none scheduled
	squashQ     []squashEvent
	throttleQ   []throttleEvent
	stallUntil  uint64

	trace Trace
}

// New builds a pipeline over the given instruction source and data-cache
// hierarchy. The hierarchy may be pre-warmed and is shared state: the
// caller owns it.
func New(cfg Config, src Source, mem *cache.Hierarchy) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil || mem == nil {
		return nil, fmt.Errorf("pipeline: nil source or memory")
	}
	p := &Pipeline{
		cfg:   cfg,
		src:   src,
		mem:   mem,
		feCap: cfg.FetchWidth * (cfg.FrontEndDepth + 2),
	}
	p.trace.IQSize = cfg.IQSize
	p.trace.FrontEndCap = p.feCap
	p.trace.StoreBufferCap = cfg.StoreBufferSize
	return p, nil
}

// MustNew is New for statically valid arguments.
func MustNew(cfg Config, src Source, mem *cache.Hierarchy) *Pipeline {
	p, err := New(cfg, src, mem)
	if err != nil {
		panic(err)
	}
	return p
}

// Run simulates until the given number of correct-path instructions have
// committed, then drains residency records and returns the trace. record
// controls whether residencies and the commit log are captured (disable for
// warm-up runs).
func (p *Pipeline) Run(commits uint64, record bool) *Trace {
	tr, _ := p.RunContext(context.Background(), commits, record)
	return tr
}

// RunContext is Run with cooperative cancellation: the cycle loop checks
// ctx every few thousand cycles, so a SIGINT or a per-task watchdog aborts
// within one simulation rather than waiting for it to finish. A cancelled
// run returns a nil trace and ctx's error; the pipeline must not be reused
// afterwards.
func (p *Pipeline) RunContext(ctx context.Context, commits uint64, record bool) (*Trace, error) {
	lastCommitCycle := uint64(0)
	lastCommits := uint64(0)
	for p.trace.Commits < commits {
		if p.cycle&4095 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		p.step(record)
		if p.trace.Commits != lastCommits {
			lastCommits = p.trace.Commits
			lastCommitCycle = p.cycle
		} else if p.cycle-lastCommitCycle > watchdogCycles {
			panic(fmt.Sprintf(
				"pipeline: no commit for %d cycles at cycle %d (iq=%d fe=%d refetch=%d wrong=%v stall=%d)",
				watchdogCycles, p.cycle, len(p.iq), len(p.frontEnd), len(p.refetch), p.wrongMode, p.stallUntil))
		}
	}
	// Close residencies for entries still in flight, clipped at the final
	// cycle so occupancy integrals stay consistent.
	if record {
		for i := range p.iq {
			e := &p.iq[i]
			p.recordResidency(e, p.cycle, false)
		}
		for i := range p.frontEnd {
			p.recordFrontEnd(&p.frontEnd[i], p.cycle, false)
		}
		for i := range p.sb {
			e := &p.sb[i]
			p.trace.StoreBuffer = append(p.trace.StoreBuffer, Residency{
				Inst: e.inst, Enq: e.enq, Evict: p.cycle,
				Issued: true, Issue: p.cycle,
			})
		}
	}
	p.trace.Cycles = p.cycle
	// Out-of-order issue appends commits in dataflow order; the analyses
	// require program order, which the unique sequence numbers restore.
	if p.cfg.OutOfOrder && record {
		log, cycles := p.trace.CommitLog, p.trace.CommitCycles
		order := make([]int, len(log))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return log[order[a]].Seq < log[order[b]].Seq })
		sortedLog := make([]isa.Inst, len(log))
		sortedCycles := make([]uint64, len(cycles))
		for i, j := range order {
			sortedLog[i] = log[j]
			sortedCycles[i] = cycles[j]
		}
		p.trace.CommitLog, p.trace.CommitCycles = sortedLog, sortedCycles
	}
	return &p.trace, nil
}

// step advances one cycle.
func (p *Pipeline) step(record bool) {
	now := p.cycle
	p.drainStores(now, record)
	p.resolveBranch(now, record)
	p.applySquashes(now, record)
	p.applyThrottles(now)
	p.evict(now, record)
	p.issue(now, record)
	p.deliver(now, record)
	p.fetch(now)
	p.cycle++
}

// recordResidency appends a residency record for e ending at evict.
func (p *Pipeline) recordResidency(e *iqEntry, evict uint64, squashed bool) {
	p.trace.Residencies = append(p.trace.Residencies, Residency{
		Inst:     e.inst,
		Enq:      e.enq,
		Evict:    evict,
		Issued:   e.issued,
		Issue:    e.issue,
		Squashed: squashed,
	})
}

// resolveBranch redirects fetch when the outstanding mispredicted branch
// reaches its resolution cycle, flushing wrong-path state everywhere.
func (p *Pipeline) resolveBranch(now uint64, record bool) {
	if p.resolveAt == 0 || now < p.resolveAt {
		return
	}
	p.resolveAt = 0
	p.wrongMode = false
	// Flush wrong-path entries from the IQ.
	kept := p.iq[:0]
	for i := range p.iq {
		e := &p.iq[i]
		if e.inst.WrongPath {
			p.trace.WrongFlushes++
			if record {
				p.recordResidency(e, now, !e.issued)
			}
			continue
		}
		kept = append(kept, *e)
	}
	p.iq = kept
	p.issuePtr = 0
	// Flush wrong-path entries from the front end.
	keptFE := p.frontEnd[:0]
	for i := range p.frontEnd {
		fe := &p.frontEnd[i]
		if fe.inst.WrongPath {
			p.trace.WrongFlushes++
			if record {
				p.recordFrontEnd(fe, now, false)
			}
			continue
		}
		keptFE = append(keptFE, *fe)
	}
	p.frontEnd = keptFE
}

// applySquashes fires pending squash events whose detection cycle arrived.
func (p *Pipeline) applySquashes(now uint64, record bool) {
	rest := p.squashQ[:0]
	for _, ev := range p.squashQ {
		if ev.at > now {
			rest = append(rest, ev)
			continue
		}
		p.doSquash(now, ev, record)
	}
	p.squashQ = rest
}

// doSquash removes every unissued IQ entry younger than the triggering
// load, flushes the front end the same way, queues correct-path victims for
// refetch, and stalls fetch until the miss returns.
func (p *Pipeline) doSquash(now uint64, ev squashEvent, record bool) {
	p.trace.Squashes++
	kept := p.iq[:0]
	for i := range p.iq {
		e := &p.iq[i]
		if e.issued || e.inst.Seq <= ev.loadSeq {
			kept = append(kept, *e)
			continue
		}
		p.trace.SquashedEntries++
		if record {
			p.recordResidency(e, now, true)
		}
		p.squashVictim(e.inst)
	}
	p.iq = kept
	p.issuePtr = 0

	keptFE := p.frontEnd[:0]
	for i := range p.frontEnd {
		fe := &p.frontEnd[i]
		if fe.inst.Seq <= ev.loadSeq {
			keptFE = append(keptFE, *fe)
			continue
		}
		p.trace.SquashedEntries++
		if record {
			p.recordFrontEnd(fe, now, false)
		}
		p.squashVictim(fe.inst)
	}
	p.frontEnd = keptFE

	sortRefetch(p.refetch)
	// Restart fetch early enough that the front-end refill overlaps the
	// remaining miss shadow.
	restart := ev.missReturn - uint64(p.cfg.RefetchOverlap)
	if restart < now {
		restart = now
	}
	if restart > p.stallUntil {
		p.stallUntil = restart
	}
}

// squashVictim routes one squashed instruction: correct-path instructions
// are refetched later under the same Seq; wrong-path ones are dropped. If
// the unresolved mispredicted branch itself is squashed, wrong-path fetch
// mode ends (it will re-trigger on refetch).
func (p *Pipeline) squashVictim(in isa.Inst) {
	if in.WrongPath {
		return
	}
	p.refetch = append(p.refetch, in)
	p.trace.Refetches++
	if p.wrongMode && in.Seq == p.wrongSrcSeq {
		p.wrongMode = false
	}
}

// sortRefetch restores fetch order (by Seq) after a squash interleaves
// victims with earlier, not-yet-refetched ones.
func sortRefetch(q []isa.Inst) {
	// Insertion sort: the queue is short and nearly sorted.
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && q[j-1].Seq > q[j].Seq; j-- {
			q[j-1], q[j] = q[j], q[j-1]
		}
	}
}

// applyThrottles fires pending fetch-throttle events.
func (p *Pipeline) applyThrottles(now uint64) {
	rest := p.throttleQ[:0]
	for _, ev := range p.throttleQ {
		if ev.at > now {
			rest = append(rest, ev)
			continue
		}
		p.trace.ThrottleEvents++
		if ev.missReturn > p.stallUntil {
			p.stallUntil = ev.missReturn
		}
	}
	p.throttleQ = rest
}

// evict retires issued entries from the queue head once their replay window
// closes.
func (p *Pipeline) evict(now uint64, record bool) {
	n := 0
	for n < len(p.iq) {
		e := &p.iq[n]
		if !e.issued || now < e.evictAt {
			break
		}
		if record {
			p.recordResidency(e, now, false)
		}
		n++
	}
	if n > 0 {
		p.iq = p.iq[n:]
		p.issuePtr -= n
		if p.issuePtr < 0 {
			p.issuePtr = 0
		}
	}
}

// issue performs scoreboarded issue: up to IssueWidth instructions per
// cycle. In-order mode stops at the first unissued instruction with an
// unready operand (stall-on-use); out-of-order mode skips stalled entries
// and issues any ready instruction, oldest first.
func (p *Pipeline) issue(now uint64, record bool) {
	issued := 0
	for i := p.issuePtr; i < len(p.iq) && issued < p.cfg.IssueWidth; i++ {
		e := &p.iq[i]
		if e.issued {
			continue
		}
		if !p.ready(&e.inst, now) {
			if p.cfg.OutOfOrder {
				continue // skip the stalled entry, look younger
			}
			return // in-order: nothing younger may issue
		}
		p.execute(e, now, record)
		issued++
		if i == p.issuePtr {
			p.issuePtr = i + 1
		}
	}
}

// ready reports whether the instruction's operands are available. Wrong-path
// instructions are always "ready": their operands are speculative garbage.
func (p *Pipeline) ready(in *isa.Inst, now uint64) bool {
	if in.WrongPath {
		return true
	}
	if in.PredGuard != isa.RegNone && p.regReady[in.PredGuard] > now {
		return false
	}
	if in.PredFalse {
		return true // guard known false: operand values are irrelevant
	}
	if in.Class == isa.ClassStore && len(p.sb) >= p.cfg.StoreBufferSize {
		return false // store buffer full: the store cannot issue
	}
	if in.Src1 != isa.RegNone && p.regReady[in.Src1] > now {
		return false
	}
	if in.Src2 != isa.RegNone && p.regReady[in.Src2] > now {
		return false
	}
	return true
}

// execute issues one entry: reads it (the parity-check point), performs its
// side effects, and schedules its eviction.
func (p *Pipeline) execute(e *iqEntry, now uint64, record bool) {
	e.issued = true
	e.issue = now
	e.evictAt = now + uint64(p.cfg.ReplayWindow)
	in := &e.inst

	if in.WrongPath {
		return // consumed an issue slot; no architectural effects
	}

	p.trace.Commits++
	if record {
		p.trace.CommitLog = append(p.trace.CommitLog, *in)
		p.trace.CommitCycles = append(p.trace.CommitCycles, now)
	}

	if in.PredFalse {
		return // retires without executing
	}

	switch in.Class {
	case isa.ClassALU:
		p.writeDest(in, now+uint64(p.cfg.ALULatency))
	case isa.ClassFPU:
		p.writeDest(in, now+uint64(p.cfg.FPLatency))
	case isa.ClassLoad:
		if p.sbHolds(in.Addr) {
			// Store-to-load forwarding: serviced from the store buffer,
			// no cache access, no miss trigger.
			p.trace.ForwardedLoads++
			p.writeDest(in, now+1)
			break
		}
		res := p.mem.Access(in.Addr, false)
		p.trace.LoadsByLevel[res.Level]++
		p.writeDest(in, now+uint64(res.Latency))
		p.maybeTrigger(in, res, now)
	case isa.ClassStore:
		p.sb = append(p.sb, sbEntry{
			inst:    *in,
			enq:     now,
			drainAt: now + uint64(p.cfg.StoreDrainLatency),
		})
	case isa.ClassIO:
		p.mem.Access(in.Addr, true)
	case isa.ClassPrefetch:
		p.mem.Prefetch(in.Addr)
	case isa.ClassBranch, isa.ClassCall, isa.ClassReturn:
		if in.Mispred && p.wrongMode && p.wrongSrcSeq == in.Seq {
			p.resolveAt = now + uint64(p.cfg.BranchResolveLatency)
		}
	case isa.ClassNop, isa.ClassHint:
		// No effects.
	}
}

func (p *Pipeline) writeDest(in *isa.Inst, readyAt uint64) {
	if in.Dest != isa.RegNone {
		p.regReady[in.Dest] = readyAt
	}
}

// maybeTrigger schedules exposure-reduction actions for a load serviced
// beyond the trigger level. The action fires when the miss is *detected* —
// when the trigger-level cache would have responded — and fetch stalls
// until the miss returns.
func (p *Pipeline) maybeTrigger(in *isa.Inst, res cache.AccessResult, now uint64) {
	if lvl := p.cfg.SquashTrigger.level(); lvl >= 0 && res.MissedLevel(lvl) {
		p.squashQ = append(p.squashQ, squashEvent{
			at:         now + uint64(p.mem.Level(lvl).Config().HitLatency),
			loadSeq:    in.Seq,
			missReturn: now + uint64(res.Latency),
		})
	}
	if lvl := p.cfg.ThrottleTrigger.level(); lvl >= 0 && res.MissedLevel(lvl) {
		p.throttleQ = append(p.throttleQ, throttleEvent{
			at:         now + uint64(p.mem.Level(lvl).Config().HitLatency),
			missReturn: now + uint64(res.Latency),
		})
	}
}

// drainStores retires at most one store per cycle from the buffer head to
// the cache, recording its residency (the drain is the read point: the
// value is committed to memory).
func (p *Pipeline) drainStores(now uint64, record bool) {
	if len(p.sb) == 0 {
		return
	}
	e := &p.sb[0]
	if now < e.drainAt {
		return
	}
	p.mem.Access(e.inst.Addr, true)
	if record {
		p.trace.StoreBuffer = append(p.trace.StoreBuffer, Residency{
			Inst:   e.inst,
			Enq:    e.enq,
			Evict:  now,
			Issued: true,
			Issue:  now,
		})
	}
	p.sb = p.sb[1:]
}

// sbHolds reports whether the store buffer holds a pending store to addr.
func (p *Pipeline) sbHolds(addr uint64) bool {
	for i := len(p.sb) - 1; i >= 0; i-- {
		if p.sb[i].inst.Addr == addr {
			return true
		}
	}
	return false
}

// deliver moves instructions that have traversed the front end into the IQ,
// in order, while space remains.
func (p *Pipeline) deliver(now uint64, record bool) {
	n := 0
	for n < len(p.frontEnd) {
		fe := &p.frontEnd[n]
		if fe.readyAt > now || len(p.iq) >= p.cfg.IQSize {
			break
		}
		p.iq = append(p.iq, iqEntry{inst: fe.inst, enq: now})
		if record {
			p.recordFrontEnd(fe, now, true)
		}
		n++
	}
	if n > 0 {
		p.frontEnd = p.frontEnd[n:]
	}
}

// recordFrontEnd logs one fetch-buffer occupancy interval: delivered
// entries are read into decode (the front end's parity-check point);
// flushed ones never are.
func (p *Pipeline) recordFrontEnd(fe *feEntry, until uint64, delivered bool) {
	p.trace.FrontEnd = append(p.trace.FrontEnd, Residency{
		Inst:     fe.inst,
		Enq:      fe.fetched,
		Evict:    until,
		Issued:   delivered,
		Issue:    until,
		Squashed: !delivered,
	})
}

// fetch brings up to FetchWidth instructions into the front end, honouring
// squash/throttle stalls and front-end capacity. Sources in priority order:
// the refetch queue, then the wrong-path synthesiser (when an unresolved
// mispredict is outstanding), then the correct-path stream.
func (p *Pipeline) fetch(now uint64) {
	if now < p.stallUntil {
		p.trace.FetchStallCycles++
		return
	}
	if len(p.frontEnd) >= p.feCap {
		return
	}
	readyAt := now + uint64(p.cfg.FrontEndDepth)
	for i := 0; i < p.cfg.FetchWidth && len(p.frontEnd) < p.feCap; i++ {
		var in isa.Inst
		switch {
		case len(p.refetch) > 0 && !p.wrongMode:
			// Refetched instructions are older than any parked pending
			// instruction and hit a warm I-cache (no delivery gap).
			in = p.refetch[0]
			p.refetch = p.refetch[1:]
		case p.havePending:
			in = p.pendingInst
			p.havePending = false
		case p.wrongMode:
			in = p.src.NextWrong()
		default:
			in = p.src.Next()
		}
		if in.FetchBubble > 0 {
			// Charge the front-end delivery gap (I-cache/ITLB miss,
			// dispersal break) and park the instruction until it elapses.
			until := now + uint64(in.FetchBubble)
			if until > p.stallUntil {
				p.stallUntil = until
			}
			in.FetchBubble = 0
			p.pendingInst = in
			p.havePending = true
			return
		}
		if in.Seq > p.trace.MaxSeq {
			p.trace.MaxSeq = in.Seq
		}
		p.frontEnd = append(p.frontEnd, feEntry{inst: in, fetched: now, readyAt: readyAt})
		// A freshly fetched mispredicted control instruction flips fetch
		// into wrong-path mode for the rest of this cycle and beyond.
		if !in.WrongPath && in.Class.IsControl() && in.Mispred && !p.wrongMode {
			p.wrongMode = true
			p.wrongSrcSeq = in.Seq
		}
	}
}
