package ace

import (
	"sort"

	"softerror/internal/isa"
	"softerror/internal/pipeline"
)

// CollectorConfig parameterises a streaming Collector: the geometry of the
// structures under analysis plus which optional analyses to run. Geometry
// must match the pipeline configuration that drives the stream —
// StructureConfig derives it.
type CollectorConfig struct {
	IQSize         int
	FrontEndCap    int
	StoreBufferCap int
	// ROBSize and LSQSize enable the out-of-order structure analyses when
	// nonzero (they stay zero for the in-order family, whose runs emit no
	// ROB/LSQ events).
	ROBSize int
	LSQSize int
	// Commits pre-sizes the commit log (0 if unknown).
	Commits uint64

	// FrontEnd, StoreBuffer and RegFile enable the corresponding extra
	// analyses; each costs some per-event bookkeeping, so they are opt-in.
	FrontEnd    bool
	StoreBuffer bool
	RegFile     bool
}

// StructureConfig derives a Collector's geometry from the pipeline
// configuration that will drive it. The optional analyses start disabled.
func StructureConfig(pcfg pipeline.Config, commits uint64) CollectorConfig {
	cfg := CollectorConfig{
		IQSize:         pcfg.IQSize,
		FrontEndCap:    pcfg.FrontEndCap(),
		StoreBufferCap: pcfg.StoreBufferSize,
		Commits:        commits,
	}
	if pcfg.OutOfOrder {
		n := pcfg.Normalized()
		cfg.ROBSize = n.ROBSize
		cfg.LSQSize = n.LSQSize
	}
	return cfg
}

// Reports bundles the analyses a Collector produced from one stream. The
// optional reports are nil unless enabled in the CollectorConfig.
type Reports struct {
	IQ          *Report
	FrontEnd    *Report
	StoreBuffer *SBReport
	RegFile     *RegFileReport
	// ROB and LSQ are produced only for out-of-order runs (nonzero
	// ROBSize/LSQSize in the CollectorConfig).
	ROB  *Report
	LSQ  *LSQReport
	Dead *Deadness
}

// pendingRead is a read exposure whose deadness category is not yet known:
// classification needs the full commit log, so it is deferred to Finish.
type pendingRead struct {
	seq       uint64
	wait      uint64
	hasDest   bool
	isControl bool
}

// pendingOcc is a store-buffer occupancy awaiting its store's category.
type pendingOcc struct {
	seq uint64
	occ uint64
}

// Collector is the streaming pipeline.Sink that folds residency events
// into ACE reports as they close, without materialising a Trace.
//
// Interval classes whose category is static — never-read copies, wrong-path
// reads, and the category-independent post-issue linger — are integrated
// immediately. Correct-path read exposures depend on dynamic deadness,
// which requires the complete commit log; the Collector therefore retains
// exactly the committed stream (which the deadness analysis needs anyway)
// plus one wait per commit, and settles those charges in Finish. Every
// charge goes through the same Report.addNeverRead/addRead helpers as the
// batch integrator, and all charges are commutative uint64 sums, so the
// resulting reports are identical — not just statistically, but exactly —
// to analysing a recorded Trace.
type Collector struct {
	cfg CollectorConfig

	log          []isa.Inst
	waits        []uint64 // pre-issue IQ wait per committed instruction
	commitCycles []uint64 // issue cycles, kept only for the regfile pass

	iq  Report
	fe  Report
	sb  SBReport
	rob Report
	lsq LSQReport

	fePending  []pendingRead
	sbPending  []pendingOcc
	robPending []pendingRead
	lsqPending []pendingOcc
}

// NewCollector builds a streaming collector. Pass it to
// pipeline.RunStream, then call Finish with the run's cycle count.
func NewCollector(cfg CollectorConfig) *Collector {
	c := &Collector{cfg: cfg}
	if cfg.Commits > 0 {
		// A run overshoots its commit target by up to IssueWidth-1 commits
		// (the final multi-issue cycle retires whole); the slack keeps the
		// very last appends from reallocating the whole log.
		n := cfg.Commits + 16
		c.log = make([]isa.Inst, 0, n)
		c.waits = make([]uint64, 0, n)
		if cfg.RegFile {
			c.commitCycles = make([]uint64, 0, n)
		}
	}
	return c
}

// OnCommit implements pipeline.Sink.
func (c *Collector) OnCommit(in isa.Inst, enq, issue uint64) {
	c.log = append(c.log, in)
	c.waits = append(c.waits, issue-enq)
	if c.cfg.RegFile {
		c.commitCycles = append(c.commitCycles, issue)
	}
}

// OnResidency implements pipeline.Sink: one closed IQ interval.
func (c *Collector) OnResidency(r pipeline.Residency) {
	occ := r.Occupancy()
	if occ == 0 {
		return
	}
	if !r.Issued {
		c.iq.addNeverRead(occ)
		return
	}
	wait := r.Issue - r.Enq
	linger := r.Evict - r.Issue
	if r.Inst.WrongPath {
		c.iq.addRead(wait, linger, CatWrongPath, r.Inst.Dest != isa.RegNone, r.Inst.Class.IsControl())
		return
	}
	// Correct path: this entry committed, so its wait is already queued
	// under its Seq (OnCommit) for classification in Finish; only the
	// category-independent linger is charged here.
	c.iq.addRead(0, linger, CatACE, false, false)
}

// OnFrontEnd implements pipeline.Sink: one closed fetch-buffer interval.
func (c *Collector) OnFrontEnd(r pipeline.Residency) {
	if !c.cfg.FrontEnd {
		return
	}
	occ := r.Occupancy()
	if occ == 0 {
		return
	}
	if !r.Issued {
		c.fe.addNeverRead(occ)
		return
	}
	// Delivered to decode: the whole occupancy is pre-read exposure
	// (delivery is the read point, so there is no linger).
	wait := r.Issue - r.Enq
	if r.Inst.WrongPath {
		c.fe.addRead(wait, 0, CatWrongPath, r.Inst.Dest != isa.RegNone, r.Inst.Class.IsControl())
		return
	}
	c.fePending = append(c.fePending, pendingRead{
		seq:       r.Inst.Seq,
		wait:      wait,
		hasDest:   r.Inst.Dest != isa.RegNone,
		isControl: r.Inst.Class.IsControl(),
	})
}

// OnStoreBuffer implements pipeline.Sink: one drained (or run-end clipped)
// store-buffer interval. Only issued correct-path stores reach the buffer,
// so every interval's category resolves from the commit log in Finish.
func (c *Collector) OnStoreBuffer(r pipeline.Residency) {
	if !c.cfg.StoreBuffer {
		return
	}
	occ := r.Occupancy()
	if occ == 0 {
		return
	}
	c.sbPending = append(c.sbPending, pendingOcc{seq: r.Inst.Seq, occ: occ})
}

// OnROB implements pipeline.OOOSink: one closed reorder-buffer interval.
// Read entries (retired in order) are always correct-path, so their
// category resolves from the commit log in Finish; unread entries were
// flushed, squashed or clipped and are benign.
func (c *Collector) OnROB(r pipeline.Residency) {
	if c.cfg.ROBSize == 0 {
		return
	}
	occ := r.Occupancy()
	if occ == 0 {
		return
	}
	if !r.Issued {
		c.rob.addNeverRead(occ)
		return
	}
	// Retire is the read point and the eviction (Issue == Evict): the whole
	// occupancy is pre-read wait, with no post-read linger.
	c.robPending = append(c.robPending, pendingRead{
		seq:       r.Inst.Seq,
		wait:      occ,
		hasDest:   r.Inst.Dest != isa.RegNone,
		isControl: r.Inst.Class.IsControl(),
	})
}

// OnLSQ implements pipeline.OOOSink: one closed load/store-queue interval.
// Read entries (retired loads and predicated-false stores, drained stores)
// are always correct-path.
func (c *Collector) OnLSQ(r pipeline.Residency) {
	if c.cfg.LSQSize == 0 {
		return
	}
	occ := r.Occupancy()
	if occ == 0 {
		return
	}
	if !r.Issued {
		c.lsq.addNeverRead(occ)
		return
	}
	c.lsqPending = append(c.lsqPending, pendingOcc{seq: r.Inst.Seq, occ: occ})
}

// Finish runs the deadness analysis over the collected commit log, settles
// every deferred charge, and returns the reports. cycles is the run length
// (Stats.Cycles). The Collector must not receive further events.
func (c *Collector) Finish(cycles uint64) *Reports {
	c.sortIfNeeded()
	dead := AnalyzeDeadness(c.log)

	// Settle the committed IQ waits. The log is in ascending-Seq order, so
	// dead.cats is index-aligned with it (no lookups needed).
	for i := range c.log {
		in := &c.log[i]
		c.iq.addRead(c.waits[i], 0, dead.cats[i], in.Dest != isa.RegNone, in.Class.IsControl())
	}
	c.iq.Cycles = cycles
	c.iq.Entries = c.cfg.IQSize
	c.iq.BitsPer = isa.EntryPayloadBits
	c.iq.Dead = dead
	c.iq.finalize()
	out := &Reports{IQ: &c.iq, Dead: dead}

	if c.cfg.FrontEnd {
		for i := range c.fePending {
			p := &c.fePending[i]
			c.fe.addRead(p.wait, 0, dead.OfSeq(p.seq), p.hasDest, p.isControl)
		}
		c.fe.Cycles = cycles
		c.fe.Entries = c.cfg.FrontEndCap
		c.fe.BitsPer = isa.EntryPayloadBits
		c.fe.Dead = dead
		c.fe.finalize()
		out.FrontEnd = &c.fe
	}
	if c.cfg.StoreBuffer {
		for i := range c.sbPending {
			p := &c.sbPending[i]
			c.sb.add(p.occ, dead.OfSeq(p.seq))
		}
		c.sb.Cycles = cycles
		c.sb.Entries = c.cfg.StoreBufferCap
		c.sb.finalize()
		out.StoreBuffer = &c.sb
	}
	if c.cfg.RegFile {
		out.RegFile = analyzeRegFileLog(c.log, c.commitCycles, cycles, dead)
	}
	if c.cfg.ROBSize > 0 {
		for i := range c.robPending {
			p := &c.robPending[i]
			c.rob.addRead(p.wait, 0, dead.OfSeq(p.seq), p.hasDest, p.isControl)
		}
		c.rob.Cycles = cycles
		c.rob.Entries = c.cfg.ROBSize
		c.rob.BitsPer = isa.EntryPayloadBits
		c.rob.Dead = dead
		c.rob.finalize()
		out.ROB = &c.rob
	}
	if c.cfg.LSQSize > 0 {
		for i := range c.lsqPending {
			p := &c.lsqPending[i]
			c.lsq.add(p.occ, dead.OfSeq(p.seq))
		}
		c.lsq.Cycles = cycles
		c.lsq.Entries = c.cfg.LSQSize
		c.lsq.finalize()
		out.LSQ = &c.lsq
	}
	return out
}

// CommitLog returns the collected committed stream. After Finish it is in
// program order (ascending Seq) — the order every downstream analysis
// expects.
func (c *Collector) CommitLog() []isa.Inst { return c.log }

// sortIfNeeded restores program order to the commit log (and its parallel
// arrays) after an out-of-order run appended commits in dataflow order.
func (c *Collector) sortIfNeeded() {
	sorted := true
	for i := 1; i < len(c.log); i++ {
		if c.log[i].Seq < c.log[i-1].Seq {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	order := make([]int, len(c.log))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return c.log[order[a]].Seq < c.log[order[b]].Seq })
	log := make([]isa.Inst, len(c.log))
	waits := make([]uint64, len(c.waits))
	for i, j := range order {
		log[i] = c.log[j]
		waits[i] = c.waits[j]
	}
	c.log, c.waits = log, waits
	if c.commitCycles != nil {
		cycles := make([]uint64, len(c.commitCycles))
		for i, j := range order {
			cycles[i] = c.commitCycles[j]
		}
		c.commitCycles = cycles
	}
}
