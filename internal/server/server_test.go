package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"softerror/internal/core"
	"softerror/internal/par"
	"softerror/internal/spec"
	"softerror/internal/sweep"
)

// testCommits keeps simulations short; it matches the budget the repro and
// sweep command tests use.
const testCommits = 8000

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// do runs one request through the handler and returns the recorder.
func do(s *Server, method, path string, body any) *httptest.ResponseRecorder {
	var rd *bytes.Reader
	if body != nil {
		b, _ := json.Marshal(body)
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// waitFor polls cond until true or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func evalBody(experiment string, csv bool) EvalRequest {
	return EvalRequest{
		Experiment: experiment,
		Benches:    []string{"gzip-graphic", "ammp"},
		Commits:    testCommits,
		CSV:        csv,
	}
}

func sweepBody(commits uint64) SweepRequest {
	return SweepRequest{
		Benches:  []string{"gzip-graphic"},
		Policies: []string{"baseline", "squash-l1"},
		Commits:  commits,
	}
}

func submitSweep(t *testing.T, s *Server, req SweepRequest) SweepAccepted {
	t.Helper()
	w := do(s, "POST", "/v1/sweep", req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("sweep submit: status %d, body %s", w.Code, w.Body)
	}
	var acc SweepAccepted
	if err := json.Unmarshal(w.Body.Bytes(), &acc); err != nil {
		t.Fatalf("sweep accept body: %v", err)
	}
	return acc
}

func jobStatus(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	w := do(s, "GET", "/v1/jobs/"+id, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("job status: %d %s", w.Code, w.Body)
	}
	var st JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	var st JobStatus
	waitFor(t, "job "+id+" terminal", func() bool {
		st = jobStatus(t, s, id)
		return st.State.terminal()
	})
	return st
}

// TestEvalCacheHitByteIdentity pins the cache contract: the second
// identical request is served from cache with the exact bytes of the
// first, and X-Cache says which path answered.
func TestEvalCacheHitByteIdentity(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, csv := range []bool{false, true} {
		first := do(s, "POST", "/v1/eval", evalBody("table1", csv))
		if first.Code != http.StatusOK {
			t.Fatalf("csv=%v: first eval: %d %s", csv, first.Code, first.Body)
		}
		if got := first.Header().Get("X-Cache"); got != "miss" {
			t.Errorf("csv=%v: first X-Cache = %q, want miss", csv, got)
		}
		second := do(s, "POST", "/v1/eval", evalBody("table1", csv))
		if second.Code != http.StatusOK {
			t.Fatalf("csv=%v: second eval: %d %s", csv, second.Code, second.Body)
		}
		if got := second.Header().Get("X-Cache"); got != "hit" {
			t.Errorf("csv=%v: second X-Cache = %q, want hit", csv, got)
		}
		if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
			t.Errorf("csv=%v: cache hit body differs from miss body", csv)
		}
	}
	if got := s.metrics.cacheHits.Value(); got != 2 {
		t.Errorf("cache_hits = %d, want 2", got)
	}
}

// TestEvalValidation pins the 400 surface.
func TestEvalValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"experiment":"table1","bogus":1}`},
		{"unknown experiment", `{"experiment":"nonsense"}`},
		{"unknown bench", `{"experiment":"table1","benches":["nosuch"]}`},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("POST", "/v1/eval", strings.NewReader(tc.body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, w.Code)
		}
	}
}

// TestEvalOverflow429 saturates the eval gate with a blocked computation
// and checks the next distinct request is shed with 429 instead of queued.
func TestEvalOverflow429(t *testing.T) {
	release := make(chan struct{})
	par.SetChaos(func(ctx context.Context, i, attempt int) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	t.Cleanup(func() { par.SetChaos(nil) })

	s := newTestServer(t, Config{MaxEvals: 1})
	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { firstDone <- do(s, "POST", "/v1/eval", evalBody("table1", false)) }()
	waitFor(t, "first eval in flight", func() bool {
		return s.metrics.evalsInFlight.Value() == 1
	})

	w := do(s, "POST", "/v1/eval", evalBody("breakdown", false))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow eval: status %d, want 429 (body %s)", w.Code, w.Body)
	}
	if got := s.metrics.rejected.Value(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	close(release)
	if w := <-firstDone; w.Code != http.StatusOK {
		t.Fatalf("blocked eval after release: %d %s", w.Code, w.Body)
	}
}

// TestEvalSingleFlight sends two concurrent identical cache misses and
// checks only one computation ran; the waiter shares its bytes.
func TestEvalSingleFlight(t *testing.T) {
	release := make(chan struct{})
	par.SetChaos(func(ctx context.Context, i, attempt int) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	t.Cleanup(func() { par.SetChaos(nil) })

	s := newTestServer(t, Config{})
	results := make(chan *httptest.ResponseRecorder, 2)
	go func() { results <- do(s, "POST", "/v1/eval", evalBody("table1", false)) }()
	waitFor(t, "first eval in flight", func() bool {
		return s.metrics.evalsInFlight.Value() == 1
	})
	go func() { results <- do(s, "POST", "/v1/eval", evalBody("table1", false)) }()
	waitFor(t, "second request joined the flight", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.flights) == 1
	})
	close(release)

	a, b := <-results, <-results
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("statuses %d, %d", a.Code, b.Code)
	}
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Error("single-flighted bodies differ")
	}
	if got := s.metrics.cacheMisses.Value(); got != 1 {
		t.Errorf("cache_misses = %d, want 1 (computation must be shared)", got)
	}
}

// TestSweepLifecycle runs a small grid to completion through the HTTP
// surface: accept, live events, status, and a CSV byte-identical to the
// library's own writer (the same bytes cmd/sweep writes).
func TestSweepLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	acc := submitSweep(t, s, sweepBody(testCommits))
	if acc.Total != 2 {
		t.Fatalf("total = %d, want 2", acc.Total)
	}

	// Stream events until the terminal one; seq must be dense from 0 and
	// the stream must end at a terminal state.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + acc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last Event
	sc := bufio.NewScanner(resp.Body)
	for i := 0; sc.Scan(); i++ {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if last.Seq != i {
			t.Fatalf("event %d has seq %d", i, last.Seq)
		}
	}
	if !last.State.terminal() {
		t.Fatalf("stream ended at %q, want terminal", last.State)
	}
	if last.State != JobDone || last.Done != 2 {
		t.Fatalf("terminal event %+v, want done 2/2", last)
	}

	st := jobStatus(t, s, acc.ID)
	if st.State != JobDone || st.Done != st.Total {
		t.Fatalf("status %+v, want done", st)
	}

	// The served CSV must match the shared writer over a direct run.
	w := do(s, "GET", "/v1/jobs/"+acc.ID+"/csv", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("csv: %d %s", w.Code, w.Body)
	}
	g := directGrid(t, testCommits)
	rows, err := g.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sweep.WriteCSV(&want, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Body.Bytes(), want.Bytes()) {
		t.Errorf("served CSV differs from sweep.WriteCSV:\nserved:\n%s\nwant:\n%s", w.Body, want.String())
	}
}

// directGrid mirrors sweepBody as a library value.
func directGrid(t *testing.T, commits uint64) *sweep.Grid {
	t.Helper()
	benches, err := spec.ParseList("gzip-graphic")
	if err != nil {
		t.Fatal(err)
	}
	return &sweep.Grid{
		Benches:    benches,
		Policies:   []core.Policy{core.PolicyBaseline, core.PolicySquashL1},
		IQSizes:    []int{64},
		OutOfOrder: []bool{false},
		Commits:    commits,
		Workers:    2,
	}
}

// TestSweepDedup: the identical grid resubmitted while its job is live
// returns the existing job instead of burning a second campaign.
func TestSweepDedup(t *testing.T) {
	s := newTestServer(t, Config{})
	a := submitSweep(t, s, sweepBody(testCommits))
	b := submitSweep(t, s, sweepBody(testCommits))
	if b.ID != a.ID || !b.Deduplicated {
		t.Fatalf("resubmission got %+v, want dedup onto %s", b, a.ID)
	}
	waitTerminal(t, s, a.ID)
}

// TestSweepCostAdmission: the static price is an admission pre-filter —
// grids over the MaxEstMcycles budget are rejected with 422 (carrying the
// offending estimate) before any cell simulates, counted by the
// sweeps_rejected_cost expvar, while in-budget submissions carry an
// explicit priced flag alongside the estimate.
func TestSweepCostAdmission(t *testing.T) {
	s := newTestServer(t, Config{MaxEstMcycles: 1e-6})
	w := do(s, "POST", "/v1/sweep", sweepBody(testCommits))
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget sweep: status %d, want 422 (body %s)", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "estimated Mcycles") {
		t.Fatalf("422 body lacks the offending estimate: %s", w.Body)
	}
	if got := s.metrics.rejectedCost.Value(); got != 1 {
		t.Fatalf("sweeps_rejected_cost = %d, want 1", got)
	}
	if got := s.metrics.jobsQueued.Value(); got != 0 {
		t.Fatalf("rejected sweep queued a job (jobs_queued = %d)", got)
	}

	big := newTestServer(t, Config{MaxEstMcycles: 1e12})
	acc := submitSweep(t, big, sweepBody(testCommits))
	if !acc.Priced || acc.EstimatedMcycles <= 0 {
		t.Fatalf("accepted sweep %+v, want priced with a positive estimate", acc)
	}
	waitTerminal(t, big, acc.ID)
}

// TestSweepQueueOverflow fills the single slot and the single queue seat,
// then checks the third distinct grid is rejected with 429.
func TestSweepQueueOverflow(t *testing.T) {
	release := make(chan struct{})
	par.SetChaos(func(ctx context.Context, i, attempt int) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	t.Cleanup(func() { par.SetChaos(nil) })

	s := newTestServer(t, Config{MaxJobs: 1, MaxQueue: 1})
	running := submitSweep(t, s, sweepBody(testCommits))
	waitFor(t, "first job running", func() bool {
		return s.metrics.jobsInFlight.Value() == 1
	})
	queued := submitSweep(t, s, sweepBody(testCommits+1000))

	w := do(s, "POST", "/v1/sweep", sweepBody(testCommits+2000))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("third sweep: status %d, want 429 (body %s)", w.Code, w.Body)
	}

	close(release)
	for _, id := range []string{running.ID, queued.ID} {
		if st := waitTerminal(t, s, id); st.State != JobDone {
			t.Errorf("job %s ended %q, want done", id, st.State)
		}
	}
}

// TestDrainInterruptsAndResumes is the drain acceptance test: a running
// job is interrupted at drain, its completed cells survive in the
// checkpoint, no accepted job is dropped (every job ends terminal), and
// resubmitting the identical grid on a fresh server resumes and finishes
// with the exact bytes of an uninterrupted run.
func TestDrainInterruptsAndResumes(t *testing.T) {
	dir := t.TempDir()
	cell0Done := make(chan struct{})
	var once sync.Once
	par.SetChaos(func(ctx context.Context, i, attempt int) error {
		if i == 0 {
			once.Do(func() { close(cell0Done) })
			return nil // cell 0 completes and lands in the checkpoint
		}
		<-ctx.Done() // cell 1 hangs until drain cancels the job
		return ctx.Err()
	})
	t.Cleanup(func() { par.SetChaos(nil) })

	s := newTestServer(t, Config{CheckpointDir: dir})
	acc := submitSweep(t, s, sweepBody(testCommits))
	<-cell0Done
	waitFor(t, "cell 0 checkpointed", func() bool {
		return jobStatus(t, s, acc.ID).Done >= 1
	})

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := jobStatus(t, s, acc.ID)
	if st.State != JobInterrupted {
		t.Fatalf("after drain job is %q, want interrupted", st.State)
	}
	if st.Checkpoint == "" {
		t.Fatal("interrupted job reports no checkpoint")
	}
	// Drained servers reject new work.
	if w := do(s, "POST", "/v1/eval", evalBody("table1", false)); w.Code != http.StatusServiceUnavailable {
		t.Errorf("eval during drain: %d, want 503", w.Code)
	}
	if w := do(s, "POST", "/v1/sweep", sweepBody(testCommits)); w.Code != http.StatusServiceUnavailable {
		t.Errorf("sweep during drain: %d, want 503", w.Code)
	}
	if w := do(s, "GET", "/healthz", nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", w.Code)
	}

	// Fresh server, same checkpoint dir, chaos cleared: the identical grid
	// resumes from the surviving cell and finishes byte-identically to an
	// uninterrupted run.
	par.SetChaos(nil)
	s2 := newTestServer(t, Config{CheckpointDir: dir})
	acc2 := submitSweep(t, s2, sweepBody(testCommits))
	if fin := waitTerminal(t, s2, acc2.ID); fin.State != JobDone {
		t.Fatalf("resumed job ended %q, want done", fin.State)
	}
	w := do(s2, "GET", "/v1/jobs/"+acc2.ID+"/csv", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("resumed csv: %d %s", w.Code, w.Body)
	}
	rows, err := directGrid(t, testCommits).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sweep.WriteCSV(&want, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Body.Bytes(), want.Bytes()) {
		t.Error("resumed run's CSV differs from an uninterrupted run")
	}
}

// TestDrainWaitsWithoutCheckpoint: with no checkpoint dir, drain lets the
// accepted job finish naturally — it ends done, not interrupted.
func TestDrainWaitsWithoutCheckpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	acc := submitSweep(t, s, sweepBody(testCommits))
	dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := jobStatus(t, s, acc.ID); st.State != JobDone {
		t.Fatalf("after drain job is %q, want done", st.State)
	}
}

// TestEventsReplayAfterCompletion: reconnecting to a finished job's event
// stream replays the full history and terminates.
func TestEventsReplayAfterCompletion(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	acc := submitSweep(t, s, sweepBody(testCommits))
	waitTerminal(t, s, acc.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + acc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) < 3 { // queued, running, ..., done
		t.Fatalf("replay returned %d events, want at least 3", len(events))
	}
	if events[0].State != JobQueued || !events[len(events)-1].State.terminal() {
		t.Fatalf("replay spans %q..%q, want queued..terminal",
			events[0].State, events[len(events)-1].State)
	}
}

// TestUnknownJob404s.
func TestUnknownJob404s(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events", "/v1/jobs/nope/csv"} {
		if w := do(s, "GET", path, nil); w.Code != http.StatusNotFound {
			t.Errorf("%s: %d, want 404", path, w.Code)
		}
	}
}

// TestMetricsEndpoint: the expvar map renders as JSON and carries the
// advertised keys.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	do(s, "POST", "/v1/eval", evalBody("table1", false))
	w := do(s, "GET", "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, w.Body)
	}
	for _, key := range []string{
		"requests", "rejected", "cache_hits", "cache_misses",
		"evals_in_flight", "jobs_in_flight", "jobs_queued",
		"jobs_done", "jobs_failed", "jobs_interrupted",
		"cache_entries", "cache_bytes", "mcycles_simulated", "mcycles_per_sec",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if m["mcycles_simulated"].(float64) <= 0 {
		t.Error("mcycles_simulated did not advance after an eval")
	}
}

// TestConcurrentLoad hammers the full surface from many goroutines; run
// under -race this is the data-race acceptance test. Every response must
// be a deliberate status (200/202/429), never a 5xx.
func TestConcurrentLoad(t *testing.T) {
	s := newTestServer(t, Config{MaxJobs: 2, MaxQueue: 2, MaxEvals: 2})
	var wg sync.WaitGroup
	var mu sync.Mutex
	bad := map[int]int{}
	evals := []EvalRequest{evalBody("table1", false), evalBody("table1", true), evalBody("breakdown", false)}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				var w *httptest.ResponseRecorder
				switch i % 3 {
				case 0:
					w = do(s, "POST", "/v1/eval", evals[(g+i)%len(evals)])
				case 1:
					w = do(s, "POST", "/v1/sweep", sweepBody(testCommits+uint64(g%2)*1000))
				default:
					w = do(s, "GET", "/metrics", nil)
				}
				switch w.Code {
				case http.StatusOK, http.StatusAccepted, http.StatusTooManyRequests:
				default:
					mu.Lock()
					bad[w.Code]++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if len(bad) != 0 {
		t.Fatalf("unexpected status codes under load: %v", bad)
	}
	// Let accepted jobs settle so Close doesn't race the runners.
	dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after load: %v", err)
	}
}

// TestCacheEviction pins the byte-budget LRU behaviour.
func TestCacheEviction(t *testing.T) {
	c := NewCache(10)
	c.Put("a", "t", []byte("aaaa"))
	c.Put("b", "t", []byte("bbbb"))
	if _, _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	// a is now most recent; adding c (4 bytes) must evict b.
	c.Put("c", "t", []byte("cccc"))
	if _, _, ok := c.Get("b"); ok {
		t.Error("b not evicted")
	}
	if _, _, ok := c.Get("a"); !ok {
		t.Error("a (recently used) evicted")
	}
	if c.Bytes() > 10 {
		t.Errorf("cache over budget: %d bytes", c.Bytes())
	}
	// Oversize bodies are not cached.
	c.Put("huge", "t", bytes.Repeat([]byte("x"), 11))
	if _, _, ok := c.Get("huge"); ok {
		t.Error("oversize body cached")
	}
}

// TestJobIDFormat pins the serving-handle format the docs advertise.
func TestJobIDFormat(t *testing.T) {
	s := newTestServer(t, Config{})
	acc := submitSweep(t, s, sweepBody(testCommits))
	if want := fmt.Sprintf("job-%06d", 1); acc.ID != want {
		t.Errorf("first job id %q, want %q", acc.ID, want)
	}
	waitTerminal(t, s, acc.ID)
}
