package pipeline

import "softerror/internal/isa"

// This file is the batched mirror of ooo.go: the out-of-order family's
// structures in compact (ref, seq) form, phase-identical to the solo
// engine so a lane's event stream and statistics stay byte-identical to a
// solo run of the same configuration. Entry content is read back through
// the shared BatchSource exactly where the solo engine reads its inlined
// isa.Inst copies.

// brobEntry is one compact reorder-buffer slot.
type brobEntry struct {
	enq        uint64
	completeAt uint64 // 0 until issued; earliest cycle the entry may retire
	seq        uint64
	ref        BatchRef
	mem        bool // has an LSQ twin to settle at retire
}

// blsqEntry is one compact load/store-queue slot.
type blsqEntry struct {
	addr    uint64
	enq     uint64
	drainAt uint64 // nonzero once a retired store is scheduled to drain
	seq     uint64
	ref     BatchRef
	store   bool // correct-path non-predicated-false store: drains at retire
	live    bool // executed store currently claiming the forwarding window
}

// BatchOOOSink is the compact counterpart of OOOSink: the out-of-order
// structures' events with the (ref, seq) pair instead of a materialised
// instruction. Every interval's read point coincides with its eviction
// (retire or drain), so evict carries both; read=false marks copies
// flushed, squashed or clipped without a read.
type BatchOOOSink interface {
	BatchROB(ref BatchRef, seq, enq, evict uint64, read bool)
	BatchLSQ(ref BatchRef, seq, enq, evict uint64, read bool)
}

// feContent returns the instruction content behind a front-end entry: the
// memoised body pointer for correct-path fetches, the shared wrong-path
// draw otherwise.
func (ln *batchLane) feContent(fe *bfeEntry) *isa.Inst {
	if fe.in != nil {
		return fe.in
	}
	return ln.src.Wrong(int(fe.seq) - fe.ref.Body())
}

// lanePC reconstructs the lane-relabeled PC the solo engine would hold
// for this fetch — the TAGE hash input (see BatchRef.Inst).
func (ln *batchLane) lanePC(in *isa.Inst, fe *bfeEntry) uint64 {
	n := fe.ref.Body()
	d := fe.seq - uint64(n)
	if fe.ref.Wrong() {
		return ln.inst(n).PC + 4*d
	}
	return in.PC + 4*d
}

// oooAdmit mirrors Pipeline.oooAdmit.
func (ln *batchLane) oooAdmit(in *isa.Inst) bool {
	if ln.rob.n >= ln.cfg.ROBSize {
		return false
	}
	if (in.Class == isa.ClassLoad || in.Class == isa.ClassStore) && ln.lsq.n >= ln.cfg.LSQSize {
		return false
	}
	return true
}

// oooDispatch mirrors Pipeline.oooDispatch.
func (ln *batchLane) oooDispatch(in *isa.Inst, fe *bfeEntry, now uint64) {
	mem := in.Class == isa.ClassLoad || in.Class == isa.ClassStore
	ln.rob.push(brobEntry{enq: now, seq: fe.seq, ref: fe.ref, mem: mem})
	if mem {
		ln.lsq.push(blsqEntry{
			addr: in.Addr, enq: now, seq: fe.seq, ref: fe.ref,
			store: in.Class == isa.ClassStore && !fe.ref.Wrong() && !in.PredFalse,
		})
	}
	if in.Class.IsControl() {
		ln.stats.TAGEReadCycles += ln.tage.touch(ln.lanePC(in, fe), now)
		ln.tage.note(in.Taken)
	}
}

// executeOOO mirrors Pipeline.executeOOO.
func (ln *batchLane) executeOOO(e *biqEntry, now uint64) {
	e.issued = true
	e.issue = now
	e.evictAt = now + uint64(ln.cfg.ReplayWindow)

	done := now + 1 // earliest retire; refined per class below

	if e.ref.Wrong() {
		ln.robComplete(e.seq, done)
		return
	}
	in := e.in

	ln.stats.Commits++
	if ln.sink != nil {
		ln.sink.BatchCommit(e.ref, e.seq, e.enq, now)
	}

	if in.PredFalse {
		ln.robComplete(e.seq, done)
		return
	}

	switch in.Class {
	case isa.ClassALU:
		done = now + uint64(ln.cfg.ALULatency)
		ln.writeDest(in, done)
	case isa.ClassFPU:
		done = now + uint64(ln.cfg.FPLatency)
		ln.writeDest(in, done)
	case isa.ClassLoad:
		if ln.lsqHolds(in.Addr) {
			ln.stats.ForwardedLoads++
			ln.writeDest(in, now+1)
			break
		}
		res := ln.mem.Access(in.Addr, false)
		ln.stats.LoadsByLevel[res.Level]++
		done = now + uint64(res.Latency)
		ln.writeDest(in, done)
		ln.maybeTrigger(e.seq, res, now)
	case isa.ClassStore:
		ln.lsqClaim(e.seq)
	case isa.ClassIO:
		ln.mem.Access(in.Addr, true)
	case isa.ClassPrefetch:
		ln.mem.Prefetch(in.Addr)
	case isa.ClassBranch, isa.ClassCall, isa.ClassReturn:
		if in.Mispred && ln.wrongMode && ln.wrongSrcSeq == e.seq {
			ln.resolveAt = now + uint64(ln.cfg.BranchResolveLatency)
			done = ln.resolveAt
		}
	case isa.ClassNop, isa.ClassHint:
	}
	ln.robComplete(e.seq, done)
}

// robComplete mirrors Pipeline.robComplete.
func (ln *batchLane) robComplete(seq, done uint64) {
	for i := 0; i < ln.rob.n; i++ {
		if e := ln.rob.at(i); e.completeAt == 0 && e.seq == seq {
			e.completeAt = done
			return
		}
	}
}

// retire mirrors Pipeline.retire.
func (ln *batchLane) retire(now uint64) {
	n := 0
	for n < ln.rob.n && n < ln.cfg.RetireWidth {
		e := ln.rob.at(n)
		if e.completeAt == 0 || now < e.completeAt {
			break
		}
		read := !e.ref.Wrong()
		ln.recordROB(e, now, read)
		if e.mem {
			ln.lsqRetire(e.seq, now, read)
		}
		n++
	}
	if n > 0 {
		ln.rob.pop(n)
	}
}

// lsqRetire mirrors Pipeline.lsqRetire. The store flag pre-encodes the
// solo engine's "executed correct-path store" test.
func (ln *batchLane) lsqRetire(seq, now uint64, read bool) {
	for i := 0; i < ln.lsq.n; i++ {
		e := ln.lsq.at(i)
		if e.seq != seq {
			continue
		}
		if read && e.store {
			e.drainAt = now + uint64(ln.cfg.StoreDrainLatency)
			return
		}
		ln.recordLSQ(e, now, read)
		ln.lsqRemove(i)
		return
	}
}

// drainLSQ mirrors Pipeline.drainLSQ.
func (ln *batchLane) drainLSQ(now uint64) {
	if ln.lsq.n == 0 {
		return
	}
	e := ln.lsq.at(0)
	if e.drainAt == 0 || now < e.drainAt {
		return
	}
	ln.mem.Access(e.addr, true)
	ln.recordLSQ(e, now, true)
	ln.lsq.pop(1)
}

// oooFlushWrong mirrors Pipeline.oooFlushWrong.
func (ln *batchLane) oooFlushWrong(now uint64) {
	kept := 0
	for i := 0; i < ln.rob.n; i++ {
		e := ln.rob.at(i)
		if e.ref.Wrong() {
			ln.recordROB(e, now, false)
			continue
		}
		if kept != i {
			*ln.rob.at(kept) = *e
		}
		kept++
	}
	ln.rob.n = kept
	kept = 0
	for i := 0; i < ln.lsq.n; i++ {
		e := ln.lsq.at(i)
		if e.ref.Wrong() {
			ln.recordLSQ(e, now, false)
			continue
		}
		if kept != i {
			*ln.lsq.at(kept) = *e
		}
		kept++
	}
	ln.lsq.n = kept
}

// oooSquash mirrors Pipeline.oooSquash.
func (ln *batchLane) oooSquash(now uint64, ev squashEvent) {
	kept := 0
	for i := 0; i < ln.rob.n; i++ {
		e := ln.rob.at(i)
		if e.completeAt != 0 || e.seq <= ev.loadSeq {
			if kept != i {
				*ln.rob.at(kept) = *e
			}
			kept++
			continue
		}
		ln.recordROB(e, now, false)
		if e.mem {
			ln.lsqRemoveSeq(e.seq, now)
		}
	}
	ln.rob.n = kept
}

// lsqRemoveSeq mirrors Pipeline.lsqRemove.
func (ln *batchLane) lsqRemoveSeq(seq, now uint64) {
	for i := 0; i < ln.lsq.n; i++ {
		if e := ln.lsq.at(i); e.seq == seq {
			ln.recordLSQ(e, now, false)
			ln.lsqRemove(i)
			return
		}
	}
}

// lsqRemove closes the ring over the removed slot i, preserving order.
func (ln *batchLane) lsqRemove(i int) {
	for j := i + 1; j < ln.lsq.n; j++ {
		*ln.lsq.at(j - 1) = *ln.lsq.at(j)
	}
	ln.lsq.n--
}

// oooFlushEnd mirrors Pipeline.oooFlushEnd.
func (ln *batchLane) oooFlushEnd(cycle uint64) {
	for i := 0; i < ln.rob.n; i++ {
		ln.recordROB(ln.rob.at(i), cycle, false)
	}
	for i := 0; i < ln.lsq.n; i++ {
		e := ln.lsq.at(i)
		ln.recordLSQ(e, cycle, e.drainAt != 0)
	}
}

// oooEventCycle mirrors Pipeline.oooEventCycle.
func (ln *batchLane) oooEventCycle(horizon uint64) uint64 {
	if ln.rob.n > 0 {
		if at := ln.rob.at(0).completeAt; at != 0 && at < horizon {
			horizon = at
		}
	}
	if ln.lsq.n > 0 {
		if at := ln.lsq.at(0).drainAt; at != 0 && at < horizon {
			horizon = at
		}
	}
	return horizon
}

// lsqHolds mirrors the solo engine's refcounted lsqAddrs map: a live
// (executed, undrained) store entry covering addr forwards to loads.
func (ln *batchLane) lsqHolds(addr uint64) bool {
	for i := 0; i < ln.lsq.n; i++ {
		if e := ln.lsq.at(i); e.live && e.addr == addr {
			return true
		}
	}
	return false
}

// lsqClaim opens the forwarding window of the store that just executed.
func (ln *batchLane) lsqClaim(seq uint64) {
	for i := 0; i < ln.lsq.n; i++ {
		if e := ln.lsq.at(i); e.seq == seq {
			e.live = true
			return
		}
	}
}

func (ln *batchLane) recordROB(e *brobEntry, evict uint64, read bool) {
	if ln.oooSink == nil {
		return
	}
	ln.oooSink.BatchROB(e.ref, e.seq, e.enq, evict, read)
}

func (ln *batchLane) recordLSQ(e *blsqEntry, evict uint64, read bool) {
	if ln.oooSink == nil {
		return
	}
	ln.oooSink.BatchLSQ(e.ref, e.seq, e.enq, evict, read)
}
