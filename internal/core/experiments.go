package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"softerror/internal/ace"
	"softerror/internal/cache"
	"softerror/internal/checkpoint"
	"softerror/internal/fault"
	"softerror/internal/par"
	"softerror/internal/pipeline"
	"softerror/internal/serate"
	"softerror/internal/spec"
	"softerror/internal/workload"
)

// Suite evaluates a benchmark roster under multiple policies, memoising
// each (benchmark, policy) simulation so that the experiment drivers —
// which reuse baseline and squash runs heavily — pay for each run once.
//
// A Suite is safe for concurrent use: the memo is mutex-guarded and
// single-flighted, so any number of drivers racing on the same cell execute
// exactly one simulation. Prewarm fans all cells of an artefact out over the
// worker pool; the aggregation loops in the drivers then read memoised
// results in roster order, which keeps every artefact byte-identical at any
// worker count.
type Suite struct {
	Benches []spec.Benchmark
	// Commits is the per-run commit budget.
	Commits uint64
	// Workers bounds Prewarm's parallelism; <= 0 means the par package
	// default (GOMAXPROCS, or the -j flag of the calling command).
	Workers int
	// Ctx, when non-nil, threads cancellation into every simulation the
	// suite runs: SIGINT-aware drivers set it so an interrupt aborts within
	// one simulation. Nil means context.Background().
	Ctx context.Context
	// OutOfOrder selects the out-of-order core family (ROB, LSQ, TAGE)
	// for every simulation the suite runs. Set it before the first
	// Result/Prewarm call: the memo does not key on it.
	OutOfOrder bool

	mu      sync.Mutex
	results map[suiteKey]*suiteCell
	sims    atomic.Uint64
}

// ctx resolves the suite's cancellation context.
func (s *Suite) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// suiteKey identifies one memo cell. A comparable struct key keeps the hot
// lookup allocation-free (no fmt formatting) and cannot collide the way a
// formatted string could.
type suiteKey struct {
	name string
	pol  Policy
}

// suiteCell single-flights one simulation: the first caller to claim the
// cell runs it and closes done; every other caller blocks on done and reads
// the shared outcome.
type suiteCell struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewSuite builds a Suite over the given roster (nil means spec.All()).
func NewSuite(benches []spec.Benchmark, commits uint64) *Suite {
	if benches == nil {
		benches = spec.All()
	}
	if commits == 0 {
		commits = DefaultCommits
	}
	return &Suite{
		Benches: benches,
		Commits: commits,
		results: make(map[suiteKey]*suiteCell),
	}
}

// Result returns the memoised simulation of one benchmark under a policy,
// simulating it on first request. Concurrent calls for the same cell block
// until the one executing simulation finishes.
func (s *Suite) Result(b spec.Benchmark, pol Policy) (*Result, error) {
	key := suiteKey{name: b.Name, pol: pol}
	s.mu.Lock()
	cell, ok := s.results[key]
	if ok {
		s.mu.Unlock()
		<-cell.done
		return cell.res, cell.err
	}
	cell = &suiteCell{done: make(chan struct{})}
	s.results[key] = cell
	s.mu.Unlock()

	cell.res, cell.err = s.simulate(b, pol)
	close(cell.done)
	return cell.res, cell.err
}

// simulate runs one cell uncached.
func (s *Suite) simulate(b spec.Benchmark, pol Policy) (*Result, error) {
	s.sims.Add(1)
	pcfg := pipeline.DefaultConfig()
	pcfg.OutOfOrder = s.OutOfOrder
	pol.Apply(&pcfg)
	r, err := RunContext(s.ctx(), Config{Workload: b.Params, Pipeline: pcfg, Commits: s.Commits})
	if err != nil {
		return nil, fmt.Errorf("core: %s under %v: %w", b.Name, pol, err)
	}
	// Release the per-instruction classification map: the drivers only
	// need the aggregate report and distance populations.
	r.Report.Dead.Compact()
	return r, nil
}

// Simulations reports how many simulations the suite has actually executed
// (memo misses). With single-flighting this never exceeds the number of
// distinct (benchmark, policy) cells requested.
func (s *Suite) Simulations() uint64 { return s.sims.Load() }

// AllPolicies returns every exposure policy, in declaration order.
func AllPolicies() []Policy {
	pols := make([]Policy, NumPolicies)
	for i := range pols {
		pols[i] = Policy(i)
	}
	return pols
}

// Prewarm simulates every (benchmark, policy) cell of the cross product,
// one batched evaluation per benchmark: all requested policies share one
// decode of the benchmark's instruction stream (core.RunBatchContext), and
// the benchmarks fan out over the worker pool. Subsequent driver loops
// then run entirely from the memo. Passing no policies prewarms all of
// them. Cells already simulated cost nothing; concurrent Prewarms dedupe
// through the single-flight memo — a batch claims only unclaimed cells and
// awaits the rest. The first simulation error cancels outstanding work.
func (s *Suite) Prewarm(policies ...Policy) error {
	if len(policies) == 0 {
		policies = AllPolicies()
	}
	return par.ForEach(s.ctx(), len(s.Benches), s.Workers,
		func(_ context.Context, i int) error {
			return s.prewarmBench(s.Benches[i], policies)
		})
}

// prewarmBench fills one benchmark's memo cells: it claims every cell no
// other caller holds, runs the claimed set as one batch, then waits on (and
// propagates errors from) the remaining cells.
func (s *Suite) prewarmBench(b spec.Benchmark, policies []Policy) error {
	var claimed []Policy
	var cells []*suiteCell
	s.mu.Lock()
	for _, pol := range policies {
		key := suiteKey{name: b.Name, pol: pol}
		if _, ok := s.results[key]; ok {
			continue
		}
		cell := &suiteCell{done: make(chan struct{})}
		s.results[key] = cell
		claimed = append(claimed, pol)
		cells = append(cells, cell)
	}
	s.mu.Unlock()

	if len(claimed) > 0 {
		results, err := s.simulateBatch(b, claimed)
		for i, cell := range cells {
			if err != nil {
				cell.err = err
			} else {
				cell.res = results[i]
			}
			close(cell.done)
		}
	}
	var first error
	for _, pol := range policies {
		if _, err := s.Result(b, pol); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// simulateBatch runs one benchmark's policy set through the batched
// evaluation path — or, for workloads whose stream cannot be shared,
// through per-policy solo runs. Either way each result is byte-identical
// to what simulate would have produced.
func (s *Suite) simulateBatch(b spec.Benchmark, pols []Policy) ([]*Result, error) {
	specs := make([]BatchSpec, len(pols))
	for i, pol := range pols {
		cfg := pipeline.DefaultConfig()
		cfg.OutOfOrder = s.OutOfOrder
		pol.Apply(&cfg)
		specs[i] = BatchSpec{Pipeline: cfg}
	}
	results, err := RunBatchContext(s.ctx(), b.Params, s.Commits, specs)
	if err == nil {
		s.sims.Add(uint64(len(pols)))
		for _, r := range results {
			r.Report.Dead.Compact()
		}
		return results, nil
	}
	if !errors.Is(err, workload.ErrUnshareable) {
		return nil, fmt.Errorf("core: %s batched prewarm: %w", b.Name, err)
	}
	results = make([]*Result, len(pols))
	for i, pol := range pols {
		r, err := s.simulate(b, pol)
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	return results, nil
}

// ---------------------------------------------------------------------------
// Table 1: impact of squashing on IPC and the IQ's SDC and DUE AVFs.

// Table1Row is one design point of Table 1.
type Table1Row struct {
	Policy Policy
	IPC    float64
	SDCAVF float64
	DUEAVF float64
	// MeritSDC and MeritDUE are IPC/SDC-AVF and IPC/DUE-AVF, the paper's
	// MITF-proportional figures of merit.
	MeritSDC float64
	MeritDUE float64
}

// Table1 reproduces Table 1: means across the roster for the baseline and
// both squash triggers.
func (s *Suite) Table1() ([]Table1Row, error) {
	pols := []Policy{PolicyBaseline, PolicySquashL1, PolicySquashL0}
	if err := s.Prewarm(pols...); err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, 3)
	for _, pol := range pols {
		var ipc, sdc, due float64
		for _, b := range s.Benches {
			r, err := s.Result(b, pol)
			if err != nil {
				return nil, err
			}
			ipc += r.IPC
			sdc += r.Report.SDCAVF()
			due += r.Report.DUEAVF()
		}
		n := float64(len(s.Benches))
		ipc, sdc, due = ipc/n, sdc/n, due/n
		rows = append(rows, Table1Row{
			Policy:   pol,
			IPC:      ipc,
			SDCAVF:   sdc,
			DUEAVF:   due,
			MeritSDC: serate.Merit(ipc, sdc),
			MeritDUE: serate.Merit(ipc, due),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Out-of-order structures: per-policy AVFs of the ROB, LSQ and TAGE tables.

// StructuresRow is one design point of the out-of-order structure table:
// roster means of the extra structures' vulnerability under one policy.
type StructuresRow struct {
	Policy Policy
	IPC    float64
	// ROB AVFs (instruction-entry bits, retire is the read point).
	ROBSDC float64
	ROBDUE float64
	// LSQ AVFs (address + data bits, store-to-load forwarding reads).
	LSQSDC float64
	LSQDUE float64
	// TAGE false DUE (predictor state is never architecturally ACE, so
	// its SDC contribution is structurally zero).
	TAGEFalseDUE float64
}

// Structures reports the out-of-order family's extra structures — reorder
// buffer, load/store queue and TAGE tables — under the baseline and both
// squash triggers, answering whether squash-on-miss still pays off when
// the window reorders. The suite must have OutOfOrder set: the in-order
// family has none of these structures.
func (s *Suite) Structures() ([]StructuresRow, error) {
	if !s.OutOfOrder {
		return nil, fmt.Errorf("core: Structures needs an out-of-order suite (set Suite.OutOfOrder)")
	}
	pols := []Policy{PolicyBaseline, PolicySquashL1, PolicySquashL0}
	if err := s.Prewarm(pols...); err != nil {
		return nil, err
	}
	rows := make([]StructuresRow, 0, len(pols))
	for _, pol := range pols {
		var row StructuresRow
		row.Policy = pol
		for _, b := range s.Benches {
			r, err := s.Result(b, pol)
			if err != nil {
				return nil, err
			}
			if r.ROBReport == nil || r.LSQReport == nil || r.TAGEReport == nil {
				return nil, fmt.Errorf("core: %s under %v produced no out-of-order reports", b.Name, pol)
			}
			row.IPC += r.IPC
			row.ROBSDC += r.ROBReport.SDCAVF()
			row.ROBDUE += r.ROBReport.DUEAVF()
			row.LSQSDC += r.LSQReport.SDCAVF()
			row.LSQDUE += r.LSQReport.DUEAVF()
			row.TAGEFalseDUE += r.TAGEReport.FalseDUEAVF()
		}
		n := float64(len(s.Benches))
		row.IPC /= n
		row.ROBSDC /= n
		row.ROBDUE /= n
		row.LSQSDC /= n
		row.LSQDUE /= n
		row.TAGEFalseDUE /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 2: coverage of the IQ's false DUE AVF by the tracking stack.

// TrackingLevels are the cumulative mechanisms of Figure 2, in deployment
// order.
var TrackingLevels = []ace.TrackLevel{
	ace.TrackCommit, ace.TrackAntiPi, ace.TrackPET,
	ace.TrackRegFile, ace.TrackStoreBuffer, ace.TrackMemory,
}

// Figure2Row is one benchmark's false-DUE coverage profile.
type Figure2Row struct {
	Bench string
	FP    bool
	// BaseFalseDUE is the untracked false DUE AVF.
	BaseFalseDUE float64
	// Remaining[i] is the false DUE AVF left after deploying
	// TrackingLevels[:i+1].
	Remaining [6]float64
}

// CoveredFrac returns the fraction of the base false DUE AVF removed by
// level index i (cumulative).
func (r *Figure2Row) CoveredFrac(i int) float64 {
	if r.BaseFalseDUE == 0 {
		return 0
	}
	return 1 - r.Remaining[i]/r.BaseFalseDUE
}

// Figure2 reproduces Figure 2: per-benchmark false-DUE coverage under the
// cumulative tracking stack, on the baseline (no squashing) machine with a
// PET buffer of petEntries entries.
func (s *Suite) Figure2(petEntries int) ([]Figure2Row, error) {
	return s.Figure2Under(PolicyBaseline, petEntries)
}

// Figure2Under measures the same coverage stack under an exposure policy —
// the §6.3 combination, where squashing shrinks the base false-DUE AVF the
// stack then covers.
func (s *Suite) Figure2Under(pol Policy, petEntries int) ([]Figure2Row, error) {
	if petEntries <= 0 {
		petEntries = 512
	}
	if err := s.Prewarm(pol); err != nil {
		return nil, err
	}
	rows := make([]Figure2Row, 0, len(s.Benches))
	for _, b := range s.Benches {
		r, err := s.Result(b, pol)
		if err != nil {
			return nil, err
		}
		row := Figure2Row{Bench: b.Name, FP: b.FP, BaseFalseDUE: r.Report.FalseDUEAVF()}
		for i, lvl := range TrackingLevels {
			row.Remaining[i] = r.Report.FalseDUERemaining(lvl, petEntries)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure2Mean averages rows into a single coverage profile, optionally
// restricted to integer or floating-point benchmarks (fpOnly == nil means
// all).
func Figure2Mean(rows []Figure2Row, fpOnly *bool) Figure2Row {
	mean := Figure2Row{Bench: "mean"}
	n := 0
	for _, r := range rows {
		if fpOnly != nil && r.FP != *fpOnly {
			continue
		}
		mean.BaseFalseDUE += r.BaseFalseDUE
		for i := range r.Remaining {
			mean.Remaining[i] += r.Remaining[i]
		}
		n++
	}
	if n == 0 {
		return mean
	}
	mean.BaseFalseDUE /= float64(n)
	for i := range mean.Remaining {
		mean.Remaining[i] /= float64(n)
	}
	return mean
}

// ---------------------------------------------------------------------------
// Figure 3: FDD coverage versus PET-buffer size.

// Figure3Row is one PET size's coverage of the dead populations.
type Figure3Row struct {
	Entries int
	// FDDReg covers plain first-level dead register writes; WithReturns
	// adds return-dead locals to the tracked population; WithMemory adds
	// dead stores as well — the three curves of Figure 3.
	FDDReg      float64
	WithReturns float64
	WithMemory  float64
}

// DefaultPETSizes is the sweep of Figure 3 (powers of two through the
// paper's "about 10,000 entries" observation).
var DefaultPETSizes = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}

// Figure3 reproduces Figure 3: coverage of the FDD populations, pooled
// across the roster's baseline runs, as a function of PET size.
func (s *Suite) Figure3(sizes []int) ([]Figure3Row, error) {
	if sizes == nil {
		sizes = DefaultPETSizes
	}
	if err := s.Prewarm(PolicyBaseline); err != nil {
		return nil, err
	}
	var reg, ret, mem []int
	for _, b := range s.Benches {
		r, err := s.Result(b, PolicyBaseline)
		if err != nil {
			return nil, err
		}
		d := r.Report.Dead
		reg = append(reg, d.FDDRegDist...)
		ret = append(ret, d.FDDRetDist...)
		mem = append(mem, d.FDDMemDist...)
	}
	regRet := append(append([]int{}, reg...), ret...)
	all := append(append([]int{}, regRet...), mem...)
	rows := make([]Figure3Row, 0, len(sizes))
	for _, n := range sizes {
		rows = append(rows, Figure3Row{
			Entries:     n,
			FDDReg:      ace.PETCoverage(reg, n),
			WithReturns: ace.PETCoverage(regRet, n),
			WithMemory:  ace.PETCoverage(all, n),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 4: combining squashing with π-bit tracking.

// Figure4Row is one benchmark's combined-technique summary.
type Figure4Row struct {
	Bench string
	FP    bool
	// RelSDC is (squash-L1 SDC AVF) / (baseline SDC AVF) on the
	// unprotected queue.
	RelSDC float64
	// RelDUE is (squash-L1 + π-to-store-buffer DUE AVF) / (baseline DUE
	// AVF) on the parity-protected queue.
	RelDUE float64
	// RelIPC is squash-L1 IPC / baseline IPC.
	RelIPC float64
}

// Figure4 reproduces Figure 4: squashing on L1 misses for the unprotected
// queue's SDC AVF, and squashing plus π-bit tracking to the store-buffer
// commit point (option 3 of §4.3.3) for the parity queue's DUE AVF.
func (s *Suite) Figure4() ([]Figure4Row, error) {
	if err := s.Prewarm(PolicyBaseline, PolicySquashL1); err != nil {
		return nil, err
	}
	rows := make([]Figure4Row, 0, len(s.Benches))
	for _, b := range s.Benches {
		base, err := s.Result(b, PolicyBaseline)
		if err != nil {
			return nil, err
		}
		sq, err := s.Result(b, PolicySquashL1)
		if err != nil {
			return nil, err
		}
		row := Figure4Row{Bench: b.Name, FP: b.FP, RelSDC: 1, RelDUE: 1, RelIPC: 1}
		if v := base.Report.SDCAVF(); v > 0 {
			row.RelSDC = sq.Report.SDCAVF() / v
		}
		if v := base.Report.DUEAVF(); v > 0 {
			combined := sq.Report.TrueDUEAVF() +
				sq.Report.FalseDUERemaining(ace.TrackStoreBuffer, 512)
			row.RelDUE = combined / v
		}
		if base.IPC > 0 {
			row.RelIPC = sq.IPC / base.IPC
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// §4.1 occupancy breakdown and Figure 1 outcome taxonomy.

// BreakdownRow decomposes one benchmark's IQ occupancy (§4.1: the paper
// reports 29% ACE, 30% idle, 8% Ex-ACE, 33% valid un-ACE on average).
type BreakdownRow struct {
	Bench     string
	FP        bool
	Idle      float64
	NeverRead float64
	ExACE     float64
	UnACE     float64
	ACE       float64
}

// Breakdown reports the baseline occupancy decomposition per benchmark.
func (s *Suite) Breakdown() ([]BreakdownRow, error) {
	if err := s.Prewarm(PolicyBaseline); err != nil {
		return nil, err
	}
	rows := make([]BreakdownRow, 0, len(s.Benches))
	for _, b := range s.Benches {
		r, err := s.Result(b, PolicyBaseline)
		if err != nil {
			return nil, err
		}
		rep := r.Report
		rows = append(rows, BreakdownRow{
			Bench:     b.Name,
			FP:        b.FP,
			Idle:      rep.IdleFraction(),
			NeverRead: rep.NeverReadFraction(),
			ExACE:     rep.ExACEFraction(),
			UnACE:     rep.FalseDUEAVF(),
			ACE:       rep.SDCAVF(),
		})
	}
	return rows, nil
}

// OutcomeRow tallies a fault-injection campaign (Figure 1's taxonomy).
type OutcomeRow struct {
	Label   string
	Strikes uint64
	Counts  [fault.NumOutcomes]uint64
}

// OutcomeConfigs builds the Figure-1 configuration ladder — the unprotected
// queue, the conservative parity queue, and parity with each tracking level
// — with the given strike budget and seed each. The labels parallel the
// configs.
func OutcomeConfigs(strikes int, seed uint64) (labels []string, cfgs []fault.Config) {
	labels = []string{"unprotected", "parity"}
	cfgs = []fault.Config{
		{Protection: cache.ProtNone},
		{Protection: cache.ProtParity, Level: ace.TrackNever},
	}
	for _, lvl := range TrackingLevels {
		labels = append(labels, fmt.Sprintf("parity+%v", lvl))
		cfgs = append(cfgs, fault.Config{Protection: cache.ProtParity, Level: lvl})
	}
	for i := range cfgs {
		cfgs[i].Strikes = strikes
		cfgs[i].Seed = seed
	}
	return labels, cfgs
}

// OutcomesPlan returns the checkpoint geometry of an Outcomes campaign: the
// cell count and the campaign fingerprint (mixing in the trace identity, so
// a snapshot can never resume against a different trace). Drivers use it to
// open a checkpoint.File[fault.Result] before running OutcomesCampaign.
func OutcomesPlan(b spec.Benchmark, commits uint64, strikes int, seed uint64) (cells int, fingerprint string) {
	if commits == 0 {
		commits = DefaultCommits
	}
	_, cfgs := OutcomeConfigs(strikes, seed)
	camp := &fault.Campaign{Configs: cfgs}
	return camp.Cells(), checkpoint.Fingerprint("outcomes", b.Name, commits, camp.Fingerprint())
}

// Outcomes runs fault-injection campaigns on one benchmark: the unprotected
// queue, the conservative parity queue, and parity with each tracking
// level, with the given number of strikes each.
func Outcomes(b spec.Benchmark, commits uint64, strikes int, seed uint64) ([]OutcomeRow, error) {
	return OutcomesCampaign(context.Background(), b, commits, strikes, seed, 0, nil)
}

// OutcomesCampaign is Outcomes with cancellation, worker-pool control and an
// optional checkpoint: completed cells are restored instead of re-run, and
// on interruption the completed work is flushed to the snapshot. Per-strike
// RNG streams keep the output byte-identical regardless of worker count or
// how many times the campaign was interrupted and resumed.
func OutcomesCampaign(ctx context.Context, b spec.Benchmark, commits uint64, strikes int, seed uint64, workers int, ck *checkpoint.File[fault.Result]) ([]OutcomeRow, error) {
	if commits == 0 {
		commits = DefaultCommits
	}
	// Stream the simulation: the ace collector integrates the AVFs while a
	// teed recorder (pooled: figure drivers run one campaign per roster
	// benchmark, and the interval/log buffers dominate each) retains just
	// the IQ intervals and commit log the injector samples — no full trace
	// is materialised.
	rec := fault.GetStreamRecorder(commits)
	res, err := RunContext(ctx, Config{Workload: b.Params, Commits: commits, Sink: rec})
	if err != nil {
		return nil, err
	}
	labels, cfgs := OutcomeConfigs(strikes, seed)
	camp := &fault.Campaign{
		Injector:   rec.Injector(res.Cycles, res.Report.Entries, res.Report.Dead),
		Configs:    cfgs,
		Opts:       par.Options{Workers: workers},
		Checkpoint: ck,
	}
	campaigns, err := camp.Run(ctx)
	if err != nil {
		return nil, err
	}
	// The campaign results hold only outcome tallies — nothing aliases the
	// recorded stream once Run returns — so the buffers can recycle.
	rec.Release()
	rows := make([]OutcomeRow, len(campaigns))
	for i, r := range campaigns {
		rows[i] = OutcomeRow{Label: labels[i], Strikes: r.Strikes, Counts: r.Counts}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Ablation: fetch throttling versus squashing (§3.1 reports throttling adds
// nothing beyond squashing; the paper omits its numbers).

// AblationRow compares a policy against the baseline.
type AblationRow struct {
	Policy   Policy
	IPC      float64
	SDCAVF   float64
	MeritSDC float64
}

// ThrottleAblation evaluates squash and throttle actions at both trigger
// levels against the baseline, averaged over the roster.
func (s *Suite) ThrottleAblation() ([]AblationRow, error) {
	policies := []Policy{
		PolicyBaseline, PolicySquashL1, PolicyThrottleL1,
		PolicySquashL0, PolicyThrottleL0,
	}
	if err := s.Prewarm(policies...); err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, len(policies))
	for _, pol := range policies {
		var ipc, sdc float64
		for _, b := range s.Benches {
			r, err := s.Result(b, pol)
			if err != nil {
				return nil, err
			}
			ipc += r.IPC
			sdc += r.Report.SDCAVF()
		}
		n := float64(len(s.Benches))
		rows = append(rows, AblationRow{
			Policy:   pol,
			IPC:      ipc / n,
			SDCAVF:   sdc / n,
			MeritSDC: serate.Merit(ipc/n, sdc/n),
		})
	}
	return rows, nil
}

// RegFileRow is one benchmark's register-file vulnerability summary (the
// conclusion's "other structures" extension).
type RegFileRow struct {
	Bench string
	FP    bool

	SDCAVF      float64
	FalseDUEAVF float64
	ExACE       float64
	Untouched   float64
}

// RegFile measures the architectural register files' AVF decomposition
// across the roster's baseline runs. Runs are not memoised with the suite
// (the register analysis needs commit cycles and uncompacted deadness);
// they fan out over the worker pool, one per benchmark.
func (s *Suite) RegFile() ([]RegFileRow, error) {
	return par.Map(s.ctx(), len(s.Benches), s.Workers,
		func(ctx context.Context, i int) (RegFileRow, error) {
			b := s.Benches[i]
			r, err := RunContext(ctx, Config{Workload: b.Params, Commits: s.Commits, RegFile: true})
			if err != nil {
				return RegFileRow{}, fmt.Errorf("core: regfile %s: %w", b.Name, err)
			}
			rf := r.RegFile
			return RegFileRow{
				Bench:       b.Name,
				FP:          b.FP,
				SDCAVF:      rf.SDCAVF(),
				FalseDUEAVF: rf.FalseDUEAVF(),
				ExACE:       rf.ExACEFraction(),
				Untouched:   rf.UntouchedFraction(),
			}, nil
		})
}

// GeoMean returns the geometric mean of strictly positive values; zero or
// negative inputs are skipped.
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
