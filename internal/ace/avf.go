package ace

import (
	"fmt"

	"softerror/internal/isa"
	"softerror/internal/pipeline"
)

// Report is the integrated vulnerability analysis of one simulation: the
// occupancy of the instruction queue decomposed into the paper's bit-cycle
// classes, and the AVFs derived from them.
//
// All *BC fields are payload-bit-cycles. The classes partition the total
// IQSize × Cycles × EntryPayloadBits budget:
//
//	Idle       entry held no instruction;
//	NeverRead  entry held a copy that was removed without being read
//	           (squashed, wrong-path flushed before issue, or still
//	           unissued at the end of the run) — benign, like idle;
//	ExACE      post-issue lingering of a read entry: issued for the last
//	           time but not yet evicted;
//	ACE        pre-issue residency of bits whose corruption changes the
//	           program outcome;
//	UnACE[c]   pre-issue residency of bits that are read but cannot change
//	           the outcome, by un-ACE category c.
type Report struct {
	Cycles uint64
	// Entries is the analysed structure's entry count (64 for the paper's
	// instruction queue; the front-end buffer differs).
	Entries int
	BitsPer int // payload bits per entry

	IdleBC      uint64
	NeverReadBC uint64
	ExACEBC     uint64
	ACEBC       uint64
	// ACEControlBC is the subset of ACEBC contributed by control-flow
	// instructions (branches, calls, returns). Wang et al. [30] found
	// ~40% of dynamic conditional branches are direction-insensitive
	// ("Y-branches"); the paper groups those under true DUE and bounds
	// their effect at "a few percentage points". ACEControlBC is that
	// bound's numerator: the most AVF that Y-branch analysis could ever
	// reclaim.
	ACEControlBC uint64
	UnACEBC      [NumCategories]uint64

	// FieldACEBC and FieldUnACEBC decompose the read bit-cycles per
	// instruction field (§4.2: π-bit granularity can isolate which bits
	// faulted; per-field numbers show where the vulnerability lives —
	// e.g. a dead instruction's ACE share sits entirely in its
	// destination specifier).
	FieldACEBC   [isa.NumFields]uint64
	FieldUnACEBC [isa.NumFields]uint64

	// Dead is the deadness analysis the report was built from; callers use
	// it for PET-coverage curves and per-category instruction counts.
	Dead *Deadness
}

// Analyze runs the full ACE analysis for a pipeline trace: dead-code
// discovery over the commit log, then per-field residency integration of
// the instruction queue.
func Analyze(tr *pipeline.Trace) *Report {
	dead := AnalyzeDeadness(tr.CommitLog)
	return AnalyzeWith(tr, dead)
}

// AnalyzeWith integrates the instruction queue's residencies against a
// pre-computed deadness analysis (useful when several protection scenarios
// share one trace).
func AnalyzeWith(tr *pipeline.Trace, dead *Deadness) *Report {
	return AnalyzeStructure(tr.Residencies, tr.Cycles, tr.IQSize, dead)
}

// AnalyzeFrontEnd integrates the fetch buffer's residencies: the front-end
// structures of §4.2, where a π bit per fetch chunk defers errors detected
// before individual instructions exist. Delivery to decode is the read
// point; flushed chunks are never read.
func AnalyzeFrontEnd(tr *pipeline.Trace, dead *Deadness) *Report {
	return AnalyzeStructure(tr.FrontEnd, tr.Cycles, tr.FrontEndCap, dead)
}

// AnalyzeStructure integrates arbitrary residency intervals for a
// structure with the given entry count.
func AnalyzeStructure(residencies []pipeline.Residency, cycles uint64, entries int, dead *Deadness) *Report {
	r := &Report{
		Cycles:  cycles,
		Entries: entries,
		BitsPer: isa.EntryPayloadBits,
		Dead:    dead,
	}
	for i := range residencies {
		res := &residencies[i]
		occ := res.Occupancy()
		if occ == 0 {
			continue
		}
		if !res.Issued {
			r.addNeverRead(occ)
			continue
		}
		cat := dead.Of(&res.Inst)
		r.addRead(res.Issue-res.Enq, res.Evict-res.Issue, cat,
			res.Inst.Dest != isa.RegNone, res.Inst.Class.IsControl())
	}
	r.finalize()
	return r
}

// addNeverRead charges one occupancy interval whose copy was removed
// without being read (squashed, flushed before issue, or clipped at run
// end): the bits were never consumed, so a fault there is benign.
func (r *Report) addNeverRead(occ uint64) {
	r.NeverReadBC += occ * uint64(isa.EntryPayloadBits)
}

// addRead charges one issued residency: wait cycles of pre-read exposure,
// classified by category and per field, plus linger cycles of post-issue
// Ex-ACE state. This is the single classification point — the batch
// integrator and the streaming Collector both fold through it, so the two
// paths cannot diverge arithmetically.
func (r *Report) addRead(wait, linger uint64, cat Category, hasDest, isControl bool) {
	allBits := uint64(isa.EntryPayloadBits)
	r.ExACEBC += linger * allBits

	// Charge every field's wait cycles to ACE or un-ACE according to the
	// struck-bit ground truth for the category.
	for f := isa.Field(0); f < isa.NumFields; f++ {
		bc := wait * uint64(isa.FieldBits[f])
		if BitACE(cat, f, hasDest) {
			r.FieldACEBC[f] += bc
		} else {
			r.FieldUnACEBC[f] += bc
		}
	}

	switch cat {
	case CatACE:
		r.ACEBC += wait * allBits
		if isControl {
			r.ACEControlBC += wait * allBits
		}
	case CatNeutral:
		// Opcode bits of a neutral instruction stay ACE: a strike
		// there can turn a no-op into a real operation.
		opcodeBits := uint64(isa.FieldBits[isa.FieldOpcode])
		r.ACEBC += wait * opcodeBits
		r.UnACEBC[cat] += wait * (allBits - opcodeBits)
	case CatFDDReg, CatFDDRet, CatTDDReg, CatFDDMem, CatTDDMem:
		// Destination-specifier bits of a dead instruction stay ACE:
		// a strike there redirects the (dead) write onto a live
		// register. Dead stores have no destination specifier.
		aceBits := uint64(isa.FieldBits[isa.FieldDest])
		if !hasDest {
			aceBits = 0
		}
		r.ACEBC += wait * aceBits
		r.UnACEBC[cat] += wait * (allBits - aceBits)
	default: // wrong-path, pred-false: nothing in the entry matters
		r.UnACEBC[cat] += wait * allBits
	}
}

// finalize computes the idle remainder and checks that the accounted
// classes fit the structure's bit-cycle capacity.
func (r *Report) finalize() {
	total := r.TotalBC()
	used := r.NeverReadBC + r.ExACEBC + r.ACEBC
	for _, bc := range r.UnACEBC {
		used += bc
	}
	if used > total {
		panic(fmt.Sprintf("ace: accounted bit-cycles %d exceed capacity %d", used, total))
	}
	r.IdleBC = total - used
}

// TotalBC returns the total payload-bit-cycle capacity of the queue.
func (r *Report) TotalBC() uint64 {
	return r.Cycles * uint64(r.Entries) * uint64(r.BitsPer)
}

// UnACETotalBC sums un-ACE bit-cycles over all categories.
func (r *Report) UnACETotalBC() uint64 {
	var s uint64
	for _, bc := range r.UnACEBC {
		s += bc
	}
	return s
}

// SDCAVF is the architectural vulnerability factor of the unprotected
// queue: the probability that a uniformly random bit-cycle strike produces
// silent data corruption.
func (r *Report) SDCAVF() float64 { return r.frac(r.ACEBC) }

// TrueDUEAVF is the true-DUE AVF of the parity-protected queue; with
// single-bit parity it equals the unprotected SDC AVF (§2.2).
func (r *Report) TrueDUEAVF() float64 { return r.frac(r.ACEBC) }

// FalseDUEAVF is the false-DUE AVF of the parity-protected queue: faults on
// read but un-ACE state that a conservative design would flag as errors.
func (r *Report) FalseDUEAVF() float64 { return r.frac(r.UnACETotalBC()) }

// DUEAVF is the total DUE AVF of the parity-protected queue.
func (r *Report) DUEAVF() float64 { return r.TrueDUEAVF() + r.FalseDUEAVF() }

// YBranchBound is the largest possible AVF reduction from Y-branch
// analysis (Wang et al. [30]): the fraction of bit-cycles held by ACE
// control-flow instructions. The paper's back-of-the-envelope claim is
// that this is "not more than a few percentage points".
func (r *Report) YBranchBound() float64 { return r.frac(r.ACEControlBC) }

// IdleFraction, NeverReadFraction and ExACEFraction expose the benign
// occupancy classes (§4.1's breakdown).
func (r *Report) IdleFraction() float64 { return r.frac(r.IdleBC) }

// NeverReadFraction is the fraction of bit-cycles in copies that were
// removed without ever being read.
func (r *Report) NeverReadFraction() float64 { return r.frac(r.NeverReadBC) }

// ExACEFraction is the fraction of bit-cycles in Ex-ACE state.
func (r *Report) ExACEFraction() float64 { return r.frac(r.ExACEBC) }

func (r *Report) frac(bc uint64) float64 {
	total := r.TotalBC()
	if total == 0 {
		return 0
	}
	return float64(bc) / float64(total)
}

// FalseDUERemaining returns the false-DUE AVF that survives after
// cumulatively deploying the tracking mechanisms up to the given level
// (Figure 2's stacked coverage). petEntries sizes the PET buffer when
// level >= TrackPET; the window-limited PET covers only the provable subset
// of CatFDDReg.
func (r *Report) FalseDUERemaining(level TrackLevel, petEntries int) float64 {
	var remaining float64
	for c := Category(0); c < NumCategories; c++ {
		bc := r.UnACEBC[c]
		if bc == 0 || !c.UnACE() {
			continue
		}
		covered := 0.0
		switch {
		case c.Track() <= level:
			covered = 1
		case c == CatFDDReg && level == TrackPET:
			// The PET buffer proves dead exactly those FDD-reg writes
			// whose overwrite lands within its window.
			covered = PETCoverage(r.Dead.FDDRegDist, petEntries)
		}
		remaining += float64(bc) * (1 - covered)
	}
	total := r.TotalBC()
	if total == 0 {
		return 0
	}
	return remaining / float64(total)
}
