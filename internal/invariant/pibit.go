package invariant

import (
	"fmt"

	"softerror/internal/ace"
	"softerror/internal/isa"
	"softerror/internal/pibit"
	"softerror/internal/rng"
)

// checkPiBitSafety pins the safety side of the paper's false-DUE tracking:
// no π-bit deployment level, PET capacity or replay window — however small —
// may suppress a detected error whose ground truth is outcome-changing.
// The deadness analysis over the full committed stream is the oracle
// (ace.BitACE says which (category, field) strikes change the outcome);
// every tracking configuration is only ever allowed to turn a true error
// into Signalled or Latent, never Suppressed. Aggressiveness is not under
// test here — suppressing few false errors is a quality loss, suppressing
// one true error is a broken machine.
func checkPiBitSafety(seed uint64, opt Options) error {
	opt = opt.withDefaults()
	s := rng.New(seed, 0x91B5)
	params := RandomWorkload(s)
	cfg := RandomPipelineConfig(s)
	tr, err := runTrace(cfg, params, opt.Commits)
	if err != nil {
		return err
	}
	if len(tr.CommitLog) == 0 {
		return fmt.Errorf("empty commit log")
	}
	dead := ace.AnalyzeDeadness(tr.CommitLog)

	levels := []ace.TrackLevel{
		ace.TrackNever, ace.TrackCommit, ace.TrackAntiPi, ace.TrackPET,
		ace.TrackRegFile, ace.TrackStoreBuffer, ace.TrackMemory,
	}
	const trials = 400
	checked := 0
	for t := 0; t < trials; t++ {
		i := s.Intn(len(tr.CommitLog))
		in := &tr.CommitLog[i]
		field := isa.Field(s.Intn(isa.NumFields))
		if !ace.BitACE(dead.Of(in), field, in.HasDest()) {
			continue // un-ACE ground truth: any verdict is acceptable
		}
		checked++
		eng := &pibit.Engine{
			Level:      levels[s.Intn(len(levels))],
			PETEntries: 1 << (0 + s.Intn(11)), // 1..1024: tiny PETs must fail safe
			Window:     1 + s.Intn(2*int(opt.Commits)),
		}
		if v := eng.Process(tr.CommitLog, i, field); v == pibit.VerdictSuppressed {
			return fmt.Errorf("outcome-changing error suppressed: idx=%d seq=%d field=%v cat=%v level=%v pet=%d window=%d",
				i, in.Seq, field, dead.Of(in), eng.Level, eng.PETEntries, eng.Window)
		}
	}
	if checked == 0 {
		return fmt.Errorf("no outcome-changing strike drawn in %d trials (commits=%d)", trials, opt.Commits)
	}
	return nil
}
